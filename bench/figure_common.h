// Shared driver for the figure-reproduction benches (paper Section 5).
//
// Every evaluation figure compares per-flow average delays on CAIRN or NET1
// under some combination of OPT (Gallager, installed statically), MP
// (MPDA + IH/AH with Tl/Ts update intervals) and SP (best-successor-only).
// This header provides the measurement runs and the figure-table printing
// so each bench body is just its parameter set.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"

namespace mdr::bench {

struct FigureSetup {
  graph::Topology topo;
  std::vector<topo::FlowSpec> flows;
  std::string name;
};

// Default load scales calibrated so the networks are "sufficiently loaded"
// (the paper's words): SP concentrates enough traffic for multi-x delay
// inflation while every scheme remains stable. DESIGN.md §5 documents the
// calibration (the paper's exact per-flow rates did not survive OCR).
inline FigureSetup cairn_setup(double scale = 1.15) {
  return FigureSetup{topo::make_cairn(), topo::cairn_flows(scale), "CAIRN"};
}

inline FigureSetup net1_setup(double scale = 0.92) {
  return FigureSetup{topo::make_net1(), topo::net1_flows(scale), "NET1"};
}

inline sim::SimConfig measurement_config(std::uint64_t seed = 7) {
  sim::SimConfig config;
  config.traffic_start = 3.0;
  config.warmup = 15.0;
  config.duration = 120.0;
  config.seed = seed;
  return config;
}

/// Seeds used when a series is averaged over independent replications (the
/// paper plots one run; SP's delays near congestion are noisy enough that
/// we report the 3-seed mean and note the variance in EXPERIMENTS.md).
inline std::vector<std::uint64_t> replication_seeds() { return {7, 21, 33}; }

/// Per-flow mean delays averaged over replications of `run`.
template <typename RunFn>
std::vector<double> averaged_flow_delays(const FigureSetup& s, RunFn run) {
  std::vector<double> acc(s.flows.size(), 0.0);
  const auto seeds = replication_seeds();
  for (const auto seed : seeds) {
    const auto delays = sim::flow_delays(run(seed));
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += delays[i];
  }
  for (double& d : acc) d /= static_cast<double>(seeds.size());
  return acc;
}

/// Packet-level measurement of OPT: Gallager's converged phi installed as
/// static routing parameters, measured under the same traffic as MP/SP.
inline sim::SimResult run_opt(const FigureSetup& s, const sim::SimConfig& base,
                              const sim::OptReference& ref) {
  return sim::run_with_static_phi(s.topo, s.flows, base, ref.phi);
}

inline sim::SimResult run_mp(const FigureSetup& s, sim::SimConfig base,
                             double tl, double ts) {
  base.mode = sim::RoutingMode::kMultipath;
  base.tl = tl;
  base.ts = ts;
  return sim::run_simulation(s.topo, s.flows, base);
}

inline sim::SimResult run_sp(const FigureSetup& s, sim::SimConfig base,
                             double tl) {
  base.mode = sim::RoutingMode::kSinglePath;
  base.tl = tl;
  base.ts = tl;  // SP's only knob is the long-term period (paper: SP-TL-xx)
  return sim::run_simulation(s.topo, s.flows, base);
}

inline std::vector<double> envelope(const std::vector<double>& base,
                                    double factor) {
  std::vector<double> out;
  out.reserve(base.size());
  for (double d : base) out.push_back(d * factor);
  return out;
}

/// Prints "n of m flows within the x% OPT envelope" summary (the claim the
/// paper makes about Figs. 9-10).
inline void print_envelope_summary(const std::vector<double>& opt,
                                   const std::vector<double>& mp,
                                   double percent) {
  std::size_t inside = 0;
  for (std::size_t i = 0; i < opt.size(); ++i) {
    if (mp[i] <= opt[i] * (1.0 + percent / 100.0)) ++inside;
  }
  std::cout << inside << " of " << opt.size() << " flows within the OPT+"
            << percent << "% envelope\n";
}

/// Prints min/mean/max of per-flow ratios (the claim of Figs. 11-14).
inline void print_ratio_summary(const std::string& what,
                                const std::vector<double>& num,
                                const std::vector<double>& den) {
  double lo = 1e300, hi = 0, sum = 0;
  for (std::size_t i = 0; i < num.size(); ++i) {
    const double r = den[i] > 0 ? num[i] / den[i] : 0;
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    sum += r;
  }
  std::cout << what << ": per-flow ratio min " << lo << "  mean "
            << sum / static_cast<double>(num.size()) << "  max " << hi << "\n";
}

}  // namespace mdr::bench
