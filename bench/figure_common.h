// Shared driver for the figure-reproduction benches (paper Section 5).
//
// Every evaluation figure compares per-flow average delays on CAIRN or NET1
// under some combination of OPT (Gallager, installed statically), MP
// (MPDA + IH/AH with Tl/Ts update intervals) and SP (best-successor-only).
// This header provides the measurement runs and the figure-table printing
// so each bench body is just its parameter set. Replicated series run
// through runner::ExperimentRunner, so seeds fan out across cores
// (MDR_BENCH_JOBS overrides the worker count; results are identical for
// any value).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "runner/experiment_runner.h"
#include "sim/experiment.h"
#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"

namespace mdr::bench {

struct FigureSetup {
  sim::ExperimentSpec spec;
  std::string name;
};

inline sim::SimConfig measurement_config(std::uint64_t seed = 7) {
  sim::SimConfig config;
  config.traffic_start = 3.0;
  config.warmup = 15.0;
  config.duration = 120.0;
  config.seed = seed;
  return config;
}

// Default load scales calibrated so the networks are "sufficiently loaded"
// (the paper's words): SP concentrates enough traffic for multi-x delay
// inflation while every scheme remains stable. DESIGN.md §5 documents the
// calibration (the paper's exact per-flow rates did not survive OCR).
inline FigureSetup cairn_setup(double scale = 1.15) {
  return FigureSetup{
      {topo::make_cairn(), topo::cairn_flows(scale), measurement_config(),
       sim::EngineSpec{}},
      "CAIRN"};
}

inline FigureSetup net1_setup(double scale = 0.92) {
  return FigureSetup{
      {topo::make_net1(), topo::net1_flows(scale), measurement_config(),
       sim::EngineSpec{}},
      "NET1"};
}

/// Replications per measured series. The paper plots one run; we report the
/// multi-seed mean with a Student-t 95% CI (EXPERIMENTS.md discusses the
/// variance near congestion).
inline int replications() { return 5; }

/// Worker threads for the runner: MDR_BENCH_JOBS if set, else one per core.
inline int bench_jobs() {
  if (const char* env = std::getenv("MDR_BENCH_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Runs `spec` under `mode` ("mp" | "sp" | "opt") replications() times in
/// parallel and aggregates per-flow delays across the derived seeds.
inline runner::BatchResult replicated(const sim::ExperimentSpec& spec,
                                      const std::string& mode) {
  runner::ExperimentRunner runner(
      runner::Options{bench_jobs(), spec.config.seed});
  return runner.run_replicated(spec, mode, replications());
}

inline std::vector<double> aggregate_means(const runner::BatchResult& batch) {
  std::vector<double> out;
  out.reserve(batch.flows.size());
  for (const auto& f : batch.flows) out.push_back(f.mean_delay_s);
  return out;
}

inline std::vector<double> aggregate_ci95(const runner::BatchResult& batch) {
  std::vector<double> out;
  out.reserve(batch.flows.size());
  for (const auto& f : batch.flows) out.push_back(f.ci95_delay_s);
  return out;
}

/// Config helpers: the same experiment under a different scheme is the same
/// spec with the timescale knobs adjusted.
inline sim::ExperimentSpec mp_spec(const sim::ExperimentSpec& base, double tl,
                                   double ts) {
  sim::ExperimentSpec spec = base;
  spec.config.tl = tl;
  spec.config.ts = ts;
  return spec;
}

inline sim::ExperimentSpec sp_spec(const sim::ExperimentSpec& base, double tl) {
  sim::ExperimentSpec spec = base;
  spec.config.tl = tl;
  spec.config.ts = tl;  // SP's only knob is the long-term period (SP-TL-xx)
  return spec;
}

inline std::vector<double> envelope(const std::vector<double>& base,
                                    double factor) {
  std::vector<double> out;
  out.reserve(base.size());
  for (double d : base) out.push_back(d * factor);
  return out;
}

/// Prints "n of m flows within the x% OPT envelope" summary (the claim the
/// paper makes about Figs. 9-10).
inline void print_envelope_summary(const std::vector<double>& opt,
                                   const std::vector<double>& mp,
                                   double percent) {
  std::size_t inside = 0;
  for (std::size_t i = 0; i < opt.size(); ++i) {
    if (mp[i] <= opt[i] * (1.0 + percent / 100.0)) ++inside;
  }
  std::cout << inside << " of " << opt.size() << " flows within the OPT+"
            << percent << "% envelope\n";
}

/// Prints min/mean/max of per-flow ratios (the claim of Figs. 11-14).
inline void print_ratio_summary(const std::string& what,
                                const std::vector<double>& num,
                                const std::vector<double>& den) {
  double lo = 1e300, hi = 0, sum = 0;
  for (std::size_t i = 0; i < num.size(); ++i) {
    const double r = den[i] > 0 ? num[i] / den[i] : 0;
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    sum += r;
  }
  std::cout << what << ": per-flow ratio min " << lo << "  mean "
            << sum / static_cast<double>(num.size()) << "  max " << hi << "\n";
}

}  // namespace mdr::bench
