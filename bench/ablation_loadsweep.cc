// Ablation: delay vs offered load — where the schemes part ways.
//
// Sweeps the load scale on CAIRN and prints the network-average delay for
// OPT, MP and SP. The shape this reproduces: all three coincide at light
// load ("when network load is light, MP routing cannot offer any advantage
// over SP"), SP inflates first and eventually destabilizes, MP tracks OPT
// until both approach the network's capacity region.
#include <cstdio>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto topo = topo::make_cairn();
  auto base = bench::measurement_config();
  base.duration = 60;

  std::puts("== CAIRN load sweep: network-average delay (ms) ==");
  std::printf("%-8s %10s %10s %10s %8s\n", "scale", "OPT", "MP", "SP", "SP/MP");
  for (const double scale :
       {0.3, 0.6, 0.8, 0.9, 1.0, 1.05, 1.1, 1.15, 1.2, 1.3}) {
    const sim::ExperimentSpec spec{topo, topo::cairn_flows(scale), base,
                                   sim::EngineSpec{}};
    const auto ref = sim::compute_opt_reference(spec);
    const double opt = bench::replicated(spec, "opt").avg_delay_s.mean();
    const double mp =
        bench::replicated(bench::mp_spec(spec, 10, 2), "mp").avg_delay_s.mean();
    const double sp =
        bench::replicated(bench::sp_spec(spec, 10), "sp").avg_delay_s.mean();
    std::printf("%-8.2f %10.3f %10.3f %10.3f %7.2fx%s\n", scale, opt * 1e3,
                mp * 1e3, sp * 1e3, sp / mp,
                ref.feasible ? "" : "  (OPT infeasible)");
  }
  return 0;
}
