// Ablation: update-storm resilience — damped vs undamped control plane.
//
// Drives NET1 and CAIRN through an identical sustained link-flap storm
// (several links cycling down/up every 4 s for a full minute, fast hellos
// so every cycle is detected) twice: once with the resilience knobs off,
// once with LSU pacing + link-flap damping on. Both runs share the flap
// schedule and the seed, so every difference in control volume is the
// hardening. The claim (tests/fault_test.cc StormProperty): the hardened
// run floods >= 5x fewer LSUs while keeping every safety invariant — zero
// realized forwarding loops, a balanced ledger — and both runs go
// anomaly-free shortly after the storm dies down.
#include <cstdio>

#include "fault/fault_plan.h"
#include "figure_common.h"

namespace {

constexpr mdr::Time kStormStart = 10.0;
constexpr mdr::Time kStormEnd = 74.0;

mdr::sim::SimConfig storm_config(const mdr::graph::Topology& topo,
                                 bool hardened) {
  using namespace mdr;
  fault::RandomPlanOptions opts;
  opts.crashes = 0;
  opts.gilbert_links = 0;
  // CAIRN is more than twice NET1's size: flap more of it so the storm,
  // not the steady state, dominates the undamped flood count.
  opts.flapping_links = topo.num_nodes() > 12 ? 6 : 3;
  // Down 2 s per cycle: past the 1.75 s dead interval below, so every
  // cycle tears the adjacency down and re-establishes it.
  opts.flap_shape = fault::LinkFlap{"", "", 4.0, 0.5, kStormStart, kStormEnd};

  sim::SimConfig config;
  config.use_hello = true;
  config.traffic_start = 6.0;
  config.warmup = 4.0;
  config.duration = 80.0;
  config.monitor_interval = 0.5;
  config.seed = 7;
  config.tl = 2.0;
  config.hello.interval = 0.5;
  config.hello.dead_interval = 1.75;
  // A quiet cost plane isolates the adjacency churn under test.
  config.smoothing.report_threshold = 1.0;
  config.faults = fault::make_random_plan(topo, opts, /*seed=*/7);
  if (hardened) {
    config.pacing.enabled = true;
    config.pacing.min_interval = 20.0;
    config.pacing.max_interval = 80.0;
    config.damping.enabled = true;
    config.damping.penalty = 1000.0;
    config.damping.suppress_threshold = 2000.0;
    config.damping.reuse_threshold = 750.0;
    config.damping.half_life = 24.0;
  }
  return config;
}

void print_run(const char* label, const mdr::sim::SimResult& r) {
  std::printf("\n== %s ==\n", label);
  std::printf(
      "control: %llu LSUs originated, %llu retransmitted, %llu paced away, "
      "%llu acks, %llu withdrawals damped\n",
      static_cast<unsigned long long>(r.lsus_originated),
      static_cast<unsigned long long>(r.lsus_retransmitted),
      static_cast<unsigned long long>(r.lsus_suppressed),
      static_cast<unsigned long long>(r.acks_sent),
      static_cast<unsigned long long>(r.damped_withdrawals));
  std::printf(
      "control drops: %llu (queue %llu, wire %llu, flush %llu, down %llu)\n",
      static_cast<unsigned long long>(r.control_dropped),
      static_cast<unsigned long long>(r.control_dropped_queue),
      static_cast<unsigned long long>(r.control_dropped_wire),
      static_cast<unsigned long long>(r.control_dropped_flush),
      static_cast<unsigned long long>(r.control_dropped_down));
  std::printf("data: %llu delivered, avg delay %.3f ms; drops: no-route "
              "%llu, queue %llu, dead %llu\n",
              static_cast<unsigned long long>(r.delivered),
              r.avg_delay_s * 1e3,
              static_cast<unsigned long long>(r.dropped_no_route),
              static_cast<unsigned long long>(r.dropped_queue),
              static_cast<unsigned long long>(r.dropped_dead));
  if (!r.monitor.has_value()) return;
  const auto& m = *r.monitor;
  std::printf(
      "monitor: %llu checks, %llu loops, %llu blackhole sightings, %llu "
      "leaks, %llu starved adjacencies",
      static_cast<unsigned long long>(m.checks),
      static_cast<unsigned long long>(m.forwarding_loops),
      static_cast<unsigned long long>(m.blackholes),
      static_cast<unsigned long long>(m.accounting_leaks),
      static_cast<unsigned long long>(m.starved_adjacencies));
  if (m.t_last_anomaly >= 0) {
    std::printf("; last anomaly t=%.2f (%.1f s after storm end)\n",
                m.t_last_anomaly, m.t_last_anomaly - kStormEnd);
  } else {
    std::printf("; run clean\n");
  }
}

void run_topology(const mdr::bench::FigureSetup& setup) {
  using namespace mdr;
  std::printf("\n==== %s: flap storm over [%.0f, %.0f] s ====\n",
              setup.name.c_str(), kStormStart, kStormEnd);
  const auto base = storm_config(setup.spec.topo, /*hardened=*/false);
  for (const auto& f : base.faults.flaps) {
    std::printf("  flap %s<->%s period=%.1fs duty=%.2f\n", f.a.c_str(),
                f.b.c_str(), f.period, f.duty);
  }

  const auto undamped = sim::run_simulation(setup.spec.topo, setup.spec.flows,
                                            base);
  const auto damped = sim::run_simulation(
      setup.spec.topo, setup.spec.flows,
      storm_config(setup.spec.topo, /*hardened=*/true));
  print_run("undamped (pacing + damping off)", undamped);
  print_run("damped (pace 20-80 s, damping 1000/2000/750 hl=24)", damped);

  const double ratio =
      damped.lsus_originated > 0
          ? static_cast<double>(undamped.lsus_originated) /
                static_cast<double>(damped.lsus_originated)
          : 0.0;
  std::printf("\nflood reduction: %.1fx fewer LSU originations when damped\n",
              ratio);
}

}  // namespace

int main() {
  using namespace mdr;
  // Light load (the storm stresses the control plane, not the data plane).
  run_topology(bench::FigureSetup{
      {topo::make_net1(), topo::net1_flows(0.3), sim::SimConfig{},
       sim::EngineSpec{}},
      "NET1"});
  run_topology(bench::FigureSetup{
      {topo::make_cairn(), topo::cairn_flows(0.3), sim::SimConfig{},
       sim::EngineSpec{}},
      "CAIRN"});
  return 0;
}
