// Ablation: flow-allocation strategies (DESIGN.md design-choice study).
//
// Holds MPDA's loop-free multipath fixed and varies only the traffic
// distribution over the successor sets:
//   * SP            — best successor only (no balancing at all)
//   * IH-only       — initial distribution, never adjusted (Ts = infinity)
//   * IH+AH d=1.0   — the full proportional shift as Fig. 7 reads
//   * IH+AH d=0.5   — the library default (half shift)
//   * IH+AH d=0.25  — extra damping
// measured on CAIRN under the paper workload, against the OPT lower bound.
// This quantifies the AH-damping calibration discussed in
// MpRouterOptions::ah_damping and EXPERIMENTS.md.
#include <cstdio>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup();
  auto base = setup.spec;
  base.config.duration = 90;

  const auto opt = bench::aggregate_means(bench::replicated(base, "opt"));
  double opt_avg = 0;
  for (const double d : opt) opt_avg += d / static_cast<double>(opt.size());

  struct Variant {
    const char* name;
    const char* mode;
    double ts;
    double damping;
  };
  const Variant variants[] = {
      {"SP (best successor)", "sp", 10, 0.5},
      {"IH-only (no AH)", "mp", 1e6, 0.5},
      {"IH+AH damping 1.0", "mp", 2, 1.0},
      {"IH+AH damping 0.5", "mp", 2, 0.5},
      {"IH+AH damping 0.25", "mp", 2, 0.25},
  };

  std::printf("== Allocation ablation on CAIRN (OPT mean %.3f ms) ==\n",
              opt_avg * 1e3);
  std::printf("%-24s %12s %10s\n", "variant", "mean (ms)", "vs OPT");
  for (const auto& v : variants) {
    auto spec = base;
    spec.config.tl = 10;
    spec.config.ts = v.ts;
    spec.config.ah_damping = v.damping;
    const auto delays = bench::aggregate_means(bench::replicated(spec, v.mode));
    double avg = 0;
    for (const double d : delays) avg += d / static_cast<double>(delays.size());
    std::printf("%-24s %12.3f %9.3fx\n", v.name, avg * 1e3, avg / opt_avg);
  }
  return 0;
}
