// Figure 14: "Effect of increasing Tl in NET1."
//
// As Figure 13, on NET1: doubling Tl leaves MP's delays essentially
// unchanged while SP's grow — with the delay-based estimator variant the
// paper's "more than doubled" magnitude appears. Series are 5-seed means
// over a 240s horizon, replicated in parallel by the runner.
#include <iostream>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::net1_setup();
  auto base = setup.spec;
  base.config.warmup = 20;
  base.config.duration = 240;

  for (const auto estimator : {cost::EstimatorKind::kUtilization,
                               cost::EstimatorKind::kObservable}) {
    base.config.estimator = estimator;
    const auto run_avg = [&](const std::string& mode, double tl, double ts) {
      auto spec = base;
      spec.config.tl = tl;
      spec.config.ts = ts;
      return bench::aggregate_means(bench::replicated(spec, mode));
    };

    const auto mp_tl10 = run_avg("mp", 10, 2);
    const auto mp_tl20 = run_avg("mp", 20, 2);
    const auto sp_tl10 = run_avg("sp", 10, 10);
    const auto sp_tl20 = run_avg("sp", 20, 20);

    sim::DelayTable table(sim::flow_labels(setup.spec.flows));
    table.add_series("MP-TL-10-TS-2", mp_tl10);
    table.add_series("MP-TL-20-TS-2", mp_tl20);
    table.add_series("SP-TL-10", sp_tl10);
    table.add_series("SP-TL-20", sp_tl20);
    const std::string which = estimator == cost::EstimatorKind::kUtilization
                                  ? "utilization estimator"
                                  : "delay-based estimator";
    table.print(std::cout, "Figure 14: effect of Tl in NET1 (" + which + ")");

    bench::print_ratio_summary("MP TL-20 vs TL-10", mp_tl20, mp_tl10);
    bench::print_ratio_summary("SP TL-20 vs TL-10", sp_tl20, sp_tl10);
    std::cout << "\n";
  }
  return 0;
}
