// Ablation: protocol convergence cost — PDA vs MPDA vs MPATH.
//
// Counts the messages exchanged (and per-router LSU sends) until
// quiescence after (a) cold start and (b) a single link-cost change, across
// topology sizes. MPDA pays for its instantaneous loop-freedom with ACK
// traffic; this table quantifies the premium over plain PDA and compares
// the distance-vector realization (MPATH). Complements the paper's claim
// that MP's complexity is "similar to the complexity of routing protocols
// that provide single-path routing in the Internet today".
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "core/mpda.h"
#include "mpath/mpath.h"
#include "proto/pda.h"
#include "topo/builders.h"
#include "util/rng.h"

// The gtest-oriented harness lives in tests/; replicate the tiny message
// pump here for the two sink types.
namespace {

using namespace mdr;
using graph::Cost;
using graph::NodeId;

template <typename Process, typename Sink, typename Message>
class Pump {
 public:
  using Factory = std::function<std::unique_ptr<Process>(NodeId, std::size_t,
                                                         Sink&)>;

  Pump(const graph::Topology& topo, const std::vector<Cost>& costs,
       Factory factory)
      : topo_(&topo), costs_(costs) {
    for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
      sinks_.push_back(std::make_unique<SinkImpl>(this));
      nodes_.push_back(factory(i, topo.num_nodes(), *sinks_.back()));
    }
  }

  Process& node(NodeId i) { return *nodes_[i]; }

  // All adjacencies come up before any LSU is delivered: propagation takes
  // time while link-up detection is local, so no router can receive a
  // message from a neighbor it has not yet detected (the adjacency-symmetry
  // assumption DESIGN.md documents; real protocols guarantee it with a
  // hello handshake).
  void bring_up_all(Rng&) {
    for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo_->num_links());
         ++id) {
      const auto& l = topo_->link(id);
      nodes_[l.from]->on_link_up(l.to, costs_[id]);
    }
  }

  bool deliver_one(Rng& rng) {
    std::vector<std::pair<NodeId, NodeId>> ready;
    for (const auto& [key, q] : queues_) {
      if (!q.empty()) ready.push_back(key);
    }
    if (ready.empty()) return false;
    const auto key = ready[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(ready.size()) - 1))];
    auto& q = queues_[key];
    const Message msg = q.front();
    q.pop_front();
    deliver(*nodes_[key.second], msg);
    ++delivered_;
    return true;
  }

  std::size_t run(Rng& rng) {
    std::size_t before = delivered_;
    while (deliver_one(rng)) {
    }
    return delivered_ - before;
  }

  std::size_t delivered() const { return delivered_; }

 private:
  static void deliver(Process& p, const proto::LsuMessage& m) { p.on_lsu(m); }
  static void deliver(Process& p, const mpath::VectorMessage& m) {
    p.on_message(m);
  }

  struct SinkImpl final : Sink {
    explicit SinkImpl(Pump* p) : pump(p) {}
    void send(NodeId neighbor, const Message& msg) override {
      pump->queues_[{msg.sender, neighbor}].push_back(msg);
    }
    Pump* pump;
  };

  const graph::Topology* topo_;
  std::vector<Cost> costs_;
  std::vector<std::unique_ptr<SinkImpl>> sinks_;
  std::vector<std::unique_ptr<Process>> nodes_;
  std::map<std::pair<NodeId, NodeId>, std::deque<Message>> queues_;
  std::size_t delivered_ = 0;
};

template <typename PumpT>
void report(const char* name, const graph::Topology& topo,
            const std::vector<Cost>& costs, typename PumpT::Factory factory) {
  Rng rng(17);
  PumpT pump(topo, costs, factory);
  pump.bring_up_all(rng);
  const std::size_t cold = pump.run(rng) ;
  const std::size_t cold_total = pump.delivered();
  // One link-cost change.
  const auto& l = topo.link(0);
  pump.node(l.from).on_link_cost_change(l.to, costs[0] * 2.0);
  const std::size_t incremental = pump.run(rng);
  std::printf("  %-8s cold-start %6zu msgs   one-change %5zu msgs\n", name,
              cold_total, incremental);
  (void)cold;
}

void run_size(std::size_t n, double p) {
  Rng trng(n);
  const auto topo = topo::make_random(n, p, trng);
  std::vector<Cost> costs;
  Rng crng(n * 7);
  for (std::size_t i = 0; i < topo.num_links(); ++i) {
    costs.push_back(crng.uniform(0.5, 3.0));
  }
  std::printf("n=%zu links=%zu\n", n, topo.num_links());
  report<Pump<proto::PdaProcess, proto::LsuSink, proto::LsuMessage>>(
      "PDA", topo, costs,
      [](NodeId s, std::size_t num, proto::LsuSink& sink) {
        return std::make_unique<proto::PdaProcess>(s, num, sink);
      });
  report<Pump<core::MpdaProcess, proto::LsuSink, proto::LsuMessage>>(
      "MPDA", topo, costs,
      [](NodeId s, std::size_t num, proto::LsuSink& sink) {
        return std::make_unique<core::MpdaProcess>(s, num, sink);
      });
  report<Pump<mpath::MpathProcess, mpath::VectorSink, mpath::VectorMessage>>(
      "MPATH", topo, costs,
      [](NodeId s, std::size_t num, mpath::VectorSink& sink) {
        return std::make_unique<mpath::MpathProcess>(s, num, sink);
      });
}

}  // namespace

int main() {
  std::puts("== Convergence cost: messages to quiescence ==");
  for (const std::size_t n : {8, 16, 26, 40}) run_size(n, 0.2);
  return 0;
}
