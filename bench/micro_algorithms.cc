// Micro-benchmarks (google-benchmark) for the core algorithmic kernels:
// Dijkstra, the MTU merge, the allocation heuristics, the LSU codec, the
// flow-plane conservation solve, one Gallager iteration, and the
// discrete-event queue. These bound the per-event cost of a router and the
// per-iteration cost of the baselines.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/allocation.h"
#include "flow/evaluate.h"
#include "gallager/optimizer.h"
#include "graph/dijkstra.h"
#include "proto/lsu.h"
#include "proto/pda.h"
#include "sim/event_queue.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace {

using namespace mdr;
using graph::Cost;
using graph::NodeId;

std::vector<graph::CostedEdge> random_edges(const graph::Topology& topo,
                                            Rng& rng) {
  std::vector<graph::CostedEdge> edges;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    edges.push_back(graph::CostedEdge{topo.link(id).from, topo.link(id).to,
                                      rng.uniform(0.5, 3.0)});
  }
  return edges;
}

void BM_Dijkstra(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto topo = topo::make_random(n, 0.2, rng);
  const auto edges = random_edges(topo, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(n, edges, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dijkstra)->Arg(10)->Arg(26)->Arg(64)->Arg(128)->Complexity();

void BM_MtuMerge(benchmark::State& state) {
  // One MTU call on a CAIRN-degree router with populated neighbor tables.
  Rng rng(2);
  const auto topo = topo::make_cairn();
  const auto edges = random_edges(topo, rng);
  // Build neighbor trees once: each neighbor's SPT over the full topology.
  proto::RouterTables tables(0, topo.num_nodes());
  for (const NodeId k : topo.neighbors(0)) {
    tables.link_up(k, 1.0);
    const auto spt = graph::dijkstra(topo.num_nodes(), edges, k);
    const auto tree = graph::tree_edges(spt, edges);
    std::vector<proto::LsuEntry> entries;
    for (const auto& e : tree) {
      entries.push_back(
          proto::LsuEntry{e.from, e.to, e.cost, proto::LsuOp::kAddOrChange});
    }
    tables.apply_lsu(k, entries);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tables.mtu());
  }
}
BENCHMARK(BM_MtuMerge);

void BM_InitialAllocation(benchmark::State& state) {
  Rng rng(3);
  std::vector<core::SuccessorMetric> metrics;
  for (int i = 0; i < state.range(0); ++i) {
    metrics.push_back(core::SuccessorMetric{i, rng.uniform(0.5, 3.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::initial_allocation(metrics));
  }
}
BENCHMARK(BM_InitialAllocation)->Arg(2)->Arg(4)->Arg(8);

void BM_AdjustAllocation(benchmark::State& state) {
  Rng rng(4);
  std::vector<core::SuccessorMetric> metrics;
  for (int i = 0; i < state.range(0); ++i) {
    metrics.push_back(core::SuccessorMetric{i, rng.uniform(0.5, 3.0)});
  }
  auto phi = core::initial_allocation(metrics);
  for (auto _ : state) {
    auto copy = phi;
    core::adjust_allocation(metrics, copy, 0.5);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_AdjustAllocation)->Arg(2)->Arg(4)->Arg(8);

void BM_LsuEncodeDecode(benchmark::State& state) {
  Rng rng(5);
  proto::LsuMessage msg;
  msg.sender = 3;
  for (int i = 0; i < state.range(0); ++i) {
    msg.entries.push_back(proto::LsuEntry{
        rng.uniform_int(0, 25), rng.uniform_int(0, 25), rng.uniform(0.1, 5.0),
        proto::LsuOp::kAddOrChange});
  }
  for (auto _ : state) {
    const auto wire = proto::encode(msg);
    benchmark::DoNotOptimize(proto::decode(wire));
  }
}
BENCHMARK(BM_LsuEncodeDecode)->Arg(1)->Arg(8)->Arg(64);

void BM_ComputeFlows(benchmark::State& state) {
  const auto topo = topo::make_cairn();
  const flow::FlowNetwork net(topo, 8e3);
  const auto traffic = topo::to_traffic_matrix(topo, topo::cairn_flows());
  const auto phi = gallager::shortest_path_phi(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::compute_flows(net, traffic, phi));
  }
}
BENCHMARK(BM_ComputeFlows);

void BM_GallagerIteration(benchmark::State& state) {
  const auto topo = topo::make_cairn();
  const flow::FlowNetwork net(topo, 8e3);
  const auto traffic = topo::to_traffic_matrix(topo, topo::cairn_flows());
  gallager::Options options;
  options.max_iterations = 1;
  options.patience = 1000;  // never triggers within one iteration
  for (auto _ : state) {
    benchmark::DoNotOptimize(gallager::minimize(net, traffic, options));
  }
}
BENCHMARK(BM_GallagerIteration);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(static_cast<double>(i % 97), [&sink] { ++sink; });
    }
    while (q.run_next()) {
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_EventQueue);

}  // namespace

BENCHMARK_MAIN();
