// Ablation: the two update timescales (paper Section 4.2 / 5.2).
//
// Sweeps the short-term interval Ts at fixed Tl and the long-term interval
// Tl at fixed Ts on CAIRN, printing MP's network-average delay. Expected
// shape: delay is nearly flat in Tl (local balancing compensates — the
// paper's headline tuning result) and degrades gracefully as Ts grows,
// approaching the IH-only level when Ts exceeds the horizon.
#include <cstdio>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup();
  auto base = setup.spec;
  base.config.duration = 90;

  const auto run_avg = [&](double tl, double ts) {
    return bench::replicated(bench::mp_spec(base, tl, ts), "mp")
        .avg_delay_s.mean();
  };

  std::puts("== MP delay vs short-term interval Ts (Tl = 10 s) ==");
  std::printf("%-10s %14s\n", "Ts (s)", "mean delay (ms)");
  for (const double ts : {0.5, 1.0, 2.0, 5.0, 10.0, 1e6}) {
    std::printf("%-10.1f %14.3f%s\n", ts, run_avg(10, ts) * 1e3,
                ts >= 1e6 ? "   (IH-only: AH never runs)" : "");
  }

  std::puts("\n== MP delay vs long-term interval Tl (Ts = 2 s) ==");
  std::printf("%-10s %14s\n", "Tl (s)", "mean delay (ms)");
  for (const double tl : {5.0, 10.0, 20.0, 40.0}) {
    std::printf("%-10.0f %14.3f\n", tl, run_avg(tl, 2) * 1e3);
  }
  return 0;
}
