// Control-plane cost baseline: incremental table maintenance (dirty-set
// MTU + dynamic SPT, proto/pda.cc) against the from-scratch NTU/MTU it
// replaced.
//
// Storm series: one high-degree router of a sparse Waxman graph rides out
// an LSU storm — a pre-generated stream of small tree diffs, one per
// remote-link perturbation, each followed by an MTU. The identical stream
// is replayed through (a) the real incremental RouterTables and (b) a
// faithful port of the pre-incremental implementation (Dijkstra per LSU
// over the neighbor's topology, full N-destination merge + Dijkstra +
// prune per MTU). Both must agree on every distance at the end — the
// speedup is only meaningful if the outputs match.
//
// Startup series: the waxman_scale.scn workload (1000 sparse routers, 100
// flows, sharded engine) run through the whole simulator — the
// macro-level wall clock the incremental control plane is meant to cut.
// scripts/run_bench.py --bench control_plane drives this binary, then
// measures the profiler-attributed table_update+recompute busy-time share
// on the same scenario via mdrsim --prof-deep and folds it into the JSON;
// the committed baseline lives in BENCH_control_plane.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/dijkstra.h"
#include "proto/lsu.h"
#include "proto/pda.h"
#include "proto/tables.h"
#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace mdr::bench {
namespace {

using graph::Cost;
using graph::NodeId;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ------------------------------------------------ from-scratch oracle
//
// The pre-incremental RouterTables, ported verbatim from the repo history
// (apply_lsu: full Dijkstra over the neighbor topology; mtu: full
// N-destination preferred-neighbor merge, Dijkstra, prune, diff). Kept
// here as the bench comparator only.
class FromScratchTables {
 public:
  FromScratchTables(NodeId self, std::size_t num_nodes)
      : self_(self), num_nodes_(num_nodes),
        dist_(num_nodes, graph::kInfCost) {
    dist_[self_] = 0;
  }

  void link_up(NodeId k, Cost cost) {
    neighbors_.insert(k);
    link_costs_[k] = cost;
    nbr_topo_[k].clear();
    auto& dist = nbr_dist_[k];
    dist.assign(num_nodes_, graph::kInfCost);
    dist[k] = 0;
  }

  void apply_lsu(NodeId k, std::span<const proto::LsuEntry> entries) {
    proto::LinkStateTable& topo = nbr_topo_[k];
    for (const proto::LsuEntry& e : entries) topo.apply(e);
    const auto spt = graph::dijkstra(num_nodes_, topo.edges(), k);
    nbr_dist_[k] = spt.dist;
  }

  std::vector<proto::LsuEntry> mtu() {
    const proto::LinkStateTable before = main_;
    proto::LinkStateTable merged;
    for (NodeId j = 0; j < static_cast<NodeId>(num_nodes_); ++j) {
      if (j == self_) continue;
      NodeId preferred = graph::kInvalidNode;
      Cost best = graph::kInfCost;
      for (const NodeId k : neighbors_) {
        const Cost d = nbr_dist_[k][j] + link_costs_[k];
        if (d < best) {
          best = d;
          preferred = k;
        }
      }
      if (preferred == graph::kInvalidNode) continue;
      for (const auto& [tail, cost] : nbr_topo_[preferred].links_from(j)) {
        merged.set(j, tail, cost);
      }
    }
    for (const NodeId k : neighbors_) merged.set(self_, k, link_costs_[k]);
    const auto spt = graph::dijkstra(num_nodes_, merged.edges(), self_);
    proto::LinkStateTable pruned;
    for (NodeId v = 0; v < static_cast<NodeId>(num_nodes_); ++v) {
      const NodeId parent = spt.parent[v];
      if (parent == graph::kInvalidNode) continue;
      pruned.set(parent, v, *merged.cost(parent, v));
    }
    dist_ = spt.dist;
    dist_[self_] = 0;
    main_ = pruned;
    return proto::LinkStateTable::diff(before, main_);
  }

  Cost distance(NodeId j) const { return dist_[j]; }

 private:
  NodeId self_;
  std::size_t num_nodes_;
  proto::LinkStateTable main_;
  std::map<NodeId, proto::LinkStateTable> nbr_topo_;
  std::map<NodeId, std::vector<Cost>> nbr_dist_;
  std::map<NodeId, Cost> link_costs_;
  std::set<NodeId> neighbors_;
  std::vector<Cost> dist_;
};

// ----------------------------------------------------- storm workload

struct StormEvent {
  NodeId from;  ///< reporting neighbor
  std::vector<proto::LsuEntry> entries;
};

struct StormWorkload {
  std::size_t num_nodes = 0;
  NodeId router = graph::kInvalidNode;
  std::vector<std::pair<NodeId, Cost>> adjacent;  // (neighbor, link cost)
  std::vector<StormEvent> startup;  // full neighbor trees
  std::vector<StormEvent> storm;    // small diffs under link churn
};

std::vector<proto::LsuEntry> as_lsu(
    const std::vector<graph::CostedEdge>& edges) {
  std::vector<proto::LsuEntry> out;
  out.reserve(edges.size());
  for (const auto& e : edges) {
    out.push_back(
        proto::LsuEntry{e.from, e.to, e.cost, proto::LsuOp::kAddOrChange});
  }
  return out;
}

// Builds the event stream ONCE — both series replay the same bytes, so
// the generator's Dijkstras never leak into a measured window.
StormWorkload make_storm(std::size_t nodes, int events, Rng& rng) {
  StormWorkload w;
  const auto topo = topo::make_waxman(nodes, 0.1, 0.1, rng);
  w.num_nodes = topo.num_nodes();
  std::vector<graph::CostedEdge> edges;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    edges.push_back(graph::CostedEdge{topo.link(id).from, topo.link(id).to,
                                      rng.uniform(0.5, 3.0)});
  }
  // The observed router: the highest-degree node (worst-case merge fanout).
  for (NodeId v = 0; v < static_cast<NodeId>(topo.num_nodes()); ++v) {
    if (w.router == graph::kInvalidNode ||
        topo.neighbors(v).size() > topo.neighbors(w.router).size()) {
      w.router = v;
    }
  }
  std::map<NodeId, proto::LinkStateTable> last_tree;  // per reporting nbr
  const auto tree_of = [&](NodeId k) {
    proto::LinkStateTable t;
    for (const auto& e :
         graph::tree_edges(graph::dijkstra(topo.num_nodes(), edges, k),
                           edges)) {
      t.set(e.from, e.to, e.cost);
    }
    return t;
  };
  for (const NodeId k : topo.neighbors(w.router)) {
    for (const auto& e : edges) {
      if (e.from == w.router && e.to == k) {
        w.adjacent.emplace_back(k, e.cost);
        break;
      }
    }
    proto::LinkStateTable t = tree_of(k);
    w.startup.push_back(StormEvent{k, as_lsu(t.edges())});
    last_tree[k] = std::move(t);
  }
  for (int i = 0; i < events; ++i) {
    // Perturb one random link, then the next neighbor reports its new tree
    // as a diff — the small-delta regime a real LSU storm produces.
    auto& e = edges[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(edges.size()) - 1))];
    e.cost = rng.uniform(0.5, 3.0);
    const NodeId k =
        w.adjacent[static_cast<std::size_t>(i) % w.adjacent.size()].first;
    proto::LinkStateTable t = tree_of(k);
    auto diff = proto::LinkStateTable::diff(last_tree[k], t);
    last_tree[k] = std::move(t);
    if (diff.empty()) continue;  // perturbation outside k's tree
    w.storm.push_back(StormEvent{k, std::move(diff)});
  }
  return w;
}

struct Series {
  std::uint64_t events = 0;
  double wall_s = 0;
  double ns_per_event() const { return wall_s * 1e9 / events; }
  double events_per_sec() const { return events / wall_s; }
};

// Replays the storm through either implementation (identical call shape).
template <typename Tables>
Series replay(const StormWorkload& w, Tables& t) {
  for (const auto& [k, cost] : w.adjacent) t.link_up(k, cost);
  for (const auto& ev : w.startup) {
    t.apply_lsu(ev.from, ev.entries);
  }
  t.mtu();
  Series s;
  const auto t0 = Clock::now();
  for (const auto& ev : w.storm) {
    t.apply_lsu(ev.from, ev.entries);
    t.mtu();
  }
  s.wall_s = seconds_since(t0);
  s.events = w.storm.size();
  return s;
}

// --------------------------------------------------- startup macro

struct Startup {
  std::size_t nodes = 0;
  int shards = 0;
  double sim_seconds = 0;
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
};

// Mirrors examples/scenarios/waxman_scale.scn so the profiler share
// measured by run_bench.py on that scenario contextualizes this number.
Startup bench_startup(std::size_t nodes, double sim_seconds) {
  Rng rng(11);
  const auto topo = topo::make_waxman(nodes, /*a=*/0.06, /*b=*/0.06, rng,
                                      /*capacity_bps=*/10e6,
                                      /*max_prop_delay_s=*/5e-3,
                                      /*min_prop_delay_s=*/1e-3);
  const auto flows =
      topo::random_flows(topo, nodes / 10, /*mean_rate_bps=*/1e6, rng);
  sim::SimConfig config;
  config.traffic_start = 0.5;
  config.warmup = 0.5;
  config.duration = sim_seconds;
  config.tl = 4.0;
  config.ts = 2.0;
  config.seed = 11;
  sim::EngineSpec engine;
  engine.shards = 4;

  Startup m;
  m.nodes = nodes;
  m.shards = engine.shards;
  m.sim_seconds = sim_seconds;
  const auto t0 = Clock::now();
  const auto result = sim::run_simulation(topo, flows, config, engine);
  m.wall_s = seconds_since(t0);
  m.events = result.events_processed;
  m.delivered = result.delivered;
  return m;
}

// ---------------------------------------------------------------- main

int run(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  const std::size_t storm_nodes = smoke ? 120 : 300;
  const int storm_events = smoke ? 400 : 2000;
  const std::size_t startup_nodes = smoke ? 200 : 1000;
  const double startup_sim_s = 1.0;

  Rng rng(17);
  const StormWorkload storm = make_storm(storm_nodes, storm_events, rng);
  proto::RouterTables incremental(storm.router, storm.num_nodes);
  FromScratchTables scratch(storm.router, storm.num_nodes);
  const Series inc = replay(storm, incremental);
  const Series fs = replay(storm, scratch);
  // The comparison is meaningless unless the two agree on every distance.
  for (NodeId j = 0; j < static_cast<NodeId>(storm.num_nodes); ++j) {
    if (incremental.distance(j) != scratch.distance(j)) {
      std::fprintf(stderr,
                   "FATAL: incremental and from-scratch disagree on D(%d): "
                   "%.17g vs %.17g\n",
                   j, incremental.distance(j), scratch.distance(j));
      return 1;
    }
  }
  const double speedup = fs.ns_per_event() / inc.ns_per_event();

  const Startup startup = bench_startup(startup_nodes, startup_sim_s);
  const unsigned host_cpus = std::thread::hardware_concurrency();

  std::FILE* out = out_path ? std::fopen(out_path, "w") : stdout;
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"control_plane\",\n  \"version\": 1,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(out,
               "  \"storm\": {\"scenario\": \"waxman_%zu_hub_degree_%zu\", "
               "\"events\": %llu,\n",
               storm_nodes, storm.adjacent.size(),
               static_cast<unsigned long long>(inc.events));
  std::fprintf(out,
               "    \"incremental\": {\"events\": %llu, \"wall_seconds\": "
               "%.6f, \"ns_per_event\": %.1f, \"events_per_sec\": %.0f},\n",
               static_cast<unsigned long long>(inc.events), inc.wall_s,
               inc.ns_per_event(), inc.events_per_sec());
  std::fprintf(out,
               "    \"from_scratch\": {\"events\": %llu, \"wall_seconds\": "
               "%.6f, \"ns_per_event\": %.1f, \"events_per_sec\": %.0f},\n",
               static_cast<unsigned long long>(fs.events), fs.wall_s,
               fs.ns_per_event(), fs.events_per_sec());
  std::fprintf(out, "    \"speedup_vs_from_scratch\": %.2f\n  },\n", speedup);
  std::fprintf(out,
               "  \"startup\": {\"scenario\": \"waxman_%zu\", \"nodes\": %zu, "
               "\"shards\": %d, \"sim_seconds\": %.1f, \"wall_seconds\": "
               "%.3f, \"events\": %llu, \"events_per_sec\": %.0f, "
               "\"delivered\": %llu}\n}\n",
               startup.nodes, startup.nodes, startup.shards,
               startup.sim_seconds, startup.wall_s,
               static_cast<unsigned long long>(startup.events),
               startup.events / startup.wall_s,
               static_cast<unsigned long long>(startup.delivered));
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr,
               "storm: incremental %.0f ev/s vs from-scratch %.0f ev/s "
               "(%.1fx) | startup n=%zu s%d %.1fs wall\n",
               inc.events_per_sec(), fs.events_per_sec(), speedup,
               startup.nodes, startup.shards, startup.wall_s);
  return 0;
}

}  // namespace
}  // namespace mdr::bench

int main(int argc, char** argv) { return mdr::bench::run(argc, argv); }
