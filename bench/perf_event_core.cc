// Event-core perf baseline: typed pooled events vs the former
// std::function heap, plus a timer-wheel series and a macro CAIRN run.
//
// Micro series (steady state, measured after warmup). Both hop series run
// the SAME workload — a CAIRN-scale population of periodic protocol timers
// (hello / Ts / Tl / retransmit) plus concurrent packet-hop chains — so the
// comparison is like-for-like:
//  * legacy_fn_heap — a faithful port of the pre-rebuild core
//    (std::priority_queue of {time, seq, std::function}) driving the old
//    SimLink event shape: timers and transmit-completes as small-buffer
//    lambdas, one packet-carrying lambda per delivery (heap-allocated —
//    the Packet capture exceeds std::function's small-buffer optimization).
//  * typed_link_hop — the real EventQueue + SimLink packet path with the
//    timers parked on the wheel: a delivered packet is immediately
//    re-offered to the link, so the enqueue / transmit-complete / delivery
//    cycle runs at event-core speed. The headline structural number is
//    allocations/event, which must be exactly zero.
//  * timer_wheel — a pure population of periodic timers on the hashed
//    wheel, the hello/Ts/Tl/retransmit pattern in isolation.
//
// Macro: run_simulation on CAIRN at the figure load for 60 simulated
// seconds, one seed — wall clock, total events, events/sec, peak RSS.
//
// Engine series: the same simulation pipeline on a generated Waxman graph
// with a 1 ms propagation-delay floor (so the sharded engine's conservative
// lookahead windows are wide), run on the legacy engine (shards = 0) and
// the parallel engine at 1 / 2 / 4 / 8 shards. Plus one "scale" point: the
// first 1000-router run, sharded. The emitted host_cpus field is the
// honesty context for both — shard throughput can only scale with real
// cores, and a 1-CPU container will show the barrier overhead, not a
// speedup (docs/BENCHMARKS.md).
//
// Honesty note: on this workload the typed core's throughput gain over the
// legacy heap is modest (tcache makes the legacy closure allocations cheap
// in a single-threaded steady loop); the rebuild's hard wins are the zero
// allocation rate, the flat pool, and O(1) wheel residency for timers.
// docs/BENCHMARKS.md discusses the measured numbers.
//
// Allocation counting interposes global operator new within this binary
// (single-threaded, so a plain counter suffices). scripts/run_bench.py
// drives this binary and validates the emitted JSON; the committed
// baseline lives in BENCH_event_core.json.
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <deque>
#include <thread>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "cost/estimators.h"
#include "graph/topology.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace {
// Relaxed atomic: the sharded engine series allocates from worker threads.
// The micro series that reads the counter runs strictly single-threaded.
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mdr::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Series {
  std::uint64_t events = 0;
  double wall_s = 0;
  std::uint64_t allocs = 0;
  double ns_per_event() const { return wall_s * 1e9 / events; }
  double events_per_sec() const { return events / wall_s; }
  double allocs_per_event() const {
    return static_cast<double>(allocs) / events;
  }
};

// ------------------------------------------------- legacy core (port)

// The pre-rebuild EventQueue, verbatim apart from the name: a binary
// priority_queue whose elements own a std::function.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  Time now() const { return now_; }
  void schedule_at(Time t, Callback fn) {
    heap_.push(Event{t, next_seq_++, std::move(fn)});
  }
  void schedule_in(Duration delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }
  bool run_next() {
    if (heap_.empty()) return false;
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
    return true;
  }
  std::size_t processed() const { return processed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

// Shared micro-workload shape: a CAIRN-scale timer population riding along
// with the packet-hop chains. Timer events are a negligible fraction of
// the event count; what they stress is residency — the legacy core keeps
// all of them inside the heap every sift, the typed core parks them on
// the wheel.
constexpr int kTimers = 256;
constexpr int kChains = 32;

double timer_period(int i) { return 0.5 + 0.01 * (i % 150); }

// The old SimLink's event shape AND its per-hop work, so the two series
// compare full pipeline against full pipeline: timers and
// transmit-completes capture only `this` (fits the small-buffer
// optimization), delivery captures the moved Packet (heap-allocates,
// every hop), and each departure pays the same queue round-trip,
// estimator observations and loss draw the real link pays.
struct LegacyChain {
  LegacyEventQueue* events;
  std::int64_t* remaining;
  std::unique_ptr<cost::MarginalDelayEstimator> short_est;
  std::unique_ptr<cost::MarginalDelayEstimator> long_est;
  Rng rng{12345};
  struct Queued {
    sim::Packet packet;
    Time enqueued;
  };
  std::deque<Queued> queue;
  Queued in_service;

  void send(sim::Packet p) {
    queue.push_back(Queued{std::move(p), events->now()});
    in_service = std::move(queue.front());
    queue.pop_front();
    events->schedule_in(1e-5, [this] { complete(); });
  }
  void complete() {
    sim::Packet p = std::move(in_service.packet);
    cost::PacketObservation obs;
    obs.arrival_time = in_service.enqueued;
    obs.departure_time = events->now();
    obs.service_time = 1e-5;
    obs.size_bits = p.size_bits + sim::kHeaderBits;
    obs.started_busy_period = true;
    short_est->observe(obs);
    long_est->observe(obs);
    const bool lost = rng.uniform() < 0.0;
    (void)lost;
    events->schedule_in(1e-5,
                        [this, p = std::move(p)]() mutable {
                          if (--*remaining > 0) send(std::move(p));
                        });
  }
};

struct LegacyTimer {
  LegacyEventQueue* events;
  double period;
  void arm() {
    events->schedule_in(period, [this] { arm(); });
  }
};

Series bench_legacy(std::uint64_t hops) {
  LegacyEventQueue events;
  std::int64_t remaining =
      static_cast<std::int64_t>(hops + hops / 10);
  std::deque<LegacyTimer> timers;
  for (int i = 0; i < kTimers; ++i) {
    timers.push_back(LegacyTimer{&events, timer_period(i)});
    timers.back().arm();
  }
  // Time-based warmup, mirrored in the typed series: two wheel revolutions
  // (2 x 16 s) so the typed core's slot vectors reach their steady-state
  // high-water capacity before measurement. The legacy heap has no such
  // transient, but both series must start the clock at the same sim time.
  while (events.now() < 34.0) events.run_next();
  std::deque<LegacyChain> chains;
  for (int i = 0; i < kChains; ++i) {
    chains.emplace_back();
    chains.back().events = &events;
    chains.back().remaining = &remaining;
    chains.back().short_est = cost::make_estimator(
        cost::EstimatorKind::kObservable, 1e8, 1e-5, 8e3);
    chains.back().long_est = cost::make_estimator(
        cost::EstimatorKind::kObservable, 1e8, 1e-5, 8e3);
    sim::Packet p;
    p.size_bits = 8e3;
    chains.back().send(std::move(p));
  }
  while (remaining > static_cast<std::int64_t>(hops)) events.run_next();

  Series s;
  const std::uint64_t events0 = events.processed();
  const std::uint64_t allocs0 = g_allocs;
  const auto t0 = Clock::now();
  while (remaining > 0) events.run_next();
  s.wall_s = seconds_since(t0);
  s.events = events.processed() - events0;
  s.allocs = g_allocs - allocs0;
  return s;
}

// ------------------------------------------------- typed pooled core

Series bench_typed_link_hop(std::uint64_t hops) {
  sim::EventQueue events;
  std::int64_t remaining =
      static_cast<std::int64_t>(hops + hops / 10);
  struct WheelTimer {
    sim::EventQueue* events;
    double period;
    void arm() {
      events->schedule_timer_in(period, [this] { arm(); });
    }
  };
  std::deque<WheelTimer> timers;
  for (int i = 0; i < kTimers; ++i) {
    timers.push_back(WheelTimer{&events, timer_period(i)});
    timers.back().arm();
  }
  // Two full wheel revolutions before measurement: the wheel's slot vectors
  // grow to their high-water capacity and keep it (cascade uses resize, not
  // shrink), so the measured window sees the true steady state — zero
  // allocations. The legacy series runs the identical warmup.
  while (events.now() < 34.0) events.run_next();
  // Fast links so the loop is event-core bound, with the real estimator
  // observation per departure — the full per-hop cost the simulator pays.
  std::deque<sim::SimLink> links;
  std::vector<sim::SimLink*> ptrs(kChains, nullptr);
  for (int i = 0; i < kChains; ++i) {
    links.emplace_back(events, graph::LinkAttr{1e8, 1e-5},
                       cost::EstimatorKind::kObservable, 8e3,
                       [&remaining, &ptrs, i](sim::Packet p) {
                         if (--remaining > 0) ptrs[i]->enqueue(std::move(p));
                       });
    ptrs[i] = &links.back();
    sim::Packet p;
    p.size_bits = 8e3;
    ptrs[i]->enqueue(std::move(p));
  }
  while (remaining > static_cast<std::int64_t>(hops)) events.run_next();

  Series s;
  const std::uint64_t events0 = events.processed();
  const std::uint64_t allocs0 = g_allocs;
  const auto t0 = Clock::now();
  while (remaining > 0) events.run_next();
  s.wall_s = seconds_since(t0);
  s.events = events.processed() - events0;
  s.allocs = g_allocs - allocs0;
  return s;
}

Series bench_timer_wheel(std::uint64_t ticks) {
  // 64 periodic timers with staggered sub-second periods: the protocol's
  // hello / Ts / Tl / retransmit population, all parked on the wheel.
  sim::EventQueue events;
  constexpr int kTimers = 64;
  struct Timer {
    sim::EventQueue* events;
    double period;
    std::uint64_t fired = 0;
    void arm() {
      events->schedule_timer_in(period, [this] {
        ++fired;
        arm();
      });
    }
  };
  std::vector<Timer> timers;
  timers.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    timers.push_back(Timer{&events, 0.25 + 0.025 * i});
    timers.back().arm();
  }
  // Same two-revolution warmup as the hop series: measure the wheel's
  // steady state, after every slot vector has reached its final capacity.
  while (events.now() < 34.0) events.run_next();
  const std::uint64_t warmup = events.processed();

  Series s;
  const std::uint64_t events0 = events.processed();
  const std::uint64_t allocs0 = g_allocs;
  const auto t0 = Clock::now();
  while (events.processed() < warmup + ticks) events.run_next();
  s.wall_s = seconds_since(t0);
  s.events = events.processed() - events0;
  s.allocs = g_allocs - allocs0;
  return s;
}

// --------------------------------------------------------------- macro

struct Macro {
  double sim_seconds = 0;
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t peak_rss_bytes = 0;
};

Macro bench_macro(double duration) {
  sim::SimConfig config;
  config.traffic_start = 3.0;
  config.warmup = 15.0;
  config.duration = duration;
  config.seed = 7;
  const auto topo = topo::make_cairn();
  const auto flows = topo::cairn_flows(1.15);

  Macro m;
  m.sim_seconds = duration;
  const auto t0 = Clock::now();
  const auto result = sim::run_simulation(topo, flows, config);
  m.wall_s = seconds_since(t0);
  m.events = result.events_processed;
  m.delivered = result.delivered;
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  m.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
  return m;
}

// ------------------------------------------------- engine shard scaling

// One (engine, workload) measurement: shards == 0 is the legacy
// single-threaded queue, >= 1 the sharded conservative engine.
struct EnginePoint {
  int shards = 0;
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  double events_per_sec() const { return events / wall_s; }
};

// The shard-scaling workload: a sparse generated Waxman graph whose
// propagation delays are floored at 1 ms, so the conservative lookahead
// window is wide relative to the event density and barrier overhead stays
// a small fraction of the work. Sparse on purpose — every LSU triggers a
// full table update at the receiver, so dense graphs measure the routing
// algebra, not the event engine.
struct EngineWorkload {
  graph::Topology topo;
  std::vector<topo::FlowSpec> flows;
  sim::SimConfig config;
};

EngineWorkload engine_workload(std::size_t nodes, std::size_t flow_count,
                               double sim_seconds) {
  EngineWorkload w;
  Rng rng(11);
  w.topo = topo::make_waxman(nodes, /*a=*/0.06, /*b=*/0.06, rng,
                             /*capacity_bps=*/10e6,
                             /*max_prop_delay_s=*/5e-3,
                             /*min_prop_delay_s=*/1e-3);
  w.flows = topo::random_flows(w.topo, flow_count, /*mean_rate_bps=*/1e6,
                               rng);
  w.config.traffic_start = 0.5;
  w.config.warmup = 0.5;
  w.config.duration = sim_seconds;
  w.config.tl = 4.0;
  w.config.ts = 2.0;
  w.config.seed = 11;
  return w;
}

EnginePoint bench_engine_point(const EngineWorkload& w, int shards) {
  sim::EngineSpec engine;
  engine.shards = shards;
  EnginePoint p;
  p.shards = shards;
  const auto t0 = Clock::now();
  const auto result = sim::run_simulation(w.topo, w.flows, w.config, engine);
  p.wall_s = seconds_since(t0);
  p.events = result.events_processed;
  p.delivered = result.delivered;
  return p;
}

// ---------------------------------------------------------------- main

void print_series(std::FILE* out, const char* name, const Series& s,
                  bool last) {
  std::fprintf(out,
               "    \"%s\": {\"events\": %llu, \"wall_seconds\": %.6f, "
               "\"ns_per_event\": %.2f, \"events_per_sec\": %.0f, "
               "\"allocs_per_event\": %.6f}%s\n",
               name, static_cast<unsigned long long>(s.events), s.wall_s,
               s.ns_per_event(), s.events_per_sec(), s.allocs_per_event(),
               last ? "" : ",");
}

int run(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  const std::uint64_t hops = smoke ? 100000 : 1000000;
  const std::uint64_t ticks = smoke ? 100000 : 1000000;
  const double macro_duration = smoke ? 10.0 : 60.0;
  // Engine series: ~120 routers is deep into macro territory while keeping
  // the 5-point sweep under a minute per point. The scale point is the
  // 1000-router milestone (smoke substitutes 200 — CI minutes are real).
  const std::size_t engine_nodes = smoke ? 60 : 120;
  const double engine_sim_s = smoke ? 4.0 : 10.0;
  const std::size_t scale_nodes = smoke ? 200 : 1000;
  const double scale_sim_s = 1.0;

  const Series legacy = bench_legacy(hops);
  const Series typed = bench_typed_link_hop(hops);
  const Series wheel = bench_timer_wheel(ticks);
  const Macro macro = bench_macro(macro_duration);
  const double speedup = typed.events_per_sec() / legacy.events_per_sec();

  const EngineWorkload engine_work =
      engine_workload(engine_nodes, engine_nodes / 2, engine_sim_s);
  std::vector<EnginePoint> engine_series;
  for (const int shards : {0, 1, 2, 4, 8}) {
    engine_series.push_back(bench_engine_point(engine_work, shards));
  }
  const EngineWorkload scale_work =
      engine_workload(scale_nodes, scale_nodes / 10, scale_sim_s);
  const EnginePoint scale = bench_engine_point(scale_work, 4);
  const unsigned host_cpus = std::thread::hardware_concurrency();

  std::FILE* out = out_path ? std::fopen(out_path, "w") : stdout;
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"event_core\",\n  \"version\": 2,\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(out, "  \"micro\": {\n");
  print_series(out, "legacy_fn_heap", legacy, false);
  print_series(out, "typed_link_hop", typed, false);
  print_series(out, "timer_wheel", wheel, false);
  std::fprintf(out, "    \"speedup_vs_legacy\": %.2f\n  },\n", speedup);
  std::fprintf(out,
               "  \"macro\": {\"scenario\": \"cairn_mp\", "
               "\"sim_seconds\": %.0f, \"wall_seconds\": %.3f, "
               "\"events\": %llu, \"events_per_sec\": %.0f, "
               "\"delivered\": %llu, \"peak_rss_bytes\": %llu},\n",
               macro.sim_seconds, macro.wall_s,
               static_cast<unsigned long long>(macro.events),
               macro.events / macro.wall_s,
               static_cast<unsigned long long>(macro.delivered),
               static_cast<unsigned long long>(macro.peak_rss_bytes));
  std::fprintf(out,
               "  \"engine\": {\"scenario\": \"waxman_%zu\", "
               "\"sim_seconds\": %.1f,\n    \"series\": [\n",
               engine_nodes, engine_sim_s);
  double shard1_eps = 0, shard4_eps = 0;
  for (std::size_t i = 0; i < engine_series.size(); ++i) {
    const EnginePoint& p = engine_series[i];
    if (p.shards == 1) shard1_eps = p.events_per_sec();
    if (p.shards == 4) shard4_eps = p.events_per_sec();
    std::fprintf(out,
                 "      {\"shards\": %d, \"wall_seconds\": %.3f, "
                 "\"events\": %llu, \"events_per_sec\": %.0f, "
                 "\"delivered\": %llu}%s\n",
                 p.shards, p.wall_s,
                 static_cast<unsigned long long>(p.events),
                 p.events_per_sec(),
                 static_cast<unsigned long long>(p.delivered),
                 i + 1 < engine_series.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n    \"speedup_4_shards_vs_1\": %.2f\n  },\n",
               shard1_eps > 0 ? shard4_eps / shard1_eps : 0.0);
  std::fprintf(out,
               "  \"scale\": {\"scenario\": \"waxman_%zu\", \"nodes\": %zu, "
               "\"shards\": %d, \"sim_seconds\": %.1f, "
               "\"wall_seconds\": %.3f, \"events\": %llu, "
               "\"events_per_sec\": %.0f, \"delivered\": %llu}\n}\n",
               scale_nodes, scale_nodes, scale.shards, scale_sim_s,
               scale.wall_s, static_cast<unsigned long long>(scale.events),
               scale.events_per_sec(),
               static_cast<unsigned long long>(scale.delivered));
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr,
               "legacy %.0f ev/s | typed %.0f ev/s (%.2fx, %.4f allocs/ev) "
               "| wheel %.0f ev/s | macro %.0f ev/s\n",
               legacy.events_per_sec(), typed.events_per_sec(), speedup,
               typed.allocs_per_event(), wheel.events_per_sec(),
               macro.events / macro.wall_s);
  std::fprintf(stderr, "engine series (host_cpus=%u):", host_cpus);
  for (const EnginePoint& p : engine_series) {
    std::fprintf(stderr, " s%d %.0f ev/s", p.shards, p.events_per_sec());
  }
  std::fprintf(stderr, " | scale n=%zu s%d %.0f ev/s (%.1fs wall)\n",
               scale_nodes, scale.shards, scale.events_per_sec(),
               scale.wall_s);
  return 0;
}

}  // namespace
}  // namespace mdr::bench

int main(int argc, char** argv) { return mdr::bench::run(argc, argv); }
