// Figure 11: "Delays of MP and SP in CAIRN."
//
// The paper plots OPT, MP-TL-10-TS-10, MP-TL-10-TS-2 and SP-TL-10 for the
// 11 CAIRN flows. Claims reproduced: SP's delays run two to four times MP's
// on some flows, MP-TL-10-TS-10 is already much closer to OPT than SP, and
// MP's plots are "less jagged" (lower per-flow delay variance). Every
// measured series is a 5-seed mean, replicated in parallel by the runner.
#include <iostream>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup();

  const auto opt = bench::aggregate_means(bench::replicated(setup.spec, "opt"));
  const auto mp_ts10 = bench::aggregate_means(
      bench::replicated(bench::mp_spec(setup.spec, 10, 10), "mp"));
  const auto mp_ts2 = bench::aggregate_means(
      bench::replicated(bench::mp_spec(setup.spec, 10, 2), "mp"));
  const auto sp = bench::aggregate_means(
      bench::replicated(bench::sp_spec(setup.spec, 10), "sp"));

  sim::DelayTable table(sim::flow_labels(setup.spec.flows));
  table.add_series("OPT", opt);
  table.add_series("MP-TL-10-TS-10", mp_ts10);
  table.add_series("MP-TL-10-TS-2", mp_ts2);
  table.add_series("SP-TL-10", sp);
  table.print(std::cout, "Figure 11: delays of MP and SP in CAIRN");

  bench::print_ratio_summary("SP vs MP-TS-2", sp, mp_ts2);
  bench::print_ratio_summary("MP-TS-10 vs OPT", mp_ts10, opt);
  return 0;
}
