// Ablation: stability margins under adversarial and heavy-tail workloads.
//
// For each topology (CAIRN, NET1), each workload class (adversarial
// sawtooth injection, flash crowd on a hotspot, diurnal modulation,
// duty-cycled lossy radios) and each routing scheme (MP, SP, OPT), runs a
// load sweep (runner/load_sweep.h) and reports the critical rate
// multiplier where the StabilityMonitor's verdict flips — the measured
// stability margin of the scheme under that workload. The paper argues MP
// spreads load over more of the capacity region than SP; here that shows
// up directly as a larger critical multiplier. OPT rows include
// infeasible-by-construction probes (margin -1) once the scaled demand
// exceeds a cut.
//
// Durations are deliberately short (the verdict needs a few windows, not a
// converged delay estimate); MDR_SWEEP_STEPS / MDR_SWEEP_BISECT trim the
// probe count further for smoke runs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "figure_common.h"
#include "runner/load_sweep.h"

namespace {

using mdr::bench::FigureSetup;

int env_int(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

// Shortened measurement: the sweep needs a verdict per probe, not a tight
// delay estimate, and 24 sweeps run back to back.
void shorten(mdr::sim::ExperimentSpec& spec) {
  spec.config.traffic_start = 3;
  spec.config.warmup = 7;
  spec.config.duration = 30;
  spec.config.monitor_interval = 0.5;
  spec.config.stability.interval = 0.5;
  spec.config.stability.window = 8;
}

mdr::sim::ExperimentSpec with_adversarial(mdr::sim::ExperimentSpec spec) {
  spec.config.traffic.model = mdr::sim::TrafficModel::kAdversarial;
  spec.config.traffic.adversarial = {4.0, 0.5, 4.0, true};
  return spec;
}

mdr::sim::ExperimentSpec with_flashcrowd(mdr::sim::ExperimentSpec spec) {
  mdr::sim::FlashCrowd crowd;
  crowd.dst = spec.flows.front().dst;  // hotspot: the first paper flow's sink
  crowd.start = 12;
  crowd.ramp_s = 3;
  crowd.hold_s = 6;
  crowd.peak = 3;
  spec.config.traffic.flash_crowds.push_back(crowd);
  return spec;
}

mdr::sim::ExperimentSpec with_diurnal(mdr::sim::ExperimentSpec spec) {
  spec.config.traffic.diurnal_period_s = 20;
  spec.config.traffic.diurnal_amplitude = 0.5;
  return spec;
}

mdr::sim::ExperimentSpec with_dutycycle(mdr::sim::ExperimentSpec spec) {
  // Sleep the first physical link on a 6 s period with bursty loss while
  // awake; silent, so the hello protocol must notice.
  const auto& link = spec.topo.link(0);
  mdr::fault::LinkDutyCycle duty;
  duty.a = std::string(spec.topo.name(link.from));
  duty.b = std::string(spec.topo.name(link.to));
  duty.period = 6;
  duty.on_fraction = 0.6;
  duty.start = 8;
  duty.stop = 26;
  duty.loss = {0.05, 0.3, 0.25, 0.0};
  duty.lossy = true;
  spec.config.faults.duty_cycles.push_back(duty);
  spec.config.use_hello = true;
  return spec;
}

}  // namespace

int main() {
  using namespace mdr;

  runner::SweepOptions options;
  options.lo = 0.4;
  options.hi = 2.4;
  options.steps = env_int("MDR_SWEEP_STEPS", 3);
  options.bisect_iters = env_int("MDR_SWEEP_BISECT", 3);

  struct Workload {
    const char* name;
    sim::ExperimentSpec (*apply)(sim::ExperimentSpec);
  };
  const Workload workloads[] = {
      {"adversarial", with_adversarial},
      {"flashcrowd", with_flashcrowd},
      {"diurnal", with_diurnal},
      {"dutycycle", with_dutycycle},
  };
  const char* modes[] = {"mp", "sp", "opt"};

  std::printf("stability frontier: critical rate multiplier per scheme\n");
  std::printf("(0 means the sweep never bracketed a verdict flip in [%.2g, %.2g])\n\n",
              options.lo, options.hi);
  std::printf("%-6s %-12s %8s %8s %8s %10s\n", "net", "workload", "mp", "sp",
              "opt", "monotone");

  for (const auto& setup : {bench::cairn_setup(), bench::net1_setup()}) {
    for (const auto& workload : workloads) {
      double critical[3] = {0, 0, 0};
      bool monotone = true;
      for (int m = 0; m < 3; ++m) {
        auto spec = workload.apply(setup.spec);
        shorten(spec);
        const auto sweep = runner::run_load_sweep(spec, modes[m], options);
        critical[m] = sweep.critical;
        monotone = monotone && sweep.monotone;
        for (const auto& point : sweep.points) {
          if (!point.unstable &&
              (point.forwarding_loops > 0 || point.accounting_leaks > 0)) {
            std::printf("  !! %s/%s/%s x%.3f stable but loops=%llu leaks=%llu\n",
                        setup.name.c_str(), workload.name, modes[m],
                        point.multiplier,
                        static_cast<unsigned long long>(point.forwarding_loops),
                        static_cast<unsigned long long>(point.accounting_leaks));
          }
        }
      }
      std::printf("%-6s %-12s %8.3f %8.3f %8.3f %10s\n", setup.name.c_str(),
                  workload.name, critical[0], critical[1], critical[2],
                  monotone ? "yes" : "NO");
    }
  }
  return 0;
}
