// Figure 12: "Delays of MP and SP in NET1."
//
// As Figure 11, on NET1. The paper reports the MP advantage grows with
// connectivity: SP average delays run up to five-six times MP's there.
// Measured series are 3-replication means.
#include <iostream>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::net1_setup();
  const auto base = bench::measurement_config();

  const auto opt_ref =
      sim::compute_opt_reference(setup.topo, setup.flows, base.mean_packet_bits);
  const auto opt = bench::averaged_flow_delays(setup, [&](std::uint64_t seed) {
    auto c = base;
    c.seed = seed;
    return bench::run_opt(setup, c, opt_ref);
  });
  const auto mp_ts10 = bench::averaged_flow_delays(setup, [&](std::uint64_t seed) {
    auto c = base;
    c.seed = seed;
    return bench::run_mp(setup, c, 10, 10);
  });
  const auto mp_ts2 = bench::averaged_flow_delays(setup, [&](std::uint64_t seed) {
    auto c = base;
    c.seed = seed;
    return bench::run_mp(setup, c, 10, 2);
  });
  const auto sp = bench::averaged_flow_delays(setup, [&](std::uint64_t seed) {
    auto c = base;
    c.seed = seed;
    return bench::run_sp(setup, c, 10);
  });

  sim::DelayTable table(sim::flow_labels(setup.flows));
  table.add_series("OPT", opt);
  table.add_series("MP-TL-10-TS-10", mp_ts10);
  table.add_series("MP-TL-10-TS-2", mp_ts2);
  table.add_series("SP-TL-10", sp);
  table.print(std::cout, "Figure 12: delays of MP and SP in NET1");

  bench::print_ratio_summary("SP vs MP-TS-2", sp, mp_ts2);
  bench::print_ratio_summary("MP-TS-10 vs OPT", mp_ts10, opt);
  return 0;
}
