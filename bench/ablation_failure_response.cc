// Ablation: transient response to a link failure — MP vs SP over time.
//
// The paper argues "in the presence of link failures, MP can only perform
// better than SP, because of availability of alternate paths". This bench
// cuts the sri<->isi CAIRN backbone trunk mid-run and prints the
// network-average delay time series for MP and SP: the depth and duration
// of the disruption spike, and the steady-state delta before/after.
#include <cstdio>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup(1.0);  // moderate load: SP stays stable
  sim::SimConfig base;
  base.traffic_start = 3;
  base.warmup = 7;
  base.duration = 60;
  base.seed = 7;
  base.timeseries_interval = 2.0;
  const double t_fail = 30.0;
  const double t_heal = 50.0;
  base.link_toggles.push_back({t_fail, "sri", "isi", false});
  base.link_toggles.push_back({t_heal, "sri", "isi", true});

  auto mp_cfg = base;
  mp_cfg.mode = sim::RoutingMode::kMultipath;
  mp_cfg.tl = 10;
  mp_cfg.ts = 2;
  const auto mp = sim::run_simulation(setup.spec.topo, setup.spec.flows, mp_cfg);

  auto sp_cfg = base;
  sp_cfg.mode = sim::RoutingMode::kSinglePath;
  sp_cfg.tl = 10;
  sp_cfg.ts = 10;
  const auto sp = sim::run_simulation(setup.spec.topo, setup.spec.flows, sp_cfg);

  std::puts("== CAIRN sri<->isi trunk fails at t=30s, heals at t=50s ==");
  std::printf("%8s %14s %14s %10s %10s\n", "t (s)", "MP delay (ms)",
              "SP delay (ms)", "MP drops", "SP drops");
  for (std::size_t i = 0; i < mp.timeseries.size() && i < sp.timeseries.size();
       ++i) {
    const auto& m = mp.timeseries[i];
    const auto& s = sp.timeseries[i];
    std::printf("%8.0f %14.3f %14.3f %10llu %10llu%s\n", m.t,
                m.mean_delay_s * 1e3, s.mean_delay_s * 1e3,
                static_cast<unsigned long long>(m.dropped),
                static_cast<unsigned long long>(s.dropped),
                m.t > t_fail && m.t <= t_fail + 2 ? "   <- failure"
                : m.t > t_heal && m.t <= t_heal + 2 ? "   <- recovery"
                : "");
  }
  std::printf("\nwhole-run averages: MP %.3f ms, SP %.3f ms; "
              "drops MP %llu, SP %llu; TTL drops (loops) MP %llu, SP %llu\n",
              mp.avg_delay_s * 1e3, sp.avg_delay_s * 1e3,
              static_cast<unsigned long long>(mp.dropped_no_route +
                                              mp.dropped_queue),
              static_cast<unsigned long long>(sp.dropped_no_route +
                                              sp.dropped_queue),
              static_cast<unsigned long long>(mp.dropped_ttl),
              static_cast<unsigned long long>(sp.dropped_ttl));
  return 0;
}
