// Ablation: recovery under chaos — MP vs SP through the same fault plan.
//
// Drives CAIRN through a randomized chaos schedule (node crashes with full
// state loss, flapping links, Gilbert–Elliott bursty loss, 1% control
// corruption) identical for both modes, and compares how each heals: the
// per-incident time-to-reconvergence and packets lost from the
// InvariantMonitor, plus delivery/drop/garbage totals. The paper's claim
// that MP "can only perform better than SP" under failures extends to hard
// chaos only if the loop-freedom machinery holds while routers reboot —
// the monitor's loop counter (must be 0) checks exactly that.
#include <cstdio>

#include "fault/fault_plan.h"
#include "figure_common.h"

namespace {

void print_run(const char* label, const mdr::sim::SimResult& r) {
  std::printf("\n== %s ==\n", label);
  std::printf(
      "delivered %llu, avg delay %.3f ms; drops: no-route %llu, ttl %llu, "
      "queue %llu, dead %llu; corrupted rejected %llu\n",
      static_cast<unsigned long long>(r.delivered), r.avg_delay_s * 1e3,
      static_cast<unsigned long long>(r.dropped_no_route),
      static_cast<unsigned long long>(r.dropped_ttl),
      static_cast<unsigned long long>(r.dropped_queue),
      static_cast<unsigned long long>(r.dropped_dead),
      static_cast<unsigned long long>(r.control_garbage));
  if (!r.monitor.has_value()) return;
  const auto& m = *r.monitor;
  std::printf(
      "monitor: %llu checks, %llu forwarding loops, %llu blackhole "
      "sightings, %llu accounting leaks\n",
      static_cast<unsigned long long>(m.checks),
      static_cast<unsigned long long>(m.forwarding_loops),
      static_cast<unsigned long long>(m.blackholes),
      static_cast<unsigned long long>(m.accounting_leaks));
  std::printf("%-10s %10s %12s %14s %14s\n", "incident", "crash", "recovered",
              "reconverged", "packets lost");
  for (const auto& inc : m.incidents) {
    if (inc.t_reconverged >= 0) {
      std::printf("%-10s %10.2f %12.2f %11.2f (%4.1fs) %11llu\n",
                  inc.name.c_str(), inc.t_crash, inc.t_recovered,
                  inc.t_reconverged, inc.time_to_reconverge(),
                  static_cast<unsigned long long>(inc.packets_lost));
    } else {
      std::printf("%-10s %10.2f   NOT RECONVERGED\n", inc.name.c_str(),
                  inc.t_crash);
    }
  }
}

}  // namespace

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup(0.5);  // chaos on a moderate load

  sim::SimConfig base;
  base.traffic_start = 6;
  base.warmup = 4;
  base.duration = 60;
  base.seed = 7;
  base.use_hello = true;
  base.monitor_interval = 0.5;
  fault::RandomPlanOptions opts;  // 3 crashes, 2 flaps, 2 gilbert links
  opts.window_end = 40.0;
  base.faults = fault::make_random_plan(setup.spec.topo, opts, base.seed);
  base.faults.chaos.corrupt_rate = 0.01;

  std::puts("== CAIRN chaos schedule (identical for both modes) ==");
  for (std::size_t i = 0; i < base.faults.crashes.size(); ++i) {
    std::printf("  crash %-10s t=%.2f  recover t=%.2f\n",
                base.faults.crashes[i].node.c_str(), base.faults.crashes[i].at,
                base.faults.recoveries[i].at);
  }
  for (const auto& f : base.faults.flaps) {
    std::printf("  flap %s<->%s period=%.1fs duty=%.2f over [%.0f, %.0f]\n",
                f.a.c_str(), f.b.c_str(), f.period, f.duty, f.start, f.stop);
  }
  for (const auto& g : base.faults.gilbert) {
    std::printf("  gilbert %s<->%s (stationary loss %.1f%%)\n", g.a.c_str(),
                g.b.c_str(), 100 * g.params.stationary_loss());
  }

  auto mp_cfg = base;
  mp_cfg.mode = sim::RoutingMode::kMultipath;
  mp_cfg.tl = 10;
  mp_cfg.ts = 2;
  const auto mp = sim::run_simulation(setup.spec.topo, setup.spec.flows, mp_cfg);
  print_run("MP (multipath)", mp);

  auto sp_cfg = base;
  sp_cfg.mode = sim::RoutingMode::kSinglePath;
  sp_cfg.tl = 10;
  sp_cfg.ts = 10;
  const auto sp = sim::run_simulation(setup.spec.topo, setup.spec.flows, sp_cfg);
  print_run("SP (single path)", sp);

  return 0;
}
