// Figure 13: "Effect of increasing Tl in CAIRN."
//
// With Ts and the input traffic fixed, the paper doubles the long-term
// update period Tl from 10s to 20s: SP's delays grow substantially (stale
// routes concentrate traffic for longer), while MP's stay essentially
// unchanged (the local Ts load-balancing compensates between the rarer path
// updates).
//
// Two variants are measured. With the default low-variance utilization
// estimator, SP's degradation is directional but attenuated relative to the
// paper (staggered per-router timers plus smooth cost estimates stabilize
// SP); with the delay-based "observable" estimator — closer in character to
// the paper's perturbation-analysis measurements — the effect is larger.
// EXPERIMENTS.md discusses the gap. Series are 5-seed means over a 240s
// horizon, replicated in parallel by the runner.
#include <iostream>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup();
  auto base = setup.spec;
  base.config.warmup = 20;
  base.config.duration = 240;

  for (const auto estimator : {cost::EstimatorKind::kUtilization,
                               cost::EstimatorKind::kObservable}) {
    base.config.estimator = estimator;
    const auto run_avg = [&](const std::string& mode, double tl, double ts) {
      auto spec = base;
      spec.config.tl = tl;
      spec.config.ts = ts;
      return bench::aggregate_means(bench::replicated(spec, mode));
    };

    const auto mp_tl10 = run_avg("mp", 10, 2);
    const auto mp_tl20 = run_avg("mp", 20, 2);
    const auto sp_tl10 = run_avg("sp", 10, 10);
    const auto sp_tl20 = run_avg("sp", 20, 20);

    sim::DelayTable table(sim::flow_labels(setup.spec.flows));
    table.add_series("MP-TL-10-TS-2", mp_tl10);
    table.add_series("MP-TL-20-TS-2", mp_tl20);
    table.add_series("SP-TL-10", sp_tl10);
    table.add_series("SP-TL-20", sp_tl20);
    const std::string which = estimator == cost::EstimatorKind::kUtilization
                                  ? "utilization estimator"
                                  : "delay-based estimator";
    table.print(std::cout, "Figure 13: effect of Tl in CAIRN (" + which + ")");

    bench::print_ratio_summary("MP TL-20 vs TL-10", mp_tl20, mp_tl10);
    bench::print_ratio_summary("SP TL-20 vs TL-10", sp_tl20, sp_tl10);
    std::cout << "\n";
  }
  return 0;
}
