// Ablation: dynamic environments — self-similar traffic.
//
// The paper's abstract claims MP's delays "are significantly better than
// single-path routing in a dynamic environment", and its introduction
// grounds the whole framework in traffic that is "very bursty at any time
// scale" — the self-similar regime (heavy-tailed on/off sources). This
// bench runs CAIRN at a *moderate average* load under three traffic models
// of identical mean rate and reports OPT (tuned for the average), MP and
// SP. The burstier the traffic, the less the stationary average describes
// reality: OPT's static split loses ground while MP's Ts-period local
// balancing absorbs the bursts.
#include <cstdio>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup(0.7);  // headroom for bursts
  auto base = bench::measurement_config();
  base.duration = 120;

  const auto opt_ref =
      sim::compute_opt_reference(setup.topo, setup.flows, base.mean_packet_bits);

  struct Model {
    const char* name;
    sim::SimConfig::TrafficModel model;
  };
  const Model models[] = {
      {"Poisson (stationary)", sim::SimConfig::TrafficModel::kPoisson},
      {"exp on/off bursts", sim::SimConfig::TrafficModel::kOnOff},
      {"Pareto on/off (self-similar)",
       sim::SimConfig::TrafficModel::kParetoOnOff},
  };

  std::puts("== CAIRN at 0.7x load: same average rate, three traffic models ==");
  std::printf("%-30s %10s %10s %10s %8s %8s\n", "traffic", "OPT", "MP", "SP",
              "MP/OPT", "SP/MP");
  for (const auto& m : models) {
    double opt = 0, mp = 0, sp = 0;
    const auto seeds = bench::replication_seeds();
    for (const auto seed : seeds) {
      auto c = base;
      c.seed = seed;
      c.traffic_model = m.model;
      c.burstiness = {4.0, 8.0};
      c.pareto = {1.5, 4.0, 8.0};
      opt += sim::run_with_static_phi(setup.topo, setup.flows, c, opt_ref.phi)
                 .avg_delay_s /
             static_cast<double>(seeds.size());
      auto cm = c;
      cm.mode = sim::RoutingMode::kMultipath;
      cm.tl = 10;
      cm.ts = 2;
      mp += sim::run_simulation(setup.topo, setup.flows, cm).avg_delay_s /
            static_cast<double>(seeds.size());
      auto cs = c;
      cs.mode = sim::RoutingMode::kSinglePath;
      cs.tl = 10;
      cs.ts = 10;
      sp += sim::run_simulation(setup.topo, setup.flows, cs).avg_delay_s /
            static_cast<double>(seeds.size());
    }
    std::printf("%-30s %9.3f %9.3f %9.3f %7.2fx %7.2fx\n", m.name, opt * 1e3,
                mp * 1e3, sp * 1e3, mp / opt, sp / mp);
  }
  return 0;
}
