// Ablation: dynamic environments — self-similar traffic.
//
// The paper's abstract claims MP's delays "are significantly better than
// single-path routing in a dynamic environment", and its introduction
// grounds the whole framework in traffic that is "very bursty at any time
// scale" — the self-similar regime (heavy-tailed on/off sources). This
// bench runs CAIRN at a *moderate average* load under three traffic models
// of identical mean rate and reports OPT (tuned for the average), MP and
// SP. The burstier the traffic, the less the stationary average describes
// reality: OPT's static split loses ground while MP's Ts-period local
// balancing absorbs the bursts.
#include <cstdio>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup(0.7);  // headroom for bursts
  auto base = setup.spec;
  base.config.duration = 120;

  struct Model {
    const char* name;
    sim::TrafficModel model;
  };
  const Model models[] = {
      {"Poisson (stationary)", sim::TrafficModel::kPoisson},
      {"exp on/off bursts", sim::TrafficModel::kOnOff},
      {"Pareto on/off (self-similar)", sim::TrafficModel::kParetoOnOff},
  };

  std::puts("== CAIRN at 0.7x load: same average rate, three traffic models ==");
  std::printf("%-30s %10s %10s %10s %8s %8s\n", "traffic", "OPT", "MP", "SP",
              "MP/OPT", "SP/MP");
  for (const auto& m : models) {
    auto spec = base;
    spec.config.traffic.model = m.model;
    spec.config.traffic.burstiness = {4.0, 8.0};
    spec.config.traffic.pareto = {1.5, 4.0, 8.0};
    const double opt = bench::replicated(spec, "opt").avg_delay_s.mean();
    const double mp =
        bench::replicated(bench::mp_spec(spec, 10, 2), "mp").avg_delay_s.mean();
    const double sp =
        bench::replicated(bench::sp_spec(spec, 10), "sp").avg_delay_s.mean();
    std::printf("%-30s %9.3f %9.3f %9.3f %7.2fx %7.2fx\n", m.name, opt * 1e3,
                mp * 1e3, sp * 1e3, mp / opt, sp / mp);
  }
  return 0;
}
