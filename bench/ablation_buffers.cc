// Ablation: finite buffers — loss instead of unbounded queues.
//
// The paper's model queues without bound (delay is the victim of
// congestion); real routers drop. With drop-tail buffers, SP's traffic
// concentration turns into packet loss where MP's balancing keeps queues
// inside the buffer. This table sweeps the per-link buffer size at the
// paper-scale CAIRN load and reports delay AND loss for MP and SP.
#include <cstdio>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup();
  auto base = bench::measurement_config();
  base.duration = 90;

  struct Cell {
    double delay_ms;
    double loss_pct;
  };
  const auto run = [&](sim::RoutingMode mode, double ts,
                       double buffer_bits) {
    double delay = 0, loss = 0;
    const auto seeds = bench::replication_seeds();
    for (const auto seed : seeds) {
      auto c = base;
      c.seed = seed;
      c.mode = mode;
      c.tl = 10;
      c.ts = ts;
      c.queue_limit_bits = buffer_bits;
      const auto r = sim::run_simulation(setup.topo, setup.flows, c);
      delay += r.avg_delay_s / static_cast<double>(seeds.size());
      const double total =
          static_cast<double>(r.delivered + r.dropped_queue + r.dropped_ttl);
      loss += (total > 0 ? static_cast<double>(r.dropped_queue) / total : 0) /
              static_cast<double>(seeds.size());
    }
    return Cell{delay * 1e3, loss * 100};
  };

  std::puts("== CAIRN with drop-tail buffers (per-link, in mean packets) ==");
  std::printf("%-12s %12s %10s %14s %10s\n", "buffer", "MP (ms)", "MP loss",
              "SP (ms)", "SP loss");
  for (const double pkts : {8.0, 16.0, 32.0, 64.0, 0.0}) {
    const double bits = pkts * 8000;
    const auto mp = run(sim::RoutingMode::kMultipath, 2, bits);
    const auto sp = run(sim::RoutingMode::kSinglePath, 10, bits);
    char label[32];
    if (pkts == 0) {
      std::snprintf(label, sizeof label, "unbounded");
    } else {
      std::snprintf(label, sizeof label, "%.0f pkts", pkts);
    }
    std::printf("%-12s %12.3f %9.2f%% %14.3f %9.2f%%\n", label, mp.delay_ms,
                mp.loss_pct, sp.delay_ms, sp.loss_pct);
  }
  return 0;
}
