// Ablation: finite buffers — loss instead of unbounded queues.
//
// The paper's model queues without bound (delay is the victim of
// congestion); real routers drop. With drop-tail buffers, SP's traffic
// concentration turns into packet loss where MP's balancing keeps queues
// inside the buffer. This table sweeps the per-link buffer size at the
// paper-scale CAIRN load and reports delay AND loss for MP and SP.
#include <cstdio>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup();
  auto base = setup.spec;
  base.config.duration = 90;

  struct Cell {
    double delay_ms;
    double loss_pct;
  };
  const auto run = [&](const char* mode, double ts, double buffer_bits) {
    auto spec = base;
    spec.config.tl = 10;
    spec.config.ts = ts;
    spec.config.queue_limit_bits = buffer_bits;
    const auto batch = bench::replicated(spec, mode);
    double loss = 0;
    for (const auto& r : batch.runs) {
      const double total =
          static_cast<double>(r.delivered + r.dropped_queue + r.dropped_ttl);
      loss += (total > 0 ? static_cast<double>(r.dropped_queue) / total : 0) /
              static_cast<double>(batch.runs.size());
    }
    return Cell{batch.avg_delay_s.mean() * 1e3, loss * 100};
  };

  std::puts("== CAIRN with drop-tail buffers (per-link, in mean packets) ==");
  std::printf("%-12s %12s %10s %14s %10s\n", "buffer", "MP (ms)", "MP loss",
              "SP (ms)", "SP loss");
  for (const double pkts : {8.0, 16.0, 32.0, 64.0, 0.0}) {
    const double bits = pkts * 8000;
    const auto mp = run("mp", 2, bits);
    const auto sp = run("sp", 10, bits);
    char label[32];
    if (pkts == 0) {
      std::snprintf(label, sizeof label, "unbounded");
    } else {
      std::snprintf(label, sizeof label, "%.0f pkts", pkts);
    }
    std::printf("%-12s %12.3f %9.2f%% %14.3f %9.2f%%\n", label, mp.delay_ms,
                mp.loss_pct, sp.delay_ms, sp.loss_pct);
  }
  return 0;
}
