// Figure 9: "Delays of OPT and MP in CAIRN."
//
// The paper plots, for the 11 CAIRN flows, the average delay under OPT
// (Gallager's minimum-delay routing), the OPT+5% envelope, and MP with
// Tl=10s, Ts=2s. Claim reproduced: MP's per-flow delays stay within a few
// percent of OPT (the paper's 5% envelope). Measured series are
// 3-replication means.
#include <iostream>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup();
  const auto base = bench::measurement_config();

  const auto opt_ref =
      sim::compute_opt_reference(setup.topo, setup.flows, base.mean_packet_bits);
  std::cout << "OPT (Gallager) converged in " << opt_ref.iterations
            << " iterations; flow-level average delay "
            << opt_ref.average_delay_s * 1e3 << " ms\n";

  const auto opt = bench::averaged_flow_delays(setup, [&](std::uint64_t seed) {
    auto c = base;
    c.seed = seed;
    return bench::run_opt(setup, c, opt_ref);
  });
  std::uint64_t control_messages = 0;
  double control_bits = 0;
  const auto mp = bench::averaged_flow_delays(setup, [&](std::uint64_t seed) {
    auto c = base;
    c.seed = seed;
    auto r = bench::run_mp(setup, c, /*tl=*/10, /*ts=*/2);
    control_messages += r.control_messages;
    control_bits += r.control_bits;
    return r;
  });

  sim::DelayTable table(sim::flow_labels(setup.flows));
  table.add_series("OPT", opt);
  table.add_series("OPT+5%", bench::envelope(opt, 1.05));
  table.add_series("MP-TL-10-TS-2", mp);
  table.print(std::cout, "Figure 9: delays of OPT and MP in CAIRN");

  bench::print_envelope_summary(opt, mp, 5.0);
  bench::print_ratio_summary("MP vs OPT", mp, opt);
  const auto reps = static_cast<double>(bench::replication_seeds().size());
  std::cout << "MP control overhead per run: " << control_messages / reps
            << " LSU messages, " << control_bits / reps / 8e3 << " kB\n";
  return 0;
}
