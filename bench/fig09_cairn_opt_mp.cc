// Figure 9: "Delays of OPT and MP in CAIRN."
//
// The paper plots, for the 11 CAIRN flows, the average delay under OPT
// (Gallager's minimum-delay routing), the OPT+5% envelope, and MP with
// Tl=10s, Ts=2s. Claim reproduced: MP's per-flow delays stay within a few
// percent of OPT (the paper's 5% envelope). Measured series are 5-seed
// means with Student-t 95% confidence intervals, fanned across cores by
// runner::ExperimentRunner (MDR_BENCH_JOBS sets the worker count; the
// numbers are identical for any value).
//
// The MP series runs with the telemetry sampler enabled (sample=5s): the
// delay-vs-time curve below is derived from the per-flow FlowSamples, and
// the per-run sample sums are reconciled against the figure's own
// avg_delay_s — the observability layer reproduces the existing numbers
// rather than measuring something adjacent to them.
#include <cmath>
#include <iostream>
#include <map>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup();

  const auto opt_ref = sim::compute_opt_reference(setup.spec);
  std::cout << "OPT (Gallager) converged in " << opt_ref.iterations
            << " iterations; flow-level average delay "
            << opt_ref.average_delay_s * 1e3 << " ms\n";

  const auto opt = bench::replicated(setup.spec, "opt");
  auto mp_measured = bench::mp_spec(setup.spec, /*tl=*/10, /*ts=*/2);
  mp_measured.config.sample_interval = 5.0;  // telemetry: read-only sampling
  const auto mp = bench::replicated(mp_measured, "mp");
  const auto opt_means = bench::aggregate_means(opt);
  const auto mp_means = bench::aggregate_means(mp);

  sim::DelayTable table(sim::flow_labels(setup.spec.flows));
  table.add_series("OPT", opt_means, bench::aggregate_ci95(opt));
  table.add_series("OPT+5%", bench::envelope(opt_means, 1.05));
  table.add_series("MP-TL-10-TS-2", mp_means, bench::aggregate_ci95(mp));
  table.print(std::cout, "Figure 9: delays of OPT and MP in CAIRN");

  bench::print_envelope_summary(opt_means, mp_means, 5.0);
  bench::print_ratio_summary("MP vs OPT", mp_means, opt_means);

  std::uint64_t control_messages = 0;
  double control_bits = 0;
  for (const auto& r : mp.runs) {
    control_messages += r.control_messages;
    control_bits += r.control_bits;
  }
  const auto reps = static_cast<double>(mp.runs.size());
  std::cout << "MP control overhead per run: " << control_messages / reps
            << " LSU messages, " << control_bits / reps / 8e3 << " kB\n";

  // --- delay vs. time from the telemetry sampler (run 0) ------------------
  // Per 5s window: measured deliveries over all flows and their mean delay.
  const auto& telemetry = *mp.runs.front().telemetry;
  std::map<double, std::pair<std::uint64_t, double>> windows;  // t -> (n, sum)
  for (const auto& s : telemetry.flows) {
    auto& w = windows[s.t];
    w.first += s.measured_delivered;
    w.second += s.measured_delay_sum_s;
  }
  std::cout << "\nMP delay vs. time (sampler, run 0; window end, delivered, "
               "mean delay ms):\n";
  for (const auto& [t, w] : windows) {
    if (w.first == 0) continue;
    std::printf("  %8.1f %8llu %10.3f\n", t,
                static_cast<unsigned long long>(w.first),
                w.second / static_cast<double>(w.first) * 1e3);
  }

  // --- reconciliation: sampler sums must reproduce the figure's numbers ---
  bool reconciled = true;
  for (std::size_t i = 0; i < mp.runs.size(); ++i) {
    const auto& run = mp.runs[i];
    std::uint64_t delivered = 0;
    double delay_sum = 0;
    for (const auto& s : run.telemetry->flows) {
      delivered += s.measured_delivered;
      delay_sum += s.measured_delay_sum_s;
    }
    const double sampler_avg =
        delivered > 0 ? delay_sum / static_cast<double>(delivered) : 0;
    const bool counts_match = delivered == run.delivered;
    const bool delays_match =
        std::abs(sampler_avg - run.avg_delay_s) <=
        1e-9 * std::max(1.0, std::abs(run.avg_delay_s));
    if (!counts_match || !delays_match) {
      reconciled = false;
      std::cout << "run " << i << ": sampler sums DIVERGE (delivered "
                << delivered << " vs " << run.delivered << ", avg "
                << sampler_avg << " vs " << run.avg_delay_s << ")\n";
    }
  }
  std::cout << (reconciled
                    ? "sampler reconciliation: all runs reproduce avg_delay_s "
                      "exactly (delivered counts and delay sums match)\n"
                    : "sampler reconciliation FAILED\n");
  return reconciled ? 0 : 1;
}
