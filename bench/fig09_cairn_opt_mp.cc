// Figure 9: "Delays of OPT and MP in CAIRN."
//
// The paper plots, for the 11 CAIRN flows, the average delay under OPT
// (Gallager's minimum-delay routing), the OPT+5% envelope, and MP with
// Tl=10s, Ts=2s. Claim reproduced: MP's per-flow delays stay within a few
// percent of OPT (the paper's 5% envelope). Measured series are 5-seed
// means with Student-t 95% confidence intervals, fanned across cores by
// runner::ExperimentRunner (MDR_BENCH_JOBS sets the worker count; the
// numbers are identical for any value).
#include <iostream>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::cairn_setup();

  const auto opt_ref = sim::compute_opt_reference(setup.spec);
  std::cout << "OPT (Gallager) converged in " << opt_ref.iterations
            << " iterations; flow-level average delay "
            << opt_ref.average_delay_s * 1e3 << " ms\n";

  const auto opt = bench::replicated(setup.spec, "opt");
  const auto mp =
      bench::replicated(bench::mp_spec(setup.spec, /*tl=*/10, /*ts=*/2), "mp");
  const auto opt_means = bench::aggregate_means(opt);
  const auto mp_means = bench::aggregate_means(mp);

  sim::DelayTable table(sim::flow_labels(setup.spec.flows));
  table.add_series("OPT", opt_means, bench::aggregate_ci95(opt));
  table.add_series("OPT+5%", bench::envelope(opt_means, 1.05));
  table.add_series("MP-TL-10-TS-2", mp_means, bench::aggregate_ci95(mp));
  table.print(std::cout, "Figure 9: delays of OPT and MP in CAIRN");

  bench::print_envelope_summary(opt_means, mp_means, 5.0);
  bench::print_ratio_summary("MP vs OPT", mp_means, opt_means);

  std::uint64_t control_messages = 0;
  double control_bits = 0;
  for (const auto& r : mp.runs) {
    control_messages += r.control_messages;
    control_bits += r.control_bits;
  }
  const auto reps = static_cast<double>(mp.runs.size());
  std::cout << "MP control overhead per run: " << control_messages / reps
            << " LSU messages, " << control_bits / reps / 8e3 << " kB\n";
  return 0;
}
