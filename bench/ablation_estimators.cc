// Ablation: marginal-delay estimators (paper Section 4.3; DESIGN.md §5).
//
// Part 1 measures raw estimator accuracy against the analytic M/M/1
// marginal on a synthetic queue sample path across utilizations (the
// comparison Cassandras-Abidi-Towsley make for PA vs M/M/1 estimation).
// Part 2 measures the end-to-end consequence: MP's average delay on CAIRN
// with each estimator feeding the Ts/Tl costs. The estimator's *variance*,
// not its bias, is what separates them in the loop.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cost/delay_model.h"
#include "cost/estimators.h"
#include "figure_common.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace mdr;

namespace {

struct Sample {
  cost::PacketObservation obs;
};

// M/M/1 sample path (capacity 1 bit/s units).
std::vector<cost::PacketObservation> mm1_path(double rho, double horizon,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cost::PacketObservation> path;
  double t = 0, server_free = 0;
  while (true) {
    t += rng.exponential(1.0 / rho);
    if (t > horizon) break;
    cost::PacketObservation obs;
    obs.arrival_time = t;
    obs.service_time = rng.exponential(1.0);
    obs.started_busy_period = t >= server_free;
    const double start = std::max(t, server_free);
    obs.departure_time = start + obs.service_time;
    server_free = obs.departure_time;
    obs.size_bits = obs.service_time;
    path.push_back(obs);
  }
  return path;
}

void accuracy_table() {
  std::puts("== Part 1: estimator accuracy vs analytic M/M/1 marginal ==");
  std::puts("(relative bias and coefficient of variation over 2s windows)");
  std::printf("%-12s", "rho");
  for (const char* n : {"mm1", "observable", "ipa", "utilization"}) {
    std::printf(" %11s-bias %10s-cv", n, n);
  }
  std::puts("");
  const cost::EstimatorKind kinds[] = {
      cost::EstimatorKind::kAnalyticMm1, cost::EstimatorKind::kObservable,
      cost::EstimatorKind::kIpa, cost::EstimatorKind::kUtilization};
  for (double rho : {0.3, 0.6, 0.8, 0.9}) {
    const cost::LinkDelayModel model{1.0, 0.0, 1.0};
    const double truth = model.marginal_delay(rho);
    std::printf("%-12.1f", rho);
    for (const auto kind : kinds) {
      OnlineStats window_estimates;
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        auto est = cost::make_estimator(kind, 1.0, 0.0, 1.0);
        const auto path = mm1_path(rho, 4000.0, seed);
        // Feed in 200-packet-expected windows (~ Ts at this rate).
        double window_start = 0;
        const double window_len = 200.0 / rho;
        std::size_t i = 0;
        for (double end = window_len; end <= 4000.0; end += window_len) {
          while (i < path.size() && path[i].departure_time <= end) {
            est->observe(path[i]);
            ++i;
          }
          window_estimates.add(est->estimate(window_start, end));
          est->reset();
          window_start = end;
        }
      }
      const double bias = window_estimates.mean() / truth - 1.0;
      const double cv = window_estimates.stddev() / window_estimates.mean();
      std::printf(" %15.3f %13.3f", bias, cv);
    }
    std::puts("");
  }
}

void end_to_end_table() {
  std::puts("\n== Part 2: end-to-end MP delay on CAIRN per estimator ==");
  const auto setup = bench::cairn_setup();
  auto base = setup.spec;
  base.config.duration = 90;
  const auto opt = bench::aggregate_means(bench::replicated(base, "opt"));
  double opt_avg = 0;
  for (const double d : opt) opt_avg += d / static_cast<double>(opt.size());

  struct Named {
    const char* name;
    cost::EstimatorKind kind;
  };
  for (const auto& [name, kind] :
       {Named{"analytic M/M/1", cost::EstimatorKind::kAnalyticMm1},
        Named{"observable (W+lW^2)", cost::EstimatorKind::kObservable},
        Named{"IPA busy-period", cost::EstimatorKind::kIpa},
        Named{"utilization (default)", cost::EstimatorKind::kUtilization}}) {
    auto spec = base;
    spec.config.tl = 10;
    spec.config.ts = 2;
    spec.config.estimator = kind;
    const auto delays = bench::aggregate_means(bench::replicated(spec, "mp"));
    double avg = 0;
    for (const double d : delays) avg += d / static_cast<double>(delays.size());
    std::printf("%-24s %10.3f ms  (%.3fx OPT)\n", name, avg * 1e3,
                avg / opt_avg);
  }
}

}  // namespace

int main() {
  accuracy_table();
  end_to_end_table();
  return 0;
}
