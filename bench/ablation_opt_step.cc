// Ablation: OPT step-size sensitivity — Gallager's global constant problem.
//
// The paper's central criticism of OPT: "a global step size eta needs to be
// chosen and every router must use it... it is impossible to determine one
// in practice that works for all input traffic patterns." This bench makes
// that concrete: iterations-to-convergence (and whether the fixed-step
// method converges at all) across eta values, for the plain first-order
// update and for the second-derivative (Bertsekas-Gallager) scaling, which
// trades per-iteration cost for robustness to eta.
#include <cstdio>

#include "gallager/optimizer.h"
#include "topo/builders.h"
#include "topo/flows.h"

using namespace mdr;

namespace {

void sweep(const char* name, const graph::Topology& topo,
           const flow::TrafficMatrix& traffic) {
  const flow::FlowNetwork net(topo, 8e3);

  // Reference optimum from the safeguarded adaptive run.
  const auto reference = gallager::minimize(net, traffic, {});
  std::printf("%s: reference D_T %.6f (adaptive, %d iterations)\n", name,
              reference.total_delay_rate, reference.iterations);

  const auto run_fixed = [&](double eta, bool second) {
    gallager::Options opts;
    opts.eta = eta;
    opts.adaptive_step = false;
    opts.second_derivative = second;
    opts.max_iterations = 3000;
    const auto r = gallager::minimize(net, traffic, opts);
    const double gap = (r.total_delay_rate - reference.total_delay_rate) /
                       reference.total_delay_rate;
    char buf[64];
    if (!r.feasible || gap > 0.05) {
      std::snprintf(buf, sizeof buf, "diverged/stuck (+%.0f%%)", gap * 100);
    } else if (!r.converged) {
      std::snprintf(buf, sizeof buf, "slow (+%.2f%% @%d)", gap * 100,
                    r.iterations);
    } else {
      std::snprintf(buf, sizeof buf, "ok in %d iters (+%.2f%%)", r.iterations,
                    gap * 100);
    }
    return std::string(buf);
  };

  // Each variant swept over its natural eta range; the point is how narrow
  // (and instance-dependent) the workable window is.
  std::printf("  first-order:       ");
  for (const double eta : {0.5, 5.0, 50.0, 500.0}) {
    std::printf(" [eta=%g] %s ", eta, run_fixed(eta, false).c_str());
  }
  std::printf("\n  second-derivative: ");
  for (const double eta : {0.01, 0.05, 0.1, 0.5}) {
    std::printf(" [eta=%g] %s ", eta, run_fixed(eta, true).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::puts("== OPT step-size sensitivity (fixed global eta) ==");
  const auto cairn = topo::make_cairn();
  sweep("CAIRN", cairn, topo::to_traffic_matrix(cairn, topo::cairn_flows()));
  const auto net1 = topo::make_net1();
  sweep("NET1", net1, topo::to_traffic_matrix(net1, topo::net1_flows()));
  return 0;
}
