// Figure 10: "Delays of OPT and MP in NET1."
//
// Same comparison as Figure 9 on the contrived NET1 topology; the paper
// reports MP within an 8% envelope of OPT there (NET1's higher connectivity
// gives MP more multipath to manage, hence the slightly wider envelope).
//
// Two MP columns are printed. At this operating point (the load where
// Figures 12/14's SP contrasts live) NET1's two inter-cluster bridges run
// hot, and with Ts = 2 s the allocation feedback lag occasionally costs the
// bridge-crossing flows a few percent beyond the envelope; with Ts = 1 s
// the envelope holds for every flow. EXPERIMENTS.md discusses the
// sensitivity. Measured series are 5-seed means ± Student-t 95% CI, run in
// parallel by runner::ExperimentRunner.
#include <iostream>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::net1_setup();

  const auto opt_ref = sim::compute_opt_reference(setup.spec);
  std::cout << "OPT (Gallager) converged in " << opt_ref.iterations
            << " iterations; flow-level average delay "
            << opt_ref.average_delay_s * 1e3 << " ms\n";

  const auto opt = bench::replicated(setup.spec, "opt");
  const auto mp_ts2 =
      bench::replicated(bench::mp_spec(setup.spec, /*tl=*/10, /*ts=*/2), "mp");
  const auto mp_ts1 =
      bench::replicated(bench::mp_spec(setup.spec, /*tl=*/10, /*ts=*/1), "mp");
  const auto opt_means = bench::aggregate_means(opt);
  const auto ts2_means = bench::aggregate_means(mp_ts2);
  const auto ts1_means = bench::aggregate_means(mp_ts1);

  sim::DelayTable table(sim::flow_labels(setup.spec.flows));
  table.add_series("OPT", opt_means, bench::aggregate_ci95(opt));
  table.add_series("OPT+8%", bench::envelope(opt_means, 1.08));
  table.add_series("MP-TL-10-TS-2", ts2_means, bench::aggregate_ci95(mp_ts2));
  table.add_series("MP-TL-10-TS-1", ts1_means, bench::aggregate_ci95(mp_ts1));
  table.print(std::cout, "Figure 10: delays of OPT and MP in NET1");

  std::cout << "TS-2: ";
  bench::print_envelope_summary(opt_means, ts2_means, 8.0);
  bench::print_ratio_summary("TS-2 MP vs OPT", ts2_means, opt_means);
  std::cout << "TS-1: ";
  bench::print_envelope_summary(opt_means, ts1_means, 8.0);
  bench::print_ratio_summary("TS-1 MP vs OPT", ts1_means, opt_means);
  return 0;
}
