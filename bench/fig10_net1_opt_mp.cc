// Figure 10: "Delays of OPT and MP in NET1."
//
// Same comparison as Figure 9 on the contrived NET1 topology; the paper
// reports MP within an 8% envelope of OPT there (NET1's higher connectivity
// gives MP more multipath to manage, hence the slightly wider envelope).
//
// Two MP columns are printed. At this operating point (the load where
// Figures 12/14's SP contrasts live) NET1's two inter-cluster bridges run
// hot, and with Ts = 2 s the allocation feedback lag occasionally costs the
// bridge-crossing flows a few percent beyond the envelope; with Ts = 1 s
// the envelope holds for every flow. EXPERIMENTS.md discusses the
// sensitivity. Measured series are 3-replication means.
#include <iostream>

#include "figure_common.h"

int main() {
  using namespace mdr;
  const auto setup = bench::net1_setup();
  const auto base = bench::measurement_config();

  const auto opt_ref =
      sim::compute_opt_reference(setup.topo, setup.flows, base.mean_packet_bits);
  std::cout << "OPT (Gallager) converged in " << opt_ref.iterations
            << " iterations; flow-level average delay "
            << opt_ref.average_delay_s * 1e3 << " ms\n";

  const auto opt = bench::averaged_flow_delays(setup, [&](std::uint64_t seed) {
    auto c = base;
    c.seed = seed;
    return bench::run_opt(setup, c, opt_ref);
  });
  const auto mp_ts2 = bench::averaged_flow_delays(setup, [&](std::uint64_t seed) {
    auto c = base;
    c.seed = seed;
    return bench::run_mp(setup, c, /*tl=*/10, /*ts=*/2);
  });
  const auto mp_ts1 = bench::averaged_flow_delays(setup, [&](std::uint64_t seed) {
    auto c = base;
    c.seed = seed;
    return bench::run_mp(setup, c, /*tl=*/10, /*ts=*/1);
  });

  sim::DelayTable table(sim::flow_labels(setup.flows));
  table.add_series("OPT", opt);
  table.add_series("OPT+8%", bench::envelope(opt, 1.08));
  table.add_series("MP-TL-10-TS-2", mp_ts2);
  table.add_series("MP-TL-10-TS-1", mp_ts1);
  table.print(std::cout, "Figure 10: delays of OPT and MP in NET1");

  std::cout << "TS-2: ";
  bench::print_envelope_summary(opt, mp_ts2, 8.0);
  bench::print_ratio_summary("TS-2 MP vs OPT", mp_ts2, opt);
  std::cout << "TS-1: ";
  bench::print_envelope_summary(opt, mp_ts1, 8.0);
  bench::print_ratio_summary("TS-1 MP vs OPT", mp_ts1, opt);
  return 0;
}
