# Empty compiler generated dependencies file for mdrsim.
# This may be replaced when dependencies are built.
