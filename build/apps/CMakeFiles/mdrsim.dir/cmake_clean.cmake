file(REMOVE_RECURSE
  "CMakeFiles/mdrsim.dir/mdrsim.cc.o"
  "CMakeFiles/mdrsim.dir/mdrsim.cc.o.d"
  "mdrsim"
  "mdrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
