# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/gallager_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/mpda_test[1]_include.cmake")
include("/root/repo/build/tests/allocation_test[1]_include.cmake")
include("/root/repo/build/tests/mp_router_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mpath_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/hello_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/inspect_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/reporting_test[1]_include.cmake")
