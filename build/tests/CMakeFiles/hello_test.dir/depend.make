# Empty dependencies file for hello_test.
# This may be replaced when dependencies are built.
