file(REMOVE_RECURSE
  "CMakeFiles/hello_test.dir/hello_test.cc.o"
  "CMakeFiles/hello_test.dir/hello_test.cc.o.d"
  "hello_test"
  "hello_test.pdb"
  "hello_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hello_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
