file(REMOVE_RECURSE
  "CMakeFiles/gallager_test.dir/gallager_test.cc.o"
  "CMakeFiles/gallager_test.dir/gallager_test.cc.o.d"
  "gallager_test"
  "gallager_test.pdb"
  "gallager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
