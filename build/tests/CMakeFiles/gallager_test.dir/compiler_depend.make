# Empty compiler generated dependencies file for gallager_test.
# This may be replaced when dependencies are built.
