# Empty compiler generated dependencies file for mpda_test.
# This may be replaced when dependencies are built.
