file(REMOVE_RECURSE
  "CMakeFiles/mpda_test.dir/mpda_test.cc.o"
  "CMakeFiles/mpda_test.dir/mpda_test.cc.o.d"
  "mpda_test"
  "mpda_test.pdb"
  "mpda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
