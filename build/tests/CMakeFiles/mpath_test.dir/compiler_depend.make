# Empty compiler generated dependencies file for mpath_test.
# This may be replaced when dependencies are built.
