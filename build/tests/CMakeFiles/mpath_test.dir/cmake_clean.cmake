file(REMOVE_RECURSE
  "CMakeFiles/mpath_test.dir/mpath_test.cc.o"
  "CMakeFiles/mpath_test.dir/mpath_test.cc.o.d"
  "mpath_test"
  "mpath_test.pdb"
  "mpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
