# Empty dependencies file for mp_router_test.
# This may be replaced when dependencies are built.
