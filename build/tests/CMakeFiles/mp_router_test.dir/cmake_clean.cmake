file(REMOVE_RECURSE
  "CMakeFiles/mp_router_test.dir/mp_router_test.cc.o"
  "CMakeFiles/mp_router_test.dir/mp_router_test.cc.o.d"
  "mp_router_test"
  "mp_router_test.pdb"
  "mp_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
