
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/graph_test.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdr_gallager.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_mpath.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
