file(REMOVE_RECURSE
  "CMakeFiles/routing_tables.dir/routing_tables.cpp.o"
  "CMakeFiles/routing_tables.dir/routing_tables.cpp.o.d"
  "routing_tables"
  "routing_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
