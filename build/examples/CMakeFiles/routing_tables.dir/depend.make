# Empty dependencies file for routing_tables.
# This may be replaced when dependencies are built.
