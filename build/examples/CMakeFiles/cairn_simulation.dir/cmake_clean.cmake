file(REMOVE_RECURSE
  "CMakeFiles/cairn_simulation.dir/cairn_simulation.cpp.o"
  "CMakeFiles/cairn_simulation.dir/cairn_simulation.cpp.o.d"
  "cairn_simulation"
  "cairn_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cairn_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
