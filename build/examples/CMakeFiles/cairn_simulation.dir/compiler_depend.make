# Empty compiler generated dependencies file for cairn_simulation.
# This may be replaced when dependencies are built.
