
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cc" "src/CMakeFiles/mdr_core.dir/core/allocation.cc.o" "gcc" "src/CMakeFiles/mdr_core.dir/core/allocation.cc.o.d"
  "/root/repo/src/core/inspect.cc" "src/CMakeFiles/mdr_core.dir/core/inspect.cc.o" "gcc" "src/CMakeFiles/mdr_core.dir/core/inspect.cc.o.d"
  "/root/repo/src/core/mp_router.cc" "src/CMakeFiles/mdr_core.dir/core/mp_router.cc.o" "gcc" "src/CMakeFiles/mdr_core.dir/core/mp_router.cc.o.d"
  "/root/repo/src/core/mpda.cc" "src/CMakeFiles/mdr_core.dir/core/mpda.cc.o" "gcc" "src/CMakeFiles/mdr_core.dir/core/mpda.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdr_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
