# Empty compiler generated dependencies file for mdr_core.
# This may be replaced when dependencies are built.
