file(REMOVE_RECURSE
  "libmdr_core.a"
)
