file(REMOVE_RECURSE
  "CMakeFiles/mdr_core.dir/core/allocation.cc.o"
  "CMakeFiles/mdr_core.dir/core/allocation.cc.o.d"
  "CMakeFiles/mdr_core.dir/core/inspect.cc.o"
  "CMakeFiles/mdr_core.dir/core/inspect.cc.o.d"
  "CMakeFiles/mdr_core.dir/core/mp_router.cc.o"
  "CMakeFiles/mdr_core.dir/core/mp_router.cc.o.d"
  "CMakeFiles/mdr_core.dir/core/mpda.cc.o"
  "CMakeFiles/mdr_core.dir/core/mpda.cc.o.d"
  "libmdr_core.a"
  "libmdr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
