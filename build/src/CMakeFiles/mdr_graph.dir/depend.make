# Empty dependencies file for mdr_graph.
# This may be replaced when dependencies are built.
