file(REMOVE_RECURSE
  "libmdr_graph.a"
)
