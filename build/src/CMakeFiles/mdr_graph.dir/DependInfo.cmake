
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bellman_ford.cc" "src/CMakeFiles/mdr_graph.dir/graph/bellman_ford.cc.o" "gcc" "src/CMakeFiles/mdr_graph.dir/graph/bellman_ford.cc.o.d"
  "/root/repo/src/graph/dag.cc" "src/CMakeFiles/mdr_graph.dir/graph/dag.cc.o" "gcc" "src/CMakeFiles/mdr_graph.dir/graph/dag.cc.o.d"
  "/root/repo/src/graph/dijkstra.cc" "src/CMakeFiles/mdr_graph.dir/graph/dijkstra.cc.o" "gcc" "src/CMakeFiles/mdr_graph.dir/graph/dijkstra.cc.o.d"
  "/root/repo/src/graph/topology.cc" "src/CMakeFiles/mdr_graph.dir/graph/topology.cc.o" "gcc" "src/CMakeFiles/mdr_graph.dir/graph/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
