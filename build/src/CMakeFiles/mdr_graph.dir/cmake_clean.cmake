file(REMOVE_RECURSE
  "CMakeFiles/mdr_graph.dir/graph/bellman_ford.cc.o"
  "CMakeFiles/mdr_graph.dir/graph/bellman_ford.cc.o.d"
  "CMakeFiles/mdr_graph.dir/graph/dag.cc.o"
  "CMakeFiles/mdr_graph.dir/graph/dag.cc.o.d"
  "CMakeFiles/mdr_graph.dir/graph/dijkstra.cc.o"
  "CMakeFiles/mdr_graph.dir/graph/dijkstra.cc.o.d"
  "CMakeFiles/mdr_graph.dir/graph/topology.cc.o"
  "CMakeFiles/mdr_graph.dir/graph/topology.cc.o.d"
  "libmdr_graph.a"
  "libmdr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
