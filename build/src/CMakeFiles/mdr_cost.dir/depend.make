# Empty dependencies file for mdr_cost.
# This may be replaced when dependencies are built.
