file(REMOVE_RECURSE
  "libmdr_cost.a"
)
