
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/delay_model.cc" "src/CMakeFiles/mdr_cost.dir/cost/delay_model.cc.o" "gcc" "src/CMakeFiles/mdr_cost.dir/cost/delay_model.cc.o.d"
  "/root/repo/src/cost/estimators.cc" "src/CMakeFiles/mdr_cost.dir/cost/estimators.cc.o" "gcc" "src/CMakeFiles/mdr_cost.dir/cost/estimators.cc.o.d"
  "/root/repo/src/cost/smoother.cc" "src/CMakeFiles/mdr_cost.dir/cost/smoother.cc.o" "gcc" "src/CMakeFiles/mdr_cost.dir/cost/smoother.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
