file(REMOVE_RECURSE
  "CMakeFiles/mdr_cost.dir/cost/delay_model.cc.o"
  "CMakeFiles/mdr_cost.dir/cost/delay_model.cc.o.d"
  "CMakeFiles/mdr_cost.dir/cost/estimators.cc.o"
  "CMakeFiles/mdr_cost.dir/cost/estimators.cc.o.d"
  "CMakeFiles/mdr_cost.dir/cost/smoother.cc.o"
  "CMakeFiles/mdr_cost.dir/cost/smoother.cc.o.d"
  "libmdr_cost.a"
  "libmdr_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdr_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
