file(REMOVE_RECURSE
  "libmdr_sim.a"
)
