file(REMOVE_RECURSE
  "CMakeFiles/mdr_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/mdr_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/mdr_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/mdr_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/mdr_sim.dir/sim/link.cc.o"
  "CMakeFiles/mdr_sim.dir/sim/link.cc.o.d"
  "CMakeFiles/mdr_sim.dir/sim/network_sim.cc.o"
  "CMakeFiles/mdr_sim.dir/sim/network_sim.cc.o.d"
  "CMakeFiles/mdr_sim.dir/sim/node.cc.o"
  "CMakeFiles/mdr_sim.dir/sim/node.cc.o.d"
  "CMakeFiles/mdr_sim.dir/sim/scenario.cc.o"
  "CMakeFiles/mdr_sim.dir/sim/scenario.cc.o.d"
  "CMakeFiles/mdr_sim.dir/sim/traffic.cc.o"
  "CMakeFiles/mdr_sim.dir/sim/traffic.cc.o.d"
  "libmdr_sim.a"
  "libmdr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
