# Empty dependencies file for mdr_sim.
# This may be replaced when dependencies are built.
