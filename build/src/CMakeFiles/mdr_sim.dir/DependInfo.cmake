
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/mdr_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/mdr_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/mdr_sim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/mdr_sim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/link.cc" "src/CMakeFiles/mdr_sim.dir/sim/link.cc.o" "gcc" "src/CMakeFiles/mdr_sim.dir/sim/link.cc.o.d"
  "/root/repo/src/sim/network_sim.cc" "src/CMakeFiles/mdr_sim.dir/sim/network_sim.cc.o" "gcc" "src/CMakeFiles/mdr_sim.dir/sim/network_sim.cc.o.d"
  "/root/repo/src/sim/node.cc" "src/CMakeFiles/mdr_sim.dir/sim/node.cc.o" "gcc" "src/CMakeFiles/mdr_sim.dir/sim/node.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/CMakeFiles/mdr_sim.dir/sim/scenario.cc.o" "gcc" "src/CMakeFiles/mdr_sim.dir/sim/scenario.cc.o.d"
  "/root/repo/src/sim/traffic.cc" "src/CMakeFiles/mdr_sim.dir/sim/traffic.cc.o" "gcc" "src/CMakeFiles/mdr_sim.dir/sim/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_gallager.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
