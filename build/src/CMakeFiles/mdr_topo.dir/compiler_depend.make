# Empty compiler generated dependencies file for mdr_topo.
# This may be replaced when dependencies are built.
