file(REMOVE_RECURSE
  "CMakeFiles/mdr_topo.dir/topo/builders.cc.o"
  "CMakeFiles/mdr_topo.dir/topo/builders.cc.o.d"
  "CMakeFiles/mdr_topo.dir/topo/flows.cc.o"
  "CMakeFiles/mdr_topo.dir/topo/flows.cc.o.d"
  "libmdr_topo.a"
  "libmdr_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdr_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
