file(REMOVE_RECURSE
  "libmdr_topo.a"
)
