file(REMOVE_RECURSE
  "CMakeFiles/mdr_proto.dir/proto/hello.cc.o"
  "CMakeFiles/mdr_proto.dir/proto/hello.cc.o.d"
  "CMakeFiles/mdr_proto.dir/proto/lsu.cc.o"
  "CMakeFiles/mdr_proto.dir/proto/lsu.cc.o.d"
  "CMakeFiles/mdr_proto.dir/proto/pda.cc.o"
  "CMakeFiles/mdr_proto.dir/proto/pda.cc.o.d"
  "CMakeFiles/mdr_proto.dir/proto/tables.cc.o"
  "CMakeFiles/mdr_proto.dir/proto/tables.cc.o.d"
  "libmdr_proto.a"
  "libmdr_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdr_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
