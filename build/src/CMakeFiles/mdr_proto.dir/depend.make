# Empty dependencies file for mdr_proto.
# This may be replaced when dependencies are built.
