
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/hello.cc" "src/CMakeFiles/mdr_proto.dir/proto/hello.cc.o" "gcc" "src/CMakeFiles/mdr_proto.dir/proto/hello.cc.o.d"
  "/root/repo/src/proto/lsu.cc" "src/CMakeFiles/mdr_proto.dir/proto/lsu.cc.o" "gcc" "src/CMakeFiles/mdr_proto.dir/proto/lsu.cc.o.d"
  "/root/repo/src/proto/pda.cc" "src/CMakeFiles/mdr_proto.dir/proto/pda.cc.o" "gcc" "src/CMakeFiles/mdr_proto.dir/proto/pda.cc.o.d"
  "/root/repo/src/proto/tables.cc" "src/CMakeFiles/mdr_proto.dir/proto/tables.cc.o" "gcc" "src/CMakeFiles/mdr_proto.dir/proto/tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
