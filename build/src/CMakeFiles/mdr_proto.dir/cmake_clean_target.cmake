file(REMOVE_RECURSE
  "libmdr_proto.a"
)
