file(REMOVE_RECURSE
  "CMakeFiles/mdr_gallager.dir/gallager/marginals.cc.o"
  "CMakeFiles/mdr_gallager.dir/gallager/marginals.cc.o.d"
  "CMakeFiles/mdr_gallager.dir/gallager/optimizer.cc.o"
  "CMakeFiles/mdr_gallager.dir/gallager/optimizer.cc.o.d"
  "libmdr_gallager.a"
  "libmdr_gallager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdr_gallager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
