# Empty dependencies file for mdr_gallager.
# This may be replaced when dependencies are built.
