file(REMOVE_RECURSE
  "libmdr_gallager.a"
)
