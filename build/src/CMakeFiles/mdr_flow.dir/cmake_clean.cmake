file(REMOVE_RECURSE
  "CMakeFiles/mdr_flow.dir/flow/evaluate.cc.o"
  "CMakeFiles/mdr_flow.dir/flow/evaluate.cc.o.d"
  "CMakeFiles/mdr_flow.dir/flow/network.cc.o"
  "CMakeFiles/mdr_flow.dir/flow/network.cc.o.d"
  "CMakeFiles/mdr_flow.dir/flow/phi.cc.o"
  "CMakeFiles/mdr_flow.dir/flow/phi.cc.o.d"
  "libmdr_flow.a"
  "libmdr_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdr_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
