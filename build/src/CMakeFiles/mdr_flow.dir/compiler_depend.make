# Empty compiler generated dependencies file for mdr_flow.
# This may be replaced when dependencies are built.
