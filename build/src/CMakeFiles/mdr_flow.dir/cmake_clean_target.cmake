file(REMOVE_RECURSE
  "libmdr_flow.a"
)
