
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/evaluate.cc" "src/CMakeFiles/mdr_flow.dir/flow/evaluate.cc.o" "gcc" "src/CMakeFiles/mdr_flow.dir/flow/evaluate.cc.o.d"
  "/root/repo/src/flow/network.cc" "src/CMakeFiles/mdr_flow.dir/flow/network.cc.o" "gcc" "src/CMakeFiles/mdr_flow.dir/flow/network.cc.o.d"
  "/root/repo/src/flow/phi.cc" "src/CMakeFiles/mdr_flow.dir/flow/phi.cc.o" "gcc" "src/CMakeFiles/mdr_flow.dir/flow/phi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdr_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
