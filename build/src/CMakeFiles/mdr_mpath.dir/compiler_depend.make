# Empty compiler generated dependencies file for mdr_mpath.
# This may be replaced when dependencies are built.
