file(REMOVE_RECURSE
  "CMakeFiles/mdr_mpath.dir/mpath/mpath.cc.o"
  "CMakeFiles/mdr_mpath.dir/mpath/mpath.cc.o.d"
  "libmdr_mpath.a"
  "libmdr_mpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdr_mpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
