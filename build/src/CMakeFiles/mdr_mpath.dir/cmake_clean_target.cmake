file(REMOVE_RECURSE
  "libmdr_mpath.a"
)
