# Empty dependencies file for ablation_opt_step.
# This may be replaced when dependencies are built.
