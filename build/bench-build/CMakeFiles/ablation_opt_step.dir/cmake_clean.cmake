file(REMOVE_RECURSE
  "../bench/ablation_opt_step"
  "../bench/ablation_opt_step.pdb"
  "CMakeFiles/ablation_opt_step.dir/ablation_opt_step.cc.o"
  "CMakeFiles/ablation_opt_step.dir/ablation_opt_step.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_opt_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
