# Empty compiler generated dependencies file for ablation_failure_response.
# This may be replaced when dependencies are built.
