file(REMOVE_RECURSE
  "../bench/ablation_failure_response"
  "../bench/ablation_failure_response.pdb"
  "CMakeFiles/ablation_failure_response.dir/ablation_failure_response.cc.o"
  "CMakeFiles/ablation_failure_response.dir/ablation_failure_response.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failure_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
