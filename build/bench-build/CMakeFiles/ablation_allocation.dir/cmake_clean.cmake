file(REMOVE_RECURSE
  "../bench/ablation_allocation"
  "../bench/ablation_allocation.pdb"
  "CMakeFiles/ablation_allocation.dir/ablation_allocation.cc.o"
  "CMakeFiles/ablation_allocation.dir/ablation_allocation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
