file(REMOVE_RECURSE
  "../bench/fig10_net1_opt_mp"
  "../bench/fig10_net1_opt_mp.pdb"
  "CMakeFiles/fig10_net1_opt_mp.dir/fig10_net1_opt_mp.cc.o"
  "CMakeFiles/fig10_net1_opt_mp.dir/fig10_net1_opt_mp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_net1_opt_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
