# Empty compiler generated dependencies file for fig10_net1_opt_mp.
# This may be replaced when dependencies are built.
