# Empty dependencies file for ablation_timescales.
# This may be replaced when dependencies are built.
