file(REMOVE_RECURSE
  "../bench/ablation_timescales"
  "../bench/ablation_timescales.pdb"
  "CMakeFiles/ablation_timescales.dir/ablation_timescales.cc.o"
  "CMakeFiles/ablation_timescales.dir/ablation_timescales.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timescales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
