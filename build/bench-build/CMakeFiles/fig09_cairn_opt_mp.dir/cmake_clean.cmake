file(REMOVE_RECURSE
  "../bench/fig09_cairn_opt_mp"
  "../bench/fig09_cairn_opt_mp.pdb"
  "CMakeFiles/fig09_cairn_opt_mp.dir/fig09_cairn_opt_mp.cc.o"
  "CMakeFiles/fig09_cairn_opt_mp.dir/fig09_cairn_opt_mp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cairn_opt_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
