# Empty dependencies file for fig09_cairn_opt_mp.
# This may be replaced when dependencies are built.
