file(REMOVE_RECURSE
  "../bench/ablation_estimators"
  "../bench/ablation_estimators.pdb"
  "CMakeFiles/ablation_estimators.dir/ablation_estimators.cc.o"
  "CMakeFiles/ablation_estimators.dir/ablation_estimators.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
