file(REMOVE_RECURSE
  "../bench/fig12_net1_mp_sp"
  "../bench/fig12_net1_mp_sp.pdb"
  "CMakeFiles/fig12_net1_mp_sp.dir/fig12_net1_mp_sp.cc.o"
  "CMakeFiles/fig12_net1_mp_sp.dir/fig12_net1_mp_sp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_net1_mp_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
