# Empty compiler generated dependencies file for fig12_net1_mp_sp.
# This may be replaced when dependencies are built.
