# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12_net1_mp_sp.
