# Empty dependencies file for fig13_cairn_tl_effect.
# This may be replaced when dependencies are built.
