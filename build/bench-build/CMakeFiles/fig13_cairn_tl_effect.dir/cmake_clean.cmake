file(REMOVE_RECURSE
  "../bench/fig13_cairn_tl_effect"
  "../bench/fig13_cairn_tl_effect.pdb"
  "CMakeFiles/fig13_cairn_tl_effect.dir/fig13_cairn_tl_effect.cc.o"
  "CMakeFiles/fig13_cairn_tl_effect.dir/fig13_cairn_tl_effect.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cairn_tl_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
