# Empty compiler generated dependencies file for ablation_selfsimilar.
# This may be replaced when dependencies are built.
