file(REMOVE_RECURSE
  "../bench/ablation_selfsimilar"
  "../bench/ablation_selfsimilar.pdb"
  "CMakeFiles/ablation_selfsimilar.dir/ablation_selfsimilar.cc.o"
  "CMakeFiles/ablation_selfsimilar.dir/ablation_selfsimilar.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selfsimilar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
