# Empty dependencies file for ablation_loadsweep.
# This may be replaced when dependencies are built.
