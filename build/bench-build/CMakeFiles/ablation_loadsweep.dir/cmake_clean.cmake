file(REMOVE_RECURSE
  "../bench/ablation_loadsweep"
  "../bench/ablation_loadsweep.pdb"
  "CMakeFiles/ablation_loadsweep.dir/ablation_loadsweep.cc.o"
  "CMakeFiles/ablation_loadsweep.dir/ablation_loadsweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loadsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
