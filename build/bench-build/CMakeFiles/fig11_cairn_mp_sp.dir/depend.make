# Empty dependencies file for fig11_cairn_mp_sp.
# This may be replaced when dependencies are built.
