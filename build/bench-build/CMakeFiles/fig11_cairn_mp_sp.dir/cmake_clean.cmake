file(REMOVE_RECURSE
  "../bench/fig11_cairn_mp_sp"
  "../bench/fig11_cairn_mp_sp.pdb"
  "CMakeFiles/fig11_cairn_mp_sp.dir/fig11_cairn_mp_sp.cc.o"
  "CMakeFiles/fig11_cairn_mp_sp.dir/fig11_cairn_mp_sp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cairn_mp_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
