# Empty compiler generated dependencies file for fig14_net1_tl_effect.
# This may be replaced when dependencies are built.
