file(REMOVE_RECURSE
  "../bench/fig14_net1_tl_effect"
  "../bench/fig14_net1_tl_effect.pdb"
  "CMakeFiles/fig14_net1_tl_effect.dir/fig14_net1_tl_effect.cc.o"
  "CMakeFiles/fig14_net1_tl_effect.dir/fig14_net1_tl_effect.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_net1_tl_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
