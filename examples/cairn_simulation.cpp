// CAIRN walkthrough: the paper's headline experiment as a library example.
//
// Runs the reconstructed CAIRN research network under the paper's 11 flows
// with all three routing schemes — OPT (Gallager's minimum-delay routing as
// the lower bound), MP (this library's contribution) and SP (single-path) —
// and prints the per-flow comparison plus MP's internal state for one
// router, showing the loop-free multipath successor sets MPDA computed.
//
//   $ ./examples/cairn_simulation
#include <cstdio>

#include "sim/experiment.h"
#include "topo/builders.h"
#include "topo/flows.h"

using namespace mdr;

int main() {
  const auto topo = topo::make_cairn();
  const auto flows = topo::cairn_flows(1.15);
  std::printf("CAIRN: %zu routers, %zu directed links, %zu flows\n\n",
              topo.num_nodes(), topo.num_links(), flows.size());

  sim::ExperimentSpec spec{topo, flows, {}, {}};
  spec.config.duration = 60.0;
  spec.config.warmup = 10.0;

  // OPT: solve Gallager's problem at flow level, install the routing
  // parameters, measure in the packet simulator.
  const auto opt_ref = sim::compute_opt_reference(spec);
  std::printf("Gallager OPT: converged=%s after %d iterations, "
              "predicted average delay %.3f ms\n",
              opt_ref.feasible ? "yes" : "NO", opt_ref.iterations,
              opt_ref.average_delay_s * 1e3);
  const auto opt = sim::run_with_static_phi(spec, opt_ref.phi);

  // MP and SP run the live protocol via the shared mode-string entry point.
  spec.config.tl = 10;
  spec.config.ts = 2;
  const auto mp = sim::run_experiment(spec, "mp");
  spec.config.ts = 10;
  const auto sp = sim::run_experiment(spec, "sp");

  std::puts("\nper-flow mean delays (ms):");
  std::printf("  %-18s %8s %8s %8s %8s\n", "flow", "OPT", "MP", "SP", "SP/MP");
  for (std::size_t i = 0; i < flows.size(); ++i) {
    std::printf("  %-18s %8.3f %8.3f %8.3f %7.2fx\n",
                (flows[i].src + "->" + flows[i].dst).c_str(),
                opt.flows[i].mean_delay_s * 1e3, mp.flows[i].mean_delay_s * 1e3,
                sp.flows[i].mean_delay_s * 1e3,
                sp.flows[i].mean_delay_s / mp.flows[i].mean_delay_s);
  }
  std::printf("\nnetwork averages: OPT %.3f ms | MP %.3f ms | SP %.3f ms\n",
              opt.avg_delay_s * 1e3, mp.avg_delay_s * 1e3, sp.avg_delay_s * 1e3);
  std::printf("MP control overhead: %llu LSUs, %.1f kB over the whole run\n",
              static_cast<unsigned long long>(mp.control_messages),
              mp.control_bits / 8e3);

  // Show the busiest links under SP vs MP: MP spreads, SP concentrates.
  std::puts("\nfive busiest links (utilization):");
  auto busiest = [](const sim::SimResult& r) {
    auto links = r.links;
    std::sort(links.begin(), links.end(),
              [](const auto& x, const auto& y) { return x.utilization > y.utilization; });
    links.resize(5);
    return links;
  };
  const auto mp_busy = busiest(mp);
  const auto sp_busy = busiest(sp);
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("  MP %-18s %4.1f%%   SP %-18s %4.1f%%\n",
                (mp_busy[i].from + "->" + mp_busy[i].to).c_str(),
                mp_busy[i].utilization * 100,
                (sp_busy[i].from + "->" + sp_busy[i].to).c_str(),
                sp_busy[i].utilization * 100);
  }
  return 0;
}
