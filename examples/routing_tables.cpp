// Routing-state inspection: run MPDA+IH/AH over NET1 in-memory (no packet
// simulator — the protocol engines are transport-agnostic), then print each
// router's multipath routing table and emit the successor DAG for one
// destination as Graphviz DOT.
//
//   $ ./examples/routing_tables            # tables + DOT on stdout
//   $ ./examples/routing_tables | tail -n +999 | dot -Tsvg > sg.svg
#include <deque>
#include <iostream>
#include <map>
#include <memory>

#include "core/inspect.h"
#include "core/mp_router.h"
#include "topo/builders.h"
#include "util/rng.h"

using namespace mdr;
using graph::NodeId;

namespace {

// Minimal in-memory LSU transport: per-directed-pair FIFO queues drained in
// random order (arbitrary finite delays, as the paper's model allows).
class Mesh {
 public:
  explicit Mesh(const graph::Topology& topo) : topo_(&topo) {
    for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
      sinks_.push_back(std::make_unique<Sink>(this));
      routers_.push_back(std::make_unique<core::MpRouter>(
          i, topo.num_nodes(), *sinks_.back(), core::MpRouterOptions{}));
    }
  }

  void converge(Rng& rng) {
    for (graph::LinkId id = 0;
         id < static_cast<graph::LinkId>(topo_->num_links()); ++id) {
      const auto& l = topo_->link(id);
      // Long-term cost: one packet latency on the link.
      routers_[l.from]->on_link_up(
          l.to, 8000 / l.attr.capacity_bps + l.attr.prop_delay_s);
    }
    while (true) {
      std::vector<std::pair<NodeId, NodeId>> ready;
      for (const auto& [key, q] : queues_) {
        if (!q.empty()) ready.push_back(key);
      }
      if (ready.empty()) break;
      const auto key = ready[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(ready.size()) - 1))];
      const auto msg = queues_[key].front();
      queues_[key].pop_front();
      routers_[key.second]->on_lsu(msg);
    }
  }

  const core::MpRouter& router(NodeId i) const { return *routers_[i]; }
  std::vector<const core::MpRouter*> router_pointers() const {
    std::vector<const core::MpRouter*> out;
    for (const auto& r : routers_) out.push_back(r.get());
    return out;
  }

 private:
  struct Sink final : proto::LsuSink {
    explicit Sink(Mesh* m) : mesh(m) {}
    void send(NodeId neighbor, const proto::LsuMessage& msg) override {
      mesh->queues_[{msg.sender, neighbor}].push_back(msg);
    }
    Mesh* mesh;
  };

  const graph::Topology* topo_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::vector<std::unique_ptr<core::MpRouter>> routers_;
  std::map<std::pair<NodeId, NodeId>, std::deque<proto::LsuMessage>> queues_;
};

}  // namespace

int main() {
  const auto topo = topo::make_net1();
  Mesh mesh(topo);
  Rng rng(7);
  mesh.converge(rng);

  for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
    core::dump_router_state(std::cout, mesh.router(i), topo);
  }

  std::cout << "\n// Successor DAG toward node 8 (pipe into `dot -Tsvg`):\n";
  const auto routers = mesh.router_pointers();
  core::successor_graph_dot(std::cout, topo, routers, topo.find_node("8"));
  return 0;
}
