// Link failure and recovery: instantaneous loop-freedom under churn.
//
// The paper argues that "in the presence of link failures, MP can only
// perform better than SP, because of availability of alternate paths", and
// MPDA's safety property (Theorem 3) guarantees the multipath successor
// graph never loops even while routers disagree about the topology.
//
// This example kills a CAIRN backbone link mid-run, shows traffic
// rerouting within a long-term update period, restores the link, and
// reports packet loss and the TTL-drop counter (which would be nonzero if
// transient loops had trapped packets).
//
//   $ ./examples/link_failure
#include <cstdio>

#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"

using namespace mdr;

int main() {
  const auto topo = topo::make_cairn();
  const auto flows = topo::cairn_flows(1.0);

  sim::SimConfig config;
  config.mode = sim::RoutingMode::kMultipath;
  config.tl = 10;
  config.ts = 2;
  config.duration = 90.0;
  config.warmup = 10.0;
  // Cut the sri<->isi backbone trunk a third into the measured period,
  // restore it two-thirds in.
  const double t_fail = config.traffic_start + config.warmup + 30.0;
  const double t_heal = t_fail + 30.0;
  config.link_toggles.push_back({t_fail, "sri", "isi", /*up=*/false});
  config.link_toggles.push_back({t_heal, "sri", "isi", /*up=*/true});

  const auto result = sim::run_simulation(topo, flows, config);

  std::printf("CAIRN with sri<->isi failing at t=%.0fs, healing at t=%.0fs\n\n",
              t_fail, t_heal);
  std::puts("per-flow delivery and mean delay:");
  for (const auto& f : result.flows) {
    std::printf("  %-18s %8llu pkts  %7.3f ms\n",
                (f.src + "->" + f.dst).c_str(),
                static_cast<unsigned long long>(f.delivered),
                f.mean_delay_s * 1e3);
  }
  std::printf("\nlost to the failed link/in flight: %llu packets\n",
              static_cast<unsigned long long>(result.dropped_queue));
  std::printf("dropped for lack of a route:        %llu packets\n",
              static_cast<unsigned long long>(result.dropped_no_route));
  std::printf("dropped by TTL (loops would show here): %llu packets\n",
              static_cast<unsigned long long>(result.dropped_ttl));
  std::printf("control traffic: %llu LSUs (%.1f kB)\n",
              static_cast<unsigned long long>(result.control_messages),
              result.control_bits / 8e3);
  return 0;
}
