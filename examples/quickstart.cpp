// Quickstart: near-minimum-delay routing on a five-node network.
//
// Builds a small topology, runs the full MP stack (MPDA loop-free multipath
// + IH/AH flow allocation over two-timescale marginal-delay costs) in the
// packet simulator, and prints the routing tables and measured delays.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/mp_router.h"
#include "graph/topology.h"
#include "sim/network_sim.h"
#include "topo/flows.h"

using namespace mdr;

int main() {
  // A "kite": two parallel two-hop paths a->{b,c}->d plus a slow direct
  // link a->e->d, so the router at `a` has three unequal-cost loop-free
  // paths to choose from.
  graph::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  const auto d = topo.add_node("d");
  const auto e = topo.add_node("e");
  const graph::LinkAttr fast{10e6, 100e-6};  // 10 Mb/s, 100 us
  const graph::LinkAttr slow{4e6, 100e-6};   // 4 Mb/s
  topo.add_duplex(a, b, fast);
  topo.add_duplex(a, c, fast);
  topo.add_duplex(b, d, fast);
  topo.add_duplex(c, d, fast);
  topo.add_duplex(a, e, slow);
  topo.add_duplex(e, d, slow);

  // One 9 Mb/s flow from a to d: no single path can carry it comfortably,
  // so minimizing delay requires unequal-cost multipath.
  std::vector<topo::FlowSpec> flows{{"a", "d", 9e6}};

  sim::SimConfig config;
  config.mode = sim::RoutingMode::kMultipath;
  config.tl = 10.0;  // long-term (routing path) updates
  config.ts = 1.0;   // short-term (load balancing) updates
  config.duration = 30.0;
  config.warmup = 5.0;
  const auto result = sim::run_simulation(topo, flows, config);

  std::printf("flow a->d: %llu packets delivered, mean delay %.3f ms "
              "(p95 %.3f ms)\n",
              static_cast<unsigned long long>(result.flows[0].delivered),
              result.flows[0].mean_delay_s * 1e3,
              result.flows[0].p95_delay_s * 1e3);
  std::printf("control plane: %llu LSU messages (%.1f kB total)\n\n",
              static_cast<unsigned long long>(result.control_messages),
              result.control_bits / 8e3);

  std::puts("traffic split measured on a's outgoing links:");
  for (const auto& link : result.links) {
    if (link.from != "a") continue;
    std::printf("  a->%s  %8.2f kB data  (utilization %4.1f%%)\n",
                link.to.c_str(), link.data_bits / 8e3,
                link.utilization * 100.0);
  }

  std::puts("\nCompare with single-path routing on the same workload:");
  config.mode = sim::RoutingMode::kSinglePath;
  const auto sp = sim::run_simulation(topo, flows, config);
  std::printf("  MP mean delay %.3f ms   SP mean delay %.3f ms (%.1fx)\n",
              result.flows[0].mean_delay_s * 1e3, sp.flows[0].mean_delay_s * 1e3,
              sp.flows[0].mean_delay_s / result.flows[0].mean_delay_s);
  return 0;
}
