// Dynamic traffic: bursty on/off sources on NET1.
//
// The paper's motivation for the two-timescale split is that "a network
// cannot be responsive to short-term traffic bursts if only long-term
// updates are performed". This example drives NET1 with exponential on/off
// sources (bursts at ~2x the average rate) and shows how MP's Ts-period
// local load balancing absorbs what SP cannot: the gap between MP and SP
// widens compared to smooth Poisson traffic at the same average load.
//
//   $ ./examples/dynamic_traffic
#include <cstdio>

#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"

using namespace mdr;

namespace {

struct Outcome {
  double mp_ms;
  double sp_ms;
};

Outcome measure(const graph::Topology& topo,
                const std::vector<topo::FlowSpec>& flows, bool bursty) {
  sim::SimConfig config;
  config.duration = 120.0;
  config.warmup = 15.0;
  if (bursty) {
    config.traffic.model = sim::TrafficModel::kOnOff;
    config.traffic.burstiness = {/*mean_on_s=*/5.0, /*mean_off_s=*/5.0};
  }

  config.mode = sim::RoutingMode::kMultipath;
  config.tl = 10;
  config.ts = 2;
  const auto mp = sim::run_simulation(topo, flows, config);

  config.mode = sim::RoutingMode::kSinglePath;
  config.ts = 10;
  const auto sp = sim::run_simulation(topo, flows, config);
  return {mp.avg_delay_s * 1e3, sp.avg_delay_s * 1e3};
}

}  // namespace

int main() {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.7);  // moderate *average* load

  const auto smooth = measure(topo, flows, /*bursty=*/false);
  const auto bursty = measure(topo, flows, /*bursty=*/true);

  std::puts("NET1, same average load, smooth vs bursty arrivals:");
  std::printf("  %-22s %10s %10s %8s\n", "traffic", "MP (ms)", "SP (ms)", "SP/MP");
  std::printf("  %-22s %10.3f %10.3f %7.2fx\n", "Poisson (smooth)",
              smooth.mp_ms, smooth.sp_ms, smooth.sp_ms / smooth.mp_ms);
  std::printf("  %-22s %10.3f %10.3f %7.2fx\n", "on/off bursts (2x peak)",
              bursty.mp_ms, bursty.sp_ms, bursty.sp_ms / bursty.mp_ms);

  std::puts("\nMP rides out bursts with Ts-period local reallocation;");
  std::puts("SP must wait for the next long-term routing update.");
  return 0;
}
