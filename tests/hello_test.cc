// Unit tests for the hello protocol (proto/hello.h) plus end-to-end tests
// of hello-gated routing in the simulator, including silent-failure
// detection via the dead interval.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "proto/damping.h"
#include "proto/hello.h"
#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"

namespace mdr::proto {
namespace {

using graph::NodeId;

TEST(HelloCodec, RoundTrip) {
  HelloMessage msg;
  msg.sender = 9;
  msg.heard = {1, 4, 7};
  const auto decoded = decode_hello(encode_hello(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
  EXPECT_EQ(msg.wire_size_bits(), encode_hello(msg).size() * 8);
}

TEST(HelloCodec, EmptyHeardList) {
  const HelloMessage msg{3, {}};
  const auto decoded = decode_hello(encode_hello(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->heard.empty());
}

TEST(HelloCodec, RejectsTruncatedAndTrailing) {
  auto wire = encode_hello(HelloMessage{1, 0, {2, 3}});
  EXPECT_FALSE(decode_hello(std::span(wire.data(), wire.size() - 1)).has_value());
  wire.push_back(0);
  EXPECT_FALSE(decode_hello(wire).has_value());
  EXPECT_FALSE(decode_hello(std::span<const std::uint8_t>{}).has_value());
}

TEST(HelloCodec, RejectsEverySingleBitFlip) {
  // The chaos model flips one random bit in control payloads; the checksum
  // trailer must reject all of them — a flipped generation would otherwise
  // masquerade as a reboot and tear a healthy adjacency down.
  const auto wire = encode_hello(HelloMessage{9, 7, {1, 4}});
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    auto flipped = wire;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(decode_hello(flipped).has_value()) << "bit " << bit;
  }
}

// Fixture wiring two HelloProtocol instances through in-memory delivery.
class HelloPair : public ::testing::Test {
 protected:
  HelloPair() {
    for (NodeId id : {0, 1}) {
      HelloProtocol::Callbacks callbacks;
      callbacks.adjacency_up = [this, id](NodeId k) { up_events.push_back({id, k}); };
      callbacks.adjacency_down = [this, id](NodeId k) {
        down_events.push_back({id, k});
      };
      callbacks.send_hello = [this, id](NodeId k, const HelloMessage& m) {
        if (link_up) outbox.push_back({k, m});
      };
      nodes.push_back(std::make_unique<HelloProtocol>(
          id, HelloProtocol::Options{1.0, 3.5}, std::move(callbacks)));
    }
  }

  // Delivers every queued hello at time `now`.
  void flush(double now) {
    auto pending = std::move(outbox);
    outbox.clear();
    for (const auto& [to, msg] : pending) nodes[to]->on_hello(msg, now);
  }

  std::vector<std::unique_ptr<HelloProtocol>> nodes;
  std::vector<std::pair<NodeId, HelloMessage>> outbox;  // (to, msg)
  std::vector<std::pair<NodeId, NodeId>> up_events;    // (at, neighbor)
  std::vector<std::pair<NodeId, NodeId>> down_events;  // (at, neighbor)
  bool link_up = true;
};

TEST_F(HelloPair, TwoWayCheckGatesAdjacency) {
  nodes[0]->physical_up(1);
  nodes[1]->physical_up(0);
  // Round 1: both send "heard: {}" — each now hears the other (1-way).
  nodes[0]->tick(0.0);
  nodes[1]->tick(0.0);
  flush(0.1);
  EXPECT_TRUE(up_events.empty());  // nobody is 2-way yet
  EXPECT_FALSE(nodes[0]->adjacent(1));
  // Round 2: hellos now list the peer — 2-way on both sides.
  nodes[0]->tick(1.0);
  nodes[1]->tick(1.0);
  flush(1.1);
  EXPECT_TRUE(nodes[0]->adjacent(1));
  EXPECT_TRUE(nodes[1]->adjacent(0));
  ASSERT_EQ(up_events.size(), 2u);
}

TEST_F(HelloPair, OneWayLinkNeverBecomesAdjacent) {
  nodes[0]->physical_up(1);
  nodes[1]->physical_up(0);
  for (double t = 0; t < 10; t += 1.0) {
    nodes[0]->tick(t);
    nodes[1]->tick(t);
    // Deliver only 0 -> 1; drop 1 -> 0 (unidirectional fault).
    auto pending = std::move(outbox);
    outbox.clear();
    for (const auto& [to, msg] : pending) {
      if (msg.sender == 0) nodes[to]->on_hello(msg, t + 0.1);
    }
  }
  // 1 hears 0, and 1's hellos list 0 — but they never reach 0, so no side
  // sees 2-way... except 1 would see itself in 0's hellos only if 0 heard
  // it. 0 never hears 1: no adjacency anywhere.
  EXPECT_FALSE(nodes[0]->adjacent(1));
  EXPECT_FALSE(nodes[1]->adjacent(0));
  EXPECT_TRUE(up_events.empty());
}

TEST_F(HelloPair, DeadIntervalDropsAdjacency) {
  nodes[0]->physical_up(1);
  nodes[1]->physical_up(0);
  for (double t = 0; t <= 2.0; t += 1.0) {
    nodes[0]->tick(t);
    nodes[1]->tick(t);
    flush(t + 0.1);
  }
  ASSERT_TRUE(nodes[0]->adjacent(1));
  // Silence: the "link" drops everything from now on.
  link_up = false;
  for (double t = 3.0; t <= 8.0; t += 1.0) {
    nodes[0]->tick(t);
    nodes[1]->tick(t);
  }
  EXPECT_FALSE(nodes[0]->adjacent(1));
  EXPECT_FALSE(nodes[1]->adjacent(0));
  EXPECT_EQ(down_events.size(), 2u);
}

TEST_F(HelloPair, DeadIntervalBoundaryIsExclusive) {
  // The peer is dead only when silence *exceeds* the dead interval: a tick
  // at exactly last_heard + dead_interval keeps the adjacency (OSPF
  // semantics: the timer fires after, not at, RouterDeadInterval).
  nodes[0]->physical_up(1);
  nodes[1]->physical_up(0);
  for (double t = 0; t <= 2.0; t += 1.0) {
    nodes[0]->tick(t);
    nodes[1]->tick(t);
    flush(t + 0.1);
  }
  ASSERT_TRUE(nodes[0]->adjacent(1));
  const double last_heard = 2.1;  // the final flush above
  link_up = false;
  nodes[0]->tick(last_heard + 3.5);  // exactly the dead interval
  EXPECT_TRUE(nodes[0]->adjacent(1));
  EXPECT_TRUE(down_events.empty());
  nodes[0]->tick(last_heard + 3.5 + 1e-9);  // just past it
  EXPECT_FALSE(nodes[0]->adjacent(1));
  ASSERT_EQ(down_events.size(), 1u);
}

TEST_F(HelloPair, GenerationChangeSignalsRebootInstantly) {
  // Node 1 reboots and is back before its next hello is even due — far
  // inside the dead interval, so the silence timer never fires. The bumped
  // generation number in its first post-reboot hello is the only signal,
  // and it must tear the stale adjacency down immediately so the routing
  // layer flushes per-neighbor state and resyncs.
  nodes[0]->physical_up(1);
  nodes[1]->physical_up(0);
  for (double t = 0; t <= 2.0; t += 1.0) {
    nodes[0]->tick(t);
    nodes[1]->tick(t);
    flush(t + 0.1);
  }
  ASSERT_TRUE(nodes[0]->adjacent(1));
  ASSERT_TRUE(down_events.empty());

  nodes[1]->restart(/*generation=*/1);
  nodes[1]->physical_up(0);  // the host re-learns its attached links
  EXPECT_FALSE(nodes[1]->adjacent(0));  // reboot wiped the peer table

  nodes[1]->tick(3.0);  // first post-reboot hello, generation 1
  flush(3.1);
  // Node 0 saw the generation change: stale adjacency torn down at once,
  // 0.4 s after the reboot instead of a 3.5 s dead interval later.
  ASSERT_GE(down_events.size(), 1u);
  EXPECT_EQ(down_events[0], (std::pair<NodeId, NodeId>{0, 1}));

  // And the 2-way handshake re-establishes from scratch.
  for (double t = 4.0; t <= 6.0; t += 1.0) {
    nodes[0]->tick(t);
    nodes[1]->tick(t);
    flush(t + 0.1);
  }
  EXPECT_TRUE(nodes[0]->adjacent(1));
  EXPECT_TRUE(nodes[1]->adjacent(0));
}

TEST_F(HelloPair, SignaledPhysicalDownDropsImmediately) {
  nodes[0]->physical_up(1);
  nodes[1]->physical_up(0);
  for (double t = 0; t <= 2.0; t += 1.0) {
    nodes[0]->tick(t);
    nodes[1]->tick(t);
    flush(t + 0.1);
  }
  ASSERT_TRUE(nodes[0]->adjacent(1));
  nodes[0]->physical_down(1);
  EXPECT_FALSE(nodes[0]->adjacent(1));
  ASSERT_EQ(down_events.size(), 1u);
  EXPECT_EQ(down_events[0], (std::pair<NodeId, NodeId>{0, 1}));
}

TEST_F(HelloPair, ReestablishesAfterSilenceEnds) {
  nodes[0]->physical_up(1);
  nodes[1]->physical_up(0);
  for (double t = 0; t <= 2.0; t += 1.0) {
    nodes[0]->tick(t);
    nodes[1]->tick(t);
    flush(t + 0.1);
  }
  link_up = false;
  for (double t = 3.0; t <= 8.0; t += 1.0) {
    nodes[0]->tick(t);
    nodes[1]->tick(t);
  }
  ASSERT_FALSE(nodes[0]->adjacent(1));
  link_up = true;
  for (double t = 9.0; t <= 11.0; t += 1.0) {
    nodes[0]->tick(t);
    nodes[1]->tick(t);
    flush(t + 0.1);
  }
  EXPECT_TRUE(nodes[0]->adjacent(1));
  EXPECT_TRUE(nodes[1]->adjacent(0));
}

// ---------------------------------------------------------------------------
// FlapDamper (proto/damping.h): RFC 2439-style penalty bookkeeping that the
// simulator layers between hello adjacency events and the routing process.

FlapDamper::Options damper_options() {
  FlapDamper::Options o;
  o.enabled = true;
  o.penalty = 1000.0;
  o.suppress_threshold = 1500.0;
  o.reuse_threshold = 800.0;
  o.half_life = 8.0;
  o.max_penalty = 6000.0;
  return o;
}

TEST(FlapDamper, SingleDownDoesNotSuppress) {
  FlapDamper damper(damper_options());
  EXPECT_FALSE(damper.on_down(1, 10.0));
  EXPECT_FALSE(damper.suppressed(1));
  EXPECT_TRUE(damper.on_up(1, 12.0));  // re-announce freely
  EXPECT_EQ(damper.damped_withdrawals(), 0u);
}

TEST(FlapDamper, RepeatedDownsCrossSuppressThreshold) {
  FlapDamper damper(damper_options());
  EXPECT_FALSE(damper.on_down(1, 0.0));  // penalty 1000
  // One half-life later the first penalty decayed to 500; the second down
  // lands at 1500 >= suppress_threshold.
  EXPECT_TRUE(damper.on_down(1, 8.0));
  EXPECT_TRUE(damper.suppressed(1));
  EXPECT_EQ(damper.damped_withdrawals(), 1u);
}

TEST(FlapDamper, UpsAreSwallowedWhileSuppressed) {
  FlapDamper damper(damper_options());
  damper.on_down(1, 0.0);
  damper.on_down(1, 0.1);
  ASSERT_TRUE(damper.suppressed(1));
  EXPECT_FALSE(damper.on_up(1, 0.5));
  EXPECT_FALSE(damper.on_up(1, 1.0));
  EXPECT_EQ(damper.suppressed_ups(), 2u);
  // A different neighbor is unaffected.
  EXPECT_TRUE(damper.on_up(2, 1.0));
}

TEST(FlapDamper, DecayReleasesAfterQuietPeriod) {
  FlapDamper damper(damper_options());
  damper.on_down(1, 0.0);
  damper.on_down(1, 0.1);  // ~2000: suppressed
  ASSERT_TRUE(damper.suppressed(1));
  EXPECT_TRUE(damper.release_reusable(1.0).empty());  // barely decayed
  // 2000 * 2^(-dt/8) < 800 needs dt > 8 * log2(2.5) ~ 10.6 s.
  const auto released = damper.release_reusable(12.0);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], 1);
  EXPECT_FALSE(damper.suppressed(1));
  EXPECT_TRUE(damper.on_up(1, 12.5));
}

TEST(FlapDamper, PenaltyIsCappedAtMax) {
  FlapDamper damper(damper_options());
  for (int i = 0; i < 50; ++i) damper.on_down(1, 0.0);
  EXPECT_LE(damper.penalty(1, 0.0), damper.options().max_penalty);
  // The cap bounds the suppression time: 6000 decays to 750 < 800 after
  // exactly three half-lives, no matter how many downs piled up.
  EXPECT_TRUE(damper.release_reusable(23.0).empty());  // ~818: still held
  EXPECT_FALSE(damper.release_reusable(24.0).empty());
}

TEST(FlapDamper, ResetClearsStateButKeepsCounters) {
  FlapDamper damper(damper_options());
  damper.on_down(1, 0.0);
  damper.on_down(1, 0.1);
  damper.on_up(1, 0.2);
  ASSERT_EQ(damper.damped_withdrawals(), 1u);
  ASSERT_EQ(damper.suppressed_ups(), 1u);
  damper.reset();  // crash: damping state dies with the router
  EXPECT_FALSE(damper.suppressed(1));
  EXPECT_DOUBLE_EQ(damper.penalty(1, 1.0), 0.0);
  EXPECT_TRUE(damper.on_up(1, 1.0));
  // Run statistics survive the reboot.
  EXPECT_EQ(damper.damped_withdrawals(), 1u);
  EXPECT_EQ(damper.suppressed_ups(), 1u);
}

TEST(HelloProtocolMisc, IgnoresHelloWithoutPhysicalLink) {
  HelloProtocol::Callbacks callbacks;
  int ups = 0;
  callbacks.adjacency_up = [&ups](NodeId) { ++ups; };
  HelloProtocol hello(0, HelloProtocol::Options{1.0, 3.5}, std::move(callbacks));
  hello.on_hello(HelloMessage{5, 0, {0}}, 1.0);  // no physical_up(5) happened
  EXPECT_FALSE(hello.adjacent(5));
  EXPECT_EQ(ups, 0);
}

}  // namespace
}  // namespace mdr::proto

namespace mdr::sim {
namespace {

TEST(HelloSim, RoutingConvergesBehindHello) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.5);
  SimConfig config;
  config.use_hello = true;
  config.traffic_start = 6.0;  // leave room for adjacency + convergence
  config.warmup = 6.0;
  config.duration = 20.0;
  const auto result = run_simulation(topo, flows, config);
  for (const auto& f : result.flows) {
    EXPECT_GT(f.delivered, 200u) << f.src << "->" << f.dst;
  }
  EXPECT_EQ(result.dropped_no_route, 0u);
}

TEST(HelloSim, SilentFailureDetectedByDeadInterval) {
  // Two disjoint paths; the used links fail *silently*. Without hello the
  // traffic would blackhole forever; with hello the dead interval detects
  // the loss and MPDA reroutes.
  graph::Topology topo;
  topo.add_nodes(4);
  const graph::LinkAttr attr{10e6, 1e-4};
  topo.add_duplex(0, 1, attr);
  topo.add_duplex(0, 2, attr);
  topo.add_duplex(1, 3, attr);
  topo.add_duplex(2, 3, attr);
  std::vector<topo::FlowSpec> flows{{"n0", "n3", 2e6}};

  SimConfig config;
  config.use_hello = true;
  config.traffic_start = 6.0;
  config.warmup = 4.0;
  config.duration = 40.0;
  const double t_fail = 20.0;
  config.link_toggles.push_back({t_fail, "n0", "n1", false, /*silent=*/true});
  const auto result = run_simulation(topo, flows, config);

  // Traffic still flows after detection (some loss during the dead window).
  EXPECT_GT(result.flows[0].delivered, 4000u);
  double via2 = 0;
  for (const auto& l : result.links) {
    if (l.from == "n0" && l.to == "n2") via2 = l.data_bits;
  }
  EXPECT_GT(via2, 1e6);  // rerouted through n2
  // The blackhole window is bounded by the dead interval: lost packets stay
  // well below what forwarding into the void for the rest of the run would
  // produce (~2 Mb/s * 20 s / 8000 bits = 5000 packets).
  EXPECT_LT(result.dropped_queue + result.dropped_no_route, 2500u);
}

TEST(HelloSim, LoopFreedomHoldsWithHelloChurn) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.5);
  SimConfig config;
  config.use_hello = true;
  config.traffic_start = 6.0;
  config.warmup = 4.0;
  config.duration = 30.0;
  config.lfi_check_interval = 0.05;
  config.link_toggles.push_back({20.0, "0", "9", false, /*silent=*/true});
  config.link_toggles.push_back({30.0, "0", "9", true, /*silent=*/true});
  const auto result = run_simulation(topo, flows, config);
  EXPECT_GT(result.lfi_checks, 100u);
  EXPECT_EQ(result.lfi_violations, 0u);
}

}  // namespace
}  // namespace mdr::sim
