// Unit tests for the multi-seed experiment runner (src/runner/).
//
// The load-bearing property is seed determinism: a batch's results depend
// only on (base_seed, job_index), never on how many worker threads happen
// to execute it. Workers affect wall-clock, nothing else.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "runner/experiment_runner.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/stats.h"

namespace mdr::runner {
namespace {

sim::ExperimentSpec small_spec() {
  sim::ExperimentSpec spec{topo::make_net1(), topo::net1_flows(0.6), {}, {}};
  spec.config.traffic_start = 2;
  spec.config.warmup = 4;
  spec.config.duration = 12;
  spec.config.seed = 17;
  return spec;
}

TEST(DeriveSeed, DistinctPerJobIndex) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(derive_seed(/*base_seed=*/1, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  // Different base seeds give different streams for the same index.
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  // The derived seed is not just base + index.
  EXPECT_NE(derive_seed(1, 1), 2u);
}

TEST(ExperimentRunner, JobCountDoesNotAffectResults) {
  const auto spec = small_spec();
  ExperimentRunner serial(Options{/*jobs=*/1, /*base_seed=*/spec.config.seed});
  ExperimentRunner wide(Options{/*jobs=*/8, /*base_seed=*/spec.config.seed});

  const auto a = serial.run_replicated(spec, "mp", /*replications=*/4);
  const auto b = wide.run_replicated(spec, "mp", /*replications=*/4);

  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    // Bit-identical per run: same derived seed -> same event sequence.
    EXPECT_EQ(a.runs[i].delivered, b.runs[i].delivered) << "run " << i;
    EXPECT_EQ(a.runs[i].avg_delay_s, b.runs[i].avg_delay_s) << "run " << i;
    EXPECT_EQ(a.runs[i].control_messages, b.runs[i].control_messages)
        << "run " << i;
  }
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].mean_delay_s, b.flows[i].mean_delay_s);
    EXPECT_EQ(a.flows[i].ci95_delay_s, b.flows[i].ci95_delay_s);
  }
  EXPECT_EQ(a.avg_delay_s.mean(), b.avg_delay_s.mean());
}

TEST(ExperimentRunner, ReplicationsUseDistinctSeedsAndVary) {
  const auto spec = small_spec();
  ExperimentRunner runner(Options{/*jobs=*/2, /*base_seed=*/spec.config.seed});
  const auto batch = runner.run_replicated(spec, "mp", /*replications=*/3);
  ASSERT_EQ(batch.runs.size(), 3u);
  // Different derived seeds produce (at least slightly) different delays.
  EXPECT_NE(batch.runs[0].avg_delay_s, batch.runs[1].avg_delay_s);
  EXPECT_GT(batch.avg_delay_s.stddev(), 0.0);
}

TEST(Aggregation, CiMatchesHandComputedFixture) {
  // Samples {1,2,3,4,5}: mean 3, sample stddev sqrt(2.5), df=4 -> t=2.776,
  // half-width = 2.776 * sqrt(2.5)/sqrt(5) = 1.962927...
  OnlineStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(ci95_halfwidth(s), 2.776 * std::sqrt(2.5) / std::sqrt(5.0),
              1e-9);
  // Degenerate cases: no spread and too-few samples.
  OnlineStats one;
  one.add(42.0);
  EXPECT_EQ(ci95_halfwidth(one), 0.0);
  EXPECT_DOUBLE_EQ(student_t95(1), 12.706);
  EXPECT_DOUBLE_EQ(student_t95(1000), 1.96);
}

TEST(Json, WritesParsableSchema) {
  const auto spec = small_spec();
  ExperimentRunner runner(Options{/*jobs=*/2, /*base_seed=*/spec.config.seed});
  const auto batch = runner.run_replicated(spec, "mp", /*replications=*/2);
  std::ostringstream out;
  write_results_json(out, batch, "unit\"test");
  const std::string json = out.str();
  // Spot-check structure and escaping (full parse is the ctest smoke run).
  EXPECT_NE(json.find("\"name\": \"unit\\\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"mp\""), std::string::npos);
  EXPECT_NE(json.find("\"replications\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"flows\": ["), std::string::npos);
  EXPECT_NE(json.find("\"runs\": ["), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

}  // namespace
}  // namespace mdr::runner
