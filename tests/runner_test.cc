// Unit tests for the multi-seed experiment runner (src/runner/).
//
// The load-bearing property is seed determinism: a batch's results depend
// only on (base_seed, job_index), never on how many worker threads happen
// to execute it. Workers affect wall-clock, nothing else.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "runner/experiment_runner.h"
#include "sim/experiment.h"
#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/stats.h"

namespace mdr::runner {
namespace {

sim::ExperimentSpec small_spec() {
  sim::ExperimentSpec spec{topo::make_net1(), topo::net1_flows(0.6), {}, {}};
  spec.config.traffic_start = 2;
  spec.config.warmup = 4;
  spec.config.duration = 12;
  spec.config.seed = 17;
  return spec;
}

TEST(DeriveSeed, DistinctPerJobIndex) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(derive_seed(/*base_seed=*/1, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  // Different base seeds give different streams for the same index.
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  // The derived seed is not just base + index.
  EXPECT_NE(derive_seed(1, 1), 2u);
}

TEST(ExperimentRunner, JobCountDoesNotAffectResults) {
  const auto spec = small_spec();
  ExperimentRunner serial(Options{/*jobs=*/1, /*base_seed=*/spec.config.seed});
  ExperimentRunner wide(Options{/*jobs=*/8, /*base_seed=*/spec.config.seed});

  const auto a = serial.run_replicated(spec, "mp", /*replications=*/4);
  const auto b = wide.run_replicated(spec, "mp", /*replications=*/4);

  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    // Bit-identical per run: same derived seed -> same event sequence.
    EXPECT_EQ(a.runs[i].delivered, b.runs[i].delivered) << "run " << i;
    EXPECT_EQ(a.runs[i].avg_delay_s, b.runs[i].avg_delay_s) << "run " << i;
    EXPECT_EQ(a.runs[i].control_messages, b.runs[i].control_messages)
        << "run " << i;
  }
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].mean_delay_s, b.flows[i].mean_delay_s);
    EXPECT_EQ(a.flows[i].ci95_delay_s, b.flows[i].ci95_delay_s);
  }
  EXPECT_EQ(a.avg_delay_s.mean(), b.avg_delay_s.mean());
}

TEST(ExperimentRunner, ReplicationsUseDistinctSeedsAndVary) {
  const auto spec = small_spec();
  ExperimentRunner runner(Options{/*jobs=*/2, /*base_seed=*/spec.config.seed});
  const auto batch = runner.run_replicated(spec, "mp", /*replications=*/3);
  ASSERT_EQ(batch.runs.size(), 3u);
  // Different derived seeds produce (at least slightly) different delays.
  EXPECT_NE(batch.runs[0].avg_delay_s, batch.runs[1].avg_delay_s);
  EXPECT_GT(batch.avg_delay_s.stddev(), 0.0);
}

TEST(Aggregation, CiMatchesHandComputedFixture) {
  // Samples {1,2,3,4,5}: mean 3, sample stddev sqrt(2.5), df=4 -> t=2.776,
  // half-width = 2.776 * sqrt(2.5)/sqrt(5) = 1.962927...
  OnlineStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(ci95_halfwidth(s), 2.776 * std::sqrt(2.5) / std::sqrt(5.0),
              1e-9);
  // Degenerate cases: no spread and too-few samples.
  OnlineStats one;
  one.add(42.0);
  EXPECT_EQ(ci95_halfwidth(one), 0.0);
  EXPECT_DOUBLE_EQ(student_t95(1), 12.706);
  EXPECT_DOUBLE_EQ(student_t95(1000), 1.96);
}

TEST(Json, WritesParsableSchema) {
  const auto spec = small_spec();
  ExperimentRunner runner(Options{/*jobs=*/2, /*base_seed=*/spec.config.seed});
  const auto batch = runner.run_replicated(spec, "mp", /*replications=*/2);
  std::ostringstream out;
  write_results_json(out, batch, "unit\"test");
  const std::string json = out.str();
  // Spot-check structure and escaping (full parse is the ctest smoke run).
  EXPECT_NE(json.find("\"name\": \"unit\\\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"mp\""), std::string::npos);
  EXPECT_NE(json.find("\"replications\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"flows\": ["), std::string::npos);
  EXPECT_NE(json.find("\"runs\": ["), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

// ------------------------------------------------------- fault tolerance

// A stand-in result distinguishable from the default-constructed one a
// failed job leaves behind.
sim::SimResult stub_result(double delay) {
  sim::SimResult r;
  r.avg_delay_s = delay;
  r.delivered = 100;
  return r;
}

TEST(FaultTolerance, ThrowingJobDoesNotKillOtherSeeds) {
  // Before the rearchitecture an exception escaping the pool's worker
  // thread hit std::terminate and took every other seed with it. Now the
  // crashing job is recorded as failed and the rest complete normally.
  Options options;
  options.jobs = 4;
  options.base_seed = 7;
  const std::uint64_t crashing_seed = derive_seed(7, 1);
  options.run_fn = [crashing_seed](const sim::ExperimentSpec& spec,
                                   const std::string&) {
    if (spec.config.seed == crashing_seed) {
      throw std::runtime_error("injected crash");
    }
    return stub_result(1e-3 * static_cast<double>(spec.config.seed % 97));
  };
  ExperimentRunner runner(options);
  std::vector<Job> jobs(4, Job{sim::ExperimentSpec{}, "mp"});
  std::vector<JobOutcome> outcomes;
  const auto results = runner.run(jobs, &outcomes);

  ASSERT_EQ(results.size(), 4u);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[1].status, "failed");
  EXPECT_EQ(outcomes[1].attempts, 1);
  EXPECT_EQ(outcomes[1].error, "injected crash");
  EXPECT_EQ(results[1].delivered, 0u);  // default slot, never assigned
  for (const std::size_t i : {0u, 2u, 3u}) {
    EXPECT_EQ(outcomes[i].status, "ok") << "job " << i;
    EXPECT_EQ(results[i].delivered, 100u) << "job " << i;
  }
}

TEST(FaultTolerance, RetriesAtTheSameSeedWithBoundedAttempts) {
  Options options;
  options.jobs = 1;
  options.base_seed = 3;
  options.max_attempts = 3;
  options.backoff_initial_s = 0.001;  // keep the test fast
  std::mutex mu;
  std::vector<std::uint64_t> seeds_seen;
  options.run_fn = [&](const sim::ExperimentSpec& spec, const std::string&) {
    std::lock_guard<std::mutex> lock(mu);
    seeds_seen.push_back(spec.config.seed);
    if (seeds_seen.size() < 3) throw std::runtime_error("transient");
    return stub_result(1e-3);
  };
  ExperimentRunner runner(options);
  std::vector<JobOutcome> outcomes;
  const auto results =
      runner.run({Job{sim::ExperimentSpec{}, "mp"}}, &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, "ok");
  EXPECT_EQ(outcomes[0].attempts, 3);
  EXPECT_TRUE(outcomes[0].error.empty());
  EXPECT_EQ(results[0].delivered, 100u);
  // Every attempt ran under the SAME derived seed (reproducibility).
  ASSERT_EQ(seeds_seen.size(), 3u);
  for (const auto s : seeds_seen) EXPECT_EQ(s, derive_seed(3, 0));
}

TEST(FaultTolerance, PermanentFailureIsBoundedAndReported) {
  Options options;
  options.jobs = 2;
  options.max_attempts = 2;
  options.backoff_initial_s = 0.001;
  options.run_fn = [](const sim::ExperimentSpec&, const std::string&)
      -> sim::SimResult { throw std::runtime_error("always"); };
  ExperimentRunner runner(options);
  std::vector<JobOutcome> outcomes;
  runner.run(std::vector<Job>(2, Job{sim::ExperimentSpec{}, "mp"}),
             &outcomes);
  for (const auto& oc : outcomes) {
    EXPECT_EQ(oc.status, "failed");
    EXPECT_EQ(oc.attempts, 2);
    EXPECT_EQ(oc.error, "always");
  }
}

TEST(FaultTolerance, WatchdogCancelsOverrunningJobs) {
  Options options;
  options.jobs = 2;
  options.job_timeout_s = 0.15;
  options.run_fn = [](const sim::ExperimentSpec& spec, const std::string&) {
    if (spec.config.seed == derive_seed(1, 0)) {
      // Simulate a hung simulation that honors the cooperative cancel
      // flag, exactly as NetworkSim::at_safe_boundary does.
      while (!spec.config.cancel->load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      throw sim::SimCancelled();
    }
    return stub_result(1e-3);
  };
  ExperimentRunner runner(options);
  std::vector<JobOutcome> outcomes;
  const auto results = runner.run(
      std::vector<Job>(2, Job{sim::ExperimentSpec{}, "mp"}), &outcomes);
  EXPECT_EQ(outcomes[0].status, "failed");
  EXPECT_NE(outcomes[0].error.find("wall-clock"), std::string::npos);
  EXPECT_EQ(outcomes[1].status, "ok");
  EXPECT_EQ(results[1].delivered, 100u);
}

TEST(FaultTolerance, ResultDirSkipsCompletedJobsOnResume) {
  const std::string dir = ::testing::TempDir();
  // Pretend job 0 completed in a previous (interrupted) batch run.
  { std::ofstream marker(dir + "/job0.done"); marker << "seed 0\n"; }
  std::remove((dir + "/job1.done").c_str());

  Options options;
  options.jobs = 2;
  options.result_dir = dir;
  std::atomic<int> calls{0};
  options.run_fn = [&calls](const sim::ExperimentSpec&, const std::string&) {
    ++calls;
    return stub_result(2e-3);
  };
  ExperimentRunner runner(options);
  std::vector<JobOutcome> outcomes;
  runner.run(std::vector<Job>(2, Job{sim::ExperimentSpec{}, "mp"}),
             &outcomes);
  EXPECT_EQ(outcomes[0].status, "cached");
  EXPECT_EQ(outcomes[1].status, "ok");
  EXPECT_EQ(calls.load(), 1);  // only the missing job ran
  // The completed job wrote its own marker: a second resume runs nothing.
  std::vector<JobOutcome> again;
  runner.run(std::vector<Job>(2, Job{sim::ExperimentSpec{}, "mp"}), &again);
  EXPECT_EQ(again[0].status, "cached");
  EXPECT_EQ(again[1].status, "cached");
  EXPECT_EQ(calls.load(), 1);
  std::remove((dir + "/job0.done").c_str());
  std::remove((dir + "/job1.done").c_str());
}

TEST(FaultTolerance, FailedRunsAreExcludedFromAggregatesAndJson) {
  const auto spec = small_spec();
  Options options;
  options.jobs = 2;
  options.base_seed = spec.config.seed;
  const std::uint64_t crashing_seed = derive_seed(spec.config.seed, 1);
  options.run_fn = [crashing_seed](const sim::ExperimentSpec& s,
                                   const std::string& mode) {
    if (s.config.seed == crashing_seed) throw std::runtime_error("boom");
    return sim::run_experiment(s, mode);
  };
  ExperimentRunner runner(options);
  const auto batch = runner.run_replicated(spec, "mp", /*replications=*/3);

  // The two surviving seeds aggregate as if the failed one never existed.
  EXPECT_EQ(batch.avg_delay_s.count(), 2u);
  ASSERT_FALSE(batch.flows.empty());
  for (const auto& f : batch.flows) EXPECT_EQ(f.replications, 2u);

  std::ostringstream out;
  write_results_json(out, batch, "fault-tolerance");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(json.find("\"error\": \"boom\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\": 1"), std::string::npos);
}

}  // namespace
}  // namespace mdr::runner
