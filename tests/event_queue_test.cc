// Event-core tests: ordering across the 4-ary heap and the timer wheel,
// record-pool recycling (including epoch-guarded cancellation), run_until
// clock semantics, and the SimLink accounting regressions fixed alongside
// the typed-event rebuild — busy-period classification at exact completion
// instants and the down-vs-flush control-drop cause split. The busy-period
// and down-cause tests fail on the pre-fix code.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cost/estimators.h"
#include "fault/fault_plan.h"
#include "graph/topology.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/monitor.h"
#include "sim/network_sim.h"
#include "sim/traffic.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace mdr::sim {
namespace {

// ------------------------------------------------------------- ordering

TEST(EventCore, FifoTieBreakAtEqualTimeSpansHeapAndWheel) {
  // Eight events at the same instant, alternating between the heap
  // (schedule_at) and the timer wheel (schedule_timer_at). The wheel
  // cascades into the heap before the due time, so the merged execution
  // order must be exactly schedule order — the (time, seq) contract.
  EventQueue events;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    if (i % 2 == 0) {
      events.schedule_at(1.0, [&order, i] { order.push_back(i); });
    } else {
      events.schedule_timer_at(1.0, [&order, i] { order.push_back(i); });
    }
  }
  events.run_until(1.0);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  EXPECT_DOUBLE_EQ(events.now(), 1.0);
  EXPECT_TRUE(events.empty());
}

TEST(EventCore, WheelTimersFireInTimeOrderAcrossRevolutions) {
  // The wheel covers 16 s per revolution; timers beyond that survive one
  // cascade scan per revolution and must still fire in global time order,
  // interleaved correctly with heap events.
  EventQueue events;
  std::vector<double> fired;
  const auto record = [&events, &fired] { fired.push_back(events.now()); };
  events.schedule_timer_at(33.5, record);  // third revolution
  events.schedule_timer_at(0.05, record);
  events.schedule_at(20.0, record);        // heap event between revolutions
  events.schedule_timer_at(17.0, record);  // second revolution
  events.schedule_timer_at(2.0, record);
  while (events.run_next()) {
  }
  const std::vector<double> expect{0.05, 2.0, 17.0, 20.0, 33.5};
  ASSERT_EQ(fired.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_DOUBLE_EQ(fired[i], expect[i]) << "event " << i;
  }
  EXPECT_DOUBLE_EQ(events.now(), 33.5);
}

TEST(EventCore, RunUntilIsInclusiveAndAdvancesTheClock) {
  EventQueue events;
  int fired = 0;
  events.schedule_at(1.0, [&fired] { ++fired; });
  events.schedule_timer_at(3.0, [&fired] { ++fired; });

  events.run_until(2.0);  // past the first, short of the second
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(events.now(), 2.0);  // clock reaches the bound, not 1.0
  EXPECT_EQ(events.pending(), 1u);

  events.run_until(3.0);  // bound == event time: inclusive
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(events.now(), 3.0);

  events.run_until(10.0);  // empty queue: clock still advances
  EXPECT_DOUBLE_EQ(events.now(), 10.0);
  EXPECT_TRUE(events.empty());
}

TEST(EventCore, TimerBehindTheCascadeFrontFiresOnTime) {
  // After a cascade has swept past a bucket, a new timer landing in an
  // already-swept bucket must go straight to the heap (the wheel would
  // never visit it again this revolution) and still fire at its due time.
  EventQueue events;
  std::vector<double> fired;
  const auto record = [&events, &fired] { fired.push_back(events.now()); };
  events.schedule_timer_at(20.0, record);
  events.schedule_timer_at(40.0, record);
  events.run_until(25.0);  // sweeps the cascade front past t = 25
  ASSERT_EQ(fired.size(), 1u);

  events.schedule_timer_at(25.03125, record);  // behind the cascade front
  EXPECT_EQ(events.heap_pending(), 1u);        // routed to the heap...
  EXPECT_EQ(events.wheel_pending(), 1u);       // ...not parked on the wheel
  events.run_until(41.0);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(fired[1], 25.03125);
  EXPECT_DOUBLE_EQ(fired[2], 40.0);
}

// ----------------------------------------------------------- record pool

TEST(EventCore, PoolStaysFlatAcrossASelfReschedulingChain) {
  // A record is released before its handler runs, so a handler that
  // reschedules reuses the record it just vacated: one chain, one record.
  EventQueue events;
  int remaining = 1000;
  std::function<void()> tick = [&] {
    if (--remaining > 0) events.schedule_in(0.001, tick);
  };
  events.schedule_at(0.0, tick);
  while (events.run_next()) {
  }
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(events.pool_records(), 1u);
}

TEST(EventCore, PoolStaysFlatAcrossTheTypedPacketPath) {
  // Steady state: one packet in the pipeline at a time, many times over.
  // The typed transmit-complete / delivery records must recycle through
  // the free list — the pool high-water mark stops growing after the
  // first packet has exercised every record the pipeline needs.
  EventQueue events;
  std::uint64_t delivered = 0;
  SimLink link(events, graph::LinkAttr{1e6, 1e-3},
               cost::EstimatorKind::kObservable, 8e3,
               [&delivered](Packet) { ++delivered; });
  const auto send_one = [&] {
    Packet p;
    p.size_bits = 8e3;
    ASSERT_TRUE(link.enqueue(std::move(p)));
    events.run_until(events.now() + 1.0);  // drain: service + propagation
  };
  send_one();
  const std::size_t high_water = events.pool_records();
  for (int i = 0; i < 200; ++i) send_one();
  EXPECT_EQ(delivered, 201u);
  EXPECT_EQ(events.pool_records(), high_water)
      << "typed packet events are not being recycled";
}

TEST(EventCore, EpochGuardedCancelDispatchesAsNoOpAndRecyclesRecords) {
  // Failing a link bumps its epoch; pending transmit-complete and delivery
  // events carry the old epoch and must dispatch as no-ops — and their
  // records must return to the free list, not leak, across many cycles.
  EventQueue events;
  std::uint64_t delivered = 0;
  SimLink link(events, graph::LinkAttr{1e6, 1e-3},
               cost::EstimatorKind::kObservable, 8e3,
               [&delivered](Packet) { ++delivered; });
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.kind = Packet::Kind::kControl;
    p.size_bits = 8e3;
    ASSERT_TRUE(link.enqueue(std::move(p)));  // now in service
    link.set_up(false);                       // flush + epoch bump
    events.run_until(events.now() + 1.0);     // stale completion dispatches
    link.set_up(true);
  }
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(link.control_dropped_flush(), 50u);
  EXPECT_TRUE(events.empty());
  // One in-service record per cycle, recycled: the pool never grows past
  // what a single cycle needs.
  EXPECT_LE(events.pool_records(), 2u);
}

// ------------------------------------------- SimLink busy-period regression

// Capacity and size chosen so service time is exactly (800 + 160) / 960 =
// 1.0 s in double arithmetic: arrivals can be placed exactly at the
// completion instant of the previous transmission.
SimLink make_exact_service_link(EventQueue& events, std::uint64_t& delivered) {
  return SimLink(events, graph::LinkAttr{960.0, 1e-3},
                 cost::EstimatorKind::kObservable, 800.0,
                 [&delivered](Packet) { ++delivered; });
}

Packet data_packet() {
  Packet p;
  p.size_bits = 800.0;
  return p;
}

TEST(LinkAccounting, ArrivalAtExactCompletionInstantContinuesTheBusyPeriod) {
  // Packet B arrives at t = 1.0, the exact instant packet A's transmission
  // completes — but B's enqueue event was scheduled before A's completion
  // event, so B finds the transmitter still busy. That is one busy period.
  // The pre-fix code re-derived the flag at departure from float
  // arithmetic with an epsilon and misclassified B as starting a second.
  EventQueue events;
  std::uint64_t delivered = 0;
  SimLink link = make_exact_service_link(events, delivered);
  events.schedule_at(0.0, [&link] { link.enqueue(data_packet()); });
  events.schedule_at(1.0, [&link] { link.enqueue(data_packet()); });
  events.run_until(10.0);
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(link.busy_periods(), 1u);
}

TEST(LinkAccounting, SameInstantBackToBackArrivalsAreOneBusyPeriod) {
  EventQueue events;
  std::uint64_t delivered = 0;
  SimLink link = make_exact_service_link(events, delivered);
  events.schedule_at(0.0, [&link] { link.enqueue(data_packet()); });
  events.schedule_at(0.0, [&link] { link.enqueue(data_packet()); });
  events.run_until(10.0);
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(link.busy_periods(), 1u);
}

TEST(LinkAccounting, ArrivalAfterAnIdleGapStartsANewBusyPeriod) {
  EventQueue events;
  std::uint64_t delivered = 0;
  SimLink link = make_exact_service_link(events, delivered);
  events.schedule_at(0.0, [&link] { link.enqueue(data_packet()); });
  events.schedule_at(2.5, [&link] { link.enqueue(data_packet()); });
  events.run_until(10.0);
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(link.busy_periods(), 2u);
}

// --------------------------------------------- SimLink down-vs-flush causes

TEST(LinkAccounting, ControlRefusedByADownLinkCountsAsDownNotFlush) {
  // Offering a control packet to a link that is already down is cause 3
  // (down), not cause 2 (flush): nothing was accepted, nothing flushed.
  // Pre-fix, this drop masqueraded as a flush.
  EventQueue events;
  std::uint64_t delivered = 0;
  SimLink link(events, graph::LinkAttr{1e6, 1e-3},
               cost::EstimatorKind::kObservable, 8e3,
               [&delivered](Packet) { ++delivered; });
  link.set_up(false);

  Packet control;
  control.kind = Packet::Kind::kControl;
  control.size_bits = 400.0;
  EXPECT_FALSE(link.enqueue(std::move(control)));
  EXPECT_EQ(link.control_dropped_down(), 1u);
  EXPECT_EQ(link.control_dropped_flush(), 0u);
  EXPECT_EQ(link.control_dropped(), 1u);
  EXPECT_EQ(link.drops(), 1u);

  // Data refused by a down link stays out of the control breakdown.
  EXPECT_FALSE(link.enqueue(data_packet()));
  EXPECT_EQ(link.data_dropped(), 1u);
  EXPECT_EQ(link.control_dropped_down(), 1u);
  EXPECT_EQ(delivered, 0u);
}

TEST(LinkAccounting, FailureFlushingAnAcceptedPacketStaysCauseFlush) {
  EventQueue events;
  std::uint64_t delivered = 0;
  SimLink link(events, graph::LinkAttr{1e6, 1e-3},
               cost::EstimatorKind::kObservable, 8e3,
               [&delivered](Packet) { ++delivered; });
  Packet control;
  control.kind = Packet::Kind::kControl;
  control.size_bits = 400.0;
  ASSERT_TRUE(link.enqueue(std::move(control)));  // accepted, in service
  link.set_up(false);                             // failure flushes it
  EXPECT_EQ(link.control_dropped_flush(), 1u);
  EXPECT_EQ(link.control_dropped_down(), 0u);
  EXPECT_EQ(link.control_dropped(), 1u);
}

// ------------------------------------------------ sources drain at teardown

TEST(Sources, NeverScheduleAnEventAtOrPastTheirStopTime) {
  // Every arrival process must leave the queue free of source events once
  // the clock passes its stop time — teardown drains to protocol-only
  // events. (On/off sources used to park a next-burst event at stop + off,
  // which the run loop then had to outwait.)
  EventQueue events;
  const FlowShape shape{0, 1, 0, 64e3, 8e3};
  std::uint64_t injected = 0;
  const InjectFn count = [&injected](Packet) { ++injected; };

  PoissonSource poisson(events, shape, Rng(41), count);
  ParetoOnOffSource pareto(events, shape, ParetoOnOffSource::Shape{},
                           Rng(42), count);
  OnOffSource onoff(events, shape, OnOffSource::Burstiness{}, Rng(43), count);
  poisson.run(0.0, 20.0);
  pareto.run(0.0, 20.0);
  onoff.run(0.0, 20.0);

  events.run_until(20.0);
  EXPECT_EQ(events.pending_source_events(), 0u)
      << "a source scheduled an event at or past its stop time";
  EXPECT_TRUE(events.empty());
  EXPECT_GT(poisson.emitted(), 0u);
  EXPECT_GT(pareto.emitted(), 0u);
  EXPECT_GT(onoff.emitted(), 0u);
  EXPECT_EQ(injected,
            poisson.emitted() + pareto.emitted() + onoff.emitted());
}

// ------------------------------------------------------------- determinism

TEST(EventCore, CairnChaosDigestIsBitIdenticalAcrossSameSeedReruns) {
  // The acceptance property for the event-core rebuild: a CAIRN chaos run
  // (crashes, flaps, bursty loss — heavy epoch-guard and wheel traffic)
  // serializes bit-identically when rerun with the same seed. Monitor
  // reports print doubles with %.17g, so string equality is bit equality.
  const auto topo = topo::make_cairn();
  const auto flows = topo::cairn_flows(0.5);
  fault::RandomPlanOptions opts;
  opts.window_end = 20.0;
  SimConfig config;
  config.use_hello = true;
  config.traffic_start = 6.0;
  config.warmup = 4.0;
  config.duration = 30.0;
  config.monitor_interval = 0.5;
  config.seed = 5;
  config.faults = fault::make_random_plan(topo, opts, /*seed=*/17);

  const auto first = run_simulation(topo, flows, config);
  const auto rerun = run_simulation(topo, flows, config);
  ASSERT_TRUE(first.monitor.has_value());
  ASSERT_TRUE(rerun.monitor.has_value());
  EXPECT_EQ(monitor_report_json(*first.monitor),
            monitor_report_json(*rerun.monitor));
  EXPECT_EQ(first.delivered, rerun.delivered);
  EXPECT_EQ(first.control_messages, rerun.control_messages);
  EXPECT_EQ(std::memcmp(&first.avg_delay_s, &rerun.avg_delay_s,
                        sizeof(double)),
            0);
}

}  // namespace
}  // namespace mdr::sim
