// Tests for core/inspect: routing-table dumps and the Graphviz export,
// plus a decode-random-bytes fuzz for the wire codecs (a router must never
// crash on garbage input) and a larger-network stress run.
#include <gtest/gtest.h>

#include <iomanip>
#include <memory>
#include <sstream>

#include "core/inspect.h"
#include "harness.h"
#include "proto/hello.h"
#include "proto/lsu.h"
#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace mdr {
namespace {

using graph::NodeId;

test::ProtocolHarness<core::MpRouter>::Factory router_factory() {
  return [](NodeId self, std::size_t n, proto::LsuSink& sink) {
    return std::make_unique<core::MpRouter>(self, n, sink,
                                            core::MpRouterOptions{});
  };
}

TEST(Inspect, DumpContainsDistancesAndSuccessors) {
  const auto topo = topo::make_net1();
  test::ProtocolHarness<core::MpRouter> h(
      topo, std::vector<graph::Cost>(topo.num_links(), 1.0), router_factory());
  Rng rng(1);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);

  std::ostringstream out;
  core::dump_router_state(out, h.node(0), topo);
  const std::string text = out.str();
  EXPECT_NE(text.find("router 0"), std::string::npos);
  EXPECT_NE(text.find("PASSIVE"), std::string::npos);
  EXPECT_NE(text.find("FD"), std::string::npos);
  // Every other node appears as a destination row.
  for (NodeId j = 1; j < 10; ++j) {
    EXPECT_NE(text.find("\n  " + std::string(topo.name(j))),
              std::string::npos)
        << "dest " << j;
  }
  EXPECT_EQ(text.find("(no route)"), std::string::npos);
}

TEST(Inspect, DotOutputIsWellFormedAndAcyclicEdges) {
  const auto topo = topo::make_net1();
  test::ProtocolHarness<core::MpRouter> h(
      topo, std::vector<graph::Cost>(topo.num_links(), 1.0), router_factory());
  Rng rng(2);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);

  std::vector<const core::MpRouter*> routers;
  for (NodeId i = 0; i < 10; ++i) routers.push_back(&h.node(i));

  std::ostringstream out;
  core::successor_graph_dot(out, topo, routers, 8);
  const std::string dot = out.str();
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // the destination
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
  // Node 8 must not have outgoing successor edges toward itself.
  EXPECT_EQ(dot.find("\"8\" ->"), std::string::npos);
}

TEST(Inspect, DotNamesEveryNodeAndLabelsPhiOnMultiSuccessorEdges) {
  // Unequal parallel-path costs on NET1 give several routers genuine
  // multi-successor sets, so the DOT export must carry a phi label per edge.
  const auto topo = topo::make_net1();
  std::vector<graph::Cost> costs(topo.num_links());
  for (std::size_t l = 0; l < costs.size(); ++l) {
    costs[l] = 1.0 + 0.1 * static_cast<double>(l % 7);
  }
  test::ProtocolHarness<core::MpRouter> h(topo, costs, router_factory());
  Rng rng(7);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);

  std::vector<const core::MpRouter*> routers;
  for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
    routers.push_back(&h.node(i));
  }

  std::ostringstream out;
  core::successor_graph_dot(out, topo, routers, 3);
  const std::string dot = out.str();

  // Every node gets a declaration line with its name and FD annotation.
  for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
    const std::string decl = "\"" + std::string(topo.name(i)) + "\" [label=";
    EXPECT_NE(dot.find(decl), std::string::npos) << "node " << i;
  }

  // Each forwarding edge appears with its phi as the label — including every
  // edge of at least one multi-successor set (phi split across successors).
  bool saw_multi = false;
  for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
    if (i == 3) continue;
    const auto entry = routers[i]->forwarding(3);
    if (entry.size() > 1) saw_multi = true;
    for (const auto& choice : entry) {
      std::ostringstream edge;
      edge << "\"" << topo.name(i) << "\" -> \"" << topo.name(choice.neighbor)
           << "\" [label=\"" << std::fixed << std::setprecision(2)
           << choice.weight << "\"]";
      EXPECT_NE(dot.find(edge.str()), std::string::npos)
          << "edge from " << i << " to " << choice.neighbor;
    }
  }
  EXPECT_TRUE(saw_multi) << "test setup should produce a multi-successor set";
}

TEST(Inspect, DumpAndDotAreStableAcrossRuns) {
  // Same topology, same seed, two independent protocol runs: both inspect
  // renderings must be byte-identical (deterministic iteration order and
  // formatting — diffable artifacts).
  const auto topo = topo::make_cairn();
  const auto render = [&](std::uint64_t seed) {
    test::ProtocolHarness<core::MpRouter> h(
        topo, std::vector<graph::Cost>(topo.num_links(), 2.0),
        router_factory());
    Rng rng(seed);
    h.bring_up_all(&rng);
    h.run_to_quiescence(rng);
    std::vector<const core::MpRouter*> routers;
    for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
      routers.push_back(&h.node(i));
    }
    std::ostringstream out;
    for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
      core::dump_router_state(out, h.node(i), topo);
    }
    core::successor_graph_dot(out, topo, routers, 0);
    return out.str();
  };
  const std::string first = render(11);
  const std::string second = render(11);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------- codec fuzz

TEST(CodecFuzz, LsuDecodeNeverCrashesOnRandomBytes) {
  Rng rng(3);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto decoded = proto::decode(bytes);
    if (decoded.has_value()) {
      // Whatever decodes must re-encode to the same bytes (canonical form).
      EXPECT_EQ(proto::encode(*decoded), bytes);
    }
  }
}

TEST(CodecFuzz, HelloDecodeNeverCrashesOnRandomBytes) {
  Rng rng(4);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto decoded = proto::decode_hello(bytes);
    if (decoded.has_value()) {
      EXPECT_EQ(proto::encode_hello(*decoded), bytes);
    }
  }
}

TEST(CodecFuzz, LsuRoundTripRandomMessages) {
  Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    proto::LsuMessage msg;
    msg.sender = rng.uniform_int(0, 1000);
    msg.ack = rng.bernoulli(0.5);
    msg.ack_seq = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
    msg.seq = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
    const int entries = rng.uniform_int(0, 10);
    for (int e = 0; e < entries; ++e) {
      msg.entries.push_back(proto::LsuEntry{
          rng.uniform_int(0, 500), rng.uniform_int(0, 500),
          rng.uniform(0.0, 1e6),
          rng.bernoulli(0.2) ? proto::LsuOp::kDelete
                             : proto::LsuOp::kAddOrChange});
    }
    const auto decoded = proto::decode(proto::encode(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, msg);
  }
}

// -------------------------------------------------------------------- scale

TEST(Scale, SixtyFourNodeNetworkConvergesAndRoutes) {
  Rng rng(6);
  const auto topo = topo::make_random(64, 0.06, rng);
  std::vector<topo::FlowSpec> flows;
  for (int f = 0; f < 12; ++f) {
    const NodeId src = rng.uniform_int(0, 63);
    NodeId dst = rng.uniform_int(0, 63);
    if (src == dst) dst = (dst + 1) % 64;
    flows.push_back(topo::FlowSpec{std::string(topo.name(src)),
                                   std::string(topo.name(dst)), 1e6});
  }
  sim::SimConfig config;
  config.traffic_start = 4;
  config.warmup = 4;
  config.duration = 10;
  config.seed = 9;
  const auto result = sim::run_simulation(topo, flows, config);
  for (const auto& f : result.flows) {
    EXPECT_GT(f.delivered, 100u) << f.src << "->" << f.dst;
  }
  EXPECT_EQ(result.dropped_no_route, 0u);
  EXPECT_EQ(result.dropped_ttl, 0u);
}

}  // namespace
}  // namespace mdr
