// Chaos-harness tests: fault models (src/fault), crash/recover hardening,
// and the recovery-invariant monitor (sim/monitor.h).
//
// The headline test is ChaosProperty: CAIRN and NET1 under a randomized
// fault plan (node crashes, flapping links, Gilbert–Elliott bursty loss,
// control corruption) must show zero realized forwarding loops at every
// monitor sweep, a balanced packet-conservation ledger, finite
// time-to-reconvergence for every crashed router, and bit-identical
// incident records across two runs with the same seed.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "fault/fault_plan.h"
#include "fault/gilbert.h"
#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace mdr::fault {
namespace {

// --------------------------------------------------------- GilbertChannel

TEST(Gilbert, DisabledByDefault) {
  GilbertParams params;
  EXPECT_FALSE(params.enabled());
  EXPECT_DOUBLE_EQ(params.stationary_loss(), 0.0);
}

TEST(Gilbert, StationaryLossMatchesChainParameters) {
  // pi_bad = p_gb / (p_gb + p_bg) = 0.1 / 0.5 = 0.2; loss = 0.2 * 0.5.
  GilbertParams params{0.1, 0.4, 0.5, 0.0};
  EXPECT_NEAR(params.stationary_loss(), 0.1, 1e-12);
}

TEST(Gilbert, EmpiricalLossConvergesToStationary) {
  GilbertParams params{0.05, 0.3, 0.4, 0.0};
  GilbertChannel channel(params);
  Rng rng(42);
  const int n = 200000;
  int lost = 0;
  for (int i = 0; i < n; ++i) {
    if (channel.lose(rng)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, params.stationary_loss(), 0.01);
}

TEST(Gilbert, LossesClusterIntoBursts) {
  // With mean burst length 1/p_bad_good = 5 packets, back-to-back losses
  // must be far more common than under i.i.d. loss of the same rate.
  GilbertParams params{0.02, 0.2, 1.0, 0.0};
  GilbertChannel channel(params);
  Rng rng(7);
  const int n = 200000;
  int lost = 0, consecutive = 0;
  bool prev = false;
  for (int i = 0; i < n; ++i) {
    const bool now = channel.lose(rng);
    if (now) ++lost;
    if (now && prev) ++consecutive;
    prev = now;
  }
  const double rate = static_cast<double>(lost) / n;
  const double pair_rate = static_cast<double>(consecutive) / n;
  EXPECT_GT(pair_rate, 3.0 * rate * rate);  // iid would give ~rate^2
}

// ---------------------------------------------------------- make_random_plan

TEST(RandomPlan, HasRequestedShapeAndIsDeterministic) {
  const auto topo = topo::make_cairn();
  RandomPlanOptions opts;
  opts.crashes = 3;
  opts.flapping_links = 2;
  opts.gilbert_links = 2;

  const FaultPlan plan = make_random_plan(topo, opts, 17);
  EXPECT_EQ(plan.crashes.size(), 3u);
  EXPECT_EQ(plan.recoveries.size(), 3u);
  EXPECT_EQ(plan.flaps.size(), 2u);
  EXPECT_EQ(plan.gilbert.size(), 2u);
  EXPECT_TRUE(plan.needs_hello());

  // Distinct routers; each recovery after its crash, inside the windows.
  std::set<std::string> crashed;
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    crashed.insert(plan.crashes[i].node);
    EXPECT_EQ(plan.crashes[i].node, plan.recoveries[i].node);
    EXPECT_GE(plan.crashes[i].at, opts.window_start);
    EXPECT_LE(plan.crashes[i].at, opts.window_end);
    const Duration dwell = plan.recoveries[i].at - plan.crashes[i].at;
    EXPECT_GE(dwell, opts.outage_min);
    EXPECT_LE(dwell, opts.outage_max);
  }
  EXPECT_EQ(crashed.size(), 3u);

  // Same seed, same plan; different seed, different plan.
  const FaultPlan again = make_random_plan(topo, opts, 17);
  ASSERT_EQ(again.crashes.size(), plan.crashes.size());
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    EXPECT_EQ(again.crashes[i].node, plan.crashes[i].node);
    EXPECT_DOUBLE_EQ(again.crashes[i].at, plan.crashes[i].at);
  }
  const FaultPlan other = make_random_plan(topo, opts, 18);
  bool differs = false;
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    if (other.crashes[i].node != plan.crashes[i].node ||
        other.crashes[i].at != plan.crashes[i].at) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace mdr::fault

namespace mdr::sim {
namespace {

// Two disjoint paths n0-n1-n3 / n0-n2-n3: crashing n1 forces a reroute.
graph::Topology square_topo() {
  graph::Topology topo;
  topo.add_nodes(4);
  const graph::LinkAttr attr{10e6, 1e-4};
  topo.add_duplex(0, 1, attr);
  topo.add_duplex(0, 2, attr);
  topo.add_duplex(1, 3, attr);
  topo.add_duplex(2, 3, attr);
  return topo;
}

SimConfig chaos_base_config() {
  SimConfig config;
  config.use_hello = true;
  config.traffic_start = 6.0;
  config.warmup = 4.0;
  config.duration = 40.0;
  config.monitor_interval = 0.5;
  return config;
}

TEST(CrashRecovery, CrashedRouterDropsAndTrafficReroutes) {
  const auto topo = square_topo();
  std::vector<topo::FlowSpec> flows{{"n0", "n3", 2e6}};
  SimConfig config = chaos_base_config();
  config.faults.crashes.push_back({20.0, "n1"});
  config.faults.recoveries.push_back({24.0, "n1"});
  const auto result = run_simulation(topo, flows, config);

  ASSERT_TRUE(result.monitor.has_value());
  const auto& m = *result.monitor;
  ASSERT_EQ(m.incidents.size(), 1u);
  EXPECT_EQ(m.incidents[0].name, "n1");
  EXPECT_DOUBLE_EQ(m.incidents[0].t_crash, 20.0);
  EXPECT_DOUBLE_EQ(m.incidents[0].t_recovered, 24.0);
  EXPECT_GE(m.incidents[0].t_reconverged, 24.0) << "never reconverged";
  EXPECT_EQ(m.forwarding_loops, 0u);
  EXPECT_EQ(m.accounting_leaks, 0u);
  EXPECT_GT(m.checks, 50u);

  // Traffic survived the outage: rerouted through n2.
  EXPECT_GT(result.flows[0].delivered, 4000u);
  double via2 = 0;
  for (const auto& l : result.links) {
    if (l.from == "n0" && l.to == "n2") via2 = l.data_bits;
  }
  EXPECT_GT(via2, 1e6);
}

TEST(CrashRecovery, FastRebootInsideDeadIntervalIsDetected) {
  // The router reboots in 0.5 s — far below the 3.5 s dead interval, so the
  // dead-interval timer alone would never notice. Only the hello generation
  // number tells peers the neighbor lost all state; without the resync its
  // post-reboot sequence numbers (restarting at 1) would be discarded as
  // stale and the router would stay isolated forever.
  const auto topo = square_topo();
  std::vector<topo::FlowSpec> flows{{"n0", "n3", 2e6}, {"n3", "n0", 2e6}};
  SimConfig config = chaos_base_config();
  config.faults.crashes.push_back({20.0, "n1"});
  config.faults.recoveries.push_back({20.5, "n1"});
  const auto result = run_simulation(topo, flows, config);

  ASSERT_TRUE(result.monitor.has_value());
  const auto& m = *result.monitor;
  ASSERT_EQ(m.incidents.size(), 1u);
  EXPECT_GE(m.incidents[0].t_reconverged, 20.5)
      << "rebooted router never re-learned the topology";
  EXPECT_LT(m.incidents[0].time_to_reconverge(), 15.0);
  EXPECT_EQ(m.forwarding_loops, 0u);
  EXPECT_EQ(m.accounting_leaks, 0u);
}

TEST(CrashRecovery, RouterDownAtEndOfRunIsReportedUnrecovered) {
  const auto topo = square_topo();
  std::vector<topo::FlowSpec> flows{{"n0", "n3", 2e6}};
  SimConfig config = chaos_base_config();
  config.faults.crashes.push_back({20.0, "n1"});  // never recovers
  const auto result = run_simulation(topo, flows, config);

  ASSERT_TRUE(result.monitor.has_value());
  const auto& m = *result.monitor;
  ASSERT_EQ(m.incidents.size(), 1u);
  EXPECT_LT(m.incidents[0].t_recovered, 0);
  EXPECT_LT(m.incidents[0].t_reconverged, 0);
  EXPECT_EQ(m.forwarding_loops, 0u);
  EXPECT_EQ(m.accounting_leaks, 0u);
  // The network around the dead router keeps working.
  EXPECT_GT(result.flows[0].delivered, 4000u);
}

// The acceptance property: randomized chaos on the paper topologies.
// At least 3 node crashes, 2 flapping links, Gilbert–Elliott loss and 1%
// control corruption; the run must show zero realized forwarding loops at
// every check, a balanced ledger, finite reconvergence for every crashed
// router, and bit-identical incident records across same-seed runs.
class ChaosProperty : public ::testing::TestWithParam<const char*> {
 protected:
  static graph::Topology topology() {
    return std::string(GetParam()) == "cairn" ? topo::make_cairn()
                                              : topo::make_net1();
  }
  static std::vector<topo::FlowSpec> flows() {
    return std::string(GetParam()) == "cairn" ? topo::cairn_flows(0.5)
                                              : topo::net1_flows(0.5);
  }
};

TEST_P(ChaosProperty, InvariantsHoldUnderRandomizedChaos) {
  const auto topo = topology();
  fault::RandomPlanOptions opts;  // 3 crashes, 2 flaps, 2 gilbert links
  SimConfig config = chaos_base_config();
  config.seed = 99;
  config.faults = fault::make_random_plan(topo, opts, /*seed=*/99);
  config.faults.chaos.corrupt_rate = 0.01;
  ASSERT_GE(config.faults.crashes.size(), 3u);
  ASSERT_GE(config.faults.flaps.size(), 2u);
  ASSERT_GE(config.faults.gilbert.size(), 1u);

  const auto result = run_simulation(topo, flows(), config);
  ASSERT_TRUE(result.monitor.has_value());
  const auto& m = *result.monitor;

  EXPECT_EQ(m.forwarding_loops, 0u) << "realized forwarding loop under chaos";
  EXPECT_EQ(m.accounting_leaks, 0u) << "packet-conservation ledger leaked";
  EXPECT_GT(m.checks, 50u);
  ASSERT_EQ(m.incidents.size(), config.faults.crashes.size());
  for (const auto& inc : m.incidents) {
    EXPECT_GE(inc.t_recovered, 0) << inc.name << " never recovered";
    EXPECT_GE(inc.t_reconverged, 0) << inc.name << " never reconverged";
    EXPECT_GE(inc.time_to_reconverge(), 0);
  }
  // Corruption was actually exercised and rejected by the codecs.
  EXPECT_GT(result.control_garbage, 0u);

  // Determinism: a second identical run serializes bit-identically.
  const auto rerun = run_simulation(topology(), flows(), config);
  ASSERT_TRUE(rerun.monitor.has_value());
  EXPECT_EQ(monitor_report_json(*rerun.monitor), monitor_report_json(m));
  EXPECT_EQ(rerun.delivered, result.delivered);
  EXPECT_EQ(rerun.control_garbage, result.control_garbage);
}

INSTANTIATE_TEST_SUITE_P(PaperTopologies, ChaosProperty,
                         ::testing::Values("cairn", "net1"));

// Update-storm resilience: several links flap every 4 seconds for a full
// minute while the rest of the network keeps routing. The hardened
// configuration (LSU pacing + link-flap damping) must shed the resulting
// control storm — at least 5x fewer LSU originations than the undamped run
// over the SAME flap schedule and seed — while keeping every safety
// invariant (no realized loops, a balanced packet ledger) and going
// anomaly-free once the storm ends. Reports must stay bit-identical across
// same-seed runs.
class StormProperty : public ::testing::TestWithParam<const char*> {
 protected:
  static graph::Topology topology() {
    return std::string(GetParam()) == "cairn" ? topo::make_cairn()
                                              : topo::make_net1();
  }
  static std::vector<topo::FlowSpec> flows() {
    return std::string(GetParam()) == "cairn" ? topo::cairn_flows(0.3)
                                              : topo::net1_flows(0.3);
  }

  static constexpr Time kStormStart = 10.0;
  static constexpr Time kStormEnd = 74.0;

  // Both configs share the flap schedule and the seed; only the resilience
  // knobs differ.
  static SimConfig storm_config(const graph::Topology& topo, bool hardened) {
    fault::RandomPlanOptions opts;
    opts.crashes = 0;
    opts.gilbert_links = 0;
    // CAIRN is more than twice NET1's size: flap more of it so the storm,
    // not the steady state, dominates the undamped flood count.
    opts.flapping_links = topo.num_nodes() > 12 ? 6 : 3;
    // Down 2 s per cycle: past the 1.75 s dead interval below, so every
    // cycle tears the adjacency down and re-establishes it.
    opts.flap_shape = fault::LinkFlap{"", "", 4.0, 0.5, kStormStart, kStormEnd};

    SimConfig config = chaos_base_config();
    config.duration = 80.0;  // run ends at t=90: room to reconverge
    config.seed = 7;
    config.tl = 2.0;
    // Fast hello, so every 4 s flap cycle is detected and floods.
    config.hello.interval = 0.5;
    config.hello.dead_interval = 1.75;
    // A quiet cost plane isolates the adjacency churn under test: long-term
    // costs must double before they are re-advertised, so virtually every
    // origination in either run traces back to the flap schedule.
    config.smoothing.report_threshold = 1.0;
    config.faults = fault::make_random_plan(topo, opts, /*seed=*/7);
    if (hardened) {
      config.pacing.enabled = true;
      config.pacing.min_interval = 20.0;
      config.pacing.max_interval = 80.0;
      config.damping.enabled = true;
      config.damping.penalty = 1000.0;
      config.damping.suppress_threshold = 2000.0;
      config.damping.reuse_threshold = 750.0;
      // Slow decay: the penalty climbs across the storm's 4 s cycles (each
      // detected down re-feeds it) and cannot dip below reuse mid-storm, so
      // suppression holds instead of cycling release -> resync -> suppress.
      config.damping.half_life = 24.0;
    }
    return config;
  }
};

TEST_P(StormProperty, DampingShedsTheStormAndReconverges) {
  const auto topo = topology();
  const auto damped = run_simulation(topo, flows(), storm_config(topo, true));
  const auto undamped =
      run_simulation(topo, flows(), storm_config(topo, false));

  // Safety holds in both configurations, storm or not.
  for (const auto* r : {&damped, &undamped}) {
    ASSERT_TRUE(r->monitor.has_value());
    EXPECT_EQ(r->monitor->forwarding_loops, 0u);
    EXPECT_EQ(r->monitor->accounting_leaks, 0u);
    EXPECT_GT(r->monitor->checks, 100u);
  }

  // The hardening actually engaged: adjacencies were damped and floods
  // were coalesced.
  EXPECT_GT(damped.damped_withdrawals, 0u);
  EXPECT_GT(damped.lsus_suppressed, 0u);
  EXPECT_EQ(undamped.damped_withdrawals, 0u);
  EXPECT_EQ(undamped.lsus_suppressed, 0u);

  // The headline number: storm-safe degradation floods >= 5x fewer LSUs
  // through the identical flap schedule.
  EXPECT_GE(undamped.lsus_originated, 5 * damped.lsus_originated)
      << "undamped " << undamped.lsus_originated << " vs damped "
      << damped.lsus_originated;

  // Finite time-to-reconvergence: shortly after the storm ends the network
  // is anomaly-free — no loop or blackhole in any later monitor sweep (the
  // run continues to t = 90, so >= 14 s of clean sweeps are observed).
  for (const auto* r : {&damped, &undamped}) {
    EXPECT_LE(r->monitor->t_last_anomaly, kStormEnd + 5.0)
        << "anomalies persisted after the storm died down";
  }

  // Determinism: the same seed serializes bit-identically.
  const auto rerun = run_simulation(topo, flows(), storm_config(topo, true));
  ASSERT_TRUE(rerun.monitor.has_value());
  EXPECT_EQ(monitor_report_json(*rerun.monitor),
            monitor_report_json(*damped.monitor));
  EXPECT_EQ(rerun.delivered, damped.delivered);
  EXPECT_EQ(rerun.lsus_originated, damped.lsus_originated);
  EXPECT_EQ(rerun.lsus_suppressed, damped.lsus_suppressed);
}

INSTANTIATE_TEST_SUITE_P(PaperTopologies, StormProperty,
                         ::testing::Values("cairn", "net1"));

// A regression for the convergence behaviour the retransmission machinery
// exists for: lossy control plane, MPDA must still converge (DESIGN.md §4).
TEST(LossyControl, CairnConvergesUnderControlLoss) {
  const auto topo = topo::make_cairn();
  const auto flows = topo::cairn_flows(0.5);
  SimConfig config;
  config.link_loss_rate = 0.05;
  config.traffic_start = 6.0;
  config.warmup = 4.0;
  config.duration = 30.0;
  config.lfi_check_interval = 0.1;
  const auto result = run_simulation(topo, flows, config);
  EXPECT_EQ(result.lfi_violations, 0u);
  EXPECT_EQ(result.dropped_no_route, 0u);
  for (const auto& f : result.flows) {
    EXPECT_GT(f.delivered, 100u) << f.src << "->" << f.dst;
  }
}

}  // namespace
}  // namespace mdr::sim
