// Tests for the workload-stress subsystem (docs/WORKLOADS.md): the
// stochastic models feeding it (Gilbert–Elliott loss, Pareto tails, the
// (w, eps)-bounded adversarial injector), the StabilityMonitor's verdict
// logic on synthetic feeds, the load-sweep driver's bracketing, and the
// determinism contracts (same-seed bit-identity, shard-count byte-identity)
// that make measured stability margins comparable across machines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "fault/gilbert.h"
#include "runner/experiment_runner.h"
#include "runner/load_sweep.h"
#include "sim/event_queue.h"
#include "sim/experiment.h"
#include "sim/monitor.h"
#include "sim/scenario.h"
#include "sim/traffic.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace mdr {
namespace {

// ------------------------------------------------------------ loss models

// The empirical loss rate of a long seeded chain must match the analytic
// stationary rate: the sweep's duty-cycled lossy links lean on this model,
// so a drift here silently rescales every measured margin.
TEST(GilbertElliott, EmpiricalLossMatchesStationary) {
  const fault::GilbertParams cases[] = {
      {0.05, 0.3, 0.25, 0.0},   // the shipped dutycycle.scn chain
      {0.02, 0.5, 0.4, 0.05},   // nonzero GOOD-state loss
  };
  for (const auto& params : cases) {
    fault::GilbertChannel channel(params);
    Rng rng(1234);
    const int n = 200000;
    int lost = 0;
    for (int i = 0; i < n; ++i) {
      if (channel.lose(rng)) ++lost;
    }
    const double empirical = static_cast<double>(lost) / n;
    EXPECT_NEAR(empirical, params.stationary_loss(), 0.01)
        << "p_gb=" << params.p_good_bad;
  }
}

TEST(GilbertElliott, LossesClusterIntoBursts) {
  // Mean burst length (consecutive BAD packets) is 1 / p_bad_good; with
  // i.i.d. loss at the same rate, runs of losses would be far shorter.
  const fault::GilbertParams params{0.05, 0.2, 1.0, 0.0};
  fault::GilbertChannel channel(params);
  Rng rng(7);
  int bursts = 0, lost = 0;
  bool in_burst = false;
  for (int i = 0; i < 200000; ++i) {
    if (channel.lose(rng)) {
      ++lost;
      if (!in_burst) ++bursts;
      in_burst = true;
    } else {
      in_burst = false;
    }
  }
  ASSERT_GT(bursts, 0);
  const double mean_burst = static_cast<double>(lost) / bursts;
  EXPECT_NEAR(mean_burst, 1.0 / params.p_bad_good, 0.5);
}

// ------------------------------------------------------------- Pareto tail

// pareto_sample is the exact inverse-CDF transform, so the MLE of alpha
// over a large seeded sample must recover the requested tail exponent, and
// the Hill estimator over the upper order statistics must agree — this is
// the sampler behind the self-similar ON/OFF workloads.
TEST(ParetoTail, ExponentRecoveredByMleAndHill) {
  Rng rng(4242);
  const double scale = 2.0, alpha = 1.5;
  const int n = 60000;
  std::vector<double> xs;
  xs.reserve(n);
  double log_sum = 0;
  for (int i = 0; i < n; ++i) {
    const double x = sim::pareto_sample(rng, scale, alpha);
    ASSERT_GE(x, scale);  // support is [scale, inf)
    xs.push_back(x);
    log_sum += std::log(x / scale);
  }
  const double mle = n / log_sum;
  EXPECT_NEAR(mle, alpha, 0.05);

  // Hill over the top k order statistics (tail-only view).
  std::sort(xs.begin(), xs.end(), std::greater<double>());
  const int k = 2000;
  double hill_sum = 0;
  for (int i = 0; i < k; ++i) hill_sum += std::log(xs[i] / xs[k]);
  const double hill = k / hill_sum;
  EXPECT_NEAR(hill, alpha, 0.15);
}

// ------------------------------------------------- adversarial injector

// The (w, eps)-bounded contract: cumulative bits handed to inject never
// exceed rho * (t - start) + sigma at any emission instant, the sawtooth
// actually fills the whole budget (long-run average ~= rho), and the
// accessors agree with the observed stream.
TEST(AdversarialSource, RespectsBudgetEnvelope) {
  sim::EventQueue events;
  sim::FlowShape shape;
  shape.src = 0;
  shape.dst = 1;
  shape.flow_id = 0;
  shape.rate_bps = 1e6;
  sim::AdversarialSource::Shape adv;  // w=4, eps=0.5, peak=4, sync
  const double rho = shape.rate_bps;
  const double sigma = adv.eps * adv.w_s * rho;
  const Time start = 1.0, stop = 41.0;

  double cum_bits = 0;
  double worst_excess = -1e300;  // max over emissions of cum - envelope
  std::uint64_t count = 0;
  sim::AdversarialSource source(
      events, shape, adv, Rng(99), [&](sim::Packet p) {
        cum_bits += p.size_bits;
        ++count;
        const double envelope = rho * (events.now() - start) + sigma;
        worst_excess = std::max(worst_excess, cum_bits - envelope);
      });
  source.run(start, stop);
  events.run_until(stop + 5);

  ASSERT_GT(count, 100u);
  EXPECT_LE(worst_excess, 1e-6) << "budget envelope violated";
  EXPECT_DOUBLE_EQ(source.sigma_bits(), sigma);
  EXPECT_DOUBLE_EQ(source.emitted_bits(), cum_bits);
  // The sawtooth drains the whole allowance: average within one bucket.
  EXPECT_NEAR(cum_bits, rho * (stop - start), sigma);
}

TEST(AdversarialSource, SameSeedEmitsIdenticalStream) {
  auto stream = [](std::uint64_t seed) {
    sim::EventQueue events;
    sim::FlowShape shape;
    shape.src = 0;
    shape.dst = 1;
    shape.flow_id = 0;
    shape.rate_bps = 2e6;
    std::vector<std::pair<Time, double>> out;
    sim::AdversarialSource source(
        events, shape, sim::AdversarialSource::Shape{}, Rng(seed),
        [&](sim::Packet p) { out.emplace_back(events.now(), p.size_bits); });
    source.run(0.5, 20.5);
    events.run_until(25);
    return out;
  };
  EXPECT_EQ(stream(5), stream(5));
  EXPECT_NE(stream(5), stream(6));
}

// --------------------------------------------------------- StabilityMonitor

sim::StabilityOptions tight_options() {
  sim::StabilityOptions options;
  options.interval = 0.5;
  options.window = 4.0;
  options.persistence = 4;
  return options;
}

// A flat queue with steady deliveries is the definition of stable: no
// conviction and a healthy margin.
TEST(StabilityMonitorTest, FlatQueueStaysStable) {
  sim::StabilityMonitor monitor(tight_options(), 10e6);
  std::uint64_t delivered = 0;
  double delay_sum = 0;
  for (int i = 0; i <= 60; ++i) {
    delivered += 20;
    delay_sum += 20 * 0.01;
    monitor.record(i * 0.5, 5e4, delivered, delay_sum);
  }
  const auto& report = monitor.report();
  EXPECT_FALSE(report.unstable);
  EXPECT_LT(report.t_unstable, 0);
  EXPECT_GE(report.margin, 0.0);
  EXPECT_GT(report.ticks, 0u);
}

// A queue growing far past the capacity-fraction slope threshold for more
// than `persistence` windows must convict, with a negative margin.
TEST(StabilityMonitorTest, RunawayQueueConvicts) {
  sim::StabilityMonitor monitor(tight_options(), 10e6);
  std::uint64_t delivered = 0;
  double delay_sum = 0;
  for (int i = 0; i <= 60; ++i) {
    delivered += 20;
    delay_sum += 20 * 0.01;
    monitor.record(i * 0.5, 1e6 * i, delivered, delay_sum);  // 2 Mbps slope
  }
  const auto& report = monitor.report();
  EXPECT_TRUE(report.unstable);
  EXPECT_GT(report.t_unstable, 0);
  EXPECT_LT(report.margin, 0.0);
  EXPECT_GT(report.max_queue_slope_bps, report.slope_threshold_bps);
}

// A single spike shorter than the persistence requirement is weather, not
// climate: the sliding window sees a breaching slope only while the edge
// passes through it, fewer than `persistence` consecutive times.
TEST(StabilityMonitorTest, TransientSpikeIsNotConvicted) {
  auto options = tight_options();
  options.persistence = 6;
  sim::StabilityMonitor monitor(options, 10e6);
  std::uint64_t delivered = 0;
  double delay_sum = 0;
  for (int i = 0; i <= 60; ++i) {
    delivered += 20;
    delay_sum += 20 * 0.01;
    const double queued = (i == 30 || i == 31) ? 2e6 : 1e4;
    monitor.record(i * 0.5, queued, delivered, delay_sum);
  }
  EXPECT_FALSE(monitor.report().unstable);
}

// Sustained delay runaway convicts even with a flat queue (the second
// signature: deliveries continue but each packet waits delay_factor times
// the baseline).
TEST(StabilityMonitorTest, DelayRunawayConvicts) {
  sim::StabilityMonitor monitor(tight_options(), 10e6);
  std::uint64_t delivered = 0;
  double delay_sum = 0;
  for (int i = 0; i <= 80; ++i) {
    delivered += 20;
    delay_sum += 20 * (i < 20 ? 0.01 : 0.2);  // 20x the baseline after t=10
    monitor.record(i * 0.5, 5e4, delivered, delay_sum);
  }
  const auto& report = monitor.report();
  EXPECT_TRUE(report.unstable);
  EXPECT_GT(report.peak_window_delay_s,
            report.baseline_delay_s * tight_options().delay_factor);
}

TEST(StabilityMonitorTest, ReportJsonIsDeterministic) {
  auto render = [] {
    sim::StabilityMonitor monitor(tight_options(), 10e6);
    std::uint64_t delivered = 0;
    double delay_sum = 0;
    for (int i = 0; i <= 40; ++i) {
      delivered += 17;
      delay_sum += 17 * 0.013;
      monitor.record(i * 0.5, 3e4 + 1e3 * (i % 5), delivered, delay_sum);
    }
    return sim::stability_report_json(monitor.report());
  };
  const std::string a = render();
  EXPECT_EQ(a, render());
  EXPECT_NE(a.find("\"unstable\""), std::string::npos);
  EXPECT_NE(a.find("\"margin\""), std::string::npos);
}

// ----------------------------------------------------------- load sweep

// A 20 Mbps min-cut triangle (two disjoint unit-capacity paths a->c): the
// single flow is stable when scaled low and must blow up once the scaled
// demand exceeds the cut, so a sweep brackets the frontier in between.
sim::ExperimentSpec triangle_spec(double rate_bps) {
  std::ostringstream text;
  text << "node a\nnode b\nnode c\n"
       << "link a b\nlink b c\nlink a c\n"
       << "flow a c rate=" << rate_bps << "\n"
       << "traffic_start 2\nwarmup 4\nduration 26\nseed 5\n"
       << "monitor 0.5\nstability 0.5 window=6 persist=4\n";
  std::istringstream in(text.str());
  std::string error;
  auto scenario = sim::parse_scenario(in, &error);
  EXPECT_TRUE(scenario.has_value()) << error;
  return scenario->spec;
}

TEST(LoadSweep, BracketsTheFrontierMonotonically) {
  runner::SweepOptions options;
  options.lo = 0.5;
  options.hi = 6.0;
  options.steps = 4;
  options.bisect_iters = 3;
  std::ostringstream jsonl;
  const auto sweep =
      runner::run_load_sweep(triangle_spec(6e6), "mp", options, &jsonl);

  ASSERT_EQ(sweep.points.size(),
            static_cast<std::size_t>(options.steps + options.bisect_iters));
  EXPECT_TRUE(sweep.monotone);
  EXPECT_GT(sweep.stable_high, 0.0);
  EXPECT_GT(sweep.unstable_low, sweep.stable_high);
  EXPECT_GE(sweep.critical, sweep.stable_high);
  EXPECT_LE(sweep.critical, sweep.unstable_low);
  // Stable probes must be clean: no loops, no leaks — a scheme that "stays
  // stable" by looping packets is not stable.
  for (const auto& point : sweep.points) {
    if (!point.unstable) {
      EXPECT_EQ(point.forwarding_loops, 0u) << "x" << point.multiplier;
      EXPECT_EQ(point.accounting_leaks, 0u) << "x" << point.multiplier;
      EXPECT_GE(point.margin, 0.0);
    } else {
      EXPECT_LT(point.margin, 0.0);
    }
  }
  // One JSONL line per probe, in execution order.
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"multiplier\""), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, sweep.points.size());
}

TEST(LoadSweep, OptInfeasibleProbesAreUnstableByDefinition) {
  runner::SweepOptions options;
  options.lo = 0.5;
  options.hi = 8.0;
  options.steps = 3;
  options.bisect_iters = 2;
  const auto sweep = runner::run_load_sweep(triangle_spec(6e6), "opt", options);
  bool saw_infeasible = false;
  for (const auto& point : sweep.points) {
    if (point.opt_infeasible) {
      saw_infeasible = true;
      EXPECT_TRUE(point.unstable);
      EXPECT_DOUBLE_EQ(point.margin, -1.0);
      EXPECT_EQ(point.delivered, 0u);  // infeasible probes never simulate
    }
  }
  EXPECT_TRUE(saw_infeasible);
  EXPECT_TRUE(sweep.monotone);
}

TEST(LoadSweep, SameSpecSameVerdicts) {
  runner::SweepOptions options;
  options.lo = 0.8;
  options.hi = 4.0;
  options.steps = 3;
  options.bisect_iters = 1;
  const auto spec = triangle_spec(6e6);
  const auto a = runner::run_load_sweep(spec, "mp", options);
  const auto b = runner::run_load_sweep(spec, "mp", options);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(runner::sweep_point_json(a.points[i]),
              runner::sweep_point_json(b.points[i]));
  }
  EXPECT_DOUBLE_EQ(a.critical, b.critical);
}

// ------------------------------------------------- end-to-end determinism

// CAIRN under the coordinated adversarial workload, short but long enough
// for a verdict: the acceptance-bar experiment in miniature.
sim::ExperimentSpec adversarial_cairn_spec() {
  sim::ExperimentSpec spec;
  spec.topo = topo::make_cairn();
  spec.flows = topo::cairn_flows(0.6);
  spec.config.traffic_start = 3;
  spec.config.warmup = 5;
  spec.config.duration = 20;
  spec.config.seed = 11;
  spec.config.monitor_interval = 0.5;
  spec.config.traffic.model = sim::TrafficModel::kAdversarial;
  spec.config.traffic.adversarial = {4.0, 0.5, 4.0, true};
  spec.config.stability.interval = 0.5;
  spec.config.stability.window = 6;
  return spec;
}

TEST(StabilityEndToEnd, AdversarialCairnStableAtBaseLoad) {
  const auto result = sim::run_experiment(adversarial_cairn_spec(), "mp");
  ASSERT_TRUE(result.stability.has_value());
  EXPECT_FALSE(result.stability->unstable);
  EXPECT_GE(result.stability->margin, 0.0);
  ASSERT_TRUE(result.monitor.has_value());
  EXPECT_EQ(result.monitor->forwarding_loops, 0u);
  EXPECT_EQ(result.monitor->accounting_leaks, 0u);
}

TEST(StabilityEndToEnd, AdversarialCairnBlowsUpWhenOverdriven) {
  auto spec = adversarial_cairn_spec();
  for (auto& flow : spec.flows) flow.rate_bps *= 6.0;
  const auto result = sim::run_experiment(spec, "mp");
  ASSERT_TRUE(result.stability.has_value());
  EXPECT_TRUE(result.stability->unstable);
  EXPECT_LT(result.stability->margin, 0.0);
}

TEST(StabilityEndToEnd, SameSeedRunsAreBitIdentical) {
  const auto spec = adversarial_cairn_spec();
  const auto a = sim::run_experiment(spec, "mp");
  const auto b = sim::run_experiment(spec, "mp");
  ASSERT_TRUE(a.stability.has_value());
  ASSERT_TRUE(b.stability.has_value());
  EXPECT_EQ(sim::stability_report_json(*a.stability),
            sim::stability_report_json(*b.stability));
  EXPECT_EQ(sim::monitor_report_json(*a.monitor),
            sim::monitor_report_json(*b.monitor));
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].delivered, b.flows[i].delivered);
    EXPECT_DOUBLE_EQ(a.flows[i].mean_delay_s, b.flows[i].mean_delay_s);
  }
}

// The sharded engine must render the adversarial experiment byte-for-byte
// identically for any shard count (the acceptance bar for PRs touching the
// traffic or stability plumbing).
TEST(StabilityEndToEnd, ShardCountDoesNotChangeRenderedBatch) {
  auto render = [](int shards) {
    auto spec = adversarial_cairn_spec();
    spec.engine.shards = shards;
    spec.engine.ring_capacity = 8;  // tiny ring: exercises overflow spill
    runner::ExperimentRunner runner(runner::Options{1, 17});
    const auto batch = runner.run_replicated(spec, "mp", 2);
    std::ostringstream out;
    runner::write_results_json(out, batch, "stability-shard-property");
    // The flat "host" object varies between any two runs and
    // "shard_events" depends on the shard count by definition — strip
    // both, like tests/mdrsim_telemetry.cmake does before its byte compare.
    static const std::regex host{R"re(, "host": \{[^}]*\})re"};
    static const std::regex shards_re{R"re(, "shard_events": \[[^\]]*\])re"};
    return std::regex_replace(std::regex_replace(out.str(), host, ""),
                              shards_re, "");
  };
  const std::string baseline = render(1);
  EXPECT_NE(baseline.find("\"stability\""), std::string::npos)
      << "batch JSON lost the stability report";
  for (int shards : {2, 4}) {
    EXPECT_EQ(baseline, render(shards)) << shards << " shards";
  }
}

}  // namespace
}  // namespace mdr
