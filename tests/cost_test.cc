// Unit tests for src/cost: the M/M/1 delay model, the online marginal-delay
// estimators (driven by a purpose-built M/M/1 sample path), and the
// two-timescale smoother.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "cost/delay_model.h"
#include "cost/estimators.h"
#include "cost/smoother.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mdr::cost {
namespace {

TEST(DelayModel, ZeroLoadMatchesSinglePacketLatency) {
  const LinkDelayModel m{10e6, 2e-3, 8000};
  EXPECT_DOUBLE_EQ(m.packet_delay(0), 8000 / 10e6 + 2e-3);
  EXPECT_DOUBLE_EQ(m.marginal_delay(0), 8000 / 10e6 + 2e-3);
  EXPECT_DOUBLE_EQ(m.total_delay_rate(0), 0.0);
}

TEST(DelayModel, PaperEquation24WithUnitPackets) {
  // With L = 1 the expressions reduce to the paper's: D = f/(C-f) + tau*f,
  // D' = C/(C-f)^2 + tau.
  const LinkDelayModel m{100.0, 0.5, 1.0};
  const double f = 40.0;
  EXPECT_NEAR(m.total_delay_rate(f), f / (100 - f) + 0.5 * f, 1e-12);
  EXPECT_NEAR(m.marginal_delay(f), 100.0 / ((100 - f) * (100 - f)) + 0.5,
              1e-12);
}

TEST(DelayModel, MarginalIsDerivativeOfTotal) {
  const LinkDelayModel m{10e6, 1e-3, 8000};
  for (double f : {1e6, 3e6, 7e6, 9e6}) {
    const double h = 1.0;  // 1 bit/s
    const double numeric = (m.total_delay_rate(f + h) - m.total_delay_rate(f - h)) / (2 * h);
    // marginal_delay is d/d(pkt rate) = L * d/d(bit rate)
    EXPECT_NEAR(m.marginal_delay(f), numeric * m.mean_packet_bits,
                1e-6 * m.marginal_delay(f));
  }
}

TEST(DelayModel, DivergesAtCapacity) {
  const LinkDelayModel m{1e6, 0, 1000};
  EXPECT_TRUE(std::isinf(m.packet_delay(1e6)));
  EXPECT_TRUE(std::isinf(m.total_delay_rate(2e6)));
  EXPECT_TRUE(std::isinf(m.marginal_delay(1e6)));
}

TEST(DelayModel, ConvexityOfTotalDelay) {
  const LinkDelayModel m{1e6, 1e-3, 1000};
  double prev_slope = 0;
  for (double f = 0; f <= 0.9e6; f += 1e5) {
    const double slope = m.marginal_delay(f);
    EXPECT_GE(slope, prev_slope);
    prev_slope = slope;
  }
}

TEST(DelayModel, ClampedMarginalIsFiniteAndMonotone) {
  const LinkDelayModel m{1e6, 1e-3, 1000};
  const double at_cap = m.marginal_delay_clamped(1e6);
  EXPECT_TRUE(std::isfinite(at_cap));
  EXPECT_GT(at_cap, m.marginal_delay_clamped(0.5e6));
  EXPECT_DOUBLE_EQ(m.marginal_delay_clamped(2e6), at_cap);  // saturates
}

// ---------------------------------------------------------------------------
// Estimators: drive all three with the same simulated M/M/1 sample path and
// compare to the analytic marginal at the true offered load.

struct Mm1Path {
  std::vector<PacketObservation> observations;
  double horizon = 0;
};

Mm1Path simulate_mm1(double lambda_pps, double mean_service_s, double horizon,
                     std::uint64_t seed) {
  Rng rng(seed);
  Mm1Path path;
  path.horizon = horizon;
  double t = 0;
  double server_free_at = 0;
  while (true) {
    t += rng.exponential(1.0 / lambda_pps);
    if (t > horizon) break;
    PacketObservation obs;
    obs.arrival_time = t;
    obs.service_time = rng.exponential(mean_service_s);
    obs.started_busy_period = t >= server_free_at;
    const double start = std::max(t, server_free_at);
    obs.departure_time = start + obs.service_time;
    server_free_at = obs.departure_time;
    obs.size_bits = obs.service_time;  // capacity 1 bit/s in test units
    path.observations.push_back(obs);
  }
  return path;
}

class EstimatorAccuracy : public ::testing::TestWithParam<EstimatorKind> {};

TEST_P(EstimatorAccuracy, TracksAnalyticMarginalUnderPoissonLoad) {
  // Units: capacity 1 bit/s, mean packet 1 bit => mean service 1 s.
  const double capacity = 1.0, mean_packet = 1.0, prop = 0.25;
  for (double rho : {0.2, 0.5, 0.7}) {
    const double lambda = rho;  // pkt/s
    OnlineStats estimates;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      auto est = make_estimator(GetParam(), capacity, prop, mean_packet);
      const auto path = simulate_mm1(lambda, 1.0, 60000.0, seed);
      for (const auto& obs : path.observations) est->observe(obs);
      estimates.add(est->estimate(0, path.horizon));
    }
    const LinkDelayModel model{capacity, prop, mean_packet};
    const double truth = model.marginal_delay(rho * capacity);
    // Averaged over seeds the estimate must land within 12% of analytic.
    EXPECT_NEAR(estimates.mean(), truth, 0.12 * truth)
        << "rho=" << rho << " estimator=" << static_cast<int>(GetParam());
  }
}

TEST_P(EstimatorAccuracy, IdleWindowReturnsPositiveZeroLoadCost) {
  auto est = make_estimator(GetParam(), 1.0, 0.25, 1.0);
  const double idle = est->estimate(0, 100.0);
  EXPECT_GT(idle, 0.0);
  EXPECT_TRUE(std::isfinite(idle));
  // Roughly one service time plus propagation.
  EXPECT_NEAR(idle, 1.25, 0.5);
}

TEST_P(EstimatorAccuracy, ResetClearsWindowState) {
  auto est = make_estimator(GetParam(), 1.0, 0.25, 1.0);
  const auto path = simulate_mm1(0.7, 1.0, 5000.0, 3);
  for (const auto& obs : path.observations) est->observe(obs);
  (void)est->estimate(0, path.horizon);
  est->reset();
  // After reset an idle window must be near the zero-load cost again.
  const double idle = est->estimate(path.horizon, path.horizon + 100.0);
  EXPECT_LT(idle, 2.5);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EstimatorAccuracy,
                         ::testing::Values(EstimatorKind::kAnalyticMm1,
                                           EstimatorKind::kObservable,
                                           EstimatorKind::kIpa,
                                           EstimatorKind::kUtilization),
                         [](const auto& info) {
                           switch (info.param) {
                             case EstimatorKind::kAnalyticMm1: return "mm1";
                             case EstimatorKind::kObservable: return "observable";
                             case EstimatorKind::kIpa: return "ipa";
                             case EstimatorKind::kUtilization: return "utilization";
                           }
                           return "unknown";
                         });

TEST(Estimators, CapacityFreeKindsNeverUseCapacity) {
  // The capacity passed to the factory only seeds the fallback cost; feeding
  // a wildly wrong capacity must not change estimates once traffic flows.
  const auto path = simulate_mm1(0.5, 1.0, 20000.0, 7);
  for (EstimatorKind kind : {EstimatorKind::kObservable, EstimatorKind::kIpa,
                             EstimatorKind::kUtilization}) {
    auto right = make_estimator(kind, 1.0, 0.25, 1.0);
    auto wrong = make_estimator(kind, 1e9, 0.25, 1.0);  // absurd capacity
    for (const auto& obs : path.observations) {
      right->observe(obs);
      wrong->observe(obs);
    }
    EXPECT_NEAR(right->estimate(0, path.horizon),
                wrong->estimate(0, path.horizon), 1e-9)
        << right->name();
  }
}

TEST(Estimators, NamesAreDistinct) {
  auto a = make_estimator(EstimatorKind::kAnalyticMm1, 1, 0, 1);
  auto b = make_estimator(EstimatorKind::kObservable, 1, 0, 1);
  auto c = make_estimator(EstimatorKind::kIpa, 1, 0, 1);
  EXPECT_NE(a->name(), b->name());
  EXPECT_NE(b->name(), c->name());
}

// ---------------------------------------------------------------------------
// Smoother

TEST(Smoother, ShortWindowEwma) {
  DualTimescaleCost cost(1.0, {.short_alpha = 0.5, .long_alpha = 0.5,
                               .report_threshold = 0.1});
  EXPECT_DOUBLE_EQ(cost.on_short_window(3.0), 2.0);  // 0.5*3 + 0.5*1
  EXPECT_DOUBLE_EQ(cost.short_cost(), 2.0);
  EXPECT_DOUBLE_EQ(cost.long_cost(), 1.0);  // untouched
}

TEST(Smoother, LongWindowReportsOnlyAboveThreshold) {
  DualTimescaleCost cost(1.0, {.short_alpha = 0.5, .long_alpha = 1.0,
                               .report_threshold = 0.2});
  auto small = cost.on_long_window(1.1);  // 10% move: below threshold
  EXPECT_FALSE(small.report);
  EXPECT_DOUBLE_EQ(cost.last_reported(), 1.0);
  auto big = cost.on_long_window(2.0);  // 100% move: report
  EXPECT_TRUE(big.report);
  EXPECT_DOUBLE_EQ(cost.last_reported(), 2.0);
  // A move relative to the *reported* value, not the previous estimate.
  auto after = cost.on_long_window(2.1);
  EXPECT_FALSE(after.report);
}

TEST(Smoother, ChangeExactlyAtThresholdDoesNotReport) {
  // The paper wants updates only for *significant* cost moves; the
  // comparison is strict, so a relative change of exactly report_threshold
  // stays silent. 1.0 -> 1.25 is exact in binary floating point.
  DualTimescaleCost cost(1.0, {.short_alpha = 0.5, .long_alpha = 1.0,
                               .report_threshold = 0.25});
  const auto at = cost.on_long_window(1.25);
  EXPECT_FALSE(at.report);
  EXPECT_DOUBLE_EQ(cost.last_reported(), 1.0);
  // Any headroom past the threshold trips it.
  EXPECT_TRUE(cost.on_long_window(1.2500001).report);
  EXPECT_DOUBLE_EQ(cost.last_reported(), 1.2500001);
}

TEST(Smoother, FirstReportMeasuresAgainstInitialCost) {
  // Sub-threshold drift never rebases the comparison point: the first-ever
  // report fires only once the *cumulative* move from the constructor's
  // initial cost crosses the threshold.
  DualTimescaleCost cost(1.0, {.short_alpha = 0.5, .long_alpha = 1.0,
                               .report_threshold = 0.5});
  EXPECT_FALSE(cost.on_long_window(1.2).report);  // 20% vs initial
  EXPECT_FALSE(cost.on_long_window(1.4).report);  // 40% vs initial
  EXPECT_DOUBLE_EQ(cost.last_reported(), 1.0);    // baseline untouched
  EXPECT_TRUE(cost.on_long_window(1.6).report);   // 60% vs initial: report
  EXPECT_DOUBLE_EQ(cost.last_reported(), 1.6);
}

TEST(Smoother, BaselineResetsAfterEachReport) {
  // After a report the threshold is re-anchored at the reported value, so
  // the same absolute move that just fired may be silent the next time.
  DualTimescaleCost cost(1.0, {.short_alpha = 0.5, .long_alpha = 1.0,
                               .report_threshold = 0.25});
  ASSERT_TRUE(cost.on_long_window(2.0).report);  // 100% vs 1.0
  EXPECT_DOUBLE_EQ(cost.last_reported(), 2.0);
  // +0.3 absolute fired against 1.0 (30%) but is only 15% against 2.0.
  EXPECT_FALSE(cost.on_long_window(2.3).report);
  EXPECT_DOUBLE_EQ(cost.last_reported(), 2.0);
  EXPECT_TRUE(cost.on_long_window(2.6).report);  // 30% vs 2.0
  EXPECT_DOUBLE_EQ(cost.last_reported(), 2.6);
}

TEST(Smoother, ConvergesToStationaryEstimate) {
  DualTimescaleCost cost(5.0);
  for (int i = 0; i < 200; ++i) {
    cost.on_short_window(2.0);
    cost.on_long_window(2.0);
  }
  EXPECT_NEAR(cost.short_cost(), 2.0, 1e-6);
  EXPECT_NEAR(cost.long_cost(), 2.0, 1e-6);
}

}  // namespace
}  // namespace mdr::cost
