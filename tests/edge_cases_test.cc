// Edge-case tests across modules: protocol tables under churn, estimator
// window mechanics, allocation degenerate inputs, event-queue reentrancy,
// and MPDA/MpRouter corner conditions not covered by the main suites.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/allocation.h"
#include "core/mp_router.h"
#include "core/mpda.h"
#include "cost/estimators.h"
#include "cost/smoother.h"
#include "flow/evaluate.h"
#include "gallager/optimizer.h"
#include "harness.h"
#include "proto/pda.h"
#include "sim/event_queue.h"
#include "topo/builders.h"

namespace mdr {
namespace {

using graph::Cost;
using graph::NodeId;

// ------------------------------------------------------------ RouterTables

TEST(RouterTablesEdge, LinkDownForgetsNeighborDistances) {
  proto::RouterTables t(0, 4);
  t.link_up(1, 1.0);
  const proto::LsuEntry entries[] = {{1, 2, 1.0, proto::LsuOp::kAddOrChange}};
  t.apply_lsu(1, entries);
  EXPECT_DOUBLE_EQ(t.distance_via(2, 1), 1.0);
  t.link_down(1);
  EXPECT_EQ(t.distance_via(2, 1), graph::kInfCost);
  // MTU after losing the only neighbor: everything unreachable, empty T.
  t.mtu();
  EXPECT_EQ(t.distance(1), graph::kInfCost);
  EXPECT_EQ(t.distance(2), graph::kInfCost);
  EXPECT_TRUE(t.main_topology().empty());
}

TEST(RouterTablesEdge, ReLinkUpClearsStaleNeighborTopology) {
  proto::RouterTables t(0, 4);
  t.link_up(1, 1.0);
  const proto::LsuEntry entries[] = {{1, 2, 1.0, proto::LsuOp::kAddOrChange}};
  t.apply_lsu(1, entries);
  t.link_down(1);
  t.link_up(1, 2.0);  // fresh adjacency: old T_1 must not resurrect
  EXPECT_EQ(t.distance_via(2, 1), graph::kInfCost);
  EXPECT_DOUBLE_EQ(t.link_cost(1), 2.0);
}

TEST(RouterTablesEdge, MtuRemovesVanishedDestinations) {
  proto::RouterTables t(0, 4);
  t.link_up(1, 1.0);
  const proto::LsuEntry add[] = {{1, 2, 1.0, proto::LsuOp::kAddOrChange}};
  t.apply_lsu(1, add);
  t.mtu();
  EXPECT_DOUBLE_EQ(t.distance(2), 2.0);
  const proto::LsuEntry del[] = {{1, 2, 0, proto::LsuOp::kDelete}};
  t.apply_lsu(1, del);
  const auto changes = t.mtu();
  EXPECT_EQ(t.distance(2), graph::kInfCost);
  // The diff must advertise the deletion.
  bool saw_delete = false;
  for (const auto& e : changes) {
    if (e.op == proto::LsuOp::kDelete && e.head == 1 && e.tail == 2) {
      saw_delete = true;
    }
  }
  EXPECT_TRUE(saw_delete);
}

TEST(RouterTablesEdge, AdjacentLinkInfoOverridesNeighborReports) {
  proto::RouterTables t(0, 3);
  t.link_up(1, 5.0);
  // Neighbor 1 claims our adjacent link (0,1) costs 0.1 — stale nonsense.
  const proto::LsuEntry entries[] = {{0, 1, 0.1, proto::LsuOp::kAddOrChange},
                                     {1, 2, 1.0, proto::LsuOp::kAddOrChange}};
  t.apply_lsu(1, entries);
  t.mtu();
  EXPECT_DOUBLE_EQ(t.distance(1), 5.0);  // our measurement wins
}

// -------------------------------------------------------------- estimators

TEST(EstimatorEdge, ShortWindowAfterIdleReturnsToBaseline) {
  auto est = cost::make_estimator(cost::EstimatorKind::kUtilization, 1e6,
                                  1e-3, 8e3);
  cost::PacketObservation obs;
  obs.arrival_time = 0.1;
  obs.service_time = 8e-3;
  obs.departure_time = 0.108;
  obs.size_bits = 8e3;
  obs.started_busy_period = true;
  for (int i = 0; i < 100; ++i) est->observe(obs);
  const double busy = est->estimate(0, 1.0);
  est->reset();
  const double idle = est->estimate(1.0, 2.0);
  EXPECT_GT(busy, idle);
  EXPECT_NEAR(idle, 8e-3 + 1e-3, 2e-3);  // one service + propagation
}

TEST(EstimatorEdge, UtilizationClampsNearSaturation) {
  auto est = cost::make_estimator(cost::EstimatorKind::kUtilization, 1e6,
                                  0.0, 8e3);
  // Feed a window that is 100% busy: estimate must stay finite.
  cost::PacketObservation obs;
  obs.service_time = 0.01;
  obs.size_bits = 8e3;
  for (int i = 0; i < 200; ++i) {
    obs.arrival_time = i * 0.01;
    obs.departure_time = obs.arrival_time + obs.service_time;
    obs.started_busy_period = i == 0;
    est->observe(obs);
  }
  const double e = est->estimate(0, 2.0);
  EXPECT_TRUE(std::isfinite(e));
  EXPECT_GT(e, 1.0);  // enormous, but comparable
}

TEST(SmootherEdge, ReportTracksReportedNotSmoothedValue) {
  cost::DualTimescaleCost c(1.0, {.short_alpha = 0.5,
                                  .long_alpha = 0.5,
                                  .report_threshold = 0.5});
  // Creep upward in small steps: each smoothed value stays within 50% of
  // the last *reported* value until the cumulative drift crosses it.
  bool reported = false;
  double value = 1.0;
  for (int i = 0; i < 20 && !reported; ++i) {
    value *= 1.2;
    reported = c.on_long_window(value).report;
  }
  EXPECT_TRUE(reported);  // drift accumulates; threshold must eventually fire
}

// -------------------------------------------------------------- allocation

TEST(AllocationEdge, TwoEqualPlusOneWorse) {
  // Ties for best: AH drains the strictly-worse successor toward the first
  // minimal one, never making any share negative.
  std::vector<core::SuccessorMetric> m{{0, 1.0}, {1, 1.0}, {2, 2.0}};
  std::vector<double> phi{0.2, 0.2, 0.6};
  core::adjust_allocation(m, phi, 1.0);
  EXPECT_NEAR(phi[0] + phi[1] + phi[2], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(phi[2], 0.0);
  EXPECT_DOUBLE_EQ(phi[1], 0.2);  // equal-cost peer untouched
  EXPECT_NEAR(phi[0], 0.8, 1e-12);
}

TEST(AllocationEdge, IhWithNearZeroDistance) {
  // A successor with an almost-zero metric still yields a distribution.
  std::vector<core::SuccessorMetric> m{{0, 1e-9}, {1, 1.0}};
  const auto phi = core::initial_allocation(m);
  EXPECT_NEAR(phi[0] + phi[1], 1.0, 1e-12);
  EXPECT_GT(phi[0], phi[1]);
}

// -------------------------------------------------------------- EventQueue

TEST(EventQueueEdge, CallbackSchedulingAtCurrentTimeRunsThisSweep) {
  sim::EventQueue q;
  int order = 0, first = 0, second = 0;
  q.schedule_at(1.0, [&] {
    first = ++order;
    q.schedule_at(1.0, [&] { second = ++order; });
  });
  q.run_until(1.0);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);  // same-time event scheduled from within still runs
}

TEST(EventQueueEdge, PendingAndProcessedCounters) {
  sim::EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(i, [] {});
  EXPECT_EQ(q.pending(), 5u);
  q.run_until(2.5);
  EXPECT_EQ(q.processed(), 3u);
  EXPECT_EQ(q.pending(), 2u);
}

// ------------------------------------------------------------ MPDA corners

TEST(MpdaEdge, DistanceToSelfIsZeroAndStable) {
  const auto topo = topo::make_ring(4);
  test::ProtocolHarness<core::MpdaProcess> h(
      topo, std::vector<Cost>(topo.num_links(), 1.0),
      [](NodeId s, std::size_t n, proto::LsuSink& sink) {
        return std::make_unique<core::MpdaProcess>(s, n, sink);
      });
  Rng rng(2);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(h.node(i).distance(i), 0.0);
    EXPECT_DOUBLE_EQ(h.node(i).feasible_distance(i), 0.0);
    EXPECT_TRUE(h.node(i).successors(i).empty());
  }
}

TEST(MpdaEdge, CostIncreaseRaisesFeasibleDistanceEventually) {
  // FD may lag D during transients but must equal it at quiescence even
  // after an *increase* (the delicate direction for Eq. 16).
  const auto topo = topo::make_ring(4);
  std::vector<Cost> costs(topo.num_links(), 1.0);
  test::ProtocolHarness<core::MpdaProcess> h(
      topo, costs, [](NodeId s, std::size_t n, proto::LsuSink& sink) {
        return std::make_unique<core::MpdaProcess>(s, n, sink);
      });
  Rng rng(3);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  const Cost before = h.node(0).feasible_distance(2);
  // Raise both links out of node 0.
  h.change_cost(0, 1, 5.0);
  h.change_cost(0, 3, 5.0);
  h.run_to_quiescence(rng);
  EXPECT_GT(h.node(0).feasible_distance(2), before);
  EXPECT_DOUBLE_EQ(h.node(0).feasible_distance(2), h.node(0).distance(2));
}

// -------------------------------------------------------- MpRouter corners

TEST(MpRouterEdge, WrrRealizesWeightsLongRun) {
  graph::Topology topo;
  topo.add_nodes(4);
  topo.add_duplex(0, 1);
  topo.add_duplex(0, 2);
  topo.add_duplex(1, 3);
  topo.add_duplex(2, 3);
  test::ProtocolHarness<core::MpRouter> h(
      topo, std::vector<Cost>(topo.num_links(), 1.0),
      [](NodeId s, std::size_t n, proto::LsuSink& sink) {
        return std::make_unique<core::MpRouter>(s, n, sink,
                                                core::MpRouterOptions{});
      });
  Rng rng(4);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  h.node(0).update_short_term_costs({{1, 1.0}, {2, 3.0}});
  const auto entry = h.node(0).forwarding(3);
  std::map<NodeId, double> weight;
  for (const auto& c : entry) weight[c.neighbor] = c.weight;
  std::map<NodeId, int> counts;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) ++counts[h.node(0).pick_next_hop_wrr(3)];
  for (const auto& [k, w] : weight) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, w, 0.001) << "nbr " << k;
  }
}

TEST(MpRouterEdge, ForwardingToSelfDestinationIsEmpty) {
  const auto topo = topo::make_ring(3);
  test::ProtocolHarness<core::MpRouter> h(
      topo, std::vector<Cost>(topo.num_links(), 1.0),
      [](NodeId s, std::size_t n, proto::LsuSink& sink) {
        return std::make_unique<core::MpRouter>(s, n, sink,
                                                core::MpRouterOptions{});
      });
  Rng rng(5);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  EXPECT_TRUE(h.node(0).forwarding(0).empty());
  Rng pick(6);
  EXPECT_EQ(h.node(0).pick_next_hop(0, pick), graph::kInvalidNode);
}

// ----------------------------------------------------------- flow plane

TEST(FlowEdge, ZeroTrafficMatrixYieldsZeroFlowsAndDelay) {
  const auto topo = topo::make_net1();
  const flow::FlowNetwork net(topo, 8e3);
  const flow::TrafficMatrix traffic(topo.num_nodes());
  const auto phi = gallager::shortest_path_phi(net);
  const auto fa = flow::compute_flows(net, traffic, phi);
  for (const double f : fa.link_flows) EXPECT_DOUBLE_EQ(f, 0.0);
  EXPECT_DOUBLE_EQ(flow::total_delay_rate(net, fa.link_flows), 0.0);
  EXPECT_DOUBLE_EQ(flow::average_delay(net, traffic, phi), 0.0);
}

TEST(FlowEdge, SelfTrafficIsRejectedByAssert) {
  // TrafficMatrix::add asserts src != dst; validated here via the public
  // contract (death test only in debug builds).
#ifndef NDEBUG
  flow::TrafficMatrix m(3);
  EXPECT_DEATH(m.add(1, 1, 1e6), "");
#else
  GTEST_SKIP() << "assertions disabled";
#endif
}

}  // namespace
}  // namespace mdr
