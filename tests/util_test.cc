// Unit tests for src/util: rng, stats, matrix, time helpers.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/matrix.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace mdr {
namespace {

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(from_ms(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(0.25), 250.0);
  EXPECT_DOUBLE_EQ(from_us(1000.0), 1e-3);
  EXPECT_GT(kTimeInfinity, 1e300);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.uniform_int(3, 5);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 5);
    saw_lo |= x == 3;
    saw_hi |= x == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Rng, PickWeightedProportions) {
  Rng rng(13);
  const std::array<double, 3> w{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.pick_weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(5);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Children from successive splits differ from each other.
  EXPECT_NE(child1.uniform(), child2.uniform());
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsSafe) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5, 5);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.add(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, FirstSampleSeeds) {
  Ewma e(0.1);
  e.add(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Ewma, SmoothsStep) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Samples, MeanAndPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
}

// Reference implementation from before the sorted-state cache: copy and
// fully sort the vector on every query, then take the nearest rank.
static double naive_percentile(const std::vector<double>& xs, double q) {
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

TEST(Samples, CachedPercentileMatchesNaiveSortPerQuery) {
  Samples s;
  Rng rng(17);
  std::vector<double> xs;
  const double qs[] = {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0};
  // Interleave adds with repeated queries so the cache is invalidated,
  // rebuilt, and re-queried many times.
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-1e3, 1e3);
    s.add(x);
    xs.push_back(x);
    if (i % 37 == 0 || i == 1999) {
      for (double q : qs) {
        EXPECT_DOUBLE_EQ(s.percentile(q), naive_percentile(xs, q))
            << "q=" << q << " after " << xs.size() << " samples";
      }
      // Repeated queries against the cached order must agree with the first.
      EXPECT_DOUBLE_EQ(s.percentile(0.5), naive_percentile(xs, 0.5));
    }
  }
  // reset() must drop the cached order along with the samples.
  s.reset();
  xs.clear();
  for (double x : {3.0, 1.0, 2.0}) {
    s.add(x);
    xs.push_back(x);
  }
  for (double q : qs) {
    EXPECT_DOUBLE_EQ(s.percentile(q), naive_percentile(xs, q));
  }
}

TEST(FlatMatrix, IndexingAndFill) {
  FlatMatrix<int> m(3, 4, -1);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(2, 3), -1);
  m(1, 2) = 42;
  EXPECT_EQ(m(1, 2), 42);
  m.fill(7);
  EXPECT_EQ(m(1, 2), 7);
  m.assign(2, 2, 0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m(1, 1), 0);
}

}  // namespace
}  // namespace mdr
