// Unit and property tests for src/core/allocation: IH (Fig. 6), AH (Fig. 7)
// and the SP selector — including the Property 1 invariants the paper
// requires both heuristics to preserve at every instant.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/allocation.h"
#include "util/rng.h"

namespace mdr::core {
namespace {

double sum(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

std::vector<SuccessorMetric> metrics_of(std::initializer_list<double> dists) {
  std::vector<SuccessorMetric> m;
  graph::NodeId id = 0;
  for (double d : dists) m.push_back(SuccessorMetric{id++, d});
  return m;
}

// ------------------------------------------------------------------------ IH

TEST(InitialAllocation, EmptySet) {
  EXPECT_TRUE(initial_allocation({}).empty());
}

TEST(InitialAllocation, SingleSuccessorGetsEverything) {
  const auto phi = initial_allocation(metrics_of({3.0}));
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_DOUBLE_EQ(phi[0], 1.0);
}

TEST(InitialAllocation, EqualDistancesSplitEqually) {
  const auto phi = initial_allocation(metrics_of({2.0, 2.0, 2.0}));
  for (double p : phi) EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
}

TEST(InitialAllocation, FartherSuccessorGetsLess) {
  // Paper: "if D_jp + l_p > D_jq + l_q for successors p and q, then
  // phi_p < phi_q".
  const auto phi = initial_allocation(metrics_of({1.0, 2.0, 4.0}));
  EXPECT_GT(phi[0], phi[1]);
  EXPECT_GT(phi[1], phi[2]);
  EXPECT_NEAR(sum(phi), 1.0, 1e-12);
}

TEST(InitialAllocation, MatchesFig6Formula) {
  // |S|=2, d = {1, 3}: phi_k = (1 - d_k/4) / 1.
  const auto phi = initial_allocation(metrics_of({1.0, 3.0}));
  EXPECT_NEAR(phi[0], 0.75, 1e-12);
  EXPECT_NEAR(phi[1], 0.25, 1e-12);
}

class InitialAllocationProperty : public ::testing::TestWithParam<int> {};

TEST_P(InitialAllocationProperty, Property1HoldsForRandomMetrics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    const int size = rng.uniform_int(1, 8);
    std::vector<SuccessorMetric> m;
    for (int i = 0; i < size; ++i) {
      m.push_back(SuccessorMetric{i, rng.uniform(0.01, 10.0)});
    }
    const auto phi = initial_allocation(m);
    EXPECT_NEAR(sum(phi), 1.0, 1e-9);
    for (double p : phi) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 + 1e-12);
    }
    // Monotonicity: larger distance never gets a larger share.
    for (int a = 0; a < size; ++a) {
      for (int b = 0; b < size; ++b) {
        if (m[a].distance < m[b].distance) {
          EXPECT_GE(phi[a], phi[b] - 1e-12);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InitialAllocationProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------------------ AH

TEST(AdjustAllocation, NoOpOnSingleSuccessor) {
  std::vector<double> phi{1.0};
  adjust_allocation(metrics_of({2.0}), phi);
  EXPECT_DOUBLE_EQ(phi[0], 1.0);
}

TEST(AdjustAllocation, NoOpWhenPerfectlyBalanced) {
  std::vector<double> phi{0.5, 0.5};
  adjust_allocation(metrics_of({2.0, 2.0}), phi);
  EXPECT_DOUBLE_EQ(phi[0], 0.5);
  EXPECT_DOUBLE_EQ(phi[1], 0.5);
}

TEST(AdjustAllocation, MovesTrafficTowardBestSuccessor) {
  std::vector<double> phi{0.5, 0.5};
  adjust_allocation(metrics_of({1.0, 3.0}), phi);
  EXPECT_GT(phi[0], 0.5);
  EXPECT_LT(phi[1], 0.5);
  EXPECT_NEAR(phi[0] + phi[1], 1.0, 1e-12);
}

TEST(AdjustAllocation, FullShiftDrainsTheWorstSuccessor) {
  // With damping 1.0 (the paper's heuristic) the binding successor hits 0.
  std::vector<double> phi{0.4, 0.3, 0.3};
  adjust_allocation(metrics_of({1.0, 2.0, 5.0}), phi);
  // delta = min(0.3/1, 0.3/4) = 0.075; k=1 loses 0.075, k=2 loses 0.3.
  EXPECT_NEAR(phi[1], 0.225, 1e-12);
  EXPECT_NEAR(phi[2], 0.0, 1e-12);
  EXPECT_NEAR(phi[0], 0.775, 1e-12);
}

TEST(AdjustAllocation, RemovedTrafficProportionalToExcessDelay) {
  // a_1 = 1, a_2 = 2: successor 2 must lose twice what successor 1 loses.
  std::vector<double> phi{0.2, 0.4, 0.4};
  adjust_allocation(metrics_of({1.0, 2.0, 3.0}), phi, 0.5);
  const double lost1 = 0.4 - phi[1];
  const double lost2 = 0.4 - phi[2];
  EXPECT_NEAR(lost2, 2.0 * lost1, 1e-12);
  EXPECT_NEAR(sum(phi), 1.0, 1e-12);
}

TEST(AdjustAllocation, DampingScalesTheShift) {
  std::vector<double> full{0.5, 0.5};
  std::vector<double> half{0.5, 0.5};
  adjust_allocation(metrics_of({1.0, 2.0}), full, 1.0);
  adjust_allocation(metrics_of({1.0, 2.0}), half, 0.5);
  EXPECT_NEAR(full[0] - 0.5, 2.0 * (half[0] - 0.5), 1e-12);
}

TEST(AdjustAllocation, ZeroWeightWorseSuccessorDoesNotBlockShift) {
  // A successor that already carries nothing must not clamp delta to zero.
  std::vector<double> phi{0.5, 0.0, 0.5};
  adjust_allocation(metrics_of({1.0, 2.0, 3.0}), phi);
  EXPECT_GT(phi[0], 0.5);
  EXPECT_DOUBLE_EQ(phi[1], 0.0);
  EXPECT_LT(phi[2], 0.5);
}

TEST(AdjustAllocation, RepeatedCallsConvergeToSingleBest) {
  // With static metrics, repeating AH funnels everything to the best.
  std::vector<double> phi{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const auto m = metrics_of({1.0, 2.0, 3.0});
  for (int i = 0; i < 10; ++i) adjust_allocation(m, phi);
  EXPECT_NEAR(phi[0], 1.0, 1e-9);
  EXPECT_NEAR(phi[1], 0.0, 1e-9);
  EXPECT_NEAR(phi[2], 0.0, 1e-9);
}

class AdjustAllocationProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdjustAllocationProperty, PreservesProperty1AndNeverHurtsBest) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77);
  for (int trial = 0; trial < 300; ++trial) {
    const int size = rng.uniform_int(2, 7);
    std::vector<SuccessorMetric> m;
    for (int i = 0; i < size; ++i) {
      m.push_back(SuccessorMetric{i, rng.uniform(0.01, 5.0)});
    }
    // Random Property-1 phi.
    std::vector<double> phi(static_cast<std::size_t>(size));
    double total = 0;
    for (double& p : phi) total += (p = rng.uniform(0.0, 1.0));
    for (double& p : phi) p /= total;

    std::size_t best = 0;
    for (std::size_t x = 1; x < phi.size(); ++x) {
      if (m[x].distance < m[best].distance) best = x;
    }
    const double best_before = phi[best];
    const double damping = rng.uniform(0.1, 1.0);
    adjust_allocation(m, phi, damping);

    EXPECT_NEAR(sum(phi), 1.0, 1e-9);
    for (std::size_t x = 0; x < phi.size(); ++x) {
      EXPECT_GE(phi[x], 0.0) << "trial " << trial;
    }
    EXPECT_GE(phi[best], best_before - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjustAllocationProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------------------ SP

TEST(BestSuccessor, PicksMinimumDistance) {
  const auto phi = best_successor_allocation(metrics_of({3.0, 1.0, 2.0}));
  EXPECT_DOUBLE_EQ(phi[0], 0.0);
  EXPECT_DOUBLE_EQ(phi[1], 1.0);
  EXPECT_DOUBLE_EQ(phi[2], 0.0);
}

TEST(BestSuccessor, TieBreaksToLowerNeighborId) {
  std::vector<SuccessorMetric> m{{5, 2.0}, {3, 2.0}, {7, 2.0}};
  const auto phi = best_successor_allocation(m);
  EXPECT_DOUBLE_EQ(phi[1], 1.0);  // neighbor 3
}

TEST(BestSuccessor, EmptyInput) {
  EXPECT_TRUE(best_successor_allocation({}).empty());
}

}  // namespace
}  // namespace mdr::core
