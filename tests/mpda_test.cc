// Unit tests for src/core/mpda: MPDA's liveness (Theorem 4: distances
// converge, successor sets become {k : D_kj < D_ij}) and safety (Theorem 3:
// loop-freedom at every instant), plus the ACTIVE/PASSIVE + ACK machinery.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "core/lfi.h"
#include "core/mpda.h"
#include "graph/dijkstra.h"
#include "harness.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace mdr::core {
namespace {

using graph::Cost;
using graph::NodeId;
using MpdaHarness = test::ProtocolHarness<MpdaProcess>;

MpdaHarness::Factory mpda_factory() {
  return [](NodeId self, std::size_t n, proto::LsuSink& sink) {
    return std::make_unique<MpdaProcess>(self, n, sink);
  };
}

std::vector<Cost> uniform_costs(const graph::Topology& topo, Cost c = 1.0) {
  return std::vector<Cost>(topo.num_links(), c);
}

std::vector<Cost> random_costs(const graph::Topology& topo, Rng& rng) {
  std::vector<Cost> costs;
  for (std::size_t i = 0; i < topo.num_links(); ++i) {
    costs.push_back(rng.uniform(0.5, 4.0));
  }
  return costs;
}

// Installs an observer asserting Theorem 3 after every event: for every
// destination, the global successor graph is a DAG and feasible distances
// strictly decrease along successor edges.
void check_loop_freedom_always(MpdaHarness& h) {
  h.on_after_event = [&h] {
    const auto n = static_cast<NodeId>(h.topology().num_nodes());
    for (NodeId j = 0; j < n; ++j) {
      LfiSnapshot snap;
      snap.feasible_distance.resize(n);
      snap.successors.resize(n);
      for (NodeId i = 0; i < n; ++i) {
        snap.feasible_distance[i] = h.node(i).feasible_distance(j);
        if (i != j) snap.successors[i] = h.node(i).successors(j);
      }
      ASSERT_TRUE(feasible_distances_decrease(snap)) << "dest " << j;
      ASSERT_TRUE(successor_graph_loop_free(snap)) << "dest " << j;
    }
  };
}

// Theorem 4 checks at quiescence.
void expect_converged(MpdaHarness& h, const std::vector<Cost>& costs) {
  const auto& topo = h.topology();
  const auto n = static_cast<NodeId>(topo.num_nodes());
  std::vector<graph::CostedEdge> edges;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    edges.push_back(
        graph::CostedEdge{topo.link(id).from, topo.link(id).to, costs[id]});
  }
  std::vector<graph::ShortestPathTree> spt;
  for (NodeId i = 0; i < n; ++i) {
    spt.push_back(graph::dijkstra(topo.num_nodes(), edges, i));
  }
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_TRUE(h.node(i).passive()) << "router " << i;
    EXPECT_EQ(h.node(i).acks_pending(), 0u) << "router " << i;
    for (NodeId j = 0; j < n; ++j) {
      EXPECT_NEAR(h.node(i).distance(j), spt[i].dist[j], 1e-9)
          << "D at " << i << " for " << j;
      if (i == j) continue;
      // FD == D in steady state.
      EXPECT_NEAR(h.node(i).feasible_distance(j), spt[i].dist[j], 1e-9);
      // S = {k : D_kj < D_ij} (Theorem 4).
      std::vector<NodeId> expected;
      for (const NodeId k : topo.neighbors(i)) {
        if (spt[k].dist[j] < spt[i].dist[j]) expected.push_back(k);
      }
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(h.node(i).successors(j), expected)
          << "S at " << i << " for " << j;
    }
  }
}

TEST(Mpda, ConvergesOnRing) {
  const auto topo = topo::make_ring(6);
  const auto costs = uniform_costs(topo);
  MpdaHarness h(topo, costs, mpda_factory());
  Rng rng(1);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  expect_converged(h, costs);
}

TEST(Mpda, ConvergesOnNet1WithRandomCosts) {
  const auto topo = topo::make_net1();
  Rng rng(2);
  const auto costs = random_costs(topo, rng);
  MpdaHarness h(topo, costs, mpda_factory());
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  expect_converged(h, costs);
}

TEST(Mpda, ConvergesOnCairn) {
  const auto topo = topo::make_cairn();
  Rng rng(3);
  const auto costs = random_costs(topo, rng);
  MpdaHarness h(topo, costs, mpda_factory());
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  expect_converged(h, costs);
}

TEST(Mpda, ProvidesMultipleUnequalCostSuccessors) {
  // NET1 is built to have unequal-cost multipath: at convergence some router
  // must hold more than one successor toward some destination, with
  // different distances through them.
  const auto topo = topo::make_net1();
  Rng rng(4);
  const auto costs = random_costs(topo, rng);  // unequal-cost paths
  MpdaHarness h(topo, costs, mpda_factory());
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  bool found_multipath = false, found_unequal = false;
  const auto n = static_cast<NodeId>(topo.num_nodes());
  for (NodeId i = 0; i < n && !(found_multipath && found_unequal); ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto& succ = h.node(i).successors(j);
      if (succ.size() > 1) {
        found_multipath = true;
        const Cost d0 = h.node(i).distance_via(j, succ[0]);
        for (const NodeId k : succ) {
          if (h.node(i).distance_via(j, k) != d0) found_unequal = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_multipath);
  EXPECT_TRUE(found_unequal);
}

TEST(Mpda, LoopFreeAtEveryInstantDuringBringUp) {
  const auto topo = topo::make_net1();
  Rng rng(5);
  const auto costs = random_costs(topo, rng);
  MpdaHarness h(topo, costs, mpda_factory());
  check_loop_freedom_always(h);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  expect_converged(h, costs);
}

TEST(Mpda, LoopFreeAtEveryInstantAcrossCostChurn) {
  const auto topo = topo::make_grid(3, 3);
  Rng rng(6);
  auto costs = uniform_costs(topo);
  MpdaHarness h(topo, costs, mpda_factory());
  check_loop_freedom_always(h);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  // Storm of cost changes with partial delivery between them.
  for (int round = 0; round < 30; ++round) {
    const auto id =
        static_cast<graph::LinkId>(rng.uniform_int(0, static_cast<int>(topo.num_links()) - 1));
    const auto& l = h.topology().link(id);
    h.change_cost(l.from, l.to, rng.uniform(0.5, 5.0));
    for (int d = 0; d < 5; ++d) h.deliver_one(rng);
  }
  h.run_to_quiescence(rng);
  EXPECT_EQ(h.in_flight(), 0u);
}

TEST(Mpda, LoopFreeAcrossFailureAndRecovery) {
  const auto topo = topo::make_ring(6);
  const auto costs = uniform_costs(topo);
  MpdaHarness h(topo, costs, mpda_factory());
  Rng rng(7);
  check_loop_freedom_always(h);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);

  h.fail_duplex(2, 3);
  h.run_to_quiescence(rng);
  // Ring minus one link is a line: still connected.
  EXPECT_LT(h.node(2).distance(3), graph::kInfCost);
  EXPECT_DOUBLE_EQ(h.node(2).distance(3), 5.0);

  h.restore_duplex(2, 3);
  h.run_to_quiescence(rng);
  expect_converged(h, costs);
}

TEST(Mpda, AcksSettleAndModeReturnsToPassive) {
  const auto topo = topo::make_ring(4);
  MpdaHarness h(topo, uniform_costs(topo), mpda_factory());
  Rng rng(8);
  h.bring_up_all(&rng);
  // Mid-convergence some nodes are ACTIVE with outstanding acks.
  bool saw_active = false;
  h.on_after_event = [&h, &saw_active] {
    for (NodeId i = 0; i < 4; ++i) {
      if (!h.node(i).passive()) saw_active = true;
    }
  };
  h.run_to_quiescence(rng);
  EXPECT_TRUE(saw_active);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_TRUE(h.node(i).passive());
    EXPECT_EQ(h.node(i).acks_pending(), 0u);
  }
}

TEST(Mpda, SuccessorVersionBumpsOnChange) {
  const auto topo = topo::make_ring(4);
  MpdaHarness h(topo, uniform_costs(topo), mpda_factory());
  Rng rng(9);
  const auto v0 = h.node(0).successor_version(2);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  EXPECT_GT(h.node(0).successor_version(2), v0);
  // Quiescent re-check: no further bumps without events.
  const auto v1 = h.node(0).successor_version(2);
  EXPECT_EQ(h.node(0).successor_version(2), v1);
}

TEST(Mpda, IgnoresLsuFromNonNeighbor) {
  const auto topo = topo::make_ring(4);
  MpdaHarness h(topo, uniform_costs(topo), mpda_factory());
  Rng rng(10);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  // Forge a message from a node that is not adjacent to node 0.
  proto::LsuMessage forged{2, false, {proto::LsuEntry{2, 0, 0.1, proto::LsuOp::kAddOrChange}}};
  const auto before = h.node(0).distance(2);
  h.node(0).on_lsu(forged);
  EXPECT_DOUBLE_EQ(h.node(0).distance(2), before);
}

// Captures sent messages for manual (lossy) delivery.
struct CapturingSink final : proto::LsuSink {
  void send(NodeId neighbor, const proto::LsuMessage& msg) override {
    sent.push_back({neighbor, msg});
  }
  std::vector<std::pair<NodeId, proto::LsuMessage>> sent;
};

TEST(Mpda, RetransmissionRecoversLostLsu) {
  CapturingSink sink_a, sink_b;
  MpdaProcess a(0, 2, sink_a), b(1, 2, sink_b);
  a.on_link_up(1, 1.0);
  ASSERT_EQ(sink_a.sent.size(), 1u);  // a floods its (0,1) link
  // The message is LOST: b never saw it (e.g. b's adjacency lagged).
  sink_a.sent.clear();
  b.on_link_up(0, 1.0);
  // Deliver b's flood to a; a acks but remains waiting for b's ack.
  for (const auto& [to, msg] : sink_b.sent) a.on_lsu(msg);
  sink_b.sent.clear();
  for (const auto& [to, msg] : sink_a.sent) b.on_lsu(msg);
  sink_a.sent.clear();
  for (const auto& [to, msg] : sink_b.sent) a.on_lsu(msg);
  sink_b.sent.clear();
  EXPECT_GT(a.acks_pending(), 0u);  // the lost LSU is still outstanding

  // Reliable flooding: the retransmission timer resends; b acks; a settles.
  a.retransmit_unacked();
  for (int round = 0; round < 5; ++round) {
    for (const auto& [to, msg] : sink_a.sent) b.on_lsu(msg);
    sink_a.sent.clear();
    for (const auto& [to, msg] : sink_b.sent) a.on_lsu(msg);
    sink_b.sent.clear();
  }
  EXPECT_EQ(a.acks_pending(), 0u);
  EXPECT_EQ(b.acks_pending(), 0u);
  EXPECT_TRUE(a.passive());
  EXPECT_DOUBLE_EQ(a.distance(1), 1.0);
  EXPECT_DOUBLE_EQ(b.distance(0), 1.0);
}

TEST(Mpda, DuplicateLsuIsReackedWithoutReprocessing) {
  CapturingSink sink_a, sink_b;
  MpdaProcess a(0, 2, sink_a), b(1, 2, sink_b);
  a.on_link_up(1, 1.0);
  b.on_link_up(0, 1.0);
  ASSERT_FALSE(sink_a.sent.empty());
  const auto first = sink_a.sent[0].second;
  ASSERT_TRUE(first.requires_ack());
  b.on_lsu(first);
  const auto acks_after_first = sink_b.sent.size();
  EXPECT_GT(acks_after_first, 0u);
  // Deliver the identical LSU again (a retransmission duplicate).
  b.on_lsu(first);
  // b acknowledged again (the original ack may have been lost) ...
  EXPECT_GT(sink_b.sent.size(), acks_after_first);
  bool reacked = false;
  for (std::size_t i = acks_after_first; i < sink_b.sent.size(); ++i) {
    const auto& msg = sink_b.sent[i].second;
    if (msg.ack && msg.ack_seq == first.seq) reacked = true;
  }
  EXPECT_TRUE(reacked);
  // ... and its topology state is unchanged.
  EXPECT_DOUBLE_EQ(b.distance(0), 1.0);
}

TEST(Mpda, RetransmitWindowNotConsumedByCoolingMessages) {
  // Regression: messages skipped because they are in backoff cooldown must
  // not consume retransmit-window slots. With kRetransmitWindow (8) older
  // messages all cooling down, a ready 9th message used to be starved —
  // the window filled with skips and the loop broke before reaching it.
  CapturingSink sink;
  MpdaProcess a(0, 2, sink);
  // Each duplicate on_link_up re-owes neighbor 1 the full table and queues
  // one more unacked full-sync LSU (no acks ever arrive).
  for (int i = 0; i < 9; ++i) a.on_link_up(1, 1.0);
  ASSERT_EQ(a.acks_pending(), 9u);
  sink.sent.clear();

  // Tick 1: the eight oldest go out (window), each entering cooldown 1;
  // the ninth stays ready.
  a.retransmit_unacked();
  ASSERT_EQ(sink.sent.size(), 8u);
  std::uint32_t max_seq_sent = 0;
  for (const auto& [to, msg] : sink.sent) {
    max_seq_sent = std::max(max_seq_sent, msg.seq);
  }
  sink.sent.clear();

  // Tick 2: the eight are cooling. The ready ninth message must be sent —
  // the cooldown skips may not eat its window slot.
  a.retransmit_unacked();
  ASSERT_EQ(sink.sent.size(), 1u);
  EXPECT_GT(sink.sent[0].second.seq, max_seq_sent);
}

// ---------------------------------------------------------------------------
// LSU origination pacing (LsuPacing): hold-down with Trickle-style backoff.
// The paced path defers the *cost-change event itself* (coalescing to the
// latest value), so to MPDA it is indistinguishable from the cost changing
// later — loop-freedom is untouched.

// Brings a 2-node pair to quiescence by repeatedly exchanging queued LSUs.
void settle(MpdaProcess& a, MpdaProcess& b, CapturingSink& sink_a,
            CapturingSink& sink_b) {
  for (int round = 0; round < 10; ++round) {
    const auto from_a = std::exchange(sink_a.sent, {});
    for (const auto& [to, msg] : from_a) b.on_lsu(msg);
    const auto from_b = std::exchange(sink_b.sent, {});
    for (const auto& [to, msg] : from_b) a.on_lsu(msg);
  }
}

// Last advertised cost for directed link 0 -> 1 among the sink's queued
// messages, or -1 if none of them carries that link.
Cost last_flooded_cost(const CapturingSink& sink) {
  Cost cost = -1;
  for (const auto& [to, msg] : sink.sent) {
    for (const auto& e : msg.entries) {
      if (e.head == 0 && e.tail == 1) cost = e.cost;
    }
  }
  return cost;
}

TEST(MpdaPacing, DisabledPacingForwardsEveryChangeImmediately) {
  CapturingSink sink_a, sink_b;
  MpdaProcess a(0, 2, sink_a), b(1, 2, sink_b);
  a.on_link_up(1, 1.0);
  b.on_link_up(0, 1.0);
  settle(a, b, sink_a, sink_b);
  for (int i = 0; i < 5; ++i) {
    a.on_link_cost_change_at(1, 2.0 + i, /*now=*/0.01 * i);
    EXPECT_FALSE(sink_a.sent.empty()) << "change " << i << " was held back";
    EXPECT_DOUBLE_EQ(last_flooded_cost(sink_a), 2.0 + i);
    settle(a, b, sink_a, sink_b);
  }
  EXPECT_EQ(a.lsus_suppressed(), 0u);
  EXPECT_DOUBLE_EQ(a.distance(1), 6.0);
}

TEST(MpdaPacing, CoalescesBackToBackChangesToLatestCost) {
  CapturingSink sink_a, sink_b;
  MpdaProcess a(0, 2, sink_a, LsuPacing{true, 1.0, 8.0});
  MpdaProcess b(1, 2, sink_b);
  a.on_link_up(1, 1.0);
  b.on_link_up(0, 1.0);
  settle(a, b, sink_a, sink_b);
  ASSERT_TRUE(a.passive());

  // First change after a long idle floods at once.
  a.on_link_cost_change_at(1, 2.0, /*now=*/10.0);
  EXPECT_DOUBLE_EQ(last_flooded_cost(sink_a), 2.0);
  settle(a, b, sink_a, sink_b);
  EXPECT_DOUBLE_EQ(a.distance(1), 2.0);

  // Two changes inside the hold-down window are swallowed — the deferral
  // covers the whole event, so even a's own tables still read 2.0 ...
  a.on_link_cost_change_at(1, 3.0, 10.4);
  a.on_link_cost_change_at(1, 4.0, 10.6);
  EXPECT_TRUE(sink_a.sent.empty());
  EXPECT_EQ(a.lsus_suppressed(), 2u);
  a.pacing_tick(10.9);  // window not over yet
  EXPECT_TRUE(sink_a.sent.empty());
  EXPECT_DOUBLE_EQ(a.distance(1), 2.0);

  // ... and the tick after the window floods ONE update with the latest
  // cost; the intermediate 3.0 never hits the wire.
  a.pacing_tick(11.2);
  ASSERT_FALSE(sink_a.sent.empty());
  EXPECT_DOUBLE_EQ(last_flooded_cost(sink_a), 4.0);
  settle(a, b, sink_a, sink_b);
  EXPECT_DOUBLE_EQ(a.distance(1), 4.0);
  EXPECT_TRUE(a.passive());
}

TEST(MpdaPacing, BackoffDoublesWhileUnstableAndSnapsBackWhenQuiet) {
  CapturingSink sink_a, sink_b;
  MpdaProcess a(0, 2, sink_a, LsuPacing{true, 1.0, 8.0});
  MpdaProcess b(1, 2, sink_b);
  a.on_link_up(1, 1.0);
  b.on_link_up(0, 1.0);
  settle(a, b, sink_a, sink_b);

  a.on_link_cost_change_at(1, 2.0, 10.0);  // floods; next window [10, 11)
  settle(a, b, sink_a, sink_b);
  a.on_link_cost_change_at(1, 3.0, 10.5);  // coalesced
  a.pacing_tick(11.2);                     // floods; interval doubles to 2 s
  settle(a, b, sink_a, sink_b);

  // Still churning: a change inside the now-2 s window stays pending at a
  // 1 s tick cadence that would have released it under min_interval.
  a.on_link_cost_change_at(1, 4.0, 11.5);
  a.pacing_tick(12.5);
  EXPECT_TRUE(sink_a.sent.empty());
  EXPECT_DOUBLE_EQ(a.distance(1), 3.0);
  a.pacing_tick(13.3);  // past 11.2 + 2 s: released, interval now 4 s
  ASSERT_FALSE(sink_a.sent.empty());
  settle(a, b, sink_a, sink_b);
  EXPECT_DOUBLE_EQ(a.distance(1), 4.0);

  // A long quiet spell snaps the interval back to min_interval: the next
  // burst is again released after ~1 s, not after the backed-off 4 s.
  a.on_link_cost_change_at(1, 5.0, 40.0);  // immediate (idle >= interval)
  settle(a, b, sink_a, sink_b);
  a.on_link_cost_change_at(1, 6.0, 40.5);
  a.pacing_tick(41.2);
  ASSERT_FALSE(sink_a.sent.empty()) << "backoff interval failed to snap back";
  settle(a, b, sink_a, sink_b);
  EXPECT_DOUBLE_EQ(a.distance(1), 6.0);
}

TEST(MpdaPacing, PendingChangeDiesWithTheLink) {
  CapturingSink sink_a, sink_b;
  MpdaProcess a(0, 2, sink_a, LsuPacing{true, 1.0, 8.0});
  MpdaProcess b(1, 2, sink_b);
  a.on_link_up(1, 1.0);
  b.on_link_up(0, 1.0);
  settle(a, b, sink_a, sink_b);

  a.on_link_cost_change_at(1, 2.0, 10.0);
  settle(a, b, sink_a, sink_b);
  a.on_link_cost_change_at(1, 3.0, 10.5);  // pending
  a.on_link_down(1);                       // floods the removal...
  sink_a.sent.clear();
  a.pacing_tick(12.0);  // ...and the stale pending cost must NOT resurface
  EXPECT_TRUE(sink_a.sent.empty());
}

TEST(MpdaPacing, CountersTrackOriginationsAndSuppressions) {
  CapturingSink sink_a, sink_b;
  MpdaProcess a(0, 2, sink_a, LsuPacing{true, 1.0, 8.0});
  MpdaProcess b(1, 2, sink_b);
  a.on_link_up(1, 1.0);
  b.on_link_up(0, 1.0);
  settle(a, b, sink_a, sink_b);
  const auto base = a.lsus_originated();
  EXPECT_GT(base, 0u);
  a.on_link_cost_change_at(1, 2.0, 10.0);
  settle(a, b, sink_a, sink_b);  // ack the flood so a is PASSIVE again
  a.on_link_cost_change_at(1, 3.0, 10.2);
  a.pacing_tick(11.5);
  EXPECT_EQ(a.lsus_suppressed(), 1u);
  EXPECT_EQ(a.lsus_originated(), base + 2);  // direct flood + released flood
  EXPECT_GT(a.acks_sent() + b.acks_sent(), 0u);
}

TEST(MpdaPacing, BouncedLinkNeverReachesTheWire) {
  // A three-node line b -- a -- c: when the a-b link flaps, a still has c
  // to flood toward, so the wire cost of the bounce is observable.
  CapturingSink sink_a, sink_b, sink_c;
  MpdaProcess a(0, 3, sink_a, LsuPacing{true, 4.0, 16.0});
  MpdaProcess b(1, 3, sink_b);
  MpdaProcess c(2, 3, sink_c);
  a.on_link_up_at(1, 1.0, /*now=*/10.0);  // first announcement: immediate
  a.on_link_up_at(2, 1.0, 10.0);
  b.on_link_up(0, 1.0);
  c.on_link_up(0, 1.0);
  auto settle3 = [&] {
    for (int round = 0; round < 10; ++round) {
      for (const auto& [to, msg] : std::exchange(sink_a.sent, {})) {
        (to == 1 ? b : c).on_lsu(msg);
      }
      for (const auto& [to, msg] : std::exchange(sink_b.sent, {})) a.on_lsu(msg);
      for (const auto& [to, msg] : std::exchange(sink_c.sent, {})) a.on_lsu(msg);
    }
  };
  settle3();
  EXPECT_DOUBLE_EQ(a.distance(1), 1.0);

  // The link to b bounces: the down floods a withdrawal at once (bad news
  // is never paced) ...
  a.on_link_down(1);
  EXPECT_FALSE(sink_a.sent.empty());
  settle3();
  EXPECT_DOUBLE_EQ(c.distance(1), graph::kInfCost);
  // ... but the re-up lands inside the hold-down and is deferred whole.
  a.on_link_up_at(1, 1.0, 11.0);
  EXPECT_TRUE(sink_a.sent.empty());
  EXPECT_EQ(a.lsus_suppressed(), 1u);
  // The link dies again before the window closes: the deferred
  // announcement is cancelled — the entire bounce cost one withdrawal.
  a.on_link_down(1);
  a.pacing_tick(20.0);
  EXPECT_TRUE(sink_a.sent.empty());
  EXPECT_EQ(a.distance(1), graph::kInfCost);
}

TEST(MpdaPacing, DeferredUpFloodsWhenTheWindowCloses) {
  CapturingSink sink_a, sink_b;
  MpdaProcess a(0, 2, sink_a, LsuPacing{true, 4.0, 16.0});
  MpdaProcess b(1, 2, sink_b);
  a.on_link_up_at(1, 1.0, 10.0);
  b.on_link_up(0, 1.0);
  settle(a, b, sink_a, sink_b);

  a.on_link_down(1);
  settle(a, b, sink_a, sink_b);
  a.on_link_up_at(1, 2.0, 11.0);  // deferred: inside [10, 14)
  EXPECT_EQ(a.distance(1), graph::kInfCost);
  // A cost report for the still-deferred link rides along with it.
  a.on_link_cost_change_at(1, 3.0, 12.0);
  EXPECT_EQ(a.lsus_suppressed(), 2u);
  a.pacing_tick(13.0);  // window still open
  EXPECT_EQ(a.distance(1), graph::kInfCost);
  a.pacing_tick(14.5);  // flushes the announcement with the latest cost
  settle(a, b, sink_a, sink_b);
  EXPECT_DOUBLE_EQ(a.distance(1), 3.0);
  EXPECT_TRUE(a.passive());
}

TEST(Mpda, TwoNodeBootstrap) {
  graph::Topology topo;
  topo.add_nodes(2);
  topo.add_duplex(0, 1);
  MpdaHarness h(topo, uniform_costs(topo), mpda_factory());
  Rng rng(11);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  EXPECT_DOUBLE_EQ(h.node(0).distance(1), 1.0);
  ASSERT_EQ(h.node(0).successors(1).size(), 1u);
  EXPECT_EQ(h.node(0).successors(1)[0], 1);
}

}  // namespace
}  // namespace mdr::core
