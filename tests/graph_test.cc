// Unit tests for src/graph: topology, Dijkstra, Bellman-Ford, DAG utilities.
#include <gtest/gtest.h>

#include <vector>

#include "graph/bellman_ford.h"
#include "graph/dag.h"
#include "graph/dijkstra.h"
#include "graph/topology.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace mdr::graph {
namespace {

Topology diamond() {
  // a -> b -> d and a -> c -> d, plus direct a -> d.
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const NodeId c = t.add_node("c");
  const NodeId d = t.add_node("d");
  t.add_duplex(a, b);
  t.add_duplex(a, c);
  t.add_duplex(b, d);
  t.add_duplex(c, d);
  t.add_duplex(a, d);
  return t;
}

TEST(Topology, NodesAndNames) {
  Topology t;
  EXPECT_EQ(t.add_node("x"), 0);
  EXPECT_EQ(t.add_node("y"), 1);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.name(0), "x");
  EXPECT_EQ(t.find_node("y"), 1);
  EXPECT_EQ(t.find_node("zzz"), kInvalidNode);
}

TEST(Topology, AddNodesBulk) {
  Topology t;
  const NodeId first = t.add_nodes(5);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(t.num_nodes(), 5u);
  EXPECT_NE(t.find_node("n3"), kInvalidNode);
}

TEST(Topology, LinksAndAdjacency) {
  Topology t = diamond();
  EXPECT_EQ(t.num_links(), 10u);  // 5 duplex
  const NodeId a = t.find_node("a");
  const NodeId d = t.find_node("d");
  EXPECT_EQ(t.out_links(a).size(), 3u);
  EXPECT_EQ(t.neighbors(a).size(), 3u);
  const LinkId ad = t.find_link(a, d);
  ASSERT_NE(ad, kInvalidLink);
  EXPECT_EQ(t.link(ad).from, a);
  EXPECT_EQ(t.link(ad).to, d);
  EXPECT_EQ(t.find_link(d, 99), kInvalidLink);
}

TEST(Topology, LinkAttributesStored) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const LinkId id = t.add_link(a, b, LinkAttr{1.5e6, 2e-3});
  EXPECT_DOUBLE_EQ(t.link(id).attr.capacity_bps, 1.5e6);
  EXPECT_DOUBLE_EQ(t.link(id).attr.prop_delay_s, 2e-3);
}

TEST(Topology, StrongConnectivityAndDiameter) {
  Topology t = diamond();
  EXPECT_TRUE(t.is_strongly_connected());
  EXPECT_EQ(t.diameter_hops(), 2u);

  Topology one_way;
  const NodeId a = one_way.add_node("a");
  const NodeId b = one_way.add_node("b");
  one_way.add_link(a, b);
  EXPECT_FALSE(one_way.is_strongly_connected());
}

TEST(Dijkstra, SimpleChain) {
  std::vector<CostedEdge> edges{{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 5.0}};
  const auto spt = dijkstra(3, edges, 0);
  EXPECT_DOUBLE_EQ(spt.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(spt.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(spt.dist[2], 3.0);  // via node 1, not the direct edge
  EXPECT_EQ(spt.parent[2], 1);
  EXPECT_EQ(spt.first_hop(0, 2), 1);
}

TEST(Dijkstra, UnreachableNodes) {
  std::vector<CostedEdge> edges{{0, 1, 1.0}};
  const auto spt = dijkstra(3, edges, 0);
  EXPECT_FALSE(spt.reachable(2));
  EXPECT_EQ(spt.dist[2], kInfCost);
  EXPECT_EQ(spt.first_hop(0, 2), kInvalidNode);
}

TEST(Dijkstra, IgnoresInfiniteCostEdges) {
  std::vector<CostedEdge> edges{{0, 1, kInfCost}, {0, 2, 1.0}, {2, 1, 1.0}};
  const auto spt = dijkstra(3, edges, 0);
  EXPECT_DOUBLE_EQ(spt.dist[1], 2.0);  // the infinite edge is a failed link
}

TEST(Dijkstra, KeepsCheapestParallelEdge) {
  std::vector<CostedEdge> edges{{0, 1, 5.0}, {0, 1, 2.0}, {0, 1, 9.0}};
  const auto spt = dijkstra(2, edges, 0);
  EXPECT_DOUBLE_EQ(spt.dist[1], 2.0);
}

TEST(Dijkstra, ConsistentTieBreakPrefersLowerParent) {
  // Two equal-cost two-hop paths to node 3: via 1 and via 2.
  std::vector<CostedEdge> edges{
      {0, 1, 1.0}, {0, 2, 1.0}, {1, 3, 1.0}, {2, 3, 1.0}};
  const auto spt = dijkstra(4, edges, 0);
  EXPECT_EQ(spt.parent[3], 1);  // lower id wins
  // Edge order must not matter.
  std::vector<CostedEdge> reversed(edges.rbegin(), edges.rend());
  const auto spt2 = dijkstra(4, reversed, 0);
  EXPECT_EQ(spt2.parent[3], 1);
}

TEST(Dijkstra, TopologyOverload) {
  Topology t = diamond();
  std::vector<Cost> costs(t.num_links(), 1.0);
  // Make the direct a->d link expensive.
  costs[t.find_link(t.find_node("a"), t.find_node("d"))] = 10.0;
  const auto spt = dijkstra(t, costs, t.find_node("a"));
  EXPECT_DOUBLE_EQ(spt.dist[t.find_node("d")], 2.0);
}

TEST(Dijkstra, TreeEdgesFormSpanningTree) {
  Rng rng(17);
  const auto topo = topo::make_random(20, 0.15, rng);
  std::vector<CostedEdge> edges;
  for (LinkId id = 0; id < static_cast<LinkId>(topo.num_links()); ++id) {
    edges.push_back(
        CostedEdge{topo.link(id).from, topo.link(id).to, rng.uniform(1, 10)});
  }
  const auto spt = dijkstra(topo.num_nodes(), edges, 0);
  const auto tree = tree_edges(spt, edges);
  EXPECT_EQ(tree.size(), topo.num_nodes() - 1);  // connected => spanning
  // Every tree edge must reproduce the distance relation.
  for (const auto& e : tree) {
    EXPECT_NEAR(spt.dist[e.from] + e.cost, spt.dist[e.to], 1e-9);
  }
}

TEST(Dijkstra, TreeEdgesRecoverCheapestParallelEdge) {
  // Parallel (0,1) edges: the recovered cost must be the one Dijkstra
  // relaxed — the cheapest usable edge, not just any of them.
  std::vector<CostedEdge> edges{{0, 1, 3.0}, {0, 1, 1.5}, {0, 1, 6.0}};
  const auto spt = dijkstra(2, edges, 0);
  const auto tree = tree_edges(spt, edges);
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_DOUBLE_EQ(tree[0].cost, 1.5);
  EXPECT_DOUBLE_EQ(spt.dist[1], tree[0].cost);
}

TEST(Dijkstra, TreeEdgesIgnoreUnusableParallelEdges) {
  // Regression: the old per-vertex rescan took the raw minimum over ALL
  // (u, v) edges, so a negative-cost parallel edge — which Dijkstra itself
  // filters out — leaked into the recovered tree as a bogus cost.
  std::vector<CostedEdge> edges{{0, 1, 2.0}, {0, 1, -5.0}, {0, 1, kInfCost}};
  const auto spt = dijkstra(2, edges, 0);
  ASSERT_DOUBLE_EQ(spt.dist[1], 2.0);  // Dijkstra used the 2.0 edge
  const auto tree = tree_edges(spt, edges);
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_DOUBLE_EQ(tree[0].cost, 2.0);
  EXPECT_DOUBLE_EQ(spt.dist[1], tree[0].cost);
}

TEST(BellmanFord, MatchesDijkstraOnRandomGraphs) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const auto topo = topo::make_random(15, 0.2, rng);
    std::vector<CostedEdge> edges;
    for (LinkId id = 0; id < static_cast<LinkId>(topo.num_links()); ++id) {
      edges.push_back(CostedEdge{topo.link(id).from, topo.link(id).to,
                                 rng.uniform(0.5, 4.0)});
    }
    const NodeId root = rng.uniform_int(0, 14);
    const auto spt = dijkstra(topo.num_nodes(), edges, root);
    const auto bf = bellman_ford(topo.num_nodes(), edges, root);
    for (std::size_t i = 0; i < bf.size(); ++i) {
      EXPECT_NEAR(bf[i], spt.dist[i], 1e-9) << "node " << i;
    }
  }
}

TEST(BellmanFord, NHopDistancesAreMonotone) {
  // Paper Property 2: D(h) >= D(n) for h <= n.
  Rng rng(29);
  const auto topo = topo::make_random(12, 0.2, rng);
  std::vector<CostedEdge> edges;
  for (LinkId id = 0; id < static_cast<LinkId>(topo.num_links()); ++id) {
    edges.push_back(CostedEdge{topo.link(id).from, topo.link(id).to,
                               rng.uniform(0.5, 4.0)});
  }
  std::vector<Cost> prev = bellman_ford(topo.num_nodes(), edges, 0, 1);
  for (std::size_t hops = 2; hops < topo.num_nodes(); ++hops) {
    const auto cur = bellman_ford(topo.num_nodes(), edges, 0, hops);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      EXPECT_LE(cur[i], prev[i]) << "hops " << hops << " node " << i;
    }
    prev = cur;
  }
}

TEST(Dag, AcyclicDetection) {
  SuccessorSets dag{{1, 2}, {2}, {}};
  EXPECT_TRUE(is_acyclic(dag));
  SuccessorSets cycle{{1}, {2}, {0}};
  EXPECT_FALSE(is_acyclic(cycle));
  SuccessorSets self_loopless{{}, {}, {}};
  EXPECT_TRUE(is_acyclic(self_loopless));
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  SuccessorSets dag{{2}, {0, 2}, {}, {1}};
  const auto order = topological_order(dag);
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (std::size_t p = 0; p < order->size(); ++p) pos[(*order)[p]] = static_cast<int>(p);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId k : dag[i]) EXPECT_LT(pos[i], pos[k]);
  }
}

TEST(Dag, TopologicalOrderRejectsCycle) {
  SuccessorSets cycle{{1}, {0}};
  EXPECT_FALSE(topological_order(cycle).has_value());
}

TEST(Dag, CanReach) {
  SuccessorSets dag{{1}, {2}, {}, {}};  // 3 is isolated
  const auto reach = can_reach(dag, 2);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
  EXPECT_FALSE(reach[3]);
}

}  // namespace
}  // namespace mdr::graph
