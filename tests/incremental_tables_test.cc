// Equivalence tests for the incremental control plane (ISSUE: dirty-set MTU
// + dynamic SPT): randomized chaos-style event streams — link churn, cost
// changes, arbitrary message interleavings — with the RouterTables audit
// enabled, so every NTU/MTU is cross-checked against a from-scratch
// recomputation. On top of the audit, an observer re-derives the successor
// sets from the public API (Eq. 17) after every event, covering the
// successor dirty-set machinery in MpdaProcess, and a mid-churn checkpoint
// round trip validates the v2 canonical-rebuild restore path.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "ckpt/ckpt.h"
#include "core/mpda.h"
#include "graph/dijkstra.h"
#include "harness.h"
#include "proto/pda.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace mdr::core {
namespace {

using graph::Cost;
using graph::NodeId;
using MpdaHarness = test::ProtocolHarness<MpdaProcess>;

// Turns the incremental-vs-from-scratch audit on for the test's lifetime
// (any divergence throws std::logic_error out of the event handler).
struct AuditGuard {
  AuditGuard() : prev(proto::RouterTables::audit_enabled()) {
    proto::RouterTables::set_audit_enabled(true);
  }
  ~AuditGuard() { proto::RouterTables::set_audit_enabled(prev); }
  bool prev;
};

MpdaHarness::Factory mpda_factory() {
  return [](NodeId self, std::size_t n, proto::LsuSink& sink) {
    return std::make_unique<MpdaProcess>(self, n, sink);
  };
}

std::vector<Cost> random_costs(const graph::Topology& topo, Rng& rng) {
  std::vector<Cost> costs;
  for (std::size_t i = 0; i < topo.num_links(); ++i) {
    costs.push_back(rng.uniform(0.5, 4.0));
  }
  return costs;
}

// The successor-set oracle: S_j = {k in N : D_jk < FD_j} (Eq. 17),
// re-derived from public accessors only. The incremental recompute skips
// destinations whose inputs did not move; this asserts the skip never
// hides a change.
void check_successor_oracle(MpdaHarness& h) {
  const auto n = static_cast<NodeId>(h.topology().num_nodes());
  for (NodeId i = 0; i < n; ++i) {
    const auto& t = h.node(i).tables();
    for (NodeId j = 0; j < n; ++j) {
      if (j == i) continue;
      std::vector<NodeId> want;
      for (const NodeId k : t.neighbors()) {
        if (t.distance_via(j, k) < h.node(i).feasible_distance(j)) {
          want.push_back(k);
        }
      }
      ASSERT_EQ(h.node(i).successors(j), want)
          << "router " << i << " dest " << j;
    }
  }
}

// Global truth for the CURRENT cost vector, with failed links removed.
void expect_converged(MpdaHarness& h, const std::vector<Cost>& costs,
                      const std::set<std::pair<NodeId, NodeId>>& down) {
  const auto& topo = h.topology();
  std::vector<graph::CostedEdge> edges;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    const auto& l = topo.link(id);
    if (down.contains({l.from, l.to})) continue;
    edges.push_back(graph::CostedEdge{l.from, l.to, costs[id]});
  }
  for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
    const auto truth = graph::dijkstra(topo.num_nodes(), edges, i);
    for (NodeId j = 0; j < static_cast<NodeId>(topo.num_nodes()); ++j) {
      EXPECT_EQ(h.node(i).tables().distance(j), truth.dist[j])
          << "router " << i << " dest " << j;
    }
  }
}

// One chaos run: bring-up under a random order, then a long interleaving of
// deliveries, cost changes, and duplex fail/restore cycles, audited and
// oracle-checked after every single event.
void chaos_run(const graph::Topology& topo, std::uint64_t seed,
               int churn_steps) {
  AuditGuard audit;
  Rng rng(seed);
  auto costs = random_costs(topo, rng);
  MpdaHarness h(topo, costs, mpda_factory());
  h.on_after_event = [&h] { check_successor_oracle(h); };

  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);

  // Duplex pairs eligible for failure, deduplicated.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    const auto& l = topo.link(id);
    if (l.from < l.to) pairs.emplace_back(l.from, l.to);
  }
  std::set<std::pair<NodeId, NodeId>> down;

  for (int step = 0; step < churn_steps; ++step) {
    const int what = rng.uniform_int(0, 9);
    if (what < 5) {
      h.deliver_one(rng);  // false when quiet: the step is a no-op
    } else if (what < 8) {
      // Re-measure one adjacent link cost (only on a live link).
      const auto& [a, b] = pairs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(pairs.size()) - 1))];
      if (down.contains({a, b})) continue;
      const NodeId from = rng.bernoulli(0.5) ? a : b;
      const NodeId to = from == a ? b : a;
      const Cost c = rng.uniform(0.5, 4.0);
      costs[topo.find_link(from, to)] = c;
      h.change_cost(from, to, c);
    } else {
      const auto& [a, b] = pairs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(pairs.size()) - 1))];
      if (down.contains({a, b})) {
        down.erase({a, b});
        down.erase({b, a});
        h.restore_duplex(a, b);
      } else if (down.size() < 2) {  // keep most of the net alive
        down.insert({a, b});
        down.insert({b, a});
        h.fail_duplex(a, b);
      }
    }
  }

  h.run_to_quiescence(rng);
  expect_converged(h, costs, down);
}

TEST(IncrementalTables, ChaosEquivalenceOnCairn) {
  chaos_run(topo::make_cairn(), /*seed=*/11, /*churn_steps=*/600);
}

TEST(IncrementalTables, ChaosEquivalenceOnNet1) {
  chaos_run(topo::make_net1(), /*seed=*/12, /*churn_steps=*/600);
}

TEST(IncrementalTables, ChaosEquivalenceOnWaxman) {
  Rng rng(13);
  const auto topo = topo::make_waxman(24, 0.6, 0.4, rng);
  chaos_run(topo, /*seed=*/14, /*churn_steps=*/400);
}

// Checkpoint round trip MID-CHURN: the v2 format drops the derived SPT
// state and rebuilds it canonically on load; the audit at the end of
// load() plus the field-by-field comparison here pin that equivalence.
TEST(IncrementalTables, CheckpointRoundTripRestoresIncrementalState) {
  AuditGuard audit;
  Rng rng(21);
  const auto topo = topo::make_cairn();
  const auto costs = random_costs(topo, rng);
  MpdaHarness h(topo, costs, mpda_factory());
  h.bring_up_all(&rng);
  // Stop mid-convergence (dirty marks consumed, messages still in flight).
  for (int i = 0; i < 40 && h.deliver_one(rng); ++i) {
  }

  struct NullSink final : proto::LsuSink {
    void send(NodeId, const proto::LsuMessage&) override {}
  } null_sink;

  const auto n = static_cast<NodeId>(topo.num_nodes());
  for (NodeId i = 0; i < n; ++i) {
    ckpt::Writer w;
    h.node(i).save(w);
    ckpt::Reader r(w.payload());
    MpdaProcess restored(i, topo.num_nodes(), null_sink);
    restored.load(r);
    r.expect_end();

    const auto& orig = h.node(i);
    EXPECT_EQ(restored.tables().main_topology(), orig.tables().main_topology())
        << "router " << i;
    EXPECT_EQ(restored.passive(), orig.passive()) << "router " << i;
    for (NodeId j = 0; j < n; ++j) {
      EXPECT_EQ(restored.tables().distance(j), orig.tables().distance(j))
          << "router " << i << " dest " << j;
      EXPECT_EQ(restored.feasible_distance(j), orig.feasible_distance(j))
          << "router " << i << " dest " << j;
      EXPECT_EQ(restored.successors(j), orig.successors(j))
          << "router " << i << " dest " << j;
      for (const NodeId k : orig.tables().neighbors()) {
        EXPECT_EQ(restored.tables().distance_via(j, k),
                  orig.tables().distance_via(j, k))
            << "router " << i << " dest " << j << " via " << k;
      }
    }
  }
}

// Raw RouterTables churn: random LSU batches (including no-op re-sends,
// deletions and reports about unknown routers) against the audit.
TEST(IncrementalTables, RandomLsuBatchesStayConsistent) {
  AuditGuard audit;
  Rng rng(31);
  const int n = 12;
  proto::RouterTables t(0, n);
  t.link_up(1, 1.0);
  t.link_up(2, 2.0);
  std::vector<proto::LsuEntry> batch;
  for (int step = 0; step < 400; ++step) {
    const NodeId from = rng.uniform_int(1, 2);
    batch.clear();
    const int sz = rng.uniform_int(1, 4);
    for (int i = 0; i < sz; ++i) {
      const auto head = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      const auto tail = static_cast<NodeId>(rng.uniform_int(0, n - 1));
      if (head == tail) continue;
      if (rng.bernoulli(0.25)) {
        batch.push_back(proto::LsuEntry{head, tail, 0, proto::LsuOp::kDelete});
      } else {
        batch.push_back(proto::LsuEntry{head, tail, rng.uniform(0.5, 4.0),
                                        proto::LsuOp::kAddOrChange});
      }
    }
    t.apply_lsu(from, batch);
    if (rng.bernoulli(0.3)) t.mtu();
    if (rng.bernoulli(0.05)) t.link_cost_change(1, rng.uniform(0.5, 4.0));
    if (rng.bernoulli(0.02)) {
      t.link_down(2);
      t.link_up(2, rng.uniform(0.5, 4.0));
    }
  }
  t.mtu();
  // Final sanity: distances agree with a from-scratch Dijkstra over the
  // pruned main topology — the SPT preserves merged-table distances. (The
  // audit already checked the full state after every event; this keeps the
  // test meaningful even with audits disabled.)
  const auto truth = graph::dijkstra(n, t.main_topology().edges(), 0);
  for (NodeId j = 0; j < n; ++j) {
    EXPECT_EQ(t.distance(j), truth.dist[j]) << "dest " << j;
  }
}

}  // namespace
}  // namespace mdr::core
