// Unit tests for src/sim: event queue, links, traffic sources, and small
// end-to-end simulations validated against M/M/1 theory.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cost/delay_model.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/network_sim.h"
#include "sim/traffic.h"
#include "topo/builders.h"

namespace mdr::sim {
namespace {

using graph::LinkAttr;
using graph::NodeId;

// ------------------------------------------------------------- EventQueue

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilAdvancesClockPastLastEvent) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run_until(100.0);
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.processed(), 5u);
}

// ------------------------------------------------------------------ SimLink

struct LinkFixture {
  EventQueue events;
  std::vector<Packet> delivered;
  SimLink link;

  explicit LinkFixture(LinkAttr attr, SimLink::Options opts = {})
      : link(events, attr, cost::EstimatorKind::kObservable, 8000,
             [this](Packet p) { delivered.push_back(std::move(p)); }, opts) {}

  Packet data(double bits) {
    Packet p;
    p.kind = Packet::Kind::kData;
    p.size_bits = bits;
    p.created = events.now();
    return p;
  }
};

TEST(SimLink, SinglePacketLatencyIsServicePlusPropagation) {
  LinkFixture f(LinkAttr{1e6, 5e-3});
  f.link.enqueue(f.data(1000 - kHeaderBits));
  f.events.run_until(1.0);
  ASSERT_EQ(f.delivered.size(), 1u);
  // 1000 bits on 1 Mb/s = 1 ms serialization + 5 ms propagation.
  EXPECT_NEAR(f.events.processed() >= 2 ? 6e-3 : 0, 6e-3, 1e-12);
}

TEST(SimLink, FifoQueueingDelaysSecondPacket) {
  LinkFixture f(LinkAttr{1e6, 0.0});
  // Two back-to-back packets of 10^4 bits (incl. header): 10 ms each.
  f.link.enqueue(f.data(1e4 - kHeaderBits));
  f.link.enqueue(f.data(1e4 - kHeaderBits));
  std::vector<Time> arrivals;
  f.events.schedule_at(0.0101, [&] { arrivals.push_back(f.events.now()); });
  f.events.run_until(1.0);
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.link.data_packets(), 2u);
  EXPECT_NEAR(f.link.data_bits(), 2e4, 1.0);
}

TEST(SimLink, ControlPacketsPreemptDataQueue) {
  LinkFixture f(LinkAttr{1e6, 0.0});
  // Fill the data queue, then add a control packet: it must be delivered
  // before the queued data (though after the in-service packet).
  for (int i = 0; i < 3; ++i) f.link.enqueue(f.data(1e4 - kHeaderBits));
  Packet ctrl;
  ctrl.kind = Packet::Kind::kControl;
  ctrl.size_bits = 500;
  f.link.enqueue(std::move(ctrl));
  f.events.run_until(1.0);
  ASSERT_EQ(f.delivered.size(), 4u);
  EXPECT_EQ(f.delivered[1].kind, Packet::Kind::kControl);
}

TEST(SimLink, DownLinkDropsEverything) {
  LinkFixture f(LinkAttr{1e6, 1e-3});
  f.link.enqueue(f.data(1e4));
  f.link.enqueue(f.data(1e4));
  f.link.set_up(false);
  f.events.run_until(1.0);
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_GE(f.link.drops(), 2u);
  // Restored link works again.
  f.link.set_up(true);
  f.link.enqueue(f.data(1e4));
  f.events.run_until(2.0);
  EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(SimLink, QueueLimitDropsDataKeepsControl) {
  SimLink::Options opts;
  opts.queue_limit_bits = 1.5e4;
  LinkFixture f(LinkAttr{1e5, 0.0}, opts);  // slow link: queue builds
  for (int i = 0; i < 5; ++i) f.link.enqueue(f.data(1e4));
  EXPECT_GT(f.link.drops(), 0u);
  Packet ctrl;
  ctrl.kind = Packet::Kind::kControl;
  ctrl.size_bits = 500;
  EXPECT_TRUE(f.link.enqueue(std::move(ctrl)));  // control ignores the cap
}

TEST(SimLink, EstimatorWindowsAreIndependent) {
  LinkFixture f(LinkAttr{1e6, 1e-3});
  for (int i = 0; i < 50; ++i) f.link.enqueue(f.data(8000));
  f.events.run_until(1.0);
  const double short1 = f.link.take_short_estimate();
  EXPECT_GT(short1, 0);
  f.events.run_until(2.0);
  // Short window was reset at t=1 and saw nothing: near zero-load cost.
  const double short2 = f.link.take_short_estimate();
  EXPECT_LT(short2, short1);
  // The long window covers all the traffic since t=0.
  const double long1 = f.link.take_long_estimate();
  EXPECT_GT(long1, short2);
}

TEST(SimLink, UtilizationTracksOfferedLoad) {
  LinkFixture f(LinkAttr{1e6, 0.0});
  // 100 packets of ~10^4 bits = 1 s busy on a 1 Mb/s link.
  for (int i = 0; i < 100; ++i) f.link.enqueue(f.data(1e4 - kHeaderBits));
  f.events.run_until(2.0);
  EXPECT_NEAR(f.link.utilization_estimate(2.0), 0.5, 0.01);
}

// ------------------------------------------------------------------ traffic

TEST(PoissonSource, HitsTargetRate) {
  EventQueue events;
  double bits = 0;
  std::size_t packets = 0;
  FlowShape shape{0, 1, 0, 1e6, 8000};
  PoissonSource src(events, shape, Rng(42), [&](Packet p) {
    bits += p.size_bits;
    ++packets;
  });
  src.run(0, 200.0);
  events.run_until(201.0);
  EXPECT_NEAR(bits / 200.0, 1e6, 0.05e6);
  EXPECT_NEAR(static_cast<double>(packets) / 200.0, 125.0, 6.0);  // 1e6/8e3
}

TEST(PoissonSource, StopsAtStopTime) {
  EventQueue events;
  Time last = 0;
  FlowShape shape{0, 1, 0, 1e6, 8000};
  PoissonSource src(events, shape, Rng(7), [&](Packet p) { last = p.created; });
  src.run(1.0, 5.0);
  events.run_until(100.0);
  EXPECT_GE(last, 1.0);
  EXPECT_LE(last, 5.0);
}

TEST(OnOffSource, LongRunAverageMatchesRate) {
  EventQueue events;
  double bits = 0;
  FlowShape shape{0, 1, 0, 1e6, 8000};
  OnOffSource::Burstiness b{1.0, 3.0};
  OnOffSource src(events, shape, b, Rng(11), [&](Packet p) { bits += p.size_bits; });
  src.run(0, 2000.0);
  events.run_until(2001.0);
  EXPECT_NEAR(bits / 2000.0, 1e6, 0.1e6);
}

TEST(OnOffSource, BurstsExceedAverageRate) {
  // Within an ON period the instantaneous rate is (1+3)/1 = 4x the average.
  EventQueue events;
  std::vector<Time> stamps;
  FlowShape shape{0, 1, 0, 1e6, 8000};
  OnOffSource src(events, shape, {1.0, 3.0}, Rng(13),
                  [&](Packet p) { stamps.push_back(p.created); });
  src.run(0, 500.0);
  events.run_until(501.0);
  ASSERT_GT(stamps.size(), 100u);
  // Median interarrival is far below the 8 ms average spacing.
  std::vector<double> gaps;
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    gaps.push_back(stamps[i] - stamps[i - 1]);
  }
  std::sort(gaps.begin(), gaps.end());
  EXPECT_LT(gaps[gaps.size() / 2], 8e-3 * 0.5);
}

TEST(ParetoOnOffSource, LongRunAverageNearTarget) {
  EventQueue events;
  double bits = 0;
  FlowShape shape{0, 1, 0, 1e6, 8000};
  ParetoOnOffSource::Shape burst{1.6, 1.0, 3.0};
  ParetoOnOffSource src(events, shape, burst, Rng(17),
                        [&](Packet p) { bits += p.size_bits; });
  src.run(0, 5000.0);
  events.run_until(5001.0);
  // Heavy tails converge slowly: a generous band around the target.
  EXPECT_NEAR(bits / 5000.0, 1e6, 0.35e6);
}

TEST(ParetoOnOffSource, HeavierTailThanExponential) {
  // Compare the maximum quiet gap: Pareto off-periods produce far longer
  // extremes than exponential ones with the same mean.
  const auto max_gap = [](auto&& make_source) {
    EventQueue events;
    std::vector<Time> stamps;
    auto src = make_source(events, [&](Packet p) { stamps.push_back(p.created); });
    src.run(0, 3000.0);
    events.run_until(3001.0);
    double max_gap = 0;
    for (std::size_t i = 1; i < stamps.size(); ++i) {
      max_gap = std::max(max_gap, stamps[i] - stamps[i - 1]);
    }
    return max_gap;
  };
  FlowShape shape{0, 1, 0, 1e6, 8000};
  const double pareto_gap = max_gap([&](EventQueue& ev, InjectFn fn) {
    return ParetoOnOffSource(ev, shape, {1.3, 1.0, 3.0}, Rng(5), fn);
  });
  const double expo_gap = max_gap([&](EventQueue& ev, InjectFn fn) {
    return OnOffSource(ev, shape, {1.0, 3.0}, Rng(5), fn);
  });
  EXPECT_GT(pareto_gap, 2.0 * expo_gap);
}

TEST(SimLink, LossRateDropsApproximatelyThatFraction) {
  EventQueue events;
  std::size_t delivered = 0;
  SimLink::Options opts;
  opts.loss_rate = 0.2;
  SimLink link(events, LinkAttr{10e6, 1e-4}, cost::EstimatorKind::kUtilization,
               8000, [&](Packet) { ++delivered; }, opts, Rng(3));
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    Packet p;
    p.size_bits = 1000;
    link.enqueue(std::move(p));
  }
  events.run_until(10.0);
  EXPECT_NEAR(static_cast<double>(delivered) / kN, 0.8, 0.02);
  EXPECT_NEAR(static_cast<double>(link.drops()) / kN, 0.2, 0.02);
}

// --------------------------------------------------------------- end-to-end

TEST(NetworkSim, TwoNodeDelayMatchesMm1Theory) {
  graph::Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  topo.add_duplex(0, 1, LinkAttr{1e6, 2e-3});

  std::vector<topo::FlowSpec> flows{{"a", "b", 0.5e6}};
  SimConfig config;
  config.mode = RoutingMode::kMultipath;
  config.duration = 60;
  config.warmup = 5;
  config.seed = 3;
  const auto result = run_simulation(topo, flows, config);

  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_GT(result.flows[0].delivered, 1000u);
  EXPECT_EQ(result.dropped_no_route, 0u);
  // M/M/1 with rho=0.5 (plus headers): W = L/(C-f) + tau.
  const cost::LinkDelayModel model{1e6, 2e-3, 8000 + kHeaderBits};
  const double predicted = model.packet_delay(0.5e6 * (1 + kHeaderBits / 8000));
  EXPECT_NEAR(result.flows[0].mean_delay_s, predicted, 0.25 * predicted);
}

TEST(NetworkSim, LinePathForwardsAcrossRelays) {
  graph::Topology topo;
  topo.add_nodes(3);
  topo.add_duplex(0, 1, LinkAttr{10e6, 1e-3});
  topo.add_duplex(1, 2, LinkAttr{10e6, 1e-3});
  std::vector<topo::FlowSpec> flows{{"n0", "n2", 1e6}};
  SimConfig config;
  config.duration = 20;
  config.warmup = 3;
  const auto result = run_simulation(topo, flows, config);
  EXPECT_GT(result.flows[0].delivered, 500u);
  // Two hops: at least two propagation delays plus two serializations.
  EXPECT_GT(result.flows[0].mean_delay_s, 2e-3);
  EXPECT_EQ(result.dropped_ttl, 0u);
}

TEST(NetworkSim, MultipathSpreadsLoadAcrossParallelPaths) {
  // Two disjoint equal paths; MP must use both, SP only one.
  graph::Topology topo;
  topo.add_nodes(4);
  const LinkAttr attr{10e6, 1e-3};
  topo.add_duplex(0, 1, attr);
  topo.add_duplex(0, 2, attr);
  topo.add_duplex(1, 3, attr);
  topo.add_duplex(2, 3, attr);
  std::vector<topo::FlowSpec> flows{{"n0", "n3", 4e6}};

  SimConfig config;
  config.duration = 30;
  config.warmup = 5;
  config.ts = 1.0;
  const auto mp = run_simulation(topo, flows, config);

  double via1 = 0, via2 = 0;
  for (const auto& l : mp.links) {
    if (l.from == "n0" && l.to == "n1") via1 = l.data_bits;
    if (l.from == "n0" && l.to == "n2") via2 = l.data_bits;
  }
  EXPECT_GT(via1, 0.0);
  EXPECT_GT(via2, 0.0);
  // Roughly balanced (within 3x either way is ample for a stochastic run).
  EXPECT_LT(std::max(via1, via2) / std::min(via1, via2), 3.0);

  // SP with short-term updates disabled (Ts beyond the horizon) pins all
  // traffic to the one best path. (With Ts active SP instead *flips* between
  // the symmetric paths as their costs see-saw — the oscillation the paper
  // attributes to delay-coupled single-path routing — so the time-averaged
  // split is uninformative.)
  config.mode = RoutingMode::kSinglePath;
  config.ts = 1000.0;
  config.tl = 1000.0;  // long-term floods would also re-pick the best path
  const auto sp = run_simulation(topo, flows, config);
  double sp_via1 = 0, sp_via2 = 0;
  for (const auto& l : sp.links) {
    if (l.from == "n0" && l.to == "n1") sp_via1 = l.data_bits;
    if (l.from == "n0" && l.to == "n2") sp_via2 = l.data_bits;
  }
  EXPECT_EQ(std::min(sp_via1, sp_via2), 0.0);
  EXPECT_GT(std::max(sp_via1, sp_via2), 0.0);
}

TEST(NetworkSim, StaticPhiModeFollowsInstalledSplit) {
  graph::Topology topo;
  topo.add_nodes(4);
  const LinkAttr attr{10e6, 1e-3};
  topo.add_duplex(0, 1, attr);
  topo.add_duplex(0, 2, attr);
  topo.add_duplex(1, 3, attr);
  topo.add_duplex(2, 3, attr);

  flow::RoutingParameters phi(topo);
  const auto out_index = [&](NodeId from, NodeId to) {
    const auto links = topo.out_links(from);
    for (std::size_t x = 0; x < links.size(); ++x) {
      if (topo.link(links[x]).to == to) return x;
    }
    return links.size();
  };
  phi.set(0, 3, out_index(0, 1), 0.25);
  phi.set(0, 3, out_index(0, 2), 0.75);
  phi.set_single_path(1, 3, out_index(1, 3));
  phi.set_single_path(2, 3, out_index(2, 3));

  std::vector<topo::FlowSpec> flows{{"n0", "n3", 2e6}};
  SimConfig config;
  config.mode = RoutingMode::kStatic;
  config.static_phi = &phi;
  config.duration = 40;
  config.warmup = 5;
  const auto result = run_simulation(topo, flows, config);
  double via1 = 0, via2 = 0;
  for (const auto& l : result.links) {
    if (l.from == "n0" && l.to == "n1") via1 = l.data_bits;
    if (l.from == "n0" && l.to == "n2") via2 = l.data_bits;
  }
  EXPECT_NEAR(via1 / (via1 + via2), 0.25, 0.03);
  EXPECT_EQ(result.control_messages, 0u);  // no protocol in static mode
}

TEST(NetworkSim, LinkFailureReroutesTraffic) {
  graph::Topology topo;
  topo.add_nodes(4);
  const LinkAttr attr{10e6, 1e-3};
  topo.add_duplex(0, 1, attr);
  topo.add_duplex(0, 2, attr);
  topo.add_duplex(1, 3, attr);
  topo.add_duplex(2, 3, attr);
  std::vector<topo::FlowSpec> flows{{"n0", "n3", 2e6}};

  SimConfig config;
  config.duration = 30;
  config.warmup = 5;
  config.link_toggles.push_back(SimConfig::LinkToggle{20.0, "n0", "n1", false});
  const auto result = run_simulation(topo, flows, config);
  // Traffic keeps flowing after the failure (some in-flight loss is fine).
  EXPECT_GT(result.flows[0].delivered, 2000u);
  double via2 = 0;
  for (const auto& l : result.links) {
    if (l.from == "n0" && l.to == "n2") via2 = l.data_bits;
  }
  EXPECT_GT(via2, 0.0);
}

TEST(NetworkSim, TimeseriesWindowsCoverTheRun) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.4);
  SimConfig config;
  config.duration = 20;
  config.warmup = 4;
  config.timeseries_interval = 2.0;
  const auto result = run_simulation(topo, flows, config);
  // traffic_start(3) + warmup(4) + duration(20) + drain: ~13 windows.
  ASSERT_GE(result.timeseries.size(), 12u);
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < result.timeseries.size(); ++i) {
    if (i > 0) {
      EXPECT_NEAR(result.timeseries[i].t - result.timeseries[i - 1].t, 2.0,
                  1e-9);
    }
    delivered += result.timeseries[i].delivered;
    if (result.timeseries[i].delivered > 0) {
      EXPECT_GT(result.timeseries[i].mean_delay_s, 0.0);
    }
  }
  // The windows count every delivery (measured or not): at least as many as
  // the measured total.
  EXPECT_GE(delivered, result.delivered);
}

TEST(NetworkSim, LfiCheckerRunsCleanOnMp) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.6);
  SimConfig config;
  config.duration = 15;
  config.warmup = 3;
  config.lfi_check_interval = 0.02;
  config.link_toggles.push_back(SimConfig::LinkToggle{12.0, "0", "9", false});
  const auto result = run_simulation(topo, flows, config);
  EXPECT_GT(result.lfi_checks, 500u);
  EXPECT_EQ(result.lfi_violations, 0u);
}

TEST(NetworkSim, DeterministicForFixedSeed) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.3);
  SimConfig config;
  config.duration = 5;
  config.warmup = 2;
  config.seed = 99;
  const auto a = run_simulation(topo, flows, config);
  const auto b = run_simulation(topo, flows, config);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].delivered, b.flows[i].delivered);
    EXPECT_DOUBLE_EQ(a.flows[i].mean_delay_s, b.flows[i].mean_delay_s);
  }
  EXPECT_EQ(a.events_processed, b.events_processed);
}

}  // namespace
}  // namespace mdr::sim
