// Unit tests for src/proto: LSU codec, link-state tables, NTU/MTU, and PDA
// end-to-end convergence (paper Theorem 2).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "harness.h"
#include "proto/checksum.h"
#include "proto/lsu.h"
#include "proto/pda.h"
#include "proto/tables.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace mdr::proto {
namespace {

using graph::Cost;
using graph::NodeId;

// ------------------------------------------------------------------- codec

TEST(LsuCodec, RoundTripsAllFields) {
  LsuMessage msg;
  msg.sender = 7;
  msg.ack = true;
  msg.entries = {
      LsuEntry{1, 2, 3.25, LsuOp::kAddOrChange},
      LsuEntry{2, 9, graph::kInfCost, LsuOp::kDelete},
  };
  const auto wire = encode(msg);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(LsuCodec, EmptyAckMessage) {
  const LsuMessage msg{3, true, {}};
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
  EXPECT_FALSE(msg.requires_ack());
}

TEST(LsuCodec, WireSizeMatchesEncoding) {
  LsuMessage msg{1, false, {LsuEntry{0, 1, 2.0, LsuOp::kAddOrChange}}};
  EXPECT_EQ(msg.wire_size_bits(), encode(msg).size() * 8);
  EXPECT_TRUE(msg.requires_ack());
}

TEST(LsuCodec, RejectsTruncation) {
  const LsuMessage msg{1, false, {LsuEntry{0, 1, 2.0, LsuOp::kAddOrChange}}};
  auto wire = encode(msg);
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    EXPECT_FALSE(
        decode(std::span(wire.data(), wire.size() - cut)).has_value())
        << "cut " << cut;
  }
}

TEST(LsuCodec, RejectsTrailingBytes) {
  auto wire = encode(LsuMessage{1, false, {}});
  wire.push_back(0);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(LsuCodec, RejectsBadOpAndFlags) {
  auto wire = encode(LsuMessage{1, false, {LsuEntry{0, 1, 2.0, LsuOp::kAddOrChange}}});
  wire[4] = 0xFF;  // flags byte
  EXPECT_FALSE(decode(wire).has_value());
  auto wire2 = encode(LsuMessage{1, false, {LsuEntry{0, 1, 2.0, LsuOp::kAddOrChange}}});
  wire2.back() = 0xFF;  // entry op byte
  EXPECT_FALSE(decode(wire2).has_value());
}

// Recomputes the checksum trailer after the test tampered with the body, so
// the assertions below hit the structural checks rather than the checksum.
void refresh_checksum(std::vector<std::uint8_t>& wire) {
  const std::span<const std::uint8_t> body(wire.data(), wire.size() - 4);
  const std::uint32_t sum = checksum32(body);
  for (int i = 0; i < 4; ++i) {
    wire[body.size() + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

TEST(LsuCodec, RejectsEverySingleBitFlip) {
  // The chaos corruption model flips one random payload bit; the checksum
  // must catch all of them — in particular flips inside seq, which are
  // structurally valid but would poison the staleness filter.
  LsuMessage msg;
  msg.sender = 3;
  msg.seq = 17;
  msg.entries = {LsuEntry{1, 2, 3.25, LsuOp::kAddOrChange},
                 LsuEntry{2, 9, graph::kInfCost, LsuOp::kDelete}};
  const auto wire = encode(msg);
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    auto flipped = wire;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(decode(flipped).has_value()) << "bit " << bit;
  }
}

TEST(LsuCodec, RejectsLengthLyingCount) {
  auto wire = encode(LsuMessage{1, false,
                                {LsuEntry{0, 1, 2.0, LsuOp::kAddOrChange},
                                 LsuEntry{1, 2, 3.0, LsuOp::kAddOrChange}}});
  // Count claims more/fewer entries than the buffer holds (checksum made
  // valid again so only the length check can reject).
  for (const std::uint8_t lie : {0, 1, 3, 200}) {
    auto tampered = wire;
    tampered[13] = lie;  // count low byte (2 entries fit in one byte)
    refresh_checksum(tampered);
    EXPECT_FALSE(decode(tampered).has_value()) << "count " << int(lie);
  }
}

TEST(LsuCodec, RejectsNanAndNegativeCosts) {
  const LsuMessage msg{1, false, {LsuEntry{0, 1, 2.0, LsuOp::kAddOrChange}}};
  for (const double bad : {std::nan(""), -1.0, -graph::kInfCost}) {
    auto tampered = msg;
    tampered.entries[0].cost = bad;
    auto wire = encode(tampered);
    EXPECT_FALSE(decode(wire).has_value());
  }
}

TEST(LsuCodec, RandomBuffersNeverDecode) {
  // Random bytes are not a valid message: structurally implausible ones are
  // rejected by the length/range checks, plausible ones by the checksum
  // (2^-32 per trial of a false accept; with 20k trials, never in practice).
  mdr::Rng rng(11);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform_int(0, 96)));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    EXPECT_FALSE(decode(bytes).has_value());
  }
}

// ------------------------------------------------------------------ tables

TEST(LinkStateTable, SetRemoveQuery) {
  LinkStateTable t;
  EXPECT_TRUE(t.empty());
  t.set(0, 1, 2.5);
  t.set(1, 2, 1.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.cost(0, 1), 2.5);
  EXPECT_FALSE(t.cost(1, 0).has_value());
  t.remove(0, 1);
  EXPECT_FALSE(t.cost(0, 1).has_value());
}

TEST(LinkStateTable, ApplyEntries) {
  LinkStateTable t;
  t.apply(LsuEntry{0, 1, 3.0, LsuOp::kAddOrChange});
  EXPECT_EQ(t.cost(0, 1), 3.0);
  t.apply(LsuEntry{0, 1, 4.0, LsuOp::kAddOrChange});
  EXPECT_EQ(t.cost(0, 1), 4.0);
  t.apply(LsuEntry{0, 1, 0, LsuOp::kDelete});
  EXPECT_TRUE(t.empty());
}

TEST(LinkStateTable, DiffProducesMinimalUpdate) {
  LinkStateTable before, after;
  before.set(0, 1, 1.0);  // unchanged
  before.set(0, 2, 2.0);  // re-costed
  before.set(1, 2, 3.0);  // deleted
  after.set(0, 1, 1.0);
  after.set(0, 2, 5.0);
  after.set(2, 3, 4.0);  // added
  const auto d = LinkStateTable::diff(before, after);
  ASSERT_EQ(d.size(), 3u);
  // Applying the diff to `before` must yield `after`.
  for (const auto& e : d) before.apply(e);
  EXPECT_EQ(before, after);
}

TEST(LinkStateTable, DiffOrderIsAddsInAfterOrderThenDeletes) {
  // The wire contract (and the incremental MTU, which reproduces diffs
  // without materializing `before`): kAddOrChange entries first, in the
  // key order of `after`, then kDelete entries in the key order of
  // `before`. Interleaved keys exercise the merge walk's three branches.
  LinkStateTable before, after;
  before.set(0, 1, 1.0);  // deleted
  before.set(1, 2, 2.0);  // re-costed
  before.set(3, 4, 3.0);  // deleted
  before.set(5, 6, 4.0);  // unchanged
  after.set(0, 2, 1.5);  // added (sorts before the first delete's key)
  after.set(1, 2, 9.0);
  after.set(4, 0, 2.5);  // added
  after.set(5, 6, 4.0);
  const auto d = LinkStateTable::diff(before, after);
  ASSERT_EQ(d.size(), 5u);
  EXPECT_EQ(d[0].op, LsuOp::kAddOrChange);
  EXPECT_EQ((std::pair{d[0].head, d[0].tail}), (std::pair<NodeId, NodeId>{0, 2}));
  EXPECT_EQ(d[1].op, LsuOp::kAddOrChange);
  EXPECT_EQ((std::pair{d[1].head, d[1].tail}), (std::pair<NodeId, NodeId>{1, 2}));
  EXPECT_DOUBLE_EQ(d[1].cost, 9.0);
  EXPECT_EQ(d[2].op, LsuOp::kAddOrChange);
  EXPECT_EQ((std::pair{d[2].head, d[2].tail}), (std::pair<NodeId, NodeId>{4, 0}));
  EXPECT_EQ(d[3].op, LsuOp::kDelete);
  EXPECT_EQ((std::pair{d[3].head, d[3].tail}), (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(d[4].op, LsuOp::kDelete);
  EXPECT_EQ((std::pair{d[4].head, d[4].tail}), (std::pair<NodeId, NodeId>{3, 4}));
}

TEST(LinkStateTable, DiffOfIdenticalTablesIsEmpty) {
  LinkStateTable a;
  a.set(0, 1, 1.0);
  a.set(2, 3, 2.0);
  EXPECT_TRUE(LinkStateTable::diff(a, a).empty());
  const LinkStateTable empty;
  EXPECT_TRUE(LinkStateTable::diff(empty, empty).empty());
  // One-sided cases walk each tail of the merge.
  const auto only_adds = LinkStateTable::diff(empty, a);
  ASSERT_EQ(only_adds.size(), 2u);
  EXPECT_EQ(only_adds[0].op, LsuOp::kAddOrChange);
  const auto only_dels = LinkStateTable::diff(a, empty);
  ASSERT_EQ(only_dels.size(), 2u);
  EXPECT_EQ(only_dels[0].op, LsuOp::kDelete);
  EXPECT_EQ(only_dels[1].op, LsuOp::kDelete);
}

TEST(LinkStateTable, MutatorsReportWhetherTheTableChanged) {
  // The dirty-set machinery keys off these booleans.
  LinkStateTable t;
  EXPECT_TRUE(t.set(0, 1, 1.0));    // insert
  EXPECT_FALSE(t.set(0, 1, 1.0));   // identical re-set: no-op
  EXPECT_TRUE(t.set(0, 1, 2.0));    // re-cost
  EXPECT_FALSE(t.remove(4, 5));     // absent
  EXPECT_TRUE(t.remove(0, 1));
  EXPECT_TRUE(t.apply(LsuEntry{1, 2, 3.0, LsuOp::kAddOrChange}));
  EXPECT_FALSE(t.apply(LsuEntry{1, 2, 3.0, LsuOp::kAddOrChange}));
  EXPECT_TRUE(t.apply(LsuEntry{1, 2, 0, LsuOp::kDelete}));
  EXPECT_FALSE(t.apply(LsuEntry{1, 2, 0, LsuOp::kDelete}));
}

TEST(LinkStateTable, LinksFromFiltersByHead) {
  LinkStateTable t;
  t.set(1, 0, 1.0);
  t.set(1, 2, 2.0);
  t.set(2, 3, 3.0);
  const auto from1 = t.links_from(1);
  ASSERT_EQ(from1.size(), 2u);
  EXPECT_EQ(from1[0].first, 0);
  EXPECT_EQ(from1[1].first, 2);
  EXPECT_TRUE(t.links_from(0).empty());
}

TEST(LinkStateTable, EdgesSnapshot) {
  LinkStateTable t;
  t.set(0, 1, 1.5);
  const auto edges = t.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, 0);
  EXPECT_EQ(edges[0].to, 1);
  EXPECT_EQ(edges[0].cost, 1.5);
}

// ------------------------------------------------------------ RouterTables

TEST(RouterTables, LinkLifecycle) {
  RouterTables t(0, 4);
  EXPECT_TRUE(t.neighbors().empty());
  t.link_up(1, 2.0);
  EXPECT_TRUE(t.is_neighbor(1));
  EXPECT_EQ(t.link_cost(1), 2.0);
  t.link_cost_change(1, 3.0);
  EXPECT_EQ(t.link_cost(1), 3.0);
  t.link_down(1);
  EXPECT_FALSE(t.is_neighbor(1));
  EXPECT_EQ(t.link_cost(1), graph::kInfCost);
}

TEST(RouterTables, ApplyLsuComputesNeighborDistances) {
  RouterTables t(0, 4);
  t.link_up(1, 1.0);
  // Neighbor 1 reports its tree: 1->2 (2.0), 2->3 (1.0).
  const LsuEntry entries[] = {{1, 2, 2.0, LsuOp::kAddOrChange},
                              {2, 3, 1.0, LsuOp::kAddOrChange}};
  t.apply_lsu(1, entries);
  EXPECT_DOUBLE_EQ(t.distance_via(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(t.distance_via(2, 1), 2.0);
  EXPECT_DOUBLE_EQ(t.distance_via(3, 1), 3.0);
  EXPECT_EQ(t.distance_via(3, 2), graph::kInfCost);  // unknown neighbor
}

TEST(RouterTables, MtuMergesAdjacentLinksAndPrunes) {
  RouterTables t(0, 3);
  t.link_up(1, 1.0);
  t.link_up(2, 5.0);
  const LsuEntry from1[] = {{1, 2, 1.0, LsuOp::kAddOrChange}};
  t.apply_lsu(1, from1);
  const auto changes = t.mtu();
  EXPECT_FALSE(changes.empty());
  EXPECT_DOUBLE_EQ(t.distance(1), 1.0);
  EXPECT_DOUBLE_EQ(t.distance(2), 2.0);  // via 1, cheaper than direct (5.0)
  // The pruned tree keeps 0->1 and 1->2 but not the expensive 0->2.
  EXPECT_TRUE(t.main_topology().cost(0, 1).has_value());
  EXPECT_TRUE(t.main_topology().cost(1, 2).has_value());
  EXPECT_FALSE(t.main_topology().cost(0, 2).has_value());
}

TEST(RouterTables, MtuPrefersNeighborWithShortestDistanceToHead) {
  // Fig. 3: conflicting reports about link (3, ...) resolve in favor of the
  // neighbor closest to node 3.
  RouterTables t(0, 5);
  t.link_up(1, 1.0);   // close neighbor
  t.link_up(2, 10.0);  // far neighbor
  // Neighbor 1: 1->3 cost 1; 3->4 cost 7 (its view of 3's outgoing link).
  const LsuEntry from1[] = {{1, 3, 1.0, LsuOp::kAddOrChange},
                            {3, 4, 7.0, LsuOp::kAddOrChange}};
  // Neighbor 2: 2->3 cost 1; 3->4 cost 2 (a conflicting, stale view).
  const LsuEntry from2[] = {{2, 3, 1.0, LsuOp::kAddOrChange},
                            {3, 4, 2.0, LsuOp::kAddOrChange}};
  t.apply_lsu(1, from1);
  t.apply_lsu(2, from2);
  t.mtu();
  // Distance to 3 via 1 = 1+1 = 2; via 2 = 10+1 = 11: neighbor 1 wins, so
  // 3->4 is believed to cost 7 and D(4) = 2 + 7.
  EXPECT_DOUBLE_EQ(t.distance(3), 2.0);
  EXPECT_DOUBLE_EQ(t.distance(4), 9.0);
}

TEST(RouterTables, MtuDiffIsIncremental) {
  RouterTables t(0, 3);
  t.link_up(1, 1.0);
  const auto first = t.mtu();
  ASSERT_EQ(first.size(), 1u);  // 0->1 appeared
  const auto second = t.mtu();
  EXPECT_TRUE(second.empty());  // nothing changed
  t.link_cost_change(1, 2.0);
  const auto third = t.mtu();
  ASSERT_EQ(third.size(), 1u);  // 0->1 re-costed
  EXPECT_DOUBLE_EQ(third[0].cost, 2.0);
}

// --------------------------------------------------------------------- PDA

using PdaHarness = test::ProtocolHarness<PdaProcess>;

PdaHarness::Factory pda_factory() {
  return [](NodeId self, std::size_t n, LsuSink& sink) {
    return std::make_unique<PdaProcess>(self, n, sink);
  };
}

std::vector<Cost> uniform_costs(const graph::Topology& topo, Cost c = 1.0) {
  return std::vector<Cost>(topo.num_links(), c);
}

// Checks Theorem 2: every router's D_j equals the global shortest distance.
void expect_converged_distances(PdaHarness& h,
                                const std::vector<Cost>& costs) {
  const auto& topo = h.topology();
  std::vector<graph::CostedEdge> edges;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    edges.push_back(
        graph::CostedEdge{topo.link(id).from, topo.link(id).to, costs[id]});
  }
  for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
    const auto truth = graph::dijkstra(topo.num_nodes(), edges, i);
    for (NodeId j = 0; j < static_cast<NodeId>(topo.num_nodes()); ++j) {
      EXPECT_NEAR(h.node(i).tables().distance(j), truth.dist[j], 1e-9)
          << "router " << i << " dest " << j;
    }
  }
}

TEST(Pda, ConvergesOnRingToGlobalShortestPaths) {
  const auto topo = topo::make_ring(6);
  const auto costs = uniform_costs(topo);
  PdaHarness h(topo, costs, pda_factory());
  Rng rng(1);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  expect_converged_distances(h, costs);
}

TEST(Pda, ConvergesOnCairnAndNet1) {
  for (const auto* which : {"cairn", "net1"}) {
    const auto topo = std::string(which) == "cairn" ? topo::make_cairn()
                                                    : topo::make_net1();
    Rng rng(2);
    std::vector<Cost> costs;
    for (std::size_t i = 0; i < topo.num_links(); ++i) {
      costs.push_back(rng.uniform(0.5, 3.0));
    }
    PdaHarness h(topo, costs, pda_factory());
    h.bring_up_all(&rng);
    h.run_to_quiescence(rng);
    expect_converged_distances(h, costs);
  }
}

TEST(Pda, ReconvergesAfterCostChange) {
  const auto topo = topo::make_ring(5);
  auto costs = uniform_costs(topo);
  PdaHarness h(topo, costs, pda_factory());
  Rng rng(3);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);

  // Make one direction of one ring link expensive; routes flip around.
  const graph::LinkId id = topo.find_link(0, 1);
  costs[id] = 10.0;
  h.change_cost(0, 1, 10.0);
  h.run_to_quiescence(rng);
  expect_converged_distances(h, costs);
  EXPECT_DOUBLE_EQ(h.node(0).tables().distance(1), 4.0);  // the long way
}

TEST(Pda, ReconvergesAfterLinkFailureAndRecovery) {
  const auto topo = topo::make_ring(5);
  const auto costs = uniform_costs(topo);
  PdaHarness h(topo, costs, pda_factory());
  Rng rng(4);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);

  h.fail_duplex(0, 1);
  h.run_to_quiescence(rng);
  EXPECT_DOUBLE_EQ(h.node(0).tables().distance(1), 4.0);

  h.restore_duplex(0, 1);
  h.run_to_quiescence(rng);
  expect_converged_distances(h, costs);
}

TEST(Pda, PartitionYieldsInfiniteDistances) {
  // Two triangles joined by one duplex bridge; cutting it partitions.
  graph::Topology topo;
  topo.add_nodes(6);
  topo.add_duplex(0, 1);
  topo.add_duplex(1, 2);
  topo.add_duplex(2, 0);
  topo.add_duplex(3, 4);
  topo.add_duplex(4, 5);
  topo.add_duplex(5, 3);
  topo.add_duplex(2, 3);
  const auto costs = uniform_costs(topo);
  PdaHarness h(topo, costs, pda_factory());
  Rng rng(5);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  EXPECT_LT(h.node(0).tables().distance(5), graph::kInfCost);

  h.fail_duplex(2, 3);
  h.run_to_quiescence(rng);
  EXPECT_EQ(h.node(0).tables().distance(5), graph::kInfCost);
  EXPECT_EQ(h.node(5).tables().distance(0), graph::kInfCost);
  EXPECT_LT(h.node(0).tables().distance(1), graph::kInfCost);
}

TEST(Pda, LemmaOneNHopProgressUnderSynchronizedRounds) {
  // Paper Lemma 1 / Theorem 2: if every neighbor table holds an n-hop
  // minimum tree, MTU yields an (n+1)-hop minimum tree. Drive the network
  // in lockstep rounds (every round delivers exactly the messages produced
  // by the previous round) and check the sandwich after round r:
  //   true shortest distance <= D <= r-hop minimum distance.
  Rng rng(31);
  const auto topo = topo::make_random(12, 0.15, rng);
  std::vector<Cost> costs;
  std::vector<graph::CostedEdge> edges;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    costs.push_back(rng.uniform(0.5, 3.0));
    edges.push_back(graph::CostedEdge{topo.link(id).from, topo.link(id).to,
                                      costs.back()});
  }
  const auto n = static_cast<NodeId>(topo.num_nodes());

  // Lockstep pump: round buffers instead of free-running queues.
  struct RoundSink final : LsuSink {
    void send(NodeId neighbor, const LsuMessage& msg) override {
      outbox->push_back({neighbor, msg});
    }
    std::vector<std::pair<NodeId, LsuMessage>>* outbox = nullptr;
  };
  std::vector<std::pair<NodeId, LsuMessage>> current, next;
  std::vector<std::unique_ptr<RoundSink>> sinks;
  std::vector<std::unique_ptr<PdaProcess>> nodes;
  for (NodeId i = 0; i < n; ++i) {
    sinks.push_back(std::make_unique<RoundSink>());
    sinks.back()->outbox = &next;
    nodes.push_back(std::make_unique<PdaProcess>(i, topo.num_nodes(),
                                                 *sinks.back()));
  }
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    const auto& l = topo.link(id);
    nodes[l.from]->on_link_up(l.to, costs[id]);
  }

  std::vector<std::vector<Cost>> shortest;
  for (NodeId i = 0; i < n; ++i) {
    shortest.push_back(graph::bellman_ford(topo.num_nodes(), edges, i));
  }

  // The MTU conflict-resolution rule (trust the neighbor nearest the head)
  // can trail the idealized hop schedule by a round when that neighbor is
  // itself behind — the paper's proof only promises "within a finite time"
  // per hop — so the upper bound allows one round of slack.
  for (std::size_t round = 1; round < topo.num_nodes() + 4; ++round) {
    std::swap(current, next);
    next.clear();
    for (const auto& [to, msg] : current) nodes[to]->on_lsu(msg);
    const std::size_t credit = round > 1 ? round - 1 : 1;
    for (NodeId i = 0; i < n; ++i) {
      const auto rhop = graph::bellman_ford(topo.num_nodes(), edges, i, credit);
      for (NodeId j = 0; j < n; ++j) {
        const Cost d = nodes[i]->tables().distance(j);
        EXPECT_GE(d, shortest[i][j] - 1e-9)
            << "round " << round << " " << i << "->" << j;
        EXPECT_LE(d, rhop[j] + 1e-9)
            << "round " << round << " " << i << "->" << j;
      }
    }
    if (next.empty()) break;
  }
  // At the end everything is exact.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      EXPECT_NEAR(nodes[i]->tables().distance(j), shortest[i][j], 1e-9);
    }
  }
}

TEST(Pda, QuiescesWithBoundedMessages) {
  const auto topo = topo::make_grid(3, 3);
  PdaHarness h(topo, uniform_costs(topo), pda_factory());
  Rng rng(6);
  h.bring_up_all(&rng);
  const std::size_t steps = h.run_to_quiescence(rng, 100000);
  EXPECT_GT(steps, 0u);
  EXPECT_EQ(h.in_flight(), 0u);
}

}  // namespace
}  // namespace mdr::proto
