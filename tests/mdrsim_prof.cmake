# ctest end-to-end check of the profiler's two headline guarantees
# (docs/OBSERVABILITY.md "Profiling & convergence tracing"):
#   1. Profiling is observation-only: stdout of a --prof-out run is
#      byte-identical to the same run without it (the profiler writes only
#      to stderr, the trace file and extra --json blocks).
#   2. The sim-time half of the trace is deterministic: re-running the same
#      seed reproduces every pid-1 (convergence) event byte for byte, while
#      host-time (pid-0) events are free to vary.
# When a python3 is on PATH the trace is also validated against the
# trace-event schema via scripts/check_telemetry.py.
#
# Expected definitions (see tests/CMakeLists.txt):
#   MDRSIM   - path to the mdrsim executable
#   SCENARIO - path to the scenario file to run
#   OUTDIR   - writable directory for outputs
#   CHECKER  - path to scripts/check_telemetry.py

function(run_mdrsim out_var)
  execute_process(
    COMMAND "${MDRSIM}" "${SCENARIO}" ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "mdrsim ${ARGN} exited with ${rc}\nstdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
  set(${out_var} "${stdout}" PARENT_SCOPE)
endfunction()

# 1. Observation-only: identical stdout with profiling on and off.
run_mdrsim(base_out)
run_mdrsim(prof_out --prof-out "${OUTDIR}/prof_trace1.json"
  --json "${OUTDIR}/prof_run.json")
if(NOT base_out STREQUAL prof_out)
  message(FATAL_ERROR
    "stdout changed when profiling was enabled; profiling must be "
    "observation-only")
endif()

# The profiled --json report must carry the prof and convergence blocks.
file(READ "${OUTDIR}/prof_run.json" run_doc)
foreach(block prof convergence)
  if(NOT run_doc MATCHES "\"${block}\": {")
    message(FATAL_ERROR "--json is missing the '${block}' block")
  endif()
endforeach()
string(JSON schema GET "${run_doc}" prof schema)
if(NOT schema STREQUAL "mdr-prof-1")
  message(FATAL_ERROR "prof block schema is '${schema}', want mdr-prof-1")
endif()

# 2. Same-seed determinism of the sim-time trace view. Each trace event is
# one line, so the pid-1 (convergence) subset can be filtered textually;
# pid-0 lines carry host time and are expected to differ. Lines are
# extracted with REGEX MATCHALL on the raw text rather than file(STRINGS):
# the file's first line holds an unbalanced '[', and CMake's list parser
# treats [...;...] as one bracketed element, which would fold the whole
# document into a single "line".
run_mdrsim(prof_out2 --prof-out "${OUTDIR}/prof_trace2.json")
foreach(n 1 2)
  file(READ "${OUTDIR}/prof_trace${n}.json" doc)
  string(REGEX MATCHALL "[^\n]*\"pid\": 1,[^\n]*" sim_view${n} "${doc}")
endforeach()
if(sim_view1 STREQUAL "")
  message(FATAL_ERROR "trace has no pid-1 (sim-time) events")
endif()
if(NOT sim_view1 STREQUAL sim_view2)
  message(FATAL_ERROR
    "sim-time trace events differ across same-seed reruns (compare "
    "${OUTDIR}/prof_trace1.json vs ${OUTDIR}/prof_trace2.json)")
endif()

# Full trace-event schema validation + deterministic-view comparison when
# python3 is available (always true in CI).
find_program(PYTHON3 python3)
if(PYTHON3)
  execute_process(
    COMMAND "${PYTHON3}" "${CHECKER}"
      --prof-trace "${OUTDIR}/prof_trace1.json"
      --prof-compare "${OUTDIR}/prof_trace2.json"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace validation failed:\n${stdout}\n${stderr}")
  endif()
  message(STATUS "${stdout}")
endif()

message(STATUS
  "mdrsim prof OK: stdout unchanged, sim-time trace deterministic")
