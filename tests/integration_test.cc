// Integration tests: cross-module behaviour on the paper's topologies —
// the full MP stack vs OPT vs SP in the packet simulator, consistency
// between the flow-level and packet-level planes, and agreement between the
// three routing-protocol realizations (PDA, MPDA, MPATH).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/mpda.h"
#include "graph/dijkstra.h"
#include "harness.h"
#include "mpath/mpath.h"
#include "proto/pda.h"
#include "sim/experiment.h"
#include "topo/builders.h"
#include "topo/flows.h"

namespace mdr {
namespace {

using graph::Cost;
using graph::NodeId;

sim::SimConfig quick_config(sim::RoutingMode mode) {
  sim::SimConfig config;
  config.mode = mode;
  config.traffic_start = 3;
  config.warmup = 8;
  config.duration = 30;
  config.tl = 10;
  config.ts = 2;
  config.seed = 11;
  return config;
}

TEST(Integration, Net1MpBeatsSpAndApproachesOpt) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.92);
  const sim::ExperimentSpec opt_spec{topo, flows,
                                     quick_config(sim::RoutingMode::kStatic),
                                     sim::EngineSpec{}};
  const auto ref = sim::compute_opt_reference(opt_spec);
  ASSERT_TRUE(ref.feasible);

  const auto opt = sim::run_with_static_phi(opt_spec, ref.phi);
  const auto mp =
      sim::run_simulation(topo, flows, quick_config(sim::RoutingMode::kMultipath));
  auto sp_config = quick_config(sim::RoutingMode::kSinglePath);
  sp_config.ts = 10;
  const auto sp = sim::run_simulation(topo, flows, sp_config);

  EXPECT_GT(mp.delivered, 10000u);
  EXPECT_EQ(mp.dropped_ttl, 0u);  // no transient loops long enough for TTL
  // MP within 25% of OPT on the short horizon; SP strictly worse than MP.
  EXPECT_LT(mp.avg_delay_s, opt.avg_delay_s * 1.25);
  EXPECT_GT(sp.avg_delay_s, mp.avg_delay_s);
}

TEST(Integration, CairnAllFlowsDeliverUnderMp) {
  const auto topo = topo::make_cairn();
  const auto flows = topo::cairn_flows(1.15);
  const auto mp =
      sim::run_simulation(topo, flows, quick_config(sim::RoutingMode::kMultipath));
  ASSERT_EQ(mp.flows.size(), flows.size());
  for (const auto& f : mp.flows) {
    EXPECT_GT(f.delivered, 1000u) << f.src << "->" << f.dst;
    EXPECT_GT(f.mean_delay_s, 0.0);
    EXPECT_LT(f.mean_delay_s, 0.1);  // stable network: delays in ms range
  }
  EXPECT_EQ(mp.dropped_no_route, 0u);
}

TEST(Integration, PacketLevelOptMatchesFlowLevelPrediction) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.8);  // moderate load: M/M/1 regime
  auto config = quick_config(sim::RoutingMode::kStatic);
  config.duration = 60;
  const sim::ExperimentSpec spec{topo, flows, config, sim::EngineSpec{}};
  const auto ref = sim::compute_opt_reference(spec);
  const auto measured = sim::run_with_static_phi(spec, ref.phi);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    // The flow plane predicts expected per-packet delay from Eq. (1)-(3);
    // the packet plane measures it (plus header overhead): within 20%.
    EXPECT_NEAR(measured.flows[i].mean_delay_s, ref.flow_delay_s[i],
                0.2 * ref.flow_delay_s[i])
        << flows[i].src << "->" << flows[i].dst;
  }
}

TEST(Integration, ControlOverheadIsSmallFractionOfData) {
  const auto topo = topo::make_cairn();
  const auto flows = topo::cairn_flows(1.0);
  const auto mp =
      sim::run_simulation(topo, flows, quick_config(sim::RoutingMode::kMultipath));
  double data_bits = 0;
  for (const auto& l : mp.links) data_bits += l.data_bits;
  EXPECT_GT(mp.control_bits, 0.0);
  EXPECT_LT(mp.control_bits, 0.01 * data_bits);  // < 1% overhead
}

TEST(Integration, ThreeProtocolRealizationsAgreeOnDistances) {
  // PDA, MPDA and MPATH all converge to the same shortest distances on the
  // same topology and costs.
  const auto topo = topo::make_net1();
  Rng rng(5);
  std::vector<Cost> costs;
  for (std::size_t i = 0; i < topo.num_links(); ++i) {
    costs.push_back(rng.uniform(0.5, 3.0));
  }

  test::ProtocolHarness<proto::PdaProcess> pda(
      topo, costs, [](NodeId self, std::size_t n, proto::LsuSink& sink) {
        return std::make_unique<proto::PdaProcess>(self, n, sink);
      });
  test::ProtocolHarness<core::MpdaProcess> mpda(
      topo, costs, [](NodeId self, std::size_t n, proto::LsuSink& sink) {
        return std::make_unique<core::MpdaProcess>(self, n, sink);
      });
  Rng r1(6), r2(7);
  pda.bring_up_all(&r1);
  pda.run_to_quiescence(r1);
  mpda.bring_up_all(&r2);
  mpda.run_to_quiescence(r2);

  for (NodeId i = 0; i < 10; ++i) {
    for (NodeId j = 0; j < 10; ++j) {
      EXPECT_NEAR(pda.node(i).tables().distance(j), mpda.node(i).distance(j),
                  1e-9)
          << i << "->" << j;
    }
  }
}

TEST(Integration, OptReferenceFlowDelaysAreFiniteAndOrdered) {
  for (const bool cairn : {true, false}) {
    const auto topo = cairn ? topo::make_cairn() : topo::make_net1();
    const auto flows = cairn ? topo::cairn_flows(1.15) : topo::net1_flows(0.92);
    const auto ref = sim::compute_opt_reference(sim::ExperimentSpec{topo, flows, {}, {}});
    ASSERT_TRUE(ref.feasible);
    ASSERT_EQ(ref.flow_delay_s.size(), flows.size());
    for (const double d : ref.flow_delay_s) {
      EXPECT_TRUE(std::isfinite(d));
      EXPECT_GT(d, 0.0);
    }
    // Average of flow delays weighted by rate equals the reported average.
    double weighted = 0, total = 0;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      weighted += flows[i].rate_bps * ref.flow_delay_s[i];
      total += flows[i].rate_bps;
    }
    EXPECT_NEAR(ref.average_delay_s, weighted / total,
                1e-9 * ref.average_delay_s);
  }
}

TEST(Integration, DelayTableRatiosAndLabels) {
  const auto flows = topo::net1_flows();
  const auto labels = sim::flow_labels(flows);
  ASSERT_EQ(labels.size(), flows.size());
  EXPECT_EQ(labels[0], "9->2");

  sim::DelayTable table(labels);
  std::vector<double> a(flows.size(), 2e-3), b(flows.size(), 1e-3);
  table.add_series("A", a);
  table.add_series("B", b);
  const auto r = table.ratio("A", "B");
  for (const double v : r) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Integration, WrrAndRandomForwardingAgreeOnAverages) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.7);
  auto config = quick_config(sim::RoutingMode::kMultipath);
  const auto random_fwd = sim::run_simulation(topo, flows, config);
  config.wrr_forwarding = true;
  const auto wrr_fwd = sim::run_simulation(topo, flows, config);
  // Same phi realized two ways: network averages agree within 15%.
  EXPECT_NEAR(wrr_fwd.avg_delay_s, random_fwd.avg_delay_s,
              0.15 * random_fwd.avg_delay_s);
}

TEST(Integration, BurstyTrafficWidensSpMpGap) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.65);
  auto mp_cfg = quick_config(sim::RoutingMode::kMultipath);
  auto sp_cfg = quick_config(sim::RoutingMode::kSinglePath);
  sp_cfg.ts = 10;
  mp_cfg.duration = sp_cfg.duration = 60;

  const auto mp_smooth = sim::run_simulation(topo, flows, mp_cfg);
  const auto sp_smooth = sim::run_simulation(topo, flows, sp_cfg);
  mp_cfg.traffic.model = sp_cfg.traffic.model = sim::TrafficModel::kOnOff;
  const auto mp_bursty = sim::run_simulation(topo, flows, mp_cfg);
  const auto sp_bursty = sim::run_simulation(topo, flows, sp_cfg);

  const double gap_smooth = sp_smooth.avg_delay_s / mp_smooth.avg_delay_s;
  const double gap_bursty = sp_bursty.avg_delay_s / mp_bursty.avg_delay_s;
  EXPECT_GE(gap_smooth, 1.0);
  EXPECT_GT(gap_bursty, gap_smooth);
}

TEST(Integration, RoutingSurvivesLossyLinks) {
  // 2% loss on every link eats LSUs and ACKs alike; reliable flooding
  // (sequence numbers + retransmission) must still converge the routing and
  // keep it loop-free, and data must keep flowing at roughly (1-p)^hops.
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.5);
  auto config = quick_config(sim::RoutingMode::kMultipath);
  config.link_loss_rate = 0.02;
  config.duration = 40;
  config.lfi_check_interval = 0.1;
  const auto result = sim::run_simulation(topo, flows, config);
  EXPECT_EQ(result.lfi_violations, 0u);
  for (const auto& f : result.flows) {
    EXPECT_GT(f.delivered, 1000u) << f.src << "->" << f.dst;
  }
  EXPECT_EQ(result.dropped_no_route, 0u);
}

TEST(Integration, SelfSimilarTrafficStillRoutedLoopFree) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.5);
  auto config = quick_config(sim::RoutingMode::kMultipath);
  config.traffic.model = sim::TrafficModel::kParetoOnOff;
  config.traffic.pareto = {1.5, 2.0, 4.0};
  config.duration = 60;
  config.lfi_check_interval = 0.2;
  const auto result = sim::run_simulation(topo, flows, config);
  EXPECT_EQ(result.lfi_violations, 0u);
  EXPECT_GT(result.delivered, 10000u);
  EXPECT_EQ(result.dropped_ttl, 0u);
}

}  // namespace
}  // namespace mdr
