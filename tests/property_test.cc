// Property tests: randomized sweeps over topologies, event interleavings,
// and failure injections, asserting the paper's invariants "at every
// instant" — the heart of what Theorems 1 and 3 promise.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/lfi.h"
#include "core/mp_router.h"
#include "core/mpda.h"
#include "flow/evaluate.h"
#include "gallager/optimizer.h"
#include "graph/dijkstra.h"
#include "harness.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace mdr {
namespace {

using graph::Cost;
using graph::NodeId;

std::vector<Cost> random_costs(const graph::Topology& topo, Rng& rng) {
  std::vector<Cost> costs;
  for (std::size_t i = 0; i < topo.num_links(); ++i) {
    costs.push_back(rng.uniform(0.2, 5.0));
  }
  return costs;
}

// ---------------------------------------------------------------------------
// MPDA safety fuzz: random topology, random interleavings, random cost churn
// and duplex link failures/recoveries. Loop-freedom and the FD ordering must
// hold after EVERY event; distances must match global Dijkstra at the end.

class MpdaSafetyFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MpdaSafetyFuzz, LoopFreeUnderChurnAndFailures) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709);
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(5, 14));
  const auto topo = topo::make_random(n, rng.uniform(0.15, 0.45), rng);
  auto costs = random_costs(topo, rng);

  test::ProtocolHarness<core::MpdaProcess> h(
      topo, costs, [](NodeId self, std::size_t num, proto::LsuSink& sink) {
        return std::make_unique<core::MpdaProcess>(self, num, sink);
      });

  std::size_t checks = 0;
  h.on_after_event = [&] {
    ++checks;
    for (NodeId j = 0; j < static_cast<NodeId>(n); ++j) {
      core::LfiSnapshot snap;
      snap.feasible_distance.resize(n);
      snap.successors.resize(n);
      for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
        snap.feasible_distance[i] = h.node(i).feasible_distance(j);
        if (i != j) snap.successors[i] = h.node(i).successors(j);
      }
      ASSERT_TRUE(core::feasible_distances_decrease(snap))
          << "FD ordering violated for dest " << j;
      ASSERT_TRUE(core::successor_graph_loop_free(snap))
          << "loop for dest " << j;
    }
  };

  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);

  // Churn: cost changes interleaved with partial delivery.
  for (int round = 0; round < 25; ++round) {
    const auto id = static_cast<graph::LinkId>(
        rng.uniform_int(0, static_cast<int>(topo.num_links()) - 1));
    const auto& l = topo.link(id);
    const Cost c = rng.uniform(0.2, 5.0);
    costs[id] = c;
    h.change_cost(l.from, l.to, c);
    for (int d = 0; d < rng.uniform_int(0, 8); ++d) h.deliver_one(rng);
  }
  h.run_to_quiescence(rng);

  // Failure and recovery of a random duplex link (keep the ring intact so
  // the graph stays connected).
  const std::size_t chord_start = 2 * n;  // links 0..2n-1 form the ring
  if (topo.num_links() > chord_start) {
    const auto id = static_cast<graph::LinkId>(rng.uniform_int(
        static_cast<int>(chord_start), static_cast<int>(topo.num_links()) - 1));
    const auto& l = topo.link(id);
    // Find its reverse for a duplex cut.
    h.fail_duplex(l.from, l.to);
    for (int d = 0; d < 10; ++d) h.deliver_one(rng);
    h.run_to_quiescence(rng);
    h.restore_duplex(l.from, l.to);
    h.run_to_quiescence(rng);
  }

  EXPECT_GT(checks, 100u);

  // Liveness: distances equal global shortest paths at quiescence.
  std::vector<graph::CostedEdge> edges;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    edges.push_back(
        graph::CostedEdge{topo.link(id).from, topo.link(id).to, costs[id]});
  }
  for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
    const auto spt = graph::dijkstra(n, edges, i);
    for (NodeId j = 0; j < static_cast<NodeId>(n); ++j) {
      ASSERT_NEAR(h.node(i).distance(j), spt.dist[j], 1e-9)
          << "seed " << GetParam() << " " << i << "->" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpdaSafetyFuzz, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// MpRouter forwarding-weight fuzz: Property 1 must hold for every (node,
// destination) after arbitrary protocol churn and short-term cost updates.

class RouterProperty1Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(RouterProperty1Fuzz, WeightsAreAlwaysADistribution) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(5, 10));
  const auto topo = topo::make_random(n, 0.3, rng);
  const auto costs = random_costs(topo, rng);

  test::ProtocolHarness<core::MpRouter> h(
      topo, costs, [](NodeId self, std::size_t num, proto::LsuSink& sink) {
        return std::make_unique<core::MpRouter>(self, num, sink,
                                                core::MpRouterOptions{});
      });

  const auto check_all = [&] {
    for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
      for (NodeId j = 0; j < static_cast<NodeId>(n); ++j) {
        if (i == j) continue;
        const auto entry = h.node(i).forwarding(j);
        if (entry.empty()) continue;
        double sum = 0;
        for (const auto& c : entry) {
          ASSERT_GE(c.weight, 0.0);
          sum += c.weight;
        }
        ASSERT_NEAR(sum, 1.0, 1e-9) << i << "->" << j;
      }
    }
  };
  h.on_after_event = check_all;

  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);

  // Random short-term cost updates at random routers.
  for (int round = 0; round < 50; ++round) {
    const NodeId i = rng.uniform_int(0, static_cast<int>(n) - 1);
    std::map<NodeId, double> short_costs;
    for (const NodeId k : topo.neighbors(i)) {
      short_costs[k] = rng.uniform(0.2, 5.0);
    }
    h.node(i).update_short_term_costs(short_costs);
    check_all();
    for (int d = 0; d < rng.uniform_int(0, 4); ++d) h.deliver_one(rng);
  }
  h.run_to_quiescence(rng);
  check_all();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterProperty1Fuzz, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Gallager OPT fuzz: on random instances the optimizer must keep successor
// graphs acyclic, preserve Property 1, never do worse than its single-path
// start, and leave a near-stationary point.

class GallagerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GallagerFuzz, DescendsSafelyOnRandomInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(5, 10));
  const auto topo =
      topo::make_random(n, 0.3, rng, topo::BuilderDefaults{10e6, 0.5e-3});
  const flow::FlowNetwork net(topo, 8e3);

  flow::TrafficMatrix traffic(n);
  const int commodities = rng.uniform_int(2, 6);
  for (int c = 0; c < commodities; ++c) {
    const NodeId src = rng.uniform_int(0, static_cast<int>(n) - 1);
    NodeId dst = rng.uniform_int(0, static_cast<int>(n) - 1);
    if (src == dst) dst = (dst + 1) % static_cast<NodeId>(n);
    traffic.add(src, dst, rng.uniform(0.5e6, 2.5e6));
  }

  const auto result = gallager::minimize(net, traffic, {});
  ASSERT_TRUE(result.feasible) << "random instance overloaded";
  EXPECT_TRUE(result.phi.satisfies_property1(1e-6));
  for (NodeId j = 0; j < static_cast<NodeId>(n); ++j) {
    EXPECT_TRUE(graph::is_acyclic(result.phi.successor_sets(j)));
  }
  // Monotone trace.
  for (std::size_t i = 1; i < result.delay_trace.size(); ++i) {
    EXPECT_LE(result.delay_trace[i], result.delay_trace[i - 1] * (1 + 1e-9));
  }
  // No worse than the shortest-path start.
  const double spt_delay =
      flow::average_delay(net, traffic, gallager::shortest_path_phi(net));
  EXPECT_LE(result.average_delay_s, spt_delay * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GallagerFuzz, ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Flow-plane conservation: for random Property-1 routing DAGs, everything
// offered to a destination arrives there (node_traffic at the destination
// equals total offered rate) unless explicitly stranded.

class ConservationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ConservationFuzz, OfferedTrafficArrivesAtDestination) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863);
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(4, 9));
  const auto topo = topo::make_random(n, 0.35, rng);
  const flow::FlowNetwork net(topo, 8e3);

  // Random loop-free phi per destination: rank nodes by Dijkstra distance
  // to dest and split uniformly over strictly-closer neighbors (an LFI set).
  const auto zero_costs = net.zero_load_costs();
  flow::RoutingParameters phi(topo);
  std::vector<graph::CostedEdge> reversed;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    const auto& l = topo.link(id);
    reversed.push_back(graph::CostedEdge{l.to, l.from, zero_costs[id]});
  }
  for (NodeId j = 0; j < static_cast<NodeId>(n); ++j) {
    const auto spt = graph::dijkstra(n, reversed, j);
    for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
      if (i == j) continue;
      const auto links = topo.out_links(i);
      std::vector<std::size_t> closer;
      for (std::size_t x = 0; x < links.size(); ++x) {
        if (spt.dist[topo.link(links[x]).to] < spt.dist[i]) closer.push_back(x);
      }
      ASSERT_FALSE(closer.empty());
      // Random positive split over the closer set.
      double total = 0;
      std::vector<double> w(closer.size());
      for (double& v : w) total += (v = rng.uniform(0.1, 1.0));
      for (std::size_t x = 0; x < closer.size(); ++x) {
        phi.set(i, j, closer[x], w[x] / total);
      }
    }
  }
  ASSERT_TRUE(phi.satisfies_property1(1e-9));

  flow::TrafficMatrix traffic(n);
  std::vector<double> offered(n, 0.0);
  for (int c = 0; c < 5; ++c) {
    const NodeId src = rng.uniform_int(0, static_cast<int>(n) - 1);
    NodeId dst = rng.uniform_int(0, static_cast<int>(n) - 1);
    if (src == dst) dst = (dst + 1) % static_cast<NodeId>(n);
    const double rate = rng.uniform(0.1e6, 1e6);
    traffic.add(src, dst, rate);
    offered[dst] += rate;
  }

  const auto fa = flow::compute_flows(net, traffic, phi);
  ASSERT_TRUE(fa.valid);
  EXPECT_DOUBLE_EQ(fa.stranded_bps, 0.0);
  for (NodeId j = 0; j < static_cast<NodeId>(n); ++j) {
    EXPECT_NEAR(fa.node_traffic(j, j), offered[j], 1e-6)
        << "conservation broke at dest " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationFuzz, ::testing::Range(1, 11));

}  // namespace
}  // namespace mdr
