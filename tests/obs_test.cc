// Tests for the observability layer (src/obs): metric registry and
// log-bucketed histograms, the flight recorder, the time-series sampler's
// reconciliation with the simulator's own measurements, determinism of the
// JSONL/CSV streams, zero-perturbation of default and telemetry-enabled
// runs, and the chaos-incident flight-dump path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/ckpt.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/sampler.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "runner/experiment_runner.h"
#include "sim/experiment.h"
#include "sim/network_sim.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace mdr {
namespace {

using obs::Event;
using obs::EventType;
using obs::FlightRecorder;
using obs::LogHistogram;
using obs::MetricRegistry;

// ----------------------------------------------------------- LogHistogram

TEST(LogHistogram, ExactFieldsAndBoundedPercentileError) {
  LogHistogram h;
  std::vector<double> xs;
  Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    // Values spanning nine decades exercise many octaves.
    const double x = std::pow(10.0, rng.uniform(-6.0, 3.0));
    xs.push_back(x);
    sum += x;
    h.record(x);
  }
  std::sort(xs.begin(), xs.end());

  EXPECT_EQ(h.count(), xs.size());
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.min(), xs.front());
  EXPECT_DOUBLE_EQ(h.max(), xs.back());

  // 8 sub-buckets per octave bound the relative quantization error of any
  // quantile by ~6%; allow 7% for the nearest-rank tie at bucket edges.
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(xs.size() - 1) + 0.5);
    const double exact = xs[std::min(rank, xs.size() - 1)];
    const double est = h.percentile(q);
    EXPECT_NEAR(est, exact, 0.07 * exact) << "q=" << q;
  }
}

TEST(LogHistogram, UnderflowAndEmptyBehave) {
  LogHistogram empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

  LogHistogram h;
  h.record(0.0);    // non-positive lands in the underflow bucket
  h.record(-3.0);
  h.record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  // Percentiles stay clamped to the observed range.
  EXPECT_GE(h.percentile(0.0), -3.0);
  EXPECT_LE(h.percentile(1.0), 1.0);
}

TEST(LogHistogram, MergeMatchesCombinedRecording) {
  LogHistogram a, b, all;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(1e-4, 5.0);
    if (i % 2 == 0) {
      a.record(x);
    } else {
      b.record(x);
    }
    all.record(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  // Bucket contents are identical, so every quantile answer is identical.
  for (const double q : {0.01, 0.5, 0.9, 0.999}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), all.percentile(q)) << "q=" << q;
  }
}

// --------------------------------------------------------- MetricRegistry

TEST(MetricRegistry, HandlesAreStableAndMergeIsDeterministic) {
  MetricRegistry r1;
  std::uint64_t& c = r1.counter("packets.delivered");
  c += 10;
  r1.gauge("delay.avg_s") = 0.25;
  r1.histogram("flow_delay_s").record(0.5);

  MetricRegistry r2;
  r2.counter("packets.delivered") = 7;
  r2.counter("packets.dropped") = 2;
  r2.gauge("delay.avg_s") = 0.75;
  r2.histogram("flow_delay_s").record(1.5);

  r1.merge(r2);
  EXPECT_EQ(r1.counters().at("packets.delivered"), 17u);
  EXPECT_EQ(r1.counters().at("packets.dropped"), 2u);
  EXPECT_DOUBLE_EQ(r1.gauges().at("delay.avg_s"), 0.75);  // last writer wins
  EXPECT_EQ(r1.histograms().at("flow_delay_s").count(), 2u);

  // The counter handle taken before the merge still points at the slot.
  c += 1;
  EXPECT_EQ(r1.counters().at("packets.delivered"), 18u);

  // JSON serialization is deterministic (name-ordered maps, %.17g doubles).
  std::string j1, j2;
  r1.append_json(j1);
  r1.append_json(j2);
  EXPECT_EQ(j1, j2);
  EXPECT_FALSE(j1.empty());
  EXPECT_LT(j1.find("\"counters\""), j1.find("\"gauges\""));
  EXPECT_LT(j1.find("\"gauges\""), j1.find("\"histograms\""));
}

// --------------------------------------------------------- FlightRecorder

TEST(FlightRecorder, RingsAreBoundedAndDumpIsChronological) {
  MetricRegistry metrics;
  FlightRecorder rec(/*num_nodes=*/2, /*ring_capacity=*/4, /*keep_all=*/true,
                     &metrics);
  // Record in monotonic time order, as the simulator's clock guarantees.
  for (int i = 0; i < 10; ++i) {
    rec.record(Event{static_cast<Time>(i), /*node=*/0,
                     EventType::kLsuOriginate, 1, static_cast<double>(i), 0});
    if (i == 3) rec.record(Event{3.5, /*node=*/1, EventType::kCrash});
  }
  rec.record(Event{20.0, /*node=*/1, EventType::kRecover});

  EXPECT_EQ(rec.recorded(), 12u);
  EXPECT_EQ(rec.trace().size(), 12u);  // keep_all retains everything

  const auto dump = rec.dump();
  // Node 0's ring kept only the newest 4 of its 10 events.
  ASSERT_EQ(dump.size(), 6u);
  for (std::size_t i = 1; i < dump.size(); ++i) {
    EXPECT_LE(dump[i - 1].t, dump[i].t) << "dump not chronological at " << i;
  }
  // The oldest surviving node-0 event is t=6 (6..9 survive).
  double oldest = 1e9;
  for (const auto& e : dump) {
    if (e.node == 0) oldest = std::min(oldest, e.t);
  }
  EXPECT_DOUBLE_EQ(oldest, 6.0);

  // Every record() bumped the per-type counter in the registry.
  EXPECT_EQ(metrics.counters().at("events.lsu_originate"), 10u);
  EXPECT_EQ(metrics.counters().at("events.crash"), 1u);
  EXPECT_EQ(metrics.counters().at("events.recover"), 1u);
}

TEST(FlightRecorder, DisabledProbeIsANoOp) {
  obs::Probe probe;  // null recorder
  EXPECT_FALSE(probe.enabled());
  probe.emit(EventType::kFdChange, 3, 1.0, 2.0);  // must not crash
}

// ------------------------------------------------- end-to-end sim telemetry

sim::SimConfig telemetry_config() {
  sim::SimConfig config;
  config.traffic_start = 3.0;
  config.warmup = 5.0;
  config.duration = 20.0;
  config.seed = 21;
  return config;
}

TEST(SimTelemetry, EnablingTelemetryDoesNotPerturbPacketFlows) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.5);

  sim::SimConfig off = telemetry_config();
  const auto base = sim::run_simulation(topo, flows, off);
  ASSERT_FALSE(base.telemetry.has_value());

  sim::SimConfig on = telemetry_config();
  on.sample_interval = 2.0;
  on.trace = true;
  on.flightrec_capacity = 64;
  const auto instrumented = sim::run_simulation(topo, flows, on);
  ASSERT_TRUE(instrumented.telemetry.has_value());

  // Same seed, telemetry on: every packet-level number is bit-identical
  // (only events_processed differs — the sampler's own ticks).
  EXPECT_EQ(instrumented.delivered, base.delivered);
  EXPECT_EQ(instrumented.avg_delay_s, base.avg_delay_s);
  EXPECT_EQ(instrumented.control_messages, base.control_messages);
  EXPECT_EQ(instrumented.control_bits, base.control_bits);
  EXPECT_EQ(instrumented.dropped_queue, base.dropped_queue);
  ASSERT_EQ(instrumented.flows.size(), base.flows.size());
  for (std::size_t f = 0; f < base.flows.size(); ++f) {
    EXPECT_EQ(instrumented.flows[f].delivered, base.flows[f].delivered);
    EXPECT_EQ(instrumented.flows[f].mean_delay_s, base.flows[f].mean_delay_s);
    EXPECT_EQ(instrumented.flows[f].p95_delay_s, base.flows[f].p95_delay_s);
  }
  ASSERT_EQ(instrumented.links.size(), base.links.size());
  for (std::size_t l = 0; l < base.links.size(); ++l) {
    EXPECT_EQ(instrumented.links[l].data_bits, base.links[l].data_bits);
    EXPECT_EQ(instrumented.links[l].utilization, base.links[l].utilization);
  }

  // And the trace actually recorded protocol activity.
  EXPECT_FALSE(instrumented.telemetry->trace.empty());
  EXPECT_GT(instrumented.telemetry->metrics.counters().at("events.lsu_originate"),
            0u);
}

TEST(SimTelemetry, SamplerReconcilesExactlyWithFlowResults) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.5);
  sim::SimConfig config = telemetry_config();
  config.sample_interval = 2.0;
  const auto result = sim::run_simulation(topo, flows, config);
  ASSERT_TRUE(result.telemetry.has_value());
  const auto& telemetry = *result.telemetry;

  // Per-flow: the sampler's windowed deltas telescope back to the exact
  // cumulative totals the run reports.
  std::vector<std::uint64_t> delivered(flows.size(), 0);
  std::vector<double> delay_sum(flows.size(), 0);
  for (const auto& s : telemetry.flows) {
    ASSERT_LT(static_cast<std::size_t>(s.flow), flows.size());
    delivered[static_cast<std::size_t>(s.flow)] += s.measured_delivered;
    delay_sum[static_cast<std::size_t>(s.flow)] += s.measured_delay_sum_s;
  }
  std::uint64_t total = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_EQ(delivered[f], result.flows[f].delivered) << "flow " << f;
    total += delivered[f];
    if (delivered[f] > 0) {
      const double mean = delay_sum[f] / static_cast<double>(delivered[f]);
      EXPECT_NEAR(mean, result.flows[f].mean_delay_s,
                  1e-9 * std::max(1.0, result.flows[f].mean_delay_s))
          << "flow " << f;
    }
  }
  EXPECT_EQ(total, result.delivered);

  // The metrics registry carries the same counters.
  EXPECT_EQ(telemetry.metrics.counters().at("packets.delivered_measured"),
            result.delivered);
  EXPECT_EQ(telemetry.metrics.histograms().at("flow_delay_s").count(),
            result.delivered);

  // Per-link windows: utilizations are valid fractions and the windowed data
  // bits telescope to the run totals.
  std::vector<double> link_bits(result.links.size(), 0);
  for (const auto& s : telemetry.links) {
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0 + 1e-9);
    link_bits[s.link] += s.data_bits;
  }
  for (std::size_t l = 0; l < result.links.size(); ++l) {
    EXPECT_NEAR(link_bits[l], result.links[l].data_bits,
                1e-9 * std::max(1.0, result.links[l].data_bits))
        << "link " << l;
  }

  // Control-plane windows telescope to the reported LSU totals.
  std::uint64_t lsus = 0;
  for (const auto& s : telemetry.control) lsus += s.lsus_originated;
  EXPECT_EQ(lsus, result.lsus_originated);
}

TEST(SimTelemetry, SameSeedRerunsEmitByteIdenticalStreams) {
  const auto topo = topo::make_net1();
  const auto flows = topo::net1_flows(0.5);
  const auto names = sim::telemetry_names(topo, flows);

  const auto render = [&] {
    sim::SimConfig config = telemetry_config();
    config.sample_interval = 2.0;
    config.trace = true;
    config.flightrec_capacity = 32;
    const auto result = sim::run_simulation(topo, flows, config);
    std::ostringstream out;
    obs::write_samples_jsonl(out, *result.telemetry, names, /*run=*/0);
    obs::write_trace_jsonl(out, *result.telemetry, names, /*run=*/0);
    obs::write_metrics_jsonl(out, result.telemetry->metrics, "0");
    obs::write_samples_csv(out, *result.telemetry, names, /*run=*/0,
                           /*header=*/true);
    return out.str();
  };

  const std::string first = render();
  const std::string second = render();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // Spot-check the stream shape: one JSON object per line, kind-tagged.
  std::istringstream lines(first);
  std::string line;
  bool saw_link = false, saw_flow = false, saw_control = false;
  while (std::getline(lines, line) && line.rfind("{", 0) == 0) {
    if (line.find("\"kind\":\"link\"") != std::string::npos) saw_link = true;
    if (line.find("\"kind\":\"flow\"") != std::string::npos) saw_flow = true;
    if (line.find("\"kind\":\"control\"") != std::string::npos) {
      saw_control = true;
    }
  }
  EXPECT_TRUE(saw_link);
  EXPECT_TRUE(saw_flow);
  EXPECT_TRUE(saw_control);
}

TEST(SimTelemetry, ChaosIncidentTriggersFlightDumpWithCrashSequence) {
  // A router crash on CAIRN opens invariant incidents (blackhole sweeps
  // while neighbours reroute); the monitor's anomaly hook must dump the
  // flight-recorder rings, and the dump must contain the triggering crash.
  const auto topo = topo::make_cairn();
  const auto flows = topo::cairn_flows(0.5);
  sim::SimConfig config;
  config.use_hello = true;
  config.traffic_start = 6.0;
  config.warmup = 4.0;
  config.duration = 30.0;
  config.seed = 5;
  config.monitor_interval = 0.5;
  config.flightrec_capacity = 128;
  const double t_crash = 15.0;
  config.faults.crashes.push_back({t_crash, "tioc"});
  config.faults.recoveries.push_back({19.0, "tioc"});
  const auto result = sim::run_simulation(topo, flows, config);

  ASSERT_TRUE(result.monitor.has_value());
  ASSERT_TRUE(result.telemetry.has_value());
  const auto& dumps = result.telemetry->flight_dumps;
  ASSERT_FALSE(dumps.empty()) << "incident opened but no flight dump taken";

  // The anomaly hook is edge-triggered, so initial convergence may open one
  // earlier incident; the crash must open its own with a fresh dump.
  const obs::FlightDump* dump = nullptr;
  for (const auto& d : dumps) {
    if (d.t >= t_crash && dump == nullptr) dump = &d;
    EXPECT_TRUE(d.reason == "blackhole" || d.reason == "forwarding_loop" ||
                d.reason == "accounting_leak")
        << d.reason;
  }
  ASSERT_NE(dump, nullptr) << "no flight dump after the crash at t=15";
  ASSERT_FALSE(dump->events.empty());

  const graph::NodeId crashed = topo.find_node("tioc");
  bool saw_crash = false;
  for (std::size_t i = 0; i < dump->events.size(); ++i) {
    const auto& e = dump->events[i];
    if (i > 0) {
      EXPECT_LE(dump->events[i - 1].t, e.t);
    }
    EXPECT_LE(e.t, dump->t);  // nothing from after the dump instant
    if (e.type == EventType::kCrash && e.node == crashed) saw_crash = true;
  }
  EXPECT_TRUE(saw_crash)
      << "dump should retain the crash that triggered the incident";
}

// ----------------------------------------------------- runner metric merge

TEST(RunnerTelemetry, MergedMetricsAreIndependentOfWorkerCount) {
  sim::ExperimentSpec spec;
  spec.topo = topo::make_net1();
  spec.flows = topo::net1_flows(0.5);
  spec.config = telemetry_config();
  spec.config.duration = 10.0;
  spec.config.sample_interval = 2.0;

  const auto merged_json = [&](int jobs) {
    runner::ExperimentRunner runner(runner::Options{jobs, /*base_seed=*/3});
    const auto batch = runner.run_replicated(spec, "mp", /*replications=*/3);
    EXPECT_FALSE(batch.metrics.empty());
    std::string json;
    batch.metrics.append_json(json);
    return json;
  };

  const std::string serial = merged_json(1);
  const std::string parallel = merged_json(2);
  EXPECT_EQ(serial, parallel);
}

// Cross-worker merges must commute and associate: the runner folds per-job
// registries in job order, but a histogram's buckets are plain sums, so any
// grouping of the same inputs must answer every quantile identically.
TEST(LogHistogram, MergeIsAssociativeAndOrderIndependent) {
  std::vector<LogHistogram> parts(3);
  Rng rng(99);
  for (int i = 0; i < 900; ++i) {
    parts[static_cast<std::size_t>(i % 3)].record(
        std::pow(10.0, rng.uniform(-4.0, 2.0)));
  }
  // (a + b) + c
  LogHistogram left = parts[0];
  left.merge(parts[1]);
  left.merge(parts[2]);
  // a + (b + c)
  LogHistogram bc = parts[1];
  bc.merge(parts[2]);
  LogHistogram right = parts[0];
  right.merge(bc);
  // c + a + b — a different job order entirely
  LogHistogram rotated = parts[2];
  rotated.merge(parts[0]);
  rotated.merge(parts[1]);

  for (const LogHistogram* h : {&right, &rotated}) {
    EXPECT_EQ(left.count(), h->count());
    EXPECT_DOUBLE_EQ(left.sum(), h->sum());
    EXPECT_DOUBLE_EQ(left.min(), h->min());
    EXPECT_DOUBLE_EQ(left.max(), h->max());
    for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
      EXPECT_DOUBLE_EQ(left.percentile(q), h->percentile(q)) << "q=" << q;
    }
  }
}

// A flight recorder restored from a checkpoint must dump the same events in
// the same order as the original — rings serialize wraparound state (head
// position and fill), not just contents.
TEST(FlightRecorder, CheckpointRoundTripPreservesWrappedRingsAndDumpOrder) {
  FlightRecorder rec(/*num_nodes=*/3, /*ring_capacity=*/4,
                     /*keep_all=*/false, /*metrics=*/nullptr);
  // Overfill node 0's ring (wraps twice), partially fill node 1's, leave
  // node 2's empty, and give the off-node ring one entry.
  for (int i = 0; i < 10; ++i) {
    rec.record(Event{static_cast<Time>(i), /*node=*/0,
                     EventType::kLsuOriginate, 1, static_cast<double>(i), 0});
  }
  rec.record(Event{4.5, /*node=*/1, EventType::kCrash});
  rec.record(Event{5.5, /*node=*/1, EventType::kRecover});
  rec.record(Event{6.5, /*node=*/graph::kInvalidNode, EventType::kFdChange});

  ckpt::Writer w;
  rec.save(w);

  FlightRecorder restored(/*num_nodes=*/3, /*ring_capacity=*/4,
                          /*keep_all=*/false, /*metrics=*/nullptr);
  ckpt::Reader r(w.payload());
  restored.load(r);

  const auto before = rec.dump();
  const auto after = restored.dump();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i].t, after[i].t) << "event " << i;
    EXPECT_EQ(before[i].node, after[i].node) << "event " << i;
    EXPECT_EQ(before[i].type, after[i].type) << "event " << i;
  }

  // Resumed recording continues the wraparound exactly where it left off:
  // one more event on node 0 evicts the oldest surviving one (t=6).
  rec.record(Event{11.0, /*node=*/0, EventType::kLsuOriginate});
  restored.record(Event{11.0, /*node=*/0, EventType::kLsuOriginate});
  const auto before2 = rec.dump();
  const auto after2 = restored.dump();
  ASSERT_EQ(before2.size(), after2.size());
  for (std::size_t i = 0; i < before2.size(); ++i) {
    EXPECT_DOUBLE_EQ(before2[i].t, after2[i].t) << "event " << i;
  }
}

// --------------------------------------------------------------- Profiler

TEST(Profiler, SelfTimeExcludesChildrenAndCountsAreExact) {
  obs::Profiler p;
  for (int i = 0; i < 100; ++i) {
    obs::ProfScope outer(&p, obs::ProfSection::kMpdaTableUpdate);
    obs::ProfScope inner(&p, obs::ProfSection::kMpdaRecompute);
  }
  const auto& st = p.sections();
  const auto& outer =
      st[static_cast<std::size_t>(obs::ProfSection::kMpdaTableUpdate)];
  const auto& inner =
      st[static_cast<std::size_t>(obs::ProfSection::kMpdaRecompute)];
  EXPECT_EQ(outer.count, 100u);
  EXPECT_EQ(inner.count, 100u);
  EXPECT_EQ(p.scopes(), 200u);
  // The child's total is carried out of the parent's self time.
  EXPECT_LE(outer.self_ns, outer.total_ns);
  EXPECT_GE(outer.total_ns, inner.total_ns);
  EXPECT_LE(outer.self_ns + inner.total_ns,
            outer.total_ns + 200 * 1000);  // slack for arithmetic jitter
}

TEST(Profiler, HotSectionsOutsideTimedMaskAreCountedNotTimed) {
  obs::Profiler p(obs::kProfTimeDefault);
  {
    obs::ProfScope busy(&p, obs::ProfSection::kEngineBusy);  // timed umbrella
    for (int i = 0; i < 50; ++i) {
      obs::ProfScope hot(&p, obs::ProfSection::kLinkEnqueue);  // count-only
    }
  }
  const auto& st = p.sections();
  const auto& hot =
      st[static_cast<std::size_t>(obs::ProfSection::kLinkEnqueue)];
  const auto& busy =
      st[static_cast<std::size_t>(obs::ProfSection::kEngineBusy)];
  EXPECT_EQ(hot.count, 50u);
  EXPECT_EQ(hot.total_ns, 0u);  // never touched the clock
  EXPECT_EQ(hot.self_ns, 0u);
  EXPECT_EQ(busy.count, 1u);
  EXPECT_GT(busy.total_ns, 0u);
  EXPECT_EQ(p.scopes(), 1u);    // only the umbrella was a timed pair
  EXPECT_EQ(p.counted(), 50u);
  EXPECT_FALSE(p.timed(obs::ProfSection::kDispatchDeliver));
  EXPECT_TRUE(p.timed(obs::ProfSection::kCkptSave));
}

TEST(ProfReport, MergeMatchesTracksByLabelAndJsonSegregatesHostTime) {
  obs::ProfReport a;
  a.tracks.push_back({"main", {}});
  a.tracks[0].sections[0] = {10, 1000, 800};
  a.scopes = 10;
  a.counted = 5;
  a.wall_ns = 5000;

  obs::ProfReport b;
  b.tracks.push_back({"main", {}});
  b.tracks[0].sections[0] = {7, 500, 400};
  b.tracks.push_back({"coord", {}});
  b.scopes = 7;
  b.counted = 2;
  b.wall_ns = 3000;

  a.merge(b);
  ASSERT_EQ(a.tracks.size(), 2u);
  EXPECT_EQ(a.tracks[0].sections[0].count, 17u);
  EXPECT_EQ(a.tracks[0].sections[0].total_ns, 1500u);
  EXPECT_EQ(a.scopes, 17u);
  EXPECT_EQ(a.counted, 7u);
  EXPECT_EQ(a.wall_ns, 8000u);

  std::string json;
  a.append_json(json);
  // Deterministic fields (counts) must precede the "host" object that holds
  // every nanosecond field, so tooling can strip host time with one regex.
  EXPECT_LT(json.find("\"counts\""), json.find("\"host\""));
  EXPECT_GT(json.find("\"wall_ns\""), json.find("\"host\""));
}

// ---------------------------------------------------------------- spans

TEST(SpanRecorder, AssembleLinksFloodTreeAcrossRecorders) {
  // Router 0 originates (local episode) and sends seq 5 to router 1, which
  // processes it on a different shard's recorder, changes a successor and
  // later forwards the first packet for that destination.
  obs::SpanRecorder r0(/*num_nodes=*/3);
  obs::SpanRecorder r1(/*num_nodes=*/3);

  r0.begin_local_episode(/*self=*/0, /*t=*/1.0);
  r0.on_send(/*self=*/0, /*neighbor=*/1, /*seq=*/5, /*t=*/1.0);
  r0.end_episode();

  r1.begin_lsu_episode(/*self=*/1, /*sender=*/0, /*seq=*/5, /*applied=*/true,
                       /*ack=*/false, /*t=*/1.2);
  r1.on_successor_change(/*self=*/1, /*dest=*/2, /*t=*/1.2);
  r1.end_episode();
  r1.on_forward(/*self=*/1, /*dest=*/2, /*next_hop=*/2, /*t=*/1.5);
  // Forwards to other destinations or before any change never record.
  r1.on_forward(/*self=*/1, /*dest=*/0, /*next_hop=*/0, /*t=*/1.6);

  const auto report = obs::assemble_spans({&r0, &r1});
  ASSERT_EQ(report.spans.size(), 1u);
  const auto& span = report.spans[0];
  EXPECT_EQ(span.origin, 0);
  EXPECT_TRUE(span.local);
  EXPECT_DOUBLE_EQ(span.t0, 1.0);
  EXPECT_DOUBLE_EQ(span.duration_s, 0.5);  // converged at the 1.5s forward
  EXPECT_EQ(span.episodes, 2u);
  EXPECT_EQ(span.sends, 1u);
  EXPECT_EQ(span.routers_touched, 2u);
  EXPECT_EQ(span.successor_changes, 1u);
  EXPECT_EQ(span.first_forwards, 1u);
}

TEST(SpanRecorder, SecondSuccessorChangeReusesPendingSlot) {
  obs::SpanRecorder r(/*num_nodes=*/2);
  r.begin_local_episode(/*self=*/0, /*t=*/1.0);
  r.on_send(/*self=*/0, /*neighbor=*/1, /*seq=*/1, /*t=*/1.0);
  r.on_successor_change(/*self=*/0, /*dest=*/1, /*t=*/1.0);
  r.end_episode();
  // A later episode re-flips the same destination before any forward: the
  // pending slot must re-point to the newest episode, not duplicate.
  r.begin_local_episode(/*self=*/0, /*t=*/2.0);
  r.on_send(/*self=*/0, /*neighbor=*/1, /*seq=*/2, /*t=*/2.0);
  r.on_successor_change(/*self=*/0, /*dest=*/1, /*t=*/2.0);
  r.end_episode();
  r.on_forward(/*self=*/0, /*dest=*/1, /*next_hop=*/1, /*t=*/2.5);
  r.on_forward(/*self=*/0, /*dest=*/1, /*next_hop=*/1, /*t=*/2.6);  // ignored

  const auto report = obs::assemble_spans({&r});
  ASSERT_EQ(report.spans.size(), 2u);
  // First span never saw its forward; second converged at 2.5.
  EXPECT_DOUBLE_EQ(report.spans[0].duration_s, 0.0);
  EXPECT_EQ(report.spans[0].first_forwards, 0u);
  EXPECT_DOUBLE_EQ(report.spans[1].duration_s, 0.5);
  EXPECT_EQ(report.spans[1].first_forwards, 1u);
}

}  // namespace
}  // namespace mdr
