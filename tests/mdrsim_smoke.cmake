# ctest smoke run: drive the mdrsim CLI end to end with a multi-seed batch
# and verify the --json output actually parses (cmake's string(JSON), 3.19+).
#
# Expected definitions (see tests/CMakeLists.txt):
#   MDRSIM   - path to the mdrsim executable
#   SCENARIO - path to the scenario file to run
#   OUTDIR   - writable directory for the JSON result

set(json_path "${OUTDIR}/mdrsim_smoke.json")
execute_process(
  COMMAND "${MDRSIM}" "${SCENARIO}" --seeds 2 --jobs 2 --json "${json_path}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mdrsim exited with ${rc}\nstdout:\n${stdout}\nstderr:\n${stderr}")
endif()

file(READ "${json_path}" doc)

# string(JSON) raises a fatal error on malformed JSON, so each GET below is
# itself the parse check.
string(JSON mode GET "${doc}" mode)
string(JSON replications GET "${doc}" replications)
string(JSON jobs GET "${doc}" jobs)
string(JSON mean GET "${doc}" network mean_avg_delay_s)
string(JSON nflows LENGTH "${doc}" flows)
string(JSON nruns LENGTH "${doc}" runs)
string(JSON run0_seed GET "${doc}" runs 0 seed)
string(JSON run1_seed GET "${doc}" runs 1 seed)
string(JSON ctl_messages GET "${doc}" runs 0 control messages)
string(JSON ctl_dropped GET "${doc}" runs 0 control dropped)
string(JSON ctl_originated GET "${doc}" runs 0 control lsus_originated)
string(JSON ctl_suppressed GET "${doc}" runs 0 control lsus_suppressed)
string(JSON ctl_acks GET "${doc}" runs 0 control acks)
string(JSON ctl_damped GET "${doc}" runs 0 control damped_withdrawals)
string(JSON nnodes LENGTH "${doc}" runs 0 control per_node)
string(JSON node0_name GET "${doc}" runs 0 control per_node 0 node)
string(JSON node0_orig GET "${doc}" runs 0 control per_node 0 lsus_originated)

if(NOT mode STREQUAL "mp")
  message(FATAL_ERROR "expected mode mp, got '${mode}'")
endif()
if(NOT replications EQUAL 2 OR NOT nruns EQUAL 2)
  message(FATAL_ERROR "expected 2 replications/runs, got ${replications}/${nruns}")
endif()
if(NOT jobs EQUAL 2)
  message(FATAL_ERROR "expected jobs=2, got ${jobs}")
endif()
if(nflows LESS 1)
  message(FATAL_ERROR "expected at least one flow aggregate")
endif()
if(run0_seed STREQUAL run1_seed)
  message(FATAL_ERROR "derived seeds must differ across replications")
endif()
if(NOT mean GREATER 0)
  message(FATAL_ERROR "network mean delay should be positive, got '${mean}'")
endif()
# Control-overhead breakdown: the smoke scenario runs MPDA, so every router
# originates at least one LSU and the cross-counter arithmetic must hold.
if(NOT ctl_originated GREATER 0)
  message(FATAL_ERROR "expected LSU originations > 0, got '${ctl_originated}'")
endif()
if(NOT ctl_messages GREATER 0)
  message(FATAL_ERROR "expected control messages > 0, got '${ctl_messages}'")
endif()
# No pacing/damping/control budget in the smoke scenario: these stay zero.
if(NOT ctl_suppressed EQUAL 0 OR NOT ctl_damped EQUAL 0 OR NOT ctl_dropped EQUAL 0)
  message(FATAL_ERROR
    "expected zero suppressed/damped/dropped without pacing or damping, got "
    "${ctl_suppressed}/${ctl_damped}/${ctl_dropped}")
endif()
if(nnodes LESS 1)
  message(FATAL_ERROR "expected at least one per_node control entry")
endif()
if(node0_name STREQUAL "")
  message(FATAL_ERROR "per_node entry missing node name")
endif()
if(node0_orig LESS 0)
  message(FATAL_ERROR "per_node lsus_originated must be non-negative")
endif()

message(STATUS "mdrsim smoke OK: ${nruns} runs, ${nflows} flows, mean ${mean}s")
