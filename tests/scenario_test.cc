// Unit tests for the scenario parser and runner (src/sim/scenario.h).
#include <gtest/gtest.h>

#include <sstream>

#include "sim/scenario.h"

namespace mdr::sim {
namespace {

std::optional<Scenario> parse(const std::string& text, std::string* error) {
  std::istringstream in(text);
  return parse_scenario(in, error);
}

TEST(ScenarioParser, MinimalCustomTopology) {
  std::string error;
  const auto s = parse(R"(
    node a
    node b
    link a b capacity=5e6 prop=2e-4
    flow a b rate=1e6
  )",
                       &error);
  ASSERT_TRUE(s.has_value()) << error;
  EXPECT_EQ(s->spec.topo.num_nodes(), 2u);
  EXPECT_EQ(s->spec.topo.num_links(), 2u);  // duplex
  const auto id = s->spec.topo.find_link(0, 1);
  EXPECT_DOUBLE_EQ(s->spec.topo.link(id).attr.capacity_bps, 5e6);
  EXPECT_DOUBLE_EQ(s->spec.topo.link(id).attr.prop_delay_s, 2e-4);
  ASSERT_EQ(s->spec.flows.size(), 1u);
  EXPECT_DOUBLE_EQ(s->spec.flows[0].rate_bps, 1e6);
  EXPECT_EQ(s->mode, "mp");
}

TEST(ScenarioParser, BuiltinTopologiesWithScale) {
  std::string error;
  const auto cairn = parse("topology cairn scale=1.15\n", &error);
  ASSERT_TRUE(cairn.has_value()) << error;
  EXPECT_EQ(cairn->spec.topo.num_nodes(), 26u);
  EXPECT_EQ(cairn->spec.flows.size(), 11u);

  const auto net1 = parse("topology net1\n", &error);
  ASSERT_TRUE(net1.has_value()) << error;
  EXPECT_EQ(net1->spec.topo.num_nodes(), 10u);
  EXPECT_EQ(net1->spec.flows.size(), 10u);
}

TEST(ScenarioParser, AllKnobs) {
  std::string error;
  const auto s = parse(R"(
    topology net1 scale=0.5
    mode sp
    tl 20
    ts 4
    duration 90
    warmup 12
    traffic_start 5
    seed 42
    estimator ipa
    bursty on=2 off=6
    hello interval=0.5 dead=2
    wrr
    timeseries 1.5
    lfi_check 0.25
    ah_damping 0.3
    mean_packet_bits 4000
    fail 30 0 9 silent
    restore 45 0 9
  )",
                       &error);
  ASSERT_TRUE(s.has_value()) << error;
  EXPECT_EQ(s->mode, "sp");
  EXPECT_DOUBLE_EQ(s->spec.config.tl, 20);
  EXPECT_DOUBLE_EQ(s->spec.config.ts, 4);
  EXPECT_DOUBLE_EQ(s->spec.config.duration, 90);
  EXPECT_DOUBLE_EQ(s->spec.config.warmup, 12);
  EXPECT_DOUBLE_EQ(s->spec.config.traffic_start, 5);
  EXPECT_EQ(s->spec.config.seed, 42u);
  EXPECT_EQ(s->spec.config.estimator, cost::EstimatorKind::kIpa);
  EXPECT_EQ(s->spec.config.traffic.model, TrafficModel::kOnOff);
  EXPECT_DOUBLE_EQ(s->spec.config.traffic.burstiness.mean_on_s, 2);
  EXPECT_TRUE(s->spec.config.use_hello);
  EXPECT_DOUBLE_EQ(s->spec.config.hello.dead_interval, 2);
  EXPECT_TRUE(s->spec.config.wrr_forwarding);
  EXPECT_DOUBLE_EQ(s->spec.config.timeseries_interval, 1.5);
  EXPECT_DOUBLE_EQ(s->spec.config.lfi_check_interval, 0.25);
  EXPECT_DOUBLE_EQ(s->spec.config.ah_damping, 0.3);
  EXPECT_DOUBLE_EQ(s->spec.config.mean_packet_bits, 4000);
  ASSERT_EQ(s->spec.config.link_toggles.size(), 2u);
  EXPECT_TRUE(s->spec.config.link_toggles[0].silent);
  EXPECT_FALSE(s->spec.config.link_toggles[0].up);
  EXPECT_TRUE(s->spec.config.link_toggles[1].up);
  EXPECT_FALSE(s->spec.config.link_toggles[1].silent);
}

TEST(ScenarioParser, ParetoAndLossDirectives) {
  std::string error;
  const auto s = parse(
      "topology net1\npareto alpha=1.4 on=2 off=8\nloss 0.01\n", &error);
  ASSERT_TRUE(s.has_value()) << error;
  EXPECT_EQ(s->spec.config.traffic.model, TrafficModel::kParetoOnOff);
  EXPECT_DOUBLE_EQ(s->spec.config.traffic.pareto.alpha, 1.4);
  EXPECT_DOUBLE_EQ(s->spec.config.traffic.pareto.mean_on_s, 2);
  EXPECT_DOUBLE_EQ(s->spec.config.traffic.pareto.mean_off_s, 8);
  EXPECT_DOUBLE_EQ(s->spec.config.link_loss_rate, 0.01);
}

TEST(ScenarioParser, CommentsAndBlankLines) {
  std::string error;
  const auto s = parse(
      "# full-line comment\n"
      "\n"
      "topology net1  # trailing comment\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
}

struct BadCase {
  const char* name;
  const char* text;
  const char* expect;  // substring of the error
};

class ScenarioErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(ScenarioErrors, ReportsLineAndCause) {
  std::string error;
  const auto s = parse(GetParam().text, &error);
  EXPECT_FALSE(s.has_value());
  EXPECT_NE(error.find(GetParam().expect), std::string::npos)
      << "actual error: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScenarioErrors,
    ::testing::Values(
        BadCase{"empty", "", "no topology"},
        BadCase{"no_flows", "node a\nnode b\nlink a b\n", "no flows"},
        BadCase{"unknown_directive", "frobnicate 3\n", "unknown directive"},
        BadCase{"unknown_topology", "topology arpanet\n", "unknown built-in"},
        BadCase{"dup_node", "node a\nnode a\n", "duplicate node"},
        BadCase{"builtin_then_node", "topology net1\nnode x\n", "conflicts"},
        BadCase{"node_then_builtin", "node x\ntopology net1\n", "conflicts"},
        BadCase{"link_unknown_node", "node a\nlink a zz\n", "unknown node"},
        BadCase{"flow_no_rate", "topology net1\nflow 0 7\n", "rate"},
        BadCase{"bad_mode", "topology net1\nmode ospf\n", "unknown mode"},
        BadCase{"bad_estimator", "topology net1\nestimator psychic\n",
                "unknown estimator"},
        BadCase{"bad_number", "topology net1\ntl banana\n", "number"},
        BadCase{"negative", "topology net1\nduration -5\n", "number"},
        BadCase{"bad_option", "topology net1\nbursty on=fast\n", "bad option"},
        BadCase{"hello_dead", "topology net1\nhello interval=2 dead=1\n",
                "dead interval"},
        BadCase{"fail_unknown", "topology net1\nfail 10 0 zz\n",
                "unknown node"},
        BadCase{"pareto_alpha", "topology net1\npareto alpha=0.9\n", "alpha"},
        BadCase{"loss_range", "topology net1\nloss 1.5\n", "rate"}),
    [](const auto& info) { return info.param.name; });

TEST(ScenarioParser, WorkloadDirectives) {
  std::string error;
  const auto s = parse(R"(
    topology cairn
    hello interval=1 dead=3.5
    adversarial w=3 eps=0.4 peak=5 sync=0
    diurnal period=30 amp=0.2 phase=3
    flashcrowd mit start=10 ramp=2 hold=4 peak=2.5
    dutycycle bbn bell period=5 on=0.7 start=2 stop=20 p_bad=0.4 loss_bad=0.3
    stability 0.5 window=6 slope=0.01 delay_factor=3 persist=5
  )",
                       &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto& traffic = s->spec.config.traffic;
  EXPECT_EQ(traffic.model, TrafficModel::kAdversarial);
  EXPECT_DOUBLE_EQ(traffic.adversarial.w_s, 3);
  EXPECT_DOUBLE_EQ(traffic.adversarial.eps, 0.4);
  EXPECT_DOUBLE_EQ(traffic.adversarial.peak, 5);
  EXPECT_FALSE(traffic.adversarial.sync);
  EXPECT_DOUBLE_EQ(traffic.diurnal_period_s, 30);
  EXPECT_DOUBLE_EQ(traffic.diurnal_amplitude, 0.2);
  EXPECT_DOUBLE_EQ(traffic.diurnal_phase_s, 3);
  ASSERT_EQ(traffic.flash_crowds.size(), 1u);
  EXPECT_EQ(traffic.flash_crowds[0].dst, "mit");
  EXPECT_DOUBLE_EQ(traffic.flash_crowds[0].start, 10);
  EXPECT_DOUBLE_EQ(traffic.flash_crowds[0].ramp_s, 2);
  EXPECT_DOUBLE_EQ(traffic.flash_crowds[0].hold_s, 4);
  EXPECT_DOUBLE_EQ(traffic.flash_crowds[0].peak, 2.5);
  ASSERT_EQ(s->spec.config.faults.duty_cycles.size(), 1u);
  const auto& duty = s->spec.config.faults.duty_cycles[0];
  EXPECT_EQ(duty.a, "bbn");
  EXPECT_EQ(duty.b, "bell");
  EXPECT_DOUBLE_EQ(duty.period, 5);
  EXPECT_DOUBLE_EQ(duty.on_fraction, 0.7);
  EXPECT_DOUBLE_EQ(duty.start, 2);
  EXPECT_DOUBLE_EQ(duty.stop, 20);
  EXPECT_TRUE(duty.lossy);
  EXPECT_DOUBLE_EQ(duty.loss.p_bad_good, 0.4);
  EXPECT_DOUBLE_EQ(duty.loss.loss_bad, 0.3);
  const auto& stab = s->spec.config.stability;
  EXPECT_DOUBLE_EQ(stab.interval, 0.5);
  EXPECT_DOUBLE_EQ(stab.window, 6);
  EXPECT_DOUBLE_EQ(stab.slope_capacity_fraction, 0.01);
  EXPECT_DOUBLE_EQ(stab.delay_factor, 3);
  EXPECT_EQ(stab.persistence, 5);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadCases, ScenarioErrors,
    ::testing::Values(
        BadCase{"unknown_option_key",
                "topology net1\nadversarial w=4 wep=1\n",
                "unknown option key"},
        BadCase{"dutycycle_typo_key",
                "topology cairn\ndutycycle bbn bell preiod=4\n",
                "unknown option key"},
        BadCase{"adversarial_peak", "topology net1\nadversarial peak=0.5\n",
                "peak"},
        BadCase{"diurnal_needs_period", "topology net1\ndiurnal amp=0.5\n",
                "period"},
        BadCase{"flashcrowd_unknown_dst", "topology net1\nflashcrowd zz\n",
                "unknown node"},
        BadCase{"stability_window", "topology net1\nstability 2 window=3\n",
                "window"},
        BadCase{"dutycycle_on_fraction",
                "topology cairn\ndutycycle bbn bell on=1.5\n", "on fraction"},
        BadCase{"dutycycle_gilbert_conflict",
                "topology cairn\n"
                "hello interval=1 dead=3.5\n"
                "gilbert bbn bell p_good=0.1 loss_bad=0.2\n"
                "dutycycle bell bbn period=4 on=0.5 loss_bad=0.1\n",
                "one loss model"}),
    [](const auto& info) { return info.param.name; });

TEST(ScenarioParser, CheckpointDirective) {
  std::string error;
  const auto s = parse(R"(
    topology net1
    checkpoint interval=5 path=/tmp/snap.mdrk
  )",
                       &error);
  ASSERT_TRUE(s.has_value()) << error;
  EXPECT_DOUBLE_EQ(s->spec.config.checkpoint_interval, 5.0);
  EXPECT_EQ(s->spec.config.checkpoint_path, "/tmp/snap.mdrk");

  // Both keys are mandatory; bad values and stray keys are rejected.
  EXPECT_FALSE(parse("topology net1\ncheckpoint interval=5\n", &error));
  EXPECT_NE(error.find("path"), std::string::npos);
  EXPECT_FALSE(parse("topology net1\ncheckpoint path=x.mdrk\n", &error));
  EXPECT_FALSE(
      parse("topology net1\ncheckpoint interval=0 path=x.mdrk\n", &error));
  EXPECT_FALSE(
      parse("topology net1\ncheckpoint interval=-1 path=x.mdrk\n", &error));
  EXPECT_FALSE(
      parse("topology net1\ncheckpoint interval=5 path=x.mdrk bogus=1\n",
            &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(ScenarioParser, SourceNamePrefixesDiagnostics) {
  std::istringstream in("topology net1\nmode ospf\n");
  std::string error;
  EXPECT_FALSE(parse_scenario(in, &error, "myfile.scn").has_value());
  EXPECT_NE(error.find("myfile.scn: line 2"), std::string::npos) << error;
}

TEST(ScenarioParser, ValidScenarioIgnoresSourceName) {
  std::istringstream in("topology net1\n");
  std::string error;
  EXPECT_TRUE(parse_scenario(in, &error, "myfile.scn").has_value()) << error;
}

TEST(ScenarioParser, ErrorsCarryLineNumbers) {
  std::string error;
  const auto s = parse("topology net1\n\nmode ospf\n", &error);
  EXPECT_FALSE(s.has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(ScenarioRunner, RunsAllThreeModes) {
  const std::string base = R"(
    node a
    node b
    node c
    link a b
    link b c
    link a c
    flow a c rate=2e6
    duration 10
    warmup 2
    traffic_start 2
  )";
  for (const std::string mode : {"mp", "sp", "opt"}) {
    std::string error;
    auto s = parse(base + "mode " + mode + "\n", &error);
    ASSERT_TRUE(s.has_value()) << error;
    const auto result = run_scenario(*s);
    EXPECT_GT(result.flows[0].delivered, 500u) << mode;
    EXPECT_GT(result.flows[0].mean_delay_s, 0.0) << mode;
  }
}

TEST(ScenarioRunner, LoadScenarioReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(load_scenario("/nonexistent/file.scn", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(ScenarioRunner, ShippedScenariosParse) {
  for (const char* path : {"examples/scenarios/cairn_mp.scn",
                           "examples/scenarios/failure.scn",
                           "examples/scenarios/selfsimilar.scn",
                           "examples/scenarios/adversarial.scn",
                           "examples/scenarios/flashcrowd.scn",
                           "examples/scenarios/dutycycle.scn"}) {
    std::string error;
    // Tests run from the build tree; look relative to the source root too.
    auto s = load_scenario(path, &error);
    if (!s.has_value()) {
      s = load_scenario(std::string(MDR_SOURCE_DIR) + "/" + path, &error);
    }
    EXPECT_TRUE(s.has_value()) << path << ": " << error;
  }
}

}  // namespace
}  // namespace mdr::sim
