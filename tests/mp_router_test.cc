// Unit tests for src/core/mp_router: IH-on-route-change, AH-on-Ts-tick,
// SP mode, and forwarding realization of phi.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/mp_router.h"
#include "harness.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace mdr::core {
namespace {

using graph::Cost;
using graph::NodeId;
using RouterHarness = test::ProtocolHarness<MpRouter>;

RouterHarness::Factory router_factory(MpRouterOptions options = {}) {
  return [options](NodeId self, std::size_t n, proto::LsuSink& sink) {
    return std::make_unique<MpRouter>(self, n, sink, options);
  };
}

std::vector<Cost> uniform_costs(const graph::Topology& topo, Cost c = 1.0) {
  return std::vector<Cost>(topo.num_links(), c);
}

double weight_sum(std::span<const ForwardingChoice> entry) {
  double s = 0;
  for (const auto& c : entry) s += c.weight;
  return s;
}

// Two disjoint two-hop paths 0->1->3 and 0->2->3.
graph::Topology two_path() {
  graph::Topology t;
  t.add_nodes(4);
  t.add_duplex(0, 1);
  t.add_duplex(0, 2);
  t.add_duplex(1, 3);
  t.add_duplex(2, 3);
  return t;
}

TEST(MpRouter, BuildsForwardingTablesAfterConvergence) {
  const auto topo = topo::make_net1();
  RouterHarness h(topo, uniform_costs(topo), router_factory());
  Rng rng(1);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  const auto n = static_cast<NodeId>(topo.num_nodes());
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto entry = h.node(i).forwarding(j);
      ASSERT_FALSE(entry.empty()) << i << "->" << j;
      EXPECT_NEAR(weight_sum(entry), 1.0, 1e-9);
      for (const auto& c : entry) EXPECT_GE(c.weight, 0.0);
    }
  }
}

TEST(MpRouter, InitialSplitFollowsIhOverEqualPaths) {
  const auto topo = two_path();
  RouterHarness h(topo, uniform_costs(topo), router_factory());
  Rng rng(2);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  const auto entry = h.node(0).forwarding(3);
  ASSERT_EQ(entry.size(), 2u);  // both neighbors are successors
  EXPECT_NEAR(entry[0].weight, 0.5, 1e-9);
  EXPECT_NEAR(entry[1].weight, 0.5, 1e-9);
}

TEST(MpRouter, ShortTermCostsShiftTrafficViaAh) {
  const auto topo = two_path();
  RouterHarness h(topo, uniform_costs(topo), router_factory());
  Rng rng(3);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  // Ts tick: the adjacent link to neighbor 1 got congested.
  h.node(0).update_short_term_costs({{1, 3.0}, {2, 1.0}});
  const auto entry = h.node(0).forwarding(3);
  ASSERT_EQ(entry.size(), 2u);
  const double w1 = entry[0].neighbor == 1 ? entry[0].weight : entry[1].weight;
  const double w2 = entry[0].neighbor == 2 ? entry[0].weight : entry[1].weight;
  EXPECT_LT(w1, 0.5);
  EXPECT_GT(w2, 0.5);
  EXPECT_NEAR(w1 + w2, 1.0, 1e-9);
}

TEST(MpRouter, RouteChangeTriggersFreshIhDistribution) {
  const auto topo = two_path();
  RouterHarness h(topo, uniform_costs(topo), router_factory());
  Rng rng(4);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  // Drain (nearly) everything onto neighbor 1 via repeated AH; the default
  // damping of 0.5 decays the drained successor's share geometrically.
  for (int i = 0; i < 60; ++i) {
    h.node(0).update_short_term_costs({{1, 1.0}, {2, 4.0}});
  }
  {
    const auto entry = h.node(0).forwarding(3);
    const double w2 =
        entry[0].neighbor == 2 ? entry[0].weight : entry[1].weight;
    EXPECT_NEAR(w2, 0.0, 1e-9);
  }
  // Long-term route change: link (1,3) becomes expensive; after the flood
  // the successor set changes, so IH redistributes from scratch.
  h.change_cost(1, 3, 10.0);
  h.run_to_quiescence(rng);
  const auto entry = h.node(0).forwarding(3);
  ASSERT_FALSE(entry.empty());
  for (const auto& c : entry) EXPECT_GT(c.weight, 0.0);
  EXPECT_NEAR(weight_sum(entry), 1.0, 1e-9);
}

TEST(MpRouter, SinglePathModeUsesOneNextHop) {
  const auto topo = topo::make_net1();
  RouterHarness h(topo, uniform_costs(topo),
                  router_factory(MpRouterOptions{.single_path = true}));
  Rng rng(5);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  const auto n = static_cast<NodeId>(topo.num_nodes());
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto entry = h.node(i).forwarding(j);
      int positive = 0;
      for (const auto& c : entry) positive += c.weight > 0 ? 1 : 0;
      EXPECT_EQ(positive, 1) << i << "->" << j;
    }
  }
}

TEST(MpRouter, SinglePathFollowsShortTermCosts) {
  const auto topo = two_path();
  RouterHarness h(topo, uniform_costs(topo),
                  router_factory(MpRouterOptions{.single_path = true}));
  Rng rng(6);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  h.node(0).update_short_term_costs({{1, 5.0}, {2, 1.0}});
  Rng pick(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(h.node(0).pick_next_hop(3, pick), 2);
  }
}

TEST(MpRouter, PickNextHopMatchesWeights) {
  const auto topo = two_path();
  RouterHarness h(topo, uniform_costs(topo), router_factory());
  Rng rng(8);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  h.node(0).update_short_term_costs({{1, 1.0}, {2, 2.0}});
  const auto entry = h.node(0).forwarding(3);
  std::map<NodeId, double> weight;
  for (const auto& c : entry) weight[c.neighbor] = c.weight;

  Rng pick(9);
  std::map<NodeId, int> counts;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) ++counts[h.node(0).pick_next_hop(3, pick)];
  for (const auto& [k, w] : weight) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, w, 0.01) << "nbr " << k;
  }
}

TEST(MpRouter, NoRouteYieldsInvalidNextHop) {
  const auto topo = two_path();
  RouterHarness h(topo, uniform_costs(topo), router_factory());
  Rng rng(10);
  // Links never brought up: no routes anywhere.
  EXPECT_EQ(h.node(0).pick_next_hop(3, rng), graph::kInvalidNode);
  EXPECT_TRUE(h.node(0).forwarding(3).empty());
}

TEST(MpRouter, SurvivesPartitionAndHeals) {
  const auto topo = two_path();
  RouterHarness h(topo, uniform_costs(topo), router_factory());
  Rng rng(11);
  h.bring_up_all(&rng);
  h.run_to_quiescence(rng);
  h.fail_duplex(0, 1);
  h.fail_duplex(0, 2);
  h.run_to_quiescence(rng);
  EXPECT_TRUE(h.node(0).forwarding(3).empty());
  h.restore_duplex(0, 1);
  h.restore_duplex(0, 2);
  h.run_to_quiescence(rng);
  EXPECT_FALSE(h.node(0).forwarding(3).empty());
  EXPECT_NEAR(weight_sum(h.node(0).forwarding(3)), 1.0, 1e-9);
}

}  // namespace
}  // namespace mdr::core
