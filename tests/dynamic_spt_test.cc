// Unit tests for src/graph/dynamic_spt: the incremental SPT must be
// bit-identical to a from-scratch graph::dijkstra after every repair —
// same distance doubles, same lowest-id parent tie-break — because the
// protocol layer relies on that equivalence for byte-stable outputs.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/dynamic_spt.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace mdr::graph {
namespace {

// Mirror of the edge set a DynamicSpt holds, for feeding dijkstra().
using EdgeMap = std::map<std::pair<NodeId, NodeId>, Cost>;

std::vector<CostedEdge> as_edges(const EdgeMap& m) {
  std::vector<CostedEdge> out;
  out.reserve(m.size());
  for (const auto& [key, cost] : m) {
    out.push_back(CostedEdge{key.first, key.second, cost});
  }
  return out;
}

// Asserts spt == dijkstra(edges) exactly: bitwise-equal distances and
// identical parents (including unreachable markers).
void expect_canonical(const DynamicSpt& spt, const EdgeMap& edges,
                      const char* what) {
  const auto truth =
      dijkstra(spt.num_nodes(), as_edges(edges), spt.root());
  ASSERT_EQ(spt.dist().size(), truth.dist.size()) << what;
  for (std::size_t v = 0; v < truth.dist.size(); ++v) {
    EXPECT_EQ(spt.dist()[v], truth.dist[v]) << what << " dist of node " << v;
    EXPECT_EQ(spt.parent()[v], truth.parent[v])
        << what << " parent of node " << v;
  }
}

TEST(DynamicSpt, EmptyGraphOnlyRootReachable) {
  DynamicSpt spt(4, 0);
  const auto delta = spt.update();
  EXPECT_TRUE(delta.dist_changed.empty());
  EXPECT_EQ(spt.dist()[0], 0.0);
  EXPECT_TRUE(spt.reachable(0));
  EXPECT_FALSE(spt.reachable(3));
}

TEST(DynamicSpt, InsertGrowsTree) {
  DynamicSpt spt(4, 0);
  EdgeMap edges;
  const auto add = [&](NodeId u, NodeId v, Cost c) {
    spt.set_edge(u, v, c);
    edges[{u, v}] = c;
  };
  add(0, 1, 1.0);
  add(1, 2, 2.0);
  const auto delta = spt.update();
  EXPECT_EQ(delta.dist_changed, (std::vector<NodeId>{1, 2}));
  expect_canonical(spt, edges, "after inserts");
  EXPECT_EQ(spt.dist()[2], 3.0);

  // A shortcut lowers node 2 without touching node 1.
  add(0, 2, 0.5);
  const auto d2 = spt.update();
  EXPECT_EQ(d2.dist_changed, (std::vector<NodeId>{2}));
  ASSERT_EQ(d2.parent_changed.size(), 1u);
  EXPECT_EQ(d2.parent_changed[0], (std::pair<NodeId, NodeId>{2, 1}));
  expect_canonical(spt, edges, "after shortcut");
}

TEST(DynamicSpt, CostIncreaseRepairsSubtree) {
  DynamicSpt spt(5, 0);
  EdgeMap edges;
  const auto add = [&](NodeId u, NodeId v, Cost c) {
    spt.set_edge(u, v, c);
    edges[{u, v}] = c;
  };
  // Chain 0-1-2-3-4 plus a detour 0->2 that is initially too expensive.
  add(0, 1, 1.0);
  add(1, 2, 1.0);
  add(2, 3, 1.0);
  add(3, 4, 1.0);
  add(0, 2, 10.0);
  spt.update();
  expect_canonical(spt, edges, "initial chain");

  // Worsen the tree edge 1->2: nodes {2,3,4} must re-attach via 0->2.
  add(1, 2, 50.0);
  const auto delta = spt.update();
  EXPECT_EQ(delta.dist_changed, (std::vector<NodeId>{2, 3, 4}));
  expect_canonical(spt, edges, "after increase");
  EXPECT_EQ(spt.dist()[2], 10.0);
}

TEST(DynamicSpt, DeleteDisconnectsSubtree) {
  DynamicSpt spt(4, 0);
  EdgeMap edges;
  spt.set_edge(0, 1, 1.0);
  edges[{0, 1}] = 1.0;
  spt.set_edge(1, 2, 1.0);
  edges[{1, 2}] = 1.0;
  spt.set_edge(2, 3, 1.0);
  edges[{2, 3}] = 1.0;
  spt.update();

  spt.remove_edge(0, 1);
  edges.erase({0, 1});
  const auto delta = spt.update();
  EXPECT_EQ(delta.dist_changed, (std::vector<NodeId>{1, 2, 3}));
  expect_canonical(spt, edges, "after cut");
  EXPECT_FALSE(spt.reachable(1));
  EXPECT_FALSE(spt.reachable(3));
  EXPECT_TRUE(spt.reachable(0));
}

TEST(DynamicSpt, MixedBatchAppliesAtomically) {
  // An increase and a decrease staged together: the lowered edge must be
  // visible to the subtree cut out by the raised one (phase-1 repair has
  // to see phase-2 material and vice versa).
  DynamicSpt spt(4, 0);
  EdgeMap edges;
  const auto add = [&](NodeId u, NodeId v, Cost c) {
    spt.set_edge(u, v, c);
    edges[{u, v}] = c;
  };
  add(0, 1, 1.0);
  add(1, 2, 1.0);
  add(0, 3, 9.0);
  spt.update();

  add(1, 2, 100.0);  // increase: cuts node 2 loose
  add(3, 2, 1.0);    // new edge: the repair path
  const auto delta = spt.update();
  expect_canonical(spt, edges, "after mixed batch");
  EXPECT_EQ(spt.dist()[2], 10.0);
  EXPECT_EQ(spt.parent()[2], 3);
  EXPECT_EQ(delta.dist_changed, (std::vector<NodeId>{2}));
}

TEST(DynamicSpt, LoweredRegionMemberPropagatesDownstream) {
  // A node inside the cut region ends up CLOSER than before (its tree edge
  // vanished but a staged cheaper path exists). Its downstream neighbors
  // outside the region must still be relaxed — the phase-1 -> phase-2
  // hand-off.
  DynamicSpt spt(4, 0);
  EdgeMap edges;
  const auto add = [&](NodeId u, NodeId v, Cost c) {
    spt.set_edge(u, v, c);
    edges[{u, v}] = c;
  };
  add(0, 1, 5.0);
  add(1, 2, 5.0);  // node 2 at 10 via 1
  add(2, 3, 1.0);  // node 3 at 11
  spt.update();
  add(1, 2, 50.0);  // cut 2 (and 3) out of the tree
  add(0, 2, 2.0);   // ... but 2 re-attaches cheaper than it ever was
  const auto delta = spt.update();
  expect_canonical(spt, edges, "after lowering inside region");
  EXPECT_EQ(spt.dist()[2], 2.0);
  EXPECT_EQ(spt.dist()[3], 3.0);
  EXPECT_EQ(delta.dist_changed, (std::vector<NodeId>{2, 3}));
}

TEST(DynamicSpt, TieBreakMatchesDijkstraLowestParent) {
  // Two equal-cost two-hop paths to node 3: parent must be the lowest id.
  DynamicSpt spt(4, 0);
  EdgeMap edges;
  const auto add = [&](NodeId u, NodeId v, Cost c) {
    spt.set_edge(u, v, c);
    edges[{u, v}] = c;
  };
  add(0, 2, 1.0);
  add(2, 3, 1.0);
  spt.update();
  EXPECT_EQ(spt.parent()[3], 2);
  add(0, 1, 1.0);
  add(1, 3, 1.0);  // equally good path via the lower-id node 1
  spt.update();
  expect_canonical(spt, edges, "after tie");
  EXPECT_EQ(spt.parent()[3], 1);
}

TEST(DynamicSpt, UnusableEdgesDegradeToRemoval) {
  DynamicSpt spt(3, 0);
  EdgeMap edges;
  spt.set_edge(0, 1, 1.0);
  edges[{0, 1}] = 1.0;
  spt.set_edge(1, 1, 1.0);   // self-loop: ignored
  spt.set_edge(0, 7, 1.0);   // out of range: ignored
  spt.set_edge(0, 2, -3.0);  // negative: no edge
  spt.update();
  expect_canonical(spt, edges, "after unusable edges");
  // A previously-usable edge overwritten with an unusable cost vanishes.
  spt.set_edge(0, 1, kInfCost);
  edges.erase({0, 1});
  spt.update();
  expect_canonical(spt, edges, "after inf overwrite");
  EXPECT_FALSE(spt.reachable(1));
}

TEST(DynamicSpt, NoOpUpdateReportsNothing) {
  DynamicSpt spt(3, 0);
  spt.set_edge(0, 1, 1.0);
  spt.update();
  spt.set_edge(0, 1, 1.0);  // identical re-set
  const auto delta = spt.update();
  EXPECT_TRUE(delta.dist_changed.empty());
  EXPECT_TRUE(delta.parent_changed.empty());
}

TEST(DynamicSpt, RebuildMatchesIncrementalState) {
  Rng rng(7);
  const auto topo = topo::make_waxman(40, 0.6, 0.4, rng);
  DynamicSpt inc(topo.num_nodes(), 0);
  EdgeMap edges;
  for (LinkId id = 0; id < static_cast<LinkId>(topo.num_links()); ++id) {
    const auto& l = topo.link(id);
    const Cost c = rng.uniform(0.5, 4.0);
    inc.set_edge(l.from, l.to, c);
    edges[{l.from, l.to}] = c;
  }
  inc.update();
  DynamicSpt fresh = inc;
  fresh.rebuild();
  EXPECT_EQ(inc.dist(), fresh.dist());
  EXPECT_EQ(inc.parent(), fresh.parent());
  expect_canonical(inc, edges, "incremental vs rebuild");
}

// The core property: a long random churn of upserts/removals, checked
// against from-scratch Dijkstra after every single repair.
TEST(DynamicSpt, RandomChurnStaysCanonical) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed);
    const int n = 24;
    DynamicSpt spt(n, 0);
    EdgeMap edges;
    for (int step = 0; step < 300; ++step) {
      // 1-3 staged changes per batch, biased toward upserts.
      const int batch = rng.uniform_int(1, 3);
      for (int i = 0; i < batch; ++i) {
        const NodeId u = rng.uniform_int(0, n - 1);
        const NodeId v = rng.uniform_int(0, n - 1);
        if (!edges.empty() && rng.bernoulli(0.3)) {
          const auto it =
              std::next(edges.begin(),
                        rng.uniform_int(0, static_cast<int>(edges.size()) - 1));
          spt.remove_edge(it->first.first, it->first.second);
          edges.erase(it);
        } else if (u != v) {
          const Cost c = rng.uniform(0.1, 5.0);
          spt.set_edge(u, v, c);
          edges[{u, v}] = c;
        }
      }
      // The delta must exactly list what moved.
      std::vector<Cost> old_dist(spt.dist());
      std::vector<NodeId> old_parent(spt.parent());
      const auto delta = spt.update();
      ASSERT_NO_FATAL_FAILURE(
          expect_canonical(spt, edges, "during churn"));
      std::vector<NodeId> moved;
      std::vector<std::pair<NodeId, NodeId>> reparented;
      for (NodeId v = 0; v < n; ++v) {
        if (spt.dist()[v] != old_dist[v]) moved.push_back(v);
        if (spt.parent()[v] != old_parent[v]) {
          reparented.emplace_back(v, old_parent[v]);
        }
      }
      ASSERT_EQ(delta.dist_changed, moved) << "seed " << seed;
      ASSERT_EQ(delta.parent_changed, reparented) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mdr::graph
