// Tests for reporting/output utilities: DelayTable rendering, the logging
// shim, and small EventQueue conveniences.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.h"
#include "sim/event_queue.h"
#include "util/log.h"

namespace mdr {
namespace {

TEST(DelayTablePrint, RendersTitleLabelsAndMilliseconds) {
  sim::DelayTable table({"a->b", "c->d"});
  table.add_series("OPT", {1e-3, 2e-3});
  table.add_series("MP", {1.5e-3, 2.5e-3});
  std::ostringstream out;
  table.print(out, "test table");
  const std::string text = out.str();
  EXPECT_NE(text.find("== test table =="), std::string::npos);
  EXPECT_NE(text.find("a->b"), std::string::npos);
  EXPECT_NE(text.find("OPT"), std::string::npos);
  EXPECT_NE(text.find("1.000 ms"), std::string::npos);
  EXPECT_NE(text.find("2.500 ms"), std::string::npos);
  // One row per flow plus the header.
  std::size_t rows = 0;
  for (const char c : text) rows += c == '\n';
  EXPECT_EQ(rows, 4u);
}

TEST(DelayTablePrint, StreamFormattingIsRestored) {
  sim::DelayTable table({"x->y"});
  table.add_series("S", {1e-3});
  std::ostringstream out;
  table.print(out, "t");
  out << 0.123456789;  // must not inherit fixed/precision(3)
  EXPECT_NE(out.str().find("0.123457"), std::string::npos);
}

TEST(Logging, LevelGatesOutput) {
  const auto previous = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(static_cast<int>(log_level()), 0);
  // Below-threshold logging must be a no-op (no way to capture stderr
  // portably here; we at least exercise both paths).
  MDR_LOG_DEBUG("invisible %d", 42);
  MDR_LOG_ERROR("visible %d", 42);
  set_log_level(LogLevel::kDebug);
  MDR_LOG_DEBUG("now visible");
  set_log_level(previous);
}

TEST(EventQueueMisc, RunForAdvancesRelative) {
  sim::EventQueue q;
  int fired = 0;
  q.schedule_in(1.0, [&] { ++fired; });
  q.run_for(0.5);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(q.now(), 0.5);
  q.run_for(1.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 1.5);
}

}  // namespace
}  // namespace mdr
