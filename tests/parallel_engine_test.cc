// Sharded conservative parallel engine: the SPSC handoff primitives in
// isolation, the window barrier's completion protocol, and the headline
// property — same-seed output is byte-identical for ANY shard count, under
// full chaos (crashes, flaps, bursty loss, corruption) and under a flap
// storm with the resilience stack on. See docs/SIMULATOR.md "Parallel
// engine".
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/sampler.h"
#include "runner/experiment_runner.h"
#include "sim/event_queue.h"
#include "sim/network_sim.h"
#include "sim/parallel_engine.h"
#include "sim/spsc_ring.h"
#include "topo/builders.h"
#include "topo/flows.h"

namespace mdr {
namespace {

// ---------------------------------------------------------------- SPSC ring

TEST(SpscRing, RoundsCapacityUpToAPowerOfTwo) {
  EXPECT_EQ(sim::SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(sim::SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(sim::SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(sim::SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FifoAcrossManyWraparounds) {
  sim::SpscRing<int> ring(8);
  int next_push = 0, next_pop = 0;
  // Interleave pushes and pops so the cursors wrap the 8-slot ring many
  // times; FIFO order must survive every wraparound.
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 3; ++i) {
      int v = next_push;
      ASSERT_TRUE(ring.try_push(v));
      ++next_push;
    }
    int out = -1;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRefusesPushAndLeavesItemIntact) {
  sim::SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(rejected));
  EXPECT_EQ(rejected, 99);  // untouched on failure
  EXPECT_EQ(ring.size(), 4u);

  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(rejected));  // one slot freed
  // Drain: 1, 2, 3, then the late 99.
  for (const int want : {1, 2, 3, 99}) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesOrder) {
  // The real usage pattern: one producing thread, one consuming thread,
  // tiny ring so both sides hit the full/empty edges constantly. Run under
  // TSan (MDR_SANITIZE=thread) this also proves the memory ordering.
  sim::SpscRing<std::uint64_t> ring(16);
  constexpr std::uint64_t kItems = 200000;
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems;) {
      std::uint64_t v = i;
      if (ring.try_push(v)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expect = 0;
  while (expect < kItems) {
    std::uint64_t out = 0;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(HandoffChannel, OverflowSpillsAndDrainPreservesPushOrder) {
  sim::HandoffChannel channel(4);  // ring holds 4; the rest must spill
  for (int i = 0; i < 10; ++i) {
    sim::HandoffItem item;
    item.deliver_at = i;
    item.key = sim::delivery_key(0, static_cast<std::uint64_t>(i));
    channel.push(std::move(item));
  }
  EXPECT_EQ(channel.spilled(), 6u);

  std::vector<double> order;
  channel.drain([&order](sim::HandoffItem&& item) {
    order.push_back(item.deliver_at);
  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);  // ring then spill

  // The spill buffer was consumed, not copied: a second drain is empty.
  int drained = 0;
  channel.drain([&drained](sim::HandoffItem&&) { ++drained; });
  EXPECT_EQ(drained, 0);
  EXPECT_EQ(channel.spilled(), 6u);  // cumulative statistic
}

TEST(DeliveryKey, IsUniqueAndSortsAfterLocalSeqs) {
  const std::uint64_t k = sim::delivery_key(3, 7);
  EXPECT_TRUE(k & (1ull << 63));  // sorts after any local FIFO seq
  EXPECT_NE(sim::delivery_key(3, 7), sim::delivery_key(3, 8));
  EXPECT_NE(sim::delivery_key(3, 7), sim::delivery_key(4, 7));
  EXPECT_LT(sim::delivery_key(3, 7), sim::delivery_key(3, 8));
  EXPECT_LT(sim::delivery_key(3, 999), sim::delivery_key(4, 0));
}

// ------------------------------------------------------------ WindowBarrier

TEST(WindowBarrier, CompletionRunsExactlyOncePerWindowWhileOthersPark) {
  constexpr int kThreads = 4;
  constexpr int kWindows = 200;
  std::atomic<int> in_window{0};
  int completions = 0;          // written only inside the completion hook
  std::vector<int> seen(kWindows, 0);
  sim::WindowBarrier barrier(kThreads, [&] {
    // Every participant has arrived: the per-window counter must be full.
    EXPECT_EQ(in_window.load(), kThreads);
    in_window.store(0);
    seen[completions] += 1;
    ++completions;
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int w = 0; w < kWindows; ++w) {
        in_window.fetch_add(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completions, kWindows);
  for (const int count : seen) EXPECT_EQ(count, 1);
}

// --------------------------------------------------------- shard assignment

TEST(ShardAssignment, IsAStableNameHashIndependentOfShardCount) {
  const auto topo = topo::make_cairn();
  const auto by4 = sim::assign_shards(topo, 4);
  ASSERT_EQ(by4.size(), topo.num_nodes());
  for (const int s : by4) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
  }
  // Recomputation is identical, and each node's shard depends only on its
  // own name: n's shard at 4 shards is fnv1a(name) % 4 by definition.
  EXPECT_EQ(by4, sim::assign_shards(topo, 4));
  for (graph::NodeId n = 0; n < static_cast<graph::NodeId>(topo.num_nodes());
       ++n) {
    EXPECT_EQ(static_cast<std::uint64_t>(by4[n]),
              sim::fnv1a(topo.name(n)) % 4);
  }
  // One shard degenerates to everything-on-0.
  for (const int s : sim::assign_shards(topo, 1)) EXPECT_EQ(s, 0);
}

TEST(ShardAssignment, LookaheadIsTheMinCrossShardPropDelay) {
  const auto topo = topo::make_net1();  // every prop delay is 100 us
  const auto shard_of = sim::assign_shards(topo, 4);
  EXPECT_DOUBLE_EQ(sim::min_cross_shard_prop(topo, shard_of), 100e-6);
  // All on one shard: no cross-shard link, lookahead is unbounded.
  const std::vector<int> all_zero(topo.num_nodes(), 0);
  EXPECT_GT(sim::min_cross_shard_prop(topo, all_zero), 1e30);
}

// --------------------------------------------------- typed timer scheduling

TEST(TimerClasses, TypedScheduleIsCountedPerClassAndShimsMapToGeneric) {
  sim::EventQueue events;
  int fired = 0;
  events.schedule_timer(sim::TimerClass::kSampler, 1.0, [&] { ++fired; });
  events.schedule_timer_in(sim::TimerClass::kMonitor, 2.0, [&] { ++fired; });
  events.schedule_timer_at(3.0, [&] { ++fired; });  // compat shim
  events.schedule_timer_in(4.0, [&] { ++fired; });  // compat shim
  EXPECT_EQ(events.timers_scheduled(sim::TimerClass::kSampler), 1u);
  EXPECT_EQ(events.timers_scheduled(sim::TimerClass::kMonitor), 1u);
  EXPECT_EQ(events.timers_scheduled(sim::TimerClass::kGeneric), 2u);
  events.run_until(5.0);
  EXPECT_EQ(fired, 4);
}

// ------------------------------------------------- shard-count determinism

// Serializes EVERYTHING a run reports — per-flow aggregates, monitor
// report, merged metric registry — through the real runner path, so a
// single byte of divergence anywhere in the pipeline fails the property.
// write_results_json rows carry two fields that legitimately differ here:
// the flat "host" object (wall clock / peak RSS vary between any two runs)
// and "shard_events" (per-shard counts depend on the shard count by
// definition). Strip both before comparing, exactly like
// tests/mdrsim_telemetry.cmake strips "host" before its byte comparison.
std::string strip_host_varying(const std::string& doc) {
  static const std::regex host{R"re(, "host": \{[^}]*\})re"};
  static const std::regex shard_events{R"re(, "shard_events": \[[^\]]*\])re"};
  return std::regex_replace(std::regex_replace(doc, host, ""), shard_events,
                            "");
}

std::string render_batch(const sim::ExperimentSpec& spec) {
  runner::ExperimentRunner r(runner::Options{/*jobs=*/1, /*base_seed=*/17});
  const auto batch = r.run_replicated(spec, "mp", /*replications=*/2);
  std::ostringstream out;
  runner::write_results_json(out, batch, "shard-property");
  obs::write_metrics_jsonl(out, batch.metrics, "0");
  for (const auto& run : batch.runs) {
    EXPECT_TRUE(run.monitor.has_value()) << "monitor must be on";
    if (!run.monitor.has_value()) continue;
    out << "monitor " << run.monitor->checks << " "
        << run.monitor->forwarding_loops << " " << run.monitor->blackholes
        << " " << run.monitor->accounting_leaks << "\n";
    out << "events " << run.events_processed << " lfi " << run.lfi_checks
        << "/" << run.lfi_violations << "\n";
  }
  return strip_host_varying(out.str());
}

void expect_shard_count_invariance(sim::ExperimentSpec spec) {
  spec.engine.shards = 1;
  spec.engine.ring_capacity = 8;  // tiny ring: exercise the spill path
  const std::string baseline = render_batch(spec);
  ASSERT_FALSE(baseline.empty());
  for (const int shards : {2, 4, 8}) {
    spec.engine.shards = shards;
    EXPECT_EQ(render_batch(spec), baseline) << "shards=" << shards;
  }
}

sim::SimConfig chaos_config() {
  // The chaos scenario in miniature: two crashes (one fast reboot), a
  // flapping backbone link, bursty loss, control corruption + duplication,
  // with monitor / LFI / time-series / sampler sweeps all exercising the
  // coordinator's pause plan.
  sim::SimConfig config;
  config.use_hello = true;
  config.hello.interval = 1.0;
  config.hello.dead_interval = 3.5;
  config.traffic_start = 4.0;
  config.warmup = 2.0;
  config.duration = 14.0;
  config.faults.crashes.push_back({8.0, "tioc"});
  config.faults.recoveries.push_back({11.0, "tioc"});
  config.faults.crashes.push_back({13.0, "mci-r"});
  config.faults.recoveries.push_back({13.5, "mci-r"});
  config.faults.flaps.push_back({"bbn", "bell", 4.0, 0.5, 6.0, 16.0});
  config.faults.gilbert.push_back(
      {"anl", "cmu", fault::GilbertParams{0.05, 0.3, 0.3, 0.0}});
  config.faults.chaos.corrupt_rate = 0.01;
  config.faults.chaos.duplicate_rate = 0.01;
  config.monitor_interval = 0.5;
  config.lfi_check_interval = 1.0;
  config.timeseries_interval = 2.0;
  config.sample_interval = 2.0;
  return config;
}

sim::SimConfig storm_config() {
  // The storm scenario in miniature: three flapping links under fast
  // hellos, with LSU pacing and flap damping shedding the flood.
  sim::SimConfig config;
  config.use_hello = true;
  config.hello.interval = 0.5;
  config.hello.dead_interval = 1.75;
  config.tl = 2.0;
  config.traffic_start = 4.0;
  config.warmup = 2.0;
  config.duration = 12.0;
  config.faults.flaps.push_back({"0", "9", 4.0, 0.5, 5.0, 15.0});
  config.faults.flaps.push_back({"4", "5", 4.0, 0.5, 6.0, 16.0});
  config.faults.flaps.push_back({"2", "3", 4.0, 0.5, 7.0, 15.0});
  config.pacing.enabled = true;
  config.pacing.min_interval = 0.5;
  config.pacing.max_interval = 2.0;
  config.damping.enabled = true;
  config.damping.penalty = 1.0;
  config.damping.suppress_threshold = 2.0;
  config.damping.reuse_threshold = 1.0;
  config.damping.half_life = 4.0;
  config.monitor_interval = 0.5;
  config.sample_interval = 2.0;
  return config;
}

TEST(ParallelEngine, ChaosOutputIsByteIdenticalForAnyShardCount) {
  sim::ExperimentSpec spec{topo::make_cairn(), topo::cairn_flows(0.5),
                           chaos_config(), sim::EngineSpec{}};
  expect_shard_count_invariance(std::move(spec));
}

TEST(ParallelEngine, StormOutputIsByteIdenticalForAnyShardCount) {
  sim::ExperimentSpec spec{topo::make_net1(), topo::net1_flows(0.3),
                           storm_config(), sim::EngineSpec{}};
  expect_shard_count_invariance(std::move(spec));
}

TEST(ParallelEngine, ShardedRunConservesPacketsAndKeepsInvariants) {
  sim::SimConfig config = chaos_config();
  sim::EngineSpec engine;
  engine.shards = 4;
  const auto result = sim::run_simulation(topo::make_cairn(),
                                          topo::cairn_flows(0.5), config,
                                          engine);
  EXPECT_GT(result.delivered, 0u);
  EXPECT_GT(result.events_processed, 0u);
  // LFI snapshots DO flag violations here — a crashed router's state is
  // gone mid-sweep, exactly as in the single-threaded engine (the
  // byte-identity tests above pin the counts to be engine-invariant).
  EXPECT_GT(result.lfi_checks, 0u);
  ASSERT_TRUE(result.monitor.has_value());
  EXPECT_EQ(result.monitor->forwarding_loops, 0u);
  EXPECT_EQ(result.monitor->accounting_leaks, 0u);
}

}  // namespace
}  // namespace mdr
