# ctest end-to-end check of the telemetry layer's two headline guarantees
# (docs/OBSERVABILITY.md):
#   1. Telemetry is observation-only: the --json report of a run with
#      --metrics-out/--trace/--sample-interval is byte-identical to the same
#      run without them.
#   2. Telemetry is deterministic: re-running the same seeds produces
#      byte-identical JSONL sample/metrics and trace streams.
# When a python3 is on PATH, the streams are also validated against the
# documented row schemas via scripts/check_telemetry.py.
#
# Expected definitions (see tests/CMakeLists.txt):
#   MDRSIM   - path to the mdrsim executable
#   SCENARIO - path to the scenario file to run
#   OUTDIR   - writable directory for outputs
#   CHECKER  - path to scripts/check_telemetry.py

set(base_json "${OUTDIR}/telemetry_base.json")
set(tel_json "${OUTDIR}/telemetry_on.json")

function(run_mdrsim)
  execute_process(
    COMMAND "${MDRSIM}" "${SCENARIO}" --seeds 2 --jobs 2 ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "mdrsim ${ARGN} exited with ${rc}\nstdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
endfunction()

# Baseline: no telemetry.
run_mdrsim(--json "${base_json}")

# Same run with every telemetry knob on.
run_mdrsim(--json "${tel_json}"
  --metrics-out "${OUTDIR}/telemetry_metrics.jsonl"
  --trace "${OUTDIR}/telemetry_trace.jsonl"
  --sample-interval 1)

# 1. Observation-only: the JSON report must not move by a single byte.
# The per-run "host" object (wall_clock_s, peak_rss_bytes) is host timing
# and varies between any two runs by design; it is emitted flat exactly so
# it can be stripped here before the byte comparison (docs/RUNNER.md).
file(READ "${base_json}" base_doc)
file(READ "${tel_json}" tel_doc)
string(REGEX REPLACE ", \"host\": {[^}]*}" "" base_doc "${base_doc}")
string(REGEX REPLACE ", \"host\": {[^}]*}" "" tel_doc "${tel_doc}")
if(NOT base_doc STREQUAL tel_doc)
  message(FATAL_ERROR
    "--json output changed when telemetry was enabled; telemetry must be "
    "observation-only (compare ${base_json} vs ${tel_json})")
endif()

# 2. Determinism: a second telemetry run with the same seeds must reproduce
# the JSONL streams byte for byte.
run_mdrsim(--json "${OUTDIR}/telemetry_on2.json"
  --metrics-out "${OUTDIR}/telemetry_metrics2.jsonl"
  --trace "${OUTDIR}/telemetry_trace2.jsonl"
  --sample-interval 1)
foreach(stream metrics trace)
  file(READ "${OUTDIR}/telemetry_${stream}.jsonl" first)
  file(READ "${OUTDIR}/telemetry_${stream}2.jsonl" second)
  if(first STREQUAL "")
    message(FATAL_ERROR "telemetry ${stream} stream is empty")
  endif()
  if(NOT first STREQUAL second)
    message(FATAL_ERROR
      "telemetry ${stream} stream is not deterministic across same-seed "
      "reruns (compare ${OUTDIR}/telemetry_${stream}.jsonl vs "
      "${OUTDIR}/telemetry_${stream}2.jsonl)")
  endif()
endforeach()

# Quick shape check without python: every expected row kind is present.
file(READ "${OUTDIR}/telemetry_metrics.jsonl" metrics_doc)
foreach(kind link flow control metrics)
  if(NOT metrics_doc MATCHES "\"kind\":\"${kind}\"")
    message(FATAL_ERROR "metrics stream has no '${kind}' rows")
  endif()
endforeach()
file(READ "${OUTDIR}/telemetry_trace.jsonl" trace_doc)
if(NOT trace_doc MATCHES "\"kind\":\"event\"")
  message(FATAL_ERROR "trace stream has no 'event' rows")
endif()

# Full schema validation when python3 is available (always true in CI).
find_program(PYTHON3 python3)
if(PYTHON3)
  execute_process(
    COMMAND "${PYTHON3}" "${CHECKER}"
      --samples "${OUTDIR}/telemetry_metrics.jsonl"
      --trace "${OUTDIR}/telemetry_trace.jsonl"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "schema validation failed:\n${stdout}\n${stderr}")
  endif()
  message(STATUS "${stdout}")
endif()

message(STATUS "mdrsim telemetry OK: report unchanged, streams deterministic")
