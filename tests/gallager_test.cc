// Unit tests for src/gallager: marginal distances (Eq. 4), the optimality
// gap (Eqs. 5-7) and the OPT gradient-projection iteration.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/evaluate.h"
#include "gallager/marginals.h"
#include "gallager/optimizer.h"
#include "graph/dag.h"
#include "topo/builders.h"
#include "topo/flows.h"

namespace mdr::gallager {
namespace {

using graph::NodeId;

std::size_t out_index(const graph::Topology& t, NodeId from, NodeId to) {
  const auto links = t.out_links(from);
  for (std::size_t x = 0; x < links.size(); ++x) {
    if (t.link(links[x]).to == to) return x;
  }
  ADD_FAILURE() << "no link " << from << "->" << to;
  return 0;
}

graph::Topology diamond() {
  graph::Topology t;
  t.add_nodes(4);  // 0 src, 1/2 relays, 3 dest
  const graph::LinkAttr attr{10e6, 1e-3};
  t.add_duplex(0, 1, attr);
  t.add_duplex(0, 2, attr);
  t.add_duplex(1, 3, attr);
  t.add_duplex(2, 3, attr);
  return t;
}

TEST(Marginals, SinglePathIsSumOfLinkMarginals) {
  const auto t = diamond();
  const flow::FlowNetwork net(t, 8000);
  flow::RoutingParameters phi(t);
  phi.set_single_path(0, 3, out_index(t, 0, 1));
  phi.set_single_path(1, 3, out_index(t, 1, 3));
  std::vector<double> flows(t.num_links(), 0.0);
  const auto marg = net.marginal_costs(flows);
  const auto md = marginal_distances(net, phi, marg, 3);
  EXPECT_DOUBLE_EQ(md[3], 0.0);
  EXPECT_DOUBLE_EQ(md[1], marg[t.find_link(1, 3)]);
  EXPECT_DOUBLE_EQ(md[0], marg[t.find_link(0, 1)] + marg[t.find_link(1, 3)]);
  EXPECT_TRUE(std::isinf(md[2]));  // no route from 2
}

TEST(Marginals, SplitPathIsPhiWeighted) {
  const auto t = diamond();
  const flow::FlowNetwork net(t, 8000);
  flow::RoutingParameters phi(t);
  phi.set(0, 3, out_index(t, 0, 1), 0.3);
  phi.set(0, 3, out_index(t, 0, 2), 0.7);
  phi.set_single_path(1, 3, out_index(t, 1, 3));
  phi.set_single_path(2, 3, out_index(t, 2, 3));
  std::vector<double> flows(t.num_links(), 1e6);
  const auto marg = net.marginal_costs(flows);
  const auto md = marginal_distances(net, phi, marg, 3);
  const double via1 = marg[t.find_link(0, 1)] + md[1];
  const double via2 = marg[t.find_link(0, 2)] + md[2];
  EXPECT_NEAR(md[0], 0.3 * via1 + 0.7 * via2, 1e-15);
}

TEST(Marginals, OptimalityGapZeroOnlyAtBalance) {
  const auto t = diamond();
  const flow::FlowNetwork net(t, 8000);
  std::vector<double> flows(t.num_links(), 0.0);
  const auto marg = net.marginal_costs(flows);

  // Symmetric links and an even split: perfectly balanced.
  flow::RoutingParameters balanced(t);
  balanced.set(0, 3, out_index(t, 0, 1), 0.5);
  balanced.set(0, 3, out_index(t, 0, 2), 0.5);
  balanced.set_single_path(1, 3, out_index(t, 1, 3));
  balanced.set_single_path(2, 3, out_index(t, 2, 3));
  const auto md_b = marginal_distances(net, balanced, marg, 3);
  EXPECT_NEAR(optimality_gap(net, balanced, marg, 3, md_b), 0.0, 1e-12);

  // All traffic on one of two equal paths: zero-load marginals are equal,
  // so the gap is still ~0; but skew the link costs and the gap appears.
  std::vector<double> skewed_flows(t.num_links(), 0.0);
  skewed_flows[t.find_link(0, 1)] = 8e6;
  const auto marg_skewed = net.marginal_costs(skewed_flows);
  const auto md_s = marginal_distances(net, balanced, marg_skewed, 3);
  EXPECT_GT(optimality_gap(net, balanced, marg_skewed, 3, md_s), 0.0);
}

TEST(ShortestPathPhi, RoutesEveryPairOnZeroLoadSpt) {
  const auto t = topo::make_net1();
  const flow::FlowNetwork net(t, 8000);
  const auto phi = shortest_path_phi(net);
  EXPECT_TRUE(phi.satisfies_property1());
  const auto n = static_cast<NodeId>(t.num_nodes());
  for (NodeId j = 0; j < n; ++j) {
    const auto succ = phi.successor_sets(j);
    EXPECT_TRUE(graph::is_acyclic(succ)) << "dest " << j;
    for (NodeId i = 0; i < n; ++i) {
      if (i == j) continue;
      EXPECT_EQ(succ[i].size(), 1u) << i << "->" << j;  // single path
    }
    // Every node reaches j.
    const auto reach = graph::can_reach(succ, j);
    for (NodeId i = 0; i < n; ++i) EXPECT_TRUE(reach[i]);
  }
}

TEST(Optimizer, TwoParallelLinksBalanceEqually) {
  // Two disjoint equal paths 0->1->3 / 0->2->3 and one commodity: the
  // optimum splits 50/50.
  const auto t = diamond();
  const flow::FlowNetwork net(t, 8000);
  flow::TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 3, 8e6);  // heavy enough that splitting clearly wins

  const auto result = minimize(net, traffic, {});
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.feasible);
  const auto idx1 = out_index(t, 0, 1);
  const auto idx2 = out_index(t, 0, 2);
  EXPECT_NEAR(result.phi.get(0, 3, idx1), 0.5, 0.02);
  EXPECT_NEAR(result.phi.get(0, 3, idx2), 0.5, 0.02);
}

TEST(Optimizer, DelayTraceIsNonIncreasing) {
  const auto t = topo::make_net1();
  const flow::FlowNetwork net(t, 8000);
  const auto traffic = topo::to_traffic_matrix(t, topo::net1_flows());
  const auto result = minimize(net, traffic, {});
  ASSERT_GE(result.delay_trace.size(), 2u);
  for (std::size_t i = 1; i < result.delay_trace.size(); ++i) {
    EXPECT_LE(result.delay_trace[i], result.delay_trace[i - 1] * (1 + 1e-9))
        << "iteration " << i;
  }
}

TEST(Optimizer, BeatsSinglePathOnPaperWorkloads) {
  for (const bool cairn : {true, false}) {
    const auto t = cairn ? topo::make_cairn() : topo::make_net1();
    const auto flows = cairn ? topo::cairn_flows() : topo::net1_flows();
    const flow::FlowNetwork net(t, 8000);
    const auto traffic = topo::to_traffic_matrix(t, flows);
    const auto result = minimize(net, traffic, {});
    EXPECT_TRUE(result.feasible);
    const double sp_delay =
        flow::average_delay(net, traffic, shortest_path_phi(net));
    EXPECT_LE(result.average_delay_s, sp_delay * (1 + 1e-9))
        << (cairn ? "cairn" : "net1");
  }
}

TEST(Optimizer, SuccessorGraphsStayAcyclic) {
  const auto t = topo::make_net1();
  const flow::FlowNetwork net(t, 8000);
  const auto traffic = topo::to_traffic_matrix(t, topo::net1_flows());
  const auto result = minimize(net, traffic, {});
  for (NodeId j = 0; j < static_cast<NodeId>(t.num_nodes()); ++j) {
    EXPECT_TRUE(graph::is_acyclic(result.phi.successor_sets(j)))
        << "dest " << j;
  }
  EXPECT_TRUE(result.phi.satisfies_property1(1e-6));
}

TEST(Optimizer, ReachesNearZeroOptimalityGap) {
  const auto t = topo::make_net1();
  const flow::FlowNetwork net(t, 8000);
  const auto traffic = topo::to_traffic_matrix(t, topo::net1_flows());
  const auto result = minimize(net, traffic, {});
  const auto fa = flow::compute_flows(net, traffic, result.phi);
  const auto marg = net.marginal_costs(fa.link_flows);

  // Gallager's conditions at destinations that carry traffic: the relative
  // gap must be small (exact zero requires infinite iterations).
  for (NodeId j = 0; j < static_cast<NodeId>(t.num_nodes()); ++j) {
    double incoming = 0;
    for (NodeId i = 0; i < static_cast<NodeId>(t.num_nodes()); ++i) {
      incoming += traffic.rate(i, j);
    }
    if (incoming <= 0) continue;
    const auto md = marginal_distances(net, result.phi, marg, j);
    double max_md = 0;
    for (NodeId i = 0; i < static_cast<NodeId>(t.num_nodes()); ++i) {
      if (std::isfinite(md[i])) max_md = std::max(max_md, md[i]);
    }
    EXPECT_LT(optimality_gap(net, result.phi, marg, j, md), 0.15 * max_md)
        << "dest " << j;
  }
}

TEST(Optimizer, SecondDerivativeReachesSameOptimum) {
  // The Bertsekas-Gallager curvature-scaled step must find the same minimum
  // as the first-order method (it changes the path, not the destination).
  for (const bool cairn : {true, false}) {
    const auto t = cairn ? topo::make_cairn() : topo::make_net1();
    const auto flows = cairn ? topo::cairn_flows() : topo::net1_flows();
    const flow::FlowNetwork net(t, 8000);
    const auto traffic = topo::to_traffic_matrix(t, flows);
    const auto first = minimize(net, traffic, {});
    Options second_opts;
    second_opts.second_derivative = true;
    const auto second = minimize(net, traffic, second_opts);
    ASSERT_TRUE(first.feasible);
    ASSERT_TRUE(second.feasible);
    EXPECT_NEAR(second.total_delay_rate, first.total_delay_rate,
                0.01 * first.total_delay_rate)
        << (cairn ? "cairn" : "net1");
    EXPECT_TRUE(second.phi.satisfies_property1(1e-6));
    for (NodeId j = 0; j < static_cast<NodeId>(t.num_nodes()); ++j) {
      EXPECT_TRUE(graph::is_acyclic(second.phi.successor_sets(j)));
    }
  }
}

TEST(Optimizer, SecondDerivativeToleratesWideEtaRange) {
  // The point of curvature scaling: convergence speed is far less sensitive
  // to the global constant. Both a tiny and a huge eta must still converge
  // to (near) the same optimum within the iteration budget.
  const auto t = topo::make_net1();
  const flow::FlowNetwork net(t, 8000);
  const auto traffic = topo::to_traffic_matrix(t, topo::net1_flows());
  double reference = 0;
  for (const double eta : {0.5, 5.0, 500.0}) {
    Options opts;
    opts.second_derivative = true;
    opts.eta = eta;
    const auto result = minimize(net, traffic, opts);
    ASSERT_TRUE(result.feasible) << "eta " << eta;
    if (reference == 0) {
      reference = result.total_delay_rate;
    } else {
      EXPECT_NEAR(result.total_delay_rate, reference, 0.02 * reference)
          << "eta " << eta;
    }
  }
}

TEST(Optimizer, InfeasibleLoadReportsInfeasible) {
  // One 1 Mb/s bottleneck carrying 5 Mb/s: no routing can help.
  graph::Topology t;
  t.add_nodes(2);
  t.add_duplex(0, 1, graph::LinkAttr{1e6, 1e-3});
  const flow::FlowNetwork net(t, 8000);
  flow::TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 1, 5e6);
  const auto result = minimize(net, traffic, {});
  EXPECT_FALSE(result.feasible);
}

TEST(Optimizer, FixedStepMatchesAdaptiveOnEasyCase) {
  const auto t = diamond();
  const flow::FlowNetwork net(t, 8000);
  flow::TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 3, 6e6);
  Options fixed;
  fixed.adaptive_step = false;
  fixed.eta = 5.0;
  fixed.max_iterations = 20000;
  const auto fixed_result = minimize(net, traffic, fixed);
  const auto adaptive_result = minimize(net, traffic, {});
  EXPECT_TRUE(fixed_result.feasible);
  EXPECT_NEAR(fixed_result.total_delay_rate, adaptive_result.total_delay_rate,
              0.02 * adaptive_result.total_delay_rate);
}

}  // namespace
}  // namespace mdr::gallager
