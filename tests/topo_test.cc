// Unit tests for src/topo: the paper topologies' stated structural
// properties and the synthetic generators.
#include <gtest/gtest.h>

#include "graph/topology.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace mdr::topo {
namespace {

using graph::NodeId;

TEST(Cairn, StructureMatchesPaperConstraints) {
  const auto t = make_cairn();
  EXPECT_EQ(t.num_nodes(), 26u);
  EXPECT_TRUE(t.is_strongly_connected());
  // Paper: capacities restricted to a maximum of 10 Mb/s.
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(t.num_links());
       ++id) {
    EXPECT_LE(t.link(id).attr.capacity_bps, 10e6);
    EXPECT_GT(t.link(id).attr.prop_delay_s, 0.0);
  }
}

TEST(Cairn, AllPaperFlowEndpointsExist) {
  const auto t = make_cairn();
  for (const auto& f : cairn_flows()) {
    EXPECT_NE(t.find_node(f.src), graph::kInvalidNode) << f.src;
    EXPECT_NE(t.find_node(f.dst), graph::kInvalidNode) << f.dst;
  }
}

TEST(Cairn, FlowCountAndRateBand) {
  const auto flows = cairn_flows();
  EXPECT_EQ(flows.size(), 11u);  // the paper's 11 pairs
  for (const auto& f : flows) {
    EXPECT_GE(f.rate_bps, 1e6);
    EXPECT_LE(f.rate_bps, 3e6);
  }
}

TEST(Cairn, ScaleMultipliesRates) {
  const auto base = cairn_flows(1.0);
  const auto doubled = cairn_flows(2.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(doubled[i].rate_bps, 2.0 * base[i].rate_bps);
  }
}

TEST(Net1, StructureMatchesPaperConstraints) {
  const auto t = make_net1();
  EXPECT_EQ(t.num_nodes(), 10u);
  EXPECT_TRUE(t.is_strongly_connected());
  // Paper: "The diameter of NET1 is four and the nodes have degrees between
  // 3 and 5."
  EXPECT_EQ(t.diameter_hops(), 4u);
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_GE(t.out_links(i).size(), 3u) << "node " << i;
    EXPECT_LE(t.out_links(i).size(), 5u) << "node " << i;
  }
}

TEST(Net1, AllPaperFlowEndpointsExist) {
  const auto t = make_net1();
  const auto flows = net1_flows();
  EXPECT_EQ(flows.size(), 10u);
  for (const auto& f : flows) {
    EXPECT_NE(t.find_node(f.src), graph::kInvalidNode) << f.src;
    EXPECT_NE(t.find_node(f.dst), graph::kInvalidNode) << f.dst;
  }
}

TEST(ToTrafficMatrix, ResolvesNamesAndAggregates) {
  const auto t = make_net1();
  std::vector<FlowSpec> flows{{"0", "7", 1e6}, {"0", "7", 2e6}, {"3", "8", 5e5}};
  const auto m = to_traffic_matrix(t, flows);
  EXPECT_DOUBLE_EQ(m.rate(t.find_node("0"), t.find_node("7")), 3e6);
  EXPECT_DOUBLE_EQ(m.rate(t.find_node("3"), t.find_node("8")), 5e5);
  EXPECT_DOUBLE_EQ(m.total(), 3.5e6);
}

TEST(Ring, Structure) {
  const auto t = make_ring(6);
  EXPECT_EQ(t.num_nodes(), 6u);
  EXPECT_EQ(t.num_links(), 12u);
  EXPECT_TRUE(t.is_strongly_connected());
  EXPECT_EQ(t.diameter_hops(), 3u);
  for (NodeId i = 0; i < 6; ++i) EXPECT_EQ(t.out_links(i).size(), 2u);
}

TEST(Grid, Structure) {
  const auto t = make_grid(3, 4);
  EXPECT_EQ(t.num_nodes(), 12u);
  EXPECT_TRUE(t.is_strongly_connected());
  EXPECT_EQ(t.diameter_hops(), 5u);  // manhattan distance corner to corner
}

TEST(FullMesh, Structure) {
  const auto t = make_full_mesh(5);
  EXPECT_EQ(t.num_links(), 20u);
  EXPECT_EQ(t.diameter_hops(), 1u);
}

TEST(Random, AlwaysConnectedAndSeedStable) {
  Rng rng1(99), rng2(99);
  const auto a = make_random(15, 0.2, rng1);
  const auto b = make_random(15, 0.2, rng2);
  EXPECT_TRUE(a.is_strongly_connected());
  EXPECT_EQ(a.num_links(), b.num_links());
}

TEST(Waxman, ConnectedWithDistanceProportionalDelays) {
  Rng rng(41);
  const auto t = make_waxman(30, 0.6, 0.3, rng, 10e6, 5e-3);
  EXPECT_EQ(t.num_nodes(), 30u);
  EXPECT_TRUE(t.is_strongly_connected());
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(t.num_links());
       ++id) {
    EXPECT_GT(t.link(id).attr.prop_delay_s, 0.0);
    EXPECT_LE(t.link(id).attr.prop_delay_s, 5e-3 + 1e-12);
    EXPECT_DOUBLE_EQ(t.link(id).attr.capacity_bps, 10e6);
  }
}

TEST(Waxman, LocalityParameterShortensLinks) {
  // Smaller b penalizes distance harder: the mean chord length shrinks.
  const auto mean_chord = [](double b) {
    Rng rng(43);
    const auto t = make_waxman(40, 0.9, b, rng);
    double sum = 0;
    std::size_t count = 0;
    for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(t.num_links());
         ++id) {
      sum += t.link(id).attr.prop_delay_s;
      ++count;
    }
    return sum / static_cast<double>(count);
  };
  EXPECT_LT(mean_chord(0.05), mean_chord(0.8));
}

TEST(Random, DensityGrowsWithP) {
  Rng rng(5);
  const auto sparse = make_random(20, 0.05, rng);
  const auto dense = make_random(20, 0.5, rng);
  EXPECT_LT(sparse.num_links(), dense.num_links());
}

}  // namespace
}  // namespace mdr::topo
