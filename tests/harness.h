// Synchronous multi-router test harness.
//
// Runs one protocol process per node of a Topology and shuttles LSU messages
// between them through per-directed-link FIFO queues (the paper's in-order,
// reliable neighbor protocol) while letting the test pick an arbitrary
// interleaving across links — equivalent to arbitrary finite propagation
// delays, which is exactly the regime the paper's safety proofs quantify
// over. An observer hook runs after every delivered event so invariants can
// be checked "at every instant t".
#pragma once

#include <cassert>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "graph/topology.h"
#include "proto/lsu.h"
#include "proto/pda.h"
#include "util/rng.h"

namespace mdr::test {

template <typename Process>
class ProtocolHarness {
 public:
  using Factory = std::function<std::unique_ptr<Process>(
      graph::NodeId self, std::size_t num_nodes, proto::LsuSink& sink)>;

  ProtocolHarness(const graph::Topology& topo,
                  std::vector<graph::Cost> link_costs, const Factory& factory)
      : topo_(&topo), link_costs_(std::move(link_costs)) {
    assert(link_costs_.size() == topo.num_links());
    sinks_.reserve(topo.num_nodes());
    for (graph::NodeId i = 0; i < static_cast<graph::NodeId>(topo.num_nodes());
         ++i) {
      sinks_.push_back(std::make_unique<Sink>(this));
      nodes_.push_back(factory(i, topo.num_nodes(), *sinks_.back()));
    }
    link_up_.assign(topo.num_links(), false);
  }

  Process& node(graph::NodeId id) { return *nodes_[id]; }
  const graph::Topology& topology() const { return *topo_; }

  /// Brings up every directed link (both endpoints see on_link_up). Order is
  /// deterministic unless an Rng is supplied.
  void bring_up_all(Rng* rng = nullptr) {
    std::vector<graph::LinkId> order(topo_->num_links());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<graph::LinkId>(i);
    }
    if (rng != nullptr) {
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1],
                  order[static_cast<std::size_t>(rng->uniform_int(
                      0, static_cast<int>(i) - 1))]);
      }
    }
    for (const graph::LinkId id : order) bring_up(id);
  }

  /// Brings up one directed link: the head router learns of its neighbor.
  void bring_up(graph::LinkId id) {
    assert(!link_up_[id]);
    link_up_[id] = true;
    const auto& l = topo_->link(id);
    nodes_[l.from]->on_link_up(l.to, link_costs_[id]);
    fire_observer();
  }

  /// Fails one directed link: in-flight messages on it are lost and the head
  /// router sees on_link_down. Fail both directions for a physical cut.
  void fail_link(graph::NodeId from, graph::NodeId to) {
    const graph::LinkId id = topo_->find_link(from, to);
    assert(id != graph::kInvalidLink && link_up_[id]);
    link_up_[id] = false;
    queues_.erase({from, to});
    nodes_[from]->on_link_down(to);
    fire_observer();
  }

  void fail_duplex(graph::NodeId a, graph::NodeId b) {
    fail_link(a, b);
    fail_link(b, a);
  }

  void restore_link(graph::NodeId from, graph::NodeId to) {
    const graph::LinkId id = topo_->find_link(from, to);
    assert(id != graph::kInvalidLink && !link_up_[id]);
    link_up_[id] = true;
    nodes_[from]->on_link_up(to, link_costs_[id]);
    fire_observer();
  }

  void restore_duplex(graph::NodeId a, graph::NodeId b) {
    restore_link(a, b);
    restore_link(b, a);
  }

  /// Changes the cost the head router measures for its adjacent link.
  void change_cost(graph::NodeId from, graph::NodeId to, graph::Cost cost) {
    const graph::LinkId id = topo_->find_link(from, to);
    assert(id != graph::kInvalidLink && link_up_[id]);
    link_costs_[id] = cost;
    nodes_[from]->on_link_cost_change(to, cost);
    fire_observer();
  }

  std::size_t in_flight() const {
    std::size_t n = 0;
    for (const auto& [key, q] : queues_) n += q.size();
    return n;
  }

  /// Delivers one message from a randomly chosen non-empty queue. Returns
  /// false when the network is quiet.
  bool deliver_one(Rng& rng) {
    std::vector<const Key*> ready;
    for (const auto& [key, q] : queues_) {
      if (!q.empty()) ready.push_back(&key);
    }
    if (ready.empty()) return false;
    const Key key = *ready[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(ready.size()) - 1))];
    auto& q = queues_[key];
    const proto::LsuMessage msg = q.front();
    q.pop_front();
    nodes_[key.second]->on_lsu(msg);
    ++delivered_;
    fire_observer();
    return true;
  }

  /// Delivers until quiet; asserts the message count stays bounded.
  std::size_t run_to_quiescence(Rng& rng, std::size_t max_steps = 200000) {
    std::size_t steps = 0;
    while (deliver_one(rng)) {
      if (++steps > max_steps) {
        assert(false && "protocol did not quiesce");
        break;
      }
    }
    return steps;
  }

  std::size_t delivered() const { return delivered_; }

  /// Called after every event (link change or delivery); check invariants
  /// here.
  std::function<void()> on_after_event;

 private:
  using Key = std::pair<graph::NodeId, graph::NodeId>;  // (from, to)

  struct Sink final : proto::LsuSink {
    explicit Sink(ProtocolHarness* h) : harness(h) {}
    void send(graph::NodeId neighbor, const proto::LsuMessage& msg) override {
      const graph::LinkId id = harness->topo_->find_link(msg.sender, neighbor);
      assert(id != graph::kInvalidLink);
      if (!harness->link_up_[id]) return;  // lost on a failed link
      harness->queues_[Key{msg.sender, neighbor}].push_back(msg);
    }
    ProtocolHarness* harness;
  };

  void fire_observer() {
    if (on_after_event) on_after_event();
  }

  const graph::Topology* topo_;
  std::vector<graph::Cost> link_costs_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::vector<std::unique_ptr<Process>> nodes_;
  std::vector<bool> link_up_;
  std::map<Key, std::deque<proto::LsuMessage>> queues_;
  std::size_t delivered_ = 0;
};

}  // namespace mdr::test
