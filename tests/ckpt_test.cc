// Crash-safe checkpoint/resume (src/ckpt/ + NetworkSim save/restore).
//
// The load-bearing property is byte-identical recovery: a run that
// checkpoints is byte-identical to one that doesn't, and a run resumed
// from a snapshot finishes byte-identical to one that was never
// interrupted — across the legacy and sharded engines, under chaos
// faults, adversarial traffic and telemetry. The format tests pin the
// container down: corruption, truncation and version skew are rejected,
// never misread. See docs/CHECKPOINT.md.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/ckpt.h"
#include "obs/sampler.h"
#include "sim/event_queue.h"
#include "sim/experiment.h"
#include "sim/network_sim.h"
#include "sim/scenario.h"
#include "topo/builders.h"
#include "topo/flows.h"
#include "util/rng.h"

namespace mdr {
namespace {

// ------------------------------------------------------------- container

TEST(CkptFormat, RoundTripsEveryPrimitive) {
  ckpt::Writer w;
  w.mark(0xAB);
  w.u8(7);
  w.b(true);
  w.b(false);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(-1.5e-300);
  w.f64(std::numeric_limits<double>::infinity());
  w.str("hello \n world");
  w.bytes({1, 2, 3});
  ckpt::Reader r(w.payload());
  r.expect_mark(0xAB);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -1.5e-300);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.str(), "hello \n world");
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.at_end());
  r.expect_end();
}

TEST(CkptFormat, MismatchedMarkAndOverrunThrow) {
  ckpt::Writer w;
  w.mark(0x01);
  w.u32(5);
  ckpt::Reader r(w.payload());
  EXPECT_THROW(r.expect_mark(0x02), ckpt::Error);
  ckpt::Reader r2(w.payload());
  r2.expect_mark(0x01);
  EXPECT_EQ(r2.u32(), 5u);
  EXPECT_THROW(r2.u32(), ckpt::Error);  // reading past the payload
}

class CkptFile : public ::testing::Test {
 protected:
  std::string path() const {
    return ::testing::TempDir() + "ckpt_file_test.mdrk";
  }

  void write_valid() {
    ckpt::Writer w;
    w.mark(0x77);
    for (std::uint64_t i = 0; i < 64; ++i) w.u64(i * i);
    w.write_file(path());
  }

  // Overwrites one byte at `offset` in the on-disk file.
  void patch(std::size_t offset, std::uint8_t value) {
    std::fstream f(path(), std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(value));
  }

  void truncate_to(std::size_t size) {
    std::ifstream in(path(), std::ios::binary);
    std::vector<char> all((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    ASSERT_GE(all.size(), size);
    std::ofstream out(path(), std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(size));
  }
};

TEST_F(CkptFile, ValidFileRoundTrips) {
  write_valid();
  auto r = ckpt::Reader::from_file(path());
  r.expect_mark(0x77);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(r.u64(), i * i);
  r.expect_end();
}

TEST_F(CkptFile, RejectsBadMagic) {
  write_valid();
  patch(0, 0x00);  // first magic byte
  EXPECT_THROW(ckpt::Reader::from_file(path()), ckpt::Error);
}

TEST_F(CkptFile, RejectsVersionSkew) {
  write_valid();
  patch(4, static_cast<std::uint8_t>(ckpt::kVersion + 1));  // wrong version
  try {
    ckpt::Reader::from_file(path());
    FAIL() << "version skew accepted";
  } catch (const ckpt::Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(CkptFile, RejectsCorruptedPayload) {
  write_valid();
  patch(16 + 100, 0xFF);  // header is 16 bytes; flip a payload byte
  EXPECT_THROW(ckpt::Reader::from_file(path()), ckpt::Error);
}

TEST_F(CkptFile, RejectsTruncation) {
  write_valid();
  truncate_to(16 + 40);  // mid-payload, checksum gone
  EXPECT_THROW(ckpt::Reader::from_file(path()), ckpt::Error);
  EXPECT_THROW(
      {
        write_valid();
        truncate_to(10);  // mid-header
        ckpt::Reader::from_file(path());
      },
      ckpt::Error);
}

TEST_F(CkptFile, MissingFileThrows) {
  EXPECT_THROW(ckpt::Reader::from_file(::testing::TempDir() + "nope.mdrk"),
               ckpt::Error);
}

// ------------------------------------------------------------------- Rng

TEST(CkptRng, MidStreamSaveRestoresTheExactSequence) {
  Rng original(12345);
  for (int i = 0; i < 1000; ++i) original.uniform();  // advance mid-stream
  ckpt::Writer w;
  original.save(w);
  // Draw through several distribution types; each consumes engine state
  // differently, so any divergence shows up fast.
  std::vector<double> expect;
  for (int i = 0; i < 100; ++i) {
    expect.push_back(original.uniform());
    expect.push_back(original.exponential(2.5));
    expect.push_back(static_cast<double>(original.uniform_int(0, 1000)));
  }
  Rng restored(999);  // different seed: load must fully overwrite
  ckpt::Reader r(w.payload());
  restored.load(r);
  for (std::size_t i = 0; i < expect.size(); i += 3) {
    EXPECT_EQ(restored.uniform(), expect[i]);
    EXPECT_EQ(restored.exponential(2.5), expect[i + 1]);
    EXPECT_EQ(static_cast<double>(restored.uniform_int(0, 1000)),
              expect[i + 2]);
  }
}

// ------------------------------------------------------------ EventQueue

// A codec for pure-callback queues: tags reconstruct logging closures.
sim::EventQueueCodec logging_codec(std::vector<std::uint64_t>* log) {
  sim::EventQueueCodec codec;
  codec.make_callback = [log](std::uint8_t tag, std::uint64_t a, double) {
    return std::function<void()>(
        [log, tag, a] { log->push_back((std::uint64_t{tag} << 32) | a); });
  };
  return codec;
}

TEST(CkptEventQueue, MidCascadeSaveRestoresTimerWheelExactly) {
  // Timers spanning near slots, far slots and the overflow region of the
  // 256-slot / 62.5 ms-tick wheel, saved at a time that is NOT slot
  // aligned — the partially cascaded wheel state must survive the trip.
  std::vector<std::uint64_t> direct_log, resumed_log;
  sim::EventQueue a;
  std::uint64_t id = 0;
  for (const double t : {0.03, 0.5, 1.7, 2.111, 5.3, 15.9, 17.2, 40.0}) {
    const std::uint64_t me = id++;
    a.schedule_timer(
        sim::TimerClass::kGeneric, t,
        [&direct_log, me] { direct_log.push_back((7ull << 32) | me); },
        /*tag=*/7, /*a=*/me);
  }
  // Heap events interleaved with the wheel.
  for (const double t : {1.95, 2.105, 39.99}) {
    const std::uint64_t me = id++;
    a.schedule_at(
        t, [&direct_log, me] { direct_log.push_back((9ull << 32) | me); },
        /*tag=*/9, /*a=*/me);
  }
  a.run_until(2.1);  // mid-cascade: between the 2.105 and 2.111 firings
  const std::size_t fired_at_save = direct_log.size();
  ASSERT_GT(fired_at_save, 0u);
  ASSERT_LT(fired_at_save, id);

  ckpt::Writer w;
  a.save(w, logging_codec(&direct_log));

  // The original queue runs to the end...
  a.run_until(50.0);
  ASSERT_EQ(direct_log.size(), id);  // every scheduled event fired

  // ...and the restored copy must fire the same events in the same order.
  sim::EventQueue b;
  ckpt::Reader r(w.payload());
  b.load(r, logging_codec(&resumed_log));
  r.expect_end();
  EXPECT_EQ(b.now(), 2.1);  // run_until leaves now() at the slice boundary
  b.run_until(50.0);

  // Events fired after the save point match exactly.
  const std::vector<std::uint64_t> direct_tail(
      direct_log.begin() + static_cast<std::ptrdiff_t>(fired_at_save),
      direct_log.end());
  EXPECT_EQ(resumed_log, direct_tail);
}

TEST(CkptEventQueue, UntaggedPendingCallbackRefusesToSave) {
  sim::EventQueue q;
  q.schedule_at(1.0, [] {});  // untagged: not reconstructible
  ckpt::Writer w;
  std::vector<std::uint64_t> log;
  EXPECT_THROW(q.save(w, logging_codec(&log)), ckpt::Error);
}

// ---------------------------------------------- end-to-end byte identity

// Serializes EVERYTHING a run reports — counters, flows, time series,
// monitor/stability reports, full telemetry — at max_digits10, so a
// single bit of divergence anywhere fails the property.
std::string render(const sim::SimResult& r, const sim::ExperimentSpec& spec) {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "delivered " << r.delivered << " drops " << r.dropped_no_route << " "
      << r.dropped_ttl << " " << r.dropped_queue << " " << r.dropped_dead
      << " events " << r.events_processed << " avg " << r.avg_delay_s << "\n";
  out << "control " << r.control_messages << " " << r.control_bits << " "
      << r.control_garbage << " " << r.control_dropped << " "
      << r.lsus_originated << " " << r.lsus_retransmitted << " "
      << r.lsus_suppressed << " " << r.acks_sent << " "
      << r.damped_withdrawals << "\n";
  for (const auto& f : r.flows) {
    out << "flow " << f.src << ">" << f.dst << " " << f.delivered << " "
        << f.mean_delay_s << " " << f.p95_delay_s << " " << f.stddev_delay_s
        << "\n";
  }
  for (const auto& l : r.links) {
    out << "link " << l.from << ">" << l.to << " " << l.data_bits << " "
        << l.control_bits << " " << l.utilization << "\n";
  }
  for (const auto& p : r.timeseries) {
    out << "ts " << p.t << " " << p.delivered << " " << p.mean_delay_s << " "
        << p.dropped << "\n";
  }
  out << "lfi " << r.lfi_checks << "/" << r.lfi_violations << "\n";
  if (r.monitor.has_value()) {
    out << "monitor " << sim::monitor_report_json(*r.monitor) << "\n";
  }
  if (r.stability.has_value()) {
    out << "stability " << sim::stability_report_json(*r.stability) << "\n";
  }
  if (r.telemetry.has_value()) {
    const auto names = sim::telemetry_names(spec.topo, spec.flows);
    obs::write_samples_jsonl(out, *r.telemetry, names, /*run=*/0);
    obs::write_metrics_jsonl(out, r.telemetry->metrics, "0");
  }
  return out.str();
}

// The property itself. Three runs of the same spec:
//   1. baseline — no checkpointing at all;
//   2. enabled — periodic snapshots to `path` (must not perturb: a
//      checkpoint-enabled run is byte-identical to a disabled one);
//   3. resumed — restore from the LAST snapshot written by (2) and run
//      to the end (kill-at-the-last-boundary + resume, in process).
// All three must render byte-identically. Resume keeps the checkpoint
// settings (as a real re-invocation would): the sharded engine's resume
// cursor indexes the coordinator pause plan, which must match save time.
void expect_round_trip(sim::ExperimentSpec spec, const std::string& mode,
                       double interval, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "ckpt_" + tag + ".mdrk";
  spec.config.checkpoint_interval = 0;
  spec.config.checkpoint_path.clear();
  spec.config.resume_from.clear();
  const std::string baseline = render(sim::run_experiment(spec, mode), spec);
  ASSERT_FALSE(baseline.empty());

  spec.config.checkpoint_interval = interval;
  spec.config.checkpoint_path = path;
  const std::string enabled = render(sim::run_experiment(spec, mode), spec);
  EXPECT_EQ(enabled, baseline) << tag << ": checkpointing perturbed the run";

  spec.config.resume_from = path;
  const std::string resumed = render(sim::run_experiment(spec, mode), spec);
  EXPECT_EQ(resumed, baseline) << tag << ": resume diverged";
  std::remove(path.c_str());
}

sim::ExperimentSpec load_spec(const std::string& name, std::string* mode) {
  std::string error;
  const auto scenario = sim::load_scenario(
      std::string(MDR_SOURCE_DIR) + "/examples/scenarios/" + name, &error);
  EXPECT_TRUE(scenario.has_value()) << error;
  *mode = scenario->mode;
  return scenario->spec;
}

TEST(CkptRoundTrip, CairnMpScenario) {
  std::string mode;
  auto spec = load_spec("cairn_mp.scn", &mode);
  spec.config.duration = 16;  // the property is duration-independent
  spec.config.sample_interval = 2.0;  // exercise telemetry checkpointing
  expect_round_trip(std::move(spec), mode, /*interval=*/5.0, "cairn_mp");
}

TEST(CkptRoundTrip, ChaosScenarioWithFaultsInFlight) {
  // Crashes at 15/24, recovery at 19/24.5, a flapping link and bursty
  // loss: the 7 s checkpoint cadence lands snapshots between fault
  // descriptors, with crashed routers and pending flap timers in flight.
  std::string mode;
  auto spec = load_spec("chaos.scn", &mode);
  spec.config.duration = 26;
  expect_round_trip(std::move(spec), mode, /*interval=*/7.0, "chaos");
}

TEST(CkptRoundTrip, ChaosScenarioSharded) {
  std::string mode;
  auto spec = load_spec("chaos.scn", &mode);
  spec.config.duration = 26;
  spec.engine.shards = 4;  // snapshots at coordinator window barriers
  expect_round_trip(std::move(spec), mode, /*interval=*/7.0, "chaos_sh4");
}

TEST(CkptRoundTrip, StormScenario) {
  std::string mode;
  auto spec = load_spec("storm.scn", &mode);
  spec.config.duration = 20;  // three flapping links + pacing + damping
  expect_round_trip(std::move(spec), mode, /*interval=*/6.0, "storm");
}

TEST(CkptRoundTrip, AdversarialScenarioWithStabilityMonitor) {
  std::string mode;
  auto spec = load_spec("adversarial.scn", &mode);
  spec.config.duration = 16;
  expect_round_trip(std::move(spec), mode, /*interval=*/5.0, "adversarial");
}

TEST(CkptRoundTrip, GeneratedWaxmanLegacyAndSharded) {
  // A small generated Waxman (the scale scenario's shape, test sized):
  // random topology + random flows, both engines.
  Rng rng(11);
  sim::ExperimentSpec spec;
  spec.topo = topo::make_waxman(30, 0.4, 0.3, rng, /*capacity_bps=*/10e6,
                                /*max_prop_delay_s=*/5e-3, /*min_prop=*/1e-3);
  spec.flows = topo::random_flows(spec.topo, 10, 8e5, rng);
  spec.config.seed = 23;
  spec.config.traffic_start = 2;
  spec.config.warmup = 3;
  spec.config.duration = 12;
  expect_round_trip(spec, "mp", /*interval=*/4.0, "waxman");
  spec.engine.shards = 4;
  expect_round_trip(std::move(spec), "mp", /*interval=*/4.0, "waxman_sh4");
}

// ------------------------------------------------------ interrupt/cancel

TEST(CkptInterrupt, StopFlagWritesASnapshotAndResumeMatchesBaseline) {
  // The mdrsim SIGINT path, in process: the stop flag is already set when
  // the run starts, so the very first safe boundary writes a final
  // checkpoint and raises SimInterrupted. Resuming from that snapshot
  // must finish byte-identical to a run that was never interrupted.
  sim::ExperimentSpec spec{topo::make_net1(), topo::net1_flows(0.5), {}, {}};
  spec.config.seed = 31;
  spec.config.traffic_start = 2;
  spec.config.warmup = 3;
  spec.config.duration = 12;
  spec.config.sample_interval = 2.0;
  const std::string baseline = render(sim::run_experiment(spec, "mp"), spec);

  const std::string path = ::testing::TempDir() + "ckpt_interrupt.mdrk";
  std::atomic<bool> stop{true};
  auto interrupted_spec = spec;
  interrupted_spec.config.checkpoint_interval = 4.0;
  interrupted_spec.config.checkpoint_path = path;
  interrupted_spec.config.interrupt = &stop;
  bool threw = false;
  try {
    sim::run_experiment(interrupted_spec, "mp");
  } catch (const sim::SimInterrupted& e) {
    threw = true;
    // Partial telemetry rides on the exception for the caller to flush.
    EXPECT_TRUE(e.telemetry.has_value());
  }
  ASSERT_TRUE(threw) << "interrupt flag was ignored";

  auto resumed_spec = spec;
  resumed_spec.config.checkpoint_interval = 4.0;
  resumed_spec.config.checkpoint_path = path;
  resumed_spec.config.resume_from = path;
  const std::string resumed =
      render(sim::run_experiment(resumed_spec, "mp"), spec);
  EXPECT_EQ(resumed, baseline);
  std::remove(path.c_str());
}

TEST(CkptInterrupt, CancelFlagRaisesSimCancelled) {
  sim::ExperimentSpec spec{topo::make_net1(), topo::net1_flows(0.5), {}, {}};
  spec.config.seed = 31;
  spec.config.duration = 10;
  std::atomic<bool> cancel{true};
  spec.config.cancel = &cancel;
  EXPECT_THROW(sim::run_experiment(spec, "mp"), sim::SimCancelled);
}

// ------------------------------------------------- snapshot sanity checks

TEST(CkptRestore, RejectsSeedAndShardMismatches) {
  sim::ExperimentSpec spec{topo::make_net1(), topo::net1_flows(0.4), {}, {}};
  spec.config.seed = 5;
  spec.config.duration = 6;
  const std::string path = ::testing::TempDir() + "ckpt_mismatch.mdrk";
  spec.config.checkpoint_interval = 3.0;
  spec.config.checkpoint_path = path;
  sim::run_experiment(spec, "mp");

  auto wrong_seed = spec;
  wrong_seed.config.seed = 6;
  wrong_seed.config.resume_from = path;
  EXPECT_THROW(sim::run_experiment(wrong_seed, "mp"), ckpt::Error);

  auto wrong_topo = spec;
  wrong_topo.topo = topo::make_cairn();
  wrong_topo.flows = topo::cairn_flows(0.4);
  wrong_topo.config.resume_from = path;
  EXPECT_THROW(sim::run_experiment(wrong_topo, "mp"), ckpt::Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdr
