// Unit tests for src/flow: routing parameters (Property 1), conservation
// (Eqs. 1-2), total delay (Eq. 3) and per-commodity delays.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/evaluate.h"
#include "flow/network.h"
#include "flow/phi.h"
#include "graph/topology.h"
#include "topo/builders.h"
#include "topo/flows.h"

namespace mdr::flow {
namespace {

using graph::NodeId;

// a=0, b=1, c=2, d=3: diamond a->{b,c}->d plus direct a->d.
graph::Topology diamond() {
  graph::Topology t;
  t.add_node("a");
  t.add_node("b");
  t.add_node("c");
  t.add_node("d");
  const graph::LinkAttr attr{10e6, 1e-3};
  t.add_duplex(0, 1, attr);
  t.add_duplex(0, 2, attr);
  t.add_duplex(1, 3, attr);
  t.add_duplex(2, 3, attr);
  t.add_duplex(0, 3, attr);
  return t;
}

// Index of link (from->to) within from's out_links.
std::size_t out_index(const graph::Topology& t, NodeId from, NodeId to) {
  const auto links = t.out_links(from);
  for (std::size_t x = 0; x < links.size(); ++x) {
    if (t.link(links[x]).to == to) return x;
  }
  ADD_FAILURE() << "no link " << from << "->" << to;
  return 0;
}

TEST(RoutingParameters, StartsAllZero) {
  const auto t = diamond();
  RoutingParameters phi(t);
  EXPECT_TRUE(phi.satisfies_property1());
  EXPECT_TRUE(phi.unrouted(0, 3));
}

TEST(RoutingParameters, SinglePathAndSuccessors) {
  const auto t = diamond();
  RoutingParameters phi(t);
  phi.set_single_path(0, 3, out_index(t, 0, 1));
  EXPECT_FALSE(phi.unrouted(0, 3));
  const auto succ = phi.successor_sets(3);
  ASSERT_EQ(succ[0].size(), 1u);
  EXPECT_EQ(succ[0][0], 1);
  EXPECT_TRUE(phi.satisfies_property1());
}

TEST(RoutingParameters, Property1RejectsBadSums) {
  const auto t = diamond();
  RoutingParameters phi(t);
  phi.set(0, 3, out_index(t, 0, 1), 0.6);
  std::string why;
  EXPECT_FALSE(phi.satisfies_property1(1e-9, &why));
  EXPECT_NE(why.find("sums"), std::string::npos);
  phi.set(0, 3, out_index(t, 0, 2), 0.4);
  EXPECT_TRUE(phi.satisfies_property1());
}

TEST(RoutingParameters, Property1RejectsPhiAtDestination) {
  const auto t = diamond();
  RoutingParameters phi(t);
  phi.set(3, 3, 0, 1.0);
  EXPECT_FALSE(phi.satisfies_property1());
}

TEST(ComputeFlows, SinglePathConservation) {
  const auto t = diamond();
  const FlowNetwork net(t, 8000);
  TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 3, 2e6);
  RoutingParameters phi(t);
  phi.set_single_path(0, 3, out_index(t, 0, 1));
  phi.set_single_path(1, 3, out_index(t, 1, 3));

  const auto fa = compute_flows(net, traffic, phi);
  EXPECT_TRUE(fa.valid);
  EXPECT_DOUBLE_EQ(fa.stranded_bps, 0.0);
  EXPECT_DOUBLE_EQ(fa.node_traffic(0, 3), 2e6);
  EXPECT_DOUBLE_EQ(fa.node_traffic(1, 3), 2e6);  // relayed through b
  EXPECT_DOUBLE_EQ(fa.link_flows[t.find_link(0, 1)], 2e6);
  EXPECT_DOUBLE_EQ(fa.link_flows[t.find_link(1, 3)], 2e6);
  EXPECT_DOUBLE_EQ(fa.link_flows[t.find_link(0, 3)], 0.0);
}

TEST(ComputeFlows, SplitsAccordingToPhi) {
  const auto t = diamond();
  const FlowNetwork net(t, 8000);
  TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 3, 3e6);
  RoutingParameters phi(t);
  phi.set(0, 3, out_index(t, 0, 1), 0.5);
  phi.set(0, 3, out_index(t, 0, 2), 0.25);
  phi.set(0, 3, out_index(t, 0, 3), 0.25);
  phi.set_single_path(1, 3, out_index(t, 1, 3));
  phi.set_single_path(2, 3, out_index(t, 2, 3));

  const auto fa = compute_flows(net, traffic, phi);
  EXPECT_TRUE(fa.valid);
  EXPECT_DOUBLE_EQ(fa.link_flows[t.find_link(0, 1)], 1.5e6);
  EXPECT_DOUBLE_EQ(fa.link_flows[t.find_link(0, 2)], 0.75e6);
  EXPECT_DOUBLE_EQ(fa.link_flows[t.find_link(0, 3)], 0.75e6);
  EXPECT_DOUBLE_EQ(fa.link_flows[t.find_link(1, 3)], 1.5e6);
}

TEST(ComputeFlows, AggregatesCommoditiesPerDestination) {
  // Traffic from a and from b, both to d, share b's phi (Eq. 1's sum).
  const auto t = diamond();
  const FlowNetwork net(t, 8000);
  TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 3, 1e6);
  traffic.add(1, 3, 1e6);
  RoutingParameters phi(t);
  phi.set_single_path(0, 3, out_index(t, 0, 1));
  phi.set_single_path(1, 3, out_index(t, 1, 3));

  const auto fa = compute_flows(net, traffic, phi);
  EXPECT_DOUBLE_EQ(fa.node_traffic(1, 3), 2e6);
  EXPECT_DOUBLE_EQ(fa.link_flows[t.find_link(1, 3)], 2e6);
}

TEST(ComputeFlows, ReportsStrandedTraffic) {
  const auto t = diamond();
  const FlowNetwork net(t, 8000);
  TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 3, 1e6);
  RoutingParameters phi(t);
  phi.set_single_path(0, 3, out_index(t, 0, 1));
  // b has no route to d: traffic strands there.
  const auto fa = compute_flows(net, traffic, phi);
  EXPECT_TRUE(fa.valid);
  EXPECT_DOUBLE_EQ(fa.stranded_bps, 1e6);
}

TEST(ComputeFlows, CyclicPhiFallsBackAndStaysFinite) {
  // Deliberate two-node routing loop between b and c: traffic leaks nowhere
  // (not lossless: phi splits half back, half to d each hop), so the fixed
  // point converges.
  graph::Topology t;
  t.add_nodes(3);  // 0 src, 1 relay, 2 dest
  const graph::LinkAttr attr{10e6, 1e-3};
  t.add_duplex(0, 1, attr);
  t.add_duplex(1, 2, attr);
  t.add_duplex(0, 2, attr);
  const FlowNetwork net(t, 8000);
  TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 2, 1e6);
  RoutingParameters phi(t);
  // 0 sends half to 1 and half direct; 1 sends half *back* to 0 (loop!).
  phi.set(0, 2, out_index(t, 0, 1), 0.5);
  phi.set(0, 2, out_index(t, 0, 2), 0.5);
  phi.set(1, 2, out_index(t, 1, 0), 0.5);
  phi.set(1, 2, out_index(t, 1, 2), 0.5);

  const auto fa = compute_flows(net, traffic, phi);
  EXPECT_TRUE(fa.valid);  // fixed point converged despite the cycle
  // t_0 = 1e6 + 0.5 t_1, t_1 = 0.5 t_0  =>  t_0 = 4/3e6, t_1 = 2/3e6.
  EXPECT_NEAR(fa.node_traffic(0, 2), 4e6 / 3, 1.0);
  EXPECT_NEAR(fa.node_traffic(1, 2), 2e6 / 3, 1.0);
}

TEST(TotalDelay, InfiniteWhenOverloaded) {
  const auto t = diamond();
  const FlowNetwork net(t, 8000);
  std::vector<double> flows(t.num_links(), 0.0);
  flows[0] = 20e6;  // above the 10 Mb/s capacity
  EXPECT_TRUE(std::isinf(total_delay_rate(net, flows)));
}

TEST(TotalDelay, SumsPerLinkDelays) {
  const auto t = diamond();
  const FlowNetwork net(t, 8000);
  std::vector<double> flows(t.num_links(), 0.0);
  flows[0] = 2e6;
  flows[2] = 4e6;
  const double expected = net.model(0).total_delay_rate(2e6) +
                          net.model(2).total_delay_rate(4e6);
  EXPECT_DOUBLE_EQ(total_delay_rate(net, flows), expected);
}

TEST(CommodityDelays, TwoHopPathAddsLinkDelays) {
  const auto t = diamond();
  const FlowNetwork net(t, 8000);
  TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 3, 2e6);
  RoutingParameters phi(t);
  phi.set_single_path(0, 3, out_index(t, 0, 1));
  phi.set_single_path(1, 3, out_index(t, 1, 3));
  const auto fa = compute_flows(net, traffic, phi);
  const auto delays = commodity_delays(net, phi, fa.link_flows);
  const double w01 = net.model(t.find_link(0, 1)).packet_delay(2e6);
  const double w13 = net.model(t.find_link(1, 3)).packet_delay(2e6);
  EXPECT_NEAR(delays(0, 3), w01 + w13, 1e-12);
  EXPECT_NEAR(delays(1, 3), w13, 1e-12);
  EXPECT_DOUBLE_EQ(delays(3, 3), 0.0);
  EXPECT_TRUE(std::isinf(delays(2, 3)));  // c has no route
}

TEST(CommodityDelays, SplitPathIsWeightedAverage) {
  const auto t = diamond();
  const FlowNetwork net(t, 8000);
  TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 3, 2e6);
  RoutingParameters phi(t);
  phi.set(0, 3, out_index(t, 0, 1), 0.75);
  phi.set(0, 3, out_index(t, 0, 3), 0.25);
  phi.set_single_path(1, 3, out_index(t, 1, 3));
  const auto fa = compute_flows(net, traffic, phi);
  const auto delays = commodity_delays(net, phi, fa.link_flows);
  const double via_b =
      net.model(t.find_link(0, 1)).packet_delay(fa.link_flows[t.find_link(0, 1)]) +
      net.model(t.find_link(1, 3)).packet_delay(fa.link_flows[t.find_link(1, 3)]);
  const double direct =
      net.model(t.find_link(0, 3)).packet_delay(fa.link_flows[t.find_link(0, 3)]);
  EXPECT_NEAR(delays(0, 3), 0.75 * via_b + 0.25 * direct, 1e-12);
}

TEST(AverageDelay, WeightsByInputRate) {
  const auto t = diamond();
  const FlowNetwork net(t, 8000);
  TrafficMatrix traffic(t.num_nodes());
  traffic.add(0, 3, 1e6);
  traffic.add(1, 3, 3e6);
  RoutingParameters phi(t);
  phi.set_single_path(0, 3, out_index(t, 0, 3));
  phi.set_single_path(1, 3, out_index(t, 1, 3));
  const auto fa = compute_flows(net, traffic, phi);
  const auto delays = commodity_delays(net, phi, fa.link_flows);
  const double expected =
      (1e6 * delays(0, 3) + 3e6 * delays(1, 3)) / 4e6;
  EXPECT_NEAR(average_delay(net, traffic, phi), expected, 1e-15);
}

TEST(AverageDelay, InfiniteWhenTrafficUnrouted) {
  const auto t = diamond();
  const FlowNetwork net(t, 8000);
  TrafficMatrix traffic(t.num_nodes());
  traffic.add(2, 3, 1e6);
  RoutingParameters phi(t);  // no routes at all
  EXPECT_TRUE(std::isinf(average_delay(net, traffic, phi)));
}

TEST(FlowNetwork, ZeroLoadCostsMatchModels) {
  const auto t = topo::make_net1();
  const FlowNetwork net(t, 8000);
  const auto costs = net.zero_load_costs();
  ASSERT_EQ(costs.size(), t.num_links());
  for (std::size_t id = 0; id < costs.size(); ++id) {
    EXPECT_DOUBLE_EQ(costs[id], net.model(id).marginal_delay(0));
  }
}

TEST(TrafficMatrix, ScaledCopies) {
  TrafficMatrix m(4);
  m.add(0, 1, 1e6);
  m.add(2, 3, 2e6);
  const auto s = m.scaled(1.5);
  EXPECT_DOUBLE_EQ(s.rate(0, 1), 1.5e6);
  EXPECT_DOUBLE_EQ(s.total(), 4.5e6);
  EXPECT_DOUBLE_EQ(m.total(), 3e6);  // original untouched
}

}  // namespace
}  // namespace mdr::flow
