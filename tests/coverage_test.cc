// Additional coverage: delay-curvature math, deep first-hop chains, phi
// accessors, TTL loop protection in the simulator, MPATH cost-change
// reconvergence, and small accessors not exercised elsewhere.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "cost/delay_model.h"
#include "flow/phi.h"
#include "graph/dijkstra.h"
#include "harness.h"
#include "mpath/mpath.h"
#include "proto/hello.h"
#include "sim/network_sim.h"
#include "topo/builders.h"

namespace mdr {
namespace {

using graph::Cost;
using graph::NodeId;

// ----------------------------------------------------------- curvature math

TEST(DelayCurvature, MatchesNumericSecondDerivative) {
  const cost::LinkDelayModel m{10e6, 1e-3, 8000};
  for (const double f : {1e6, 4e6, 8e6}) {
    const double h = 100.0;
    const double numeric =
        (m.marginal_delay(f + h) - m.marginal_delay(f - h)) / (2 * h);
    // delay_curvature is d(marginal)/d(pkt rate) = L * d(marginal)/d(bit rate).
    EXPECT_NEAR(m.delay_curvature(f), numeric * m.mean_packet_bits,
                1e-4 * m.delay_curvature(f))
        << "f=" << f;
  }
}

TEST(DelayCurvature, DivergesAtCapacityAndClamps) {
  const cost::LinkDelayModel m{1e6, 0, 1000};
  EXPECT_TRUE(std::isinf(m.delay_curvature(1e6)));
  EXPECT_TRUE(std::isfinite(m.delay_curvature_clamped(1e6)));
  EXPECT_GT(m.delay_curvature(0.9e6), m.delay_curvature(0.1e6));
}

// ------------------------------------------------------------- graph chains

TEST(FirstHop, WalksDeepChains) {
  // 0 - 1 - 2 - 3 - 4 line.
  std::vector<graph::CostedEdge> edges;
  for (NodeId i = 0; i < 4; ++i) {
    edges.push_back({i, i + 1, 1.0});
  }
  const auto spt = graph::dijkstra(5, edges, 0);
  for (NodeId j = 1; j <= 4; ++j) {
    EXPECT_EQ(spt.first_hop(0, j), 1) << j;
  }
  EXPECT_EQ(spt.first_hop(0, 0), graph::kInvalidNode);
}

// ------------------------------------------------------------ phi accessors

TEST(PhiAccessors, MutableSpanAliasesStorage) {
  graph::Topology t;
  t.add_nodes(3);
  t.add_duplex(0, 1);
  t.add_duplex(0, 2);
  flow::RoutingParameters phi(t);
  auto span = phi.at_mutable(0, 2);
  ASSERT_EQ(span.size(), 2u);
  span[0] = 0.25;
  span[1] = 0.75;
  EXPECT_DOUBLE_EQ(phi.get(0, 2, 0), 0.25);
  EXPECT_FALSE(phi.unrouted(0, 2));
  phi.clear(0, 2);
  EXPECT_TRUE(phi.unrouted(0, 2));
  EXPECT_EQ(&phi.topology(), &t);
}

// -------------------------------------------------------- TTL loop defense

TEST(TtlDefense, DeliberateForwardingLoopIsCutByTtl) {
  // Static phi with a 2-node loop: 0 sends to 1, 1 sends back to 0, for a
  // destination neither can reach. TTL must cut every packet and count it.
  graph::Topology topo;
  topo.add_nodes(3);
  topo.add_duplex(0, 1, {10e6, 1e-4});
  topo.add_duplex(1, 2, {10e6, 1e-4});
  flow::RoutingParameters phi(topo);
  const auto out_index = [&](NodeId from, NodeId to) {
    const auto links = topo.out_links(from);
    for (std::size_t x = 0; x < links.size(); ++x) {
      if (topo.link(links[x]).to == to) return x;
    }
    return links.size();
  };
  phi.set_single_path(0, 2, out_index(0, 1));
  phi.set_single_path(1, 2, out_index(1, 0));  // the loop

  // Keep the rate low enough that a packet's ~64 bounces fit within link
  // capacity; otherwise most packets are still queued mid-loop at sim end.
  std::vector<topo::FlowSpec> flows{{"n0", "n2", 1e5}};
  sim::SimConfig config;
  config.mode = sim::RoutingMode::kStatic;
  config.static_phi = &phi;
  config.traffic_start = 1;
  config.warmup = 1;
  config.duration = 8;
  const auto result = sim::run_simulation(topo, flows, config);
  EXPECT_EQ(result.flows[0].delivered, 0u);
  EXPECT_GT(result.dropped_ttl, 50u);  // every completed packet died by TTL
}

// -------------------------------------------------------- MPATH cost churn

TEST(MpathChurn, CostChangeReroutesDistanceVectors) {
  // Reuse the in-test harness shape: 4-node diamond, make one path pricey.
  graph::Topology topo;
  topo.add_nodes(4);
  topo.add_duplex(0, 1);
  topo.add_duplex(0, 2);
  topo.add_duplex(1, 3);
  topo.add_duplex(2, 3);

  struct Sink final : mpath::VectorSink {
    std::vector<std::pair<NodeId, mpath::VectorMessage>>* bus = nullptr;
    void send(NodeId to, const mpath::VectorMessage& m) override {
      bus->push_back({to, m});
    }
  };
  std::vector<std::pair<NodeId, mpath::VectorMessage>> bus;
  std::vector<std::unique_ptr<Sink>> sinks;
  std::vector<std::unique_ptr<mpath::MpathProcess>> nodes;
  for (NodeId i = 0; i < 4; ++i) {
    sinks.push_back(std::make_unique<Sink>());
    sinks.back()->bus = &bus;
    nodes.push_back(std::make_unique<mpath::MpathProcess>(i, 4, *sinks.back()));
  }
  const auto pump = [&] {
    Rng rng(9);
    std::size_t guard = 0;
    while (!bus.empty()) {
      ASSERT_LT(++guard, 100000u);
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(bus.size()) - 1));
      const auto [to, msg] = bus[idx];
      bus.erase(bus.begin() + static_cast<std::ptrdiff_t>(idx));
      nodes[to]->on_message(msg);
    }
  };
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    const auto& l = topo.link(id);
    nodes[l.from]->on_link_up(l.to, 1.0);
  }
  pump();
  EXPECT_DOUBLE_EQ(nodes[0]->distance(3), 2.0);
  EXPECT_EQ(nodes[0]->successors(3).size(), 2u);  // both relays

  // Path via 1 becomes expensive: successor set shrinks, distance holds.
  nodes[0]->on_link_cost_change(1, 10.0);
  nodes[1]->on_link_cost_change(3, 10.0);
  nodes[3]->on_link_cost_change(1, 10.0);
  pump();
  EXPECT_DOUBLE_EQ(nodes[0]->distance(3), 2.0);  // via 2 unchanged
  ASSERT_EQ(nodes[0]->successors(3).size(), 1u);
  EXPECT_EQ(nodes[0]->successors(3)[0], 2);
}

// ---------------------------------------------------------------- misc

TEST(HelloMisc, OptionsAccessorAndHeardList) {
  proto::HelloProtocol hello(3, {2.0, 7.0}, {});
  EXPECT_DOUBLE_EQ(hello.options().interval, 2.0);
  EXPECT_DOUBLE_EQ(hello.options().dead_interval, 7.0);
  hello.physical_up(5);
  EXPECT_TRUE(hello.heard_neighbors().empty());  // nothing heard yet
  hello.on_hello(proto::HelloMessage{5, 0, {}}, 0.5);
  EXPECT_EQ(hello.heard_neighbors(), std::vector<NodeId>{5});
  EXPECT_FALSE(hello.adjacent(5));  // heard but not 2-way
}

TEST(TopologyMisc, MutableLinkAllowsAttributeEdits) {
  graph::Topology t;
  t.add_nodes(2);
  const auto id = t.add_link(0, 1, {1e6, 1e-3});
  t.mutable_link(id).attr.capacity_bps = 2e6;
  EXPECT_DOUBLE_EQ(t.link(id).attr.capacity_bps, 2e6);
}

TEST(NeighborTopologyAccessor, EmptyForUnknownNeighbor) {
  proto::RouterTables t(0, 3);
  EXPECT_TRUE(t.neighbor_topology(1).empty());
  t.link_up(1, 1.0);
  const proto::LsuEntry e[] = {{1, 2, 1.0, proto::LsuOp::kAddOrChange}};
  t.apply_lsu(1, e);
  EXPECT_EQ(t.neighbor_topology(1).size(), 1u);
}

}  // namespace
}  // namespace mdr
