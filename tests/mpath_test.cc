// Unit tests for the MPATH extension: the distance-vector realization of
// the LFI framework must converge to shortest paths, hold loop-freedom at
// every instant, and bound count-to-infinity via hop counts.
#include <gtest/gtest.h>

#include <cassert>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "core/lfi.h"
#include "graph/dijkstra.h"
#include "mpath/mpath.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace mdr::mpath {
namespace {

using graph::Cost;
using graph::NodeId;

// Small synchronous harness for MpathProcess (the proto harness is typed on
// LsuSink; this one speaks VectorMessage).
class MpathNet {
 public:
  MpathNet(const graph::Topology& topo, std::vector<Cost> costs)
      : topo_(&topo), costs_(std::move(costs)) {
    for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
      sinks_.push_back(std::make_unique<Sink>(this));
      nodes_.push_back(
          std::make_unique<MpathProcess>(i, topo.num_nodes(), *sinks_.back()));
    }
    up_.assign(topo.num_links(), false);
  }

  MpathProcess& node(NodeId i) { return *nodes_[i]; }
  const graph::Topology& topology() const { return *topo_; }

  void bring_up_all(Rng& rng) {
    std::vector<graph::LinkId> order(topo_->num_links());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[static_cast<std::size_t>(
                                  rng.uniform_int(0, static_cast<int>(i) - 1))]);
    }
    for (const auto id : order) {
      const auto& l = topo_->link(id);
      up_[id] = true;
      nodes_[l.from]->on_link_up(l.to, costs_[id]);
      observe();
    }
  }

  void fail_duplex(NodeId a, NodeId b) {
    for (const auto [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
      const auto id = topo_->find_link(x, y);
      up_[id] = false;
      queues_.erase({x, y});
      nodes_[x]->on_link_down(y);
      observe();
    }
  }

  bool deliver_one(Rng& rng) {
    std::vector<std::pair<NodeId, NodeId>> ready;
    for (const auto& [key, q] : queues_) {
      if (!q.empty()) ready.push_back(key);
    }
    if (ready.empty()) return false;
    const auto key = ready[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(ready.size()) - 1))];
    auto& q = queues_[key];
    const VectorMessage msg = q.front();
    q.pop_front();
    nodes_[key.second]->on_message(msg);
    observe();
    return true;
  }

  void run_to_quiescence(Rng& rng, std::size_t max_steps = 500000) {
    std::size_t steps = 0;
    while (deliver_one(rng)) {
      ASSERT_LE(++steps, max_steps) << "mpath did not quiesce";
    }
  }

  std::function<void()> on_after_event;

 private:
  struct Sink final : VectorSink {
    explicit Sink(MpathNet* n) : net(n) {}
    void send(NodeId neighbor, const VectorMessage& msg) override {
      const auto id = net->topo_->find_link(msg.sender, neighbor);
      assert(id != graph::kInvalidLink);
      if (!net->up_[id]) return;
      net->queues_[{msg.sender, neighbor}].push_back(msg);
    }
    MpathNet* net;
  };

  void observe() {
    if (on_after_event) on_after_event();
  }

  const graph::Topology* topo_;
  std::vector<Cost> costs_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::vector<std::unique_ptr<MpathProcess>> nodes_;
  std::vector<bool> up_;
  std::map<std::pair<NodeId, NodeId>, std::deque<VectorMessage>> queues_;
};

void expect_shortest_distances(MpathNet& net, const std::vector<Cost>& costs) {
  const auto& topo = net.topology();
  std::vector<graph::CostedEdge> edges;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    edges.push_back(
        graph::CostedEdge{topo.link(id).from, topo.link(id).to, costs[id]});
  }
  for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
    const auto spt = graph::dijkstra(topo.num_nodes(), edges, i);
    for (NodeId j = 0; j < static_cast<NodeId>(topo.num_nodes()); ++j) {
      EXPECT_NEAR(net.node(i).distance(j), spt.dist[j], 1e-9)
          << i << " -> " << j;
    }
  }
}

std::vector<Cost> uniform_costs(const graph::Topology& t, Cost c = 1.0) {
  return std::vector<Cost>(t.num_links(), c);
}

TEST(Mpath, ConvergesOnRing) {
  const auto topo = topo::make_ring(6);
  const auto costs = uniform_costs(topo);
  MpathNet net(topo, costs);
  Rng rng(1);
  net.bring_up_all(rng);
  net.run_to_quiescence(rng);
  expect_shortest_distances(net, costs);
}

TEST(Mpath, ConvergesOnNet1RandomCosts) {
  const auto topo = topo::make_net1();
  Rng rng(2);
  std::vector<Cost> costs;
  for (std::size_t i = 0; i < topo.num_links(); ++i) {
    costs.push_back(rng.uniform(0.5, 3.0));
  }
  MpathNet net(topo, costs);
  net.bring_up_all(rng);
  net.run_to_quiescence(rng);
  expect_shortest_distances(net, costs);
}

TEST(Mpath, SuccessorSetsMatchLfiAtConvergence) {
  const auto topo = topo::make_net1();
  Rng rng(3);
  std::vector<Cost> costs;
  for (std::size_t i = 0; i < topo.num_links(); ++i) {
    costs.push_back(rng.uniform(0.5, 3.0));
  }
  MpathNet net(topo, costs);
  net.bring_up_all(rng);
  net.run_to_quiescence(rng);
  std::vector<graph::CostedEdge> edges;
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    edges.push_back(
        graph::CostedEdge{topo.link(id).from, topo.link(id).to, costs[id]});
  }
  std::vector<graph::ShortestPathTree> spt;
  for (NodeId i = 0; i < 10; ++i) {
    spt.push_back(graph::dijkstra(topo.num_nodes(), edges, i));
  }
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_TRUE(net.node(i).passive());
    EXPECT_EQ(net.node(i).acks_pending(), 0u);
    for (NodeId j = 0; j < 10; ++j) {
      if (i == j) continue;
      std::vector<NodeId> expected;
      for (const NodeId k : topo.neighbors(i)) {
        if (spt[k].dist[j] < spt[i].dist[j]) expected.push_back(k);
      }
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(net.node(i).successors(j), expected) << i << "->" << j;
    }
  }
}

TEST(Mpath, LoopFreeAtEveryInstant) {
  const auto topo = topo::make_grid(3, 3);
  Rng rng(4);
  std::vector<Cost> costs;
  for (std::size_t i = 0; i < topo.num_links(); ++i) {
    costs.push_back(rng.uniform(0.5, 3.0));
  }
  MpathNet net(topo, costs);
  net.on_after_event = [&net, &topo] {
    for (NodeId j = 0; j < static_cast<NodeId>(topo.num_nodes()); ++j) {
      core::LfiSnapshot snap;
      snap.feasible_distance.resize(topo.num_nodes());
      snap.successors.resize(topo.num_nodes());
      for (NodeId i = 0; i < static_cast<NodeId>(topo.num_nodes()); ++i) {
        snap.feasible_distance[i] = net.node(i).feasible_distance(j);
        if (i != j) snap.successors[i] = net.node(i).successors(j);
      }
      ASSERT_TRUE(core::feasible_distances_decrease(snap)) << "dest " << j;
      ASSERT_TRUE(core::successor_graph_loop_free(snap)) << "dest " << j;
    }
  };
  net.bring_up_all(rng);
  net.run_to_quiescence(rng);
}

TEST(Mpath, PartitionDoesNotCountToInfinity) {
  // Line 0-1-2; cutting 1-2 makes 2 unreachable from {0,1}. The hop bound
  // must retire the stale route in a bounded number of messages.
  graph::Topology topo;
  topo.add_nodes(3);
  topo.add_duplex(0, 1);
  topo.add_duplex(1, 2);
  const auto costs = uniform_costs(topo);
  MpathNet net(topo, costs);
  Rng rng(5);
  net.bring_up_all(rng);
  net.run_to_quiescence(rng);
  EXPECT_DOUBLE_EQ(net.node(0).distance(2), 2.0);

  net.fail_duplex(1, 2);
  net.run_to_quiescence(rng, 10000);  // bounded: hop counts cap the churn
  EXPECT_EQ(net.node(0).distance(2), graph::kInfCost);
  EXPECT_EQ(net.node(1).distance(2), graph::kInfCost);
  EXPECT_TRUE(net.node(0).successors(2).empty());
}

TEST(Mpath, ProvidesMultipathLikeMpda) {
  const auto topo = topo::make_net1();
  Rng rng(6);
  std::vector<Cost> costs;
  for (std::size_t i = 0; i < topo.num_links(); ++i) {
    costs.push_back(rng.uniform(0.5, 3.0));
  }
  MpathNet net(topo, costs);
  net.bring_up_all(rng);
  net.run_to_quiescence(rng);
  bool multipath = false;
  for (NodeId i = 0; i < 10 && !multipath; ++i) {
    for (NodeId j = 0; j < 10; ++j) {
      if (i != j && net.node(i).successors(j).size() > 1) multipath = true;
    }
  }
  EXPECT_TRUE(multipath);
}

}  // namespace
}  // namespace mdr::mpath
