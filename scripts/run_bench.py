#!/usr/bin/env python3
"""Run a perf baseline and validate its JSON output.

Usage:
    run_bench.py [--bench event_core|control_plane] [--smoke]
                 [--build-dir DIR] [--out FILE]
    run_bench.py --validate-only FILE

Drives build/bench/perf_event_core or build/bench/perf_control_plane
(building the target first if a build tree is configured), validates the
emitted JSON against the schema documented in docs/BENCHMARKS.md, and
writes the result to --out (default: BENCH_<bench>.json at the repo
root). --validate-only dispatches on the file's own "bench" field.

The control_plane series additionally measures the profiler-attributed
control-plane busy-time share on the 1000-router Waxman scenario (mdrsim
--prof-deep; share = table_update+recompute self time over engine busy
time) and folds it into the JSON — the number the incremental table
maintenance is accountable to. Skipped in --smoke (CI minutes are real);
the committed full-mode baseline must carry it.

Validation is STRUCTURAL, plus the one invariant that is deterministic on
any machine: the typed packet path must be allocation-free
(micro.typed_link_hop.allocs_per_event < 1e-3 — the small tolerance covers
rare timer-wheel slot high-water growth, which is amortized, not
per-event). There are deliberately NO timing assertions: wall-clock
numbers on shared CI runners are noise, and a perf gate that flakes
teaches people to ignore it. Timing regressions are caught by comparing
the committed BENCH_event_core.json across PRs, by a human.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import math
import os
import pathlib
import re
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Every micro series carries the same five fields.
SERIES_FIELDS = {
    "events": int,
    "wall_seconds": float,
    "ns_per_event": float,
    "events_per_sec": (int, float),
    "allocs_per_event": float,
}

MACRO_FIELDS = {
    "scenario": str,
    "sim_seconds": (int, float),
    "wall_seconds": float,
    "events": int,
    "events_per_sec": (int, float),
    "delivered": int,
    "peak_rss_bytes": int,
}

# One point of the engine shard-scaling series (shards == 0 is the legacy
# single-threaded engine; >= 1 the sharded conservative engine).
ENGINE_POINT_FIELDS = {
    "shards": int,
    "wall_seconds": float,
    "events": int,
    "events_per_sec": (int, float),
    "delivered": int,
}

SCALE_FIELDS = {
    "scenario": str,
    "nodes": int,
    "shards": int,
    "sim_seconds": (int, float),
    "wall_seconds": float,
    "events": int,
    "events_per_sec": (int, float),
    "delivered": int,
}

# Informational checkpoint save/restore cost on the CAIRN macro scenario
# (docs/CHECKPOINT.md "Cost"). Optional in the schema — older baselines
# predate it — and deliberately carries NO timing gate.
CKPT_FIELDS = {
    "scenario": str,
    "interval_s": (int, float),
    "snapshots": int,
    "last_bytes": int,
    "save_ms_mean": float,
    "load_ms": float,
}

# One "[ckpt] save path=... bytes=... ms=... t=..." / "[ckpt] load ..."
# cost line on mdrsim's stderr (never in telemetry, which must stay
# byte-identical with checkpointing on or off).
CKPT_LINE = re.compile(
    r"\[ckpt\] (save|load) path=\S+(?: bytes=(\d+))? ms=([0-9.]+) t=")

# The shard counts every baseline must sweep, in order.
ENGINE_SERIES_SHARDS = [0, 1, 2, 4, 8]

# The typed hop path must not allocate per event. The bound is not 0.0
# exactly: the timer wheel's slot vectors occasionally grow to a new
# high-water mark (a few allocations per million events, amortized to
# zero); anything near the legacy core's ~0.57 allocs/event is a real
# regression and fails loudly here.
MAX_TYPED_ALLOCS_PER_EVENT = 1e-3


def fail(msg):
    print(f"run_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_number(value, name):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        fail(f"{name} is not a number: {value!r}")
    if not math.isfinite(value):
        fail(f"{name} is not finite: {value!r}")
    if value < 0:
        fail(f"{name} is negative: {value!r}")


def check_fields(obj, fields, prefix):
    if not isinstance(obj, dict):
        fail(f"{prefix} is not an object")
    for key, kind in fields.items():
        if key not in obj:
            fail(f"{prefix}.{key} is missing")
        value = obj[key]
        if kind is str:
            if not isinstance(value, str):
                fail(f"{prefix}.{key} is not a string: {value!r}")
        else:
            check_number(value, f"{prefix}.{key}")
    extra = set(obj) - set(fields)
    if extra:
        fail(f"{prefix} has unknown fields: {sorted(extra)}")


def validate(doc):
    """Dispatches on the document's own bench field."""
    if not isinstance(doc, dict):
        fail("top level is not an object")
    bench = doc.get("bench")
    if bench == "event_core":
        validate_event_core(doc)
    elif bench == "control_plane":
        validate_control_plane(doc)
    else:
        fail(f"unknown bench: {bench!r}")


def validate_event_core(doc):
    if doc.get("version") != 2:
        fail(f"version != 2: {doc.get('version')!r}")
    if not isinstance(doc.get("smoke"), bool):
        fail("smoke is not a bool")
    check_number(doc.get("host_cpus"), "host_cpus")
    if doc["host_cpus"] < 1:
        fail(f"host_cpus < 1: {doc['host_cpus']}")

    micro = doc.get("micro")
    if not isinstance(micro, dict):
        fail("micro is missing or not an object")
    for series in ("legacy_fn_heap", "typed_link_hop", "timer_wheel"):
        check_fields(micro.get(series), SERIES_FIELDS, f"micro.{series}")
        if micro[series]["events"] == 0:
            fail(f"micro.{series}.events == 0")
    check_number(micro.get("speedup_vs_legacy"), "micro.speedup_vs_legacy")

    check_fields(doc.get("macro"), MACRO_FIELDS, "macro")
    if doc["macro"]["delivered"] == 0:
        fail("macro.delivered == 0 (simulation carried no traffic)")

    # Engine shard-scaling series: structural only — NO timing or speedup
    # gates (a 1-CPU container legitimately shows slowdown; host_cpus is
    # the published context). What IS asserted: the sweep covers the
    # canonical shard counts, every point carried traffic, and the sharded
    # points processed the same simulation (byte-identity across shard
    # counts is pinned by tests/parallel_engine_test.cc; here the cheap
    # proxy is identical delivered counts for every shards >= 1 point).
    engine = doc.get("engine")
    if not isinstance(engine, dict):
        fail("engine is missing or not an object")
    if not isinstance(engine.get("scenario"), str):
        fail("engine.scenario is not a string")
    check_number(engine.get("sim_seconds"), "engine.sim_seconds")
    check_number(engine.get("speedup_4_shards_vs_1"),
                 "engine.speedup_4_shards_vs_1")
    series = engine.get("series")
    if not isinstance(series, list):
        fail("engine.series is not a list")
    if [p.get("shards") for p in series] != ENGINE_SERIES_SHARDS:
        fail(f"engine.series shard counts != {ENGINE_SERIES_SHARDS}")
    for point in series:
        check_fields(point, ENGINE_POINT_FIELDS,
                     f"engine.series[shards={point.get('shards')}]")
        if point["delivered"] == 0:
            fail(f"engine.series[shards={point['shards']}].delivered == 0")
    sharded_delivered = {p["delivered"] for p in series if p["shards"] >= 1}
    if len(sharded_delivered) != 1:
        fail(f"sharded engine points disagree on delivered packets: "
             f"{sorted(sharded_delivered)} — shard-count determinism is "
             f"broken")

    check_fields(doc.get("scale"), SCALE_FIELDS, "scale")
    if doc["scale"]["delivered"] == 0:
        fail("scale.delivered == 0 (simulation carried no traffic)")
    if not doc["smoke"] and doc["scale"]["nodes"] < 1000:
        fail(f"scale.nodes = {doc['scale']['nodes']} — the committed "
             f"full-mode baseline must carry the 1000-router point")

    typed_allocs = micro["typed_link_hop"]["allocs_per_event"]
    if typed_allocs >= MAX_TYPED_ALLOCS_PER_EVENT:
        fail(
            f"typed_link_hop.allocs_per_event = {typed_allocs} — the typed "
            f"packet path must be allocation-free (< "
            f"{MAX_TYPED_ALLOCS_PER_EVENT})"
        )

    ckpt = doc.get("ckpt")
    if ckpt is not None:
        check_fields(ckpt, CKPT_FIELDS, "ckpt")
        if ckpt["snapshots"] < 1:
            fail("ckpt.snapshots < 1 (no save line was captured)")
        if ckpt["last_bytes"] == 0:
            fail("ckpt.last_bytes == 0 (empty snapshot)")

    legacy_allocs = micro["legacy_fn_heap"]["allocs_per_event"]
    if legacy_allocs <= typed_allocs:
        fail(
            f"legacy allocs/event ({legacy_allocs}) <= typed "
            f"({typed_allocs}) — the legacy series lost its per-delivery "
            f"closure allocation; the comparison is no longer meaningful"
        )


# Schema for the control_plane bench (BENCH_control_plane.json).
CP_SERIES_FIELDS = {
    "events": int,
    "wall_seconds": float,
    "ns_per_event": float,
    "events_per_sec": (int, float),
}

CP_STARTUP_FIELDS = {
    "scenario": str,
    "nodes": int,
    "shards": int,
    "sim_seconds": (int, float),
    "wall_seconds": float,
    "events": int,
    "events_per_sec": (int, float),
    "delivered": int,
}

# Profiler-attributed control-plane share, measured by this script from
# mdrsim --prof-deep on the waxman_scale scenario. Optional in --smoke
# runs; the committed full-mode baseline must carry it.
CP_PROF_FIELDS = {
    "scenario": str,
    "shards": int,
    "table_update_self_ns": int,
    "recompute_self_ns": int,
    "engine_busy_total_ns": int,
    "share": float,
}


def validate_control_plane(doc):
    if doc.get("version") != 1:
        fail(f"version != 1: {doc.get('version')!r}")
    if not isinstance(doc.get("smoke"), bool):
        fail("smoke is not a bool")
    check_number(doc.get("host_cpus"), "host_cpus")

    storm = doc.get("storm")
    if not isinstance(storm, dict):
        fail("storm is missing or not an object")
    if not isinstance(storm.get("scenario"), str):
        fail("storm.scenario is not a string")
    check_number(storm.get("events"), "storm.events")
    if storm["events"] == 0:
        fail("storm.events == 0 (no LSU storm was replayed)")
    for series in ("incremental", "from_scratch"):
        check_fields(storm.get(series), CP_SERIES_FIELDS, f"storm.{series}")
    check_number(storm.get("speedup_vs_from_scratch"),
                 "storm.speedup_vs_from_scratch")
    # The bench binary aborts if the two implementations diverge, so a
    # validated file implies output equality. No timing gate on the
    # speedup value itself (shared-runner wall clock is noise); humans
    # diff the committed baseline.

    check_fields(doc.get("startup"), CP_STARTUP_FIELDS, "startup")
    if doc["startup"]["delivered"] == 0:
        fail("startup.delivered == 0 (simulation carried no traffic)")
    if not doc["smoke"] and doc["startup"]["nodes"] < 1000:
        fail(f"startup.nodes = {doc['startup']['nodes']} — the committed "
             f"full-mode baseline must carry the 1000-router point")

    prof = doc.get("prof_share")
    if prof is None:
        if not doc["smoke"]:
            fail("prof_share is missing — the committed full-mode baseline "
                 "must record the control-plane busy-time share")
    else:
        check_fields(prof, CP_PROF_FIELDS, "prof_share")
        if not 0.0 <= prof["share"] <= 1.0:
            fail(f"prof_share.share = {prof['share']} is not a fraction")
        if prof["engine_busy_total_ns"] == 0:
            fail("prof_share.engine_busy_total_ns == 0")

    # The pre-incremental reference point: same measurement, taken once at
    # the pinned commit (the last from-scratch-tables revision). Optional —
    # but when present its shape is held to the same schema.
    base = doc.get("prof_share_baseline")
    if base is not None:
        check_fields(base, dict(CP_PROF_FIELDS, commit=str),
                     "prof_share_baseline")
        if not 0.0 <= base["share"] <= 1.0:
            fail(f"prof_share_baseline.share = {base['share']} "
                 f"is not a fraction")
        if base["engine_busy_total_ns"] == 0:
            fail("prof_share_baseline.engine_busy_total_ns == 0")


def measure_prof_share(build_dir):
    """Control-plane busy-time share on the 1000-router Waxman scenario.

    Runs mdrsim with the deep profiler and computes
    (mpda.table_update + mpda.recompute self time) / engine.busy total
    time, summed across shard tracks. This is the number the dirty-set
    MTU + dynamic SPT work is accountable to (docs/SIMULATOR.md "Costs
    and scale" records the before/after).
    """
    mdrsim = build_dir / "apps" / "mdrsim"
    scenario = REPO_ROOT / "examples" / "scenarios" / "waxman_scale.scn"
    if not mdrsim.exists():
        print(f"run_bench: note: {mdrsim} not built, skipping prof share")
        return None
    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "prof.json"
        subprocess.run([str(mdrsim), str(scenario), "--prof-deep",
                        "--json", str(out), "--quiet"],
                       check=True, capture_output=True, text=True)
        with open(out) as f:
            doc = json.load(f)
    prof = doc.get("prof")
    if not isinstance(prof, dict):
        fail("mdrsim --prof-deep emitted no prof block")
    table_ns = recompute_ns = busy_ns = 0
    for track in prof.get("host", {}).get("tracks", []):
        sections = track.get("sections", {})
        table_ns += sections.get("mpda.table_update", {}).get("self_ns", 0)
        recompute_ns += sections.get("mpda.recompute", {}).get("self_ns", 0)
        busy_ns += sections.get("engine.busy", {}).get("total_ns", 0)
    if busy_ns == 0:
        fail("prof block carries no engine.busy time")
    return {
        "scenario": str(scenario.relative_to(REPO_ROOT)),
        "shards": prof.get("shards", 0),
        "table_update_self_ns": int(table_ns),
        "recompute_self_ns": int(recompute_ns),
        "engine_busy_total_ns": int(busy_ns),
        "share": round((table_ns + recompute_ns) / busy_ns, 4),
    }


def measure_checkpoint_cost(build_dir):
    """Checkpoint save/restore cost on the CAIRN macro scenario.

    Runs mdrsim with periodic snapshots, then resumes from the last one,
    and collects the [ckpt] cost lines from stderr. Informational only:
    the numbers land in the baseline for humans to diff; nothing gates on
    them (wall-clock on shared runners is noise).
    """
    mdrsim = build_dir / "apps" / "mdrsim"
    scenario = REPO_ROOT / "examples" / "scenarios" / "cairn_mp.scn"
    if not mdrsim.exists():
        print(f"run_bench: note: {mdrsim} not built, skipping ckpt series")
        return None
    interval_s = 30
    with tempfile.TemporaryDirectory() as tmp:
        ck = pathlib.Path(tmp) / "bench.mdrk"
        base = [str(mdrsim), str(scenario), "--quiet",
                "--checkpoint-interval", str(interval_s),
                "--checkpoint-path", str(ck)]
        save_run = subprocess.run(base, check=True, capture_output=True,
                                  text=True)
        load_run = subprocess.run(base + ["--resume-from", str(ck)],
                                  check=True, capture_output=True, text=True)
    saves = [(int(m.group(2)), float(m.group(3)))
             for m in CKPT_LINE.finditer(save_run.stderr)
             if m.group(1) == "save"]
    loads = [float(m.group(3))
             for m in CKPT_LINE.finditer(load_run.stderr)
             if m.group(1) == "load"]
    if not saves or not loads:
        fail("mdrsim printed no [ckpt] save/load cost lines on stderr")
    return {
        "scenario": str(scenario.relative_to(REPO_ROOT)),
        "interval_s": interval_s,
        "snapshots": len(saves),
        "last_bytes": saves[-1][0],
        "save_ms_mean": round(sum(ms for _, ms in saves) / len(saves), 3),
        "load_ms": round(loads[0], 3),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="event_core",
                        choices=["event_core", "control_plane"],
                        help="which perf baseline to run")
    parser.add_argument("--smoke", action="store_true",
                        help="short run (CI): ~200k hop events, 10 s macro")
    parser.add_argument("--build-dir", default=str(REPO_ROOT / "build"),
                        help="CMake build tree holding the bench binaries")
    parser.add_argument("--out", default=None,
                        help="where to write the validated JSON "
                             "(default: BENCH_<bench>.json)")
    parser.add_argument("--validate-only", metavar="FILE",
                        help="validate an existing JSON file and exit")
    parser.add_argument("--force", action="store_true",
                        help="overwrite a baseline recorded on a bigger host")
    args = parser.parse_args()
    if args.out is None:
        args.out = str(REPO_ROOT / f"BENCH_{args.bench}.json")

    if args.validate_only:
        with open(args.validate_only) as f:
            validate(json.load(f))
        print(f"run_bench: OK: {args.validate_only} matches the schema")
        return

    # A baseline measured on a bigger machine (more cores) would be silently
    # replaced by slower numbers from this host, and the next human diffing
    # baselines would read that as a code regression. Refuse unless forced.
    out_path = pathlib.Path(args.out)
    if out_path.exists() and not args.force:
        try:
            with open(out_path) as f:
                existing = json.load(f)
            recorded_cpus = existing.get("host_cpus")
        except (OSError, json.JSONDecodeError):
            recorded_cpus = None
        host_cpus = os.cpu_count() or 1
        if isinstance(recorded_cpus, (int, float)) and \
                not isinstance(recorded_cpus, bool) and \
                recorded_cpus > host_cpus:
            fail(
                f"{out_path} was recorded on a {int(recorded_cpus)}-CPU host "
                f"but this host has {host_cpus}; overwriting would make the "
                f"committed baseline look like a perf regression. "
                f"Pass --force to overwrite anyway."
            )

    # The pre-incremental reference measurement (prof_share_baseline) is
    # pinned to a commit this script cannot rebuild; carry it across
    # refreshes so regenerating the baseline never silently drops it.
    prior_baseline = None
    if out_path.exists():
        try:
            with open(out_path) as f:
                prior_baseline = json.load(f).get("prof_share_baseline")
        except (OSError, json.JSONDecodeError):
            prior_baseline = None

    build_dir = pathlib.Path(args.build_dir)
    bench_target = f"perf_{args.bench}"
    binary = build_dir / "bench" / bench_target
    if (build_dir / "CMakeCache.txt").exists():
        # Both benches also need mdrsim: event_core for the checkpoint-cost
        # series, control_plane for the waxman-1000 profiler share.
        subprocess.run(
            ["cmake", "--build", str(build_dir), "--target",
             bench_target, "mdrsim", "-j"],
            check=True,
        )
    if not binary.exists():
        fail(f"{binary} not found (configure the build tree first: "
             f"cmake -B {build_dir} -S {REPO_ROOT})")

    cmd = [str(binary), "--out", args.out]
    if args.smoke:
        cmd.append("--smoke")
    subprocess.run(cmd, check=True)

    if args.bench == "event_core":
        ckpt = measure_checkpoint_cost(build_dir)
        if ckpt is not None:
            with open(args.out) as f:
                doc = json.load(f)
            doc["ckpt"] = ckpt
            with open(args.out, "w") as f:
                json.dump(doc, f, indent=2)
                f.write("\n")
            print(f"run_bench: ckpt: {ckpt['snapshots']} snapshots of "
                  f"{ckpt['last_bytes']} bytes, save {ckpt['save_ms_mean']} ms "
                  f"mean, load {ckpt['load_ms']} ms")
    elif args.bench == "control_plane" and not args.smoke:
        prof = measure_prof_share(build_dir)
        if prof is None:
            fail("control_plane full mode requires the waxman-1000 profiler "
                 "share; build mdrsim in the same tree and retry")
        with open(args.out) as f:
            doc = json.load(f)
        doc["prof_share"] = prof
        if prior_baseline is not None:
            doc["prof_share_baseline"] = prior_baseline
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"run_bench: prof_share: table_update+recompute = "
              f"{prof['share']:.1%} of engine busy time on "
              f"{prof['scenario']} ({prof['shards']} shards)")
        if prior_baseline is not None:
            before = (prior_baseline["table_update_self_ns"] +
                      prior_baseline["recompute_self_ns"])
            after = prof["table_update_self_ns"] + prof["recompute_self_ns"]
            if after > 0:
                print(f"run_bench: attributed busy time "
                      f"{before / 1e9:.1f}s -> {after / 1e9:.1f}s "
                      f"({before / after:.2f}x drop vs "
                      f"{prior_baseline['commit']})")

    with open(args.out) as f:
        validate(json.load(f))
    print(f"run_bench: OK: wrote and validated {args.out}")


if __name__ == "__main__":
    main()
