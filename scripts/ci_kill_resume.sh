#!/usr/bin/env sh
# Crash-recovery gate (docs/CHECKPOINT.md): run a scenario with periodic
# snapshots, SIGKILL the process as soon as the first snapshot lands, resume
# from the snapshot with the same command line, and byte-diff the final JSON
# and telemetry stream against an uninterrupted reference run.
#
# Usage: ci_kill_resume.sh <mdrsim> <scenario> <workdir> [extra mdrsim flags]
#
# The reference run has checkpointing OFF, so a passing diff proves both
# halves of the contract at once: checkpointing enabled is byte-identical to
# disabled, and a killed-and-resumed run is byte-identical to one that was
# never interrupted.
set -eu

MDRSIM=$1
SCN=$2
DIR=$3
shift 3

mkdir -p "$DIR"
CK="$DIR/run.mdrk"
INTERVAL=5

# Uninterrupted reference, no checkpointing.
"$MDRSIM" "$SCN" --json "$DIR/ref.json" --metrics-out "$DIR/ref.jsonl" \
  --sample-interval 2 --quiet "$@"

# Interrupted run: kill -9 the moment the first snapshot is renamed into
# place (atomic write, so an existing file is always a complete snapshot).
rm -f "$CK" "$DIR/out.json" "$DIR/out.jsonl"
"$MDRSIM" "$SCN" --checkpoint-interval "$INTERVAL" --checkpoint-path "$CK" \
  --json "$DIR/out.json" --metrics-out "$DIR/out.jsonl" \
  --sample-interval 2 --quiet "$@" &
PID=$!
while [ ! -f "$CK" ] && kill -0 "$PID" 2>/dev/null; do sleep 0.05; done
if ! kill -9 "$PID" 2>/dev/null; then
  echo "FAIL: run finished before the kill landed (snapshot too late?)" >&2
  exit 1
fi
wait "$PID" 2>/dev/null || true
if [ -f "$DIR/out.json" ]; then
  echo "FAIL: killed run still wrote its JSON report" >&2
  exit 1
fi

# Resume: same command line plus --resume-from.
"$MDRSIM" "$SCN" --checkpoint-interval "$INTERVAL" --checkpoint-path "$CK" \
  --resume-from "$CK" \
  --json "$DIR/out.json" --metrics-out "$DIR/out.jsonl" \
  --sample-interval 2 --quiet "$@"

# The per-run "host" object (wall_clock_s, peak_rss_bytes) is host timing,
# not simulation output — strip it exactly like tests/mdrsim_telemetry.cmake
# before the byte diff. Everything else must match bit for bit.
sed 's/, "host": {[^}]*}//' "$DIR/ref.json" > "$DIR/ref.stripped.json"
sed 's/, "host": {[^}]*}//' "$DIR/out.json" > "$DIR/out.stripped.json"
cmp "$DIR/ref.stripped.json" "$DIR/out.stripped.json"
cmp "$DIR/ref.jsonl" "$DIR/out.jsonl"
echo "OK: kill-and-resume byte-identical ($SCN $*)"
