#!/usr/bin/env python3
"""Validate mdrsim telemetry JSONL streams against the documented schema.

Usage:
    check_telemetry.py --samples FILE [--trace FILE]
    check_telemetry.py --prof-trace FILE [--prof-compare FILE2]

Checks every line of the sample/metrics stream (--metrics-out) and the
event/flight-dump stream (--trace) against the row schemas documented in
docs/OBSERVABILITY.md: required keys, value types, and basic sanity
(timestamps non-negative and non-decreasing per kind, utilization within
[0, 1+eps], counters non-negative). Exits non-zero with a line-numbered
message on the first violation so CI can gate on telemetry format drift.

--prof-trace validates a Chrome trace-event JSON file from --prof-out
(docs/OBSERVABILITY.md "Profiling & convergence tracing"): required keys
per event phase, non-negative and per-(pid, tid) monotone timestamps,
properly nested and fully matched B/E pairs, and host-time fields confined
to the pids declared in otherData.host_time_pids. --prof-compare asserts
that the deterministic view of a second trace (every event outside the
host-time pids) is identical — the same-seed determinism contract.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys

NUM = (int, float)
# Event payloads may be null: non-finite doubles (e.g. the initial infinite
# feasible distance) serialize as JSON null.
NUM_OR_NULL = (int, float, type(None))

# kind -> {field: expected type(s)}; every field is required.
SAMPLE_SCHEMAS = {
    "link": {
        "run": int, "t": NUM, "from": str, "to": str, "util": NUM,
        "queue_bits": NUM, "queue_pkts": int, "data_bits": NUM,
        "control_bits": NUM, "drops": int,
    },
    "flow": {
        "run": int, "t": NUM, "src": str, "dst": str, "injected": int,
        "delivered": int, "delay_sum_s": NUM, "measured_delivered": int,
        "measured_delay_sum_s": NUM, "dropped": int,
    },
    "dest": {
        "run": int, "t": NUM, "dest": str, "mean_successors": NUM,
        "mean_entropy_bits": NUM, "churn": int,
    },
    "control": {
        "run": int, "t": NUM, "lsus_originated": int,
        "lsus_retransmitted": int, "lsus_suppressed": int, "acks": int,
        "hellos": int, "control_bits": NUM, "control_dropped": int,
    },
    # Present only when the run enables the stability monitor; margin may be
    # negative once the verdict flips to unstable.
    "stability": {
        "run": int, "t": NUM, "queue_bits": NUM, "slope_bps": NUM,
        "delay_s": NUM, "margin": NUM,
    },
    "metrics": {"run": str, "metrics": dict},
}

TRACE_SCHEMAS = {
    "event": {"run": int, "t": NUM, "node": str, "event": str,
              "a": NUM_OR_NULL, "b": NUM_OR_NULL},
    "flight_dump": {"run": int, "t": NUM, "reason": str, "events": list},
}

EVENT_NAMES = {
    "lsu_originate", "lsu_receive", "fd_change", "successor_change",
    "ih_alloc", "ah_alloc", "crash", "recover", "damp_suppress",
    "damp_release", "control_drop",
}

DUMP_REASONS = {"forwarding_loop", "blackhole", "accounting_leak"}

HISTO_FIELDS = {"count", "sum", "min", "max", "mean", "p50", "p90", "p99"}


class SchemaError(Exception):
    pass


def check_fields(row, schema, where):
    for field, expected in schema.items():
        if field not in row:
            raise SchemaError(f"{where}: missing field '{field}'")
        value = row[field]
        # bool is an int subclass in Python; never valid here.
        if isinstance(value, bool) or not isinstance(value, expected):
            raise SchemaError(
                f"{where}: field '{field}' has type {type(value).__name__}, "
                f"expected {expected}")
        if field == "t" and value < 0:
            raise SchemaError(f"{where}: negative timestamp {value}")
    extra = set(row) - set(schema) - {"kind", "peer"}
    if extra:
        raise SchemaError(f"{where}: unexpected fields {sorted(extra)}")


def check_event_row(row, where, nested=False):
    schema = TRACE_SCHEMAS["event"]
    if nested:  # events inside a flight_dump inherit run/kind from the dump row
        schema = {k: v for k, v in schema.items() if k != "run"}
    check_fields(row, schema, where)
    if row["event"] not in EVENT_NAMES:
        raise SchemaError(f"{where}: unknown event type '{row['event']}'")
    if "peer" in row and not isinstance(row["peer"], str):
        raise SchemaError(f"{where}: 'peer' must be a string")


def check_metrics_row(row, where):
    check_fields(row, SAMPLE_SCHEMAS["metrics"], where)
    m = row["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if section not in m or not isinstance(m[section], dict):
            raise SchemaError(f"{where}: metrics missing object '{section}'")
    for name, v in m["counters"].items():
        if isinstance(v, bool) or not isinstance(v, int) or v < 0:
            raise SchemaError(f"{where}: counter '{name}' must be a "
                              f"non-negative integer, got {v!r}")
    for name, v in m["gauges"].items():
        if isinstance(v, bool) or not isinstance(v, NUM):
            raise SchemaError(f"{where}: gauge '{name}' must be numeric")
    for name, h in m["histograms"].items():
        if not isinstance(h, dict) or set(h) != HISTO_FIELDS:
            raise SchemaError(
                f"{where}: histogram '{name}' must have exactly "
                f"{sorted(HISTO_FIELDS)}, got {sorted(h) if isinstance(h, dict) else h!r}")


def parse_lines(path):
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                raise SchemaError(f"{path}:{lineno}: invalid JSON: {e}")
            if not isinstance(row, dict) or "kind" not in row:
                raise SchemaError(f"{path}:{lineno}: row must be an object "
                                  "with a 'kind' field")
            yield lineno, row


def check_samples(path):
    counts = {}
    last_t = {}
    for lineno, row in parse_lines(path):
        kind = row["kind"]
        where = f"{path}:{lineno}"
        if kind not in SAMPLE_SCHEMAS:
            raise SchemaError(f"{where}: unknown sample kind '{kind}'")
        if kind == "metrics":
            check_metrics_row(row, where)
        else:
            check_fields(row, SAMPLE_SCHEMAS[kind], where)
            series = (kind, row["run"])
            if row["t"] < last_t.get(series, 0.0):
                raise SchemaError(f"{where}: timestamps go backwards within "
                                  f"{series}")
            last_t[series] = row["t"]
        if kind == "link" and not -1e-9 <= row["util"] <= 1.0 + 1e-9:
            raise SchemaError(f"{where}: utilization {row['util']} out of "
                              "[0, 1]")
        counts[kind] = counts.get(kind, 0) + 1
    for required in ("link", "flow", "control", "metrics"):
        if counts.get(required, 0) == 0:
            raise SchemaError(f"{path}: no '{required}' rows — sampler did "
                              "not run or stream is truncated")
    return counts


def check_trace(path):
    counts = {}
    for lineno, row in parse_lines(path):
        kind = row["kind"]
        where = f"{path}:{lineno}"
        if kind == "event":
            check_event_row(row, where)
        elif kind == "flight_dump":
            check_fields(row, TRACE_SCHEMAS["flight_dump"], where)
            if row["reason"] not in DUMP_REASONS:
                raise SchemaError(f"{where}: unknown dump reason "
                                  f"'{row['reason']}'")
            for i, ev in enumerate(row["events"]):
                check_event_row(ev, f"{where} (dump event {i})", nested=True)
        else:
            raise SchemaError(f"{where}: unknown trace kind '{kind}'")
        counts[kind] = counts.get(kind, 0) + 1
    if counts.get("event", 0) == 0:
        raise SchemaError(f"{path}: no 'event' rows — trace is empty")
    return counts


# Args keys that carry host time; they may only appear on events whose pid
# is declared in otherData.host_time_pids.
HOST_TIME_ARG_KEYS = {"total_ns", "self_ns", "wall_ns", "clock_cost_ns",
                      "overhead_est_ns"}

PROF_SCHEMA = "mdr-prof-1"


def load_prof_trace(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        raise SchemaError(f"{path}: invalid JSON: {e}")
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: top level must be an object")
    for key in ("traceEvents", "otherData"):
        if key not in doc:
            raise SchemaError(f"{path}: missing top-level '{key}'")
    other = doc["otherData"]
    if not isinstance(other, dict) or other.get("schema") != PROF_SCHEMA:
        raise SchemaError(f"{path}: otherData.schema must be '{PROF_SCHEMA}'")
    host_pids = other.get("host_time_pids")
    if (not isinstance(host_pids, list)
            or not all(isinstance(p, int) and not isinstance(p, bool)
                       for p in host_pids)):
        raise SchemaError(f"{path}: otherData.host_time_pids must be a list "
                          "of pids")
    if not isinstance(doc["traceEvents"], list):
        raise SchemaError(f"{path}: traceEvents must be a list")
    return doc


def check_prof_trace(path):
    doc = load_prof_trace(path)
    host_pids = set(doc["otherData"]["host_time_pids"])
    counts = {}
    last_ts = {}    # (pid, tid) -> last event timestamp
    open_begins = {}  # (pid, tid) -> stack of (name, ts)
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"{path} event {i}"
        if not isinstance(ev, dict):
            raise SchemaError(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in ("M", "B", "E", "X"):
            raise SchemaError(f"{where}: unknown phase {ph!r}")
        for key in ("pid", "tid"):
            v = ev.get(key)
            if isinstance(v, bool) or not isinstance(v, int):
                raise SchemaError(f"{where}: '{key}' must be an integer")
        track = (ev["pid"], ev["tid"])
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                raise SchemaError(f"{where}: metadata name must be "
                                  "process_name/thread_name")
            if not isinstance(ev.get("args", {}).get("name"), str):
                raise SchemaError(f"{where}: metadata args.name must be a "
                                  "string")
        else:
            ts = ev.get("ts")
            if isinstance(ts, bool) or not isinstance(ts, NUM) or ts < 0:
                raise SchemaError(f"{where}: 'ts' must be a non-negative "
                                  "number")
            if ts < last_ts.get(track, 0.0):
                raise SchemaError(f"{where}: ts goes backwards on track "
                                  f"pid={track[0]} tid={track[1]}")
            last_ts[track] = ts
        if ph in ("B", "X"):
            if not isinstance(ev.get("name"), str):
                raise SchemaError(f"{where}: '{ph}' event needs a string "
                                  "name")
            if not isinstance(ev.get("args"), dict):
                raise SchemaError(f"{where}: '{ph}' event needs an args "
                                  "object")
        if ph == "X":
            dur = ev.get("dur")
            if isinstance(dur, bool) or not isinstance(dur, NUM) or dur < 0:
                raise SchemaError(f"{where}: 'X' event needs a non-negative "
                                  "'dur'")
        if ph == "B":
            open_begins.setdefault(track, []).append(ev["ts"])
        elif ph == "E":
            stack = open_begins.get(track, [])
            if not stack:
                raise SchemaError(f"{where}: 'E' with no open 'B' on track "
                                  f"pid={track[0]} tid={track[1]}")
            begin_ts = stack.pop()
            if ev["ts"] < begin_ts:
                raise SchemaError(f"{where}: 'E' precedes its 'B'")
        if ev["pid"] not in host_pids:
            leaked = HOST_TIME_ARG_KEYS & set(ev.get("args", {}))
            if leaked:
                raise SchemaError(
                    f"{where}: host-time args {sorted(leaked)} on pid "
                    f"{ev['pid']}, outside host_time_pids {sorted(host_pids)}")
        counts[ph] = counts.get(ph, 0) + 1
    for track, stack in open_begins.items():
        if stack:
            raise SchemaError(f"{path}: {len(stack)} unclosed 'B' on track "
                              f"pid={track[0]} tid={track[1]}")
    if counts.get("B", 0) == 0:
        raise SchemaError(f"{path}: no 'B' events — profiler tree is empty")
    return counts


def deterministic_view(path):
    """The events outside host_time_pids: byte-stable at a fixed seed."""
    doc = load_prof_trace(path)
    host_pids = set(doc["otherData"]["host_time_pids"])
    return [ev for ev in doc["traceEvents"]
            if isinstance(ev, dict) and ev.get("pid") not in host_pids]


def check_prof_compare(path_a, path_b):
    a, b = deterministic_view(path_a), deterministic_view(path_b)
    if a != b:
        for i, (ea, eb) in enumerate(zip(a, b)):
            if ea != eb:
                raise SchemaError(
                    f"deterministic views diverge at event {i}:\n"
                    f"  {path_a}: {ea}\n  {path_b}: {eb}")
        raise SchemaError(
            f"deterministic views have different lengths: "
            f"{path_a} has {len(a)} events, {path_b} has {len(b)}")
    return len(a)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", help="JSONL file from --metrics-out")
    parser.add_argument("--trace", help="JSONL file from --trace")
    parser.add_argument("--prof-trace",
                        help="Chrome trace-event JSON from --prof-out")
    parser.add_argument("--prof-compare", metavar="FILE2",
                        help="second --prof-out file; assert the "
                             "deterministic (sim-time) views match")
    args = parser.parse_args()
    if not args.samples and not args.trace and not args.prof_trace:
        parser.error("give at least one of --samples / --trace / --prof-trace")
    if args.prof_compare and not args.prof_trace:
        parser.error("--prof-compare requires --prof-trace")
    try:
        if args.samples:
            counts = check_samples(args.samples)
            print(f"{args.samples}: OK "
                  + " ".join(f"{k}={v}" for k, v in sorted(counts.items())))
        if args.trace:
            counts = check_trace(args.trace)
            print(f"{args.trace}: OK "
                  + " ".join(f"{k}={v}" for k, v in sorted(counts.items())))
        if args.prof_trace:
            counts = check_prof_trace(args.prof_trace)
            print(f"{args.prof_trace}: OK "
                  + " ".join(f"{k}={v}" for k, v in sorted(counts.items())))
            if args.prof_compare:
                check_prof_trace(args.prof_compare)
                n = check_prof_compare(args.prof_trace, args.prof_compare)
                print(f"{args.prof_compare}: deterministic view matches "
                      f"({n} events)")
    except SchemaError as e:
        print(f"telemetry schema violation: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
