// Traffic generation: Poisson sources (the stationary workloads of the
// paper's Section 5.1), exponential and Pareto on/off sources (the bursty,
// dynamic workloads its framework is built to absorb), and the hostile
// workloads of docs/WORKLOADS.md — a (w, eps)-bounded adversarial injector
// plus a rate modulator for diurnal curves and flash crowds.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/packet.h"
#include "util/rng.h"

namespace mdr::sim {

/// Hands a freshly generated packet to the source node's forwarding path.
using InjectFn = std::function<void(Packet)>;

struct FlowShape {
  graph::NodeId src = graph::kInvalidNode;
  graph::NodeId dst = graph::kInvalidNode;
  int flow_id = -1;
  double rate_bps = 0;          ///< long-run average offered load
  double mean_packet_bits = 8e3;
};

/// Inverse-CDF Pareto sample: x = x_m * U^(-1/alpha) with x_m = `scale`.
/// Exposed as a free function so tests can pin the tail exponent of the
/// exact sampler the on/off sources use.
double pareto_sample(Rng& rng, double scale, double alpha);

/// Common interface of the arrival processes. NetworkSim owns every source
/// through it, and EventQueue dispatches the sources' typed pooled events
/// (next arrival, burst boundary) back through handle_source_event — no
/// closure is allocated per packet emission.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Emits packets from `start` until `stop` (absolute times).
  virtual void run(Time start, Time stop) = 0;

  /// Packets handed to the inject callback so far (telemetry).
  virtual std::uint64_t emitted() const = 0;

  /// Typed-event dispatch from EventQueue. The opcode space and `arg`
  /// meaning are private to each source class.
  virtual void handle_source_event(std::uint8_t op, double arg) = 0;

  /// Checkpoints the mutable emission state (RNG stream, phase, counters).
  /// Pending source events live in the EventQueue and are restored there;
  /// configuration (shape, callbacks) is rebuilt by the owning simulator.
  virtual void save(ckpt::Writer& w) const = 0;
  virtual void load(ckpt::Reader& r) = 0;
};

/// Poisson arrivals, exponentially distributed packet sizes: each link then
/// behaves approximately like the paper's M/M/1 model.
class PoissonSource final : public TrafficSource {
 public:
  PoissonSource(EventQueue& events, FlowShape shape, Rng rng, InjectFn inject);

  void run(Time start, Time stop) override;
  std::uint64_t emitted() const override { return emitted_; }
  void handle_source_event(std::uint8_t op, double arg) override;

  void save(ckpt::Writer& w) const override {
    rng_.save(w);
    w.f64(stop_);
    w.u64(emitted_);
  }
  void load(ckpt::Reader& r) override {
    rng_.load(r);
    stop_ = r.f64();
    emitted_ = r.u64();
  }

 private:
  void emit_and_reschedule();
  EventQueue* events_;
  FlowShape shape_;
  Rng rng_;
  InjectFn inject_;
  Time stop_ = 0;
  double mean_interarrival_s_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Pareto (heavy-tailed) on/off source. Multiplexing many such sources
/// yields self-similar traffic (Taqqu et al.), the regime behind the
/// paper's observation that "in real networks traffic is very bursty at any
/// time scale" — burst lengths have infinite variance for alpha < 2, so no
/// averaging interval smooths them out.
class ParetoOnOffSource final : public TrafficSource {
 public:
  struct Shape {
    double alpha = 1.5;      ///< tail index (1 < alpha < 2: self-similar)
    double mean_on_s = 1.0;  ///< mean burst length
    double mean_off_s = 3.0; ///< mean gap length (same alpha tail)
  };

  ParetoOnOffSource(EventQueue& events, FlowShape shape, Shape burst,
                    Rng rng, InjectFn inject);

  void run(Time start, Time stop) override;
  std::uint64_t emitted() const override { return emitted_; }
  void handle_source_event(std::uint8_t op, double arg) override;

  void save(ckpt::Writer& w) const override {
    rng_.save(w);
    w.f64(stop_);
    w.u64(emitted_);
  }
  void load(ckpt::Reader& r) override {
    rng_.load(r);
    stop_ = r.f64();
    emitted_ = r.u64();
  }

 private:
  double pareto(double mean);
  void begin_on_period();
  void schedule_next_packet(Time period_end);

  EventQueue* events_;
  FlowShape shape_;
  Shape burst_;
  Rng rng_;
  InjectFn inject_;
  Time stop_ = 0;
  double peak_interarrival_s_ = 0;
  double scale_on_ = 0;   ///< Pareto x_m for ON periods
  double scale_off_ = 0;  ///< Pareto x_m for OFF periods
  std::uint64_t emitted_ = 0;
};

/// Exponential on/off source: bursts at `peak_factor` times the average rate
/// during ON periods so the long-run average still matches shape.rate_bps.
/// Models the "short-term traffic fluctuations" the Ts heuristics absorb.
class OnOffSource final : public TrafficSource {
 public:
  struct Burstiness {
    double mean_on_s = 1.0;
    double mean_off_s = 3.0;
    /// Peak rate = rate_bps * (mean_on + mean_off) / mean_on, so the
    /// duty-cycled average equals rate_bps.
  };

  OnOffSource(EventQueue& events, FlowShape shape, Burstiness burstiness,
              Rng rng, InjectFn inject);

  void run(Time start, Time stop) override;
  std::uint64_t emitted() const override { return emitted_; }
  void handle_source_event(std::uint8_t op, double arg) override;

  void save(ckpt::Writer& w) const override {
    rng_.save(w);
    w.f64(stop_);
    w.u64(emitted_);
  }
  void load(ckpt::Reader& r) override {
    rng_.load(r);
    stop_ = r.f64();
    emitted_ = r.u64();
  }

 private:
  void begin_on_period();
  void schedule_next_packet(Time period_end);

  EventQueue* events_;
  FlowShape shape_;
  Burstiness burstiness_;
  Rng rng_;
  InjectFn inject_;
  Time stop_ = 0;
  double peak_interarrival_s_ = 0;
  std::uint64_t emitted_ = 0;
};

/// (w, eps)-bounded adversarial injector (Andrews et al., "Source Routing
/// and Scheduling in Packet Networks"). The flow obeys a hard token budget:
/// bits emitted over any interval starting at traffic start never exceed
/// rho * t + sigma with rho = shape.rate_bps and sigma = eps * w * rho —
/// the leaky-bucket form of the adversary's per-(src,dst) allowance.
/// Within the budget it is maximally hostile to queueing: it dumps the
/// whole bucket back-to-back at `peak` times the average rate, then goes
/// silent until the bucket refills, producing a sawtooth whose burst
/// (eps*w / (peak-1) s) and quiet (eps*w s) phases are rate-independent,
/// so with `sync` every adversarial flow in the network stays phase-locked
/// and the bursts land on the routing plane simultaneously.
class AdversarialSource final : public TrafficSource {
 public:
  struct Shape {
    double w_s = 4.0;   ///< the adversary's window w (seconds)
    double eps = 0.5;   ///< burstiness: sigma = eps * w * rho bits
    double peak = 4.0;  ///< in-burst emission rate as a multiple of rho (> 1)
    bool sync = true;   ///< full bucket at start for every flow (coordinated)
  };

  AdversarialSource(EventQueue& events, FlowShape shape, Shape adv, Rng rng,
                    InjectFn inject);

  void run(Time start, Time stop) override;
  std::uint64_t emitted() const override { return emitted_; }
  void handle_source_event(std::uint8_t op, double arg) override;

  /// Cumulative payload bits handed to inject (budget-conformance tests).
  double emitted_bits() const { return emitted_bits_; }
  double sigma_bits() const { return sigma_bits_; }

  void save(ckpt::Writer& w) const override {
    rng_.save(w);
    w.f64(stop_);
    w.f64(start_);
    w.f64(tokens_);
    w.f64(last_refill_);
    w.b(has_pending_);
    if (has_pending_) save_packet(w, pending_);
    w.u64(emitted_);
    w.f64(emitted_bits_);
  }
  void load(ckpt::Reader& r) override {
    rng_.load(r);
    stop_ = r.f64();
    start_ = r.f64();
    tokens_ = r.f64();
    last_refill_ = r.f64();
    has_pending_ = r.b();
    pending_ = has_pending_ ? load_packet(r) : Packet{};
    emitted_ = r.u64();
    emitted_bits_ = r.f64();
  }

 private:
  EventQueue* events_;
  FlowShape shape_;
  Shape adv_;
  Rng rng_;
  InjectFn inject_;
  Time stop_ = 0;
  Time start_ = 0;
  double sigma_bits_ = 0;   ///< bucket capacity
  double peak_bps_ = 0;     ///< in-burst wire rate
  double tokens_ = 0;
  Time last_refill_ = 0;
  Packet pending_{};        ///< drawn but not yet affordable
  bool has_pending_ = false;
  std::uint64_t emitted_ = 0;
  double emitted_bits_ = 0;
};

/// Time-varying load profile: a diurnal sinusoid multiplied by any number
/// of flash-crowd episodes (ramp up to `peak`, hold, ramp back down). The
/// profile is a pure multiplier on a flow's average rate; episodes are
/// pre-filtered per flow (NetworkSim applies a flash crowd only to flows
/// targeting the hotspot destination).
struct RateProfile {
  double period_s = 0;    ///< diurnal period; 0 disables the sinusoid
  double amplitude = 0;   ///< diurnal swing, in [0, 1)
  double phase_s = 0;     ///< sinusoid zero-crossing offset

  struct Episode {
    Time start = 0;
    Duration ramp_s = 5;   ///< linear 1 -> peak, and peak -> 1 on the way out
    Duration hold_s = 10;  ///< time spent at peak
    double peak = 4;       ///< rate multiplier at the crest
  };
  std::vector<Episode> episodes;

  bool active() const { return period_s > 0 || !episodes.empty(); }
  double multiplier(Time t) const;  ///< >= 0; product of all components
  double peak() const;              ///< sup of multiplier over all t
};

/// Wraps any TrafficSource with a RateProfile by thinning: the inner source
/// is built at the profile's peak rate and each emission is accepted with
/// probability multiplier(now)/peak from the wrapper's own RNG stream, so
/// the accepted process follows the profile exactly (for Poisson inner
/// sources this is the textbook construction of a non-homogeneous process).
/// Build order: construct the wrapper, build the inner source with gate()
/// as its inject callback, then adopt() it.
class ModulatedSource final : public TrafficSource {
 public:
  ModulatedSource(EventQueue& events, RateProfile profile, Rng rng,
                  InjectFn inject);

  /// The thinning inject callback to hand to the inner source.
  InjectFn gate();
  void adopt(std::unique_ptr<TrafficSource> inner);

  void run(Time start, Time stop) override;
  std::uint64_t emitted() const override { return accepted_; }
  std::uint64_t offered() const { return offered_; }
  void handle_source_event(std::uint8_t op, double arg) override;

  /// The wrapped concrete source — the target of the pending kSourceEmit
  /// events (the wrapper never schedules queue events of its own).
  TrafficSource* inner() const { return inner_.get(); }

  void save(ckpt::Writer& w) const override {
    rng_.save(w);
    w.u64(offered_);
    w.u64(accepted_);
    inner_->save(w);
  }
  void load(ckpt::Reader& r) override {
    rng_.load(r);
    offered_ = r.u64();
    accepted_ = r.u64();
    inner_->load(r);
  }

 private:
  void offer(Packet p);

  EventQueue* events_;
  RateProfile profile_;
  Rng rng_;
  InjectFn inject_;
  std::unique_ptr<TrafficSource> inner_;
  double peak_ = 1;
  std::uint64_t offered_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace mdr::sim
