// Traffic generation: Poisson sources (the stationary workloads of the
// paper's Section 5.1) and exponential on/off sources (the bursty, dynamic
// workloads its framework is built to absorb).
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/packet.h"
#include "util/rng.h"

namespace mdr::sim {

/// Hands a freshly generated packet to the source node's forwarding path.
using InjectFn = std::function<void(Packet)>;

struct FlowShape {
  graph::NodeId src = graph::kInvalidNode;
  graph::NodeId dst = graph::kInvalidNode;
  int flow_id = -1;
  double rate_bps = 0;          ///< long-run average offered load
  double mean_packet_bits = 8e3;
};

/// Common interface of the arrival processes. NetworkSim owns every source
/// through it, and EventQueue dispatches the sources' typed pooled events
/// (next arrival, burst boundary) back through handle_source_event — no
/// closure is allocated per packet emission.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Emits packets from `start` until `stop` (absolute times).
  virtual void run(Time start, Time stop) = 0;

  /// Packets handed to the inject callback so far (telemetry).
  virtual std::uint64_t emitted() const = 0;

  /// Typed-event dispatch from EventQueue. The opcode space and `arg`
  /// meaning are private to each source class.
  virtual void handle_source_event(std::uint8_t op, double arg) = 0;
};

/// Poisson arrivals, exponentially distributed packet sizes: each link then
/// behaves approximately like the paper's M/M/1 model.
class PoissonSource final : public TrafficSource {
 public:
  PoissonSource(EventQueue& events, FlowShape shape, Rng rng, InjectFn inject);

  void run(Time start, Time stop) override;
  std::uint64_t emitted() const override { return emitted_; }
  void handle_source_event(std::uint8_t op, double arg) override;

 private:
  void emit_and_reschedule();
  EventQueue* events_;
  FlowShape shape_;
  Rng rng_;
  InjectFn inject_;
  Time stop_ = 0;
  double mean_interarrival_s_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Pareto (heavy-tailed) on/off source. Multiplexing many such sources
/// yields self-similar traffic (Taqqu et al.), the regime behind the
/// paper's observation that "in real networks traffic is very bursty at any
/// time scale" — burst lengths have infinite variance for alpha < 2, so no
/// averaging interval smooths them out.
class ParetoOnOffSource final : public TrafficSource {
 public:
  struct Shape {
    double alpha = 1.5;      ///< tail index (1 < alpha < 2: self-similar)
    double mean_on_s = 1.0;  ///< mean burst length
    double mean_off_s = 3.0; ///< mean gap length (same alpha tail)
  };

  ParetoOnOffSource(EventQueue& events, FlowShape shape, Shape burst,
                    Rng rng, InjectFn inject);

  void run(Time start, Time stop) override;
  std::uint64_t emitted() const override { return emitted_; }
  void handle_source_event(std::uint8_t op, double arg) override;

 private:
  double pareto(double mean);
  void begin_on_period();
  void schedule_next_packet(Time period_end);

  EventQueue* events_;
  FlowShape shape_;
  Shape burst_;
  Rng rng_;
  InjectFn inject_;
  Time stop_ = 0;
  double peak_interarrival_s_ = 0;
  double scale_on_ = 0;   ///< Pareto x_m for ON periods
  double scale_off_ = 0;  ///< Pareto x_m for OFF periods
  std::uint64_t emitted_ = 0;
};

/// Exponential on/off source: bursts at `peak_factor` times the average rate
/// during ON periods so the long-run average still matches shape.rate_bps.
/// Models the "short-term traffic fluctuations" the Ts heuristics absorb.
class OnOffSource final : public TrafficSource {
 public:
  struct Burstiness {
    double mean_on_s = 1.0;
    double mean_off_s = 3.0;
    /// Peak rate = rate_bps * (mean_on + mean_off) / mean_on, so the
    /// duty-cycled average equals rate_bps.
  };

  OnOffSource(EventQueue& events, FlowShape shape, Burstiness burstiness,
              Rng rng, InjectFn inject);

  void run(Time start, Time stop) override;
  std::uint64_t emitted() const override { return emitted_; }
  void handle_source_event(std::uint8_t op, double arg) override;

 private:
  void begin_on_period();
  void schedule_next_packet(Time period_end);

  EventQueue* events_;
  FlowShape shape_;
  Burstiness burstiness_;
  Rng rng_;
  InjectFn inject_;
  Time stop_ = 0;
  double peak_interarrival_s_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace mdr::sim
