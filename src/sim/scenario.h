// Scenario files: declarative experiment descriptions.
//
// A scenario is a plain-text file describing a topology (or naming a
// built-in one), a set of flows, the routing scheme and its knobs, and any
// scheduled link events — everything run_simulation() needs. The `mdrsim`
// command-line tool runs scenarios directly; tests and downstream code can
// use the parser programmatically.
//
// Format (one directive per line; '#' starts a comment):
//
//   topology cairn [scale=<x>]      # built-in: cairn | net1 (+ paper flows)
//   topology random n=<n> [p=<p>] [flows=<k>] [rate=<bps>] [seed=<n>]
//   topology waxman n=<n> [alpha=<a>] [beta=<b>] [min_prop=<s>]
//            [flows=<k>] [rate=<bps>] [seed=<n>]   # generated + random flows
//   node <name>                     # or build your own topology
//   link <a> <b> [capacity=<bps>] [prop=<s>]      # duplex
//   flow <src> <dst> rate=<bps>
//   mode mp | sp | opt
//   tl <s>        ts <s>
//   duration <s>  warmup <s>  traffic_start <s>
//   seed <n>
//   estimator utilization | mm1 | observable | ipa
//   bursty on=<s> off=<s>                  # exponential on/off sources
//   pareto [alpha=<a>] [on=<s>] [off=<s>]  # self-similar on/off sources
//   loss <p>                               # per-packet link loss in [0,1)
//   hello [interval=<s>] [dead=<s>]
//   timeseries <s>
//   lfi_check <s>
//   ah_damping <x>
//   wrr
//   queue_limit <bits>                     # data-queue bound per link
//   control_queue_limit <bits>             # control-ingress budget per link
//   pace [min=<s>] [max=<s>]               # LSU origination hold-down
//   damping [penalty=<p>] [suppress=<p>] [reuse=<p>] [half_life=<s>] [max=<p>]
//   fail <t> <a> <b> [silent]
//   restore <t> <a> <b> [silent]
//   crash <t> <node>                       # router loses ALL state (silent)
//   recover <t> <node>                     # reboot + full re-handshake
//   flap <a> <b> [period=<s>] [duty=<x>] [start=<t>] [stop=<t>]
//   gilbert <a> <b> [p_good=<p>] [p_bad=<p>] [loss_bad=<p>] [loss_good=<p>]
//   dutycycle <a> <b> [period=<s>] [on=<x>] [start=<t>] [stop=<t>]
//             [p_good=<p>] [p_bad=<p>] [loss_bad=<p>] [loss_good=<p>]
//                                          # radio duty cycle; loss keys add
//                                          # a Gilbert-Elliott awake channel
//   corrupt <p>     duplicate <p>     reorder <p>   # control-plane chaos
//   adversarial [w=<s>] [eps=<x>] [peak=<x>] [sync=<0|1>]
//                                          # (w, eps)-bounded burst injector
//   diurnal period=<s> [amp=<x>] [phase=<s>]  # sinusoidal rate modulation
//   flashcrowd <dst> [start=<t>] [ramp=<s>] [hold=<s>] [peak=<x>]
//                                          # hotspot episode on flows to dst
//   stability <s> [window=<s>] [slope=<x>] [delay_factor=<x>] [persist=<n>]
//                                          # blow-up verdict monitor
//   monitor <s> [drop_budget=<n>]          # invariant sweeps + watchdog
//   sample <s>                             # telemetry time-series period
//   checkpoint interval=<s> path=<file>    # periodic crash-safe snapshots
//                                          # (docs/CHECKPOINT.md)
//   trace                                  # retain the full protocol trace
//   flightrec [capacity=<n>]               # bounded per-node event rings
//   prof [deep=0|1]                        # wall-clock profiler +
//                                          # convergence spans (both engines);
//                                          # deep=1 times per-event sections
//                                          # (higher overhead, obs/prof.h)
//   engine shards=<n> [ring=<cap>] [lookahead=<s>]  # sharded parallel engine
//
// `engine shards=N` runs the sharded conservative engine (same-seed output
// is byte-identical for any N >= 1); it is incompatible with trace/flightrec
// (enforced at parse time).
//
// crash/flap/dutycycle faults are silent by construction: a scenario using
// them must also enable `hello` (enforced at parse time); `damping` filters
// hello adjacency events and requires `hello` too. A lossy dutycycle and a
// `gilbert` directive on the same link conflict (one chain per direction)
// and are rejected. See docs/FAULTS.md and docs/WORKLOADS.md.
//
// Unknown directives, unknown option keys and malformed values are errors
// (fail fast, with the source name and offending line number).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/experiment_spec.h"

namespace mdr::sim {

struct Scenario {
  /// Everything run_experiment() needs: topology, flows and config.
  ExperimentSpec spec;
  /// "mp", "sp" or "opt". For "opt" the runner must solve Gallager first
  /// and install the result (spec.config.mode is kStatic, static_phi unset).
  std::string mode = "mp";
};

/// Parses a scenario; on failure returns nullopt and describes the problem
/// (with a line number) in *error. A non-empty `source_name` (typically the
/// file path) prefixes every diagnostic so multi-file drivers can attribute
/// errors.
std::optional<Scenario> parse_scenario(std::istream& in, std::string* error,
                                       const std::string& source_name = "");

/// Loads a scenario file from disk.
std::optional<Scenario> load_scenario(const std::string& path,
                                      std::string* error);

/// Runs a scenario end to end, solving OPT first when mode == "opt".
SimResult run_scenario(const Scenario& scenario);

}  // namespace mdr::sim
