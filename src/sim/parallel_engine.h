// Building blocks of the conservative parallel event engine.
//
// The network is partitioned into shards by a stable hash of the node NAME
// (not the dense id), so the assignment survives id renumbering and is
// identical on every platform. Each shard owns its nodes, their outgoing
// links and their traffic sources, and advances a private EventQueue in
// lockstep time windows. The window length is bounded by the minimum
// propagation delay over cross-shard links (the classic conservative
// lookahead): a packet transmitted at time u on another shard cannot arrive
// before u + lookahead, so a window that ends no later than
// (earliest pending event anywhere) + lookahead can run without ever
// seeing a cause from the future.
//
// Cross-shard deliveries travel through HandoffChannels (lock-free SPSC
// rings, sim/spsc_ring.h) and are drained into the destination shard's
// queue at every window barrier. Determinism across shard counts comes
// from the delivery KEY, not from drain order: every delivery in sharded
// mode — local or remote — is heap-ordered by (time, delivery_key), and
// the key encodes (link id, per-link wire sequence) with bit 63 set. Keys
// are globally unique, so the heap pop order is a total order independent
// of insertion order, and deliveries sort after every locally-sequenced
// event at an equal timestamp in every sharding.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "graph/topology.h"
#include "sim/packet.h"
#include "sim/spsc_ring.h"
#include "util/time.h"

namespace mdr::sim {

class SimLink;

/// FNV-1a, the stable 64-bit name hash behind shard assignment.
inline std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// shard_of[node] = fnv1a(name) % shards — deterministic for any shard
/// count, independent of node insertion order.
std::vector<int> assign_shards(const graph::Topology& topo, int shards);

/// Minimum propagation delay over links whose endpoints live on different
/// shards; +infinity when every link is shard-local (windows then run
/// straight to the next global pause).
double min_cross_shard_prop(const graph::Topology& topo,
                            const std::vector<int>& shard_of);

/// Canonical delivery ordering key: bit 63 (sorts after local events, whose
/// FIFO seqs stay far below 2^63), then the link id, then the per-link wire
/// sequence assigned at transmit time. 40 wire-seq bits cover ~10^12
/// packets per link per run.
inline constexpr unsigned kWireSeqBits = 40;

inline std::uint64_t delivery_key(graph::LinkId link, std::uint64_t wire_seq) {
  return (1ull << 63) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(link))
          << kWireSeqBits) |
         (wire_seq & ((1ull << kWireSeqBits) - 1));
}

/// One cross-shard delivery in flight between two window barriers.
struct HandoffItem {
  Time deliver_at = 0;
  std::uint64_t key = 0;
  SimLink* link = nullptr;  ///< executes handle_delivery on the dst shard
  std::uint64_t epoch = 0;
  Packet packet;
};

/// Directed shard-to-shard handoff: an SPSC ring plus a producer-local
/// spill buffer. A full ring must not block the producing shard (it would
/// deadlock the window barrier), so the overflow goes to the spill and both
/// are emptied at the next barrier — backpressure shows up as the spilled()
/// statistic, never as loss or a stall.
class HandoffChannel {
 public:
  explicit HandoffChannel(std::size_t ring_capacity) : ring_(ring_capacity) {}

  /// Producer (owning shard), called mid-window.
  void push(HandoffItem item) {
    if (!ring_.try_push(item)) {
      ++spilled_;
      spill_.push_back(std::move(item));
    }
  }

  /// Consumer, called only at window barriers (the producer is parked, so
  /// taking the spill buffer is race-free). Drain order does not matter for
  /// determinism — keys are a total order — but ring-then-spill preserves
  /// push order anyway.
  template <typename Fn>
  void drain(Fn&& deliver) {
    HandoffItem item;
    while (ring_.try_pop(item)) deliver(std::move(item));
    for (auto& spilled : spill_) deliver(std::move(spilled));
    spill_.clear();
  }

  /// Items that overflowed the ring into the spill buffer (cumulative).
  std::uint64_t spilled() const { return spilled_; }

 private:
  SpscRing<HandoffItem> ring_;
  std::vector<HandoffItem> spill_;  ///< producer-owned overflow
  std::uint64_t spilled_ = 0;
};

/// Two-phase spin barrier with a completion hook: the last arriver runs
/// `completion` while every other participant is still parked, then
/// releases the generation. The sharded engine's entire coordinator —
/// ring drains, window sizing, global pause events — runs inside the
/// completion hook, single-threaded by construction.
class WindowBarrier {
 public:
  WindowBarrier(int participants, std::function<void()> completion)
      : participants_(participants), completion_(std::move(completion)) {}

  void arrive_and_wait();

 private:
  const int participants_;
  std::function<void()> completion_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace mdr::sim
