#include "sim/link.h"

#include <cassert>
#include <utility>

namespace mdr::sim {

SimLink::SimLink(EventQueue& events, graph::LinkAttr attr,
                 cost::EstimatorKind estimator_kind, double mean_packet_bits,
                 DeliverFn deliver, Options options, Rng rng)
    : events_(&events),
      attr_(attr),
      deliver_(std::move(deliver)),
      options_(options),
      rng_(rng),
      gilbert_(options.gilbert),
      short_estimator_(cost::make_estimator(estimator_kind, attr.capacity_bps,
                                            attr.prop_delay_s,
                                            mean_packet_bits)),
      long_estimator_(cost::make_estimator(estimator_kind, attr.capacity_bps,
                                           attr.prop_delay_s,
                                           mean_packet_bits)),
      short_window_start_(events.now()),
      long_window_start_(events.now()) {}

bool SimLink::enqueue(Packet packet) {
  obs::ProfScope prof(prof_, obs::ProfSection::kLinkEnqueue);
  if (!up_) {
    ++drops_;
    if (packet.kind == Packet::Kind::kData) {
      ++data_dropped_;
    } else {
      // The link is already down; nothing was flushed, the packet was
      // refused at the door. Its own cause keeps the per-cause breakdown
      // honest (down-drops used to masquerade as flush-drops).
      ++control_dropped_down_;
      probe_.emit(obs::EventType::kControlDrop, packet.src, /*cause=*/3, 1);
    }
    return false;
  }
  const bool starts_busy_period =
      !transmitting_ && control_queue_.empty() && data_queue_.empty();
  if (packet.kind == Packet::Kind::kData &&
      options_.queue_limit_bits > 0 &&
      queued_bits_ + packet.size_bits > options_.queue_limit_bits) {
    ++drops_;
    ++data_dropped_;
    return false;
  }
  if (packet.kind == Packet::Kind::kControl &&
      options_.control_queue_limit_bits > 0 &&
      control_queued_bits_ + packet.size_bits >
          options_.control_queue_limit_bits) {
    // Bounded control ingress: the budget counts control bits queued or in
    // service, so a storm sheds here instead of growing without bound.
    ++drops_;
    ++control_dropped_queue_;
    probe_.emit(obs::EventType::kControlDrop, packet.src, /*cause=*/0, 1);
    return false;
  }
  queued_bits_ += packet.size_bits;
  if (packet.kind == Packet::Kind::kControl) {
    control_queued_bits_ += packet.size_bits;
  }
  Queued q{std::move(packet), events_->now(), starts_busy_period};
  if (starts_busy_period) {
    // Fully idle transmitter: go straight into service. Skipping the deque
    // round-trip matters — at queue depth one a push_back/pop_front pair
    // creeps through the deque's blocks and allocates every few packets,
    // which would be the only steady-state allocation left on the hop path.
    begin_service(std::move(q));
    return true;
  }
  auto& queue = q.packet.kind == Packet::Kind::kControl ? control_queue_
                                                        : data_queue_;
  queue.push_back(std::move(q));
  if (!transmitting_) start_transmission();
  return true;
}

void SimLink::start_transmission() {
  assert(!transmitting_);
  assert(!control_queue_.empty() || !data_queue_.empty());
  // Pin the packet in service now: a control arrival during a data
  // transmission must not reorder what completes.
  auto& queue = control_queue_.empty() ? data_queue_ : control_queue_;
  Queued q = std::move(queue.front());
  queue.pop_front();
  begin_service(std::move(q));
}

void SimLink::begin_service(Queued q) {
  assert(!transmitting_);
  transmitting_ = true;
  in_service_ = std::move(q);
  const double service =
      (in_service_->packet.size_bits + kHeaderBits) / attr_.capacity_bps;
  events_->schedule_transmit_complete(service, this, epoch_);
}

void SimLink::finish_transmission() {
  assert(transmitting_);
  assert(in_service_.has_value());
  Queued q = std::move(*in_service_);
  in_service_.reset();
  queued_bits_ -= q.packet.size_bits;
  if (q.packet.kind == Packet::Kind::kControl) {
    control_queued_bits_ -= q.packet.size_bits;
  }
  transmitting_ = false;

  const double service =
      (q.packet.size_bits + kHeaderBits) / attr_.capacity_bps;
  busy_time_ += service;

  cost::PacketObservation obs;
  obs.arrival_time = q.enqueued;
  obs.departure_time = events_->now();
  obs.service_time = service;
  obs.size_bits = q.packet.size_bits + kHeaderBits;
  // Decided when the packet arrived (Queued::starts_busy_period), not
  // re-derived from departure - arrival: a back-to-back arrival at the
  // exact instant a transmission completes has zero waiting time but did
  // NOT start a busy period.
  obs.started_busy_period = q.starts_busy_period;
  if (q.starts_busy_period) ++busy_periods_;
  short_estimator_->observe(obs);
  long_estimator_->observe(obs);

  if (q.packet.kind == Packet::Kind::kControl) {
    ++control_packets_;
    control_bits_ += obs.size_bits;
  } else {
    ++data_packets_;
    data_bits_ += obs.size_bits;
  }

  // Both loss processes are always evaluated (no short-circuit): the
  // Gilbert–Elliott chain must step on every packet to keep its burst
  // structure, whatever the i.i.d. draw said.
  bool lost = options_.loss_rate > 0 && rng_.bernoulli(options_.loss_rate);
  if (options_.gilbert.enabled() && gilbert_.lose(rng_)) lost = true;
  if (lost) {
    ++drops_;  // corrupted on the wire
    if (q.packet.kind == Packet::Kind::kData) {
      ++data_dropped_;
    } else {
      ++control_dropped_wire_;
      probe_.emit(obs::EventType::kControlDrop, q.packet.src, /*cause=*/1, 1);
    }
  } else {
    const bool control = q.packet.kind == Packet::Kind::kControl;
    Duration delay = attr_.prop_delay_s;
    if (control && options_.reorder_rate > 0 &&
        rng_.bernoulli(options_.reorder_rate)) {
      // Enough extra latency that packets transmitted later routinely
      // overtake this one.
      delay += attr_.prop_delay_s * rng_.uniform(1.0, 4.0);
    }
    if (control && options_.corrupt_rate > 0 &&
        rng_.bernoulli(options_.corrupt_rate) && !q.packet.payload.empty()) {
      const auto bit = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<int>(q.packet.payload.size()) * 8 - 1));
      q.packet.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    if (control && options_.duplicate_rate > 0 &&
        rng_.bernoulli(options_.duplicate_rate)) {
      schedule_delivery(q.packet, delay);
    }
    schedule_delivery(std::move(q.packet), delay);
  }

  if (!control_queue_.empty() || !data_queue_.empty()) start_transmission();
}

void SimLink::schedule_delivery(Packet packet, Duration delay) {
  ++(packet.kind == Packet::Kind::kData ? wire_sent_data_
                                        : wire_sent_control_);
  if (!sharded_wire_) {
    events_->schedule_delivery(delay, this, epoch_, std::move(packet));
    return;
  }
  // Sharded wire: a canonical (link, wire seq) key orders this delivery
  // identically for every shard count, and the event executes on the
  // destination node's shard — directly when that is our own queue, through
  // the handoff channel when it is not.
  const std::uint64_t key = delivery_key(link_id_, wire_seq_++);
  const Time at = events_->now() + delay;
  if (dest_queue_ != nullptr) {
    dest_queue_->schedule_delivery_keyed(at, this, epoch_, std::move(packet),
                                         key);
  } else {
    channel_->push(HandoffItem{at, key, this, epoch_, std::move(packet)});
  }
}

void SimLink::handle_delivery(std::uint64_t epoch, Packet packet) {
  if (epoch != epoch_) return;  // link failed en route
  obs::ProfScope prof(deliver_prof_, obs::ProfSection::kLinkDeliver);
  ++(packet.kind == Packet::Kind::kData ? wire_delivered_data_
                                        : wire_delivered_control_);
  deliver_(std::move(packet));
}

void SimLink::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up) {
    // Everything queued or in flight is lost; outstanding completion and
    // delivery events are invalidated by the epoch bump. Packets already
    // propagating count as drops too — otherwise they leak out of the
    // conservation ledger (injected == delivered + dropped + in transit).
    // The wire ledger settles by moving the in-flight remainder to
    // `flushed` (never by decrementing `sent`), which keeps every counter
    // single-writer in sharded mode.
    const std::uint64_t data_in_flight = in_flight_data_packets();
    const std::uint64_t control_in_flight =
        wire_sent_control_ - wire_delivered_control_ - wire_flushed_control_;
    wire_flushed_data_ += data_in_flight;
    wire_flushed_control_ += control_in_flight;
    data_dropped_ += queued_data_packets() + data_in_flight;
    const std::uint64_t control_flushed =
        control_queue_.size() +
        (in_service_.has_value() &&
                 in_service_->packet.kind == Packet::Kind::kControl
             ? 1
             : 0) +
        control_in_flight;
    control_dropped_flush_ += control_flushed;
    if (control_flushed > 0) {
      probe_.emit(obs::EventType::kControlDrop, graph::kInvalidNode,
                  /*cause=*/2, static_cast<double>(control_flushed));
    }
    drops_ += control_queue_.size() + data_queue_.size() +
              (in_service_.has_value() ? 1 : 0) + data_in_flight +
              control_in_flight;
    control_queue_.clear();
    data_queue_.clear();
    in_service_.reset();
    queued_bits_ = 0;
    control_queued_bits_ = 0;
    transmitting_ = false;
    ++epoch_;
  }
}

double SimLink::take_short_estimate() {
  assert(events_->now() > short_window_start_);
  const double est =
      short_estimator_->estimate(short_window_start_, events_->now());
  short_estimator_->reset();
  short_window_start_ = events_->now();
  return est;
}

double SimLink::take_long_estimate() {
  assert(events_->now() > long_window_start_);
  const double est =
      long_estimator_->estimate(long_window_start_, events_->now());
  long_estimator_->reset();
  long_window_start_ = events_->now();
  return est;
}

// ------------------------------------------------------------ checkpointing

namespace {

void save_queued(ckpt::Writer& w, const Packet& packet, Time enqueued,
                 bool starts_busy_period) {
  save_packet(w, packet);
  w.f64(enqueued);
  w.b(starts_busy_period);
}

}  // namespace

void SimLink::save(ckpt::Writer& w) const {
  w.mark(0x11);
  rng_.save(w);
  gilbert_.save(w);
  const auto save_queue = [&w](const std::deque<Queued>& q) {
    w.u64(q.size());
    for (const Queued& e : q) {
      save_queued(w, e.packet, e.enqueued, e.starts_busy_period);
    }
  };
  save_queue(control_queue_);
  save_queue(data_queue_);
  w.b(in_service_.has_value());
  if (in_service_.has_value()) {
    save_queued(w, in_service_->packet, in_service_->enqueued,
                in_service_->starts_busy_period);
  }
  w.f64(queued_bits_);
  w.f64(control_queued_bits_);
  w.b(transmitting_);
  w.b(up_);
  w.u64(epoch_);
  short_estimator_->save(w);
  long_estimator_->save(w);
  w.f64(short_window_start_);
  w.f64(long_window_start_);
  w.u64(data_packets_);
  w.u64(control_packets_);
  w.f64(data_bits_);
  w.f64(control_bits_);
  w.u64(drops_);
  w.u64(data_dropped_);
  w.u64(control_dropped_queue_);
  w.u64(control_dropped_wire_);
  w.u64(control_dropped_flush_);
  w.u64(control_dropped_down_);
  w.u64(busy_periods_);
  w.u64(wire_sent_data_);
  w.u64(wire_sent_control_);
  w.u64(wire_delivered_data_);
  w.u64(wire_delivered_control_);
  w.u64(wire_flushed_data_);
  w.u64(wire_flushed_control_);
  w.f64(busy_time_);
  w.u64(wire_seq_);
}

void SimLink::load(ckpt::Reader& r) {
  r.expect_mark(0x11);
  rng_.load(r);
  gilbert_.load(r);
  const auto load_queue = [&r](std::deque<Queued>& q) {
    q.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Queued e;
      e.packet = load_packet(r);
      e.enqueued = r.f64();
      e.starts_busy_period = r.b();
      q.push_back(std::move(e));
    }
  };
  load_queue(control_queue_);
  load_queue(data_queue_);
  in_service_.reset();
  if (r.b()) {
    Queued e;
    e.packet = load_packet(r);
    e.enqueued = r.f64();
    e.starts_busy_period = r.b();
    in_service_ = std::move(e);
  }
  queued_bits_ = r.f64();
  control_queued_bits_ = r.f64();
  transmitting_ = r.b();
  up_ = r.b();
  epoch_ = r.u64();
  short_estimator_->load(r);
  long_estimator_->load(r);
  short_window_start_ = r.f64();
  long_window_start_ = r.f64();
  data_packets_ = r.u64();
  control_packets_ = r.u64();
  data_bits_ = r.f64();
  control_bits_ = r.f64();
  drops_ = r.u64();
  data_dropped_ = r.u64();
  control_dropped_queue_ = r.u64();
  control_dropped_wire_ = r.u64();
  control_dropped_flush_ = r.u64();
  control_dropped_down_ = r.u64();
  busy_periods_ = r.u64();
  wire_sent_data_ = r.u64();
  wire_sent_control_ = r.u64();
  wire_delivered_data_ = r.u64();
  wire_delivered_control_ = r.u64();
  wire_flushed_data_ = r.u64();
  wire_flushed_control_ = r.u64();
  busy_time_ = r.f64();
  wire_seq_ = r.u64();
}

}  // namespace mdr::sim
