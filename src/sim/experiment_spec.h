// ExperimentSpec: one value describing a complete experiment — the network,
// the offered traffic, and how to run/measure it. Everywhere a
// (topology, flows, config) triple used to travel as three positional
// arguments now takes one of these; the parallel runner's job type embeds
// one per replication.
#pragma once

#include <vector>

#include "graph/topology.h"
#include "sim/network_sim.h"
#include "topo/flows.h"

namespace mdr::sim {

struct ExperimentSpec {
  graph::Topology topo;
  std::vector<topo::FlowSpec> flows;
  SimConfig config;
  /// Which event engine runs the experiment (EngineSpec; default: the
  /// classic single-threaded queue). Scenario files set it with the
  /// `engine` directive, mdrsim with --shards.
  EngineSpec engine;
};

}  // namespace mdr::sim
