// Experiment drivers shared by the figure benches and examples: computing
// the OPT reference (Gallager's algorithm at flow level, installed into the
// packet simulator as static routing parameters), running MP/SP
// measurements, and rendering the per-flow delay tables the paper's figures
// plot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flow/phi.h"
#include "gallager/optimizer.h"
#include "sim/network_sim.h"
#include "topo/flows.h"

namespace mdr::sim {

/// Gallager's OPT solved for the given stationary flows.
struct OptReference {
  flow::RoutingParameters phi;      ///< converged routing parameters
  std::vector<double> flow_delay_s; ///< flow-level expected delay per flow
  double total_delay_rate = 0;
  double average_delay_s = 0;
  bool feasible = true;
  int iterations = 0;
};

OptReference compute_opt_reference(const graph::Topology& topo,
                                   const std::vector<topo::FlowSpec>& flows,
                                   double mean_packet_bits,
                                   const gallager::Options& opt = {});

/// Runs the packet simulator with OPT's phi installed as static routing.
SimResult run_with_static_phi(const graph::Topology& topo,
                              const std::vector<topo::FlowSpec>& flows,
                              SimConfig config,
                              const flow::RoutingParameters& phi);

/// Per-flow delay table in the shape of the paper's figures: one row per
/// flow id, one column per routing scheme, delays in milliseconds.
class DelayTable {
 public:
  explicit DelayTable(std::vector<std::string> flow_labels);

  /// Adds a column; values are in seconds and rendered in ms.
  void add_series(const std::string& name, const std::vector<double>& delays_s);

  /// Ratio helper: per-row value of `num` / value of `den` (by column name).
  std::vector<double> ratio(const std::string& num, const std::string& den) const;

  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> labels_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
};

/// Extracts per-flow mean delays (seconds) from a SimResult, in flow order.
std::vector<double> flow_delays(const SimResult& result);

/// Flow labels "src->dst" in flow order.
std::vector<std::string> flow_labels(const std::vector<topo::FlowSpec>& flows);

}  // namespace mdr::sim
