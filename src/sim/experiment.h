// Experiment drivers shared by the figure benches and examples: computing
// the OPT reference (Gallager's algorithm at flow level, installed into the
// packet simulator as static routing parameters), running MP/SP
// measurements, and rendering the per-flow delay tables the paper's figures
// plot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flow/phi.h"
#include "gallager/optimizer.h"
#include "sim/experiment_spec.h"
#include "sim/network_sim.h"
#include "topo/flows.h"

namespace mdr::sim {

/// Gallager's OPT solved for the given stationary flows.
struct OptReference {
  flow::RoutingParameters phi;      ///< converged routing parameters
  std::vector<double> flow_delay_s; ///< flow-level expected delay per flow
  double total_delay_rate = 0;
  double average_delay_s = 0;
  bool feasible = true;
  int iterations = 0;
};

/// Solves Gallager's problem for spec.topo under spec.flows (packet sizes
/// from spec.config.mean_packet_bits; spec.config is otherwise unused).
OptReference compute_opt_reference(const ExperimentSpec& spec,
                                   const gallager::Options& opt = {});

/// Runs the packet simulator with OPT's phi installed as static routing.
SimResult run_with_static_phi(const ExperimentSpec& spec,
                              const flow::RoutingParameters& phi);

/// Runs an experiment under a named routing scheme: "mp" (MPDA + IH/AH),
/// "sp" (best successor only) or "opt" (Gallager solved at flow level, then
/// installed as static routing). This is the entry point the scenario
/// runner, the figure benches and the parallel runner's jobs all share.
SimResult run_experiment(const ExperimentSpec& spec, const std::string& mode);

/// Per-flow delay table in the shape of the paper's figures: one row per
/// flow id, one column per routing scheme, delays in milliseconds.
class DelayTable {
 public:
  explicit DelayTable(std::vector<std::string> flow_labels);

  /// Adds a column; values are in seconds and rendered in ms. When `ci95_s`
  /// is given (same length), cells render as "mean ±halfwidth".
  void add_series(const std::string& name, const std::vector<double>& delays_s,
                  const std::vector<double>& ci95_s = {});

  /// Ratio helper: per-row value of `num` / value of `den` (by column name).
  std::vector<double> ratio(const std::string& num, const std::string& den) const;

  void print(std::ostream& os, const std::string& title) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> values;
    std::vector<double> ci95;  ///< empty, or half-widths per row
  };
  std::vector<std::string> labels_;
  std::vector<Series> series_;
};

/// Extracts per-flow mean delays (seconds) from a SimResult, in flow order.
std::vector<double> flow_delays(const SimResult& result);

/// Flow labels "src->dst" in flow order.
std::vector<std::string> flow_labels(const std::vector<topo::FlowSpec>& flows);

/// Display names for telemetry emitters (obs::write_samples_jsonl etc.):
/// node names by NodeId, link endpoint names by LinkId, flow endpoint names
/// by flow id — resolved once so writers never touch the topology.
obs::TelemetryNames telemetry_names(const graph::Topology& topo,
                                    const std::vector<topo::FlowSpec>& flows);

}  // namespace mdr::sim
