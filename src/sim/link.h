// Simulated directed link: a transmitter with a strict-priority queue
// (control before data), propagation delay, per-window measurement hooks for
// the marginal-delay estimators, and running statistics.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "cost/estimators.h"
#include "fault/gilbert.h"
#include "graph/topology.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "sim/parallel_engine.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mdr::sim {

class SimLink {
 public:
  /// `deliver` fires when a packet fully arrives at the far end.
  using DeliverFn = std::function<void(Packet)>;

  struct Options {
    double queue_limit_bits = 0;  ///< data-queue bound; 0 = unbounded (paper)
    /// Separate budget for the strict-priority control queue (bits queued or
    /// in service). 0 = unbounded, the seed behavior. A finite budget models
    /// a router that bounds its control ingress: during an update storm the
    /// excess is shed here — with per-cause accounting — instead of growing
    /// without bound, and the protocol's retransmission machinery recovers
    /// whatever mattered.
    double control_queue_limit_bits = 0;
    /// Independent per-packet loss probability applied after transmission
    /// (a noisy medium). Control traffic is equally affected — MPDA's
    /// retransmission machinery is what keeps routing correct under loss.
    double loss_rate = 0;
    /// Gilbert–Elliott bursty loss (fault/gilbert.h), composed with
    /// loss_rate: a packet is lost when either process says so. The chain
    /// is stepped for every packet regardless of the i.i.d. outcome.
    fault::GilbertParams gilbert;
    /// Control-plane chaos (fault::ControlChaos semantics). Applied to
    /// control packets only, after a successful transmission; data packets
    /// are never corrupted, duplicated or reordered.
    double corrupt_rate = 0;    ///< P(flip one random payload bit)
    double duplicate_rate = 0;  ///< P(deliver a second copy)
    double reorder_rate = 0;    ///< P(extra propagation delay -> reorder)
  };

  SimLink(EventQueue& events, graph::LinkAttr attr,
          cost::EstimatorKind estimator_kind, double mean_packet_bits,
          DeliverFn deliver)
      : SimLink(events, attr, estimator_kind, mean_packet_bits,
                std::move(deliver), Options{}, Rng(0)) {}

  SimLink(EventQueue& events, graph::LinkAttr attr,
          cost::EstimatorKind estimator_kind, double mean_packet_bits,
          DeliverFn deliver, Options options, Rng rng = Rng(0));

  /// Queues a packet for transmission; control packets bypass data.
  /// Returns false when dropped at a full queue.
  bool enqueue(Packet packet);

  bool up() const { return up_; }
  /// Failing a link discards everything queued or in flight.
  void set_up(bool up);

  const graph::LinkAttr& attr() const { return attr_; }

  // --- measurement (two independent windows: Ts and Tl) -------------------

  /// Short-window marginal-delay estimate; resets the short window.
  double take_short_estimate();
  /// Long-window marginal-delay estimate; resets the long window.
  double take_long_estimate();

  // --- statistics ----------------------------------------------------------

  std::uint64_t data_packets() const { return data_packets_; }
  std::uint64_t control_packets() const { return control_packets_; }
  double data_bits() const { return data_bits_; }
  double control_bits() const { return control_bits_; }
  std::uint64_t drops() const { return drops_; }
  /// Data packets dropped on this link, from any cause (full queue, wire
  /// loss, link failure flushing the queue or the propagation pipe). Part
  /// of the monitor's packet-conservation ledger.
  std::uint64_t data_dropped() const { return data_dropped_; }
  /// Control packets dropped on this link, from any cause — the mirror of
  /// data_dropped() the seed never kept (control drops were folded into the
  /// generic drops_). Split by cause below; feeds the monitor's
  /// control-starvation watchdog.
  std::uint64_t control_dropped() const {
    return control_dropped_queue_ + control_dropped_wire_ +
           control_dropped_flush_ + control_dropped_down_;
  }
  /// ... at a full control-queue budget (control_queue_limit_bits).
  std::uint64_t control_dropped_queue() const {
    return control_dropped_queue_;
  }
  /// ... lost on the wire (i.i.d. or Gilbert–Elliott loss).
  std::uint64_t control_dropped_wire() const { return control_dropped_wire_; }
  /// ... flushed by a link failure (queued, in service, or in flight when
  /// the link went down).
  std::uint64_t control_dropped_flush() const {
    return control_dropped_flush_;
  }
  /// ... offered to a link that was already down. Distinct from flush: a
  /// flush destroys packets the link had accepted, a down-drop refuses new
  /// ones, so the two point at different problems in a trace.
  std::uint64_t control_dropped_down() const { return control_dropped_down_; }
  /// Busy periods started on this link: packets that arrived to a fully
  /// idle transmitter (the estimators' IPA segmentation).
  std::uint64_t busy_periods() const { return busy_periods_; }
  /// Data packets currently queued or in service (not yet on the wire).
  std::uint64_t queued_data_packets() const {
    return data_queue_.size() +
           (in_service_.has_value() &&
                    in_service_->packet.kind == Packet::Kind::kData
                ? 1
                : 0);
  }
  /// Data packets transmitted and currently propagating toward the far end.
  /// Derived from the sent/delivered/flushed wire ledger: in sharded mode
  /// the three counters have disjoint single-writer shards (sent by the
  /// owning shard, delivered by the destination shard, flushed at window
  /// barriers), so no counter is ever decremented across threads.
  std::uint64_t in_flight_data_packets() const {
    return wire_sent_data_ - wire_delivered_data_ - wire_flushed_data_;
  }
  double utilization_estimate(Time horizon) const {
    return horizon > 0 ? busy_time_ / horizon : 0;
  }
  /// Cumulative seconds this link spent transmitting (telemetry: windowed
  /// utilization is the busy-time delta over the window).
  double busy_time() const { return busy_time_; }
  /// Bits currently queued or in service (data + control).
  double queued_bits() const { return queued_bits_; }

  /// Attaches a flight-recorder probe (control-drop events, stamped with the
  /// receiving node's id). Off by default; one branch per drop when off.
  void set_probe(const obs::Probe& probe) { probe_ = probe; }

  /// Attaches the wall-clock profiler (packet-path sections). `owner` times
  /// enqueue admission + service start and belongs to the transmitter's
  /// shard; `dest` times the delivery hand-up, which executes on the far
  /// end's shard (the same instance on the classic engine). Two pointers so
  /// each profiler stays single-threaded. Off by default; one branch per
  /// packet when off.
  void set_prof(obs::Profiler* owner, obs::Profiler* dest) {
    prof_ = owner;
    deliver_prof_ = dest;
  }

  /// Switches the wire to sharded operation: every delivery is scheduled
  /// under a canonical (link id, wire seq) key — into `dest_queue` when the
  /// far end lives on the same shard, through `channel` otherwise (exactly
  /// one of the two must be non-null). handle_delivery then executes on the
  /// DESTINATION shard; the owning shard keeps every other field.
  void enable_sharded_wire(graph::LinkId id, EventQueue* dest_queue,
                           HandoffChannel* channel) {
    assert((dest_queue != nullptr) != (channel != nullptr));
    link_id_ = id;
    dest_queue_ = dest_queue;
    channel_ = channel;
    sharded_wire_ = true;
  }

  /// Wire ledger (tests): data packets ever put on the wire.
  std::uint64_t wire_sent_data() const { return wire_sent_data_; }

  // --- typed-event dispatch (EventQueue only) ------------------------------

  /// The in-service packet finished serializing. Ignored when `epoch` is
  /// stale: the link failed after the event was scheduled.
  void handle_transmit_complete(std::uint64_t epoch) {
    if (epoch == epoch_) finish_transmission();
  }

  /// `packet` fully propagated to the far end. Ignored when `epoch` is
  /// stale (the packet was lost to a link failure en route).
  void handle_delivery(std::uint64_t epoch, Packet packet);

  // --- checkpointing -------------------------------------------------------

  /// Checkpoints all mutable link state: queues, the in-service packet, the
  /// loss chains' RNG/Markov state, estimator windows, statistics counters
  /// and the wire ledger. Configuration (attr, options, delivery callback,
  /// shard wiring) is reconstructed by the owning simulator before load().
  void save(ckpt::Writer& w) const;
  void load(ckpt::Reader& r);

 private:
  struct Queued;
  void start_transmission();
  void begin_service(Queued q);
  void finish_transmission();
  void schedule_delivery(Packet packet, Duration delay);

  EventQueue* events_;
  graph::LinkAttr attr_;
  DeliverFn deliver_;
  Options options_;
  Rng rng_;
  fault::GilbertChannel gilbert_;

  struct Queued {
    Packet packet;
    Time enqueued;
    /// The link was fully idle (nothing in service, nothing queued) when
    /// this packet arrived. Decided at enqueue time and carried through to
    /// the estimator observation — re-deriving it at departure from float
    /// arithmetic misclassifies arrivals that land exactly when the
    /// previous transmission completes.
    bool starts_busy_period = false;
  };
  std::deque<Queued> control_queue_;
  std::deque<Queued> data_queue_;
  std::optional<Queued> in_service_;
  double queued_bits_ = 0;
  double control_queued_bits_ = 0;  ///< control share of queued_bits_
  bool transmitting_ = false;
  bool up_ = true;
  std::uint64_t epoch_ = 0;  ///< bumped on set_up(false): cancels in-flight

  std::unique_ptr<cost::MarginalDelayEstimator> short_estimator_;
  std::unique_ptr<cost::MarginalDelayEstimator> long_estimator_;
  Time short_window_start_ = 0;
  Time long_window_start_ = 0;

  std::uint64_t data_packets_ = 0;
  std::uint64_t control_packets_ = 0;
  double data_bits_ = 0;
  double control_bits_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t data_dropped_ = 0;
  std::uint64_t control_dropped_queue_ = 0;
  std::uint64_t control_dropped_wire_ = 0;
  std::uint64_t control_dropped_flush_ = 0;
  std::uint64_t control_dropped_down_ = 0;
  std::uint64_t busy_periods_ = 0;
  // Wire ledger: in flight = sent - delivered - flushed. Split this way so
  // sharded mode never decrements a counter from another shard's thread —
  // `delivered` belongs to the destination shard, everything else to the
  // owner, and cross-shard reads happen only at window barriers.
  std::uint64_t wire_sent_data_ = 0;
  std::uint64_t wire_sent_control_ = 0;
  std::uint64_t wire_delivered_data_ = 0;     ///< destination-shard writes
  std::uint64_t wire_delivered_control_ = 0;  ///< destination-shard writes
  std::uint64_t wire_flushed_data_ = 0;
  std::uint64_t wire_flushed_control_ = 0;
  double busy_time_ = 0;
  obs::Probe probe_;
  obs::Profiler* prof_ = nullptr;          ///< transmitter-shard sections
  obs::Profiler* deliver_prof_ = nullptr;  ///< destination-shard delivery

  // Sharded wire (enable_sharded_wire); unused in single-threaded mode.
  bool sharded_wire_ = false;
  graph::LinkId link_id_ = graph::kInvalidLink;
  EventQueue* dest_queue_ = nullptr;   ///< same-shard destination queue
  HandoffChannel* channel_ = nullptr;  ///< cross-shard handoff
  std::uint64_t wire_seq_ = 0;         ///< per-link delivery-key sequence
};

}  // namespace mdr::sim
