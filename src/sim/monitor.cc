#include "sim/monitor.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/log.h"

namespace mdr::sim {

using graph::LinkId;
using graph::NodeId;

InvariantMonitor::InvariantMonitor(const graph::Topology& topo,
                                   MonitorHooks hooks)
    : topo_(&topo), hooks_(std::move(hooks)) {}

void InvariantMonitor::on_crash(NodeId node, Time now) {
  Incident inc;
  inc.node = node;
  inc.name = std::string(topo_->name(node));
  inc.t_crash = now;
  report_.incidents.push_back(std::move(inc));
  dropped_at_crash_.push_back(hooks_.accounting().dropped);
}

void InvariantMonitor::on_recover(NodeId node, Time now) {
  // Close the most recent still-open incident for this node.
  for (std::size_t i = report_.incidents.size(); i-- > 0;) {
    auto& inc = report_.incidents[i];
    if (inc.node == node && inc.t_recovered < 0) {
      inc.t_recovered = now;
      return;
    }
  }
}

namespace {

/// The next hops packets can actually take: positive-weight choices, or the
/// first choice when every weight degenerated to zero (both next-hop
/// realizations fall back to it).
void realized_next_hops(std::span<const core::ForwardingChoice> choices,
                        std::vector<NodeId>& out) {
  out.clear();
  for (const auto& c : choices) {
    if (c.weight > 0) out.push_back(c.neighbor);
  }
  if (out.empty() && !choices.empty()) out.push_back(choices[0].neighbor);
}

}  // namespace

void InvariantMonitor::check(Time now) {
  ++report_.checks;

  const auto snapshot = hooks_.accounting();
  if (!snapshot.balanced()) {
    ++report_.accounting_leaks;
    MDR_LOG_WARN(
        "packet accounting leak at t=%.6f: injected=%llu delivered=%llu "
        "dropped=%llu queued=%llu in_flight=%llu",
        now, static_cast<unsigned long long>(snapshot.injected),
        static_cast<unsigned long long>(snapshot.delivered),
        static_cast<unsigned long long>(snapshot.dropped),
        static_cast<unsigned long long>(snapshot.queued),
        static_cast<unsigned long long>(snapshot.in_flight));
  }

  const auto n = static_cast<NodeId>(topo_->num_nodes());
  std::vector<bool> alive(n);
  for (NodeId i = 0; i < n; ++i) alive[i] = hooks_.node_alive(i);

  // Reverse adjacency over up links between alive routers (for backward
  // reachability BFS from each destination).
  std::vector<std::vector<NodeId>> rev(n);
  for (LinkId id = 0; id < static_cast<LinkId>(topo_->num_links()); ++id) {
    const auto& l = topo_->link(id);
    if (alive[l.from] && alive[l.to] && hooks_.link_up(id)) {
      rev[l.to].push_back(l.from);
    }
  }

  // Incidents whose router is back up but not yet declared reconverged.
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < report_.incidents.size(); ++i) {
    const auto& inc = report_.incidents[i];
    if (inc.t_recovered >= 0 && inc.t_reconverged < 0 && alive[inc.node]) {
      open.push_back(i);
    }
  }
  std::vector<bool> converged(open.size(), true);

  std::vector<NodeId> hops;
  std::vector<int> color(n);
  std::vector<bool> reach(n);
  struct Frame {
    NodeId node;
    std::vector<NodeId> edges;
    std::size_t next = 0;
  };
  for (NodeId dest = 0; dest < n; ++dest) {
    // --- loop-freedom of the realized forwarding graph toward `dest` ---
    // Edges between alive routers only: a dead router forwards nothing, and
    // an edge into `dest` terminates. Checked for dead destinations too —
    // LFI loop-freedom does not depend on the destination being up.
    bool loop = false;
    std::fill(color.begin(), color.end(), 0);
    std::vector<Frame> stack;
    for (NodeId start = 0; start < n && !loop; ++start) {
      if (!alive[start] || start == dest || color[start] != 0) continue;
      color[start] = 1;
      realized_next_hops(hooks_.forwarding(start, dest), hops);
      stack.push_back(Frame{start, hops, 0});
      while (!stack.empty() && !loop) {
        Frame& top = stack.back();
        if (top.next == top.edges.size()) {
          color[top.node] = 2;
          stack.pop_back();
          continue;
        }
        const NodeId k = top.edges[top.next++];
        if (k == dest || k < 0 || k >= n || !alive[k]) continue;
        if (color[k] == 1) {
          loop = true;
        } else if (color[k] == 0) {
          color[k] = 1;
          realized_next_hops(hooks_.forwarding(k, dest), hops);
          stack.push_back(Frame{k, hops, 0});
        }
      }
    }
    if (loop) {
      ++report_.forwarding_loops;
      std::string cycle;
      for (const auto& f : stack) {
        cycle += std::string(topo_->name(f.node));
        cycle += "(";
        realized_next_hops(hooks_.forwarding(f.node, dest), hops);
        for (NodeId h : hops) cycle += std::string(topo_->name(h)) + " ";
        cycle += ") ";
      }
      MDR_LOG_WARN("forwarding loop toward %s at t=%.6f: %s",
                   std::string(topo_->name(dest)).c_str(), now, cycle.c_str());
    }

    if (!alive[dest]) continue;  // unreachable: blackholes are expected

    // --- blackholes and reconvergence toward this destination ---
    std::fill(reach.begin(), reach.end(), false);
    reach[dest] = true;
    std::vector<NodeId> frontier{dest};
    while (!frontier.empty()) {
      const NodeId x = frontier.back();
      frontier.pop_back();
      for (const NodeId p : rev[x]) {
        if (!reach[p]) {
          reach[p] = true;
          frontier.push_back(p);
        }
      }
    }
    for (NodeId x = 0; x < n; ++x) {
      if (x == dest || !alive[x] || !reach[x]) continue;
      if (hooks_.forwarding(x, dest).empty()) {
        ++report_.blackholes;
        for (std::size_t i = 0; i < open.size(); ++i) {
          if (report_.incidents[open[i]].node == x) converged[i] = false;
        }
      }
    }
  }

  for (std::size_t i = 0; i < open.size(); ++i) {
    if (!converged[i]) continue;
    auto& inc = report_.incidents[open[i]];
    inc.t_reconverged = now;
    inc.packets_lost = snapshot.dropped - dropped_at_crash_[open[i]];
  }
}

namespace {

void append_time(std::string& out, Time t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", t);
  out += buf;
}

}  // namespace

std::string monitor_report_json(const MonitorReport& r) {
  std::string out = "{\"checks\":" + std::to_string(r.checks) +
                    ",\"forwarding_loops\":" +
                    std::to_string(r.forwarding_loops) +
                    ",\"blackholes\":" + std::to_string(r.blackholes) +
                    ",\"accounting_leaks\":" +
                    std::to_string(r.accounting_leaks) + ",\"incidents\":[";
  for (std::size_t i = 0; i < r.incidents.size(); ++i) {
    const auto& inc = r.incidents[i];
    if (i > 0) out += ",";
    out += "{\"node\":\"" + inc.name + "\",\"t_crash\":";
    append_time(out, inc.t_crash);
    out += ",\"t_recovered\":";
    append_time(out, inc.t_recovered);
    out += ",\"t_reconverged\":";
    append_time(out, inc.t_reconverged);
    out += ",\"time_to_reconverge\":";
    append_time(out, inc.time_to_reconverge());
    out += ",\"packets_lost\":" + std::to_string(inc.packets_lost) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace mdr::sim
