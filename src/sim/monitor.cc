#include "sim/monitor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <vector>

#include "util/log.h"

namespace mdr::sim {

using graph::LinkId;
using graph::NodeId;

InvariantMonitor::InvariantMonitor(const graph::Topology& topo,
                                   MonitorHooks hooks, MonitorOptions options)
    : topo_(&topo), hooks_(std::move(hooks)), options_(options) {}

void InvariantMonitor::on_crash(NodeId node, Time now) {
  Incident inc;
  inc.node = node;
  inc.name = std::string(topo_->name(node));
  inc.t_crash = now;
  report_.incidents.push_back(std::move(inc));
  dropped_at_crash_.push_back(hooks_.accounting().dropped);
}

void InvariantMonitor::on_recover(NodeId node, Time now) {
  // Close the most recent still-open incident for this node.
  for (std::size_t i = report_.incidents.size(); i-- > 0;) {
    auto& inc = report_.incidents[i];
    if (inc.node == node && inc.t_recovered < 0) {
      inc.t_recovered = now;
      return;
    }
  }
}

namespace {

/// The next hops packets can actually take: positive-weight choices, or the
/// first choice when every weight degenerated to zero (both next-hop
/// realizations fall back to it).
void realized_next_hops(std::span<const core::ForwardingChoice> choices,
                        std::vector<NodeId>& out) {
  out.clear();
  for (const auto& c : choices) {
    if (c.weight > 0) out.push_back(c.neighbor);
  }
  if (out.empty() && !choices.empty()) out.push_back(choices[0].neighbor);
}

}  // namespace

void InvariantMonitor::check(Time now) {
  ++report_.checks;
  const char* anomaly = nullptr;  // first anomaly kind this sweep

  const auto snapshot = hooks_.accounting();
  if (!snapshot.balanced()) {
    ++report_.accounting_leaks;
    if (anomaly == nullptr) anomaly = "accounting_leak";
    MDR_LOG_WARN(
        "packet accounting leak at t=%.6f: injected=%llu delivered=%llu "
        "dropped=%llu queued=%llu in_flight=%llu",
        now, static_cast<unsigned long long>(snapshot.injected),
        static_cast<unsigned long long>(snapshot.delivered),
        static_cast<unsigned long long>(snapshot.dropped),
        static_cast<unsigned long long>(snapshot.queued),
        static_cast<unsigned long long>(snapshot.in_flight));
  }

  const auto n = static_cast<NodeId>(topo_->num_nodes());
  std::vector<bool> alive(n);
  for (NodeId i = 0; i < n; ++i) alive[i] = hooks_.node_alive(i);

  // Reverse adjacency over up links between alive routers (for backward
  // reachability BFS from each destination).
  std::vector<std::vector<NodeId>> rev(n);
  for (LinkId id = 0; id < static_cast<LinkId>(topo_->num_links()); ++id) {
    const auto& l = topo_->link(id);
    if (alive[l.from] && alive[l.to] && hooks_.link_up(id)) {
      rev[l.to].push_back(l.from);
    }
  }

  // --- control-overload watchdog (only with the control_dropped hook) ---
  if (hooks_.control_dropped) {
    const auto num_links = static_cast<LinkId>(topo_->num_links());
    if (prev_control_dropped_.size() != static_cast<std::size_t>(num_links)) {
      prev_control_dropped_.assign(num_links, 0);
    }
    std::vector<std::uint64_t> ingress_delta(n, 0);
    std::uint64_t sweep_delta = 0;
    for (LinkId id = 0; id < num_links; ++id) {
      const std::uint64_t total = hooks_.control_dropped(id);
      const std::uint64_t delta = total - prev_control_dropped_[id];
      prev_control_dropped_[id] = total;
      sweep_delta += delta;
      ingress_delta[topo_->link(id).to] += delta;
    }
    if (sweep_delta > options_.control_drop_budget) {
      ++report_.control_drop_alerts;
      MDR_LOG_WARN(
          "control overload at t=%.6f: %llu control drops this sweep "
          "(budget %llu)",
          now, static_cast<unsigned long long>(sweep_delta),
          static_cast<unsigned long long>(options_.control_drop_budget));
    }
    if (hooks_.adjacent) {
      for (LinkId id = 0; id < num_links; ++id) {
        const auto& l = topo_->link(id);
        // An up link between alive routers whose receiver sheds control
        // while not (or no longer) adjacent to the sender: the adjacency
        // is being starved by its own ingress.
        if (alive[l.from] && alive[l.to] && hooks_.link_up(id) &&
            ingress_delta[l.to] > 0 && !hooks_.adjacent(l.to, l.from)) {
          ++report_.starved_adjacencies;
          MDR_LOG_WARN(
              "starved adjacency at t=%.6f: %s not adjacent to %s while "
              "shedding %llu control packets",
              now, std::string(topo_->name(l.to)).c_str(),
              std::string(topo_->name(l.from)).c_str(),
              static_cast<unsigned long long>(ingress_delta[l.to]));
        }
      }
    }
  }

  // Incidents whose router is back up but not yet declared reconverged.
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < report_.incidents.size(); ++i) {
    const auto& inc = report_.incidents[i];
    if (inc.t_recovered >= 0 && inc.t_reconverged < 0 && alive[inc.node]) {
      open.push_back(i);
    }
  }
  std::vector<bool> converged(open.size(), true);

  std::vector<NodeId> hops;
  std::vector<int> color(n);
  std::vector<bool> reach(n);
  struct Frame {
    NodeId node;
    std::vector<NodeId> edges;
    std::size_t next = 0;
  };
  // A forwarding edge can only carry traffic over an up link: between a
  // silent failure and its dead-interval detection a router may still point
  // at the dead link, but packets sent there die on the wire — a blackhole,
  // not a loop. (Same reasoning as skipping dead routers below.)
  std::vector<bool> edge_up(static_cast<std::size_t>(n) * n, false);
  for (LinkId id = 0; id < static_cast<LinkId>(topo_->num_links()); ++id) {
    const auto& l = topo_->link(id);
    if (hooks_.link_up(id)) {
      edge_up[static_cast<std::size_t>(l.from) * n + l.to] = true;
    }
  }

  for (NodeId dest = 0; dest < n; ++dest) {
    // --- loop-freedom of the realized forwarding graph toward `dest` ---
    // Edges between alive routers over up links only: a dead router
    // forwards nothing, a down link delivers nothing, and an edge into
    // `dest` terminates. Checked for dead destinations too — LFI
    // loop-freedom does not depend on the destination being up.
    bool loop = false;
    std::fill(color.begin(), color.end(), 0);
    std::vector<Frame> stack;
    for (NodeId start = 0; start < n && !loop; ++start) {
      if (!alive[start] || start == dest || color[start] != 0) continue;
      color[start] = 1;
      realized_next_hops(hooks_.forwarding(start, dest), hops);
      stack.push_back(Frame{start, hops, 0});
      while (!stack.empty() && !loop) {
        Frame& top = stack.back();
        if (top.next == top.edges.size()) {
          color[top.node] = 2;
          stack.pop_back();
          continue;
        }
        const NodeId k = top.edges[top.next++];
        if (k == dest || k < 0 || k >= n || !alive[k] ||
            !edge_up[static_cast<std::size_t>(top.node) * n + k]) {
          continue;
        }
        if (color[k] == 1) {
          loop = true;
        } else if (color[k] == 0) {
          color[k] = 1;
          realized_next_hops(hooks_.forwarding(k, dest), hops);
          stack.push_back(Frame{k, hops, 0});
        }
      }
    }
    if (loop) {
      ++report_.forwarding_loops;
      report_.t_last_anomaly = now;
      if (anomaly == nullptr) anomaly = "forwarding_loop";
      std::string cycle;
      for (const auto& f : stack) {
        cycle += std::string(topo_->name(f.node));
        cycle += "(";
        realized_next_hops(hooks_.forwarding(f.node, dest), hops);
        for (NodeId h : hops) cycle += std::string(topo_->name(h)) + " ";
        cycle += ") ";
      }
      MDR_LOG_WARN("forwarding loop toward %s at t=%.6f: %s",
                   std::string(topo_->name(dest)).c_str(), now, cycle.c_str());
    }

    if (!alive[dest]) continue;  // unreachable: blackholes are expected

    // --- blackholes and reconvergence toward this destination ---
    std::fill(reach.begin(), reach.end(), false);
    reach[dest] = true;
    std::vector<NodeId> frontier{dest};
    while (!frontier.empty()) {
      const NodeId x = frontier.back();
      frontier.pop_back();
      for (const NodeId p : rev[x]) {
        if (!reach[p]) {
          reach[p] = true;
          frontier.push_back(p);
        }
      }
    }
    for (NodeId x = 0; x < n; ++x) {
      if (x == dest || !alive[x] || !reach[x]) continue;
      if (hooks_.forwarding(x, dest).empty()) {
        ++report_.blackholes;
        report_.t_last_anomaly = now;
        if (anomaly == nullptr) anomaly = "blackhole";
        for (std::size_t i = 0; i < open.size(); ++i) {
          if (report_.incidents[open[i]].node == x) converged[i] = false;
        }
      }
    }
  }

  for (std::size_t i = 0; i < open.size(); ++i) {
    if (!converged[i]) continue;
    auto& inc = report_.incidents[open[i]];
    inc.t_reconverged = now;
    inc.packets_lost = snapshot.dropped - dropped_at_crash_[open[i]];
  }

  // Edge-triggered: a persistent anomaly fires the hook once when it opens,
  // so a bounded dump budget covers distinct incidents, not repeat sweeps.
  if (anomaly != nullptr && !anomaly_open_ && hooks_.anomaly) {
    hooks_.anomaly(anomaly, now);
  }
  anomaly_open_ = anomaly != nullptr;
}

namespace {

void append_time(std::string& out, Time t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", t);
  out += buf;
}

}  // namespace

std::string monitor_report_json(const MonitorReport& r) {
  std::string out = "{\"checks\":" + std::to_string(r.checks) +
                    ",\"forwarding_loops\":" +
                    std::to_string(r.forwarding_loops) +
                    ",\"blackholes\":" + std::to_string(r.blackholes) +
                    ",\"accounting_leaks\":" +
                    std::to_string(r.accounting_leaks) +
                    ",\"control_drop_alerts\":" +
                    std::to_string(r.control_drop_alerts) +
                    ",\"starved_adjacencies\":" +
                    std::to_string(r.starved_adjacencies) +
                    ",\"t_last_anomaly\":";
  append_time(out, r.t_last_anomaly);
  out += ",\"incidents\":[";
  for (std::size_t i = 0; i < r.incidents.size(); ++i) {
    const auto& inc = r.incidents[i];
    if (i > 0) out += ",";
    out += "{\"node\":\"" + inc.name + "\",\"t_crash\":";
    append_time(out, inc.t_crash);
    out += ",\"t_recovered\":";
    append_time(out, inc.t_recovered);
    out += ",\"t_reconverged\":";
    append_time(out, inc.t_reconverged);
    out += ",\"time_to_reconverge\":";
    append_time(out, inc.time_to_reconverge());
    out += ",\"packets_lost\":" + std::to_string(inc.packets_lost) + "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------- Stability

StabilityMonitor::StabilityMonitor(StabilityOptions options,
                                   double total_capacity_bps)
    : options_(options) {
  assert(options.interval > 0);
  assert(options.window > 0);
  assert(options.persistence >= 1);
  // The 1 bps floor keeps the ratio finite on degenerate topologies.
  report_.slope_threshold_bps =
      std::max(options.slope_capacity_fraction * total_capacity_bps, 1.0);
}

void StabilityMonitor::record(Time now, double queued_bits,
                              std::uint64_t delivered_cum,
                              double delay_sum_cum_s) {
  ++report_.ticks;
  report_.final_queue_bits = queued_bits;
  report_.peak_queue_bits = std::max(report_.peak_queue_bits, queued_bits);

  window_.push_back({now, queued_bits, delivered_cum, delay_sum_cum_s});
  while (window_.size() > 1 &&
         window_.front().t < now - options_.window - 1e-9) {
    window_.pop_front();
  }

  last_ = StabilityTick{};
  last_.t = now;
  last_.queued_bits = queued_bits;
  last_.margin = report_.margin;

  // Windowed mean delay: deliveries between the window's ends.
  const Sample& oldest = window_.front();
  const std::uint64_t wdelivered = delivered_cum - oldest.delivered;
  double wdelay = 0;
  if (wdelivered > 0) {
    wdelay = (delay_sum_cum_s - oldest.delay_sum_s) /
             static_cast<double>(wdelivered);
  }
  last_.window_delay_s = wdelay;

  // Least-squares queue slope over the window.
  double slope = 0;
  if (window_.size() >= 3) {
    double mean_t = 0, mean_q = 0;
    for (const Sample& s : window_) {
      mean_t += s.t;
      mean_q += s.queued_bits;
    }
    mean_t /= static_cast<double>(window_.size());
    mean_q /= static_cast<double>(window_.size());
    double cov = 0, var = 0;
    for (const Sample& s : window_) {
      cov += (s.t - mean_t) * (s.queued_bits - mean_q);
      var += (s.t - mean_t) * (s.t - mean_t);
    }
    if (var > 0) slope = cov / var;
  }
  last_.slope_bps = slope;

  // The verdict machinery waits for a full window: startup transients
  // (protocol convergence, queue fill to steady state) must not convict.
  if (now - oldest.t < options_.window - 1e-9) return;

  if (!have_baseline_) {
    have_baseline_ = true;
    report_.baseline_delay_s = wdelay;
  }
  report_.peak_window_delay_s =
      std::max(report_.peak_window_delay_s, wdelay);

  const double ratio_q =
      std::max(slope, 0.0) / report_.slope_threshold_bps;
  const double ratio_d =
      report_.baseline_delay_s > 0
          ? wdelay / (options_.delay_factor * report_.baseline_delay_s)
          : 0.0;
  recent_q_.push_back(ratio_q);
  recent_d_.push_back(ratio_d);
  recent_slope_.push_back(slope);
  const auto cap = static_cast<std::size_t>(options_.persistence);
  if (recent_q_.size() > cap) {
    recent_q_.pop_front();
    recent_d_.pop_front();
    recent_slope_.pop_front();
  }
  if (recent_q_.size() == cap) {
    // Sustained = the weakest reading in the run of `persistence` windows:
    // every window in the run must breach for the verdict to fire.
    const double sustained_q =
        *std::min_element(recent_q_.begin(), recent_q_.end());
    const double sustained_d =
        *std::min_element(recent_d_.begin(), recent_d_.end());
    report_.max_queue_slope_bps =
        std::max(report_.max_queue_slope_bps,
                 *std::min_element(recent_slope_.begin(),
                                   recent_slope_.end()));
    const double breach = std::max(sustained_q, sustained_d);
    report_.margin = std::min(report_.margin, 1.0 - breach);
    if (report_.margin < 0 && !report_.unstable) {
      report_.unstable = true;
      report_.t_unstable = now;
    }
  }
  last_.margin = report_.margin;
}

std::string stability_report_json(const StabilityReport& r) {
  std::string out =
      "{\"unstable\":" + std::to_string(r.unstable ? 1 : 0) +
      ",\"t_unstable\":";
  append_time(out, r.t_unstable);
  out += ",\"ticks\":" + std::to_string(r.ticks) + ",\"margin\":";
  append_time(out, r.margin);
  out += ",\"max_queue_slope_bps\":";
  append_time(out, r.max_queue_slope_bps);
  out += ",\"slope_threshold_bps\":";
  append_time(out, r.slope_threshold_bps);
  out += ",\"baseline_delay_s\":";
  append_time(out, r.baseline_delay_s);
  out += ",\"peak_window_delay_s\":";
  append_time(out, r.peak_window_delay_s);
  out += ",\"peak_queue_bits\":";
  append_time(out, r.peak_queue_bits);
  out += ",\"final_queue_bits\":";
  append_time(out, r.final_queue_bits);
  out += "}";
  return out;
}

}  // namespace mdr::sim
