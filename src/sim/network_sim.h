// NetworkSim: assembles a packet-level simulation of a Topology — one
// SimNode per router, one SimLink per directed link, traffic sources per
// flow — runs it, and reports per-flow delay statistics plus control-plane
// overhead. This is the measurement instrument behind every figure bench.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "flow/phi.h"
#include "graph/topology.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/sampler.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/monitor.h"
#include "sim/node.h"
#include "sim/traffic.h"
#include "topo/flows.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mdr::sim {

/// Which arrival process every traffic source uses.
enum class TrafficModel {
  kPoisson,      ///< stationary (the paper's Section 5.1 experiments)
  kOnOff,        ///< exponential bursts (short-term fluctuations)
  kParetoOnOff,  ///< heavy-tailed bursts (self-similar traffic)
  kAdversarial,  ///< (w, eps)-bounded leaky-bucket adversary
};

/// One flash-crowd episode: every flow whose destination is `dst` ramps to
/// `peak` times its average rate, holds, and ramps back down
/// (RateProfile::Episode, applied through the ModulatedSource wrapper).
struct FlashCrowd {
  std::string dst;     ///< hotspot router name
  Time start = 0;
  Duration ramp_s = 5;
  Duration hold_s = 10;
  double peak = 4;
};

/// The offered-traffic shape: arrival model plus the knobs of the bursty
/// models (each model reads only its own sub-struct), and an optional
/// network-wide rate modulation (diurnal sinusoid and/or flash crowds)
/// applied on top of ANY model.
struct TrafficSpec {
  TrafficModel model = TrafficModel::kPoisson;
  OnOffSource::Burstiness burstiness{};    ///< kOnOff only
  ParetoOnOffSource::Shape pareto{};       ///< kParetoOnOff only
  AdversarialSource::Shape adversarial{};  ///< kAdversarial only

  /// Diurnal load curve: multiplier 1 + amplitude * sin(2pi (t-phase)/T)
  /// on every flow. period 0 disables.
  double diurnal_period_s = 0;
  double diurnal_amplitude = 0;
  double diurnal_phase_s = 0;
  /// Hotspot episodes, each applied only to flows targeting its dst.
  std::vector<FlashCrowd> flash_crowds;

  bool modulated() const {
    return diurnal_period_s > 0 || !flash_crowds.empty();
  }
};

struct SimConfig {
  RoutingMode mode = RoutingMode::kMultipath;
  Duration tl = 10.0;
  Duration ts = 2.0;
  cost::EstimatorKind estimator = cost::EstimatorKind::kUtilization;
  double mean_packet_bits = 8e3;

  Duration traffic_start = 3.0;  ///< protocol converges before load arrives
  Duration warmup = 10.0;        ///< loaded but unmeasured
  Duration duration = 60.0;      ///< measured period

  std::uint64_t seed = 1;
  double link_loss_rate = 0;  ///< per-packet Bernoulli loss on every link
  double ah_damping = 0.5;    ///< see MpRouterOptions::ah_damping
  cost::DualTimescaleCost::Options smoothing{};  ///< Ts/Tl cost smoothing
  bool wrr_forwarding = false;  ///< smooth-WRR phi realization (all modes)
  double queue_limit_bits = 0;  ///< 0 = unbounded
  /// Control-ingress budget per link (SimLink::Options); 0 = unbounded.
  double control_queue_limit_bits = 0;

  TrafficSpec traffic{};  ///< arrival model + burst shape for every source

  /// kStatic mode: the routing parameters to install (e.g. OPT's output).
  const flow::RoutingParameters* static_phi = nullptr;

  /// Hello protocol beneath routing (see NodeOptions::use_hello): 2-way
  /// adjacency checks and dead-interval detection of silent failures.
  bool use_hello = false;
  proto::HelloProtocol::Options hello{};

  /// LSU origination pacing with Trickle-style backoff (core/mpda.h).
  /// Off by default: seed figures stay bit-identical.
  core::LsuPacing pacing{};
  /// RFC 2439-style link-flap damping over hello adjacencies
  /// (proto/damping.h). Requires use_hello; off by default.
  proto::FlapDamper::Options damping{};

  /// Scheduled physical-layer changes (both directions toggled).
  struct LinkToggle {
    Time at = 0;
    std::string a, b;  ///< node names
    bool up = false;
    /// Silent: the physical layer does not signal the change; only the
    /// hello dead interval can detect it (requires use_hello for recovery).
    bool silent = false;
  };
  std::vector<LinkToggle> link_toggles;

  /// If > 0, periodically snapshot every router's feasible distances and
  /// successor sets and verify the Loop-Free Invariant globally (paper
  /// Theorem 3) — the packet-level counterpart of the property tests.
  /// Violations are counted in SimResult::lfi_violations (must be 0).
  Duration lfi_check_interval = 0;

  /// If > 0, record a delay/throughput time series with this window size
  /// (SimResult::timeseries) — how the network behaves *over time*, e.g.
  /// around a failure or a burst, rather than just on average.
  Duration timeseries_interval = 0;

  /// Chaos schedule: node crashes/recoveries, flapping links, bursty loss
  /// and control-plane corruption (fault/fault_plan.h). Crashes and flaps
  /// are always silent — use_hello is required to detect and heal them
  /// (scenario parsing enforces this).
  fault::FaultPlan faults;

  // --- telemetry (src/obs) — everything off by default; a default run
  // executes one predictable branch per instrument point and stays
  // bit-identical to the seed (docs/OBSERVABILITY.md). ---------------------

  /// If > 0, run the TimeSeriesSampler with this period: per-link
  /// utilization/queue/bytes, per-flow delay, per-destination successor
  /// statistics and network control rates land in SimResult::telemetry.
  /// Sample ticks are read-only walks over existing counters — they draw no
  /// randomness, so packet flows are unchanged.
  Duration sample_interval = 0;

  /// Retain EVERY flight-recorder event for full JSONL export
  /// (Telemetry::trace). Implies the flight recorder.
  bool trace = false;

  /// If > 0, run the protocol flight recorder with bounded per-node rings of
  /// this capacity. When an InvariantMonitor sweep opens a loop / blackhole /
  /// ledger incident the rings are dumped into Telemetry::flight_dumps
  /// (requires monitor_interval > 0 to have a trigger).
  std::size_t flightrec_capacity = 0;

  /// Wall-clock profiler + convergence span tracer (obs/prof.h,
  /// obs/spans.h; `prof` scenario directive, `mdrsim --prof-out`). Off by
  /// default: every instrument point is a single null-check branch and a
  /// default run stays byte-identical to the seed. On, the SimResult gains
  /// a ProfReport (host-time subsystem attribution — varies run to run) and
  /// a ConvergenceReport (sim-time spans — same-seed deterministic); the
  /// simulated packet flow is unchanged either way.
  bool prof = false;
  /// Deep profiling: time every section, including the per-event hot path
  /// (dispatch.*, link.*). At the default level those sections are counted
  /// exactly but their wall time is carried by the enclosing engine.busy
  /// umbrella, keeping measured overhead a few percent; deep mode buys
  /// per-event attribution at a self-reported overhead of tens of percent
  /// on hosts with slow clocks (obs/prof.h).
  bool prof_deep = false;

  /// If > 0, run the InvariantMonitor (sim/monitor.h) with this sweep
  /// period: realized-forwarding loop checks, blackhole detection, packet
  /// accounting, per-crash incident records (SimResult::monitor), and the
  /// control-overload watchdog.
  Duration monitor_interval = 0;
  /// Watchdog tolerance: control drops allowed per monitor sweep before a
  /// control_drop_alert is raised (MonitorOptions::control_drop_budget).
  std::uint64_t monitor_control_drop_budget = 0;

  /// Stability verdict machinery (sim/monitor.h StabilityMonitor): watches
  /// network-wide queue growth and delay runaway from traffic_start and
  /// reports a stability margin in SimResult::stability. interval 0 (the
  /// default) disables it entirely — no sampling, no extra branches taken.
  StabilityOptions stability{};

  // --- crash-safe checkpoint/resume (docs/CHECKPOINT.md) ------------------

  /// If > 0, write a checkpoint to `checkpoint_path` every this many sim
  /// seconds. Checkpoints are taken OUTSIDE the event queue — at slice
  /// boundaries of the legacy engine, at window barriers of the sharded
  /// engine — so they consume no event sequence numbers and a
  /// checkpoint-enabled run stays byte-identical to a plain one.
  Duration checkpoint_interval = 0;
  std::string checkpoint_path;
  /// If non-empty, restore this checkpoint at the start of run() and
  /// continue from it. The topology, flows and SimConfig must match the
  /// run that wrote it (seed, shard count and entity counts are verified;
  /// everything else is the caller's contract). The resumed run's final
  /// output is byte-identical to the uninterrupted run.
  std::string resume_from;
  /// Cooperative interruption (SIGINT/SIGTERM): when the pointee becomes
  /// true, the sim stops at the next safe boundary, writes a final
  /// checkpoint (when checkpoint_path is set) and throws SimInterrupted
  /// carrying the partial telemetry.
  const std::atomic<bool>* interrupt = nullptr;
  /// Watchdog cancellation (runner job timeout): checked at the same safe
  /// boundaries; throws SimCancelled without writing anything.
  const std::atomic<bool>* cancel = nullptr;
};

/// Thrown when SimConfig::interrupt was observed at a safe boundary. The
/// final checkpoint (when a path is configured) has already been written;
/// `telemetry` carries whatever the instruments recorded so far, so the
/// caller can flush partial JSONL/CSV/metrics before exiting.
struct SimInterrupted : std::runtime_error {
  explicit SimInterrupted(std::optional<obs::Telemetry> t)
      : std::runtime_error("simulation interrupted"),
        telemetry(std::move(t)) {}
  std::optional<obs::Telemetry> telemetry;
};

/// Thrown when SimConfig::cancel was observed (a runner watchdog decided
/// the job overran its wall-clock budget).
struct SimCancelled : std::runtime_error {
  SimCancelled() : std::runtime_error("simulation cancelled by watchdog") {}
};

/// Parallel-engine knobs, grouped so callers select an engine in one place
/// (runner::ExperimentSpec carries one; `mdrsim --shards` fills it in).
struct EngineSpec {
  /// 0 = the classic single-threaded engine — bit-identical to the seed.
  /// >= 1 = the sharded conservative engine (sim/parallel_engine.h): output
  /// is byte-identical for ANY shard count at a fixed seed, but is a
  /// different (equally valid) event interleaving than shards == 0, so the
  /// two engines are not comparable packet-for-packet.
  int shards = 0;
  /// Capacity of each cross-shard SPSC handoff ring (rounded up to a power
  /// of two). Overflow spills to an unbounded producer-local buffer — a
  /// tuning knob, never a correctness one.
  std::size_t ring_capacity = 1024;
  /// If > 0, the window lookahead is min(computed, this): shrinking windows
  /// is always safe and useful for stress-testing the barrier protocol.
  /// Raising lookahead above the minimum cross-shard propagation delay is
  /// never allowed (it would admit causality violations).
  double lookahead_override = 0;
};

/// One time-series window (delivered packets within [t - window, t)).
struct TimePoint {
  Time t = 0;
  std::uint64_t delivered = 0;
  double mean_delay_s = 0;  ///< 0 when nothing was delivered in the window
  std::uint64_t dropped = 0;
};

struct FlowResult {
  int flow_id = -1;
  std::string src, dst;
  double offered_bps = 0;
  std::uint64_t delivered = 0;
  double mean_delay_s = 0;
  double p95_delay_s = 0;
  double stddev_delay_s = 0;
};

struct LinkLoad {
  std::string from, to;
  double data_bits = 0;
  double control_bits = 0;
  double utilization = 0;  ///< busy fraction over the whole run
};

/// Per-node control-overhead breakdown (only routing nodes produce one).
struct NodeControlStats {
  std::string node;
  std::uint64_t lsus_originated = 0;     ///< first-transmission floods
  std::uint64_t lsus_retransmitted = 0;  ///< reliable-flooding resends
  std::uint64_t lsus_suppressed = 0;     ///< coalesced away by pacing
  std::uint64_t acks = 0;                ///< pure ack messages
  std::uint64_t damped_withdrawals = 0;  ///< flapping adjacencies held down
};

struct SimResult {
  std::vector<FlowResult> flows;
  std::vector<LinkLoad> links;  ///< by LinkId
  double avg_delay_s = 0;  ///< packet-weighted over all measured deliveries
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_dead = 0;   ///< data packets that hit a dead router
  std::uint64_t dropped_queue = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t control_garbage = 0;  ///< corrupted control packets rejected
  double control_bits = 0;
  /// Control-overhead breakdown: per routing node, plus network totals.
  std::vector<NodeControlStats> node_control;
  std::uint64_t lsus_originated = 0;
  std::uint64_t lsus_retransmitted = 0;
  std::uint64_t lsus_suppressed = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t damped_withdrawals = 0;
  /// Control packets dropped on links, total and by cause (SimLink).
  std::uint64_t control_dropped = 0;
  std::uint64_t control_dropped_queue = 0;  ///< control-budget overflow
  std::uint64_t control_dropped_wire = 0;   ///< wire loss
  std::uint64_t control_dropped_flush = 0;  ///< link-failure flushes
  std::uint64_t control_dropped_down = 0;   ///< refused by a down link
  std::size_t events_processed = 0;
  std::uint64_t lfi_checks = 0;      ///< snapshots taken (see lfi_check_interval)
  std::uint64_t lfi_violations = 0;  ///< invariant breaches observed (expect 0)
  std::vector<TimePoint> timeseries;  ///< see SimConfig::timeseries_interval
  /// InvariantMonitor findings; present iff monitor_interval > 0.
  std::optional<MonitorReport> monitor;
  /// Stability verdict + margin; present iff SimConfig::stability.interval
  /// > 0.
  std::optional<StabilityReport> stability;
  /// Time series, trace, flight dumps and metrics; present iff any of
  /// sample_interval / trace / flightrec_capacity enabled telemetry.
  std::optional<obs::Telemetry> telemetry;
  /// Events processed per shard, in shard order (sharded engine only; the
  /// per-shard balance the coordinator knows but classic output never had).
  std::vector<std::uint64_t> shard_events;
  /// Wall-clock attribution + convergence spans; present iff SimConfig::prof.
  std::optional<obs::ProfReport> prof;
  std::optional<obs::ConvergenceReport> convergence;
};

class NetworkSim {
 public:
  /// `engine` selects the event engine (EngineSpec); the default runs the
  /// classic single-threaded queue. Sharded mode (engine.shards >= 1)
  /// rejects trace / flight-recorder telemetry (the recorder is
  /// single-threaded by design) — callers validate, build() asserts.
  NetworkSim(const graph::Topology& topo,
             const std::vector<topo::FlowSpec>& flows, SimConfig config,
             EngineSpec engine = {});

  /// Runs to completion and returns the measurements. Call once. Honors
  /// SimConfig::resume_from / checkpoint_interval / interrupt / cancel.
  SimResult run();

  // --- checkpointing (tests drive these directly; run() wires them up) ----

  /// Serializes the complete simulation state to `path` (atomic tmp+rename).
  /// Must be called outside the event loop: between legacy run_until slices
  /// or from a coordinator pause at a sharded window barrier.
  void save_checkpoint(const std::string& path);

  /// Overwrites this sim's mutable state from a checkpoint written by an
  /// identically configured run. Call after construction, before run()
  /// (run() does this itself for SimConfig::resume_from). Throws
  /// ckpt::Error on any mismatch or corruption.
  void restore_checkpoint(const std::string& path);

 private:
  void build();
  void schedule_link_toggles();
  void schedule_faults();
  void toggle_duplex(graph::NodeId a, graph::NodeId b, bool up, bool silent);
  /// Recomputes one directed link's effective state from every hold on it
  /// (admin toggles, flap schedule, endpoint liveness).
  void apply_link_state(graph::LinkId id);
  void apply_incident_links(graph::NodeId node);
  void flap_duplex(graph::NodeId a, graph::NodeId b, bool down);
  void duty_duplex(graph::NodeId a, graph::NodeId b, bool down);
  void crash_node(graph::NodeId node);
  void recover_node(graph::NodeId node);
  void lfi_check();
  /// The LFI sweep body, parameterized on the sweep time (the legacy timer
  /// passes events_.now(); the sharded engine passes the pause time).
  void lfi_sweep(Time now);
  void monitor_check();
  void stability_tick();
  /// One StabilityMonitor observation at `now` (the legacy timer passes
  /// events_.now(); the sharded engine passes the pause time). Reads queued
  /// bits in LinkId order and per-flow delivery sums in flow order, so the
  /// float reductions are identical for every engine and shard count.
  void stability_record(Time now);
  void timeseries_tick();
  /// Closes one time-series window at `now` (reads the engine-appropriate
  /// window accumulators, then resets them).
  void timeseries_point(Time now);
  void sample_tick();
  /// One full set of sampler readings at `now` (also called once after the
  /// run drains, so the tail window is captured and the per-flow sums
  /// reconcile exactly with FlowResult).
  void take_samples(Time now);
  std::uint64_t source_emitted(std::size_t flow) const;
  AccountingSnapshot accounting_snapshot() const;

  /// Entity-index translation + callback-rebuild table for EventQueue
  /// save/load (the tag namespace lives in network_sim.cc).
  EventQueueCodec make_codec();
  /// Legacy-engine slice boundary: cancel / interrupt checks and the
  /// periodic checkpoint write. Throws SimCancelled / SimInterrupted.
  void at_safe_boundary();
  /// Partial telemetry for SimInterrupted (tail sample + move out).
  std::optional<obs::Telemetry> take_partial_telemetry();

  // --- sharded conservative engine (see sim/parallel_engine.h) ------------
  /// Replaces every wheel-scheduled global activity (toggles, faults,
  /// monitor / LFI / time-series / sampler ticks) with a sorted pause plan
  /// the coordinator executes at window barriers.
  void build_pause_plan();
  /// Lockstep window loop: workers advance shard queues, the barrier
  /// completion hook drains handoff rings, executes due pauses and sizes
  /// the next window. Returns with every shard clock at the drain horizon.
  void run_parallel_loop();
  /// Moves every queued cross-shard delivery into its destination queue.
  /// Coordinator-only (all workers parked at the barrier).
  void drain_channels();
  std::uint64_t injected_total() const;
  std::uint64_t delivered_total() const;
  /// The simulation clock independent of engine: the event queue's in the
  /// classic engine, the coordinator's between-windows clock when sharded.
  Time now_sim() const { return sharded_ ? global_now_ : events_.now(); }

  const graph::Topology* topo_;
  std::vector<topo::FlowSpec> flow_specs_;
  SimConfig config_;

  EventQueue events_;
  Rng master_rng_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::vector<std::unique_ptr<SimLink>> links_;  // by LinkId
  std::vector<std::unique_ptr<TrafficSource>> sources_;  // by flow id

  Time measure_start_ = 0;
  std::vector<Samples> flow_delays_;  // by flow id
  std::uint64_t lfi_checks_ = 0;
  std::uint64_t lfi_violations_ = 0;
  std::vector<TimePoint> timeseries_;
  double window_delay_sum_ = 0;
  std::uint64_t window_delivered_ = 0;
  std::uint64_t window_dropped_ = 0;

  /// A directed link is up iff no hold applies AND both endpoints are alive.
  struct LinkHold {
    bool admin_down = false;  ///< link_toggles (fail/restore)
    bool flap_down = false;   ///< flap schedule
    bool duty_down = false;   ///< duty-cycle sleep phase
  };
  std::vector<LinkHold> link_holds_;  // by LinkId

  std::unique_ptr<InvariantMonitor> monitor_;
  /// Stability verdict machinery (null unless config.stability.interval
  /// > 0). The per-flow cumulative delivery accounts are written by exactly
  /// one shard (the flow's destination) and reduced in flow order at each
  /// observation, so verdicts are engine- and shard-count-invariant.
  std::unique_ptr<StabilityMonitor> stability_;
  bool stability_enabled_ = false;
  std::vector<std::uint64_t> stab_flow_delivered_;  // by flow; dst shard
  std::vector<double> stab_flow_delay_sum_;         // by flow; dst shard
  std::uint64_t injected_ = 0;         ///< data packets entered at sources
  std::uint64_t total_delivered_ = 0;  ///< all deliveries, measured or not

  // --- telemetry (null/empty unless enabled; see SimConfig) ---------------
  /// Per-flow cumulative delivery accounting for the sampler: every delivery
  /// vs. only measurement-window deliveries (the pair that reconciles with
  /// FlowResult::mean_delay_s).
  struct FlowAccum {
    std::uint64_t delivered = 0;
    double delay_sum_s = 0;
    std::uint64_t measured_delivered = 0;
    double measured_delay_sum_s = 0;
    std::uint64_t dropped = 0;
  };
  bool telemetry_enabled_ = false;
  obs::Telemetry telemetry_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::vector<FlowAccum> flow_accum_;  // by flow id
  obs::LogHistogram* delay_hist_ = nullptr;  ///< "flow_delay_s" in metrics

  // --- wall-clock profiler + span tracer (empty unless config.prof) -------
  /// One Profiler per event-executing context: index i < shard count is
  /// shard i's (the classic engine has exactly one, labelled "main"); the
  /// last one is the coordinator's (handoff drain, pauses, checkpoints) —
  /// separate so its counts stay deterministic even though the barrier
  /// completion hook runs on whichever worker arrives last.
  std::vector<std::unique_ptr<obs::Profiler>> profilers_;
  obs::Profiler* coord_prof_ = nullptr;  ///< profilers_.back() when enabled
  std::vector<std::unique_ptr<obs::SpanRecorder>> span_recorders_;
  /// Per-window imbalance accounting: each worker writes its window's busy
  /// ns into its slot; the completion hook (all workers parked) folds
  /// max/mean into the running sums and zeroes the slots.
  std::vector<std::uint64_t> window_busy_ns_;
  std::uint64_t prof_windows_ = 0;
  std::uint64_t prof_window_max_busy_ns_ = 0;
  std::uint64_t prof_window_mean_busy_ns_ = 0;
  /// Assembles the per-context profilers + engine stats into a ProfReport.
  obs::ProfReport make_prof_report(std::uint64_t wall_ns) const;

  // --- sharded conservative engine state (empty when engine_.shards == 0).
  // Accumulators are split so every field has exactly one writing shard:
  // per-shard integers merge exactly in any order, and per-flow float sums
  // are written only by the flow's destination shard, then combined in flow
  // order — the float reduction order is therefore identical for every
  // shard count.
  EngineSpec engine_;
  bool sharded_ = false;
  std::vector<int> shard_of_;  // by NodeId
  double lookahead_ = 0;       ///< window slack (min cross-shard prop delay)
  /// Coordinator clock: equals every shard clock whenever the workers are
  /// parked at a barrier; pause handlers and log lines read it.
  double global_now_ = 0;
  struct Shard {
    EventQueue events;
    std::uint64_t injected = 0;   ///< sources on this shard
    std::uint64_t delivered = 0;  ///< deliveries at this shard's nodes
    std::uint64_t window_dropped = 0;
    /// Deliveries without a flow id this window (none in practice — every
    /// source stamps a flow — but the ledger stays engine-invariant).
    std::uint64_t noflow_window_delivered = 0;
  };
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Directed handoff channels, indexed [from * shards + to]; diagonal null.
  std::vector<std::unique_ptr<HandoffChannel>> channels_;
  std::vector<double> wf_window_delay_sum_;        // by flow; dst shard writes
  std::vector<std::uint64_t> wf_window_delivered_;  // by flow; dst shard writes
  std::vector<std::vector<std::uint64_t>> sflow_dropped_;  // [shard][flow]
  std::vector<obs::LogHistogram> flow_hist_;  // by flow; merged at the end
  /// One globally-ordered coordinator action: rank breaks ties at equal
  /// times (toggles < flaps < dutycycles < crashes < recoveries < monitor <
  /// lfi < timeseries < sampler < stability), insertion order breaks rank
  /// ties.
  struct Pause {
    Time at = 0;
    int rank = 0;
    std::function<void()> fn;
  };
  std::vector<Pause> pauses_;

  // --- checkpoint/resume cursors ------------------------------------------
  /// Legacy engine: completed run_until slices (slice k ends at
  /// k * checkpoint step). Sharded engine: the coordinator Control state at
  /// the instant the checkpoint was taken, replayed into the window loop on
  /// resume.
  std::uint64_t ckpt_slice_ = 0;
  std::size_t ckpt_pause_idx_ = 0;
  Time ckpt_clock_ = 0;
  bool ckpt_tie_done_ = false;
  bool resumed_ = false;
  /// Why the sharded window loop stopped (set by the coordinator inside the
  /// barrier completion hook; thrown as an exception after the join).
  enum class StopReason { kCompleted, kInterrupted, kCancelled };
  StopReason stop_reason_ = StopReason::kCompleted;
};

/// Convenience wrapper: build, run, return.
SimResult run_simulation(const graph::Topology& topo,
                         const std::vector<topo::FlowSpec>& flows,
                         const SimConfig& config);

/// As above, on an explicit engine (EngineSpec; shards >= 1 runs sharded).
SimResult run_simulation(const graph::Topology& topo,
                         const std::vector<topo::FlowSpec>& flows,
                         const SimConfig& config, const EngineSpec& engine);

}  // namespace mdr::sim
