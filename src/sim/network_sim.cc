#include "sim/network_sim.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/lfi.h"
#include "sim/parallel_engine.h"
#include "util/log.h"

namespace mdr::sim {

using graph::LinkId;
using graph::NodeId;

namespace {

// Rebuild descriptors for checkpointable callback events: every generic
// schedule_at/schedule_timer call site below tags its closure with one of
// these opcodes plus an (a, b) payload, and make_codec()'s factory rebuilds
// an equivalent closure from the descriptor at restore time. The payload is
// always an index into SimConfig-owned lists (or a node id), never a
// pointer, so descriptors survive process death.
constexpr std::uint8_t kOpNodeStart = 1;       ///< a = node id
constexpr std::uint8_t kOpLinkToggle = 2;      ///< a = link_toggles index
constexpr std::uint8_t kOpCrash = 3;           ///< a = faults.crashes index
constexpr std::uint8_t kOpRecovery = 4;        ///< a = faults.recoveries index
constexpr std::uint8_t kOpFlap = 5;            ///< a = flaps index, b = down
constexpr std::uint8_t kOpDuty = 6;            ///< a = duty index, b = down
constexpr std::uint8_t kOpMonitorTick = 7;
constexpr std::uint8_t kOpLfiTick = 8;
constexpr std::uint8_t kOpTimeseriesTick = 9;
constexpr std::uint8_t kOpSamplerTick = 10;
constexpr std::uint8_t kOpStabilityTick = 11;

}  // namespace

NetworkSim::NetworkSim(const graph::Topology& topo,
                       const std::vector<topo::FlowSpec>& flows,
                       SimConfig config, EngineSpec engine)
    : topo_(&topo),
      flow_specs_(flows),
      config_(config),
      master_rng_(config.seed),
      engine_(engine),
      sharded_(engine.shards >= 1) {
  assert(config.mode != RoutingMode::kStatic || config.static_phi != nullptr);
  // The flight recorder (and full tracing) is single-threaded by design;
  // scenario validation and mdrsim reject the combination with a real error
  // before it can reach this assert.
  assert(!sharded_ || (!config.trace && config.flightrec_capacity == 0));
  build();
}

void NetworkSim::build() {
  const auto n = static_cast<NodeId>(topo_->num_nodes());
  measure_start_ = config_.traffic_start + config_.warmup;
  flow_delays_.resize(flow_specs_.size());

  if (sharded_) {
    const int num_shards = engine_.shards;
    shard_of_ = assign_shards(*topo_, num_shards);
    for (int s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<Shard>());
    }
    channels_.resize(static_cast<std::size_t>(num_shards) * num_shards);
    for (int p = 0; p < num_shards; ++p) {
      for (int q = 0; q < num_shards; ++q) {
        if (p == q) continue;
        channels_[static_cast<std::size_t>(p) * num_shards + q] =
            std::make_unique<HandoffChannel>(engine_.ring_capacity);
      }
    }
    lookahead_ = min_cross_shard_prop(*topo_, shard_of_);
    if (engine_.lookahead_override > 0) {
      lookahead_ = std::min(lookahead_, engine_.lookahead_override);
    }
    // A zero-delay cross-shard link would make every window empty; the
    // topologies here all carry positive propagation delays.
    assert(lookahead_ > 0);
    wf_window_delay_sum_.assign(flow_specs_.size(), 0.0);
    wf_window_delivered_.assign(flow_specs_.size(), 0);
  }
  if (config_.prof) {
    // One profiler + span recorder per event-executing context. Sharded runs
    // get one extra profiler for the coordinator: the barrier completion
    // hook runs on whichever worker arrives last, and a dedicated instance
    // keeps every profiler single-threaded and its counts deterministic.
    const auto contexts =
        sharded_ ? static_cast<std::size_t>(engine_.shards) : std::size_t{1};
    const std::uint64_t timed_mask =
        config_.prof_deep ? obs::kProfTimeAll : obs::kProfTimeDefault;
    for (std::size_t s = 0; s < contexts; ++s) {
      profilers_.push_back(std::make_unique<obs::Profiler>(timed_mask));
      span_recorders_.push_back(
          std::make_unique<obs::SpanRecorder>(topo_->num_nodes()));
    }
    if (sharded_) {
      profilers_.push_back(std::make_unique<obs::Profiler>(timed_mask));
      window_busy_ns_.assign(contexts, 0);
      for (std::size_t s = 0; s < contexts; ++s) {
        shards_[s]->events.set_profiler(profilers_[s].get());
      }
    } else {
      events_.set_profiler(profilers_[0].get());
    }
    coord_prof_ = profilers_.back().get();
  }
  // Covers the rest of entity construction; a no-op branch when prof is off.
  obs::ProfScope build_scope(coord_prof_, obs::ProfSection::kSimBuild);

  const auto queue_for = [this](NodeId i) -> EventQueue& {
    return sharded_
               ? shards_[static_cast<std::size_t>(shard_of_[i])]->events
               : events_;
  };

  NodeOptions node_options;
  node_options.mode = config_.mode;
  node_options.tl = config_.tl;
  node_options.ts = config_.ts;
  node_options.ah_damping = config_.ah_damping;
  node_options.mean_packet_bits = config_.mean_packet_bits;
  node_options.smoothing = config_.smoothing;
  node_options.wrr_forwarding = config_.wrr_forwarding;
  node_options.use_hello = config_.use_hello;
  node_options.hello = config_.hello;
  node_options.pacing = config_.pacing;
  node_options.damping = config_.damping;

  telemetry_enabled_ = config_.sample_interval > 0 || config_.trace ||
                       config_.flightrec_capacity > 0;
  stability_enabled_ = config_.stability.interval > 0;
  if (stability_enabled_) {
    stab_flow_delivered_.assign(flow_specs_.size(), 0);
    stab_flow_delay_sum_.assign(flow_specs_.size(), 0.0);
  }

  NodeCallbacks callbacks;
  callbacks.delivered = [this](const Packet& p, Duration delay) {
    ++total_delivered_;
    window_delay_sum_ += delay;
    ++window_delivered_;
    if (p.flow_id < 0) return;
    if (stability_enabled_) {
      const auto sf = static_cast<std::size_t>(p.flow_id);
      ++stab_flow_delivered_[sf];
      stab_flow_delay_sum_[sf] += delay;
    }
    const bool measured = p.created >= measure_start_;
    if (telemetry_enabled_) {
      auto& acc = flow_accum_[static_cast<std::size_t>(p.flow_id)];
      ++acc.delivered;
      acc.delay_sum_s += delay;
      if (measured) {
        ++acc.measured_delivered;
        acc.measured_delay_sum_s += delay;
        delay_hist_->record(delay);
      }
    }
    if (!measured) return;
    flow_delays_[static_cast<std::size_t>(p.flow_id)].add(delay);
  };
  callbacks.dropped = [this](const Packet& p) {
    ++window_dropped_;
    if (telemetry_enabled_ && p.flow_id >= 0) {
      ++flow_accum_[static_cast<std::size_t>(p.flow_id)].dropped;
    }
  };

  for (NodeId i = 0; i < n; ++i) {
    NodeCallbacks cb = callbacks;
    if (sharded_) {
      // Sharded accounting: per-shard integer counters plus per-flow sums
      // written only by the flow's destination shard, so every field has a
      // single writer and the float reduction order (flow order at merge
      // time) is identical for every shard count.
      const auto s = static_cast<std::size_t>(shard_of_[i]);
      cb.delivered = [this, s](const Packet& p, Duration delay) {
        auto& shard = *shards_[s];
        ++shard.delivered;
        if (p.flow_id < 0) {
          ++shard.noflow_window_delivered;
          return;
        }
        const auto f = static_cast<std::size_t>(p.flow_id);
        wf_window_delay_sum_[f] += delay;
        ++wf_window_delivered_[f];
        if (stability_enabled_) {
          // Single writer: the flow's destination lives on this shard.
          ++stab_flow_delivered_[f];
          stab_flow_delay_sum_[f] += delay;
        }
        const bool measured = p.created >= measure_start_;
        if (telemetry_enabled_) {
          auto& acc = flow_accum_[f];
          ++acc.delivered;
          acc.delay_sum_s += delay;
          if (measured) {
            ++acc.measured_delivered;
            acc.measured_delay_sum_s += delay;
            flow_hist_[f].record(delay);
          }
        }
        if (measured) flow_delays_[f].add(delay);
      };
      cb.dropped = [this, s](const Packet& p) {
        ++shards_[s]->window_dropped;
        if (telemetry_enabled_ && p.flow_id >= 0) {
          ++sflow_dropped_[s][static_cast<std::size_t>(p.flow_id)];
        }
      };
    }
    nodes_.push_back(std::make_unique<SimNode>(queue_for(i), i,
                                               topo_->num_nodes(), node_options,
                                               master_rng_.split(), cb));
  }

  // Resolve the Gilbert–Elliott assignments to directed node pairs once
  // (each duplex entry covers both directions; each gets its own chain).
  std::map<std::pair<NodeId, NodeId>, fault::GilbertParams> gilbert_by_pair;
  for (const auto& g : config_.faults.gilbert) {
    const NodeId a = topo_->find_node(g.a);
    const NodeId b = topo_->find_node(g.b);
    assert(a != graph::kInvalidNode && b != graph::kInvalidNode);
    gilbert_by_pair[{a, b}] = g.params;
    gilbert_by_pair[{b, a}] = g.params;
  }
  // Duty-cycled links with loss params carry their own Gilbert–Elliott
  // chain while awake. A link cannot carry two chains per direction; the
  // scenario parser rejects a `gilbert` + lossy `dutycycle` collision with
  // a real diagnostic before it can reach this assert.
  for (const auto& duty : config_.faults.duty_cycles) {
    if (!duty.lossy) continue;
    const NodeId a = topo_->find_node(duty.a);
    const NodeId b = topo_->find_node(duty.b);
    assert(a != graph::kInvalidNode && b != graph::kInvalidNode);
    assert(gilbert_by_pair.find({a, b}) == gilbert_by_pair.end());
    gilbert_by_pair[{a, b}] = duty.loss;
    gilbert_by_pair[{b, a}] = duty.loss;
  }

  SimLink::Options link_options;
  link_options.queue_limit_bits = config_.queue_limit_bits;
  link_options.control_queue_limit_bits = config_.control_queue_limit_bits;
  link_options.loss_rate = config_.link_loss_rate;
  link_options.corrupt_rate = config_.faults.chaos.corrupt_rate;
  link_options.duplicate_rate = config_.faults.chaos.duplicate_rate;
  link_options.reorder_rate = config_.faults.chaos.reorder_rate;
  link_holds_.resize(topo_->num_links());
  for (LinkId id = 0; id < static_cast<LinkId>(topo_->num_links()); ++id) {
    const auto& l = topo_->link(id);
    SimNode* to = nodes_[l.to].get();
    auto options = link_options;
    if (const auto it = gilbert_by_pair.find({l.from, l.to});
        it != gilbert_by_pair.end()) {
      options.gilbert = it->second;
    }
    links_.push_back(std::make_unique<SimLink>(
        queue_for(l.from), l.attr, config_.estimator, config_.mean_packet_bits,
        [to](Packet p) { to->receive(std::move(p)); }, options,
        master_rng_.split()));
    if (sharded_) {
      // The transmitter (and its estimators and RNG) belongs to the FROM
      // shard; deliveries execute on the TO shard — directly into its queue
      // when both endpoints share a shard, through the handoff ring
      // otherwise.
      const int from_shard = shard_of_[l.from];
      const int to_shard = shard_of_[l.to];
      links_.back()->enable_sharded_wire(
          id,
          from_shard == to_shard
              ? &shards_[static_cast<std::size_t>(to_shard)]->events
              : nullptr,
          from_shard == to_shard
              ? nullptr
              : channels_[static_cast<std::size_t>(from_shard) *
                              engine_.shards +
                          to_shard]
                    .get());
    }
    nodes_[l.from]->attach_link(l.to, links_.back().get());
  }

  if (config_.prof) {
    // Every instrument is owned by the shard whose thread executes it: a
    // node's protocol work runs on its own shard, a link's transmitter on
    // the FROM shard and its delivery hand-up on the TO shard.
    const auto prof_for = [this](NodeId i) {
      return profilers_[sharded_ ? static_cast<std::size_t>(shard_of_[i]) : 0]
          .get();
    };
    for (NodeId i = 0; i < n; ++i) {
      nodes_[i]->set_prof(prof_for(i));
      nodes_[i]->set_spans(
          span_recorders_[sharded_ ? static_cast<std::size_t>(shard_of_[i])
                                   : 0]
              .get());
    }
    for (LinkId id = 0; id < static_cast<LinkId>(topo_->num_links()); ++id) {
      const auto& l = topo_->link(id);
      links_[id]->set_prof(prof_for(l.from), prof_for(l.to));
    }
  }

  if (telemetry_enabled_) {
    telemetry_.sample_interval = config_.sample_interval;
    if (!sharded_) {
      const std::size_t ring =
          config_.flightrec_capacity > 0 ? config_.flightrec_capacity : 256;
      recorder_ = std::make_unique<obs::FlightRecorder>(
          topo_->num_nodes(), ring, /*keep_all=*/config_.trace,
          &telemetry_.metrics);
      const Time* clock = events_.now_ptr();
      for (NodeId i = 0; i < n; ++i) {
        nodes_[i]->set_probe(obs::Probe{recorder_.get(), i, clock});
      }
      // A link's drop events are stamped with the RECEIVING node: control
      // sheds at the ingress of the far end, which is where the overload is.
      for (LinkId id = 0; id < static_cast<LinkId>(topo_->num_links()); ++id) {
        links_[id]->set_probe(
            obs::Probe{recorder_.get(), topo_->link(id).to, clock});
      }
      delay_hist_ = &telemetry_.metrics.histogram("flow_delay_s");
    } else {
      // No flight recorder in sharded mode (asserted in the constructor).
      // Per-flow histograms stand in for the shared delay_hist_ — single
      // writer each — and merge into metrics["flow_delay_s"] in flow order
      // when the run ends.
      flow_hist_.resize(flow_specs_.size());
      sflow_dropped_.assign(
          static_cast<std::size_t>(engine_.shards),
          std::vector<std::uint64_t>(flow_specs_.size(), 0));
    }
    flow_accum_.resize(flow_specs_.size());
    if (config_.sample_interval > 0) {
      sampler_ = std::make_unique<obs::TimeSeriesSampler>(
          config_.sample_interval, topo_->num_links(), flow_specs_.size(),
          &telemetry_);
      if (!sharded_) {
        events_.schedule_timer(TimerClass::kSampler, config_.sample_interval,
                               [this] { sample_tick(); }, kOpSamplerTick);
      }
    }
  }

  if (config_.mode == RoutingMode::kStatic) {
    const auto& phi = *config_.static_phi;
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        if (i == j) continue;
        const auto values = phi.at(i, j);
        const auto out = topo_->out_links(i);
        std::vector<core::ForwardingChoice> choices;
        for (std::size_t x = 0; x < out.size(); ++x) {
          if (values[x] > 0) {
            choices.push_back(
                core::ForwardingChoice{topo_->link(out[x]).to, values[x]});
          }
        }
        nodes_[i]->set_static_choices(j, std::move(choices));
      }
    }
  }

  // Protocol bring-up at t=0 (random per-node order falls out of per-node
  // timer phases; link_up processing itself is instantaneous and local).
  for (NodeId i = 0; i < n; ++i) {
    SimNode* node = nodes_[i].get();
    queue_for(i).schedule_at(0, [node] { node->start(); }, kOpNodeStart,
                             static_cast<std::uint64_t>(i));
  }

  // Traffic sources.
  const Time stop = measure_start_ + config_.duration;
  for (std::size_t f = 0; f < flow_specs_.size(); ++f) {
    const auto& spec = flow_specs_[f];
    FlowShape shape;
    shape.src = topo_->find_node(spec.src);
    shape.dst = topo_->find_node(spec.dst);
    assert(shape.src != graph::kInvalidNode);
    assert(shape.dst != graph::kInvalidNode);
    shape.flow_id = static_cast<int>(f);
    shape.rate_bps = spec.rate_bps;
    shape.mean_packet_bits = config_.mean_packet_bits;
    SimNode* src_node = nodes_[shape.src].get();
    EventQueue& src_queue = queue_for(shape.src);
    std::function<void(Packet)> inject;
    if (sharded_) {
      const auto s = static_cast<std::size_t>(shard_of_[shape.src]);
      inject = [this, s, src_node](Packet p) {
        ++shards_[s]->injected;  // conservation ledger, per-shard half
        src_node->receive(std::move(p));
      };
    } else {
      inject = [this, src_node](Packet p) {
        ++injected_;  // conservation ledger: every data packet enters here
        src_node->receive(std::move(p));
      };
    }
    // Rate modulation (diurnal curve, flash crowds): the inner source runs
    // at the profile's peak rate and the wrapper thins emissions back down
    // to rate * multiplier(t). Episodes apply only to flows aimed at the
    // hotspot. When no profile is active the build is byte-for-byte the
    // seed path (same RNG split order, no wrapper).
    RateProfile profile;
    profile.period_s = config_.traffic.diurnal_period_s;
    profile.amplitude = config_.traffic.diurnal_amplitude;
    profile.phase_s = config_.traffic.diurnal_phase_s;
    for (const auto& fc : config_.traffic.flash_crowds) {
      if (topo_->find_node(fc.dst) != shape.dst) continue;
      profile.episodes.push_back(
          RateProfile::Episode{fc.start, fc.ramp_s, fc.hold_s, fc.peak});
    }
    std::unique_ptr<ModulatedSource> modulated;
    InjectFn sink = inject;
    if (profile.active()) {
      modulated = std::make_unique<ModulatedSource>(
          src_queue, profile, master_rng_.split(), inject);
      sink = modulated->gate();
      shape.rate_bps = spec.rate_bps * profile.peak();
    }
    std::unique_ptr<TrafficSource> source;
    switch (config_.traffic.model) {
      case TrafficModel::kOnOff:
        source = std::make_unique<OnOffSource>(
            src_queue, shape, config_.traffic.burstiness, master_rng_.split(),
            sink);
        break;
      case TrafficModel::kParetoOnOff:
        source = std::make_unique<ParetoOnOffSource>(
            src_queue, shape, config_.traffic.pareto, master_rng_.split(),
            sink);
        break;
      case TrafficModel::kPoisson:
        source = std::make_unique<PoissonSource>(src_queue, shape,
                                                 master_rng_.split(), sink);
        break;
      case TrafficModel::kAdversarial:
        source = std::make_unique<AdversarialSource>(
            src_queue, shape, config_.traffic.adversarial,
            master_rng_.split(), sink);
        break;
    }
    if (modulated != nullptr) {
      modulated->adopt(std::move(source));
      sources_.push_back(std::move(modulated));
    } else {
      sources_.push_back(std::move(source));
    }
    sources_.back()->run(config_.traffic_start, stop);
  }

  if (!sharded_) schedule_link_toggles();

  if (config_.monitor_interval > 0) {
    MonitorHooks hooks;
    hooks.node_alive = [this](NodeId i) { return nodes_[i]->alive(); };
    hooks.link_up = [this](LinkId id) { return links_[id]->up(); };
    hooks.forwarding = [this](NodeId x, NodeId dest) {
      return nodes_[x]->forwarding(dest);
    };
    hooks.accounting = [this] { return accounting_snapshot(); };
    hooks.control_dropped = [this](LinkId id) {
      return links_[id]->control_dropped_queue();
    };
    hooks.adjacent = [this](NodeId x, NodeId neighbor) {
      return nodes_[x]->adjacent_to(neighbor);
    };
    if (recorder_ != nullptr) {
      // Dump the flight recorder the moment an invariant incident opens —
      // bounded so a persistently broken run cannot grow without limit.
      hooks.anomaly = [this](const char* kind, Time at) {
        constexpr std::size_t kMaxDumps = 16;
        if (telemetry_.flight_dumps.size() >= kMaxDumps) return;
        telemetry_.flight_dumps.push_back(
            obs::FlightDump{at, std::string(kind), recorder_->dump()});
      };
    }
    MonitorOptions monitor_options;
    monitor_options.control_drop_budget = config_.monitor_control_drop_budget;
    monitor_ = std::make_unique<InvariantMonitor>(*topo_, std::move(hooks),
                                                  monitor_options);
    if (!sharded_) {
      events_.schedule_timer(TimerClass::kMonitor, config_.monitor_interval,
                             [this] { monitor_check(); }, kOpMonitorTick);
    }
  }

  if (!sharded_) schedule_faults();

  if (stability_enabled_) {
    double total_capacity_bps = 0;
    for (LinkId id = 0; id < static_cast<LinkId>(topo_->num_links()); ++id) {
      total_capacity_bps += topo_->link(id).attr.capacity_bps;
    }
    stability_ =
        std::make_unique<StabilityMonitor>(config_.stability,
                                           total_capacity_bps);
    if (!sharded_) {
      // Observation starts one interval after traffic does: the monitor's
      // baseline must measure loaded steady state, not the silent
      // convergence phase.
      events_.schedule_timer(
          TimerClass::kStability,
          config_.traffic_start + config_.stability.interval,
          [this] { stability_tick(); }, kOpStabilityTick);
    }
  }

  if (config_.lfi_check_interval > 0 && config_.mode != RoutingMode::kStatic &&
      !sharded_) {
    events_.schedule_timer(TimerClass::kLfi, config_.lfi_check_interval,
                           [this] { lfi_check(); }, kOpLfiTick);
  }
  if (config_.timeseries_interval > 0 && !sharded_) {
    events_.schedule_timer(TimerClass::kTimeseries, config_.timeseries_interval,
                           [this] { timeseries_tick(); }, kOpTimeseriesTick);
  }

  // In sharded mode every global activity scheduled above through the
  // wheel — toggles, faults, monitor / LFI / time-series / sampler ticks —
  // becomes a coordinator pause executed at a window barrier instead.
  if (sharded_) build_pause_plan();
}

std::uint64_t NetworkSim::injected_total() const {
  std::uint64_t total = injected_;
  for (const auto& shard : shards_) total += shard->injected;
  return total;
}

std::uint64_t NetworkSim::delivered_total() const {
  std::uint64_t total = total_delivered_;
  for (const auto& shard : shards_) total += shard->delivered;
  return total;
}

AccountingSnapshot NetworkSim::accounting_snapshot() const {
  AccountingSnapshot s;
  s.injected = injected_total();
  s.delivered = delivered_total();
  for (const auto& node : nodes_) {
    s.dropped +=
        node->drops_no_route() + node->drops_ttl() + node->drops_dead();
  }
  for (const auto& link : links_) {
    s.dropped += link->data_dropped();
    s.queued += link->queued_data_packets();
    s.in_flight += link->in_flight_data_packets();
  }
  return s;
}

EventQueueCodec NetworkSim::make_codec() {
  EventQueueCodec c;
  auto link_idx = std::make_shared<
      std::unordered_map<const SimLink*, std::uint64_t>>();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    (*link_idx)[links_[i].get()] = i;
  }
  auto node_idx = std::make_shared<
      std::unordered_map<const SimNode*, std::uint64_t>>();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    (*node_idx)[nodes_[i].get()] = i;
  }
  // kSourceEmit events always target the innermost concrete source (a
  // ModulatedSource wrapper never schedules queue events of its own).
  auto concrete = std::make_shared<std::vector<TrafficSource*>>();
  auto source_idx = std::make_shared<
      std::unordered_map<const TrafficSource*, std::uint64_t>>();
  for (std::size_t f = 0; f < sources_.size(); ++f) {
    TrafficSource* s = sources_[f].get();
    if (auto* m = dynamic_cast<ModulatedSource*>(s)) s = m->inner();
    concrete->push_back(s);
    (*source_idx)[s] = f;
  }
  c.link_index = [link_idx](const SimLink* l) {
    const auto it = link_idx->find(l);
    if (it == link_idx->end()) {
      throw ckpt::Error("unknown link in pending event");
    }
    return it->second;
  };
  c.link_at = [this](std::uint64_t i) {
    if (i >= links_.size()) {
      throw ckpt::Error("link index out of range in checkpoint");
    }
    return links_[i].get();
  };
  c.node_index = [node_idx](const SimNode* n) {
    const auto it = node_idx->find(n);
    if (it == node_idx->end()) {
      throw ckpt::Error("unknown node in pending event");
    }
    return it->second;
  };
  c.node_at = [this](std::uint64_t i) {
    if (i >= nodes_.size()) {
      throw ckpt::Error("node index out of range in checkpoint");
    }
    return nodes_[i].get();
  };
  c.source_index = [source_idx](const TrafficSource* s) {
    const auto it = source_idx->find(s);
    if (it == source_idx->end()) {
      throw ckpt::Error("unknown traffic source in pending event");
    }
    return it->second;
  };
  c.source_at = [concrete](std::uint64_t i) {
    if (i >= concrete->size()) {
      throw ckpt::Error("source index out of range in checkpoint");
    }
    return (*concrete)[i];
  };
  c.make_callback = [this](std::uint8_t tag, std::uint64_t a,
                           double b) -> std::function<void()> {
    switch (tag) {
      case kOpNodeStart: {
        if (a >= nodes_.size()) {
          throw ckpt::Error("node-start descriptor out of range");
        }
        SimNode* node = nodes_[a].get();
        return [node] { node->start(); };
      }
      case kOpLinkToggle: {
        if (a >= config_.link_toggles.size()) {
          throw ckpt::Error("link-toggle descriptor out of range");
        }
        const auto& t = config_.link_toggles[a];
        const NodeId na = topo_->find_node(t.a);
        const NodeId nb = topo_->find_node(t.b);
        return [this, na, nb, up = t.up, silent = t.silent] {
          toggle_duplex(na, nb, up, silent);
        };
      }
      case kOpCrash: {
        if (a >= config_.faults.crashes.size()) {
          throw ckpt::Error("crash descriptor out of range");
        }
        const NodeId x = topo_->find_node(config_.faults.crashes[a].node);
        return [this, x] { crash_node(x); };
      }
      case kOpRecovery: {
        if (a >= config_.faults.recoveries.size()) {
          throw ckpt::Error("recovery descriptor out of range");
        }
        const NodeId x = topo_->find_node(config_.faults.recoveries[a].node);
        return [this, x] { recover_node(x); };
      }
      case kOpFlap: {
        if (a >= config_.faults.flaps.size()) {
          throw ckpt::Error("flap descriptor out of range");
        }
        const auto& flap = config_.faults.flaps[a];
        const NodeId na = topo_->find_node(flap.a);
        const NodeId nb = topo_->find_node(flap.b);
        return [this, na, nb, down = b != 0] { flap_duplex(na, nb, down); };
      }
      case kOpDuty: {
        if (a >= config_.faults.duty_cycles.size()) {
          throw ckpt::Error("duty-cycle descriptor out of range");
        }
        const auto& duty = config_.faults.duty_cycles[a];
        const NodeId na = topo_->find_node(duty.a);
        const NodeId nb = topo_->find_node(duty.b);
        return [this, na, nb, down = b != 0] { duty_duplex(na, nb, down); };
      }
      case kOpMonitorTick:
        return [this] { monitor_check(); };
      case kOpLfiTick:
        return [this] { lfi_check(); };
      case kOpTimeseriesTick:
        return [this] { timeseries_tick(); };
      case kOpSamplerTick:
        return [this] { sample_tick(); };
      case kOpStabilityTick:
        return [this] { stability_tick(); };
      default:
        return nullptr;  // EventQueue::load reports the unknown tag
    }
  };
  return c;
}

void NetworkSim::save_checkpoint(const std::string& path) {
  // Save runs on the coordinator (a pause handler, or the classic engine's
  // slice boundary), so it bills to the coordinator profiler.
  obs::ProfScope prof_scope(coord_prof_, obs::ProfSection::kCkptSave);
  const auto wall_start = std::chrono::steady_clock::now();
  ckpt::Writer w;
  w.mark(0x51);
  w.u64(config_.seed);
  w.i64(engine_.shards);
  w.u64(nodes_.size());
  w.u64(links_.size());
  w.u64(sources_.size());
  // Resume cursor: where the engine loop picks back up.
  if (!sharded_) {
    w.u64(ckpt_slice_);
  } else {
    w.u64(ckpt_pause_idx_);
    w.f64(ckpt_clock_);
    w.b(ckpt_tie_done_);
  }
  master_rng_.save(w);
  const EventQueueCodec codec = make_codec();
  if (!sharded_) {
    events_.save(w, codec);
  } else {
    // Window barrier: the channels were drained before any pause ran, so
    // the complete pending-event state lives in the shard queues.
    for (const auto& shard : shards_) shard->events.save(w, codec);
  }
  w.mark(0x52);
  for (const auto& node : nodes_) node->save(w);
  for (const auto& link : links_) link->save(w);
  for (const auto& source : sources_) source->save(w);
  w.mark(0x53);
  for (const auto& samples : flow_delays_) samples.save(w);
  w.u64(lfi_checks_);
  w.u64(lfi_violations_);
  w.u64(timeseries_.size());
  for (const auto& tp : timeseries_) {
    w.f64(tp.t);
    w.u64(tp.delivered);
    w.f64(tp.mean_delay_s);
    w.u64(tp.dropped);
  }
  w.f64(window_delay_sum_);
  w.u64(window_delivered_);
  w.u64(window_dropped_);
  for (const auto& hold : link_holds_) {
    w.b(hold.admin_down);
    w.b(hold.flap_down);
    w.b(hold.duty_down);
  }
  w.b(monitor_ != nullptr);
  if (monitor_ != nullptr) monitor_->save(w);
  w.b(stability_ != nullptr);
  if (stability_ != nullptr) stability_->save(w);
  for (std::uint64_t v : stab_flow_delivered_) w.u64(v);
  for (double v : stab_flow_delay_sum_) w.f64(v);
  w.u64(injected_);
  w.u64(total_delivered_);
  w.mark(0x54);
  if (telemetry_enabled_) {
    telemetry_.save(w);
    for (const auto& acc : flow_accum_) {
      w.u64(acc.delivered);
      w.f64(acc.delay_sum_s);
      w.u64(acc.measured_delivered);
      w.f64(acc.measured_delay_sum_s);
      w.u64(acc.dropped);
    }
    w.b(recorder_ != nullptr);
    if (recorder_ != nullptr) recorder_->save(w);
    w.b(sampler_ != nullptr);
    if (sampler_ != nullptr) sampler_->save(w);
  }
  if (sharded_) {
    w.mark(0x55);
    for (const auto& shard : shards_) {
      w.u64(shard->injected);
      w.u64(shard->delivered);
      w.u64(shard->window_dropped);
      w.u64(shard->noflow_window_delivered);
    }
    for (double v : wf_window_delay_sum_) w.f64(v);
    for (std::uint64_t v : wf_window_delivered_) w.u64(v);
    for (const auto& per_shard : sflow_dropped_) {
      for (std::uint64_t v : per_shard) w.u64(v);
    }
    for (const auto& h : flow_hist_) h.save(w);
  }
  w.write_file(path);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  // Informational cost line on stderr — NOT the metrics registry, so
  // telemetry output stays byte-identical with checkpointing on or off.
  std::fprintf(stderr, "[ckpt] save path=%s bytes=%zu ms=%.2f t=%.17g\n",
               path.c_str(), w.payload().size(), ms, now_sim());
}

void NetworkSim::restore_checkpoint(const std::string& path) {
  obs::ProfScope prof_scope(coord_prof_, obs::ProfSection::kCkptLoad);
  const auto wall_start = std::chrono::steady_clock::now();
  ckpt::Reader r = ckpt::Reader::from_file(path);
  r.expect_mark(0x51);
  if (r.u64() != config_.seed) {
    throw ckpt::Error("checkpoint seed does not match this configuration");
  }
  if (r.i64() != engine_.shards) {
    throw ckpt::Error(
        "checkpoint shard count does not match (resume requires the same "
        "engine shard count)");
  }
  const std::uint64_t n_nodes = r.u64();
  const std::uint64_t n_links = r.u64();
  const std::uint64_t n_sources = r.u64();
  if (n_nodes != nodes_.size() || n_links != links_.size() ||
      n_sources != sources_.size()) {
    throw ckpt::Error(
        "checkpoint topology does not match this configuration");
  }
  if (!sharded_) {
    ckpt_slice_ = r.u64();
  } else {
    ckpt_pause_idx_ = r.u64();
    ckpt_clock_ = r.f64();
    ckpt_tie_done_ = r.b();
    if (ckpt_pause_idx_ > pauses_.size()) {
      throw ckpt::Error("checkpoint pause cursor out of range");
    }
    global_now_ = ckpt_clock_;
  }
  master_rng_.load(r);
  const EventQueueCodec codec = make_codec();
  if (!sharded_) {
    events_.load(r, codec);
  } else {
    for (auto& shard : shards_) shard->events.load(r, codec);
  }
  r.expect_mark(0x52);
  for (auto& node : nodes_) node->load(r);
  // SimLink::load restores up_ and the failure epoch directly — deriving
  // them from link_holds_ via apply_link_state() would bump epochs and
  // orphan restored in-flight events.
  for (auto& link : links_) link->load(r);
  for (auto& source : sources_) source->load(r);
  r.expect_mark(0x53);
  for (auto& samples : flow_delays_) samples.load(r);
  lfi_checks_ = r.u64();
  lfi_violations_ = r.u64();
  timeseries_.clear();
  const std::uint64_t n_points = r.u64();
  for (std::uint64_t i = 0; i < n_points; ++i) {
    TimePoint tp;
    tp.t = r.f64();
    tp.delivered = r.u64();
    tp.mean_delay_s = r.f64();
    tp.dropped = r.u64();
    timeseries_.push_back(tp);
  }
  window_delay_sum_ = r.f64();
  window_delivered_ = r.u64();
  window_dropped_ = r.u64();
  for (auto& hold : link_holds_) {
    hold.admin_down = r.b();
    hold.flap_down = r.b();
    hold.duty_down = r.b();
  }
  if (r.b() != (monitor_ != nullptr)) {
    throw ckpt::Error("checkpoint monitor mode mismatch");
  }
  if (monitor_ != nullptr) monitor_->load(r);
  if (r.b() != (stability_ != nullptr)) {
    throw ckpt::Error("checkpoint stability-monitor mode mismatch");
  }
  if (stability_ != nullptr) stability_->load(r);
  for (auto& v : stab_flow_delivered_) v = r.u64();
  for (auto& v : stab_flow_delay_sum_) v = r.f64();
  injected_ = r.u64();
  total_delivered_ = r.u64();
  r.expect_mark(0x54);
  if (telemetry_enabled_) {
    telemetry_.load(r);
    for (auto& acc : flow_accum_) {
      acc.delivered = r.u64();
      acc.delay_sum_s = r.f64();
      acc.measured_delivered = r.u64();
      acc.measured_delay_sum_s = r.f64();
      acc.dropped = r.u64();
    }
    if (r.b() != (recorder_ != nullptr)) {
      throw ckpt::Error("checkpoint flight-recorder mode mismatch");
    }
    if (recorder_ != nullptr) recorder_->load(r);
    if (r.b() != (sampler_ != nullptr)) {
      throw ckpt::Error("checkpoint sampler mode mismatch");
    }
    if (sampler_ != nullptr) sampler_->load(r);
  }
  if (sharded_) {
    r.expect_mark(0x55);
    for (auto& shard : shards_) {
      shard->injected = r.u64();
      shard->delivered = r.u64();
      shard->window_dropped = r.u64();
      shard->noflow_window_delivered = r.u64();
    }
    for (auto& v : wf_window_delay_sum_) v = r.f64();
    for (auto& v : wf_window_delivered_) v = r.u64();
    for (auto& per_shard : sflow_dropped_) {
      for (auto& v : per_shard) v = r.u64();
    }
    for (auto& h : flow_hist_) h.load(r);
  }
  r.expect_end();
  resumed_ = true;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  std::fprintf(stderr, "[ckpt] load path=%s ms=%.2f t=%.17g\n", path.c_str(),
               ms, now_sim());
}

std::optional<obs::Telemetry> NetworkSim::take_partial_telemetry() {
  if (!telemetry_enabled_) return std::nullopt;
  if (sampler_ != nullptr) take_samples(now_sim());
  if (recorder_ != nullptr) telemetry_.trace = recorder_->take_trace();
  return std::move(telemetry_);
}

void NetworkSim::at_safe_boundary() {
  if (config_.cancel != nullptr &&
      config_.cancel->load(std::memory_order_relaxed)) {
    throw SimCancelled();
  }
  if (config_.interrupt != nullptr &&
      config_.interrupt->load(std::memory_order_relaxed)) {
    // Checkpoint first: the snapshot must not contain the flush-only tail
    // sample take_partial_telemetry() adds, or a resumed run would diverge
    // from an uninterrupted one.
    if (!config_.checkpoint_path.empty()) {
      save_checkpoint(config_.checkpoint_path);
    }
    throw SimInterrupted(take_partial_telemetry());
  }
  if (config_.checkpoint_interval > 0 && !config_.checkpoint_path.empty()) {
    save_checkpoint(config_.checkpoint_path);
  }
}

void NetworkSim::monitor_check() {
  monitor_->check(events_.now());
  events_.schedule_timer(TimerClass::kMonitor,
                         events_.now() + config_.monitor_interval,
                         [this] { monitor_check(); }, kOpMonitorTick);
}

void NetworkSim::schedule_faults() {
  const auto& plan = config_.faults;
  for (std::size_t c = 0; c < plan.crashes.size(); ++c) {
    const NodeId x = topo_->find_node(plan.crashes[c].node);
    assert(x != graph::kInvalidNode);
    events_.schedule_at(plan.crashes[c].at, [this, x] { crash_node(x); },
                        kOpCrash, c);
  }
  for (std::size_t rec = 0; rec < plan.recoveries.size(); ++rec) {
    const NodeId x = topo_->find_node(plan.recoveries[rec].node);
    assert(x != graph::kInvalidNode);
    events_.schedule_at(plan.recoveries[rec].at,
                        [this, x] { recover_node(x); }, kOpRecovery, rec);
  }
  const Time sim_end = measure_start_ + config_.duration;
  for (std::size_t fi = 0; fi < plan.flaps.size(); ++fi) {
    const auto& flap = plan.flaps[fi];
    const NodeId a = topo_->find_node(flap.a);
    const NodeId b = topo_->find_node(flap.b);
    assert(a != graph::kInvalidNode && b != graph::kInvalidNode);
    assert(flap.period > 0 && flap.duty > 0 && flap.duty < 1);
    // Each period starts up; the link goes down after the duty fraction and
    // returns at the period boundary. Only whole cycles are scheduled, so a
    // flapped link always ends the run up.
    const Time stop = std::min(flap.stop, sim_end);
    for (Time t = flap.start; t + flap.period <= stop + 1e-9;
         t += flap.period) {
      events_.schedule_at(t + flap.duty * flap.period,
                          [this, a, b] { flap_duplex(a, b, /*down=*/true); },
                          kOpFlap, fi, 1);
      events_.schedule_at(t + flap.period,
                          [this, a, b] { flap_duplex(a, b, /*down=*/false); },
                          kOpFlap, fi, 0);
    }
  }
  for (std::size_t di = 0; di < plan.duty_cycles.size(); ++di) {
    const auto& duty = plan.duty_cycles[di];
    const NodeId a = topo_->find_node(duty.a);
    const NodeId b = topo_->find_node(duty.b);
    assert(a != graph::kInvalidNode && b != graph::kInvalidNode);
    for (const auto& edge : fault::duty_cycle_edges(duty, sim_end)) {
      events_.schedule_at(edge.at, [this, a, b, down = edge.down] {
        duty_duplex(a, b, down);
      }, kOpDuty, di, edge.down ? 1 : 0);
    }
  }
}

void NetworkSim::apply_link_state(LinkId id) {
  const auto& l = topo_->link(id);
  const bool up = !link_holds_[id].admin_down && !link_holds_[id].flap_down &&
                  !link_holds_[id].duty_down && nodes_[l.from]->alive() &&
                  nodes_[l.to]->alive();
  links_[id]->set_up(up);
}

void NetworkSim::apply_incident_links(NodeId node) {
  for (LinkId id = 0; id < static_cast<LinkId>(topo_->num_links()); ++id) {
    const auto& l = topo_->link(id);
    if (l.from == node || l.to == node) apply_link_state(id);
  }
}

void NetworkSim::flap_duplex(NodeId a, NodeId b, bool down) {
  const LinkId ab = topo_->find_link(a, b);
  const LinkId ba = topo_->find_link(b, a);
  assert(ab != graph::kInvalidLink && ba != graph::kInvalidLink);
  link_holds_[ab].flap_down = down;
  link_holds_[ba].flap_down = down;
  apply_link_state(ab);
  apply_link_state(ba);
  // Silent by definition: only hello dead intervals notice the outage.
}

void NetworkSim::duty_duplex(NodeId a, NodeId b, bool down) {
  const LinkId ab = topo_->find_link(a, b);
  const LinkId ba = topo_->find_link(b, a);
  assert(ab != graph::kInvalidLink && ba != graph::kInvalidLink);
  link_holds_[ab].duty_down = down;
  link_holds_[ba].duty_down = down;
  apply_link_state(ab);
  apply_link_state(ba);
  // Silent, like flaps: a sleeping radio sends no teardown message.
}

void NetworkSim::crash_node(NodeId node) {
  if (!nodes_[node]->alive()) return;
  nodes_[node]->crash();
  apply_incident_links(node);  // its links drop, silently
  if (monitor_ != nullptr) monitor_->on_crash(node, now_sim());
}

void NetworkSim::recover_node(NodeId node) {
  if (nodes_[node]->alive()) return;
  nodes_[node]->recover();
  apply_incident_links(node);  // links return (unless still held down)
  if (monitor_ != nullptr) monitor_->on_recover(node, now_sim());
}

void NetworkSim::stability_tick() {
  stability_record(events_.now());
  events_.schedule_timer(TimerClass::kStability,
                         events_.now() + config_.stability.interval,
                         [this] { stability_tick(); }, kOpStabilityTick);
}

void NetworkSim::stability_record(Time now) {
  // Backlog in LinkId order, delivery sums in flow order: the same float
  // additions in the same order for every engine and shard count.
  double queued_bits = 0;
  for (const auto& link : links_) queued_bits += link->queued_bits();
  std::uint64_t delivered = 0;
  double delay_sum = 0;
  for (std::size_t f = 0; f < stab_flow_delivered_.size(); ++f) {
    delivered += stab_flow_delivered_[f];
    delay_sum += stab_flow_delay_sum_[f];
  }
  stability_->record(now, queued_bits, delivered, delay_sum);
  if (sampler_ != nullptr) {
    const StabilityTick& tick = stability_->last();
    telemetry_.stability.push_back(
        obs::StabilitySample{tick.t, tick.queued_bits, tick.slope_bps,
                             tick.window_delay_s, tick.margin});
  }
}

void NetworkSim::timeseries_tick() {
  timeseries_point(events_.now());
  events_.schedule_timer(TimerClass::kTimeseries,
                         events_.now() + config_.timeseries_interval,
                         [this] { timeseries_tick(); }, kOpTimeseriesTick);
}

void NetworkSim::timeseries_point(Time now) {
  TimePoint point;
  point.t = now;
  if (!sharded_) {
    point.delivered = window_delivered_;
    point.mean_delay_s = window_delivered_ > 0
                             ? window_delay_sum_ /
                                   static_cast<double>(window_delivered_)
                             : 0.0;
    point.dropped = window_dropped_;
    window_delay_sum_ = 0;
    window_delivered_ = 0;
    window_dropped_ = 0;
  } else {
    // Per-flow sums reduce in flow order — the same float additions in the
    // same order for every shard count.
    double delay_sum = 0;
    for (std::size_t f = 0; f < wf_window_delivered_.size(); ++f) {
      point.delivered += wf_window_delivered_[f];
      delay_sum += wf_window_delay_sum_[f];
      wf_window_delivered_[f] = 0;
      wf_window_delay_sum_[f] = 0;
    }
    for (auto& shard : shards_) {
      point.delivered += shard->noflow_window_delivered;
      point.dropped += shard->window_dropped;
      shard->noflow_window_delivered = 0;
      shard->window_dropped = 0;
    }
    point.mean_delay_s =
        point.delivered > 0
            ? delay_sum / static_cast<double>(point.delivered)
            : 0.0;
  }
  timeseries_.push_back(point);
}

std::uint64_t NetworkSim::source_emitted(std::size_t flow) const {
  return sources_[flow]->emitted();
}

void NetworkSim::sample_tick() {
  take_samples(events_.now());
  events_.schedule_timer(TimerClass::kSampler,
                         events_.now() + config_.sample_interval,
                         [this] { sample_tick(); }, kOpSamplerTick);
}

void NetworkSim::take_samples(Time now) {
  // A read-only walk over existing counters: no randomness is drawn and no
  // protocol state is touched, so sampling never perturbs packet flows.
  for (LinkId id = 0; id < static_cast<LinkId>(links_.size()); ++id) {
    const auto& link = *links_[id];
    obs::TimeSeriesSampler::LinkCumulative c;
    c.busy_time = link.busy_time();
    c.queue_bits = link.queued_bits();
    c.queue_packets = link.queued_data_packets();
    c.data_bits = link.data_bits();
    c.control_bits = link.control_bits();
    c.drops = link.drops();
    sampler_->record_link(now, static_cast<std::uint32_t>(id), c);
  }
  for (std::size_t f = 0; f < flow_specs_.size(); ++f) {
    const auto& acc = flow_accum_[f];
    obs::TimeSeriesSampler::FlowCumulative c;
    c.injected = source_emitted(f);
    c.delivered = acc.delivered;
    c.delay_sum_s = acc.delay_sum_s;
    c.measured_delivered = acc.measured_delivered;
    c.measured_delay_sum_s = acc.measured_delay_sum_s;
    if (!sharded_) {
      c.dropped = acc.dropped;
    } else {
      // Node-level drops land in the dropping shard's per-flow counter;
      // their sum is the engine-invariant cumulative figure.
      for (const auto& per_shard : sflow_dropped_) c.dropped += per_shard[f];
    }
    sampler_->record_flow(now, static_cast<int>(f), c);
  }
  const auto n = static_cast<NodeId>(topo_->num_nodes());
  if (config_.mode != RoutingMode::kStatic) {
    for (NodeId j = 0; j < n; ++j) {
      obs::TimeSeriesSampler::DestCumulative c;
      double succ_sum = 0;
      double entropy_sum = 0;
      std::uint64_t entries = 0;
      for (NodeId i = 0; i < n; ++i) {
        if (i == j) continue;
        const auto* router = nodes_[i]->router();
        // Versions are monotonic (bumped, never zeroed, across crashes), so
        // summing over every router — dead ones included — keeps the
        // cumulative churn feed monotonic too.
        c.successor_versions += router->mpda().successor_version(j);
        if (!nodes_[i]->alive()) continue;
        const auto choices = router->forwarding(j);
        if (choices.empty()) continue;
        ++entries;
        succ_sum += static_cast<double>(choices.size());
        double h = 0;
        for (const auto& choice : choices) {
          if (choice.weight > 0) h -= choice.weight * std::log2(choice.weight);
        }
        entropy_sum += h;
      }
      if (entries > 0) {
        c.mean_successors = succ_sum / static_cast<double>(entries);
        c.mean_entropy_bits = entropy_sum / static_cast<double>(entries);
      }
      sampler_->record_dest(now, j, c);
    }
  }
  obs::TimeSeriesSampler::ControlCumulative c;
  for (const auto& node : nodes_) {
    c.hellos += node->hellos_sent();
    if (node->router() == nullptr) continue;
    const auto& mpda = node->router()->mpda();
    c.lsus_originated += mpda.lsus_originated();
    c.lsus_retransmitted += mpda.lsus_retransmitted();
    c.lsus_suppressed += mpda.lsus_suppressed();
    c.acks += mpda.acks_sent();
  }
  for (const auto& link : links_) {
    c.control_bits += link->control_bits();
    c.control_dropped += link->control_dropped();
  }
  sampler_->record_control(now, c);
}

void NetworkSim::lfi_check() {
  lfi_sweep(events_.now());
  events_.schedule_timer(TimerClass::kLfi,
                         events_.now() + config_.lfi_check_interval,
                         [this] { lfi_check(); }, kOpLfiTick);
}

void NetworkSim::lfi_sweep(Time now) {
  const auto n = static_cast<NodeId>(topo_->num_nodes());
  ++lfi_checks_;
  for (NodeId j = 0; j < n; ++j) {
    core::LfiSnapshot snap;
    snap.feasible_distance.resize(topo_->num_nodes());
    snap.successors.resize(topo_->num_nodes());
    for (NodeId i = 0; i < n; ++i) {
      const auto& mpda = nodes_[i]->router()->mpda();
      snap.feasible_distance[i] = mpda.feasible_distance(j);
      if (i != j) snap.successors[i] = mpda.successors(j);
    }
    if (!core::feasible_distances_decrease(snap) ||
        !core::successor_graph_loop_free(snap)) {
      ++lfi_violations_;
      MDR_LOG_WARN("LFI violated for destination %d at t=%.6f", j, now);
    }
  }
}

void NetworkSim::schedule_link_toggles() {
  for (std::size_t ti = 0; ti < config_.link_toggles.size(); ++ti) {
    const auto& toggle = config_.link_toggles[ti];
    const NodeId a = topo_->find_node(toggle.a);
    const NodeId b = topo_->find_node(toggle.b);
    assert(a != graph::kInvalidNode && b != graph::kInvalidNode);
    events_.schedule_at(toggle.at,
                        [this, a, b, up = toggle.up, silent = toggle.silent] {
                          toggle_duplex(a, b, up, silent);
                        },
                        kOpLinkToggle, ti);
  }
}

void NetworkSim::toggle_duplex(NodeId a, NodeId b, bool up, bool silent) {
  const LinkId ab = topo_->find_link(a, b);
  const LinkId ba = topo_->find_link(b, a);
  assert(ab != graph::kInvalidLink && ba != graph::kInvalidLink);
  link_holds_[ab].admin_down = !up;
  link_holds_[ba].admin_down = !up;
  apply_link_state(ab);
  apply_link_state(ba);
  if (silent) return;  // nobody is told; hello timeouts must catch it
  if (up) {
    nodes_[a]->neighbor_link_restored(b);
    nodes_[b]->neighbor_link_restored(a);
  } else {
    nodes_[a]->neighbor_link_failed(b);
    nodes_[b]->neighbor_link_failed(a);
  }
}

void NetworkSim::build_pause_plan() {
  const Time sim_end = measure_start_ + config_.duration;
  const Time horizon = sim_end + 0.5;  // matches run()'s drain horizon
  // Rank 0: admin link toggles, in plan order.
  for (const auto& toggle : config_.link_toggles) {
    const NodeId a = topo_->find_node(toggle.a);
    const NodeId b = topo_->find_node(toggle.b);
    assert(a != graph::kInvalidNode && b != graph::kInvalidNode);
    pauses_.push_back(
        Pause{toggle.at, 0,
              [this, a, b, up = toggle.up, silent = toggle.silent] {
                toggle_duplex(a, b, up, silent);
              }});
  }
  const auto& plan = config_.faults;
  // Rank 1: flap schedule — the same whole-cycle expansion as
  // schedule_faults().
  for (const auto& flap : plan.flaps) {
    const NodeId a = topo_->find_node(flap.a);
    const NodeId b = topo_->find_node(flap.b);
    assert(a != graph::kInvalidNode && b != graph::kInvalidNode);
    assert(flap.period > 0 && flap.duty > 0 && flap.duty < 1);
    const Time stop = std::min(flap.stop, sim_end);
    for (Time t = flap.start; t + flap.period <= stop + 1e-9;
         t += flap.period) {
      pauses_.push_back(Pause{t + flap.duty * flap.period, 1, [this, a, b] {
                                flap_duplex(a, b, /*down=*/true);
                              }});
      pauses_.push_back(Pause{t + flap.period, 1, [this, a, b] {
                                flap_duplex(a, b, /*down=*/false);
                              }});
    }
  }
  // Rank 2: duty-cycle schedule — the shared expansion from
  // fault/duty_cycle.h, so both engines agree on every transition instant.
  for (const auto& duty : plan.duty_cycles) {
    const NodeId a = topo_->find_node(duty.a);
    const NodeId b = topo_->find_node(duty.b);
    assert(a != graph::kInvalidNode && b != graph::kInvalidNode);
    for (const auto& edge : fault::duty_cycle_edges(duty, sim_end)) {
      pauses_.push_back(Pause{edge.at, 2, [this, a, b, down = edge.down] {
                                duty_duplex(a, b, down);
                              }});
    }
  }
  // Ranks 3/4: crashes strictly before recoveries at an equal instant.
  for (const auto& ev : plan.crashes) {
    const NodeId x = topo_->find_node(ev.node);
    assert(x != graph::kInvalidNode);
    pauses_.push_back(Pause{ev.at, 3, [this, x] { crash_node(x); }});
  }
  for (const auto& ev : plan.recoveries) {
    const NodeId x = topo_->find_node(ev.node);
    assert(x != graph::kInvalidNode);
    pauses_.push_back(Pause{ev.at, 4, [this, x] { recover_node(x); }});
  }
  // Ranks 5-9: the periodic observers. Each series mirrors its legacy
  // wheel-timer chain: first tick one interval in, last tick at or before
  // the drain horizon.
  if (monitor_ != nullptr) {
    for (Time t = config_.monitor_interval; t <= horizon;
         t += config_.monitor_interval) {
      pauses_.push_back(Pause{t, 5, [this, t] { monitor_->check(t); }});
    }
  }
  if (config_.lfi_check_interval > 0 && config_.mode != RoutingMode::kStatic) {
    for (Time t = config_.lfi_check_interval; t <= horizon;
         t += config_.lfi_check_interval) {
      pauses_.push_back(Pause{t, 6, [this, t] { lfi_sweep(t); }});
    }
  }
  if (config_.timeseries_interval > 0) {
    for (Time t = config_.timeseries_interval; t <= horizon;
         t += config_.timeseries_interval) {
      pauses_.push_back(Pause{t, 7, [this, t] { timeseries_point(t); }});
    }
  }
  if (sampler_ != nullptr) {
    for (Time t = config_.sample_interval; t <= horizon;
         t += config_.sample_interval) {
      pauses_.push_back(Pause{t, 8, [this, t] { take_samples(t); }});
    }
  }
  if (stability_ != nullptr) {
    // Same phase as the legacy chain: the first observation lands one
    // interval after traffic starts.
    for (Time t = config_.traffic_start + config_.stability.interval;
         t <= horizon; t += config_.stability.interval) {
      pauses_.push_back(Pause{t, 9, [this, t] { stability_record(t); }});
    }
  }
  // Rank 10: checkpoint pauses, strictly after every same-instant activity
  // so the snapshot captures the instant's full effects. Placeholders only —
  // the handlers bind after the sort, because each must know its own pause
  // index to record the resume cursor.
  if (config_.checkpoint_interval > 0 && !config_.checkpoint_path.empty()) {
    for (Time t = config_.checkpoint_interval; t <= horizon;
         t += config_.checkpoint_interval) {
      pauses_.push_back(Pause{t, 10, nullptr});
    }
  }
  // Anything past the drain horizon could never execute under the legacy
  // engine either; dropping it lets the window loop stop exactly there.
  std::erase_if(pauses_, [horizon](const Pause& p) { return p.at > horizon; });
  std::stable_sort(pauses_.begin(), pauses_.end(),
                   [](const Pause& x, const Pause& y) {
                     return x.at != y.at ? x.at < y.at : x.rank < y.rank;
                   });
  // Bind the checkpoint placeholders: each records exactly where the window
  // loop resumes — clock at its own pause time, the instant's inclusive tie
  // run done, every pause up to and including itself executed.
  for (std::size_t i = 0; i < pauses_.size(); ++i) {
    if (pauses_[i].fn) continue;
    pauses_[i].fn = [this, t = pauses_[i].at, next = i + 1] {
      ckpt_pause_idx_ = next;
      ckpt_clock_ = t;
      ckpt_tie_done_ = true;
      save_checkpoint(config_.checkpoint_path);
    };
  }
}

void NetworkSim::drain_channels() {
  const auto num_shards = static_cast<std::size_t>(engine_.shards);
  for (std::size_t q = 0; q < num_shards; ++q) {
    EventQueue& dst = shards_[q]->events;
    for (std::size_t p = 0; p < num_shards; ++p) {
      if (p == q) continue;
      channels_[p * num_shards + q]->drain([&dst](HandoffItem&& item) {
        dst.schedule_delivery_keyed(item.deliver_at, item.link, item.epoch,
                                    std::move(item.packet), item.key);
      });
    }
  }
}

void NetworkSim::run_parallel_loop() {
  const int num_shards = engine_.shards;
  const Time horizon = measure_start_ + config_.duration + 0.5;
  const Time inf = std::numeric_limits<Time>::infinity();

  // Window protocol: workers advance their shard strictly below the window
  // end W (run_until_strict), so a cross-shard delivery produced mid-window
  // can land exactly at W and still be pending when it is drained at the
  // barrier. W = min(next pause, earliest pending event + lookahead); at a
  // pause time T, a single INCLUSIVE run executes the events at exactly T
  // before the pause handlers observe the network.
  enum class Cmd { kWindow, kTie, kDone };
  struct Control {
    Cmd cmd = Cmd::kWindow;
    Time cmd_time = 0;
    std::size_t pause_idx = 0;
    Time clock = 0;  ///< every shard's clock once the pending command ran
    bool tie_done = false;
  };
  Control ctl;
  if (resumed_) {
    // Replay the Control state the checkpoint recorded; the first barrier
    // completion then sizes the next window from exactly the saved
    // decision point.
    ctl.pause_idx = ckpt_pause_idx_;
    ctl.clock = ckpt_clock_;
    ctl.tie_done = ckpt_tie_done_;
    global_now_ = ckpt_clock_;
  }

  const auto next_target = [&]() -> Time {
    return ctl.pause_idx < pauses_.size()
               ? std::min(pauses_[ctl.pause_idx].at, horizon)
               : horizon;
  };
  const auto min_next_event = [&](Time bound) -> Time {
    Time t = inf;
    for (auto& shard : shards_) {
      t = std::min(t, shard->events.next_event_before(bound));
    }
    return t;
  };

  // The whole coordinator runs inside the barrier completion hook: the last
  // arriving worker executes it while every other worker is parked, so no
  // state below needs atomics — the barrier's generation release/acquire
  // publishes it.
  const auto completion = [&] {
    if (coord_prof_ != nullptr) {
      // Fold the window that just ended into the imbalance sums. Every
      // worker is parked, so the slots are quiescent; all-idle windows
      // (pure clock advancement) are skipped.
      std::uint64_t max_busy = 0, sum_busy = 0;
      for (std::uint64_t& busy : window_busy_ns_) {
        max_busy = std::max(max_busy, busy);
        sum_busy += busy;
        busy = 0;
      }
      if (max_busy > 0) {
        ++prof_windows_;
        prof_window_max_busy_ns_ += max_busy;
        prof_window_mean_busy_ns_ += sum_busy / window_busy_ns_.size();
      }
    }
    {
      obs::ProfScope handoff(coord_prof_, obs::ProfSection::kEngineHandoff);
      drain_channels();
    }
    // A barrier with drained channels is a valid snapshot instant: every
    // worker is parked and ctl holds the complete resume cursor.
    if (config_.cancel != nullptr &&
        config_.cancel->load(std::memory_order_relaxed)) {
      stop_reason_ = StopReason::kCancelled;
      ctl.cmd = Cmd::kDone;
      return;
    }
    if (config_.interrupt != nullptr &&
        config_.interrupt->load(std::memory_order_relaxed)) {
      if (!config_.checkpoint_path.empty()) {
        ckpt_pause_idx_ = ctl.pause_idx;
        ckpt_clock_ = ctl.clock;
        ckpt_tie_done_ = ctl.tie_done;
        save_checkpoint(config_.checkpoint_path);
      }
      stop_reason_ = StopReason::kInterrupted;
      ctl.cmd = Cmd::kDone;
      return;
    }
    for (;;) {
      const Time target = next_target();
      if (ctl.clock < target) {
        // Advance: run strictly below W. A window bounded by lookahead can
        // never cut in front of a cross-shard packet (deliver >= t_min +
        // lookahead >= W); one bounded by the target stops for the pause.
        const Time t_min = min_next_event(target);
        Time w = target;
        if (t_min + lookahead_ < target) w = t_min + lookahead_;
        ctl.cmd = Cmd::kWindow;
        ctl.cmd_time = w;
        ctl.clock = w;
        ctl.tie_done = false;
        global_now_ = w;
        return;
      }
      // clock == target: finish the instant (inclusive tie run) first.
      if (!ctl.tie_done) {
        ctl.tie_done = true;
        if (min_next_event(target) <= target) {
          ctl.cmd = Cmd::kTie;
          ctl.cmd_time = target;
          global_now_ = target;
          return;
        }
      }
      if (ctl.pause_idx < pauses_.size() &&
          pauses_[ctl.pause_idx].at <= target) {
        // Execute every pause due at this instant, in (rank, plan) order.
        // Handlers only schedule into the future (positive service times and
        // timer phases), so the tie run needs no repeat.
        global_now_ = target;
        while (ctl.pause_idx < pauses_.size() &&
               pauses_[ctl.pause_idx].at == target) {
          pauses_[ctl.pause_idx].fn();
          ++ctl.pause_idx;
        }
        continue;  // the target moved; size the next window
      }
      assert(ctl.clock >= horizon);
      ctl.cmd = Cmd::kDone;
      return;
    }
  };

  WindowBarrier barrier(num_shards, completion);
  const auto worker = [&](int s) {
    // Log lines from shard events are stamped with the coordinator clock
    // (within one lookahead of the shard clock mid-window).
    const ScopedLogClock log_clock(&global_now_);
    EventQueue& queue = shards_[static_cast<std::size_t>(s)]->events;
    obs::Profiler* prof =
        profilers_.empty() ? nullptr
                           : profilers_[static_cast<std::size_t>(s)].get();
    for (;;) {
      {
        // Stall = parked at the barrier. The last arriver's stall also
        // covers the completion hook it executes; the hook's own work bills
        // to the separate coordinator profiler.
        obs::ProfScope stall(prof, obs::ProfSection::kEngineStall);
        barrier.arrive_and_wait();
      }
      if (ctl.cmd == Cmd::kDone) break;
      const std::uint64_t busy_start =
          prof != nullptr ? obs::Profiler::now_ns() : 0;
      {
        obs::ProfScope busy(prof, obs::ProfSection::kEngineBusy);
        if (ctl.cmd == Cmd::kWindow) {
          queue.run_until_strict(ctl.cmd_time);
        } else {
          queue.run_until(ctl.cmd_time);
        }
      }
      if (prof != nullptr) {
        window_busy_ns_[static_cast<std::size_t>(s)] +=
            obs::Profiler::now_ns() - busy_start;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_shards) - 1);
  for (int s = 1; s < num_shards; ++s) threads.emplace_back(worker, s);
  worker(0);  // the calling thread drives shard 0
  for (auto& t : threads) t.join();
  if (stop_reason_ == StopReason::kCancelled) throw SimCancelled();
  if (stop_reason_ == StopReason::kInterrupted) {
    throw SimInterrupted(take_partial_telemetry());
  }
  global_now_ = horizon;
}

SimResult NetworkSim::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  if (!config_.resume_from.empty()) restore_checkpoint(config_.resume_from);
  const Time stop = measure_start_ + config_.duration;
  if (sharded_) {
    run_parallel_loop();
    for ([[maybe_unused]] const auto& shard : shards_) {
      assert(shard->events.pending_source_events() == 0);
    }
    if (sampler_ != nullptr) take_samples(global_now_);
  } else {
    // Stamp every MDR_LOG line emitted while events run with the sim time.
    const ScopedLogClock log_clock(events_.now_ptr());
    const Time horizon = stop + 0.5;  // drain: in-flight packets still land
    const bool sliced = config_.checkpoint_interval > 0 ||
                        config_.interrupt != nullptr ||
                        config_.cancel != nullptr;
    {
      // Umbrella over queue advancement: at the default profiling level the
      // per-event sections inside are count-only and this scope carries
      // their wall time (obs/prof.h). Timed children — protocol phases,
      // checkpoint saves at slice boundaries — subtract out of its self
      // time as usual.
      obs::ProfScope busy(coord_prof_, obs::ProfSection::kEngineBusy);
      if (!sliced) {
        events_.run_until(horizon);
      } else {
        // The same run in slices: run_until(a) followed by run_until(b)
        // executes the identical event sequence as run_until(b) alone, so
        // boundaries for checkpoints and interrupt checks cost nothing —
        // checkpoint-enabled and plain runs stay byte-identical.
        const Duration step = config_.checkpoint_interval > 0
                                  ? config_.checkpoint_interval
                                  : 1.0;
        for (;;) {
          const Time next = step * static_cast<double>(ckpt_slice_ + 1);
          if (next >= horizon) break;
          events_.run_until(next);
          ++ckpt_slice_;
          at_safe_boundary();
        }
        events_.run_until(horizon);
      }
    }
    // Sources never schedule past their stop time, so after the drain only
    // protocol events (timers, retransmissions) may remain pending.
    assert(events_.pending_source_events() == 0);
    // Tail window (sums reconcile).
    if (sampler_ != nullptr) take_samples(events_.now());
  }

  // Result assembly is a profiled section of its own; enter/exit is manual
  // (not a ProfScope) so the section is closed before make_prof_report
  // snapshots the tracks below.
  if (coord_prof_ != nullptr) coord_prof_->enter(obs::ProfSection::kSimReport);
  SimResult result;
  result.events_processed = events_.processed();
  for (const auto& shard : shards_) {
    result.shard_events.push_back(shard->events.processed());
    result.events_processed += shard->events.processed();
  }
  result.lfi_checks = lfi_checks_;
  result.lfi_violations = lfi_violations_;
  result.timeseries = timeseries_;
  double delay_weighted = 0;
  for (std::size_t f = 0; f < flow_specs_.size(); ++f) {
    const auto& spec = flow_specs_[f];
    const auto& samples = flow_delays_[f];
    FlowResult fr;
    fr.flow_id = static_cast<int>(f);
    fr.src = spec.src;
    fr.dst = spec.dst;
    fr.offered_bps = spec.rate_bps;
    fr.delivered = samples.count();
    if (!samples.empty()) {
      fr.mean_delay_s = samples.mean();
      fr.p95_delay_s = samples.percentile(0.95);
      OnlineStats s;
      for (double d : samples.values()) s.add(d);
      fr.stddev_delay_s = s.stddev();
      delay_weighted += samples.mean() * static_cast<double>(samples.count());
      result.delivered += samples.count();
    }
    result.flows.push_back(fr);
  }
  result.avg_delay_s =
      result.delivered > 0
          ? delay_weighted / static_cast<double>(result.delivered)
          : 0;
  for (const auto& node : nodes_) {
    result.dropped_no_route += node->drops_no_route();
    result.dropped_ttl += node->drops_ttl();
    result.dropped_dead += node->drops_dead();
    result.control_garbage += node->control_garbage();
    result.control_messages += node->control_messages_sent();
    if (node->router() == nullptr) continue;  // static: no control plane
    const auto& mpda = node->router()->mpda();
    NodeControlStats stats;
    stats.node = std::string(topo_->name(node->id()));
    stats.lsus_originated = mpda.lsus_originated();
    stats.lsus_retransmitted = mpda.lsus_retransmitted();
    stats.lsus_suppressed = mpda.lsus_suppressed();
    stats.acks = mpda.acks_sent();
    stats.damped_withdrawals = node->damped_withdrawals();
    result.lsus_originated += stats.lsus_originated;
    result.lsus_retransmitted += stats.lsus_retransmitted;
    result.lsus_suppressed += stats.lsus_suppressed;
    result.acks_sent += stats.acks;
    result.damped_withdrawals += stats.damped_withdrawals;
    result.node_control.push_back(std::move(stats));
  }
  if (monitor_ != nullptr) result.monitor = monitor_->report();
  if (stability_ != nullptr) result.stability = stability_->report();
  for (LinkId id = 0; id < static_cast<LinkId>(links_.size()); ++id) {
    const auto& link = *links_[id];
    result.dropped_queue += link.drops();
    result.control_bits += link.control_bits();
    result.control_dropped += link.control_dropped();
    result.control_dropped_queue += link.control_dropped_queue();
    result.control_dropped_wire += link.control_dropped_wire();
    result.control_dropped_flush += link.control_dropped_flush();
    result.control_dropped_down += link.control_dropped_down();
    const auto& l = topo_->link(id);
    result.links.push_back(LinkLoad{
        std::string(topo_->name(l.from)), std::string(topo_->name(l.to)),
        link.data_bits(), link.control_bits(),
        link.utilization_estimate(now_sim())});
  }
  if (telemetry_enabled_) {
    if (recorder_ != nullptr) telemetry_.trace = recorder_->take_trace();
    if (sharded_) {
      // The per-flow histograms (single writer each) merge in flow order:
      // the same bucket additions for every shard count.
      auto& h = telemetry_.metrics.histogram("flow_delay_s");
      for (const auto& fh : flow_hist_) h.merge(fh);
    }
    auto& m = telemetry_.metrics;
    m.counter("packets.injected") += injected_total();
    m.counter("packets.delivered") += delivered_total();
    m.counter("packets.delivered_measured") += result.delivered;
    m.counter("packets.dropped_no_route") += result.dropped_no_route;
    m.counter("packets.dropped_ttl") += result.dropped_ttl;
    m.counter("packets.dropped_dead") += result.dropped_dead;
    m.counter("packets.dropped_queue") += result.dropped_queue;
    m.counter("control.messages") += result.control_messages;
    m.counter("control.lsus_originated") += result.lsus_originated;
    m.counter("control.lsus_retransmitted") += result.lsus_retransmitted;
    m.counter("control.lsus_suppressed") += result.lsus_suppressed;
    m.counter("control.acks") += result.acks_sent;
    m.counter("control.dropped") += result.control_dropped;
    m.gauge("delay.avg_s") = result.avg_delay_s;
    m.gauge("control.bits") = result.control_bits;
    result.telemetry = std::move(telemetry_);
  }
  if (coord_prof_ != nullptr) coord_prof_->exit();
  if (config_.prof) {
    const auto wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    result.prof = make_prof_report(wall_ns);
    std::vector<const obs::SpanRecorder*> recorders;
    recorders.reserve(span_recorders_.size());
    for (const auto& r : span_recorders_) recorders.push_back(r.get());
    result.convergence = obs::assemble_spans(recorders);
  }
  return result;
}

obs::ProfReport NetworkSim::make_prof_report(std::uint64_t wall_ns) const {
  obs::ProfReport report;
  const auto contexts =
      sharded_ ? static_cast<std::size_t>(engine_.shards) : std::size_t{1};
  for (std::size_t s = 0; s < profilers_.size(); ++s) {
    obs::ProfReport::Track track;
    if (!sharded_) {
      track.label = "main";
    } else if (s < contexts) {
      track.label = "shard" + std::to_string(s);
    } else {
      track.label = "coord";
    }
    track.sections = profilers_[s]->sections();
    report.scopes += profilers_[s]->scopes();
    report.counted += profilers_[s]->counted();
    report.clock_cost_ns =
        std::max(report.clock_cost_ns, profilers_[s]->clock_cost_ns());
    report.tracks.push_back(std::move(track));
  }
  report.windows = prof_windows_;
  report.window_max_busy_ns = prof_window_max_busy_ns_;
  report.window_mean_busy_ns = prof_window_mean_busy_ns_;
  report.shards = sharded_ ? engine_.shards : 0;
  report.wall_ns = wall_ns;
  return report;
}

SimResult run_simulation(const graph::Topology& topo,
                         const std::vector<topo::FlowSpec>& flows,
                         const SimConfig& config) {
  NetworkSim sim(topo, flows, config);
  return sim.run();
}

SimResult run_simulation(const graph::Topology& topo,
                         const std::vector<topo::FlowSpec>& flows,
                         const SimConfig& config, const EngineSpec& engine) {
  NetworkSim sim(topo, flows, config, engine);
  return sim.run();
}

}  // namespace mdr::sim
