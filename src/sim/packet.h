// Simulated packets: data packets belonging to measured flows, and control
// packets carrying encoded LSU messages in-band.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/ckpt.h"
#include "graph/topology.h"
#include "util/time.h"

namespace mdr::sim {

struct Packet {
  enum class Kind : std::uint8_t { kData, kControl };

  Kind kind = Kind::kData;
  graph::NodeId src = graph::kInvalidNode;
  graph::NodeId dst = graph::kInvalidNode;
  double size_bits = 0;
  Time created = 0;
  int flow_id = -1;  ///< index into the experiment's flow list; -1 = control
  int ttl = 64;      ///< hop budget; transient re-routing cannot loop forever
  std::vector<std::uint8_t> payload;  ///< encoded LSU for control packets
};

/// Link-layer header overhead charged to every packet on the wire (bits).
inline constexpr double kHeaderBits = 160;

inline void save_packet(ckpt::Writer& w, const Packet& p) {
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.i64(p.src);
  w.i64(p.dst);
  w.f64(p.size_bits);
  w.f64(p.created);
  w.i64(p.flow_id);
  w.i64(p.ttl);
  w.bytes(p.payload);
}

inline Packet load_packet(ckpt::Reader& r) {
  Packet p;
  p.kind = static_cast<Packet::Kind>(r.u8());
  p.src = static_cast<graph::NodeId>(r.i64());
  p.dst = static_cast<graph::NodeId>(r.i64());
  p.size_bits = r.f64();
  p.created = r.f64();
  p.flow_id = static_cast<int>(r.i64());
  p.ttl = static_cast<int>(r.i64());
  p.payload = r.bytes();
  return p;
}

}  // namespace mdr::sim
