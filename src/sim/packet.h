// Simulated packets: data packets belonging to measured flows, and control
// packets carrying encoded LSU messages in-band.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.h"
#include "util/time.h"

namespace mdr::sim {

struct Packet {
  enum class Kind : std::uint8_t { kData, kControl };

  Kind kind = Kind::kData;
  graph::NodeId src = graph::kInvalidNode;
  graph::NodeId dst = graph::kInvalidNode;
  double size_bits = 0;
  Time created = 0;
  int flow_id = -1;  ///< index into the experiment's flow list; -1 = control
  int ttl = 64;      ///< hop budget; transient re-routing cannot loop forever
  std::vector<std::uint8_t> payload;  ///< encoded LSU for control packets
};

/// Link-layer header overhead charged to every packet on the wire (bits).
inline constexpr double kHeaderBits = 160;

}  // namespace mdr::sim
