#include "sim/experiment.h"

#include <cassert>
#include <iomanip>
#include <ostream>

#include "flow/evaluate.h"
#include "flow/network.h"

namespace mdr::sim {

OptReference compute_opt_reference(const graph::Topology& topo,
                                   const std::vector<topo::FlowSpec>& flows,
                                   double mean_packet_bits,
                                   const gallager::Options& opt) {
  const flow::FlowNetwork net(topo, mean_packet_bits);
  const auto traffic = topo::to_traffic_matrix(topo, flows);
  auto result = gallager::minimize(net, traffic, opt);

  OptReference ref{std::move(result.phi), {}, result.total_delay_rate,
                   result.average_delay_s, result.feasible, result.iterations};
  const auto assignment = flow::compute_flows(net, traffic, ref.phi);
  const auto delays = flow::commodity_delays(net, ref.phi, assignment.link_flows);
  for (const auto& f : flows) {
    const auto src = topo.find_node(f.src);
    const auto dst = topo.find_node(f.dst);
    assert(src != graph::kInvalidNode && dst != graph::kInvalidNode);
    ref.flow_delay_s.push_back(delays(src, dst));
  }
  return ref;
}

SimResult run_with_static_phi(const graph::Topology& topo,
                              const std::vector<topo::FlowSpec>& flows,
                              SimConfig config,
                              const flow::RoutingParameters& phi) {
  config.mode = RoutingMode::kStatic;
  config.static_phi = &phi;
  return run_simulation(topo, flows, config);
}

DelayTable::DelayTable(std::vector<std::string> flow_labels)
    : labels_(std::move(flow_labels)) {}

void DelayTable::add_series(const std::string& name,
                            const std::vector<double>& delays_s) {
  assert(delays_s.size() == labels_.size());
  series_.emplace_back(name, delays_s);
}

std::vector<double> DelayTable::ratio(const std::string& num,
                                      const std::string& den) const {
  const std::vector<double>* n = nullptr;
  const std::vector<double>* d = nullptr;
  for (const auto& [name, values] : series_) {
    if (name == num) n = &values;
    if (name == den) d = &values;
  }
  assert(n != nullptr && d != nullptr);
  std::vector<double> out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    out.push_back((*d)[i] > 0 ? (*n)[i] / (*d)[i] : 0);
  }
  return out;
}

void DelayTable::print(std::ostream& os, const std::string& title) const {
  os << "== " << title << " ==\n";
  os << std::left << std::setw(6) << "flow" << std::setw(18) << "src->dst";
  for (const auto& [name, values] : series_) {
    os << std::right << std::setw(16) << name;
  }
  os << "\n";
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    os << std::left << std::setw(6) << i << std::setw(18) << labels_[i];
    os << std::fixed << std::setprecision(3);
    for (const auto& [name, values] : series_) {
      os << std::right << std::setw(13) << values[i] * 1e3 << " ms";
    }
    os << "\n";
  }
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6);
}

std::vector<double> flow_delays(const SimResult& result) {
  std::vector<double> out;
  out.reserve(result.flows.size());
  for (const auto& f : result.flows) out.push_back(f.mean_delay_s);
  return out;
}

std::vector<std::string> flow_labels(const std::vector<topo::FlowSpec>& flows) {
  std::vector<std::string> out;
  out.reserve(flows.size());
  for (const auto& f : flows) out.push_back(f.src + "->" + f.dst);
  return out;
}

}  // namespace mdr::sim
