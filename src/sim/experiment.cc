#include "sim/experiment.h"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "flow/evaluate.h"
#include "flow/network.h"

namespace mdr::sim {

OptReference compute_opt_reference(const ExperimentSpec& spec,
                                   const gallager::Options& opt) {
  const flow::FlowNetwork net(spec.topo, spec.config.mean_packet_bits);
  const auto traffic = topo::to_traffic_matrix(spec.topo, spec.flows);
  auto result = gallager::minimize(net, traffic, opt);

  OptReference ref{std::move(result.phi), {}, result.total_delay_rate,
                   result.average_delay_s, result.feasible, result.iterations};
  const auto assignment = flow::compute_flows(net, traffic, ref.phi);
  const auto delays = flow::commodity_delays(net, ref.phi, assignment.link_flows);
  for (const auto& f : spec.flows) {
    const auto src = spec.topo.find_node(f.src);
    const auto dst = spec.topo.find_node(f.dst);
    assert(src != graph::kInvalidNode && dst != graph::kInvalidNode);
    ref.flow_delay_s.push_back(delays(src, dst));
  }
  return ref;
}

SimResult run_with_static_phi(const ExperimentSpec& spec,
                              const flow::RoutingParameters& phi) {
  SimConfig config = spec.config;
  config.mode = RoutingMode::kStatic;
  config.static_phi = &phi;
  return run_simulation(spec.topo, spec.flows, config, spec.engine);
}

SimResult run_experiment(const ExperimentSpec& spec, const std::string& mode) {
  assert(mode == "mp" || mode == "sp" || mode == "opt");
  if (mode == "opt") {
    const auto ref = compute_opt_reference(spec);
    return run_with_static_phi(spec, ref.phi);
  }
  SimConfig config = spec.config;
  config.mode =
      mode == "sp" ? RoutingMode::kSinglePath : RoutingMode::kMultipath;
  return run_simulation(spec.topo, spec.flows, config, spec.engine);
}

DelayTable::DelayTable(std::vector<std::string> flow_labels)
    : labels_(std::move(flow_labels)) {}

void DelayTable::add_series(const std::string& name,
                            const std::vector<double>& delays_s,
                            const std::vector<double>& ci95_s) {
  assert(delays_s.size() == labels_.size());
  assert(ci95_s.empty() || ci95_s.size() == labels_.size());
  series_.push_back(Series{name, delays_s, ci95_s});
}

std::vector<double> DelayTable::ratio(const std::string& num,
                                      const std::string& den) const {
  const std::vector<double>* n = nullptr;
  const std::vector<double>* d = nullptr;
  for (const auto& s : series_) {
    if (s.name == num) n = &s.values;
    if (s.name == den) d = &s.values;
  }
  assert(n != nullptr && d != nullptr);
  std::vector<double> out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    out.push_back((*d)[i] > 0 ? (*n)[i] / (*d)[i] : 0);
  }
  return out;
}

void DelayTable::print(std::ostream& os, const std::string& title) const {
  bool any_ci = false;
  for (const auto& s : series_) any_ci |= !s.ci95.empty();
  const int cell = any_ci ? 22 : 16;

  os << "== " << title << " ==\n";
  os << std::left << std::setw(6) << "flow" << std::setw(18) << "src->dst";
  for (const auto& s : series_) {
    os << std::right << std::setw(cell) << s.name;
  }
  os << "\n";
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    os << std::left << std::setw(6) << i << std::setw(18) << labels_[i];
    os << std::fixed << std::setprecision(3);
    for (const auto& s : series_) {
      if (s.ci95.empty()) {
        os << std::right << std::setw(cell - 3) << s.values[i] * 1e3 << " ms";
      } else {
        std::ostringstream cellText;
        cellText << std::fixed << std::setprecision(3) << s.values[i] * 1e3
                 << " ±" << s.ci95[i] * 1e3;
        os << std::right << std::setw(cell - 3) << cellText.str() << " ms";
      }
    }
    os << "\n";
  }
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6);
}

std::vector<double> flow_delays(const SimResult& result) {
  std::vector<double> out;
  out.reserve(result.flows.size());
  for (const auto& f : result.flows) out.push_back(f.mean_delay_s);
  return out;
}

std::vector<std::string> flow_labels(const std::vector<topo::FlowSpec>& flows) {
  std::vector<std::string> out;
  out.reserve(flows.size());
  for (const auto& f : flows) out.push_back(f.src + "->" + f.dst);
  return out;
}

obs::TelemetryNames telemetry_names(const graph::Topology& topo,
                                    const std::vector<topo::FlowSpec>& flows) {
  obs::TelemetryNames names;
  names.nodes.reserve(topo.num_nodes());
  for (std::size_t i = 0; i < topo.num_nodes(); ++i) {
    names.nodes.emplace_back(topo.name(static_cast<graph::NodeId>(i)));
  }
  names.links.reserve(topo.num_links());
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    const auto& l = topo.link(id);
    names.links.emplace_back(std::string(topo.name(l.from)),
                             std::string(topo.name(l.to)));
  }
  names.flows.reserve(flows.size());
  for (const auto& f : flows) names.flows.emplace_back(f.src, f.dst);
  return names;
}

}  // namespace mdr::sim
