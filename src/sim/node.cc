#include "sim/node.h"

#include <cassert>
#include <utility>

#include "proto/lsu.h"

namespace mdr::sim {

using graph::NodeId;

namespace {
// First payload byte of a control packet selects the protocol.
constexpr std::uint8_t kPayloadLsu = 'L';
constexpr std::uint8_t kPayloadHello = 'H';
}  // namespace

SimNode::SimNode(EventQueue& events, NodeId id, std::size_t num_nodes,
                 NodeOptions options, Rng rng, NodeCallbacks callbacks)
    : events_(&events),
      id_(id),
      options_(options),
      rng_(rng),
      callbacks_(std::move(callbacks)),
      num_nodes_(num_nodes) {
  if (options_.mode == RoutingMode::kStatic) {
    static_table_.resize(num_nodes);
  } else {
    core::MpRouterOptions ropts;
    ropts.single_path = options_.mode == RoutingMode::kSinglePath;
    ropts.ah_damping = options_.ah_damping;
    ropts.pacing = options_.pacing;
    router_ = std::make_unique<core::MpRouter>(id, num_nodes, *this, ropts);
    // Flap damping filters hello adjacency events; without hello there is
    // no flapping-detection layer to damp (scenario parsing enforces this).
    assert(!options_.damping.enabled || options_.use_hello);
    if (options_.use_hello) {
      if (options_.damping.enabled) {
        damper_ = std::make_unique<proto::FlapDamper>(options_.damping);
      }
      proto::HelloProtocol::Callbacks callbacks;
      callbacks.adjacency_up = [this](NodeId k) {
        if (damper_ != nullptr && !damper_->on_up(k, events_->now())) {
          return;  // suppressed: held down until the penalty decays
        }
        announced_.insert(k);
        // Paced: a re-announcement inside the link's hold-down is deferred
        // (and cancelled if the adjacency drops again first).
        router_->on_link_up_at(k, initial_cost(*links_.at(k)), events_->now());
      };
      callbacks.adjacency_down = [this](NodeId k) {
        if (damper_ != nullptr) damper_->on_down(k, events_->now());
        // Withdraw only adjacencies routing actually saw: with damping, an
        // up may have been swallowed, and the matching down must be too.
        if (announced_.erase(k) > 0) router_->on_link_down(k);
      };
      callbacks.send_hello = [this](NodeId k, const proto::HelloMessage& msg) {
        const auto it = links_.find(k);
        if (it == links_.end() || !it->second->up()) return;
        Packet p;
        p.kind = Packet::Kind::kControl;
        p.src = id_;
        p.dst = k;
        p.created = events_->now();
        p.payload.push_back(kPayloadHello);
        const auto body = proto::encode_hello(msg);
        p.payload.insert(p.payload.end(), body.begin(), body.end());
        p.size_bits = static_cast<double>(p.payload.size() * 8);
        it->second->enqueue(std::move(p));
        ++hellos_sent_;
      };
      hello_ = std::make_unique<proto::HelloProtocol>(id, options_.hello,
                                                      std::move(callbacks));
    }
  }
}

void SimNode::attach_link(NodeId neighbor, SimLink* link) {
  assert(link != nullptr);
  links_[neighbor] = link;
  cost_state_.emplace(neighbor, cost::DualTimescaleCost(
                                    initial_cost(*link), options_.smoothing));
}

double SimNode::initial_cost(const SimLink& link) const {
  // Zero-load marginal delay: one mean packet's latency.
  return (options_.mean_packet_bits + kHeaderBits) / link.attr().capacity_bps +
         link.attr().prop_delay_s;
}

void SimNode::set_static_choices(NodeId dest,
                                 std::vector<core::ForwardingChoice> choices) {
  assert(options_.mode == RoutingMode::kStatic);
  static_table_[dest] = std::move(choices);
}

void SimNode::start() {
  if (router_ == nullptr) return;  // static mode: no protocol, no timers
  if (hello_ != nullptr) {
    // Adjacencies rise only after the 2-way hello check.
    for (const auto& [neighbor, link] : links_) hello_->physical_up(neighbor);
    schedule_guarded(options_.hello.interval * rng_.uniform(0.1, 0.9),
                     TimerClass::kHello);
  } else {
    for (const auto& [neighbor, link] : links_) {
      router_->on_link_up(neighbor, initial_cost(*link));
    }
  }
  // Random phase offsets prevent network-wide update synchronization
  // (paper Section 4.2, citing the route-synchronization pathology).
  schedule_guarded(options_.ts * rng_.uniform(0.5, 1.0),
                   TimerClass::kShortTerm);
  schedule_guarded(options_.tl * rng_.uniform(0.5, 1.0), TimerClass::kLongTerm);
  schedule_guarded(options_.lsu_retransmit_interval * rng_.uniform(0.5, 1.0),
                   TimerClass::kRetransmit);
  if (options_.pacing.enabled) {
    // Scheduled (and drawing its phase) only when pacing is on, so default
    // runs consume exactly the seed's RNG stream and stay bit-identical.
    schedule_guarded(options_.pacing.min_interval * rng_.uniform(0.5, 1.0),
                     TimerClass::kPacing);
  }
}

void SimNode::schedule_guarded(Duration delay, TimerClass cls) {
  // Recurring protocol timers are the high-multiplicity events of a run;
  // they park on the timer wheel instead of churning the main heap.
  events_->schedule_timer(cls, delay, this, boot_);
}

void (SimNode::*SimNode::timer_method(TimerClass cls))() {
  switch (cls) {
    case TimerClass::kHello:
      return &SimNode::hello_tick;
    case TimerClass::kShortTerm:
      return &SimNode::ts_tick;
    case TimerClass::kLongTerm:
      return &SimNode::tl_tick;
    case TimerClass::kRetransmit:
      return &SimNode::retransmit_tick;
    case TimerClass::kPacing:
      return &SimNode::pace_tick;
    default:
      return nullptr;  // callback-timer classes have no node method
  }
}

void SimNode::set_probe(const obs::Probe& probe) {
  probe_ = probe;
  if (router_ != nullptr) router_->set_probe(probe);
  if (damper_ != nullptr) damper_->set_probe(probe);
}

void SimNode::set_prof(obs::Profiler* p) {
  prof_ = p;
  if (router_ != nullptr) router_->set_prof(p);
}

void SimNode::set_spans(obs::SpanRecorder* s) {
  spans_ = s;
  if (router_ != nullptr) router_->set_spans(s, events_->now_ptr());
}

void SimNode::crash() {
  if (!alive_ || router_ == nullptr) return;  // static nodes do not crash
  alive_ = false;
  probe_.emit(obs::EventType::kCrash);
  ++boot_;  // invalidates every timer of the dead incarnation
  // Wipe immediately: a dead router holds no observable state, and global
  // invariant sweeps (LFI, the chaos monitor) must never read the stale
  // pre-crash tables.
  router_->reset();
  announced_.clear();
  if (damper_ != nullptr) damper_->reset();
  // The cost estimators' smoothing memory died with the process too.
  for (auto& [neighbor, state] : cost_state_) {
    state = cost::DualTimescaleCost(initial_cost(*links_.at(neighbor)),
                                    options_.smoothing);
  }
}

void SimNode::recover() {
  if (alive_ || router_ == nullptr) return;
  alive_ = true;
  probe_.emit(obs::EventType::kRecover, graph::kInvalidNode,
              static_cast<double>(boot_));
  if (hello_ != nullptr) {
    hello_->restart(static_cast<std::uint32_t>(boot_));
  }
  start();  // re-announce physical links, restart timers (fresh phases)
}

void SimNode::retransmit_tick() {
  router_->retransmit_pending();
  schedule_guarded(options_.lsu_retransmit_interval,
                   TimerClass::kRetransmit);
}

void SimNode::pace_tick() {
  router_->pacing_tick(events_->now());
  schedule_guarded(options_.pacing.min_interval, TimerClass::kPacing);
}

void SimNode::hello_tick() {
  hello_->tick(events_->now());
  if (damper_ != nullptr) {
    // Reuse: penalties that decayed below the threshold release their
    // neighbors; any that are still hello-adjacent over an up link get
    // re-announced to routing now.
    for (const NodeId k : damper_->release_reusable(events_->now())) {
      const auto it = links_.find(k);
      if (it == links_.end() || !it->second->up()) continue;
      if (!hello_->adjacent(k)) continue;
      if (announced_.insert(k).second) {
        router_->on_link_up_at(k, initial_cost(*it->second), events_->now());
      }
    }
  }
  schedule_guarded(options_.hello.interval, TimerClass::kHello);
}

void SimNode::ts_tick() {
  std::map<NodeId, double> costs;
  for (const auto& [neighbor, link] : links_) {
    if (!link->up()) continue;
    // Behind hello, routing only knows 2-way-adjacent neighbors — and with
    // damping, only the announced subset of those.
    if (hello_ != nullptr && !hello_->adjacent(neighbor)) continue;
    if (damper_ != nullptr && !announced_.contains(neighbor)) continue;
    const double estimate = link->take_short_estimate();
    costs[neighbor] = cost_state_.at(neighbor).on_short_window(estimate);
  }
  router_->update_short_term_costs(costs);
  schedule_guarded(options_.ts, TimerClass::kShortTerm);
}

void SimNode::tl_tick() {
  for (const auto& [neighbor, link] : links_) {
    if (!link->up()) continue;
    if (hello_ != nullptr && !hello_->adjacent(neighbor)) continue;
    if (damper_ != nullptr && !announced_.contains(neighbor)) continue;
    const double estimate = link->take_long_estimate();
    const auto update = cost_state_.at(neighbor).on_long_window(estimate);
    if (update.report) {
      router_->on_long_term_cost(neighbor, update.cost, events_->now());
    }
  }
  schedule_guarded(options_.tl, TimerClass::kLongTerm);
}

void SimNode::send(NodeId neighbor, const proto::LsuMessage& msg) {
  const auto it = links_.find(neighbor);
  if (it == links_.end() || !it->second->up()) return;
  Packet p;
  p.kind = Packet::Kind::kControl;
  p.src = id_;
  p.dst = neighbor;
  p.created = events_->now();
  p.payload.push_back(kPayloadLsu);
  const auto body = proto::encode(msg);
  p.payload.insert(p.payload.end(), body.begin(), body.end());
  p.size_bits = static_cast<double>(p.payload.size() * 8);
  it->second->enqueue(std::move(p));
  ++control_sent_;
}

void SimNode::receive(Packet packet) {
  if (!alive_) {
    // A dead router's interfaces eat everything. Data packets still enter
    // the conservation ledger as drops.
    if (packet.kind == Packet::Kind::kData) {
      ++drops_dead_;
      if (callbacks_.dropped) callbacks_.dropped(packet);
    }
    return;
  }
  if (packet.kind == Packet::Kind::kControl) {
    if (router_ == nullptr) return;
    if (packet.payload.empty()) {
      ++control_garbage_;
      return;
    }
    const std::span<const std::uint8_t> body(packet.payload.data() + 1,
                                             packet.payload.size() - 1);
    // Corruption on the wire is expected under chaos: anything the codecs
    // reject — or that passes the codec but carries ids the routing tables
    // could not index — is counted and discarded, never processed.
    switch (packet.payload[0]) {
      case kPayloadLsu: {
        std::optional<proto::LsuMessage> msg;
        bool ok;
        {
          obs::ProfScope prof(prof_, obs::ProfSection::kMpdaDecode);
          msg = proto::decode(body);
          ok = msg.has_value() && msg->sender == packet.src;
          if (ok) {
            for (const auto& e : msg->entries) {
              if (e.head >= static_cast<graph::NodeId>(num_nodes_) ||
                  e.tail >= static_cast<graph::NodeId>(num_nodes_)) {
                ok = false;
                break;
              }
            }
          }
        }
        if (!ok) {
          ++control_garbage_;
          break;
        }
        router_->on_lsu(*msg);
        break;
      }
      case kPayloadHello: {
        const auto msg = proto::decode_hello(body);
        if (!msg.has_value() || msg->sender != packet.src) {
          ++control_garbage_;
          break;
        }
        if (hello_ != nullptr) hello_->on_hello(*msg, events_->now());
        break;
      }
      default:
        ++control_garbage_;
    }
    return;
  }
  if (packet.dst == id_) {
    if (callbacks_.delivered) {
      callbacks_.delivered(packet, events_->now() - packet.created);
    }
    return;
  }
  forward(std::move(packet));
}

void SimNode::forward(Packet packet) {
  if (--packet.ttl <= 0) {
    ++drops_ttl_;
    if (callbacks_.dropped) callbacks_.dropped(packet);
    return;
  }
  const NodeId nh = next_hop(packet.dst);
  if (nh == graph::kInvalidNode) {
    ++drops_no_route_;
    if (callbacks_.dropped) callbacks_.dropped(packet);
    return;
  }
  if (spans_ != nullptr) {
    spans_->on_forward(id_, packet.dst, nh, events_->now());
  }
  links_.at(nh)->enqueue(std::move(packet));
}

NodeId SimNode::next_hop(NodeId dest) {
  if (router_ != nullptr) {
    return options_.wrr_forwarding ? router_->pick_next_hop_wrr(dest)
                                   : router_->pick_next_hop(dest, rng_);
  }
  const auto& choices = static_table_[dest];
  if (choices.empty()) return graph::kInvalidNode;
  if (choices.size() == 1) return choices[0].neighbor;
  if (options_.wrr_forwarding) {
    if (static_credits_.empty()) static_credits_.resize(static_table_.size());
    auto& credits = static_credits_[dest];
    if (credits.size() != choices.size()) credits.assign(choices.size(), 0.0);
    std::size_t best = 0;
    for (std::size_t x = 0; x < choices.size(); ++x) {
      credits[x] += choices[x].weight;
      if (credits[x] > credits[best]) best = x;
    }
    credits[best] -= 1.0;
    return choices[best].neighbor;
  }
  std::vector<double> weights;
  weights.reserve(choices.size());
  for (const auto& c : choices) weights.push_back(c.weight);
  return choices[rng_.pick_weighted(weights)].neighbor;
}

bool SimNode::adjacent_to(NodeId neighbor) const {
  if (!alive_) return false;
  // Deliberately the hello-level view: an adjacency the damper suppressed
  // was withdrawn on purpose and must not read as "starved".
  if (hello_ != nullptr) return hello_->adjacent(neighbor);
  if (router_ != nullptr) return router_->mpda().tables().is_neighbor(neighbor);
  return true;  // static mode: no control plane, nothing to starve
}

void SimNode::neighbor_link_failed(NodeId neighbor) {
  if (!alive_) return;
  if (hello_ != nullptr) {
    hello_->physical_down(neighbor);  // signaled: adjacency drops at once
  } else if (router_ != nullptr) {
    router_->on_link_down(neighbor);
  }
}

void SimNode::neighbor_link_restored(NodeId neighbor) {
  if (!alive_) return;
  if (hello_ != nullptr) {
    hello_->physical_up(neighbor);  // adjacency returns after the 2-way check
  } else if (router_ != nullptr) {
    router_->on_link_up_at(neighbor, initial_cost(*links_.at(neighbor)),
                           events_->now());
  }
}

void SimNode::save(ckpt::Writer& w) const {
  w.mark(0x4e);
  rng_.save(w);
  w.b(alive_);
  w.u64(boot_);
  w.b(router_ != nullptr);
  if (router_ != nullptr) router_->save(w);
  w.b(hello_ != nullptr);
  if (hello_ != nullptr) hello_->save(w);
  w.b(damper_ != nullptr);
  if (damper_ != nullptr) damper_->save(w);
  w.u64(announced_.size());
  for (NodeId n : announced_) w.i64(n);
  // static_table_ is installed from the experiment's fixed parameters before
  // start() and never changes; only the WRR credit state mutates.
  w.u64(static_credits_.size());
  for (const auto& credits : static_credits_) {
    w.u64(credits.size());
    for (double c : credits) w.f64(c);
  }
  w.u64(cost_state_.size());
  for (const auto& [nbr, cost] : cost_state_) {
    w.i64(nbr);
    cost.save(w);
  }
  w.u64(drops_no_route_);
  w.u64(drops_ttl_);
  w.u64(drops_dead_);
  w.u64(control_garbage_);
  w.u64(control_sent_);
  w.u64(hellos_sent_);
}

void SimNode::load(ckpt::Reader& r) {
  r.expect_mark(0x4e);
  rng_.load(r);
  alive_ = r.b();
  boot_ = r.u64();
  if (r.b() != (router_ != nullptr))
    throw ckpt::Error("checkpoint router mode mismatch");
  if (router_ != nullptr) router_->load(r);
  if (r.b() != (hello_ != nullptr))
    throw ckpt::Error("checkpoint hello mode mismatch");
  if (hello_ != nullptr) hello_->load(r);
  if (r.b() != (damper_ != nullptr))
    throw ckpt::Error("checkpoint damper mode mismatch");
  if (damper_ != nullptr) damper_->load(r);
  announced_.clear();
  const std::uint64_t announced = r.u64();
  for (std::uint64_t i = 0; i < announced; ++i)
    announced_.insert(static_cast<NodeId>(r.i64()));
  const std::uint64_t rows = r.u64();
  if (rows != static_credits_.size())
    throw ckpt::Error("checkpoint static-credit table mismatch");
  for (auto& credits : static_credits_) {
    const std::uint64_t cols = r.u64();
    if (cols != credits.size())
      throw ckpt::Error("checkpoint static-credit row mismatch");
    for (double& c : credits) c = r.f64();
  }
  cost_state_.clear();
  const std::uint64_t costs = r.u64();
  for (std::uint64_t i = 0; i < costs; ++i) {
    const NodeId nbr = static_cast<NodeId>(r.i64());
    cost::DualTimescaleCost cost(1.0, options_.smoothing);
    cost.load(r);
    cost_state_.emplace(nbr, cost);
  }
  drops_no_route_ = r.u64();
  drops_ttl_ = r.u64();
  drops_dead_ = r.u64();
  control_garbage_ = r.u64();
  control_sent_ = r.u64();
  hellos_sent_ = r.u64();
}

}  // namespace mdr::sim
