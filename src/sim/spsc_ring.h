// Fixed-capacity lock-free single-producer / single-consumer ring.
//
// The sharded engine's cross-shard handoff channel: during a lookahead
// window the owning shard pushes outbound deliveries, and at the window
// barrier the coordinator drains every ring while the workers are parked.
// Push and pop never touch a lock; the producer publishes with a release
// store of the tail index and the consumer acknowledges with a release
// store of the head, so the pair is safe even while a window is running.
//
// Capacity is rounded up to a power of two. A full ring refuses the push
// (try_push returns false) — the caller spills to a producer-local overflow
// buffer instead of blocking, because a shard that blocked mid-window on a
// full ring could deadlock the barrier (see HandoffChannel).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace mdr::sim {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. False when the ring is full (the item is untouched).
  bool try_push(T& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};  ///< consumer cursor
  std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace mdr::sim
