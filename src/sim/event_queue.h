// Discrete-event simulation core: a time-ordered event queue.
//
// Events scheduled for the same instant execute in schedule order (stable
// FIFO tie-break), which keeps runs exactly reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace mdr::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  Time now() const { return now_; }

  /// Stable pointer to the clock, for consumers that need to read the
  /// current time without holding the queue (obs::Probe, ScopedLogClock).
  const Time* now_ptr() const { return &now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void schedule_at(Time t, Callback fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  void schedule_in(Duration delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Executes the earliest event; false if the queue is empty.
  bool run_next();

  /// Executes every event with time <= `t`, then advances the clock to `t`.
  void run_until(Time t);

  void run_for(Duration d) { run_until(now_ + d); }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::size_t processed() const { return processed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace mdr::sim
