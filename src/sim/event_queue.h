// Discrete-event simulation core: a time-ordered event queue.
//
// Events scheduled for the same instant execute in schedule order (stable
// FIFO tie-break), which keeps runs exactly reproducible for a given seed.
//
// The hot path is typed and pooled: the high-frequency simulation events
// (link transmission complete, packet delivery, traffic-source emission,
// node protocol timers) are small tagged records drawn from a free-list
// pool, so the steady-state packet path performs no heap allocation per
// hop. A std::function fallback remains for low-rate control events
// (fault schedules, bring-up, measurement sweeps).
//
// Two containers hold pending events, both ordered by (time, seq):
//
//  * a 4-ary implicit heap of 24-byte {time, seq, record} slots — shallower
//    and more cache-friendly than the former std::priority_queue of
//    std::function events;
//  * a hashed timer wheel for the high-multiplicity periodic timers
//    (hello, Ts/Tl, retransmit, pacing, samplers). Wheel entries cascade
//    into the heap strictly before their due time, so the global execution
//    order is exactly the (time, seq) order of one merged queue and
//    same-seed runs stay bit-identical to a heap-only core.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "ckpt/ckpt.h"
#include "obs/prof.h"
#include "sim/packet.h"
#include "util/time.h"

namespace mdr::sim {

class SimLink;
class SimNode;
class TrafficSource;

/// Translation layer between an EventQueue's pointer-based records and the
/// index-based checkpoint representation. The owning simulator supplies
/// stable entity indices (links/nodes/sources in construction order) and a
/// factory that rebuilds a tagged callback from its (tag, a, b) descriptor —
/// the tag namespace is owned by the simulator (sim/network_sim.cc).
struct EventQueueCodec {
  std::function<std::uint64_t(const SimLink*)> link_index;
  std::function<SimLink*(std::uint64_t)> link_at;
  std::function<std::uint64_t(const SimNode*)> node_index;
  std::function<SimNode*(std::uint64_t)> node_at;
  std::function<std::uint64_t(const TrafficSource*)> source_index;
  std::function<TrafficSource*(std::uint64_t)> source_at;
  std::function<std::function<void()>(std::uint8_t tag, std::uint64_t a,
                                      double b)>
      make_callback;
};

/// What a timer is for. One typed scheduling surface replaces the former
/// per-purpose schedule_timer_* entry points: protocol timers (node-bound,
/// boot-guarded) and maintenance ticks (callback-bound) all declare their
/// class, so shard-local and cross-shard scheduling share a single audited
/// API and per-class schedule counts are observable (timers_scheduled()).
enum class TimerClass : std::uint8_t {
  kHello,       ///< hello protocol tick (node timer)
  kShortTerm,   ///< Ts measurement window (node timer)
  kLongTerm,    ///< Tl measurement window (node timer)
  kRetransmit,  ///< LSU reliable-flooding resend (node timer)
  kPacing,      ///< LSU origination pacing flush (node timer)
  kSampler,     ///< telemetry time-series sample (callback)
  kMonitor,     ///< invariant-monitor sweep (callback)
  kLfi,         ///< loop-free-invariant global check (callback)
  kTimeseries,  ///< delay/throughput window roll (callback)
  kGeneric,     ///< anything else parked on the wheel (callback)
  kStability,   ///< stability-monitor sample (callback)
};
inline constexpr std::size_t kNumTimerClasses = 11;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  Time now() const { return now_; }

  /// Stable pointer to the clock, for consumers that need to read the
  /// current time without holding the queue (obs::Probe, ScopedLogClock).
  const Time* now_ptr() const { return &now_; }

  // --- generic events (std::function fallback) -----------------------------

  /// Schedules `fn` at absolute time `t` (>= now).
  void schedule_at(Time t, Callback fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  void schedule_in(Duration delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Tagged variant: `tag` (nonzero) plus the `a`/`b` descriptor payload let
  /// save()/load() round-trip the event — the owning simulator rebuilds the
  /// closure from the descriptor at restore time. Untagged callback events
  /// still pending at a checkpoint make save() throw, so nothing silently
  /// vanishes across a resume.
  void schedule_at(Time t, Callback fn, std::uint8_t tag, std::uint64_t a = 0,
                   double b = 0);

  // --- timers (the unified typed surface) ----------------------------------

  /// Schedules `fn` at absolute `t` on the timer wheel: same semantics as
  /// schedule_at, but periodic low-rate timers parked here stop churning
  /// the main heap. `cls` tags the timer for auditing (timers_scheduled()).
  void schedule_timer(TimerClass cls, Time t, Callback fn);

  /// Tagged variant (see the tagged schedule_at): checkpointable timer
  /// callback with a (tag, a, b) rebuild descriptor.
  void schedule_timer(TimerClass cls, Time t, Callback fn, std::uint8_t tag,
                      std::uint64_t a = 0, double b = 0);

  void schedule_timer_in(TimerClass cls, Duration delay, Callback fn) {
    schedule_timer(cls, now_ + delay, std::move(fn));
  }

  /// Schedules a node protocol timer after `delay`, parked on the timer
  /// wheel. The class selects the SimNode tick method (hello, Ts, Tl,
  /// retransmit, pacing); the boot guard drops timers of a crashed
  /// incarnation. `cls` must name a node-timer class.
  void schedule_timer(TimerClass cls, Duration delay, SimNode* node,
                      std::uint64_t boot);

  /// Timers ever scheduled under `cls` (audit counter for the typed API).
  std::uint64_t timers_scheduled(TimerClass cls) const {
    return timer_counts_[static_cast<std::size_t>(cls)];
  }

  // --- compat shims (pre-TimerClass spellings) -----------------------------

  void schedule_timer_at(Time t, Callback fn) {
    schedule_timer(TimerClass::kGeneric, t, std::move(fn));
  }

  void schedule_timer_in(Duration delay, Callback fn) {
    schedule_timer(TimerClass::kGeneric, now_ + delay, std::move(fn));
  }

  // --- typed pooled events (the packet hot path) ---------------------------

  /// Link finishes transmitting its in-service packet after `delay`.
  /// Dispatches SimLink::handle_transmit_complete(epoch); the epoch guard
  /// cancels completions that outlive a link failure.
  void schedule_transmit_complete(Duration delay, SimLink* link,
                                  std::uint64_t epoch);

  /// Packet fully propagates after `delay`. Dispatches
  /// SimLink::handle_delivery(epoch, packet).
  void schedule_delivery(Duration delay, SimLink* link, std::uint64_t epoch,
                         Packet packet);

  /// Sharded-engine delivery: schedules at absolute `t` under an explicit
  /// ordering key instead of the local FIFO seq. Keys carry bit 63 (see
  /// sim/parallel_engine.h), so at equal timestamps deliveries order after
  /// every locally-sequenced event and among themselves by (link, wire
  /// FIFO) — the canonical order that makes results independent of how the
  /// network is sharded.
  void schedule_delivery_keyed(Time t, SimLink* link, std::uint64_t epoch,
                               Packet packet, std::uint64_t key);

  /// Traffic-source event at absolute `t` (next arrival, burst boundary).
  /// Dispatches TrafficSource::handle_source_event(op, arg).
  void schedule_source_event(Time t, TrafficSource* source, std::uint8_t op,
                             double arg);

  /// Low-level node-timer primitive (compat shim; prefer the TimerClass
  /// overload, which resolves the method from the class). Dispatches
  /// SimNode::handle_timer(boot, method); the boot guard drops timers of a
  /// crashed incarnation.
  void schedule_node_timer(Duration delay, SimNode* node, std::uint64_t boot,
                           void (SimNode::*method)());

  // --- execution -----------------------------------------------------------

  /// Executes the earliest event; false if the queue is empty.
  bool run_next();

  /// Executes every event with time <= `t`, then advances the clock to `t`.
  void run_until(Time t);

  /// Executes every event with time strictly < `t`, then advances the clock
  /// to `t` (events at exactly `t` stay pending). The sharded engine runs
  /// lookahead windows with this bound: a window ending at W may not touch
  /// events at W itself, because a cross-shard packet can legally arrive
  /// exactly at W.
  void run_until_strict(Time t);

  /// Exact earliest pending event time if it is <= `bound`, +infinity
  /// otherwise (timer-wheel entries due before `bound` are cascaded so the
  /// answer is exact). The shard coordinator sizes windows with this.
  Time next_event_before(Time bound);

  void run_for(Duration d) { run_until(now_ + d); }

  bool empty() const { return heap_.empty() && wheel_count_ == 0; }
  std::size_t pending() const { return heap_.size() + wheel_count_; }
  std::size_t processed() const { return processed_; }

  // --- introspection (tests, benches) --------------------------------------

  /// Traffic-source events currently pending. Sources never schedule past
  /// their stop time, so after the post-run drain this must be zero.
  std::size_t pending_source_events() const { return live_source_events_; }

  /// Event records ever allocated (pool high-water mark). Flat across a
  /// steady state — records are recycled through the free list.
  std::size_t pool_records() const { return pool_.size(); }

  std::size_t heap_pending() const { return heap_.size(); }
  std::size_t wheel_pending() const { return wheel_count_; }

  // --- profiling -----------------------------------------------------------

  /// Attaches a wall-clock profiler: every dispatched record is then timed
  /// under its kind's dispatch.* section. Null (the default) keeps the
  /// dispatch loop on the usual branch-only fast path.
  void set_profiler(obs::Profiler* p) { prof_ = p; }

  // --- checkpointing -------------------------------------------------------

  /// Serializes the complete queue: clock, seq counter, the record pool with
  /// its free list, heap slots, timer-wheel buckets and the cascade cursor —
  /// a restored queue replays the exact same (time, seq) event order.
  /// Throws ckpt::Error if an untagged callback event is pending.
  void save(ckpt::Writer& w, const EventQueueCodec& codec) const;
  void load(ckpt::Reader& r, const EventQueueCodec& codec);

 private:
  enum class Kind : std::uint8_t {
    kCallback,          ///< generic std::function fallback
    kTransmitComplete,  ///< SimLink finished serializing a packet
    kDeliver,           ///< packet reached the far end of a link
    kSourceEmit,        ///< traffic source arrival / burst boundary
    kNodeTimer,         ///< SimNode periodic protocol timer
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Pooled event record: one tagged union-of-payloads. Records live in a
  /// stable deque and are recycled through an intrusive free list; `packet`
  /// and `fn` keep no heap state between uses (moved out at dispatch).
  struct Record {
    Time time = 0;
    std::uint64_t seq = 0;
    Kind kind = Kind::kCallback;
    std::uint8_t op = 0;           ///< kSourceEmit: source-defined opcode
    std::uint32_t next_free = kNil;
    std::uint64_t epoch = 0;       ///< link epoch / node boot guard
    double arg = 0;                ///< kSourceEmit: source-defined payload
    void* target = nullptr;        ///< SimLink* / SimNode* / TrafficSource*
    void (SimNode::*method)() = nullptr;  ///< kNodeTimer
    Packet packet;                 ///< kDeliver
    Callback fn;                   ///< kCallback
  };

  /// Heap slot: the ordering key plus the pool index. Small and trivially
  /// copyable so sift operations move 24 bytes, never a closure.
  struct HeapSlot {
    Time time;
    std::uint64_t seq;
    std::uint32_t rec;
  };

  static bool earlier(const HeapSlot& a, const HeapSlot& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Wheel geometry: 256 slots of 1/16 s cover 16 s per revolution — every
  // periodic protocol timer (hello ~1 s, Ts 2 s, Tl 10 s, retransmit 1 s)
  // lands within one revolution. Longer timers simply survive a cascade
  // scan per revolution. The tick is a power of two so bucket arithmetic
  // is exact in doubles.
  static constexpr std::size_t kWheelSlots = 256;
  static constexpr double kWheelTick = 1.0 / 16.0;

  static std::int64_t bucket(Time t) {
    return static_cast<std::int64_t>(t / kWheelTick);
  }

  std::uint32_t alloc_record(Time t, Kind kind);
  void release_record(std::uint32_t idx);
  void push_heap(std::uint32_t idx);
  void push_wheel(std::uint32_t idx);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Moves every wheel entry that could precede `bound` (or the current
  /// heap top) into the heap, maintaining the cascade invariant: all wheel
  /// entries in buckets < next_cascade_slot_ are already in the heap.
  void cascade_until(Time bound);
  void dispatch_top();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;

  std::deque<Record> pool_;      ///< stable storage; indexed by HeapSlot::rec
  std::uint32_t free_head_ = kNil;

  std::vector<HeapSlot> heap_;   ///< 4-ary implicit min-heap on (time, seq)

  std::array<std::vector<std::uint32_t>, kWheelSlots> wheel_;
  std::int64_t next_cascade_slot_ = 0;
  std::size_t wheel_count_ = 0;

  std::size_t live_source_events_ = 0;

  obs::Profiler* prof_ = nullptr;

  std::array<std::uint64_t, kNumTimerClasses> timer_counts_{};
};

}  // namespace mdr::sim
