#include "sim/scenario.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "sim/experiment.h"
#include "topo/builders.h"

namespace mdr::sim {

namespace {

// Splits a line into whitespace-separated tokens, honoring '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

// Parses "key=value" into (key, value); plain words become (word, "").
std::pair<std::string, std::string> split_kv(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return {token, ""};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

bool parse_double(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

// Collects key=value options from tokens[from..], accepting only keys in
// `allowed`; returns false with a full diagnostic in *bad on a stray token,
// a non-numeric value, or an unknown key. Rejecting unknown keys loudly
// catches typos (`dutycycle ... preiod=4`) that would otherwise silently
// fall back to defaults.
bool parse_options(const std::vector<std::string>& tokens, std::size_t from,
                   const std::vector<const char*>& allowed,
                   std::map<std::string, double>* out, std::string* bad) {
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const auto [key, value] = split_kv(tokens[i]);
    double number = 0;
    if (value.empty() || !parse_double(value, &number)) {
      *bad = "bad option " + tokens[i] + " (expected key=value)";
      return false;
    }
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      *bad = "unknown option key '" + key + "' in `" + tokens[0] +
             "` (allowed:";
      for (const char* name : allowed) {
        *bad += ' ';
        *bad += name;
      }
      *bad += ')';
      return false;
    }
    (*out)[key] = number;
  }
  return true;
}

struct ParseState {
  Scenario scenario;
  bool used_builtin = false;
  bool built_nodes = false;
};

// One directive; returns false with *error set on failure.
bool apply_directive(ParseState& state, const std::vector<std::string>& tokens,
                     std::string* error) {
  Scenario& scenario = state.scenario;
  ExperimentSpec& s = scenario.spec;
  const std::string& cmd = tokens[0];
  const auto fail = [&](const std::string& why) {
    *error = why;
    return false;
  };
  const auto need = [&](std::size_t n) { return tokens.size() >= n; };

  if (cmd == "topology") {
    if (!need(2)) {
      return fail("topology needs a name (cairn | net1 | random | waxman)");
    }
    if (state.built_nodes) return fail("topology conflicts with node/link");
    std::map<std::string, double> opts;
    std::string bad;
    const bool generated = tokens[1] == "random" || tokens[1] == "waxman";
    const std::vector<const char*> allowed =
        generated ? std::vector<const char*>{"n", "p", "alpha", "beta",
                                             "min_prop", "flows", "rate",
                                             "seed"}
                  : std::vector<const char*>{"scale"};
    if (!parse_options(tokens, 2, allowed, &opts, &bad)) return fail(bad);
    const double scale = opts.count("scale") ? opts["scale"] : 1.0;
    if (tokens[1] == "cairn") {
      s.topo = topo::make_cairn();
      s.flows = topo::cairn_flows(scale);
    } else if (tokens[1] == "net1") {
      s.topo = topo::make_net1();
      s.flows = topo::net1_flows(scale);
    } else if (tokens[1] == "random" || tokens[1] == "waxman") {
      // Generated scale topologies (no paper flow set): `flows` random
      // flows ride along, drawn from the same generator stream so the
      // whole directive is one deterministic unit.
      const double n = opts.count("n") ? opts["n"] : 0;
      if (n < 3) return fail("topology " + tokens[1] + " needs n=<nodes> >= 3");
      Rng rng(opts.count("seed") ? static_cast<std::uint64_t>(opts["seed"])
                                 : 1);
      if (tokens[1] == "random") {
        const double p = opts.count("p") ? opts["p"] : 0.05;
        if (p < 0 || p > 1) return fail("topology random p must be in [0, 1]");
        s.topo = topo::make_random(static_cast<std::size_t>(n), p, rng);
      } else {
        const double alpha = opts.count("alpha") ? opts["alpha"] : 0.4;
        const double beta = opts.count("beta") ? opts["beta"] : 0.2;
        const double min_prop = opts.count("min_prop") ? opts["min_prop"] : 0;
        if (alpha <= 0 || alpha > 1 || beta <= 0) {
          return fail("topology waxman needs 0 < alpha <= 1 and beta > 0");
        }
        if (min_prop < 0) return fail("topology waxman min_prop must be >= 0");
        s.topo =
            topo::make_waxman(static_cast<std::size_t>(n), alpha, beta, rng,
                              /*capacity_bps=*/10e6, /*max_prop_delay_s=*/5e-3,
                              min_prop);
      }
      const double count = opts.count("flows") ? opts["flows"] : n;
      const double rate = opts.count("rate") ? opts["rate"] : 1e6;
      if (count < 1) return fail("topology needs flows=<count> >= 1");
      if (rate <= 0) return fail("topology needs rate=<bps> > 0");
      s.flows = topo::random_flows(s.topo, static_cast<std::size_t>(count),
                                   rate, rng);
    } else {
      return fail("unknown built-in topology: " + tokens[1]);
    }
    state.used_builtin = true;
    return true;
  }
  if (cmd == "engine") {
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 1, {"shards", "ring", "lookahead"}, &opts,
                       &bad)) {
      return fail(bad);
    }
    if (!opts.count("shards") || opts["shards"] < 1) {
      return fail("engine needs shards=<n> >= 1");
    }
    s.engine.shards = static_cast<int>(opts["shards"]);
    if (opts.count("ring")) {
      if (opts["ring"] < 1) return fail("engine ring must be at least 1");
      s.engine.ring_capacity = static_cast<std::size_t>(opts["ring"]);
    }
    if (opts.count("lookahead")) {
      if (opts["lookahead"] <= 0) {
        return fail("engine lookahead must be positive");
      }
      s.engine.lookahead_override = opts["lookahead"];
    }
    return true;
  }
  if (cmd == "node") {
    if (!need(2)) return fail("node needs a name");
    if (state.used_builtin) return fail("node conflicts with topology");
    if (s.topo.find_node(tokens[1]) != graph::kInvalidNode) {
      return fail("duplicate node " + tokens[1]);
    }
    s.topo.add_node(tokens[1]);
    state.built_nodes = true;
    return true;
  }
  if (cmd == "link") {
    if (!need(3)) return fail("link needs two node names");
    const auto a = s.topo.find_node(tokens[1]);
    const auto b = s.topo.find_node(tokens[2]);
    if (a == graph::kInvalidNode || b == graph::kInvalidNode) {
      return fail("link references unknown node");
    }
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 3, {"capacity", "prop"}, &opts, &bad)) {
      return fail(bad);
    }
    graph::LinkAttr attr;
    if (opts.count("capacity")) attr.capacity_bps = opts["capacity"];
    if (opts.count("prop")) attr.prop_delay_s = opts["prop"];
    if (attr.capacity_bps <= 0 || attr.prop_delay_s < 0) {
      return fail("link attributes out of range");
    }
    s.topo.add_duplex(a, b, attr);
    return true;
  }
  if (cmd == "flow") {
    if (!need(4)) return fail("flow needs src dst rate=<bps>");
    if (s.topo.find_node(tokens[1]) == graph::kInvalidNode ||
        s.topo.find_node(tokens[2]) == graph::kInvalidNode) {
      return fail("flow references unknown node");
    }
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 3, {"rate"}, &opts, &bad)) return fail(bad);
    if (!opts.count("rate") || opts["rate"] <= 0) {
      return fail("flow needs rate=<bps> > 0");
    }
    s.flows.push_back(topo::FlowSpec{tokens[1], tokens[2], opts["rate"]});
    return true;
  }
  if (cmd == "mode") {
    if (!need(2)) return fail("mode needs mp | sp | opt");
    if (tokens[1] != "mp" && tokens[1] != "sp" && tokens[1] != "opt") {
      return fail("unknown mode: " + tokens[1]);
    }
    scenario.mode = tokens[1];
    return true;
  }
  if (cmd == "estimator") {
    if (!need(2)) return fail("estimator needs a name");
    if (tokens[1] == "utilization") {
      s.config.estimator = cost::EstimatorKind::kUtilization;
    } else if (tokens[1] == "mm1") {
      s.config.estimator = cost::EstimatorKind::kAnalyticMm1;
    } else if (tokens[1] == "observable") {
      s.config.estimator = cost::EstimatorKind::kObservable;
    } else if (tokens[1] == "ipa") {
      s.config.estimator = cost::EstimatorKind::kIpa;
    } else {
      return fail("unknown estimator: " + tokens[1]);
    }
    return true;
  }
  if (cmd == "bursty") {
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 1, {"on", "off"}, &opts, &bad)) {
      return fail(bad);
    }
    s.config.traffic.model = TrafficModel::kOnOff;
    if (opts.count("on")) s.config.traffic.burstiness.mean_on_s = opts["on"];
    if (opts.count("off")) s.config.traffic.burstiness.mean_off_s = opts["off"];
    return true;
  }
  if (cmd == "pareto") {
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 1, {"alpha", "on", "off"}, &opts, &bad)) {
      return fail(bad);
    }
    s.config.traffic.model = TrafficModel::kParetoOnOff;
    if (opts.count("alpha")) s.config.traffic.pareto.alpha = opts["alpha"];
    if (opts.count("on")) s.config.traffic.pareto.mean_on_s = opts["on"];
    if (opts.count("off")) s.config.traffic.pareto.mean_off_s = opts["off"];
    if (s.config.traffic.pareto.alpha <= 1.0) {
      return fail("pareto alpha must exceed 1 (finite mean)");
    }
    return true;
  }
  if (cmd == "loss") {
    double rate = 0;
    if (!need(2) || !parse_double(tokens[1], &rate) || rate < 0 || rate >= 1) {
      return fail("loss needs a rate in [0, 1)");
    }
    s.config.link_loss_rate = rate;
    return true;
  }
  if (cmd == "hello") {
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 1, {"interval", "dead"}, &opts, &bad)) {
      return fail(bad);
    }
    s.config.use_hello = true;
    if (opts.count("interval")) s.config.hello.interval = opts["interval"];
    if (opts.count("dead")) s.config.hello.dead_interval = opts["dead"];
    if (s.config.hello.dead_interval <= s.config.hello.interval) {
      return fail("hello dead interval must exceed the hello interval");
    }
    return true;
  }
  if (cmd == "wrr") {
    s.config.wrr_forwarding = true;
    return true;
  }
  if (cmd == "report_threshold") {
    double value = 0;
    if (!need(2) || !parse_double(tokens[1], &value) || value < 0) {
      return fail("report_threshold needs a non-negative number");
    }
    s.config.smoothing.report_threshold = value;
    return true;
  }
  if (cmd == "pace") {
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 1, {"min", "max"}, &opts, &bad)) {
      return fail(bad);
    }
    auto& pacing = s.config.pacing;
    pacing.enabled = true;
    if (opts.count("min")) pacing.min_interval = opts["min"];
    if (opts.count("max")) pacing.max_interval = opts["max"];
    if (pacing.min_interval <= 0 ||
        pacing.max_interval < pacing.min_interval) {
      return fail("pace needs 0 < min <= max");
    }
    return true;
  }
  if (cmd == "damping") {
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 1,
                       {"penalty", "suppress", "reuse", "half_life", "max"},
                       &opts, &bad)) {
      return fail(bad);
    }
    auto& damping = s.config.damping;
    damping.enabled = true;
    if (opts.count("penalty")) damping.penalty = opts["penalty"];
    if (opts.count("suppress")) damping.suppress_threshold = opts["suppress"];
    if (opts.count("reuse")) damping.reuse_threshold = opts["reuse"];
    if (opts.count("half_life")) damping.half_life = opts["half_life"];
    if (opts.count("max")) damping.max_penalty = opts["max"];
    if (damping.penalty <= 0 || damping.half_life <= 0) {
      return fail("damping penalty and half_life must be positive");
    }
    if (damping.reuse_threshold >= damping.suppress_threshold) {
      return fail("damping reuse threshold must be below suppress");
    }
    if (damping.max_penalty < damping.suppress_threshold) {
      return fail("damping max penalty must reach the suppress threshold");
    }
    return true;
  }
  if (cmd == "monitor") {
    double t = 0;
    if (!need(2) || !parse_double(tokens[1], &t) || t < 0) {
      return fail("monitor needs a non-negative sweep period");
    }
    s.config.monitor_interval = t;
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 2, {"drop_budget"}, &opts, &bad)) {
      return fail(bad);
    }
    if (opts.count("drop_budget")) {
      if (opts["drop_budget"] < 0) {
        return fail("monitor drop_budget must be non-negative");
      }
      s.config.monitor_control_drop_budget =
          static_cast<std::uint64_t>(opts["drop_budget"]);
    }
    return true;
  }
  if (cmd == "fail" || cmd == "restore") {
    if (!need(4)) return fail(cmd + " needs <t> <a> <b>");
    double t = 0;
    if (!parse_double(tokens[1], &t) || t < 0) return fail("bad time");
    if (s.topo.find_node(tokens[2]) == graph::kInvalidNode ||
        s.topo.find_node(tokens[3]) == graph::kInvalidNode) {
      return fail(cmd + " references unknown node");
    }
    SimConfig::LinkToggle toggle{t, tokens[2], tokens[3], cmd == "restore"};
    toggle.silent = tokens.size() > 4 && tokens[4] == "silent";
    s.config.link_toggles.push_back(toggle);
    return true;
  }

  if (cmd == "crash" || cmd == "recover") {
    if (!need(3)) return fail(cmd + " needs <t> <node>");
    double t = 0;
    if (!parse_double(tokens[1], &t) || t < 0) return fail("bad time");
    if (s.topo.find_node(tokens[2]) == graph::kInvalidNode) {
      return fail(cmd + " references unknown node");
    }
    auto& events = cmd == "crash" ? s.config.faults.crashes
                                  : s.config.faults.recoveries;
    events.push_back(fault::NodeEvent{t, tokens[2]});
    return true;
  }
  if (cmd == "flap") {
    if (!need(3)) return fail("flap needs <a> <b> [period=] [duty=] [start=] [stop=]");
    if (s.topo.find_node(tokens[1]) == graph::kInvalidNode ||
        s.topo.find_node(tokens[2]) == graph::kInvalidNode) {
      return fail("flap references unknown node");
    }
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 3, {"period", "duty", "start", "stop"}, &opts,
                       &bad)) {
      return fail(bad);
    }
    fault::LinkFlap flap;
    flap.a = tokens[1];
    flap.b = tokens[2];
    if (opts.count("period")) flap.period = opts["period"];
    if (opts.count("duty")) flap.duty = opts["duty"];
    if (opts.count("start")) flap.start = opts["start"];
    if (opts.count("stop")) flap.stop = opts["stop"];
    if (flap.period <= 0) return fail("flap period must be positive");
    if (flap.duty <= 0 || flap.duty >= 1) return fail("flap duty must be in (0, 1)");
    if (flap.start < 0 || flap.stop < flap.start) {
      return fail("flap window out of range");
    }
    s.config.faults.flaps.push_back(std::move(flap));
    return true;
  }
  if (cmd == "gilbert") {
    if (!need(3)) return fail("gilbert needs <a> <b> [p_good=] [p_bad=] [loss_bad=] [loss_good=]");
    if (s.topo.find_node(tokens[1]) == graph::kInvalidNode ||
        s.topo.find_node(tokens[2]) == graph::kInvalidNode) {
      return fail("gilbert references unknown node");
    }
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 3, {"p_good", "p_bad", "loss_bad", "loss_good"},
                       &opts, &bad)) {
      return fail(bad);
    }
    fault::GilbertParams params;
    // p_good: leave the GOOD state (-> BAD); p_bad: leave the BAD state.
    if (opts.count("p_good")) params.p_good_bad = opts["p_good"];
    if (opts.count("p_bad")) params.p_bad_good = opts["p_bad"];
    if (opts.count("loss_bad")) params.loss_bad = opts["loss_bad"];
    if (opts.count("loss_good")) params.loss_good = opts["loss_good"];
    if (params.p_good_bad < 0 || params.p_good_bad > 1 ||
        params.p_bad_good < 0 || params.p_bad_good > 1) {
      return fail("gilbert transition probabilities must be in [0, 1]");
    }
    if (params.loss_bad < 0 || params.loss_bad >= 1 || params.loss_good < 0 ||
        params.loss_good >= 1) {
      return fail("gilbert loss probabilities must be in [0, 1)");
    }
    s.config.faults.gilbert.push_back(
        fault::LinkGilbert{tokens[1], tokens[2], params});
    return true;
  }
  if (cmd == "dutycycle") {
    if (!need(3)) {
      return fail(
          "dutycycle needs <a> <b> [period=] [on=] [start=] [stop=] "
          "[p_good=] [p_bad=] [loss_bad=] [loss_good=]");
    }
    if (s.topo.find_node(tokens[1]) == graph::kInvalidNode ||
        s.topo.find_node(tokens[2]) == graph::kInvalidNode) {
      return fail("dutycycle references unknown node");
    }
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 3,
                       {"period", "on", "start", "stop", "p_good", "p_bad",
                        "loss_bad", "loss_good"},
                       &opts, &bad)) {
      return fail(bad);
    }
    fault::LinkDutyCycle duty;
    duty.a = tokens[1];
    duty.b = tokens[2];
    if (opts.count("period")) duty.period = opts["period"];
    if (opts.count("on")) duty.on_fraction = opts["on"];
    if (opts.count("start")) duty.start = opts["start"];
    if (opts.count("stop")) duty.stop = opts["stop"];
    if (duty.period <= 0) return fail("dutycycle period must be positive");
    if (duty.on_fraction <= 0 || duty.on_fraction >= 1) {
      return fail("dutycycle on fraction must be in (0, 1)");
    }
    if (duty.start < 0 || duty.stop < duty.start) {
      return fail("dutycycle window out of range");
    }
    duty.lossy = opts.count("p_good") || opts.count("p_bad") ||
                 opts.count("loss_bad") || opts.count("loss_good");
    if (duty.lossy) {
      if (opts.count("p_good")) duty.loss.p_good_bad = opts["p_good"];
      if (opts.count("p_bad")) duty.loss.p_bad_good = opts["p_bad"];
      if (opts.count("loss_bad")) duty.loss.loss_bad = opts["loss_bad"];
      if (opts.count("loss_good")) duty.loss.loss_good = opts["loss_good"];
      if (duty.loss.p_good_bad < 0 || duty.loss.p_good_bad > 1 ||
          duty.loss.p_bad_good < 0 || duty.loss.p_bad_good > 1) {
        return fail("dutycycle transition probabilities must be in [0, 1]");
      }
      if (duty.loss.loss_bad < 0 || duty.loss.loss_bad >= 1 ||
          duty.loss.loss_good < 0 || duty.loss.loss_good >= 1) {
        return fail("dutycycle loss probabilities must be in [0, 1)");
      }
    }
    s.config.faults.duty_cycles.push_back(std::move(duty));
    return true;
  }
  if (cmd == "adversarial") {
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 1, {"w", "eps", "peak", "sync"}, &opts, &bad)) {
      return fail(bad);
    }
    s.config.traffic.model = TrafficModel::kAdversarial;
    auto& adv = s.config.traffic.adversarial;
    if (opts.count("w")) adv.w_s = opts["w"];
    if (opts.count("eps")) adv.eps = opts["eps"];
    if (opts.count("peak")) adv.peak = opts["peak"];
    if (opts.count("sync")) adv.sync = opts["sync"] != 0;
    if (adv.w_s <= 0 || adv.eps <= 0) {
      return fail("adversarial w and eps must be positive");
    }
    if (adv.peak <= 1) return fail("adversarial peak must exceed 1");
    return true;
  }
  if (cmd == "diurnal") {
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 1, {"period", "amp", "phase"}, &opts, &bad)) {
      return fail(bad);
    }
    auto& traffic = s.config.traffic;
    if (!opts.count("period") || opts["period"] <= 0) {
      return fail("diurnal needs period=<s> > 0");
    }
    traffic.diurnal_period_s = opts["period"];
    if (opts.count("amp")) traffic.diurnal_amplitude = opts["amp"];
    if (opts.count("phase")) traffic.diurnal_phase_s = opts["phase"];
    if (traffic.diurnal_amplitude < 0 || traffic.diurnal_amplitude >= 1) {
      return fail("diurnal amp must be in [0, 1)");
    }
    return true;
  }
  if (cmd == "flashcrowd") {
    if (!need(2)) {
      return fail("flashcrowd needs <dst> [start=] [ramp=] [hold=] [peak=]");
    }
    if (s.topo.find_node(tokens[1]) == graph::kInvalidNode) {
      return fail("flashcrowd references unknown node " + tokens[1]);
    }
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 2, {"start", "ramp", "hold", "peak"}, &opts,
                       &bad)) {
      return fail(bad);
    }
    FlashCrowd crowd;
    crowd.dst = tokens[1];
    if (opts.count("start")) crowd.start = opts["start"];
    if (opts.count("ramp")) crowd.ramp_s = opts["ramp"];
    if (opts.count("hold")) crowd.hold_s = opts["hold"];
    if (opts.count("peak")) crowd.peak = opts["peak"];
    if (crowd.start < 0 || crowd.ramp_s < 0 || crowd.hold_s < 0) {
      return fail("flashcrowd times must be non-negative");
    }
    if (crowd.peak <= 1) return fail("flashcrowd peak must exceed 1");
    s.config.traffic.flash_crowds.push_back(std::move(crowd));
    return true;
  }
  if (cmd == "stability") {
    double interval = 0;
    if (!need(2) || !parse_double(tokens[1], &interval) || interval <= 0) {
      return fail("stability needs a positive sample period");
    }
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 2,
                       {"window", "slope", "delay_factor", "persist"}, &opts,
                       &bad)) {
      return fail(bad);
    }
    auto& stab = s.config.stability;
    stab.interval = interval;
    if (opts.count("window")) stab.window = opts["window"];
    if (opts.count("slope")) stab.slope_capacity_fraction = opts["slope"];
    if (opts.count("delay_factor")) stab.delay_factor = opts["delay_factor"];
    if (opts.count("persist")) {
      stab.persistence = static_cast<int>(opts["persist"]);
    }
    if (stab.window < 2 * stab.interval) {
      return fail("stability window must cover at least two sample periods");
    }
    if (stab.slope_capacity_fraction <= 0) {
      return fail("stability slope fraction must be positive");
    }
    if (stab.delay_factor <= 1) {
      return fail("stability delay_factor must exceed 1");
    }
    if (stab.persistence < 1) {
      return fail("stability persist must be at least 1");
    }
    return true;
  }
  if (cmd == "corrupt" || cmd == "duplicate" || cmd == "reorder") {
    double rate = 0;
    if (!need(2) || !parse_double(tokens[1], &rate) || rate < 0 || rate >= 1) {
      return fail(cmd + " needs a rate in [0, 1)");
    }
    auto& chaos = s.config.faults.chaos;
    (cmd == "corrupt"     ? chaos.corrupt_rate
     : cmd == "duplicate" ? chaos.duplicate_rate
                          : chaos.reorder_rate) = rate;
    return true;
  }

  if (cmd == "checkpoint") {
    // Parsed by hand: `path` is a string value, which parse_options (numbers
    // only) cannot carry.
    if (!need(2)) return fail("checkpoint needs interval=<s> path=<file>");
    double interval = 0;
    std::string path;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto [key, value] = split_kv(tokens[i]);
      if (value.empty()) {
        return fail("bad option " + tokens[i] + " (expected key=value)");
      }
      if (key == "interval") {
        if (!parse_double(value, &interval) || interval <= 0) {
          return fail("checkpoint interval must be a positive number");
        }
      } else if (key == "path") {
        path = value;
      } else {
        return fail("unknown option key '" + key +
                    "' in `checkpoint` (allowed: interval path)");
      }
    }
    if (interval <= 0 || path.empty()) {
      return fail("checkpoint needs both interval=<s> and path=<file>");
    }
    s.config.checkpoint_interval = interval;
    s.config.checkpoint_path = path;
    return true;
  }
  if (cmd == "trace") {
    s.config.trace = true;
    return true;
  }
  if (cmd == "prof") {
    // Wall-clock profiler + convergence span tracer. Works on both engines
    // (per-shard profilers merge post-run), so it is deliberately NOT part
    // of the trace/flightrec single-threaded validation below. deep=1 times
    // the per-event hot sections too (higher overhead, see obs/prof.h).
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 1, {"deep"}, &opts, &bad)) {
      return fail(bad);
    }
    s.config.prof = true;
    s.config.prof_deep = opts.count("deep") != 0 && opts["deep"] != 0;
    return true;
  }
  if (cmd == "flightrec") {
    std::map<std::string, double> opts;
    std::string bad;
    if (!parse_options(tokens, 1, {"capacity"}, &opts, &bad)) {
      return fail(bad);
    }
    double capacity = 256;
    if (opts.count("capacity")) capacity = opts["capacity"];
    if (capacity < 1) return fail("flightrec capacity must be at least 1");
    s.config.flightrec_capacity = static_cast<std::size_t>(capacity);
    return true;
  }

  // Scalar directives.
  static const std::map<std::string, double SimConfig::*> kScalars = {
      {"tl", &SimConfig::tl},
      {"ts", &SimConfig::ts},
      {"duration", &SimConfig::duration},
      {"warmup", &SimConfig::warmup},
      {"traffic_start", &SimConfig::traffic_start},
      {"timeseries", &SimConfig::timeseries_interval},
      {"sample", &SimConfig::sample_interval},
      {"lfi_check", &SimConfig::lfi_check_interval},
      {"ah_damping", &SimConfig::ah_damping},
      {"mean_packet_bits", &SimConfig::mean_packet_bits},
      {"queue_limit", &SimConfig::queue_limit_bits},
      {"control_queue_limit", &SimConfig::control_queue_limit_bits},
  };
  if (const auto it = kScalars.find(cmd); it != kScalars.end()) {
    double value = 0;
    if (!need(2) || !parse_double(tokens[1], &value) || value < 0) {
      return fail(cmd + " needs a non-negative number");
    }
    s.config.*(it->second) = value;
    return true;
  }
  if (cmd == "seed") {
    double value = 0;
    if (!need(2) || !parse_double(tokens[1], &value) || value < 0) {
      return fail("seed needs a non-negative number");
    }
    s.config.seed = static_cast<std::uint64_t>(value);
    return true;
  }
  return fail("unknown directive: " + cmd);
}

}  // namespace

std::optional<Scenario> parse_scenario(std::istream& in, std::string* error,
                                       const std::string& source_name) {
  // Every diagnostic goes through here so the source name (file path for
  // load_scenario) lands in front of it exactly once.
  const auto report = [&](const std::string& why) {
    if (error == nullptr) return;
    *error = source_name.empty() ? why : source_name + ": " + why;
  };
  ParseState state;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    std::string why;
    if (!apply_directive(state, tokens, &why)) {
      report("line " + std::to_string(line_number) + ": " + why);
      return std::nullopt;
    }
  }
  if (state.scenario.spec.topo.num_nodes() == 0) {
    report("scenario defines no topology");
    return std::nullopt;
  }
  if (state.scenario.spec.flows.empty()) {
    report("scenario defines no flows");
    return std::nullopt;
  }
  const auto& config = state.scenario.spec.config;
  if (config.faults.needs_hello() && !config.use_hello) {
    report(
        "crash/flap/dutycycle faults are silent and need the hello protocol "
        "to be detected: add a `hello` directive");
    return std::nullopt;
  }
  if (config.damping.enabled && !config.use_hello) {
    report(
        "damping filters hello adjacency events and needs the hello "
        "protocol: add a `hello` directive");
    return std::nullopt;
  }
  if (state.scenario.spec.engine.shards >= 1 &&
      (config.trace || config.flightrec_capacity > 0)) {
    report(
        "trace/flightrec need the single-threaded engine (the flight "
        "recorder is not shard-safe): drop them or the `engine` directive");
    return std::nullopt;
  }
  // A link carries at most one Gilbert-Elliott chain per direction, so a
  // lossy dutycycle may not meet a `gilbert` (or another lossy dutycycle)
  // on the same pair.
  std::vector<std::pair<std::string, std::string>> chain_pairs;
  const auto claim_pair = [&](const std::string& a, const std::string& b) {
    auto pair = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    for (const auto& seen : chain_pairs) {
      if (seen == pair) return false;
    }
    chain_pairs.push_back(std::move(pair));
    return true;
  };
  for (const auto& g : config.faults.gilbert) claim_pair(g.a, g.b);
  for (const auto& duty : config.faults.duty_cycles) {
    if (duty.lossy && !claim_pair(duty.a, duty.b)) {
      report("link " + duty.a + " " + duty.b +
             " has both a lossy dutycycle and a gilbert loss chain: a link "
             "carries one loss model");
      return std::nullopt;
    }
  }
  return std::move(state.scenario);
}

std::optional<Scenario> load_scenario(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return parse_scenario(in, error, path);
}

SimResult run_scenario(const Scenario& scenario) {
  return run_experiment(scenario.spec, scenario.mode);
}

}  // namespace mdr::sim
