// Simulated router node: embeds an MpRouter (MP or SP mode) or a static
// routing-parameter table (the installed-OPT baseline), forwards data
// packets by weighted next-hop choice, exchanges LSUs in-band, and drives
// the Ts/Tl measurement timers of Section 4.2.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/mp_router.h"
#include "cost/smoother.h"
#include "proto/damping.h"
#include "proto/hello.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/packet.h"
#include "util/rng.h"

namespace mdr::sim {

enum class RoutingMode {
  kMultipath,   ///< MP: MPDA + IH/AH (the paper's contribution)
  kSinglePath,  ///< SP: MP restricted to the best successor (paper baseline)
  kStatic,      ///< fixed phi installed up front (used for OPT's parameters)
};

struct NodeOptions {
  RoutingMode mode = RoutingMode::kMultipath;
  Duration tl = 10.0;  ///< long-term (routing path) update interval
  Duration ts = 2.0;   ///< short-term (routing parameter) update interval
  double ah_damping = 0.5;  ///< see MpRouterOptions::ah_damping
  double mean_packet_bits = 8e3;
  /// Realize phi by smooth weighted round-robin (deterministic) instead of
  /// i.i.d. weighted-random next hops.
  bool wrr_forwarding = false;
  cost::DualTimescaleCost::Options smoothing{};
  /// Run the hello protocol beneath routing: adjacencies come up only after
  /// the 2-way check, and silent link failures are detected by the dead
  /// interval instead of assumed-signaled. Off by default (the paper's
  /// model signals failures directly).
  bool use_hello = false;
  proto::HelloProtocol::Options hello{};
  /// Period of the LSU retransmission timer (reliable flooding); only
  /// matters on lossy transports, a no-op otherwise.
  Duration lsu_retransmit_interval = 1.0;
  /// LSU origination pacing (core/mpda.h). Off by default; when enabled a
  /// dedicated pacing timer of min_interval flushes coalesced cost changes.
  core::LsuPacing pacing{};
  /// Link-flap damping over hello adjacency events (proto/damping.h).
  /// Requires use_hello; off by default.
  proto::FlapDamper::Options damping{};
};

struct NodeCallbacks {
  /// A data packet reached its destination.
  std::function<void(const Packet&, Duration delay)> delivered;
  /// A data packet was discarded (no route or TTL exhausted).
  std::function<void(const Packet&)> dropped;
};

class SimNode final : public proto::LsuSink {
 public:
  SimNode(EventQueue& events, graph::NodeId id, std::size_t num_nodes,
          NodeOptions options, Rng rng, NodeCallbacks callbacks);

  graph::NodeId id() const { return id_; }

  /// Registers the outgoing link to `neighbor` (before start()).
  void attach_link(graph::NodeId neighbor, SimLink* link);

  /// kStatic only: installs the forwarding choices for one destination.
  void set_static_choices(graph::NodeId dest,
                          std::vector<core::ForwardingChoice> choices);

  /// Brings up all attached links in the routing protocol and starts the
  /// Ts/Tl timers (randomly phased, as the paper prescribes).
  void start();

  /// Entry point for packets arriving from a link (or injected by a source).
  void receive(Packet packet);

  /// Adjacency change notifications from the physical layer.
  void neighbor_link_failed(graph::NodeId neighbor);
  void neighbor_link_restored(graph::NodeId neighbor);

  // --- crash/recover lifecycle ---------------------------------------------

  /// The router process dies: every pending timer of this incarnation is
  /// invalidated (boot-epoch guard) and arriving packets are eaten. All
  /// protocol state is discarded on the subsequent recover(). No-op when
  /// already dead or in static mode.
  void crash();

  /// Reboot: routing state is rebuilt from nothing, the hello protocol
  /// restarts under a new generation number (so peers detect the reboot
  /// even when the outage was shorter than their dead interval), and all
  /// timers restart with fresh random phases.
  void recover();

  bool alive() const { return alive_; }

  // --- LsuSink -------------------------------------------------------------
  void send(graph::NodeId neighbor, const proto::LsuMessage& msg) override;

  // --- stats ---------------------------------------------------------------
  std::uint64_t drops_no_route() const { return drops_no_route_; }
  std::uint64_t drops_ttl() const { return drops_ttl_; }
  /// Data packets that arrived at (or were injected into) a dead router.
  std::uint64_t drops_dead() const { return drops_dead_; }
  /// Control packets rejected as malformed (corruption on the wire).
  std::uint64_t control_garbage() const { return control_garbage_; }
  std::uint64_t control_messages_sent() const { return control_sent_; }
  /// Flapping neighbors the damper suppressed (withdrawn once, held down).
  std::uint64_t damped_withdrawals() const {
    return damper_ != nullptr ? damper_->damped_withdrawals() : 0;
  }

  /// Whether this router currently considers `neighbor` a control-plane
  /// adjacency: hello 2-way when hello runs (damper suppression is ignored —
  /// a deliberately held-down adjacency is not "starved"), the routing
  /// table's neighbor set otherwise, and trivially true for static nodes
  /// (they have no control plane to starve). The monitor's starvation
  /// watchdog reads this.
  bool adjacent_to(graph::NodeId neighbor) const;

  /// The realized forwarding choices toward `dest` (whatever the routing
  /// mode); what the invariant monitor walks for loop/blackhole checks.
  std::span<const core::ForwardingChoice> forwarding(graph::NodeId dest) const {
    if (router_ != nullptr) return router_->forwarding(dest);
    return static_table_[dest];
  }

  /// The embedded router (null in kStatic mode).
  const core::MpRouter* router() const { return router_.get(); }

  /// Hello messages actually handed to a link (excluded from
  /// control_messages_sent(), which counts LSUs only).
  std::uint64_t hellos_sent() const { return hellos_sent_; }

  /// Attaches a flight-recorder probe: crash/recover events here, LSU and
  /// allocation events forwarded to the embedded router, suppress/release to
  /// the damper. Off by default; one branch per event when off.
  void set_probe(const obs::Probe& probe);

  /// Attaches the wall-clock profiler (LSU decode section here; protocol
  /// and allocation sections forwarded to the embedded router). Off by
  /// default; one branch per instrument point when off.
  void set_prof(obs::Profiler* p);

  /// Attaches the convergence span recorder: forwarding reports
  /// first-packet-on-new-successor events here, episode/send/change events
  /// come from the embedded router. Off by default.
  void set_spans(obs::SpanRecorder* s);

  /// Typed-event dispatch from EventQueue: a timer scheduled through
  /// schedule_guarded() fired. Dropped when `boot` is stale (the incarnation
  /// that armed it crashed) or the node is dead.
  void handle_timer(std::uint64_t boot, void (SimNode::*method)()) {
    if (boot == boot_ && alive_) (this->*method)();
  }

  /// Resolves a node-timer class to the tick method it dispatches; null for
  /// the callback-timer classes. EventQueue::schedule_timer(TimerClass, ...)
  /// is the only intended caller — the mapping keeps the tick methods
  /// private while giving the queue a typed scheduling surface.
  static void (SimNode::*timer_method(TimerClass cls))();

  // --- checkpointing -------------------------------------------------------

  /// Checkpoints all mutable routing/protocol state: RNG stream, router and
  /// hello/damper processes, announced adjacencies, WRR credits, liveness
  /// and boot epoch, drop/control counters. Configuration (options, links,
  /// static forwarding tables, callbacks) is reconstructed by the owning
  /// simulator before load(). Pending timers live in the EventQueue.
  void save(ckpt::Writer& w) const;
  void load(ckpt::Reader& r);

 private:
  void forward(Packet packet);
  graph::NodeId next_hop(graph::NodeId dest);
  void ts_tick();
  void tl_tick();
  double initial_cost(const SimLink& link) const;
  /// Schedules the tick of `cls` after `delay`, silently dropped if this
  /// incarnation has died in the meantime (crash bumps boot_). Every
  /// recurring timer goes through this so a reboot starts from a clean
  /// timer slate.
  void schedule_guarded(Duration delay, TimerClass cls);

  EventQueue* events_;
  graph::NodeId id_;
  NodeOptions options_;
  Rng rng_;
  NodeCallbacks callbacks_;

  void hello_tick();
  void retransmit_tick();
  void pace_tick();

  std::unique_ptr<core::MpRouter> router_;  // kMultipath / kSinglePath
  std::unique_ptr<proto::HelloProtocol> hello_;
  std::unique_ptr<proto::FlapDamper> damper_;
  /// Neighbors currently announced up to the routing process. With damping,
  /// hello adjacency and what routing believes diverge (a suppressed up is
  /// swallowed); this set is the routing-side truth, so a down is only
  /// forwarded for an adjacency routing actually saw.
  std::set<graph::NodeId> announced_;
  std::vector<std::vector<core::ForwardingChoice>> static_table_;  // kStatic
  std::vector<std::vector<double>> static_credits_;  // kStatic + WRR

  std::map<graph::NodeId, SimLink*> links_;
  std::map<graph::NodeId, cost::DualTimescaleCost> cost_state_;

  std::size_t num_nodes_;
  bool alive_ = true;
  std::uint64_t boot_ = 0;  ///< incarnation counter; guards timers

  std::uint64_t drops_no_route_ = 0;
  std::uint64_t drops_ttl_ = 0;
  std::uint64_t drops_dead_ = 0;
  std::uint64_t control_garbage_ = 0;
  std::uint64_t control_sent_ = 0;
  std::uint64_t hellos_sent_ = 0;
  obs::Probe probe_;
  obs::Profiler* prof_ = nullptr;
  obs::SpanRecorder* spans_ = nullptr;
};

}  // namespace mdr::sim
