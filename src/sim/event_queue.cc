#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "sim/link.h"
#include "sim/node.h"
#include "sim/traffic.h"

namespace mdr::sim {

// ------------------------------------------------------------------- pool

std::uint32_t EventQueue::alloc_record(Time t, Kind kind) {
  assert(t >= now_ - 1e-12);
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = pool_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Record& rec = pool_[idx];
  rec.time = t;
  rec.seq = next_seq_++;
  rec.kind = kind;
  rec.next_free = kNil;
  return idx;
}

void EventQueue::release_record(std::uint32_t idx) {
  Record& rec = pool_[idx];
  rec.fn = nullptr;
  rec.target = nullptr;
  rec.method = nullptr;
  rec.packet.payload.clear();
  rec.next_free = free_head_;
  free_head_ = idx;
}

// ------------------------------------------------------------------- heap

void EventQueue::sift_up(std::size_t i) {
  const HeapSlot slot = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(slot, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = slot;
}

void EventQueue::sift_down(std::size_t i) {
  const HeapSlot slot = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], slot)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = slot;
}

void EventQueue::push_heap(std::uint32_t idx) {
  const Record& rec = pool_[idx];
  heap_.push_back(HeapSlot{rec.time, rec.seq, idx});
  sift_up(heap_.size() - 1);
}

// ------------------------------------------------------------------ wheel

void EventQueue::push_wheel(std::uint32_t idx) {
  const std::int64_t b = bucket(pool_[idx].time);
  if (b < next_cascade_slot_) {
    // Its bucket already cascaded this revolution: straight to the heap.
    push_heap(idx);
    return;
  }
  wheel_[static_cast<std::size_t>(b) % kWheelSlots].push_back(idx);
  ++wheel_count_;
}

void EventQueue::cascade_until(Time bound) {
  while (wheel_count_ > 0) {
    // Wheel entries must reach the heap strictly before they could become
    // the earliest pending event; recompute the horizon each slot because
    // a cascaded entry may itself become the new heap top.
    const Time limit =
        heap_.empty() ? bound : std::min(heap_[0].time, bound);
    if (static_cast<Time>(next_cascade_slot_) * kWheelTick > limit) break;
    auto& slot = wheel_[static_cast<std::size_t>(next_cascade_slot_) %
                        kWheelSlots];
    std::size_t kept = 0;
    for (const std::uint32_t idx : slot) {
      if (bucket(pool_[idx].time) == next_cascade_slot_) {
        push_heap(idx);
        --wheel_count_;
      } else {
        slot[kept++] = idx;  // a later revolution; stays parked
      }
    }
    slot.resize(kept);
    ++next_cascade_slot_;
  }
}

// -------------------------------------------------------------- scheduling

void EventQueue::schedule_at(Time t, Callback fn) {
  const std::uint32_t idx = alloc_record(t, Kind::kCallback);
  Record& rec = pool_[idx];
  rec.fn = std::move(fn);
  rec.op = 0;  // untagged: not checkpointable (records recycle; clear stale tags)
  push_heap(idx);
}

void EventQueue::schedule_at(Time t, Callback fn, std::uint8_t tag,
                             std::uint64_t a, double b) {
  assert(tag != 0);
  const std::uint32_t idx = alloc_record(t, Kind::kCallback);
  Record& rec = pool_[idx];
  rec.fn = std::move(fn);
  rec.op = tag;
  rec.epoch = a;
  rec.arg = b;
  push_heap(idx);
}

void EventQueue::schedule_timer(TimerClass cls, Time t, Callback fn) {
  ++timer_counts_[static_cast<std::size_t>(cls)];
  const std::uint32_t idx = alloc_record(t, Kind::kCallback);
  Record& rec = pool_[idx];
  rec.fn = std::move(fn);
  rec.op = 0;
  push_wheel(idx);
}

void EventQueue::schedule_timer(TimerClass cls, Time t, Callback fn,
                                std::uint8_t tag, std::uint64_t a, double b) {
  assert(tag != 0);
  ++timer_counts_[static_cast<std::size_t>(cls)];
  const std::uint32_t idx = alloc_record(t, Kind::kCallback);
  Record& rec = pool_[idx];
  rec.fn = std::move(fn);
  rec.op = tag;
  rec.epoch = a;
  rec.arg = b;
  push_wheel(idx);
}

void EventQueue::schedule_timer(TimerClass cls, Duration delay, SimNode* node,
                                std::uint64_t boot) {
  void (SimNode::*method)() = SimNode::timer_method(cls);
  assert(method != nullptr);  // cls must name a node-timer class
  ++timer_counts_[static_cast<std::size_t>(cls)];
  schedule_node_timer(delay, node, boot, method);
}

void EventQueue::schedule_transmit_complete(Duration delay, SimLink* link,
                                            std::uint64_t epoch) {
  const std::uint32_t idx =
      alloc_record(now_ + delay, Kind::kTransmitComplete);
  Record& rec = pool_[idx];
  rec.target = link;
  rec.epoch = epoch;
  push_heap(idx);
}

void EventQueue::schedule_delivery(Duration delay, SimLink* link,
                                   std::uint64_t epoch, Packet packet) {
  const std::uint32_t idx = alloc_record(now_ + delay, Kind::kDeliver);
  Record& rec = pool_[idx];
  rec.target = link;
  rec.epoch = epoch;
  rec.packet = std::move(packet);
  push_heap(idx);
}

void EventQueue::schedule_delivery_keyed(Time t, SimLink* link,
                                         std::uint64_t epoch, Packet packet,
                                         std::uint64_t key) {
  const std::uint32_t idx = alloc_record(t, Kind::kDeliver);
  Record& rec = pool_[idx];
  rec.seq = key;  // canonical cross-shard order replaces the local FIFO seq
  rec.target = link;
  rec.epoch = epoch;
  rec.packet = std::move(packet);
  push_heap(idx);
}

void EventQueue::schedule_source_event(Time t, TrafficSource* source,
                                       std::uint8_t op, double arg) {
  const std::uint32_t idx = alloc_record(t, Kind::kSourceEmit);
  Record& rec = pool_[idx];
  rec.target = source;
  rec.op = op;
  rec.arg = arg;
  ++live_source_events_;
  push_heap(idx);
}

void EventQueue::schedule_node_timer(Duration delay, SimNode* node,
                                     std::uint64_t boot,
                                     void (SimNode::*method)()) {
  const std::uint32_t idx = alloc_record(now_ + delay, Kind::kNodeTimer);
  Record& rec = pool_[idx];
  rec.target = node;
  rec.epoch = boot;
  rec.method = method;
  push_wheel(idx);
}

// -------------------------------------------------------------- execution

void EventQueue::dispatch_top() {
  const HeapSlot top = heap_[0];
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);

  assert(top.time >= now_ - 1e-12);
  now_ = top.time;
  ++processed_;

  // Move the payload out and recycle the record BEFORE invoking the
  // handler: whatever the handler schedules reuses this record first, so a
  // steady state cycles through a fixed working set and never grows the
  // pool.
  Record& rec = pool_[top.rec];
  static constexpr obs::ProfSection kDispatchSection[] = {
      obs::ProfSection::kDispatchCallback, obs::ProfSection::kDispatchTransmit,
      obs::ProfSection::kDispatchDeliver,  obs::ProfSection::kDispatchSource,
      obs::ProfSection::kDispatchTimer,
  };
  obs::ProfScope prof_scope(prof_,
                            kDispatchSection[static_cast<std::size_t>(rec.kind)]);
  switch (rec.kind) {
    case Kind::kCallback: {
      Callback fn = std::move(rec.fn);
      release_record(top.rec);
      fn();
      break;
    }
    case Kind::kTransmitComplete: {
      auto* link = static_cast<SimLink*>(rec.target);
      const std::uint64_t epoch = rec.epoch;
      release_record(top.rec);
      link->handle_transmit_complete(epoch);
      break;
    }
    case Kind::kDeliver: {
      auto* link = static_cast<SimLink*>(rec.target);
      const std::uint64_t epoch = rec.epoch;
      Packet packet = std::move(rec.packet);
      release_record(top.rec);
      link->handle_delivery(epoch, std::move(packet));
      break;
    }
    case Kind::kSourceEmit: {
      auto* source = static_cast<TrafficSource*>(rec.target);
      const std::uint8_t op = rec.op;
      const double arg = rec.arg;
      release_record(top.rec);
      --live_source_events_;
      source->handle_source_event(op, arg);
      break;
    }
    case Kind::kNodeTimer: {
      auto* node = static_cast<SimNode*>(rec.target);
      const std::uint64_t boot = rec.epoch;
      void (SimNode::*method)() = rec.method;
      release_record(top.rec);
      node->handle_timer(boot, method);
      break;
    }
  }
}

bool EventQueue::run_next() {
  cascade_until(std::numeric_limits<double>::infinity());
  if (heap_.empty()) return false;
  dispatch_top();
  return true;
}

void EventQueue::run_until(Time t) {
  for (;;) {
    cascade_until(t);
    if (heap_.empty() || heap_[0].time > t) break;
    dispatch_top();
  }
  now_ = t;
}

void EventQueue::run_until_strict(Time t) {
  for (;;) {
    cascade_until(t);
    if (heap_.empty() || heap_[0].time >= t) break;
    dispatch_top();
  }
  now_ = t;
}

Time EventQueue::next_event_before(Time bound) {
  cascade_until(bound);
  if (heap_.empty() || heap_[0].time > bound) {
    return std::numeric_limits<Time>::infinity();
  }
  return heap_[0].time;
}

// ------------------------------------------------------------ checkpointing

namespace {
/// Node-timer classes in their wire order; a kNodeTimer record stores the
/// index into this table instead of the raw member-function pointer.
constexpr TimerClass kNodeTimerClasses[] = {
    TimerClass::kHello, TimerClass::kShortTerm, TimerClass::kLongTerm,
    TimerClass::kRetransmit, TimerClass::kPacing};
constexpr std::uint8_t kNumNodeTimerClasses = 5;
}  // namespace

void EventQueue::save(ckpt::Writer& w, const EventQueueCodec& codec) const {
  w.mark(0xE0);
  w.f64(now_);
  w.u64(next_seq_);
  w.u64(processed_);

  // The pool holds live records (each referenced exactly once by a heap slot
  // or wheel bucket) and recycled ones chained through the free list; free
  // records carry only their chain link.
  std::vector<bool> is_free(pool_.size(), false);
  for (std::uint32_t i = free_head_; i != kNil; i = pool_[i].next_free) {
    is_free[i] = true;
  }
  w.u64(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    const Record& rec = pool_[i];
    w.b(is_free[i]);
    if (is_free[i]) {
      w.u32(rec.next_free);
      continue;
    }
    w.f64(rec.time);
    w.u64(rec.seq);
    w.u8(static_cast<std::uint8_t>(rec.kind));
    switch (rec.kind) {
      case Kind::kCallback:
        if (rec.op == 0) {
          throw ckpt::Error(
              "cannot checkpoint: a pending callback event was scheduled "
              "without a rebuild descriptor (untagged schedule_at)");
        }
        w.u8(rec.op);
        w.u64(rec.epoch);
        w.f64(rec.arg);
        break;
      case Kind::kTransmitComplete:
        w.u64(codec.link_index(static_cast<const SimLink*>(rec.target)));
        w.u64(rec.epoch);
        break;
      case Kind::kDeliver:
        w.u64(codec.link_index(static_cast<const SimLink*>(rec.target)));
        w.u64(rec.epoch);
        save_packet(w, rec.packet);
        break;
      case Kind::kSourceEmit:
        w.u64(codec.source_index(
            static_cast<const TrafficSource*>(rec.target)));
        w.u8(rec.op);
        w.f64(rec.arg);
        break;
      case Kind::kNodeTimer: {
        w.u64(codec.node_index(static_cast<const SimNode*>(rec.target)));
        w.u64(rec.epoch);
        std::uint8_t cls_idx = 0xff;
        for (std::uint8_t c = 0; c < kNumNodeTimerClasses; ++c) {
          if (SimNode::timer_method(kNodeTimerClasses[c]) == rec.method) {
            cls_idx = c;
            break;
          }
        }
        if (cls_idx == 0xff) {
          throw ckpt::Error("cannot checkpoint: unknown node-timer method");
        }
        w.u8(cls_idx);
        break;
      }
    }
  }
  w.u32(free_head_);

  w.u64(heap_.size());
  for (const HeapSlot& slot : heap_) {
    w.f64(slot.time);
    w.u64(slot.seq);
    w.u32(slot.rec);
  }

  for (const auto& slot : wheel_) {
    w.u64(slot.size());
    for (std::uint32_t idx : slot) w.u32(idx);
  }
  w.i64(next_cascade_slot_);
  w.u64(wheel_count_);
  w.u64(live_source_events_);
  for (std::uint64_t c : timer_counts_) w.u64(c);
}

void EventQueue::load(ckpt::Reader& r, const EventQueueCodec& codec) {
  r.expect_mark(0xE0);
  now_ = r.f64();
  next_seq_ = r.u64();
  processed_ = r.u64();

  pool_.clear();
  pool_.resize(r.u64());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    Record& rec = pool_[i];
    if (r.b()) {
      rec.next_free = r.u32();
      continue;
    }
    rec.time = r.f64();
    rec.seq = r.u64();
    rec.kind = static_cast<Kind>(r.u8());
    rec.next_free = kNil;
    switch (rec.kind) {
      case Kind::kCallback:
        rec.op = r.u8();
        rec.epoch = r.u64();
        rec.arg = r.f64();
        rec.fn = codec.make_callback(rec.op, rec.epoch, rec.arg);
        if (!rec.fn) {
          throw ckpt::Error("checkpoint callback descriptor not recognized");
        }
        break;
      case Kind::kTransmitComplete:
        rec.target = codec.link_at(r.u64());
        rec.epoch = r.u64();
        break;
      case Kind::kDeliver:
        rec.target = codec.link_at(r.u64());
        rec.epoch = r.u64();
        rec.packet = load_packet(r);
        break;
      case Kind::kSourceEmit:
        rec.target = codec.source_at(r.u64());
        rec.op = r.u8();
        rec.arg = r.f64();
        break;
      case Kind::kNodeTimer: {
        rec.target = codec.node_at(r.u64());
        rec.epoch = r.u64();
        const std::uint8_t cls_idx = r.u8();
        if (cls_idx >= kNumNodeTimerClasses) {
          throw ckpt::Error("bad node-timer class in checkpoint");
        }
        rec.method = SimNode::timer_method(kNodeTimerClasses[cls_idx]);
        break;
      }
      default:
        throw ckpt::Error("bad event record kind in checkpoint");
    }
  }
  free_head_ = r.u32();

  heap_.resize(r.u64());
  for (HeapSlot& slot : heap_) {
    slot.time = r.f64();
    slot.seq = r.u64();
    slot.rec = r.u32();
    if (slot.rec >= pool_.size()) {
      throw ckpt::Error("heap slot references bad record");
    }
  }

  for (auto& slot : wheel_) {
    slot.resize(r.u64());
    for (std::uint32_t& idx : slot) {
      idx = r.u32();
      if (idx >= pool_.size()) {
        throw ckpt::Error("wheel bucket references bad record");
      }
    }
  }
  next_cascade_slot_ = r.i64();
  wheel_count_ = r.u64();
  live_source_events_ = r.u64();
  for (std::uint64_t& c : timer_counts_) c = r.u64();
}

}  // namespace mdr::sim
