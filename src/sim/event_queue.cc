#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace mdr::sim {

void EventQueue::schedule_at(Time t, Callback fn) {
  assert(t >= now_ - 1e-12);
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; moving the callback out requires the
  // usual const_cast idiom (the element is removed immediately after).
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  assert(ev.time >= now_ - 1e-12);
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

void EventQueue::run_until(Time t) {
  while (!heap_.empty() && heap_.top().time <= t) run_next();
  now_ = t;
}

}  // namespace mdr::sim
