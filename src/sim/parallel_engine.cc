#include "sim/parallel_engine.h"

#include <algorithm>
#include <limits>
#include <thread>

namespace mdr::sim {

std::vector<int> assign_shards(const graph::Topology& topo, int shards) {
  std::vector<int> shard_of(topo.num_nodes());
  for (std::size_t i = 0; i < topo.num_nodes(); ++i) {
    shard_of[i] = static_cast<int>(
        fnv1a(topo.name(static_cast<graph::NodeId>(i))) %
        static_cast<std::uint64_t>(shards));
  }
  return shard_of;
}

double min_cross_shard_prop(const graph::Topology& topo,
                            const std::vector<int>& shard_of) {
  double lookahead = std::numeric_limits<double>::infinity();
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    const auto& l = topo.link(id);
    if (shard_of[l.from] == shard_of[l.to]) continue;
    lookahead = std::min(lookahead, l.attr.prop_delay_s);
  }
  return lookahead;
}

void WindowBarrier::arrive_and_wait() {
  // Safe to read relaxed: this participant's exit from the previous phase
  // acquired the current generation, and nobody can advance it again before
  // this arrival is counted.
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
    completion_();  // every other participant is parked on `gen`
    arrived_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
    return;
  }
  // Brief spin for the fast path, then yield: on few-core hosts the other
  // shards need this core to make progress at all.
  int spins = 0;
  while (generation_.load(std::memory_order_acquire) == gen) {
    if (++spins > 64) std::this_thread::yield();
  }
}

}  // namespace mdr::sim
