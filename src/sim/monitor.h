// InvariantMonitor: a runtime watchdog that checks recovery invariants
// while the simulation runs under chaos (node crashes, flapping links,
// bursty loss — see fault/fault_plan.h).
//
// Every `monitor_interval` the monitor sweeps the network and verifies:
//
//   * loop-freedom of the REALIZED forwarding tables — not the successor
//     sets MPDA claims (core/lfi.h covers those), but the positive-weight
//     next-hop choices packets actually follow. A cycle among alive
//     routers for any destination is a forwarding loop;
//   * blackhole detection — an alive router with a physically usable path
//     to a destination (over up links and alive routers) but an empty
//     forwarding entry. Transient blackholes during reconvergence are
//     expected and only counted, never fatal;
//   * delivery accounting — every data packet ever injected is delivered,
//     dropped (with a counted cause), queued, or in flight. A leak means
//     the simulator lost track of a packet.
//
// Crash/recover events open structured incident records; the first passing
// sweep after recovery in which the reborn router can reach every
// physically reachable destination closes the incident with its
// time-to-reconvergence and the packets lost in the meantime.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ckpt/ckpt.h"
#include "core/mp_router.h"
#include "graph/topology.h"
#include "util/time.h"

namespace mdr::sim {

/// One node crash/recover lifecycle and how the network healed from it.
struct Incident {
  graph::NodeId node = graph::kInvalidNode;
  std::string name;
  Time t_crash = 0;
  Time t_recovered = -1;    ///< -1: still down at end of run
  Time t_reconverged = -1;  ///< -1: never reconverged (a failure)
  /// Data packets dropped network-wide between the crash and reconvergence.
  std::uint64_t packets_lost = 0;

  Duration time_to_reconverge() const {
    return t_reconverged >= 0 ? t_reconverged - t_crash : -1;
  }
};

/// The monitor's cumulative findings over one run.
struct MonitorReport {
  std::uint64_t checks = 0;
  std::uint64_t forwarding_loops = 0;   ///< must be 0 (LFI, Theorem 3)
  std::uint64_t blackholes = 0;         ///< transient; diagnostic only
  std::uint64_t accounting_leaks = 0;   ///< must be 0
  /// Sweeps where network-wide control drops since the previous sweep
  /// exceeded MonitorOptions::control_drop_budget (overload watchdog).
  std::uint64_t control_drop_alerts = 0;
  /// Up links between alive routers whose receiving end did not consider
  /// the sender adjacent while that ingress was shedding control packets —
  /// the signature of an adjacency starved out by overload.
  std::uint64_t starved_adjacencies = 0;
  /// Last sweep instant with a forwarding loop or blackhole; -1 when the
  /// whole run was clean. `storm_end` ≤ t_last_anomaly < ∞ bounds
  /// time-to-reconvergence for incidents (like link flapping) that never
  /// open a crash record.
  Time t_last_anomaly = -1;
  std::vector<Incident> incidents;
};

/// The packet-conservation ledger at one instant (data packets only).
struct AccountingSnapshot {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;    ///< all causes, node- and link-level
  std::uint64_t queued = 0;     ///< sitting in link queues / in service
  std::uint64_t in_flight = 0;  ///< propagating on a wire

  bool balanced() const {
    return injected == delivered + dropped + queued + in_flight;
  }
};

/// How the monitor observes the network; wired up by NetworkSim (or a test
/// harness — the monitor itself has no simulator dependencies).
struct MonitorHooks {
  std::function<bool(graph::NodeId)> node_alive;
  std::function<bool(graph::LinkId)> link_up;
  /// Realized forwarding choices of `node` toward `dest`.
  std::function<std::span<const core::ForwardingChoice>(graph::NodeId node,
                                                        graph::NodeId dest)>
      forwarding;
  std::function<AccountingSnapshot()> accounting;
  /// Cumulative control packets shed by a link's ingress budget (queue
  /// drops only — wire corruption and link-down flushes are loss, not
  /// overload). Optional: when absent the control watchdog is disabled
  /// (seed-compatible hooks).
  std::function<std::uint64_t(graph::LinkId)> control_dropped;
  /// Whether `node` currently considers `neighbor` a control-plane
  /// adjacency. Optional; required for starved-adjacency detection.
  std::function<bool(graph::NodeId node, graph::NodeId neighbor)> adjacent;
  /// Fired when an anomaly incident OPENS: the first sweep that finds a
  /// loop / blackhole / accounting leak after an anomaly-free sweep (or at
  /// the start of the run). The argument is the first anomaly kind detected
  /// ("forwarding_loop", "blackhole", "accounting_leak"). A persistent
  /// anomaly fires once when it appears, not once per sweep; after a clean
  /// sweep the next anomaly opens a fresh incident. Optional; NetworkSim
  /// uses it to dump the protocol flight recorder at the incident instant.
  std::function<void(const char* kind, Time now)> anomaly;
};

struct MonitorOptions {
  /// Control packets the network may shed per sweep before the watchdog
  /// raises a control_drop_alert. 0: any drop alerts.
  std::uint64_t control_drop_budget = 0;
};

class InvariantMonitor {
 public:
  InvariantMonitor(const graph::Topology& topo, MonitorHooks hooks,
                   MonitorOptions options = MonitorOptions{});

  /// A router crashed: opens an incident record.
  void on_crash(graph::NodeId node, Time now);
  /// The router rebooted: reconvergence tracking starts.
  void on_recover(graph::NodeId node, Time now);

  /// One full invariant sweep at time `now`.
  void check(Time now);

  const MonitorReport& report() const { return report_; }

  void save(ckpt::Writer& w) const {
    w.u64(report_.checks);
    w.u64(report_.forwarding_loops);
    w.u64(report_.blackholes);
    w.u64(report_.accounting_leaks);
    w.u64(report_.control_drop_alerts);
    w.u64(report_.starved_adjacencies);
    w.f64(report_.t_last_anomaly);
    w.u64(report_.incidents.size());
    for (const Incident& inc : report_.incidents) {
      w.i64(inc.node);
      w.str(inc.name);
      w.f64(inc.t_crash);
      w.f64(inc.t_recovered);
      w.f64(inc.t_reconverged);
      w.u64(inc.packets_lost);
    }
    w.u64(dropped_at_crash_.size());
    for (std::uint64_t v : dropped_at_crash_) w.u64(v);
    w.u64(prev_control_dropped_.size());
    for (std::uint64_t v : prev_control_dropped_) w.u64(v);
    w.b(anomaly_open_);
  }
  void load(ckpt::Reader& r) {
    report_.checks = r.u64();
    report_.forwarding_loops = r.u64();
    report_.blackholes = r.u64();
    report_.accounting_leaks = r.u64();
    report_.control_drop_alerts = r.u64();
    report_.starved_adjacencies = r.u64();
    report_.t_last_anomaly = r.f64();
    report_.incidents.resize(r.u64());
    for (Incident& inc : report_.incidents) {
      inc.node = static_cast<graph::NodeId>(r.i64());
      inc.name = r.str();
      inc.t_crash = r.f64();
      inc.t_recovered = r.f64();
      inc.t_reconverged = r.f64();
      inc.packets_lost = r.u64();
    }
    dropped_at_crash_.resize(r.u64());
    for (std::uint64_t& v : dropped_at_crash_) v = r.u64();
    prev_control_dropped_.resize(r.u64());
    for (std::uint64_t& v : prev_control_dropped_) v = r.u64();
    anomaly_open_ = r.b();
  }

 private:
  const graph::Topology* topo_;
  MonitorHooks hooks_;
  MonitorOptions options_;
  MonitorReport report_;
  /// Network-wide drop count at each open incident's crash instant.
  std::vector<std::uint64_t> dropped_at_crash_;
  /// Per-link cumulative control drops at the previous sweep (watchdog
  /// deltas are per sweep, not per run).
  std::vector<std::uint64_t> prev_control_dropped_;
  /// The previous sweep found an anomaly — hooks_.anomaly fires only on the
  /// clean-to-anomalous edge (incident open), not on every anomalous sweep.
  bool anomaly_open_ = false;
};

/// Compact single-line JSON for the report; deterministic formatting so two
/// runs with the same seed serialize bit-identically.
std::string monitor_report_json(const MonitorReport& report);

// ---------------------------------------------------------------- Stability
//
// StabilityMonitor turns "is this load sustainable?" into a measured
// verdict with a margin, so the load-sweep driver (src/runner/load_sweep.*)
// can bisect to each protocol's blow-up point. Two runaway signatures are
// watched over a sliding window, each normalized into a breach ratio
// (>= 1 means the signature fires):
//
//   * queue growth: the least-squares slope of total queued bits over the
//     window, against a threshold expressed as a fraction of the network's
//     aggregate link capacity (an unstable network accumulates backlog at
//     a rate proportional to its overload);
//   * delay runaway: the windowed mean packet delay against `delay_factor`
//     times the baseline delay measured over the first full window after
//     traffic starts.
//
// A single breaching window is weather; `persistence` consecutive breaching
// windows is climate and yields the unstable verdict. The margin is
// 1 - max over the run of the SUSTAINED breach ratio (the minimum ratio
// across the last `persistence` windows), so margin < 0 iff unstable, and
// the margin varies continuously with offered load — which is what makes
// bisection and the monotone-verdict acceptance check meaningful.

struct StabilityOptions {
  Duration interval = 0;     ///< sampling period; 0 disables the monitor
  Duration window = 10.0;    ///< sliding window for slope fit + mean delay
  /// Queue-growth slope threshold, as a fraction of the topology's total
  /// link capacity per second.
  double slope_capacity_fraction = 0.005;
  double delay_factor = 4.0;  ///< runaway = windowed delay >= factor * base
  int persistence = 4;        ///< consecutive breaching windows to convict
};

/// Per-tick measurements, exposed for telemetry panels.
struct StabilityTick {
  Time t = 0;
  double queued_bits = 0;
  double slope_bps = 0;        ///< windowed least-squares queue slope
  double window_delay_s = 0;   ///< mean delay of the window's deliveries
  double margin = 1.0;         ///< running margin after this tick
};

struct StabilityReport {
  bool unstable = false;
  Time t_unstable = -1;             ///< first conviction instant; -1: stable
  std::uint64_t ticks = 0;
  double margin = 1.0;              ///< 1 - worst sustained breach ratio
  double max_queue_slope_bps = 0;   ///< worst sustained windowed slope
  double slope_threshold_bps = 0;
  double baseline_delay_s = 0;
  double peak_window_delay_s = 0;
  double peak_queue_bits = 0;
  double final_queue_bits = 0;
};

class StabilityMonitor {
 public:
  StabilityMonitor(StabilityOptions options, double total_capacity_bps);

  /// One observation: total bits queued network-wide plus the cumulative
  /// delivered-packet count and delay sum (monotone, data packets with a
  /// flow id only). Called every options.interval after traffic starts.
  void record(Time now, double queued_bits, std::uint64_t delivered_cum,
              double delay_sum_cum_s);

  const StabilityReport& report() const { return report_; }
  const StabilityTick& last() const { return last_; }

  void save(ckpt::Writer& w) const {
    w.b(report_.unstable);
    w.f64(report_.t_unstable);
    w.u64(report_.ticks);
    w.f64(report_.margin);
    w.f64(report_.max_queue_slope_bps);
    w.f64(report_.slope_threshold_bps);
    w.f64(report_.baseline_delay_s);
    w.f64(report_.peak_window_delay_s);
    w.f64(report_.peak_queue_bits);
    w.f64(report_.final_queue_bits);
    w.f64(last_.t);
    w.f64(last_.queued_bits);
    w.f64(last_.slope_bps);
    w.f64(last_.window_delay_s);
    w.f64(last_.margin);
    w.u64(window_.size());
    for (const Sample& s : window_) {
      w.f64(s.t);
      w.f64(s.queued_bits);
      w.u64(s.delivered);
      w.f64(s.delay_sum_s);
    }
    const auto save_deque = [&w](const std::deque<double>& d) {
      w.u64(d.size());
      for (double x : d) w.f64(x);
    };
    save_deque(recent_q_);
    save_deque(recent_d_);
    save_deque(recent_slope_);
    w.b(have_baseline_);
  }
  void load(ckpt::Reader& r) {
    report_.unstable = r.b();
    report_.t_unstable = r.f64();
    report_.ticks = r.u64();
    report_.margin = r.f64();
    report_.max_queue_slope_bps = r.f64();
    report_.slope_threshold_bps = r.f64();
    report_.baseline_delay_s = r.f64();
    report_.peak_window_delay_s = r.f64();
    report_.peak_queue_bits = r.f64();
    report_.final_queue_bits = r.f64();
    last_.t = r.f64();
    last_.queued_bits = r.f64();
    last_.slope_bps = r.f64();
    last_.window_delay_s = r.f64();
    last_.margin = r.f64();
    window_.resize(r.u64());
    for (Sample& s : window_) {
      s.t = r.f64();
      s.queued_bits = r.f64();
      s.delivered = r.u64();
      s.delay_sum_s = r.f64();
    }
    const auto load_deque = [&r](std::deque<double>& d) {
      d.resize(r.u64());
      for (double& x : d) x = r.f64();
    };
    load_deque(recent_q_);
    load_deque(recent_d_);
    load_deque(recent_slope_);
    have_baseline_ = r.b();
  }

 private:
  struct Sample {
    Time t = 0;
    double queued_bits = 0;
    std::uint64_t delivered = 0;
    double delay_sum_s = 0;
  };

  StabilityOptions options_;
  StabilityReport report_;
  StabilityTick last_;
  std::deque<Sample> window_;       ///< samples spanning options_.window
  std::deque<double> recent_q_;     ///< last `persistence` slope ratios
  std::deque<double> recent_d_;     ///< last `persistence` delay ratios
  std::deque<double> recent_slope_;
  bool have_baseline_ = false;
};

/// Compact single-line JSON for the stability report (same deterministic
/// formatting contract as monitor_report_json).
std::string stability_report_json(const StabilityReport& report);

}  // namespace mdr::sim
