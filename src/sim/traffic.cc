#include "sim/traffic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace mdr::sim {

namespace {
constexpr double kMinPacketBits = 64;

// Source-event opcodes (TrafficSource::handle_source_event). Poisson only
// uses kNextArrival; the on/off models alternate burst boundaries
// (kBeginOn) with in-burst emissions (kEmit, arg = the burst's end time).
constexpr std::uint8_t kNextArrival = 0;
constexpr std::uint8_t kBeginOn = 0;
constexpr std::uint8_t kEmit = 1;

Packet make_packet(const FlowShape& shape, Rng& rng, Time now) {
  Packet p;
  p.kind = Packet::Kind::kData;
  p.src = shape.src;
  p.dst = shape.dst;
  p.flow_id = shape.flow_id;
  p.created = now;
  p.size_bits =
      std::max(kMinPacketBits, rng.exponential(shape.mean_packet_bits));
  return p;
}
}  // namespace

double pareto_sample(Rng& rng, double scale, double alpha) {
  // Inverse-CDF sampling: x = x_m * U^(-1/alpha).
  const double u = std::max(rng.uniform(), 1e-12);
  return scale * std::pow(u, -1.0 / alpha);
}

// ----------------------------------------------------------------- Poisson

PoissonSource::PoissonSource(EventQueue& events, FlowShape shape, Rng rng,
                             InjectFn inject)
    : events_(&events),
      shape_(shape),
      rng_(rng),
      inject_(std::move(inject)) {
  assert(shape.rate_bps > 0);
  assert(shape.mean_packet_bits > 0);
  const double pkt_rate = shape.rate_bps / shape.mean_packet_bits;
  mean_interarrival_s_ = 1.0 / pkt_rate;
}

void PoissonSource::run(Time start, Time stop) {
  assert(stop > start);
  stop_ = stop;
  // Draw first, then decide: the RNG stream must not depend on where the
  // arrival lands. Nothing is ever scheduled at or past stop_, so the
  // queue drains to protocol-only events at teardown.
  const Time first = start + rng_.exponential(mean_interarrival_s_);
  if (first < stop_) {
    events_->schedule_source_event(first, this, kNextArrival, 0);
  }
}

void PoissonSource::handle_source_event(std::uint8_t /*op*/,
                                        double /*arg*/) {
  emit_and_reschedule();
}

void PoissonSource::emit_and_reschedule() {
  ++emitted_;
  inject_(make_packet(shape_, rng_, events_->now()));
  const Time next = events_->now() + rng_.exponential(mean_interarrival_s_);
  if (next < stop_) {
    events_->schedule_source_event(next, this, kNextArrival, 0);
  }
}

// ----------------------------------------------------------- Pareto on/off

ParetoOnOffSource::ParetoOnOffSource(EventQueue& events, FlowShape shape,
                                     Shape burst, Rng rng, InjectFn inject)
    : events_(&events),
      shape_(shape),
      burst_(burst),
      rng_(rng),
      inject_(std::move(inject)) {
  assert(shape.rate_bps > 0);
  assert(burst.alpha > 1.0);  // mean must exist
  // Pareto(x_m, alpha) has mean x_m * alpha / (alpha - 1).
  scale_on_ = burst.mean_on_s * (burst.alpha - 1.0) / burst.alpha;
  scale_off_ = burst.mean_off_s * (burst.alpha - 1.0) / burst.alpha;
  const double duty = burst.mean_on_s / (burst.mean_on_s + burst.mean_off_s);
  peak_interarrival_s_ = shape.mean_packet_bits / (shape.rate_bps / duty);
}

double ParetoOnOffSource::pareto(double scale) {
  return pareto_sample(rng_, scale, burst_.alpha);
}

void ParetoOnOffSource::run(Time start, Time stop) {
  assert(stop > start);
  stop_ = stop;
  const Time first = start + pareto(scale_off_) * rng_.uniform();
  if (first < stop_) {
    events_->schedule_source_event(first, this, kBeginOn, 0);
  }
}

void ParetoOnOffSource::handle_source_event(std::uint8_t op, double arg) {
  if (op == kBeginOn) {
    begin_on_period();
    return;
  }
  ++emitted_;
  inject_(make_packet(shape_, rng_, events_->now()));
  schedule_next_packet(/*period_end=*/arg);
}

void ParetoOnOffSource::begin_on_period() {
  const Time period_end = events_->now() + pareto(scale_on_);
  schedule_next_packet(period_end);
  const Time next_on = period_end + pareto(scale_off_);
  if (next_on < stop_) {
    events_->schedule_source_event(next_on, this, kBeginOn, 0);
  }
}

void ParetoOnOffSource::schedule_next_packet(Time period_end) {
  const Time next = events_->now() + rng_.exponential(peak_interarrival_s_);
  if (next >= period_end || next >= stop_) return;
  events_->schedule_source_event(next, this, kEmit, period_end);
}

// ------------------------------------------------------------------ On/Off

OnOffSource::OnOffSource(EventQueue& events, FlowShape shape,
                         Burstiness burstiness, Rng rng, InjectFn inject)
    : events_(&events),
      shape_(shape),
      burstiness_(burstiness),
      rng_(rng),
      inject_(std::move(inject)) {
  assert(shape.rate_bps > 0);
  const double duty =
      burstiness.mean_on_s / (burstiness.mean_on_s + burstiness.mean_off_s);
  const double peak_bps = shape.rate_bps / duty;
  peak_interarrival_s_ = shape.mean_packet_bits / peak_bps;
}

void OnOffSource::run(Time start, Time stop) {
  assert(stop > start);
  stop_ = stop;
  // Start in a random phase: an OFF tail, then the first ON period.
  const Time first =
      start + rng_.exponential(burstiness_.mean_off_s) * rng_.uniform();
  if (first < stop_) {
    events_->schedule_source_event(first, this, kBeginOn, 0);
  }
}

void OnOffSource::handle_source_event(std::uint8_t op, double arg) {
  if (op == kBeginOn) {
    begin_on_period();
    return;
  }
  ++emitted_;
  inject_(make_packet(shape_, rng_, events_->now()));
  schedule_next_packet(/*period_end=*/arg);
}

void OnOffSource::begin_on_period() {
  const Time period_end =
      events_->now() + rng_.exponential(burstiness_.mean_on_s);
  schedule_next_packet(period_end);
  const Time next_on =
      period_end + rng_.exponential(burstiness_.mean_off_s);
  if (next_on < stop_) {
    events_->schedule_source_event(next_on, this, kBeginOn, 0);
  }
}

void OnOffSource::schedule_next_packet(Time period_end) {
  const Time next = events_->now() + rng_.exponential(peak_interarrival_s_);
  if (next >= period_end || next >= stop_) return;
  events_->schedule_source_event(next, this, kEmit, period_end);
}

// ------------------------------------------------------------- Adversarial

AdversarialSource::AdversarialSource(EventQueue& events, FlowShape shape,
                                     Shape adv, Rng rng, InjectFn inject)
    : events_(&events),
      shape_(shape),
      adv_(adv),
      rng_(rng),
      inject_(std::move(inject)) {
  assert(shape.rate_bps > 0);
  assert(adv.w_s > 0 && adv.eps > 0);
  assert(adv.peak > 1.0);  // a burst must outrun its own refill
  sigma_bits_ = adv.eps * adv.w_s * shape.rate_bps;
  peak_bps_ = adv.peak * shape.rate_bps;
}

void AdversarialSource::run(Time start, Time stop) {
  assert(stop > start);
  start_ = start;
  stop_ = stop;
  last_refill_ = start;
  // sync: every flow starts with a full bucket and dumps immediately — the
  // coordinated adversary. Otherwise the initial fill is random, which
  // staggers the sawtooth phases across flows.
  tokens_ = adv_.sync ? sigma_bits_ : sigma_bits_ * rng_.uniform();
  events_->schedule_source_event(start, this, kEmit, 0);
}

void AdversarialSource::handle_source_event(std::uint8_t /*op*/,
                                            double /*arg*/) {
  const Time now = events_->now();
  tokens_ = std::min(sigma_bits_,
                     tokens_ + shape_.rate_bps * (now - last_refill_));
  last_refill_ = now;
  // Draw first, then decide: the drawn packet is held (not redrawn) until
  // the bucket can afford it, so the RNG stream and the emitted sequence
  // are independent of where affordability waits land.
  if (!has_pending_) {
    pending_ = make_packet(shape_, rng_, now);
    has_pending_ = true;
  }
  if (pending_.size_bits > tokens_) {
    // Sleep until the bucket is full again (or, for a rare oversized
    // packet, until it is affordable), then resume the dump.
    const double wait =
        (std::max(sigma_bits_, pending_.size_bits) - tokens_) /
        shape_.rate_bps;
    const Time next = now + wait;
    if (next < stop_) events_->schedule_source_event(next, this, kEmit, 0);
    return;
  }
  tokens_ -= pending_.size_bits;
  pending_.created = now;
  ++emitted_;
  emitted_bits_ += pending_.size_bits;
  has_pending_ = false;
  inject_(pending_);
  // Back-to-back at the peak wire rate while tokens last.
  const Time next = now + pending_.size_bits / peak_bps_;
  if (next < stop_) events_->schedule_source_event(next, this, kEmit, 0);
}

// --------------------------------------------------------------- Modulated

double RateProfile::multiplier(Time t) const {
  double m = 1.0;
  if (period_s > 0) {
    constexpr double kTwoPi = 6.283185307179586;
    m *= 1.0 + amplitude * std::sin(kTwoPi * (t - phase_s) / period_s);
  }
  for (const Episode& ep : episodes) {
    const Time up_end = ep.start + ep.ramp_s;
    const Time hold_end = up_end + ep.hold_s;
    const Time down_end = hold_end + ep.ramp_s;
    double f = 1.0;
    if (t <= ep.start || t >= down_end) {
      f = 1.0;
    } else if (t < up_end) {
      f = 1.0 + (ep.peak - 1.0) * (t - ep.start) / ep.ramp_s;
    } else if (t <= hold_end) {
      f = ep.peak;
    } else {
      f = 1.0 + (ep.peak - 1.0) * (down_end - t) / ep.ramp_s;
    }
    m *= f;
  }
  return std::max(m, 0.0);
}

double RateProfile::peak() const {
  double p = period_s > 0 ? 1.0 + amplitude : 1.0;
  for (const Episode& ep : episodes) p *= std::max(1.0, ep.peak);
  return p;
}

ModulatedSource::ModulatedSource(EventQueue& events, RateProfile profile,
                                 Rng rng, InjectFn inject)
    : events_(&events),
      profile_(std::move(profile)),
      rng_(rng),
      inject_(std::move(inject)) {
  peak_ = profile_.peak();
  assert(peak_ >= 1.0);
}

InjectFn ModulatedSource::gate() {
  return [this](Packet p) { offer(std::move(p)); };
}

void ModulatedSource::adopt(std::unique_ptr<TrafficSource> inner) {
  inner_ = std::move(inner);
}

void ModulatedSource::run(Time start, Time stop) {
  assert(inner_);
  inner_->run(start, stop);
}

void ModulatedSource::handle_source_event(std::uint8_t /*op*/,
                                          double /*arg*/) {
  // Only the inner source schedules typed events, addressed to itself.
  assert(false && "ModulatedSource never schedules source events");
}

void ModulatedSource::offer(Packet p) {
  ++offered_;
  // Thinning: accept with probability multiplier(now)/peak. The draw is
  // unconditional so the wrapper's RNG stream is emission-indexed.
  const double u = rng_.uniform();
  if (u * peak_ >= profile_.multiplier(events_->now())) return;
  ++accepted_;
  inject_(std::move(p));
}

}  // namespace mdr::sim
