#include "sim/traffic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace mdr::sim {

namespace {
constexpr double kMinPacketBits = 64;

// Source-event opcodes (TrafficSource::handle_source_event). Poisson only
// uses kNextArrival; the on/off models alternate burst boundaries
// (kBeginOn) with in-burst emissions (kEmit, arg = the burst's end time).
constexpr std::uint8_t kNextArrival = 0;
constexpr std::uint8_t kBeginOn = 0;
constexpr std::uint8_t kEmit = 1;

Packet make_packet(const FlowShape& shape, Rng& rng, Time now) {
  Packet p;
  p.kind = Packet::Kind::kData;
  p.src = shape.src;
  p.dst = shape.dst;
  p.flow_id = shape.flow_id;
  p.created = now;
  p.size_bits =
      std::max(kMinPacketBits, rng.exponential(shape.mean_packet_bits));
  return p;
}
}  // namespace

// ----------------------------------------------------------------- Poisson

PoissonSource::PoissonSource(EventQueue& events, FlowShape shape, Rng rng,
                             InjectFn inject)
    : events_(&events),
      shape_(shape),
      rng_(rng),
      inject_(std::move(inject)) {
  assert(shape.rate_bps > 0);
  assert(shape.mean_packet_bits > 0);
  const double pkt_rate = shape.rate_bps / shape.mean_packet_bits;
  mean_interarrival_s_ = 1.0 / pkt_rate;
}

void PoissonSource::run(Time start, Time stop) {
  assert(stop > start);
  stop_ = stop;
  // Draw first, then decide: the RNG stream must not depend on where the
  // arrival lands. Nothing is ever scheduled at or past stop_, so the
  // queue drains to protocol-only events at teardown.
  const Time first = start + rng_.exponential(mean_interarrival_s_);
  if (first < stop_) {
    events_->schedule_source_event(first, this, kNextArrival, 0);
  }
}

void PoissonSource::handle_source_event(std::uint8_t /*op*/,
                                        double /*arg*/) {
  emit_and_reschedule();
}

void PoissonSource::emit_and_reschedule() {
  ++emitted_;
  inject_(make_packet(shape_, rng_, events_->now()));
  const Time next = events_->now() + rng_.exponential(mean_interarrival_s_);
  if (next < stop_) {
    events_->schedule_source_event(next, this, kNextArrival, 0);
  }
}

// ----------------------------------------------------------- Pareto on/off

ParetoOnOffSource::ParetoOnOffSource(EventQueue& events, FlowShape shape,
                                     Shape burst, Rng rng, InjectFn inject)
    : events_(&events),
      shape_(shape),
      burst_(burst),
      rng_(rng),
      inject_(std::move(inject)) {
  assert(shape.rate_bps > 0);
  assert(burst.alpha > 1.0);  // mean must exist
  // Pareto(x_m, alpha) has mean x_m * alpha / (alpha - 1).
  scale_on_ = burst.mean_on_s * (burst.alpha - 1.0) / burst.alpha;
  scale_off_ = burst.mean_off_s * (burst.alpha - 1.0) / burst.alpha;
  const double duty = burst.mean_on_s / (burst.mean_on_s + burst.mean_off_s);
  peak_interarrival_s_ = shape.mean_packet_bits / (shape.rate_bps / duty);
}

double ParetoOnOffSource::pareto(double scale) {
  // Inverse-CDF sampling: x = x_m * U^(-1/alpha).
  const double u = std::max(rng_.uniform(), 1e-12);
  return scale * std::pow(u, -1.0 / burst_.alpha);
}

void ParetoOnOffSource::run(Time start, Time stop) {
  assert(stop > start);
  stop_ = stop;
  const Time first = start + pareto(scale_off_) * rng_.uniform();
  if (first < stop_) {
    events_->schedule_source_event(first, this, kBeginOn, 0);
  }
}

void ParetoOnOffSource::handle_source_event(std::uint8_t op, double arg) {
  if (op == kBeginOn) {
    begin_on_period();
    return;
  }
  ++emitted_;
  inject_(make_packet(shape_, rng_, events_->now()));
  schedule_next_packet(/*period_end=*/arg);
}

void ParetoOnOffSource::begin_on_period() {
  const Time period_end = events_->now() + pareto(scale_on_);
  schedule_next_packet(period_end);
  const Time next_on = period_end + pareto(scale_off_);
  if (next_on < stop_) {
    events_->schedule_source_event(next_on, this, kBeginOn, 0);
  }
}

void ParetoOnOffSource::schedule_next_packet(Time period_end) {
  const Time next = events_->now() + rng_.exponential(peak_interarrival_s_);
  if (next >= period_end || next >= stop_) return;
  events_->schedule_source_event(next, this, kEmit, period_end);
}

// ------------------------------------------------------------------ On/Off

OnOffSource::OnOffSource(EventQueue& events, FlowShape shape,
                         Burstiness burstiness, Rng rng, InjectFn inject)
    : events_(&events),
      shape_(shape),
      burstiness_(burstiness),
      rng_(rng),
      inject_(std::move(inject)) {
  assert(shape.rate_bps > 0);
  const double duty =
      burstiness.mean_on_s / (burstiness.mean_on_s + burstiness.mean_off_s);
  const double peak_bps = shape.rate_bps / duty;
  peak_interarrival_s_ = shape.mean_packet_bits / peak_bps;
}

void OnOffSource::run(Time start, Time stop) {
  assert(stop > start);
  stop_ = stop;
  // Start in a random phase: an OFF tail, then the first ON period.
  const Time first =
      start + rng_.exponential(burstiness_.mean_off_s) * rng_.uniform();
  if (first < stop_) {
    events_->schedule_source_event(first, this, kBeginOn, 0);
  }
}

void OnOffSource::handle_source_event(std::uint8_t op, double arg) {
  if (op == kBeginOn) {
    begin_on_period();
    return;
  }
  ++emitted_;
  inject_(make_packet(shape_, rng_, events_->now()));
  schedule_next_packet(/*period_end=*/arg);
}

void OnOffSource::begin_on_period() {
  const Time period_end =
      events_->now() + rng_.exponential(burstiness_.mean_on_s);
  schedule_next_packet(period_end);
  const Time next_on =
      period_end + rng_.exponential(burstiness_.mean_off_s);
  if (next_on < stop_) {
    events_->schedule_source_event(next_on, this, kBeginOn, 0);
  }
}

void OnOffSource::schedule_next_packet(Time period_end) {
  const Time next = events_->now() + rng_.exponential(peak_interarrival_s_);
  if (next >= period_end || next >= stop_) return;
  events_->schedule_source_event(next, this, kEmit, period_end);
}

}  // namespace mdr::sim
