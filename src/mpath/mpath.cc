#include "mpath/mpath.h"

#include <algorithm>
#include <cassert>

namespace mdr::mpath {

using graph::Cost;
using graph::NodeId;

MpathProcess::MpathProcess(NodeId self, std::size_t num_nodes,
                           VectorSink& sink)
    : self_(self),
      num_nodes_(num_nodes),
      sink_(&sink),
      dist_(num_nodes, graph::kInfCost),
      hops_(num_nodes, 0),
      advertised_(num_nodes, graph::kInfCost),
      fd_(num_nodes, graph::kInfCost),
      successors_(num_nodes) {
  dist_[self] = 0;
  fd_[self] = 0;
}

Cost MpathProcess::distance_via(NodeId dest, NodeId k) const {
  const auto it = neighbors_.find(k);
  if (it == neighbors_.end()) return graph::kInfCost;
  return it->second.dist[dest];
}

std::size_t MpathProcess::acks_pending() const {
  std::size_t total = 0;
  for (const auto& [k, n] : pending_acks_) total += static_cast<std::size_t>(n);
  return total;
}

void MpathProcess::send(NodeId k, const VectorMessage& msg) {
  sink_->send(k, msg);
  ++messages_sent_;
}

void MpathProcess::on_link_up(NodeId k, Cost cost) {
  assert(cost >= 0 && cost < graph::kInfCost);
  NeighborState state;
  state.link_cost = cost;
  state.dist.assign(num_nodes_, graph::kInfCost);
  state.hops.assign(num_nodes_, 0);
  state.dist[k] = 0;
  neighbors_[k] = std::move(state);
  full_sync_.insert(k);
  after_event(graph::kInvalidNode);
  // A new neighbor that the flood above did not reach still needs the full
  // vector (cf. MPDA's full-topology sync).
  if (full_sync_.contains(k)) {
    full_sync_.erase(k);
    std::vector<VectorEntry> all;
    for (NodeId j = 0; j < static_cast<NodeId>(num_nodes_); ++j) {
      if (dist_[j] < graph::kInfCost) {
        all.push_back(VectorEntry{j, dist_[j], hops_[j]});
      }
    }
    if (!all.empty()) {
      send(k, VectorMessage{self_, false, std::move(all)});
      ++pending_acks_[k];
      mode_ = Mode::kActive;
    }
  }
}

void MpathProcess::on_link_down(NodeId k) {
  neighbors_.erase(k);
  pending_acks_.erase(k);
  full_sync_.erase(k);
  after_event(graph::kInvalidNode);
}

void MpathProcess::on_link_cost_change(NodeId k, Cost cost) {
  assert(cost >= 0 && cost < graph::kInfCost);
  const auto it = neighbors_.find(k);
  if (it == neighbors_.end()) return;
  it->second.link_cost = cost;
  after_event(graph::kInvalidNode);
}

void MpathProcess::on_message(const VectorMessage& msg) {
  const auto it = neighbors_.find(msg.sender);
  if (it == neighbors_.end()) return;  // raced with link_down
  if (msg.ack) {
    const auto p = pending_acks_.find(msg.sender);
    if (p != pending_acks_.end() && --p->second == 0) pending_acks_.erase(p);
  }
  for (const VectorEntry& e : msg.entries) {
    assert(e.dest >= 0 && static_cast<std::size_t>(e.dest) < num_nodes_);
    it->second.dist[e.dest] = e.distance;
    it->second.hops[e.dest] = e.hops;
  }
  after_event(msg.requires_ack() ? msg.sender : graph::kInvalidNode);
}

std::vector<VectorEntry> MpathProcess::recompute() {
  std::vector<VectorEntry> changes;
  for (NodeId j = 0; j < static_cast<NodeId>(num_nodes_); ++j) {
    if (j == self_) continue;
    Cost best = graph::kInfCost;
    int best_hops = 0;
    for (const auto& [k, state] : neighbors_) {
      if (state.dist[j] == graph::kInfCost) continue;
      // Hop bound kills count-to-infinity: a loop-free path visits at most
      // num_nodes - 1 links.
      if (state.hops[j] + 1 >= static_cast<int>(num_nodes_)) continue;
      const Cost d = state.dist[j] + state.link_cost;
      if (d < best) {
        best = d;
        best_hops = state.hops[j] + 1;
      }
    }
    dist_[j] = best;
    hops_[j] = best_hops;
    if (dist_[j] != advertised_[j]) {
      changes.push_back(VectorEntry{j, dist_[j], hops_[j]});
      advertised_[j] = dist_[j];
    }
  }
  return changes;
}

void MpathProcess::after_event(NodeId ack_to) {
  std::vector<VectorEntry> changes;
  if (mode_ == Mode::kPassive) {
    changes = recompute();
    for (std::size_t j = 0; j < fd_.size(); ++j) {
      fd_[j] = std::min(fd_[j], dist_[j]);
    }
  } else if (pending_acks_.empty()) {
    std::vector<Cost> temp = dist_;
    mode_ = Mode::kPassive;
    changes = recompute();
    for (std::size_t j = 0; j < fd_.size(); ++j) {
      fd_[j] = std::min(temp[j], dist_[j]);
    }
  }

  recompute_successors();

  if (!changes.empty()) {
    mode_ = Mode::kActive;
    for (const auto& [k, state] : neighbors_) {
      ++pending_acks_[k];
      if (full_sync_.erase(k) > 0) {
        std::vector<VectorEntry> all;
        for (NodeId j = 0; j < static_cast<NodeId>(num_nodes_); ++j) {
          if (dist_[j] < graph::kInfCost) {
            all.push_back(VectorEntry{j, dist_[j], hops_[j]});
          }
        }
        send(k, VectorMessage{self_, k == ack_to, std::move(all)});
      } else {
        send(k, VectorMessage{self_, k == ack_to, changes});
      }
    }
  } else if (ack_to != graph::kInvalidNode && neighbors_.contains(ack_to)) {
    send(ack_to, VectorMessage{self_, true, {}});
  }
}

void MpathProcess::recompute_successors() {
  for (NodeId j = 0; j < static_cast<NodeId>(num_nodes_); ++j) {
    if (j == self_) continue;
    std::vector<NodeId> next;
    for (const auto& [k, state] : neighbors_) {
      if (state.dist[j] < fd_[j]) next.push_back(k);
    }
    successors_[j] = std::move(next);
  }
}

}  // namespace mdr::mpath
