// MPATH-style loop-free multipath distance-vector routing (extension).
//
// The paper's Section 3 presents the Loop-Free Invariant conditions as
// algorithm-agnostic: "in link-state algorithms the values of D_jk are
// determined locally from the link-state information supplied by the
// router's neighbors; in contrast, in distance-vector algorithms the
// distances are directly communicated among neighbors." The authors'
// follow-on paper (MPATH, Vutukury & Garcia-Luna-Aceves) builds exactly
// that distance-vector realization, again with inter-neighbor
// synchronization spanning a single hop.
//
// MpathProcess mirrors MPDA's structure with distance vectors in place of
// partial topologies:
//   * neighbors advertise (destination, distance, hop-count) entries;
//   * a router computes D_j = min_k (D_jk + l_k);
//   * advertisements are acknowledged; while ACTIVE (awaiting ACKs) the
//     router defers recomputation, and feasible distances follow the same
//     PASSIVE-lower / transition-raise discipline as MPDA, so the LFI
//     conditions — and therefore instantaneous loop-freedom — hold by the
//     same argument (Theorem 1);
//   * hop counts bound the classic distance-vector count-to-infinity:
//     entries whose path would exceed the node count are unreachable.
//
// Used by the convergence/overhead ablation bench to compare the link-state
// and distance-vector realizations of the same framework.
//
// Scope note: unlike MpdaProcess, this extension assumes the paper's
// reliable in-order transport (no sequence numbers / retransmission); drive
// it over lossless channels, as the harnesses do.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "graph/topology.h"

namespace mdr::mpath {

/// One advertised routing entry.
struct VectorEntry {
  graph::NodeId dest = graph::kInvalidNode;
  graph::Cost distance = graph::kInfCost;  ///< kInfCost = retraction
  int hops = 0;

  friend bool operator==(const VectorEntry&, const VectorEntry&) = default;
};

/// A distance-vector update message.
struct VectorMessage {
  graph::NodeId sender = graph::kInvalidNode;
  bool ack = false;
  std::vector<VectorEntry> entries;

  bool requires_ack() const { return !entries.empty(); }
};

/// Outbound message interface (mirrors proto::LsuSink).
class VectorSink {
 public:
  virtual ~VectorSink() = default;
  virtual void send(graph::NodeId neighbor, const VectorMessage& msg) = 0;
};

class MpathProcess {
 public:
  enum class Mode { kPassive, kActive };

  MpathProcess(graph::NodeId self, std::size_t num_nodes, VectorSink& sink);

  // --- protocol events -----------------------------------------------------
  void on_link_up(graph::NodeId k, graph::Cost cost);
  void on_link_down(graph::NodeId k);
  void on_link_cost_change(graph::NodeId k, graph::Cost cost);
  void on_message(const VectorMessage& msg);

  // --- routing state -------------------------------------------------------
  graph::Cost distance(graph::NodeId dest) const { return dist_[dest]; }
  graph::Cost feasible_distance(graph::NodeId dest) const { return fd_[dest]; }
  graph::Cost distance_via(graph::NodeId dest, graph::NodeId k) const;
  const std::vector<graph::NodeId>& successors(graph::NodeId dest) const {
    return successors_[dest];
  }
  bool passive() const { return mode_ == Mode::kPassive; }
  std::size_t acks_pending() const;
  std::size_t messages_sent() const { return messages_sent_; }
  graph::NodeId self() const { return self_; }

 private:
  struct NeighborState {
    graph::Cost link_cost = graph::kInfCost;
    std::vector<graph::Cost> dist;  ///< D_jk as advertised by k
    std::vector<int> hops;
  };

  void after_event(graph::NodeId ack_to);
  /// Recomputes D/hops for every destination; returns advertisement entries
  /// for those that changed since the last advertisement.
  std::vector<VectorEntry> recompute();
  void recompute_successors();
  void send(graph::NodeId k, const VectorMessage& msg);

  graph::NodeId self_;
  std::size_t num_nodes_;
  VectorSink* sink_;
  Mode mode_ = Mode::kPassive;
  std::map<graph::NodeId, NeighborState> neighbors_;
  std::map<graph::NodeId, int> pending_acks_;
  std::set<graph::NodeId> full_sync_;
  std::vector<graph::Cost> dist_;
  std::vector<int> hops_;
  std::vector<graph::Cost> advertised_;  ///< last distances sent
  std::vector<graph::Cost> fd_;
  std::vector<std::vector<graph::NodeId>> successors_;
  std::size_t messages_sent_ = 0;
};

}  // namespace mdr::mpath
