// MetricRegistry: named counters, gauges and log-bucketed histograms for
// run telemetry (docs/OBSERVABILITY.md).
//
// Design goals, in order:
//   * O(1) record on hot paths — a histogram insert touches one bucket, no
//     sorting, no allocation (the full-sort-per-query util/stats.h Samples
//     stays the tool for *exact* end-of-run reporting, never for per-packet
//     instrumentation);
//   * mergeable — the runner's worker threads each fill a private registry
//     and the batch merges them afterwards in job-index order, so the
//     combined view is bit-identical for any thread count;
//   * cheap percentile queries — a log-bucketed histogram answers any
//     quantile with one pass over ~800 fixed buckets, at a bounded relative
//     error (<= half a bucket, ~6% with 8 sub-buckets per octave).
//
// Handles returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime (node-based map), so instrument points resolve the
// name once and keep the pointer.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ckpt/ckpt.h"

namespace mdr::obs {

/// Fixed-layout log-bucketed histogram of positive doubles.
///
/// A value maps to (binary exponent, linear sub-bucket of the mantissa):
/// 8 sub-buckets per octave bound the relative quantization error of any
/// percentile estimate by ~6%. Count, sum, min and max are tracked exactly.
/// Values <= 0 (and anything below the smallest representable bucket) land
/// in a dedicated underflow bucket at the bottom of the range.
class LogHistogram {
 public:
  LogHistogram();

  /// O(1): one bucket increment plus exact count/sum/min/max updates.
  void record(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// q-quantile estimate (q in [0,1]) by nearest-rank over the buckets; the
  /// returned value is the bucket midpoint, clamped to the exact [min, max]
  /// observed. 0 when empty.
  double percentile(double q) const;

  /// Elementwise bucket addition; exact fields combine exactly.
  void merge(const LogHistogram& other);

  bool empty() const { return count_ == 0; }

  /// Buckets are stored sparsely (index, count) — most histograms touch a
  /// handful of the ~800 buckets.
  void save(ckpt::Writer& w) const {
    w.u64(count_);
    w.f64(sum_);
    w.f64(min_);
    w.f64(max_);
    std::uint32_t nonzero = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      if (buckets_[i] != 0) ++nonzero;
    }
    w.u32(nonzero);
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      if (buckets_[i] != 0) {
        w.u32(static_cast<std::uint32_t>(i));
        w.u64(buckets_[i]);
      }
    }
  }
  void load(ckpt::Reader& r) {
    count_ = r.u64();
    sum_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
    for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] = 0;
    const std::uint32_t nonzero = r.u32();
    for (std::uint32_t k = 0; k < nonzero; ++k) {
      const std::uint32_t i = r.u32();
      if (i >= kNumBuckets) throw ckpt::Error("histogram bucket out of range");
      buckets_[i] = r.u64();
    }
  }

  /// Sub-buckets per power of two; the quantization grain.
  static constexpr int kSubBuckets = 8;
  /// Covered binary exponents [kMinExp, kMaxExp]: ~1e-18 .. ~1e12, enough
  /// for delays in seconds, queue depths in bits and rates in Hz alike.
  static constexpr int kMinExp = -60;
  static constexpr int kMaxExp = 40;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp + 1) * kSubBuckets + 1;

 private:
  static std::size_t bucket_index(double value);
  /// Midpoint of bucket `index` (index 0 is the underflow bucket).
  static double bucket_mid(std::size_t index);

  std::uint64_t buckets_[kNumBuckets];
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named metrics for one run (or one merged batch). Iteration is in name
/// order everywhere, so serialization is deterministic.
class MetricRegistry {
 public:
  /// Monotonic counter; create-on-first-use, zero-initialized.
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  /// Last-written value; create-on-first-use, zero-initialized.
  double& gauge(const std::string& name) { return gauges_[name]; }
  LogHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, LogHistogram>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Merge semantics: counters add, histograms merge bucketwise, gauges take
  /// `other`'s value (last writer wins — merge in job-index order for a
  /// deterministic result).
  void merge(const MetricRegistry& other);

  /// Appends this registry as a deterministic JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
  /// mean,p50,p90,p99}}}. Doubles use "%.17g" (round-trip exact).
  void append_json(std::string& out) const;

  /// Checkpoint save/load. load() assigns into existing map nodes instead of
  /// clearing, so counter()/gauge()/histogram() handles cached by instrument
  /// points before the restore stay valid.
  void save(ckpt::Writer& w) const {
    w.u64(counters_.size());
    for (const auto& [name, v] : counters_) {
      w.str(name);
      w.u64(v);
    }
    w.u64(gauges_.size());
    for (const auto& [name, v] : gauges_) {
      w.str(name);
      w.f64(v);
    }
    w.u64(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      w.str(name);
      h.save(w);
    }
  }
  void load(ckpt::Reader& r) {
    const std::uint64_t nc = r.u64();
    for (std::uint64_t i = 0; i < nc; ++i) {
      const std::string name = r.str();
      counters_[name] = r.u64();
    }
    const std::uint64_t ng = r.u64();
    for (std::uint64_t i = 0; i < ng; ++i) {
      const std::string name = r.str();
      gauges_[name] = r.f64();
    }
    const std::uint64_t nh = r.u64();
    for (std::uint64_t i = 0; i < nh; ++i) {
      const std::string name = r.str();
      histograms_[name].load(r);
    }
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, LogHistogram> histograms_;
};

}  // namespace mdr::obs
