#include "obs/trace.h"

#include <algorithm>
#include <string>

namespace mdr::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kLsuOriginate: return "lsu_originate";
    case EventType::kLsuReceive: return "lsu_receive";
    case EventType::kFdChange: return "fd_change";
    case EventType::kSuccessorChange: return "successor_change";
    case EventType::kIhAlloc: return "ih_alloc";
    case EventType::kAhAlloc: return "ah_alloc";
    case EventType::kCrash: return "crash";
    case EventType::kRecover: return "recover";
    case EventType::kDampSuppress: return "damp_suppress";
    case EventType::kDampRelease: return "damp_release";
    case EventType::kControlDrop: return "control_drop";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t num_nodes,
                               std::size_t ring_capacity, bool keep_all,
                               MetricRegistry* metrics)
    : rings_(num_nodes),
      ring_capacity_(ring_capacity > 0 ? ring_capacity : 1),
      keep_all_(keep_all) {
  if (metrics != nullptr) {
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
      counters_[i] = &metrics->counter(
          std::string("events.") +
          event_type_name(static_cast<EventType>(i)));
    }
  }
}

void FlightRecorder::record(const Event& e) {
  const auto type_index = static_cast<std::size_t>(e.type);
  if (type_index < kNumEventTypes && counters_[type_index] != nullptr) {
    ++*counters_[type_index];
  }
  Ring& ring = (e.node >= 0 && static_cast<std::size_t>(e.node) < rings_.size())
                   ? rings_[static_cast<std::size_t>(e.node)]
                   : off_node_;
  const Stamped stamped{e, next_seq_++};
  if (ring.slots.size() < ring_capacity_) {
    ring.slots.push_back(stamped);
  } else {
    ring.slots[ring.next] = stamped;
    ring.next = (ring.next + 1) % ring_capacity_;
  }
  if (keep_all_) trace_.push_back(e);
}

std::vector<Event> FlightRecorder::dump() const {
  std::vector<Stamped> all;
  for (const Ring& ring : rings_) {
    all.insert(all.end(), ring.slots.begin(), ring.slots.end());
  }
  all.insert(all.end(), off_node_.slots.begin(), off_node_.slots.end());
  // The global sequence number is assigned in record order, which the
  // monotonic sim clock makes chronological — one sort key, fully stable.
  std::sort(all.begin(), all.end(),
            [](const Stamped& a, const Stamped& b) { return a.seq < b.seq; });
  std::vector<Event> out;
  out.reserve(all.size());
  for (const Stamped& s : all) out.push_back(s.event);
  return out;
}

}  // namespace mdr::obs
