#include "obs/spans.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "obs/prof.h"

namespace mdr::obs {

namespace {

constexpr std::uint64_t kNoParent = ~std::uint64_t{0};

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Distribution + amplification statistics over all originations.
void compute_span_stats(ConvergenceReport& report) {
  report.mean_convergence_s = report.p95_convergence_s =
      report.max_convergence_s = 0;
  report.mean_routers_touched = report.mean_recomputes =
      report.max_routers_touched = 0;
  std::vector<double> durations;
  double sum_routers = 0, sum_recomputes = 0, sum_dur = 0;
  for (const ConvergenceSpan& s : report.spans) {
    sum_routers += s.routers_touched;
    sum_recomputes += s.episodes;
    if (s.routers_touched > report.max_routers_touched)
      report.max_routers_touched = s.routers_touched;
    if (s.duration_s > 0) {
      durations.push_back(s.duration_s);
      sum_dur += s.duration_s;
    }
  }
  if (!report.spans.empty()) {
    report.mean_routers_touched = sum_routers / report.spans.size();
    report.mean_recomputes = sum_recomputes / report.spans.size();
  }
  if (!durations.empty()) {
    std::sort(durations.begin(), durations.end());
    report.mean_convergence_s = sum_dur / durations.size();
    report.max_convergence_s = durations.back();
    const std::size_t idx =
        durations.size() > 1
            ? static_cast<std::size_t>(0.95 * (durations.size() - 1))
            : 0;
    report.p95_convergence_s = durations[idx];
  }
}

}  // namespace

ConvergenceReport assemble_spans(
    const std::vector<const SpanRecorder*>& recorders) {
  ConvergenceReport report;

  struct Episode {
    Time t0 = 0;
    Time last_t = 0;
    graph::NodeId node = graph::kInvalidNode;
    std::uint8_t flags = 0;
    std::uint64_t parent = kNoParent;  ///< global key of parent episode
    std::uint32_t sends = 0;
    std::uint32_t successor_changes = 0;
    std::uint32_t first_forwards = 0;
    std::vector<std::uint32_t> children;  ///< episode indices
    bool visited = false;
  };
  std::vector<Episode> episodes;
  // Global episode key (recorder << 32 | local id) -> index in `episodes`,
  // and (sender << 32 | seq) -> the episode that emitted that send.
  std::unordered_map<std::uint64_t, std::uint32_t> by_key;
  std::unordered_map<std::uint64_t, std::uint64_t> send_episode;

  auto gkey = [](std::size_t rec, std::uint32_t ep) {
    return (static_cast<std::uint64_t>(rec) << 32) | ep;
  };

  // Pass 1: materialize episodes and the send -> episode map.
  for (std::size_t r = 0; r < recorders.size(); ++r) {
    report.dropped += recorders[r]->dropped();
    for (const SpanRecord& rec : recorders[r]->records()) {
      ++report.records;
      if (rec.kind == SpanKind::kEpisode) {
        Episode e;
        e.t0 = rec.t;
        e.last_t = rec.t;
        e.node = rec.node;
        e.flags = rec.flags;
        by_key.emplace(gkey(r, rec.episode),
                       static_cast<std::uint32_t>(episodes.size()));
        episodes.push_back(std::move(e));
      } else if (rec.kind == SpanKind::kSend) {
        const std::uint64_t sk =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rec.node))
             << 32) |
            rec.seq;
        if (rec.episode != kNoEpisode)
          send_episode.emplace(sk, gkey(r, rec.episode));
      }
    }
  }

  // Pass 2: per-episode tallies and parent resolution.
  for (std::size_t r = 0; r < recorders.size(); ++r) {
    for (const SpanRecord& rec : recorders[r]->records()) {
      if (rec.kind == SpanKind::kEpisode) {
        auto it = by_key.find(gkey(r, rec.episode));
        if (rec.cause_node == graph::kInvalidNode) continue;
        const std::uint64_t sk =
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(rec.cause_node))
             << 32) |
            rec.cause_seq;
        auto sit = send_episode.find(sk);
        if (sit != send_episode.end() && by_key.count(sit->second))
          episodes[it->second].parent = sit->second;
        continue;
      }
      if (rec.episode == kNoEpisode) continue;
      auto it = by_key.find(gkey(r, rec.episode));
      if (it == by_key.end()) continue;
      Episode& e = episodes[it->second];
      if (rec.t > e.last_t) e.last_t = rec.t;
      switch (rec.kind) {
        case SpanKind::kSend:
          ++e.sends;
          break;
        case SpanKind::kSuccessorChange:
          ++e.successor_changes;
          break;
        case SpanKind::kFirstForward:
          ++e.first_forwards;
          break;
        default:
          break;
      }
    }
  }

  for (std::uint32_t i = 0; i < episodes.size(); ++i) {
    if (episodes[i].parent == kNoParent) continue;
    episodes[by_key[episodes[i].parent]].children.push_back(i);
  }

  // Pass 3: fold each root's tree into one ConvergenceSpan. An
  // origination with no outbound LSUs is a no-op episode, not a span.
  std::vector<std::uint32_t> stack;
  for (std::uint32_t i = 0; i < episodes.size(); ++i) {
    Episode& root = episodes[i];
    if (root.parent != kNoParent || root.visited) continue;
    ConvergenceSpan span;
    span.t0 = root.t0;
    span.origin = root.node;
    span.local = (root.flags & kSpanLocal) != 0;
    Time last_t = root.t0;
    std::unordered_set<graph::NodeId> routers;
    stack.assign(1, i);
    while (!stack.empty()) {
      Episode& e = episodes[stack.back()];
      stack.pop_back();
      if (e.visited) continue;  // defensive: parent links are time-ordered
      e.visited = true;
      ++span.episodes;
      span.sends += e.sends;
      span.successor_changes += e.successor_changes;
      span.first_forwards += e.first_forwards;
      routers.insert(e.node);
      if (e.last_t > last_t) last_t = e.last_t;
      for (std::uint32_t c : e.children) stack.push_back(c);
    }
    if (span.sends == 0) continue;
    span.routers_touched = static_cast<std::uint32_t>(routers.size());
    span.duration_s = last_t > span.t0 ? last_t - span.t0 : 0;
    report.spans.push_back(span);
  }

  std::stable_sort(report.spans.begin(), report.spans.end(),
                   [](const ConvergenceSpan& a, const ConvergenceSpan& b) {
                     if (a.t0 != b.t0) return a.t0 < b.t0;
                     return a.origin < b.origin;
                   });

  compute_span_stats(report);
  return report;
}

void ConvergenceReport::merge(const ConvergenceReport& other) {
  spans.insert(spans.end(), other.spans.begin(), other.spans.end());
  records += other.records;
  dropped += other.dropped;
  compute_span_stats(*this);
}

void ConvergenceReport::append_json(std::string& out) const {
  char buf[64];
  out += "{\"spans\": ";
  std::snprintf(buf, sizeof buf, "%zu", spans.size());
  out += buf;
  out += ", \"records\": ";
  std::snprintf(buf, sizeof buf, "%" PRIu64, records);
  out += buf;
  out += ", \"dropped\": ";
  std::snprintf(buf, sizeof buf, "%" PRIu64, dropped);
  out += buf;
  out += ", \"convergence_s\": {\"mean\": ";
  append_double(out, mean_convergence_s);
  out += ", \"p95\": ";
  append_double(out, p95_convergence_s);
  out += ", \"max\": ";
  append_double(out, max_convergence_s);
  out += "}, \"amplification\": {\"mean_routers_touched\": ";
  append_double(out, mean_routers_touched);
  out += ", \"max_routers_touched\": ";
  append_double(out, max_routers_touched);
  out += ", \"mean_recomputes\": ";
  append_double(out, mean_recomputes);
  out += "}}";
}

void write_trace_json(std::ostream& os, const ProfReport& prof,
                      const ConvergenceReport& conv) {
  char buf[256];
  os << "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
        "\"process_name\", \"args\": {\"name\": \"profiler (host time)\"}}";
  sep();
  os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
        "\"process_name\", \"args\": {\"name\": \"convergence (sim time)\"}}";
  for (std::size_t t = 0; t < prof.tracks.size(); ++t) {
    sep();
    std::snprintf(buf, sizeof buf,
                  "{\"ph\": \"M\", \"pid\": 0, \"tid\": %zu, \"name\": "
                  "\"thread_name\", \"args\": {\"name\": \"%s\"}}",
                  t, prof.tracks[t].label.c_str());
    os << buf;
  }

  // Profiler tree: each track lays its sections out sequentially by self
  // time, as matched B/E pairs — monotone ts per (pid 0, tid) track.
  for (std::size_t t = 0; t < prof.tracks.size(); ++t) {
    double off_us = 0;
    for (std::size_t i = 0; i < kNumProfSections; ++i) {
      const ProfStats& st = prof.tracks[t].sections[i];
      if (st.count == 0) continue;
      const double dur_us = st.self_ns / 1e3;
      sep();
      std::snprintf(
          buf, sizeof buf,
          "{\"ph\": \"B\", \"pid\": 0, \"tid\": %zu, \"ts\": %.3f, "
          "\"name\": \"%s\", \"args\": {\"count\": %" PRIu64
          ", \"total_ns\": %" PRIu64 ", \"self_ns\": %" PRIu64 "}}",
          t, off_us, prof_section_name(static_cast<ProfSection>(i)), st.count,
          st.total_ns, st.self_ns);
      os << buf;
      sep();
      std::snprintf(buf, sizeof buf,
                    "{\"ph\": \"E\", \"pid\": 0, \"tid\": %zu, \"ts\": %.3f}",
                    t, off_us + dur_us);
      os << buf;
      off_us += dur_us;
    }
  }

  // Convergence spans: complete events in sim microseconds, tid = origin
  // router. Everything here is same-seed deterministic.
  for (const ConvergenceSpan& s : conv.spans) {
    sep();
    std::snprintf(
        buf, sizeof buf,
        "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, "
        "\"dur\": %.3f, \"name\": \"%s\", \"args\": {\"origin\": %d, "
        "\"episodes\": %u, \"sends\": %u, \"routers_touched\": %u, "
        "\"successor_changes\": %u, \"first_forwards\": %u}}",
        s.origin, s.t0 * 1e6, s.duration_s * 1e6,
        s.local ? "origination" : "update", s.origin, s.episodes, s.sends,
        s.routers_touched, s.successor_changes, s.first_forwards);
    os << buf;
  }

  os << "\n], \"otherData\": {\"schema\": \"mdr-prof-1\", "
        "\"host_time_pids\": [0]}}\n";
}

}  // namespace mdr::obs
