// Structured protocol trace: typed events, per-node bounded rings (the
// flight recorder), and the Probe handle embedded in protocol objects.
//
// The flight recorder answers "what was the protocol doing just before this
// anomaly" — when the InvariantMonitor opens a loop/blackhole/ledger
// incident, the simulator dumps the rings into a chronologically merged
// event sequence attached to the run's telemetry. With `trace` enabled the
// recorder additionally retains *every* event for full JSONL export.
//
// Instrument points hold a Probe by value; a disabled probe costs exactly
// one predictable branch (null recorder check), no allocation, no RNG use —
// default runs stay bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/ckpt.h"
#include "graph/topology.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace mdr::obs {

/// Protocol event types captured by the flight recorder. The `peer`/`a`/`b`
/// payload fields are type-specific; see docs/OBSERVABILITY.md for the full
/// catalog.
enum class EventType : std::uint8_t {
  kLsuOriginate = 0,  ///< peer=neighbor sent to, a=seq, b=entry count
  kLsuReceive,        ///< peer=sender, a=seq, b=entry count
  kFdChange,          ///< peer=destination, a=new FD, b=previous FD
  kSuccessorChange,   ///< peer=destination, a=new successor count, b=FD
  kIhAlloc,           ///< peer=destination, a=successor count
  kAhAlloc,           ///< peer=destination, a=phi mass moved
  kCrash,             ///< node crashed (state wiped)
  kRecover,           ///< node recovered (boot epoch bumped)
  kDampSuppress,      ///< peer=neighbor, a=penalty at suppression
  kDampRelease,       ///< peer=neighbor, a=penalty at release
  kControlDrop,       ///< node=receiving end, b=packet count,
                      ///< a=cause (0=queue,1=wire,2=flush,3=link down)
};

constexpr std::size_t kNumEventTypes = 11;

/// Stable lowercase identifier used in JSONL output and metric names.
const char* event_type_name(EventType type);

/// One recorded protocol event. `node` is the observing node; `peer` is a
/// neighbor or destination depending on the type (kInvalidNode when unused).
struct Event {
  Time t = 0;
  graph::NodeId node = graph::kInvalidNode;
  EventType type = EventType::kLsuOriginate;
  graph::NodeId peer = graph::kInvalidNode;
  double a = 0;
  double b = 0;
};

inline void save_event(ckpt::Writer& w, const Event& e) {
  w.f64(e.t);
  w.u64(static_cast<std::uint64_t>(e.node));
  w.u8(static_cast<std::uint8_t>(e.type));
  w.u64(static_cast<std::uint64_t>(e.peer));
  w.f64(e.a);
  w.f64(e.b);
}

inline Event load_event(ckpt::Reader& r) {
  Event e;
  e.t = r.f64();
  e.node = static_cast<graph::NodeId>(r.u64());
  e.type = static_cast<EventType>(r.u8());
  e.peer = static_cast<graph::NodeId>(r.u64());
  e.a = r.f64();
  e.b = r.f64();
  return e;
}

/// Per-node bounded rings of Events plus (optionally) a full append-only
/// trace. Single-threaded by design, like the simulator that feeds it.
class FlightRecorder {
 public:
  /// `ring_capacity` events are retained per node (older ones overwritten).
  /// With `keep_all`, every event is additionally appended to trace().
  /// A non-null `metrics` registry gets one `events.<type>` counter bump
  /// per record().
  FlightRecorder(std::size_t num_nodes, std::size_t ring_capacity,
                 bool keep_all, MetricRegistry* metrics);

  void record(const Event& e);

  /// All currently retained ring events across nodes, merged into global
  /// record order (which is chronological: the sim clock is monotonic).
  std::vector<Event> dump() const;

  /// Full event trace (empty unless constructed with keep_all).
  const std::vector<Event>& trace() const { return trace_; }
  std::vector<Event> take_trace() { return std::move(trace_); }

  std::uint64_t recorded() const { return next_seq_; }
  std::size_t ring_capacity() const { return ring_capacity_; }

  /// Checkpoints ring contents, cursors, the retained trace and the event
  /// sequence counter; configuration (capacity, keep_all, the registry
  /// pointers) is reconstructed by the owning simulator.
  void save(ckpt::Writer& w) const {
    const auto save_ring = [&w](const Ring& ring) {
      w.u64(ring.slots.size());
      for (const Stamped& s : ring.slots) {
        save_event(w, s.event);
        w.u64(s.seq);
      }
      w.u64(ring.next);
    };
    w.u64(rings_.size());
    for (const Ring& ring : rings_) save_ring(ring);
    save_ring(off_node_);
    w.u64(trace_.size());
    for (const Event& e : trace_) save_event(w, e);
    w.u64(next_seq_);
  }
  void load(ckpt::Reader& r) {
    const auto load_ring = [&r](Ring& ring) {
      ring.slots.resize(r.u64());
      for (Stamped& s : ring.slots) {
        s.event = load_event(r);
        s.seq = r.u64();
      }
      ring.next = r.u64();
    };
    if (r.u64() != rings_.size()) {
      throw ckpt::Error("flight recorder ring count mismatch");
    }
    for (Ring& ring : rings_) load_ring(ring);
    load_ring(off_node_);
    trace_.resize(r.u64());
    for (Event& e : trace_) e = load_event(r);
    next_seq_ = r.u64();
  }

 private:
  struct Stamped {
    Event event;
    std::uint64_t seq = 0;
  };
  struct Ring {
    std::vector<Stamped> slots;  ///< grows to ring_capacity_, then wraps
    std::size_t next = 0;        ///< overwrite cursor once full
  };

  std::vector<Ring> rings_;       ///< indexed by NodeId
  Ring off_node_;                 ///< events with no valid node id
  std::vector<Event> trace_;
  std::size_t ring_capacity_;
  bool keep_all_;
  std::uint64_t next_seq_ = 0;
  /// Cached per-type counter slots in the registry (null when no registry).
  std::uint64_t* counters_[kNumEventTypes] = {};
};

/// Instrumentation handle held by value in protocol objects. Disabled (the
/// default) it is a null recorder and emit() is a single branch.
struct Probe {
  FlightRecorder* recorder = nullptr;
  graph::NodeId node = graph::kInvalidNode;
  /// Simulation clock (EventQueue::now_ptr()); null stamps events at t=0.
  const Time* clock = nullptr;

  bool enabled() const { return recorder != nullptr; }

  void emit(EventType type, graph::NodeId peer = graph::kInvalidNode,
            double a = 0, double b = 0) const {
    if (recorder == nullptr) return;
    recorder->record(
        Event{clock != nullptr ? *clock : Time{0}, node, type, peer, a, b});
  }
};

}  // namespace mdr::obs
