#include "obs/sampler.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace mdr::obs {
namespace {

void append_double(std::string& out, double v) {
  // JSON has no representation for non-finite doubles (fd_change events
  // legitimately carry an infinite initial distance): emit null.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_int(std::string& out, long long v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", v);
  out += buf;
}

const std::string& node_name(const TelemetryNames& names, graph::NodeId id,
                             const std::string& fallback) {
  if (id >= 0 && static_cast<std::size_t>(id) < names.nodes.size()) {
    return names.nodes[static_cast<std::size_t>(id)];
  }
  return fallback;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(Duration interval, std::size_t num_links,
                                     std::size_t num_flows, Telemetry* out)
    : interval_(interval),
      out_(out),
      prev_links_(num_links),
      prev_link_t_(num_links, 0.0),
      prev_flows_(num_flows) {
  assert(out_ != nullptr);
  out_->sample_interval = interval;
}

void TimeSeriesSampler::record_link(Time t, std::uint32_t link,
                                    const LinkCumulative& now) {
  if (link >= prev_links_.size()) return;
  LinkCumulative& prev = prev_links_[link];
  const Duration elapsed = t - prev_link_t_[link];
  LinkSample row;
  row.t = t;
  row.link = link;
  row.utilization =
      elapsed > 0 ? (now.busy_time - prev.busy_time) / elapsed : 0.0;
  row.queue_bits = now.queue_bits;
  row.queue_packets = now.queue_packets;
  row.data_bits = now.data_bits - prev.data_bits;
  row.control_bits = now.control_bits - prev.control_bits;
  row.drops = now.drops - prev.drops;
  out_->links.push_back(row);
  prev = now;
  prev_link_t_[link] = t;
}

void TimeSeriesSampler::record_flow(Time t, int flow,
                                    const FlowCumulative& now) {
  if (flow < 0 || static_cast<std::size_t>(flow) >= prev_flows_.size()) return;
  FlowCumulative& prev = prev_flows_[static_cast<std::size_t>(flow)];
  FlowSample row;
  row.t = t;
  row.flow = flow;
  row.injected = now.injected - prev.injected;
  row.delivered = now.delivered - prev.delivered;
  row.delay_sum_s = now.delay_sum_s - prev.delay_sum_s;
  row.measured_delivered = now.measured_delivered - prev.measured_delivered;
  row.measured_delay_sum_s =
      now.measured_delay_sum_s - prev.measured_delay_sum_s;
  row.dropped = now.dropped - prev.dropped;
  out_->flows.push_back(row);
  prev = now;
}

void TimeSeriesSampler::record_dest(Time t, graph::NodeId dest,
                                    const DestCumulative& now) {
  if (dest < 0) return;
  const auto index = static_cast<std::size_t>(dest);
  if (index >= prev_dest_versions_.size()) {
    prev_dest_versions_.resize(index + 1, 0);
  }
  DestSample row;
  row.t = t;
  row.dest = dest;
  row.mean_successors = now.mean_successors;
  row.mean_entropy_bits = now.mean_entropy_bits;
  row.churn = now.successor_versions - prev_dest_versions_[index];
  out_->dests.push_back(row);
  prev_dest_versions_[index] = now.successor_versions;
}

void TimeSeriesSampler::record_control(Time t, const ControlCumulative& now) {
  ControlSample row;
  row.t = t;
  row.lsus_originated = now.lsus_originated - prev_control_.lsus_originated;
  row.lsus_retransmitted =
      now.lsus_retransmitted - prev_control_.lsus_retransmitted;
  row.lsus_suppressed = now.lsus_suppressed - prev_control_.lsus_suppressed;
  row.acks = now.acks - prev_control_.acks;
  row.hellos = now.hellos - prev_control_.hellos;
  row.control_bits = now.control_bits - prev_control_.control_bits;
  row.control_dropped = now.control_dropped - prev_control_.control_dropped;
  out_->control.push_back(row);
  prev_control_ = now;
}

namespace {

void append_link_names(std::string& line, const TelemetryNames& names,
                       std::uint32_t link) {
  static const std::string kUnknown = "?";
  if (link < names.links.size()) {
    line += names.links[link].first;
    line += "\",\"to\":\"";
    line += names.links[link].second;
  } else {
    line += kUnknown;
    line += "\",\"to\":\"";
    line += kUnknown;
  }
}

void append_event_json(std::string& line, const Event& e,
                       const TelemetryNames& names) {
  static const std::string kUnknown = "?";
  line += "\"t\":";
  append_double(line, e.t);
  line += ",\"node\":\"";
  line += node_name(names, e.node, kUnknown);
  line += "\",\"event\":\"";
  line += event_type_name(e.type);
  line += '"';
  if (e.peer != graph::kInvalidNode) {
    line += ",\"peer\":\"";
    line += node_name(names, e.peer, kUnknown);
    line += '"';
  }
  line += ",\"a\":";
  append_double(line, e.a);
  line += ",\"b\":";
  append_double(line, e.b);
}

}  // namespace

void write_samples_jsonl(std::ostream& os, const Telemetry& telemetry,
                         const TelemetryNames& names, int run) {
  static const std::string kUnknown = "?";
  std::string line;
  for (const LinkSample& s : telemetry.links) {
    line.clear();
    line += "{\"kind\":\"link\",\"run\":";
    append_int(line, run);
    line += ",\"t\":";
    append_double(line, s.t);
    line += ",\"from\":\"";
    append_link_names(line, names, s.link);
    line += "\",\"util\":";
    append_double(line, s.utilization);
    line += ",\"queue_bits\":";
    append_double(line, s.queue_bits);
    line += ",\"queue_pkts\":";
    append_u64(line, s.queue_packets);
    line += ",\"data_bits\":";
    append_double(line, s.data_bits);
    line += ",\"control_bits\":";
    append_double(line, s.control_bits);
    line += ",\"drops\":";
    append_u64(line, s.drops);
    line += "}\n";
    os << line;
  }
  for (const FlowSample& s : telemetry.flows) {
    line.clear();
    line += "{\"kind\":\"flow\",\"run\":";
    append_int(line, run);
    line += ",\"t\":";
    append_double(line, s.t);
    line += ",\"src\":\"";
    const auto f = static_cast<std::size_t>(s.flow);
    if (f < names.flows.size()) {
      line += names.flows[f].first;
      line += "\",\"dst\":\"";
      line += names.flows[f].second;
    } else {
      line += kUnknown;
      line += "\",\"dst\":\"";
      line += kUnknown;
    }
    line += "\",\"injected\":";
    append_u64(line, s.injected);
    line += ",\"delivered\":";
    append_u64(line, s.delivered);
    line += ",\"delay_sum_s\":";
    append_double(line, s.delay_sum_s);
    line += ",\"measured_delivered\":";
    append_u64(line, s.measured_delivered);
    line += ",\"measured_delay_sum_s\":";
    append_double(line, s.measured_delay_sum_s);
    line += ",\"dropped\":";
    append_u64(line, s.dropped);
    line += "}\n";
    os << line;
  }
  for (const DestSample& s : telemetry.dests) {
    line.clear();
    line += "{\"kind\":\"dest\",\"run\":";
    append_int(line, run);
    line += ",\"t\":";
    append_double(line, s.t);
    line += ",\"dest\":\"";
    line += node_name(names, s.dest, kUnknown);
    line += "\",\"mean_successors\":";
    append_double(line, s.mean_successors);
    line += ",\"mean_entropy_bits\":";
    append_double(line, s.mean_entropy_bits);
    line += ",\"churn\":";
    append_u64(line, s.churn);
    line += "}\n";
    os << line;
  }
  for (const ControlSample& s : telemetry.control) {
    line.clear();
    line += "{\"kind\":\"control\",\"run\":";
    append_int(line, run);
    line += ",\"t\":";
    append_double(line, s.t);
    line += ",\"lsus_originated\":";
    append_u64(line, s.lsus_originated);
    line += ",\"lsus_retransmitted\":";
    append_u64(line, s.lsus_retransmitted);
    line += ",\"lsus_suppressed\":";
    append_u64(line, s.lsus_suppressed);
    line += ",\"acks\":";
    append_u64(line, s.acks);
    line += ",\"hellos\":";
    append_u64(line, s.hellos);
    line += ",\"control_bits\":";
    append_double(line, s.control_bits);
    line += ",\"control_dropped\":";
    append_u64(line, s.control_dropped);
    line += "}\n";
    os << line;
  }
  for (const StabilitySample& s : telemetry.stability) {
    line.clear();
    line += "{\"kind\":\"stability\",\"run\":";
    append_int(line, run);
    line += ",\"t\":";
    append_double(line, s.t);
    line += ",\"queue_bits\":";
    append_double(line, s.queue_bits);
    line += ",\"slope_bps\":";
    append_double(line, s.slope_bps);
    line += ",\"delay_s\":";
    append_double(line, s.delay_s);
    line += ",\"margin\":";
    append_double(line, s.margin);
    line += "}\n";
    os << line;
  }
}

void write_trace_jsonl(std::ostream& os, const Telemetry& telemetry,
                       const TelemetryNames& names, int run) {
  std::string line;
  for (const Event& e : telemetry.trace) {
    line.clear();
    line += "{\"kind\":\"event\",\"run\":";
    append_int(line, run);
    line += ',';
    append_event_json(line, e, names);
    line += "}\n";
    os << line;
  }
  for (const FlightDump& dump : telemetry.flight_dumps) {
    line.clear();
    line += "{\"kind\":\"flight_dump\",\"run\":";
    append_int(line, run);
    line += ",\"t\":";
    append_double(line, dump.t);
    line += ",\"reason\":\"";
    line += dump.reason;
    line += "\",\"events\":[";
    bool first = true;
    for (const Event& e : dump.events) {
      if (!first) line += ',';
      first = false;
      line += '{';
      append_event_json(line, e, names);
      line += '}';
    }
    line += "]}\n";
    os << line;
  }
}

void write_metrics_jsonl(std::ostream& os, const MetricRegistry& metrics,
                         const std::string& run_label) {
  std::string line;
  line += "{\"kind\":\"metrics\",\"run\":\"";
  line += run_label;
  line += "\",\"metrics\":";
  metrics.append_json(line);
  line += "}\n";
  os << line;
}

namespace {

void csv_row(std::ostream& os, std::string& line, int run, Time t,
             const char* kind, const std::string& entity, const char* metric,
             double value) {
  line.clear();
  append_int(line, run);
  line += ',';
  append_double(line, t);
  line += ',';
  line += kind;
  line += ',';
  line += entity;
  line += ',';
  line += metric;
  line += ',';
  append_double(line, value);
  line += '\n';
  os << line;
}

}  // namespace

void write_samples_csv(std::ostream& os, const Telemetry& telemetry,
                       const TelemetryNames& names, int run, bool header) {
  if (header) os << "run,t,kind,entity,metric,value\n";
  static const std::string kUnknown = "?";
  std::string line;
  std::string entity;
  for (const LinkSample& s : telemetry.links) {
    entity = s.link < names.links.size()
                 ? names.links[s.link].first + "->" + names.links[s.link].second
                 : kUnknown;
    csv_row(os, line, run, s.t, "link", entity, "util", s.utilization);
    csv_row(os, line, run, s.t, "link", entity, "queue_bits", s.queue_bits);
    csv_row(os, line, run, s.t, "link", entity, "queue_pkts",
            static_cast<double>(s.queue_packets));
    csv_row(os, line, run, s.t, "link", entity, "data_bits", s.data_bits);
    csv_row(os, line, run, s.t, "link", entity, "control_bits",
            s.control_bits);
    csv_row(os, line, run, s.t, "link", entity, "drops",
            static_cast<double>(s.drops));
  }
  for (const FlowSample& s : telemetry.flows) {
    const auto f = static_cast<std::size_t>(s.flow);
    entity = f < names.flows.size()
                 ? names.flows[f].first + "->" + names.flows[f].second
                 : kUnknown;
    csv_row(os, line, run, s.t, "flow", entity, "injected",
            static_cast<double>(s.injected));
    csv_row(os, line, run, s.t, "flow", entity, "delivered",
            static_cast<double>(s.delivered));
    csv_row(os, line, run, s.t, "flow", entity, "delay_sum_s", s.delay_sum_s);
    csv_row(os, line, run, s.t, "flow", entity, "measured_delivered",
            static_cast<double>(s.measured_delivered));
    csv_row(os, line, run, s.t, "flow", entity, "measured_delay_sum_s",
            s.measured_delay_sum_s);
    csv_row(os, line, run, s.t, "flow", entity, "dropped",
            static_cast<double>(s.dropped));
  }
  for (const DestSample& s : telemetry.dests) {
    entity = node_name(names, s.dest, kUnknown);
    csv_row(os, line, run, s.t, "dest", entity, "mean_successors",
            s.mean_successors);
    csv_row(os, line, run, s.t, "dest", entity, "mean_entropy_bits",
            s.mean_entropy_bits);
    csv_row(os, line, run, s.t, "dest", entity, "churn",
            static_cast<double>(s.churn));
  }
  for (const ControlSample& s : telemetry.control) {
    entity = "net";
    csv_row(os, line, run, s.t, "control", entity, "lsus_originated",
            static_cast<double>(s.lsus_originated));
    csv_row(os, line, run, s.t, "control", entity, "lsus_retransmitted",
            static_cast<double>(s.lsus_retransmitted));
    csv_row(os, line, run, s.t, "control", entity, "lsus_suppressed",
            static_cast<double>(s.lsus_suppressed));
    csv_row(os, line, run, s.t, "control", entity, "acks",
            static_cast<double>(s.acks));
    csv_row(os, line, run, s.t, "control", entity, "hellos",
            static_cast<double>(s.hellos));
    csv_row(os, line, run, s.t, "control", entity, "control_bits",
            s.control_bits);
    csv_row(os, line, run, s.t, "control", entity, "control_dropped",
            static_cast<double>(s.control_dropped));
  }
  for (const StabilitySample& s : telemetry.stability) {
    entity = "net";
    csv_row(os, line, run, s.t, "stability", entity, "queue_bits",
            s.queue_bits);
    csv_row(os, line, run, s.t, "stability", entity, "slope_bps", s.slope_bps);
    csv_row(os, line, run, s.t, "stability", entity, "delay_s", s.delay_s);
    csv_row(os, line, run, s.t, "stability", entity, "margin", s.margin);
  }
}

}  // namespace mdr::obs
