// Convergence span tracer: stamps every control-plane causal chain —
// link-event / LSU origination -> per-hop flood -> receiver table update ->
// successor-set change -> first packet forwarded on the new successor —
// into typed records, assembled post-run into per-origination convergence
// spans with update-amplification counts (routers touched, recomputes
// triggered per origination).
//
// Tracing is purely observational: MPDA floods by RE-ORIGINATION (every
// per-neighbor send gets a fresh sequence number from the sender's
// counter), so (sender, seq) uniquely identifies a transmission and the
// causal chain is recovered by linking each receiver's processing episode
// to the send that triggered it. No message or wire-format change — packet
// sizes and therefore the simulation itself are untouched, and all record
// timestamps are SIM time, so the assembled spans are same-seed
// deterministic (unlike the profiler's host-time fields).
//
// Like every obs instrument, a null recorder pointer costs one predictable
// branch per hook, keeping untraced runs byte-identical to the seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/topology.h"
#include "util/time.h"

namespace mdr::obs {

enum class SpanKind : std::uint8_t {
  kEpisode = 0,       ///< one MPDA processing episode opens (LSU or local)
  kSend,              ///< one LSU (re-)origination toward a neighbor
  kSuccessorChange,   ///< successor set for one destination changed
  kFirstForward,      ///< first data packet forwarded after that change
};

/// Episode flags (SpanRecord::flags, kEpisode records).
inline constexpr std::uint8_t kSpanApplied = 1;  ///< fresh entries applied
inline constexpr std::uint8_t kSpanAck = 2;      ///< pure ack message
inline constexpr std::uint8_t kSpanLocal = 4;    ///< local link event root

/// No-episode marker (records emitted outside any processing episode,
/// e.g. timer-driven retransmissions of an already-traced sequence).
inline constexpr std::uint32_t kNoEpisode = 0xffffffffu;

struct SpanRecord {
  Time t = 0;  ///< sim time
  SpanKind kind = SpanKind::kEpisode;
  std::uint8_t flags = 0;
  std::uint32_t episode = kNoEpisode;  ///< recorder-local episode id
  graph::NodeId node = graph::kInvalidNode;  ///< where this happened
  /// kSend: receiving neighbor; kFirstForward: chosen next hop.
  graph::NodeId peer = graph::kInvalidNode;
  /// kSuccessorChange / kFirstForward: affected destination.
  graph::NodeId dest = graph::kInvalidNode;
  /// kSend: the assigned sequence number.
  std::uint32_t seq = 0;
  /// kEpisode: the incoming LSU (sender, seq) that opened it;
  /// kInvalidNode for local link-event episodes.
  graph::NodeId cause_node = graph::kInvalidNode;
  std::uint32_t cause_seq = 0;
};

/// Per-shard (single-threaded) span sink. MpdaProcess opens an episode at
/// each entry point, records sends / successor changes inside it; SimNode
/// reports forwards so the first packet on a changed successor closes the
/// chain. Bounded: past `max_records` new records are counted as dropped.
class SpanRecorder {
 public:
  static constexpr std::size_t kDefaultMaxRecords = 2'000'000;

  explicit SpanRecorder(std::size_t num_nodes,
                        std::size_t max_records = kDefaultMaxRecords)
      : pending_(num_nodes), max_records_(max_records) {}

  void begin_lsu_episode(graph::NodeId self, graph::NodeId sender,
                         std::uint32_t seq, bool applied, bool ack, Time t) {
    std::uint8_t flags = 0;
    if (applied) flags |= kSpanApplied;
    if (ack) flags |= kSpanAck;
    begin_episode(self, sender, seq, flags, t);
  }
  void begin_local_episode(graph::NodeId self, Time t) {
    begin_episode(self, graph::kInvalidNode, 0, kSpanLocal, t);
  }
  void end_episode() { current_ = kNoEpisode; }

  void on_send(graph::NodeId self, graph::NodeId neighbor, std::uint32_t seq,
               Time t) {
    SpanRecord r;
    r.t = t;
    r.kind = SpanKind::kSend;
    r.episode = current_;
    r.node = self;
    r.peer = neighbor;
    r.seq = seq;
    push(r);
  }

  void on_successor_change(graph::NodeId self, graph::NodeId dest, Time t) {
    SpanRecord r;
    r.t = t;
    r.kind = SpanKind::kSuccessorChange;
    r.episode = current_;
    r.node = self;
    r.dest = dest;
    push(r);
    if (current_ == kNoEpisode) return;
    auto& slots = pending_[static_cast<std::size_t>(self)];
    // Lazily materialized per-dest index. A scanned list would be cheaper
    // here, but a pending entry whose destination never carries traffic
    // lingers forever and on_forward runs per forwarded packet — stale
    // entries must not add per-packet cost.
    if (slots.empty()) slots.assign(pending_.size(), kNoEpisode);
    if (slots[static_cast<std::size_t>(dest)] == kNoEpisode) ++pending_total_;
    slots[static_cast<std::size_t>(dest)] = current_;
  }

  /// Per-forwarded-packet hook: at most three dependent loads and no
  /// writes until the first packet after a successor change is seen.
  void on_forward(graph::NodeId self, graph::NodeId dest,
                  graph::NodeId next_hop, Time t) {
    if (pending_total_ == 0) return;
    auto& slots = pending_[static_cast<std::size_t>(self)];
    if (slots.empty()) return;
    std::uint32_t& episode = slots[static_cast<std::size_t>(dest)];
    if (episode == kNoEpisode) return;
    SpanRecord r;
    r.t = t;
    r.kind = SpanKind::kFirstForward;
    r.episode = episode;
    r.node = self;
    r.peer = next_hop;
    r.dest = dest;
    push(r);
    episode = kNoEpisode;
    --pending_total_;
  }

  const std::vector<SpanRecord>& records() const { return records_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  void begin_episode(graph::NodeId self, graph::NodeId cause,
                     std::uint32_t cause_seq, std::uint8_t flags, Time t) {
    current_ = next_episode_++;
    SpanRecord r;
    r.t = t;
    r.kind = SpanKind::kEpisode;
    r.flags = flags;
    r.episode = current_;
    r.node = self;
    r.cause_node = cause;
    r.cause_seq = cause_seq;
    push(r);
  }

  void push(const SpanRecord& r) {
    if (records_.size() >= max_records_) {
      ++dropped_;
      return;
    }
    records_.push_back(r);
  }

  std::vector<SpanRecord> records_;
  /// pending_[node][dest] = episode awaiting its first forwarded packet, or
  /// kNoEpisode. Inner vectors are empty until the node's first successor
  /// change (n^2 worst case, profiling runs only).
  std::vector<std::vector<std::uint32_t>> pending_;  // by NodeId
  std::size_t pending_total_ = 0;
  std::uint32_t next_episode_ = 0;
  std::uint32_t current_ = kNoEpisode;
  std::size_t max_records_ = kDefaultMaxRecords;
  std::uint64_t dropped_ = 0;
};

/// Clears the recorder on destruction — pairs each MPDA entry point with
/// end_episode() across early returns. `r` may be null (tracing off).
struct SpanEpisodeGuard {
  SpanRecorder* r = nullptr;
  ~SpanEpisodeGuard() {
    if (r != nullptr) r->end_episode();
  }
};

/// One assembled causal tree rooted at an origination event.
struct ConvergenceSpan {
  Time t0 = 0;                               ///< root episode sim time
  graph::NodeId origin = graph::kInvalidNode;  ///< root router
  bool local = false;       ///< rooted at a local link event (vs orphan LSU)
  double duration_s = 0;    ///< last descendant event time - t0
  std::uint32_t episodes = 0;     ///< recomputes triggered (root included)
  std::uint32_t sends = 0;        ///< LSU transmissions in the tree
  std::uint32_t routers_touched = 0;    ///< distinct routers recomputing
  std::uint32_t successor_changes = 0;
  std::uint32_t first_forwards = 0;
};

/// Whole-run convergence statistics. Every field derives from sim-time
/// records only, so the report is same-seed deterministic.
struct ConvergenceReport {
  std::vector<ConvergenceSpan> spans;  ///< sorted by (t0, origin)
  std::uint64_t records = 0;           ///< raw records assembled
  std::uint64_t dropped = 0;           ///< records lost to the ring cap

  double mean_convergence_s = 0;  ///< over spans with duration > 0
  double p95_convergence_s = 0;
  double max_convergence_s = 0;
  double mean_routers_touched = 0;  ///< update amplification per origination
  double mean_recomputes = 0;       ///< episodes per origination
  double max_routers_touched = 0;

  void append_json(std::string& out) const;

  /// Cross-run merge (runner jobs, applied in job order): spans concatenate
  /// and the distribution statistics are recomputed over the union.
  void merge(const ConvergenceReport& other);
};

/// Links per-recorder episode trees across shards into ConvergenceSpans.
ConvergenceReport assemble_spans(
    const std::vector<const SpanRecorder*>& recorders);

}  // namespace mdr::obs

namespace mdr::obs {
struct ProfReport;  // obs/prof.h

/// Chrome trace-event JSON (Perfetto-loadable): the profiler tree as B/E
/// pairs on pid 0 (host time, one tid per track) and convergence spans as
/// complete events on pid 1 (sim time, tid = origin router). Host-time
/// fields are confined to pid 0; otherData.host_time_pids names the
/// boundary so tooling can diff around it (scripts/check_telemetry.py).
void write_trace_json(std::ostream& os, const ProfReport& prof,
                      const ConvergenceReport& conv);
}  // namespace mdr::obs
