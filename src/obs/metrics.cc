#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace mdr::obs {
namespace {

// Deterministic double formatting shared by all telemetry emitters: %.17g is
// round-trip exact for IEEE doubles, so same-seed reruns serialize
// byte-identically.
void append_double(std::string& out, double v) {
  // JSON has no representation for non-finite doubles (e.g. min of an empty
  // histogram): emit null.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

LogHistogram::LogHistogram() { std::memset(buckets_, 0, sizeof buckets_); }

std::size_t LogHistogram::bucket_index(double value) {
  if (!(value > 0) || !std::isfinite(value)) return 0;  // underflow bucket
  int exp = 0;
  // frexp: value = m * 2^exp with m in [0.5, 1); re-normalize to mantissa in
  // [1, 2) over exponent exp-1 so sub-bucket = floor((m*2 - 1) * kSubBuckets).
  const double m = std::frexp(value, &exp);
  exp -= 1;
  if (exp < kMinExp) return 0;
  if (exp > kMaxExp) exp = kMaxExp;
  int sub = static_cast<int>((m * 2.0 - 1.0) * kSubBuckets);
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 +
         static_cast<std::size_t>(exp - kMinExp) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double LogHistogram::bucket_mid(std::size_t index) {
  if (index == 0) return 0.0;
  const std::size_t i = index - 1;
  const int exp = kMinExp + static_cast<int>(i / kSubBuckets);
  const int sub = static_cast<int>(i % kSubBuckets);
  const double lo = std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                               exp);
  const double hi =
      std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, exp);
  return 0.5 * (lo + hi);
}

void LogHistogram::record(double value) {
  ++buckets_[bucket_index(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
}

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest-rank over the cumulative bucket counts, mirroring
  // Samples::percentile's rank formula so the two agree up to quantization.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      double v = bucket_mid(i);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] = v;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

void MetricRegistry::append_json(std::string& out) const {
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_u64(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_double(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    append_u64(out, h.count());
    out += ",\"sum\":";
    append_double(out, h.sum());
    out += ",\"min\":";
    append_double(out, h.min());
    out += ",\"max\":";
    append_double(out, h.max());
    out += ",\"mean\":";
    append_double(out, h.mean());
    out += ",\"p50\":";
    append_double(out, h.percentile(0.50));
    out += ",\"p90\":";
    append_double(out, h.percentile(0.90));
    out += ",\"p99\":";
    append_double(out, h.percentile(0.99));
    out += '}';
  }
  out += "}}";
}

}  // namespace mdr::obs
