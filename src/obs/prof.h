// Wall-clock profiler: sampling-free scoped timers over a fixed set of
// named subsystem sections, attributing host time (monotonic clock) to the
// event-dispatch loop, protocol phases, allocation heuristics, the link
// packet path, checkpointing and the parallel engine.
//
// Design mirrors the telemetry probes (obs/trace.h): every instrument point
// holds a raw Profiler* and takes exactly one predictable branch when
// profiling is off, so a default run stays byte-identical to the seed. Each
// Profiler instance is single-threaded (one per shard, plus one for the
// coordinator); reports are merged post-run like MetricRegistry.
//
// Two levels. A clock read costs tens of nanoseconds on virtualized hosts
// — the same order as dispatching one simulation event — so timing every
// per-event section would distort exactly the thing being measured. At the
// default level the per-event hot sections (dispatch.*, link.*) are counted
// exactly but not timed; their wall time is captured by the enclosing
// engine.busy umbrella scope, which opens once per engine slice/window.
// Everything else (protocol phases, allocation, checkpointing, build,
// report) occurs orders of magnitude less often and carries full timers.
// Deep mode (`prof deep=1`) times every section for per-event attribution
// and self-reports its larger overhead.
//
// Counts are functions of the event sequence and therefore same-seed
// deterministic; nanosecond fields are host time and vary run to run. The
// exporters keep the two segregated (docs/OBSERVABILITY.md).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mdr::obs {

/// Every profiled subsystem. Names (prof_section_name) use dotted paths so
/// the summary table and trace tracks group visually by subsystem.
enum class ProfSection : std::uint8_t {
  kDispatchCallback = 0,  ///< event core: scheduled callback records
  kDispatchTransmit,      ///< event core: link transmit-complete records
  kDispatchDeliver,       ///< event core: packet delivery records
  kDispatchSource,        ///< event core: traffic source emissions
  kDispatchTimer,         ///< event core: node protocol timers
  kMpdaDecode,            ///< LSU payload decode + validation (SimNode)
  kMpdaTableUpdate,       ///< distance-table update (apply_lsu + FD scan)
  kMpdaRecompute,         ///< successor-set recompute (Eq. 17 sweep)
  kMpdaFlood,             ///< flood-out: per-neighbor LSU (re-)origination
  kAllocIh,               ///< initial heuristic allocation (MpRouter)
  kAllocAh,               ///< adjustment heuristic allocation (MpRouter)
  kLinkEnqueue,           ///< SimLink admission + service start
  kLinkDeliver,           ///< SimLink delivery hand-up to the receiver
  kCkptSave,              ///< checkpoint serialization + atomic write
  kCkptLoad,              ///< checkpoint restore
  kEngineBusy,            ///< parallel engine: shard advancing its queue
  kEngineStall,           ///< parallel engine: parked at the window barrier
  kEngineHandoff,         ///< parallel engine: coordinator draining rings
  kSimBuild,              ///< NetworkSim::build (topology -> entities)
  kSimReport,             ///< result assembly after the run drains
};

inline constexpr std::size_t kNumProfSections = 20;

const char* prof_section_name(ProfSection s);

constexpr std::uint64_t prof_bit(ProfSection s) {
  return std::uint64_t{1} << static_cast<unsigned>(s);
}

/// All sections carry timers (deep profiling).
inline constexpr std::uint64_t kProfTimeAll =
    (std::uint64_t{1} << kNumProfSections) - 1;

/// Per-event hot path: fires once or more per simulated event, where a
/// single clock read rivals the cost of the work itself. Count-only at the
/// default level; the enclosing kEngineBusy scope carries their wall time.
inline constexpr std::uint64_t kProfHotSections =
    prof_bit(ProfSection::kDispatchCallback) |
    prof_bit(ProfSection::kDispatchTransmit) |
    prof_bit(ProfSection::kDispatchDeliver) |
    prof_bit(ProfSection::kDispatchSource) |
    prof_bit(ProfSection::kDispatchTimer) |
    prof_bit(ProfSection::kLinkEnqueue) | prof_bit(ProfSection::kLinkDeliver);

/// Default level: everything timed except the per-event hot sections.
inline constexpr std::uint64_t kProfTimeDefault =
    kProfTimeAll & ~kProfHotSections;

/// Accumulated cost of one section on one track: invocation count, wall
/// time including children (total) and excluding children (self).
struct ProfStats {
  std::uint64_t count = 0;     ///< deterministic at fixed seed
  std::uint64_t total_ns = 0;  ///< host time, varies run to run
  std::uint64_t self_ns = 0;   ///< host time, varies run to run
};

/// One single-threaded profiling context. Scopes nest: a frame stack
/// carries child time up so self = total - children without any lookups on
/// the hot path. Timed enter/exit costs two clock reads plus arithmetic; a
/// count-only hit (sections outside `timed_mask`) is one mask test and an
/// increment. The constructor calibrates the clock so the overhead can be
/// self-reported.
class Profiler {
 public:
  explicit Profiler(std::uint64_t timed_mask = kProfTimeAll);

  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Whether a scope on `s` carries timers (vs count-only).
  bool timed(ProfSection s) const {
    return (timed_mask_ >> static_cast<unsigned>(s)) & 1;
  }

  void enter(ProfSection s) {
    frames_.push_back(Frame{now_ns(), 0, s});
  }

  /// Count-only hit: records the invocation without touching the clock or
  /// the frame stack. Used for hot sections outside the timed mask.
  void count(ProfSection s) {
    ++stats_[static_cast<std::size_t>(s)].count;
    ++counted_;
  }

  void exit() {
    const Frame f = frames_.back();
    frames_.pop_back();
    const std::uint64_t elapsed = now_ns() - f.start_ns;
    ProfStats& st = stats_[static_cast<std::size_t>(f.section)];
    ++st.count;
    st.total_ns += elapsed;
    st.self_ns += elapsed >= f.child_ns ? elapsed - f.child_ns : 0;
    if (!frames_.empty()) frames_.back().child_ns += elapsed;
    ++scopes_;
  }

  const std::array<ProfStats, kNumProfSections>& sections() const {
    return stats_;
  }
  /// Total timed enter/exit pairs closed so far (drives the overhead
  /// estimate: two clock reads each).
  std::uint64_t scopes() const { return scopes_; }
  /// Total count-only hits so far.
  std::uint64_t counted() const { return counted_; }
  /// Measured cost of one steady_clock read on this host, in ns.
  double clock_cost_ns() const { return clock_cost_ns_; }

 private:
  struct Frame {
    std::uint64_t start_ns = 0;
    std::uint64_t child_ns = 0;
    ProfSection section{};
  };
  std::array<ProfStats, kNumProfSections> stats_{};
  std::vector<Frame> frames_;
  std::uint64_t timed_mask_ = kProfTimeAll;
  std::uint64_t scopes_ = 0;
  std::uint64_t counted_ = 0;
  double clock_cost_ns_ = 0;
};

/// RAII scope around one instrument point. `p == nullptr` (profiling off)
/// costs a single branch at entry and exit — the Probe fast-path contract.
/// With profiling on, sections outside the profiler's timed mask degrade to
/// an exact count with no clock reads.
class ProfScope {
 public:
  ProfScope(Profiler* p, ProfSection s) {
    if (p != nullptr) {
      if (p->timed(s)) {
        p->enter(s);
        timed_ = p;
      } else {
        p->count(s);
      }
    }
  }
  ~ProfScope() {
    if (timed_ != nullptr) timed_->exit();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* timed_ = nullptr;  ///< non-null iff enter() was called
};

/// The mergeable, exportable form of a profiling run: one Track per
/// Profiler instance ("main", "shard0".."shardN", "coord") plus
/// engine-level window statistics. Merging (across runner jobs) is
/// label-wise elementwise addition in job order, like MetricRegistry.
struct ProfReport {
  struct Track {
    std::string label;
    std::array<ProfStats, kNumProfSections> sections{};
  };
  std::vector<Track> tracks;

  // --- parallel-engine window statistics (zero on the classic engine) ----
  std::uint64_t windows = 0;  ///< barriers with at least one busy shard
  std::uint64_t window_max_busy_ns = 0;   ///< sum over windows of max busy
  std::uint64_t window_mean_busy_ns = 0;  ///< sum over windows of mean busy
  int shards = 0;  ///< max across merged runs (0 = classic engine)

  // --- self-accounting --------------------------------------------------
  std::uint64_t scopes = 0;   ///< timed scope count across all tracks
  std::uint64_t counted = 0;  ///< count-only hits across all tracks
  double clock_cost_ns = 0;   ///< max calibrated clock cost
  std::uint64_t wall_ns = 0;  ///< run() wall time, summed when merged
  std::uint64_t runs = 1;     ///< merged run count

  /// Nominal cost of one count-only hit (mask test + increments); dwarfed
  /// by clock reads whenever any timed scope is on the same path.
  static constexpr double kCountCostNs = 1.5;

  /// Estimated profiler overhead: two clock reads per timed scope plus the
  /// count-only fast path.
  double overhead_est_ns() const {
    return 2.0 * clock_cost_ns * scopes + kCountCostNs * counted;
  }
  /// Per-window shard imbalance, max/mean busy (1 = perfectly balanced).
  double imbalance() const {
    return window_mean_busy_ns > 0
               ? static_cast<double>(window_max_busy_ns) /
                     static_cast<double>(window_mean_busy_ns)
               : 0.0;
  }
  /// Sum of a section's stat over every track.
  ProfStats total(ProfSection s) const;
  /// Wall-clock fraction attributed to named sections: top-level self time
  /// (self of sections that are roots of the instrumented call tree) over
  /// wall_ns. Used by the acceptance gate (>= 90% on waxman_scale).
  double attributed_fraction() const;

  /// Elementwise merge (tracks matched by label; unmatched appended in the
  /// other report's order) — deterministic for any worker count when
  /// applied in job order.
  void merge(const ProfReport& other);

  /// Appends the report as one JSON object (no trailing newline). Counts
  /// first, host-time fields grouped under "host_ns" keys so tooling can
  /// diff around them.
  void append_json(std::string& out) const;

  /// Human-readable per-section self/total table (mdrsim stderr summary).
  std::string summary_table() const;
};

}  // namespace mdr::obs
