// Periodic time-series sampling and the Telemetry container a run returns.
//
// The TimeSeriesSampler is driven by the simulator's event queue: once per
// `sample_interval` the sim feeds it *cumulative* per-link / per-flow /
// per-destination / network-control readings and the sampler turns them into
// per-window rows (deltas, utilizations, instantaneous gauges). Keeping the
// delta bookkeeping here means the sim-side tick is a read-only walk over
// existing counters — it draws no randomness and reorders no events, so
// enabling sampling never perturbs packet flows.
//
// All serialization (JSONL and tidy CSV) lives here too, with %.17g double
// formatting so same-seed reruns emit byte-identical streams
// (docs/OBSERVABILITY.md documents the schemas).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "graph/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/time.h"

namespace mdr::obs {

/// One per-link sample window ending at time t.
struct LinkSample {
  Time t = 0;
  std::uint32_t link = 0;        ///< LinkId
  double utilization = 0;        ///< busy fraction of the window
  double queue_bits = 0;         ///< instantaneous queued data bits
  std::uint64_t queue_packets = 0;  ///< instantaneous queued data packets
  double data_bits = 0;          ///< data bits transmitted in the window
  double control_bits = 0;       ///< control bits transmitted in the window
  std::uint64_t drops = 0;       ///< packets dropped in the window
};

/// One per-flow sample window ending at time t. `delivered`/`delay_sum_s`
/// count every delivery (convergence curves from t=0); the `measured_*` pair
/// restricts to packets created inside the measurement window, so summing
/// them over all rows reconciles with FlowResult::mean_delay_s.
struct FlowSample {
  Time t = 0;
  int flow = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  double delay_sum_s = 0;
  std::uint64_t measured_delivered = 0;
  double measured_delay_sum_s = 0;
  std::uint64_t dropped = 0;
};

/// One per-destination routing snapshot at time t, aggregated over the alive
/// routers that currently have a forwarding entry for `dest`.
struct DestSample {
  Time t = 0;
  graph::NodeId dest = graph::kInvalidNode;
  double mean_successors = 0;    ///< mean successor-set size
  double mean_entropy_bits = 0;  ///< mean Shannon entropy of phi (bits)
  std::uint64_t churn = 0;       ///< successor-set version bumps this window
};

/// One network-wide control-plane sample window ending at time t.
struct ControlSample {
  Time t = 0;
  std::uint64_t lsus_originated = 0;
  std::uint64_t lsus_retransmitted = 0;
  std::uint64_t lsus_suppressed = 0;
  std::uint64_t acks = 0;
  std::uint64_t hellos = 0;
  double control_bits = 0;
  std::uint64_t control_dropped = 0;
};

/// One stability-monitor observation at time t (sim/monitor.h
/// StabilityMonitor): the workload-stress panel behind docs/WORKLOADS.md.
struct StabilitySample {
  Time t = 0;
  double queue_bits = 0;     ///< total bits queued network-wide
  double slope_bps = 0;      ///< windowed least-squares queue slope
  double delay_s = 0;        ///< windowed mean packet delay
  double margin = 0;         ///< running stability margin (< 0: unstable)
};

/// Flight-recorder dump taken when an invariant incident opened at time t.
struct FlightDump {
  Time t = 0;
  std::string reason;            ///< "forwarding_loop" | "blackhole" | ...
  std::vector<Event> events;     ///< chronologically merged ring contents
};

/// Everything a telemetry-enabled run returns (SimResult::telemetry).
struct Telemetry {
  Duration sample_interval = 0;
  std::vector<LinkSample> links;
  std::vector<FlowSample> flows;
  std::vector<DestSample> dests;
  std::vector<ControlSample> control;
  /// Stability-monitor panel; filled by the sim, not the sampler (the
  /// monitor computes its own windows), but serialized with the rest.
  std::vector<StabilitySample> stability;
  std::vector<Event> trace;           ///< full event trace (trace mode only)
  std::vector<FlightDump> flight_dumps;
  MetricRegistry metrics;

  void save(ckpt::Writer& w) const {
    w.f64(sample_interval);
    w.u64(links.size());
    for (const LinkSample& s : links) {
      w.f64(s.t);
      w.u32(s.link);
      w.f64(s.utilization);
      w.f64(s.queue_bits);
      w.u64(s.queue_packets);
      w.f64(s.data_bits);
      w.f64(s.control_bits);
      w.u64(s.drops);
    }
    w.u64(flows.size());
    for (const FlowSample& s : flows) {
      w.f64(s.t);
      w.i64(s.flow);
      w.u64(s.injected);
      w.u64(s.delivered);
      w.f64(s.delay_sum_s);
      w.u64(s.measured_delivered);
      w.f64(s.measured_delay_sum_s);
      w.u64(s.dropped);
    }
    w.u64(dests.size());
    for (const DestSample& s : dests) {
      w.f64(s.t);
      w.u64(static_cast<std::uint64_t>(s.dest));
      w.f64(s.mean_successors);
      w.f64(s.mean_entropy_bits);
      w.u64(s.churn);
    }
    w.u64(control.size());
    for (const ControlSample& s : control) {
      w.f64(s.t);
      w.u64(s.lsus_originated);
      w.u64(s.lsus_retransmitted);
      w.u64(s.lsus_suppressed);
      w.u64(s.acks);
      w.u64(s.hellos);
      w.f64(s.control_bits);
      w.u64(s.control_dropped);
    }
    w.u64(stability.size());
    for (const StabilitySample& s : stability) {
      w.f64(s.t);
      w.f64(s.queue_bits);
      w.f64(s.slope_bps);
      w.f64(s.delay_s);
      w.f64(s.margin);
    }
    w.u64(trace.size());
    for (const Event& e : trace) save_event(w, e);
    w.u64(flight_dumps.size());
    for (const FlightDump& d : flight_dumps) {
      w.f64(d.t);
      w.str(d.reason);
      w.u64(d.events.size());
      for (const Event& e : d.events) save_event(w, e);
    }
    metrics.save(w);
  }

  void load(ckpt::Reader& r) {
    sample_interval = r.f64();
    links.resize(r.u64());
    for (LinkSample& s : links) {
      s.t = r.f64();
      s.link = r.u32();
      s.utilization = r.f64();
      s.queue_bits = r.f64();
      s.queue_packets = r.u64();
      s.data_bits = r.f64();
      s.control_bits = r.f64();
      s.drops = r.u64();
    }
    flows.resize(r.u64());
    for (FlowSample& s : flows) {
      s.t = r.f64();
      s.flow = static_cast<int>(r.i64());
      s.injected = r.u64();
      s.delivered = r.u64();
      s.delay_sum_s = r.f64();
      s.measured_delivered = r.u64();
      s.measured_delay_sum_s = r.f64();
      s.dropped = r.u64();
    }
    dests.resize(r.u64());
    for (DestSample& s : dests) {
      s.t = r.f64();
      s.dest = static_cast<graph::NodeId>(r.u64());
      s.mean_successors = r.f64();
      s.mean_entropy_bits = r.f64();
      s.churn = r.u64();
    }
    control.resize(r.u64());
    for (ControlSample& s : control) {
      s.t = r.f64();
      s.lsus_originated = r.u64();
      s.lsus_retransmitted = r.u64();
      s.lsus_suppressed = r.u64();
      s.acks = r.u64();
      s.hellos = r.u64();
      s.control_bits = r.f64();
      s.control_dropped = r.u64();
    }
    stability.resize(r.u64());
    for (StabilitySample& s : stability) {
      s.t = r.f64();
      s.queue_bits = r.f64();
      s.slope_bps = r.f64();
      s.delay_s = r.f64();
      s.margin = r.f64();
    }
    trace.resize(r.u64());
    for (Event& e : trace) e = load_event(r);
    flight_dumps.resize(r.u64());
    for (FlightDump& d : flight_dumps) {
      d.t = r.f64();
      d.reason = r.str();
      d.events.resize(r.u64());
      for (Event& e : d.events) e = load_event(r);
    }
    metrics.load(r);
  }
};

/// Turns cumulative readings into windowed sample rows. The caller feeds one
/// full set of record_*() calls per tick; the sampler keeps the previous
/// cumulative values per entity and appends the delta rows to `out`.
class TimeSeriesSampler {
 public:
  TimeSeriesSampler(Duration interval, std::size_t num_links,
                    std::size_t num_flows, Telemetry* out);

  struct LinkCumulative {
    double busy_time = 0;        ///< cumulative seconds spent transmitting
    double queue_bits = 0;       ///< instantaneous
    std::uint64_t queue_packets = 0;  ///< instantaneous
    double data_bits = 0;        ///< cumulative
    double control_bits = 0;     ///< cumulative
    std::uint64_t drops = 0;     ///< cumulative
  };
  struct FlowCumulative {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    double delay_sum_s = 0;
    std::uint64_t measured_delivered = 0;
    double measured_delay_sum_s = 0;
    std::uint64_t dropped = 0;
  };
  struct DestCumulative {
    double mean_successors = 0;   ///< instantaneous
    double mean_entropy_bits = 0; ///< instantaneous
    std::uint64_t successor_versions = 0;  ///< cumulative version sum
  };
  struct ControlCumulative {
    std::uint64_t lsus_originated = 0;
    std::uint64_t lsus_retransmitted = 0;
    std::uint64_t lsus_suppressed = 0;
    std::uint64_t acks = 0;
    std::uint64_t hellos = 0;
    double control_bits = 0;
    std::uint64_t control_dropped = 0;
  };

  void record_link(Time t, std::uint32_t link, const LinkCumulative& now);
  void record_flow(Time t, int flow, const FlowCumulative& now);
  void record_dest(Time t, graph::NodeId dest, const DestCumulative& now);
  void record_control(Time t, const ControlCumulative& now);

  Duration interval() const { return interval_; }

  /// Checkpoints the delta-bookkeeping state (previous cumulative readings);
  /// interval and output target are reconstructed by the owner.
  void save(ckpt::Writer& w) const {
    const auto save_link = [&w](const LinkCumulative& c) {
      w.f64(c.busy_time);
      w.f64(c.queue_bits);
      w.u64(c.queue_packets);
      w.f64(c.data_bits);
      w.f64(c.control_bits);
      w.u64(c.drops);
    };
    const auto save_flow = [&w](const FlowCumulative& c) {
      w.u64(c.injected);
      w.u64(c.delivered);
      w.f64(c.delay_sum_s);
      w.u64(c.measured_delivered);
      w.f64(c.measured_delay_sum_s);
      w.u64(c.dropped);
    };
    w.u64(prev_links_.size());
    for (const LinkCumulative& c : prev_links_) save_link(c);
    w.u64(prev_link_t_.size());
    for (Time t : prev_link_t_) w.f64(t);
    w.u64(prev_flows_.size());
    for (const FlowCumulative& c : prev_flows_) save_flow(c);
    w.u64(prev_dest_versions_.size());
    for (std::uint64_t v : prev_dest_versions_) w.u64(v);
    w.u64(prev_control_.lsus_originated);
    w.u64(prev_control_.lsus_retransmitted);
    w.u64(prev_control_.lsus_suppressed);
    w.u64(prev_control_.acks);
    w.u64(prev_control_.hellos);
    w.f64(prev_control_.control_bits);
    w.u64(prev_control_.control_dropped);
  }
  void load(ckpt::Reader& r) {
    const auto load_link = [&r](LinkCumulative& c) {
      c.busy_time = r.f64();
      c.queue_bits = r.f64();
      c.queue_packets = r.u64();
      c.data_bits = r.f64();
      c.control_bits = r.f64();
      c.drops = r.u64();
    };
    const auto load_flow = [&r](FlowCumulative& c) {
      c.injected = r.u64();
      c.delivered = r.u64();
      c.delay_sum_s = r.f64();
      c.measured_delivered = r.u64();
      c.measured_delay_sum_s = r.f64();
      c.dropped = r.u64();
    };
    prev_links_.resize(r.u64());
    for (LinkCumulative& c : prev_links_) load_link(c);
    prev_link_t_.resize(r.u64());
    for (Time& t : prev_link_t_) t = r.f64();
    prev_flows_.resize(r.u64());
    for (FlowCumulative& c : prev_flows_) load_flow(c);
    prev_dest_versions_.resize(r.u64());
    for (std::uint64_t& v : prev_dest_versions_) v = r.u64();
    prev_control_.lsus_originated = r.u64();
    prev_control_.lsus_retransmitted = r.u64();
    prev_control_.lsus_suppressed = r.u64();
    prev_control_.acks = r.u64();
    prev_control_.hellos = r.u64();
    prev_control_.control_bits = r.f64();
    prev_control_.control_dropped = r.u64();
  }

 private:
  Duration interval_;
  Telemetry* out_;
  std::vector<LinkCumulative> prev_links_;
  std::vector<Time> prev_link_t_;
  std::vector<FlowCumulative> prev_flows_;
  std::vector<std::uint64_t> prev_dest_versions_;  // indexed by NodeId
  ControlCumulative prev_control_;
};

/// Display names resolved once per run so emitters never touch the topology.
struct TelemetryNames {
  std::vector<std::string> nodes;  ///< by NodeId
  std::vector<std::pair<std::string, std::string>> links;  ///< from/to by LinkId
  std::vector<std::pair<std::string, std::string>> flows;  ///< src/dst by flow
};

// JSONL emitters — one object per line, deterministic field order, %.17g
// doubles. `run` tags the replication index.
void write_samples_jsonl(std::ostream& os, const Telemetry& telemetry,
                         const TelemetryNames& names, int run);
void write_trace_jsonl(std::ostream& os, const Telemetry& telemetry,
                       const TelemetryNames& names, int run);
void write_metrics_jsonl(std::ostream& os, const MetricRegistry& metrics,
                         const std::string& run_label);

/// Tidy long-format CSV: run,t,kind,entity,metric,value (one measurement per
/// row). Set `header` on the first run of a file.
void write_samples_csv(std::ostream& os, const Telemetry& telemetry,
                       const TelemetryNames& names, int run, bool header);

}  // namespace mdr::obs
