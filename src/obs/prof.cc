#include "obs/prof.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mdr::obs {

namespace {

constexpr const char* kSectionNames[kNumProfSections] = {
    "dispatch.callback", "dispatch.transmit", "dispatch.deliver",
    "dispatch.source",   "dispatch.timer",    "mpda.lsu_decode",
    "mpda.table_update", "mpda.recompute",    "mpda.flood",
    "alloc.ih",          "alloc.ah",          "link.enqueue",
    "link.deliver",      "ckpt.save",         "ckpt.load",
    "engine.busy",       "engine.stall",      "engine.handoff",
    "sim.build",         "sim.report",
};

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

const char* prof_section_name(ProfSection s) {
  return kSectionNames[static_cast<std::size_t>(s)];
}

Profiler::Profiler(std::uint64_t timed_mask) : timed_mask_(timed_mask) {
  frames_.reserve(16);
  // Calibrate the monotonic clock so the report can self-estimate the
  // profiler's own overhead (two reads per scope). Minimum over several
  // batches: a single timed loop is occasionally preempted and would
  // over-report the cost by an order of magnitude.
  constexpr int kBatches = 16;
  constexpr int kReads = 256;
  std::uint64_t best = ~std::uint64_t{0};
  std::uint64_t sink = 0;
  for (int b = 0; b < kBatches; ++b) {
    const std::uint64_t t0 = now_ns();
    for (int i = 0; i < kReads; ++i) sink += now_ns() & 1;
    const std::uint64_t t1 = now_ns();
    best = std::min(best, t1 - t0);
  }
  clock_cost_ns_ = static_cast<double>(best + (sink & 1)) / kReads;
}

ProfStats ProfReport::total(ProfSection s) const {
  ProfStats out;
  for (const Track& t : tracks) {
    const ProfStats& st = t.sections[static_cast<std::size_t>(s)];
    out.count += st.count;
    out.total_ns += st.total_ns;
    out.self_ns += st.self_ns;
  }
  return out;
}

double ProfReport::attributed_fraction() const {
  if (wall_ns == 0) return 0;
  // Self time never double-counts within a track, so the track-summed self
  // time is exactly the wall time spent inside any instrumented scope. On
  // the sharded engine concurrent tracks overlap and the ratio may exceed 1.
  std::uint64_t self = 0;
  for (const Track& t : tracks)
    for (const ProfStats& st : t.sections) self += st.self_ns;
  return static_cast<double>(self) / static_cast<double>(wall_ns);
}

void ProfReport::merge(const ProfReport& other) {
  for (const Track& ot : other.tracks) {
    Track* mine = nullptr;
    for (Track& t : tracks)
      if (t.label == ot.label) {
        mine = &t;
        break;
      }
    if (mine == nullptr) {
      tracks.push_back(ot);
      continue;
    }
    for (std::size_t i = 0; i < kNumProfSections; ++i) {
      mine->sections[i].count += ot.sections[i].count;
      mine->sections[i].total_ns += ot.sections[i].total_ns;
      mine->sections[i].self_ns += ot.sections[i].self_ns;
    }
  }
  windows += other.windows;
  window_max_busy_ns += other.window_max_busy_ns;
  window_mean_busy_ns += other.window_mean_busy_ns;
  if (other.shards > shards) shards = other.shards;
  scopes += other.scopes;
  counted += other.counted;
  if (other.clock_cost_ns > clock_cost_ns) clock_cost_ns = other.clock_cost_ns;
  wall_ns += other.wall_ns;
  runs += other.runs;
}

void ProfReport::append_json(std::string& out) const {
  // Deterministic fields first; everything host-varying under "host".
  out += "{\"schema\": \"mdr-prof-1\", \"runs\": ";
  append_u64(out, runs);
  out += ", \"shards\": ";
  append_u64(out, static_cast<std::uint64_t>(shards));
  out += ", \"windows\": ";
  append_u64(out, windows);
  out += ", \"scopes\": ";
  append_u64(out, scopes);
  out += ", \"counted\": ";
  append_u64(out, counted);
  out += ", \"counts\": {";
  for (std::size_t i = 0; i < kNumProfSections; ++i) {
    if (i) out += ", ";
    out += '"';
    out += kSectionNames[i];
    out += "\": ";
    append_u64(out, total(static_cast<ProfSection>(i)).count);
  }
  out += "}, \"host\": {\"wall_ns\": ";
  append_u64(out, wall_ns);
  out += ", \"clock_cost_ns\": ";
  append_double(out, clock_cost_ns);
  out += ", \"overhead_est_ns\": ";
  append_double(out, overhead_est_ns());
  out += ", \"attributed_fraction\": ";
  append_double(out, attributed_fraction());
  out += ", \"imbalance\": ";
  append_double(out, imbalance());
  out += ", \"window_max_busy_ns\": ";
  append_u64(out, window_max_busy_ns);
  out += ", \"window_mean_busy_ns\": ";
  append_u64(out, window_mean_busy_ns);
  out += ", \"tracks\": [";
  bool first_track = true;
  for (const Track& t : tracks) {
    if (!first_track) out += ", ";
    first_track = false;
    out += "{\"label\": \"";
    out += t.label;
    out += "\", \"sections\": {";
    bool first = true;
    for (std::size_t i = 0; i < kNumProfSections; ++i) {
      const ProfStats& st = t.sections[i];
      if (st.count == 0 && st.total_ns == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += '"';
      out += kSectionNames[i];
      out += "\": {\"count\": ";
      append_u64(out, st.count);
      out += ", \"total_ns\": ";
      append_u64(out, st.total_ns);
      out += ", \"self_ns\": ";
      append_u64(out, st.self_ns);
      out += '}';
    }
    out += "}}";
  }
  out += "]}}";
}

std::string ProfReport::summary_table() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "[prof] %-20s %12s %12s %12s\n", "section",
                "count", "total_ms", "self_ms");
  out += line;
  for (std::size_t i = 0; i < kNumProfSections; ++i) {
    const ProfStats st = total(static_cast<ProfSection>(i));
    if (st.count == 0) continue;
    std::snprintf(line, sizeof line,
                  "[prof] %-20s %12" PRIu64 " %12.3f %12.3f\n",
                  kSectionNames[i], st.count, st.total_ns / 1e6,
                  st.self_ns / 1e6);
    out += line;
  }
  std::snprintf(line, sizeof line,
                "[prof] attributed %.1f%% of %.3f s wall; overhead est "
                "%.3f%% (%.1f ns/clock read, %" PRIu64 " timed scopes, %" PRIu64
                " counted)\n",
                100.0 * attributed_fraction(), wall_ns / 1e9,
                wall_ns > 0 ? 100.0 * overhead_est_ns() / wall_ns : 0.0,
                clock_cost_ns, scopes, counted);
  out += line;
  if (windows > 0) {
    std::snprintf(line, sizeof line,
                  "[prof] windows %" PRIu64
                  "  shard imbalance %.3f (max/mean busy)\n",
                  windows, imbalance());
    out += line;
  }
  return out;
}

}  // namespace mdr::obs
