#include "fault/fault_plan.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>

#include "util/rng.h"

namespace mdr::fault {

namespace {

// Picks `count` distinct indices from [0, n) in draw order.
std::vector<int> pick_distinct(Rng& rng, int n, int count) {
  assert(count <= n);
  std::set<int> chosen;
  std::vector<int> out;
  while (static_cast<int>(out.size()) < count) {
    const int x = rng.uniform_int(0, n - 1);
    if (chosen.insert(x).second) out.push_back(x);
  }
  return out;
}

// Picks `count` distinct duplex links (as directed-link ids with from < to),
// skipping ids already claimed by an earlier pick.
std::vector<graph::LinkId> pick_duplex_links(Rng& rng,
                                             const graph::Topology& topo,
                                             int count,
                                             std::set<graph::LinkId>* taken) {
  std::vector<graph::LinkId> forward;  // one id per physical cable
  for (graph::LinkId id = 0; id < static_cast<graph::LinkId>(topo.num_links());
       ++id) {
    const auto& l = topo.link(id);
    if (l.from < l.to) forward.push_back(id);
  }
  assert(count <= static_cast<int>(forward.size()));
  std::vector<graph::LinkId> out;
  while (static_cast<int>(out.size()) < count) {
    const auto id =
        forward[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(forward.size()) - 1))];
    if (taken->insert(id).second) out.push_back(id);
  }
  return out;
}

}  // namespace

FaultPlan make_random_plan(const graph::Topology& topo,
                           const RandomPlanOptions& opts, std::uint64_t seed) {
  assert(opts.window_end >= opts.window_start);
  assert(opts.outage_max >= opts.outage_min);
  Rng rng(seed);
  FaultPlan plan;

  for (const int node : pick_distinct(rng, static_cast<int>(topo.num_nodes()),
                                      opts.crashes)) {
    const Time at = rng.uniform(opts.window_start, opts.window_end);
    const Duration outage = rng.uniform(opts.outage_min, opts.outage_max);
    const std::string name(topo.name(static_cast<graph::NodeId>(node)));
    plan.crashes.push_back(NodeEvent{at, name});
    plan.recoveries.push_back(NodeEvent{at + outage, name});
  }

  std::set<graph::LinkId> taken;
  for (const auto id :
       pick_duplex_links(rng, topo, opts.flapping_links, &taken)) {
    const auto& l = topo.link(id);
    LinkFlap flap = opts.flap_shape;
    flap.a = std::string(topo.name(l.from));
    flap.b = std::string(topo.name(l.to));
    plan.flaps.push_back(std::move(flap));
  }
  for (const auto id :
       pick_duplex_links(rng, topo, opts.gilbert_links, &taken)) {
    const auto& l = topo.link(id);
    plan.gilbert.push_back(LinkGilbert{std::string(topo.name(l.from)),
                                       std::string(topo.name(l.to)),
                                       opts.gilbert});
  }

  // Stable order regardless of draw order, so plans diff cleanly.
  const auto by_time = [](const NodeEvent& x, const NodeEvent& y) {
    return x.at != y.at ? x.at < y.at : x.node < y.node;
  };
  std::sort(plan.crashes.begin(), plan.crashes.end(), by_time);
  std::sort(plan.recoveries.begin(), plan.recoveries.end(), by_time);
  return plan;
}

}  // namespace mdr::fault
