// Gilbert–Elliott two-state bursty loss channel.
//
// The classic burst-loss model: the channel is a two-state Markov chain
// (GOOD / BAD) stepped once per packet; each state drops packets with its
// own probability. Unlike i.i.d. Bernoulli loss, losses cluster into bursts
// whose mean length is 1 / p_bad_good packets — the regime that actually
// stresses retransmission machinery, because consecutive retransmissions of
// the same LSU can all die inside one bad period.
#pragma once

#include "util/rng.h"

namespace mdr::fault {

/// Parameters of one Gilbert–Elliott channel. Defaults disable the model.
struct GilbertParams {
  double p_good_bad = 0;  ///< per-packet P(GOOD -> BAD)
  double p_bad_good = 1;  ///< per-packet P(BAD -> GOOD)
  double loss_bad = 0;    ///< drop probability while BAD
  double loss_good = 0;   ///< drop probability while GOOD (usually 0)

  bool enabled() const { return loss_bad > 0 || loss_good > 0; }

  /// Stationary loss rate of the chain (sanity checks and tests).
  double stationary_loss() const;
};

/// The chain itself: one instance per (directed) link, stepped per packet.
class GilbertChannel {
 public:
  explicit GilbertChannel(GilbertParams params) : params_(params) {}

  /// Advances the chain one packet and decides this packet's fate.
  /// The loss draw uses the state the packet sees; the transition happens
  /// after, so a burst begins with the first packet drawn in BAD.
  bool lose(Rng& rng);

  bool bad() const { return bad_; }
  const GilbertParams& params() const { return params_; }

  void save(ckpt::Writer& w) const { w.b(bad_); }
  void load(ckpt::Reader& r) { bad_ = r.b(); }

 private:
  GilbertParams params_;
  bool bad_ = false;  ///< chain starts GOOD
};

}  // namespace mdr::fault
