// Duty-cycled lossy links: the radio-style fault class of low-power mesh
// networks (Contiki-era radio duty cycling), where a link is only awake for
// a fixed fraction of each period and, while awake, still loses packets in
// correlated bursts.
//
// A LinkDutyCycle composes two orthogonal behaviors on one duplex link:
//   * a strict periodic up/down square wave — awake for the first
//     on_fraction of every period, asleep for the rest — expanded into a
//     deterministic edge schedule shared by both engines, and
//   * optional Gilbert–Elliott correlated loss applied while awake
//     (fault/gilbert.h), so even the "up" phase is hostile.
//
// Like flaps, duty cycles are silent: neither endpoint gets a physical-
// layer notification, so only the hello protocol can track the outages —
// which is exactly why the scenario parser requires `hello` when a
// dutycycle directive is present.
#pragma once

#include <string>
#include <vector>

#include "fault/gilbert.h"
#include "util/time.h"

namespace mdr::fault {

/// Periodic radio-style duty cycling of one duplex link: from `start`, each
/// `period` begins awake for `on_fraction * period` seconds, then asleep
/// for the rest. Only whole cycles ending at or before `stop` run, so the
/// link always ends awake. `loss` (when `lossy`) is Gilbert–Elliott
/// correlated loss applied to the link's packets while awake.
struct LinkDutyCycle {
  std::string a, b;
  Duration period = 2.0;
  double on_fraction = 0.5;  ///< fraction of each period awake, in (0, 1)
  Time start = 0;
  Time stop = kTimeInfinity;
  GilbertParams loss{};
  bool lossy = false;
};

/// One up/down transition of a duty-cycled link.
struct DutyEdge {
  Time at = 0;
  bool down = false;  ///< true: falls asleep; false: wakes up
};

/// Expands a duty cycle into its transition schedule over [0, sim_end]:
/// whole cycles only, chronological, each cycle contributing a sleep edge
/// at t + on_fraction * period and a wake edge at t + period. Both the
/// legacy event schedule and the sharded engine's pause plan consume this
/// one expansion, so the two engines agree on every transition instant.
std::vector<DutyEdge> duty_cycle_edges(const LinkDutyCycle& duty,
                                       Time sim_end);

}  // namespace mdr::fault
