// Fault models: a deterministic, seeded description of everything unkind
// that happens to the network during a run.
//
// A FaultPlan composes
//   * node crash/recover events (the router loses ALL protocol state —
//     topology tables, feasible distances, sequence numbers, adjacencies —
//     and must re-handshake from scratch when it reboots),
//   * periodic link flapping (a link that cycles up/down on a duty cycle,
//     always silently: only the hello protocol can track it),
//   * Gilbert–Elliott bursty loss on chosen links (fault/gilbert.h), and
//   * control-plane chaos knobs: corruption (random bit flips in control
//     payloads — codecs must reject or survive them), duplication and
//     reordering of control packets.
//
// Plans are plain data resolved by node/link *names*, so they slot into
// SimConfig next to the existing LinkToggle schedule and can be written by
// hand, parsed from scenario directives (crash / recover / flap / gilbert /
// corrupt / duplicate / reorder), or generated pseudo-randomly from a seed
// (make_random_plan) for chaos property tests and benches. Everything
// downstream of the seed is deterministic: two runs of the same plan under
// the same SimConfig seed produce bit-identical results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/duty_cycle.h"
#include "fault/gilbert.h"
#include "graph/topology.h"
#include "util/time.h"

namespace mdr::fault {

/// One node lifecycle event (crash or recover), by router name.
struct NodeEvent {
  Time at = 0;
  std::string node;
};

/// Periodic flapping of one duplex link: from `start`, each `period` begins
/// with the link up for `duty * period` seconds, then down for the rest.
/// The last cycle ending at or before `stop` leaves the link up. Flaps are
/// silent — neither endpoint gets a physical-layer notification.
struct LinkFlap {
  std::string a, b;
  Duration period = 4.0;
  double duty = 0.5;  ///< fraction of each period the link is up, in (0, 1)
  Time start = 0;
  Time stop = kTimeInfinity;
};

/// Gilbert–Elliott bursty loss on one duplex link (both directions run
/// independent chains with the same parameters).
struct LinkGilbert {
  std::string a, b;
  GilbertParams params;
};

/// Control-plane chaos applied on every link (data packets are untouched).
struct ControlChaos {
  double corrupt_rate = 0;    ///< P(flip one random payload bit)
  double duplicate_rate = 0;  ///< P(deliver a second copy)
  double reorder_rate = 0;    ///< P(extra propagation delay -> reordering)

  bool any() const {
    return corrupt_rate > 0 || duplicate_rate > 0 || reorder_rate > 0;
  }
};

struct FaultPlan {
  std::vector<NodeEvent> crashes;
  std::vector<NodeEvent> recoveries;
  std::vector<LinkFlap> flaps;
  std::vector<LinkGilbert> gilbert;
  std::vector<LinkDutyCycle> duty_cycles;
  ControlChaos chaos;

  bool empty() const {
    return crashes.empty() && recoveries.empty() && flaps.empty() &&
           gilbert.empty() && duty_cycles.empty() && !chaos.any();
  }

  /// True when the plan contains faults only the hello protocol can detect
  /// (crashes, flaps and duty cycles are silent by construction).
  bool needs_hello() const {
    return !crashes.empty() || !flaps.empty() || !duty_cycles.empty();
  }
};

/// Shape of a pseudo-random chaos schedule (make_random_plan).
struct RandomPlanOptions {
  int crashes = 3;            ///< distinct routers crashed once each
  int flapping_links = 2;     ///< distinct duplex links that flap
  int gilbert_links = 2;      ///< distinct duplex links with bursty loss
  Time window_start = 8.0;    ///< crashes begin no earlier than this
  Time window_end = 25.0;     ///< crashes begin no later than this
  Duration outage_min = 2.0;  ///< crash-to-recover dwell, lower bound
  Duration outage_max = 5.0;  ///< crash-to-recover dwell, upper bound
  LinkFlap flap_shape{"", "", 4.0, 0.5, 8.0, 30.0};  ///< period/duty/window
  GilbertParams gilbert{0.05, 0.3, 0.3, 0.0};        ///< per chosen link
};

/// Draws a deterministic chaos schedule for `topo` from `seed`: `crashes`
/// distinct routers crash once inside the window and recover after a random
/// dwell, `flapping_links` distinct duplex links flap with the given shape,
/// and `gilbert_links` further distinct links get bursty loss. The same
/// (topo, opts, seed) always yields the same plan.
FaultPlan make_random_plan(const graph::Topology& topo,
                           const RandomPlanOptions& opts, std::uint64_t seed);

}  // namespace mdr::fault
