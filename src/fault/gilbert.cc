#include "fault/gilbert.h"

namespace mdr::fault {

double GilbertParams::stationary_loss() const {
  const double denom = p_good_bad + p_bad_good;
  if (denom <= 0) return loss_good;  // absorbing GOOD state
  const double pi_bad = p_good_bad / denom;
  return pi_bad * loss_bad + (1 - pi_bad) * loss_good;
}

bool GilbertChannel::lose(Rng& rng) {
  const bool lost = rng.bernoulli(bad_ ? params_.loss_bad : params_.loss_good);
  if (bad_) {
    if (rng.bernoulli(params_.p_bad_good)) bad_ = false;
  } else {
    if (rng.bernoulli(params_.p_good_bad)) bad_ = true;
  }
  return lost;
}

}  // namespace mdr::fault
