#include "fault/duty_cycle.h"

#include <algorithm>
#include <cassert>

namespace mdr::fault {

std::vector<DutyEdge> duty_cycle_edges(const LinkDutyCycle& duty,
                                       Time sim_end) {
  assert(duty.period > 0);
  assert(duty.on_fraction > 0 && duty.on_fraction < 1);
  std::vector<DutyEdge> edges;
  const Time stop = std::min(duty.stop, sim_end);
  for (Time t = duty.start; t + duty.period <= stop + 1e-9;
       t += duty.period) {
    edges.push_back({t + duty.on_fraction * duty.period, /*down=*/true});
    edges.push_back({t + duty.period, /*down=*/false});
  }
  return edges;
}

}  // namespace mdr::fault
