#include "gallager/marginals.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "graph/dag.h"

namespace mdr::gallager {

using graph::NodeId;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<double> marginal_distances(const flow::FlowNetwork& net,
                                       const flow::RoutingParameters& phi,
                                       std::span<const double> link_marginals,
                                       NodeId dest) {
  const auto& topo = net.topology();
  assert(link_marginals.size() == topo.num_links());
  std::vector<double> md(topo.num_nodes(), kInf);
  md[dest] = 0.0;

  const auto succ = phi.successor_sets(dest);
  const auto order = graph::topological_order(succ);
  if (!order.has_value()) return md;  // cyclic phi: everything unreachable

  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId i = *it;
    if (i == dest) continue;
    const auto phis = phi.at(i, dest);
    const auto links = topo.out_links(i);
    double total = 0.0;
    bool routed = false;
    bool finite = true;
    for (std::size_t x = 0; x < links.size(); ++x) {
      if (phis[x] <= 0.0) continue;
      routed = true;
      const NodeId k = topo.link(links[x]).to;
      const double leg = link_marginals[links[x]] + md[k];
      if (!std::isfinite(leg)) {
        finite = false;
        break;
      }
      total += phis[x] * leg;
    }
    if (routed && finite) md[i] = total;
  }
  return md;
}

double optimality_gap(const flow::FlowNetwork& net,
                      const flow::RoutingParameters& phi,
                      std::span<const double> link_marginals, NodeId dest,
                      std::span<const double> marginal_dist) {
  const auto& topo = net.topology();
  const auto n = static_cast<NodeId>(topo.num_nodes());
  double worst = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    if (i == dest || !std::isfinite(marginal_dist[i])) continue;
    const auto phis = phi.at(i, dest);
    const auto links = topo.out_links(i);
    for (std::size_t x = 0; x < links.size(); ++x) {
      const NodeId k = topo.link(links[x]).to;
      if (!std::isfinite(marginal_dist[k])) continue;
      const double through_k = link_marginals[links[x]] + marginal_dist[k];
      if (phis[x] > 0.0) {
        // Necessary condition: equality on the successor set.
        worst = std::max(worst, std::abs(through_k - marginal_dist[i]));
      } else {
        // Sufficient condition: no strictly shorter unused neighbor.
        worst = std::max(worst, marginal_dist[i] - through_k);
      }
    }
  }
  return worst;
}

}  // namespace mdr::gallager
