// Marginal distances (paper Eqs. 4-5).
//
// For destination j, the marginal distance of router i is
//
//     dD_T/dr_ij = sum_k phi_ijk [ D'_ik(f_ik) + dD_T/dr_kj ]     (Eq. 4)
//
// computed destination-first over the (acyclic) successor graph implied by
// phi. These derivatives drive both Gallager's necessary/sufficient
// optimality conditions (Eqs. 5-7) and the gradient step of the OPT
// algorithm.
#pragma once

#include <span>
#include <vector>

#include "flow/network.h"
#include "flow/phi.h"

namespace mdr::gallager {

/// Marginal distances to `dest` for every router. +inf for routers with no
/// route (or on a cyclic successor graph, which a valid OPT state never
/// has); 0 at the destination itself.
std::vector<double> marginal_distances(const flow::FlowNetwork& net,
                                       const flow::RoutingParameters& phi,
                                       std::span<const double> link_marginals,
                                       graph::NodeId dest);

/// Checks Gallager's sufficient optimality condition (Eq. 7) within `tol`:
/// for every router i != j and neighbor k,
///     D'_ik + dD/dr_kj >= dD/dr_ij, with equality on every k in S_ij.
/// Returns the largest violation found (0 when optimal).
double optimality_gap(const flow::FlowNetwork& net,
                      const flow::RoutingParameters& phi,
                      std::span<const double> link_marginals,
                      graph::NodeId dest,
                      std::span<const double> marginal_dist);

}  // namespace mdr::gallager
