// Gallager's distributed minimum-delay routing algorithm (OPT), realized as
// a centralized flow-level iteration (paper Section 2.2).
//
// Each iteration mirrors one round of the distributed protocol under
// stationary traffic:
//   1. solve flows from the current routing parameters (Eqs. 1-2),
//   2. compute link marginals D'(f) and per-destination marginal distances
//      (Eq. 4),
//   3. shift routing parameters toward the neighbor with the least marginal
//      distance using the global step size eta:
//          a_ik   = D'_ik + dD/dr_kj - min_m (D'_im + dD/dr_mj)
//          dphi_k = min(phi_ijk, eta * a_ik / t_ij)        (k != k_min)
//      moving the removed mass onto k_min,
//   4. block any shift that would create a cycle in the successor graph
//      (Gallager's blocking technique, realized as a direct reachability
//      check, which enforces exactly the property the original blocking
//      protocol exists to protect: SG_j stays a DAG).
//
// The paper uses OPT as the optimal-delay lower bound ("a method for
// obtaining lower bounds under stationary traffic, rather than an algorithm
// to be used in practice"); this implementation serves the same role for the
// benchmarks. Its convergence depends on the global constant eta exactly as
// the paper criticizes; Options::adaptive_step enables a safeguarded
// variant (halve eta when D_T rises) for robust lower-bound computation.
#pragma once

#include <vector>

#include "flow/evaluate.h"
#include "flow/network.h"
#include "flow/phi.h"

namespace mdr::gallager {

struct Options {
  double eta = 50.0;  ///< Gallager's global step size, in normalized units
                      ///< (see optimizer.cc); the shift fraction applied to
                      ///< a one-link-cost marginal-distance gap at ~1 pkt/s
  int max_iterations = 5000;
  double tolerance = 1e-10;    ///< relative D_T improvement considered "flat"
  int patience = 25;           ///< consecutive flat iterations before stopping
  bool adaptive_step = true;   ///< halve eta whenever D_T increases
  /// Scale each shift by the inverse local curvature (the diagonal
  /// second-derivative scaling of Bertsekas & Gallager, the speedup the
  /// paper's related work cites): dphi ∝ a / (t * (D''_from + D''_to)).
  /// Makes convergence speed far less sensitive to the choice of eta.
  bool second_derivative = false;
};

struct Result {
  flow::RoutingParameters phi;     ///< converged routing parameters
  double total_delay_rate = 0;     ///< D_T at the final iterate (Eq. 3)
  double average_delay_s = 0;      ///< rate-weighted mean per-packet delay
  int iterations = 0;
  bool converged = false;
  bool feasible = true;            ///< false if no loading can avoid overload
  std::vector<double> delay_trace; ///< D_T after each iteration
};

/// Runs OPT to (quasi-)convergence for the given stationary traffic.
Result minimize(const flow::FlowNetwork& net, const flow::TrafficMatrix& traffic,
                const Options& options = {});

/// Builds the single-shortest-path phi used to initialize OPT: all traffic
/// on the zero-load marginal-cost SPT. Exposed for tests and for the SP
/// baseline at flow level.
flow::RoutingParameters shortest_path_phi(const flow::FlowNetwork& net);

}  // namespace mdr::gallager
